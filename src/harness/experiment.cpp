#include "harness/experiment.h"

#include <cmath>
#include <thread>

#include "common/error.h"
#include "core/offline.h"
#include "sim/engine.h"
#include "sim/scenario.h"
#include "sim/verify.h"

namespace paserta {

const SchemeStats& SweepPoint::of(Scheme s) const {
  for (const auto& st : stats)
    if (st.scheme == s) return st;
  PASERTA_REQUIRE(false, "scheme " << to_string(s) << " not in sweep point");
  return stats.front();  // unreachable
}

namespace {

/// Raw per-run measurements; accumulated into SweepPoint in run order so
/// results are independent of how many worker threads produced them.
struct SchemeOutcome {
  double norm_energy = 0.0;
  double speed_changes = 0.0;
  double finish_frac = 0.0;
  double busy_frac = 0.0;
  double overhead_frac = 0.0;
  double idle_frac = 0.0;
  bool has_fracs = false;
  bool missed = false;
  bool verify_failed = false;
};

struct RunOutcome {
  double npm_energy = 0.0;
  std::vector<SchemeOutcome> schemes;
};

/// Evaluates one run on its own seed-derived stream. Thread-safe: all
/// shared inputs are const; policies are caller-provided (one set per
/// worker).
RunOutcome evaluate_run(const Application& app, const ExperimentConfig& cfg,
                        const OfflineResult& off, const PowerModel& pm,
                        SimTime deadline,
                        std::vector<std::unique_ptr<SpeedPolicy>>& policies,
                        SpeedPolicy& npm, int run) {
  Rng run_rng(Rng::stream_seed(cfg.seed, static_cast<std::uint64_t>(run)));
  const RunScenario sc = draw_scenario(app.graph, run_rng);

  RunOutcome out;
  npm.reset(off, pm);
  const SimResult base = simulate(app, off, pm, cfg.overheads, npm, sc);
  out.npm_energy = base.total_energy();

  out.schemes.resize(cfg.schemes.size());
  for (std::size_t s = 0; s < cfg.schemes.size(); ++s) {
    SpeedPolicy& policy = *policies[s];
    policy.reset(off, pm);
    const SimResult r = simulate(app, off, pm, cfg.overheads, policy, sc);
    SchemeOutcome& so = out.schemes[s];
    so.norm_energy = r.total_energy() / base.total_energy();
    so.speed_changes = static_cast<double>(r.speed_changes);
    so.finish_frac = static_cast<double>(r.finish_time.ps) /
                     static_cast<double>(deadline.ps);
    const Energy total = r.total_energy();
    if (total > 0.0) {
      so.busy_frac = r.busy_energy / total;
      so.overhead_frac = r.overhead_energy / total;
      so.idle_frac = r.idle_energy / total;
      so.has_fracs = true;
    }
    so.missed = !r.deadline_met;
    if (cfg.verify_traces) {
      const VerifyReport rep = verify_trace(app, off, sc, r);
      so.verify_failed = !rep.ok;
    }
  }
  return out;
}

}  // namespace

SweepPoint run_point(const Application& app, const ExperimentConfig& cfg,
                     SimTime deadline, double x_value) {
  PASERTA_REQUIRE(cfg.runs >= 1, "need at least one run");
  PASERTA_REQUIRE(cfg.threads >= 1, "need at least one worker thread");
  PASERTA_REQUIRE(deadline > SimTime::zero(), "deadline must be positive");

  const PowerModel pm(cfg.table, cfg.c_ef, cfg.idle_fraction);
  OfflineOptions opt;
  opt.cpus = cfg.cpus;
  opt.deadline = deadline;
  opt.overhead_budget = cfg.overheads.worst_case_budget(cfg.table);
  opt.heuristic = cfg.heuristic;
  const OfflineResult off = analyze_offline(app, opt);

  SweepPoint point;
  point.x = x_value;
  point.deadline = deadline;
  point.worst_makespan = off.worst_makespan();
  point.stats.resize(cfg.schemes.size());
  for (std::size_t s = 0; s < cfg.schemes.size(); ++s)
    point.stats[s].scheme = cfg.schemes[s];

  std::vector<RunOutcome> outcomes(static_cast<std::size_t>(cfg.runs));

  auto worker = [&](int first, int step) {
    // Each worker owns one set of (stateful) policy objects.
    std::vector<std::unique_ptr<SpeedPolicy>> policies;
    for (Scheme s : cfg.schemes)
      policies.push_back(make_policy(s, cfg.policy_options));
    auto npm = make_policy(Scheme::NPM);
    for (int run = first; run < cfg.runs; run += step)
      outcomes[static_cast<std::size_t>(run)] =
          evaluate_run(app, cfg, off, pm, deadline, policies, *npm, run);
  };

  const int threads = std::min(cfg.threads, cfg.runs);
  if (threads <= 1) {
    worker(0, 1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t, threads);
    for (auto& th : pool) th.join();
  }

  // Accumulate strictly in run order: identical floating-point results for
  // every thread count.
  for (const RunOutcome& run : outcomes) {
    point.npm_energy.add(run.npm_energy);
    for (std::size_t s = 0; s < run.schemes.size(); ++s) {
      const SchemeOutcome& so = run.schemes[s];
      SchemeStats& st = point.stats[s];
      st.norm_energy.add(so.norm_energy);
      st.speed_changes.add(so.speed_changes);
      st.finish_frac.add(so.finish_frac);
      if (so.has_fracs) {
        st.busy_frac.add(so.busy_frac);
        st.overhead_frac.add(so.overhead_frac);
        st.idle_frac.add(so.idle_frac);
      }
      if (so.missed) ++st.deadline_misses;
      if (so.verify_failed) ++st.verify_failures;
    }
  }
  return point;
}

std::vector<SweepPoint> sweep_load(const Application& app,
                                   const ExperimentConfig& cfg,
                                   const std::vector<double>& loads) {
  const SimTime w = canonical_worst_makespan(
      app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
      cfg.heuristic);
  std::vector<SweepPoint> points;
  points.reserve(loads.size());
  for (double load : loads) {
    PASERTA_REQUIRE(load > 0.0, "load must be positive, got " << load);
    const SimTime deadline{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / load))};
    points.push_back(run_point(app, cfg, deadline, load));
  }
  return points;
}

std::vector<SweepPoint> sweep_alpha(const Application& app,
                                    const ExperimentConfig& cfg, double load,
                                    const std::vector<double>& alphas) {
  std::vector<SweepPoint> points;
  points.reserve(alphas.size());
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    const double alpha = alphas[i];
    Application variant = app;  // fresh copy: ACETs are redrawn per alpha
    Rng acet_rng(cfg.seed ^ (0x517CC1B727220A95ULL + i));
    assign_alpha(variant.graph, alpha, &acet_rng);

    // The deadline derives from WCETs only, so it is alpha-independent;
    // recompute anyway for clarity (identical value).
    const SimTime w = canonical_worst_makespan(
        variant, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
        cfg.heuristic);
    const SimTime deadline{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / load))};
    points.push_back(run_point(variant, cfg, deadline, alpha));
  }
  return points;
}

std::vector<double> sweep_range(double from, double to, double step) {
  PASERTA_REQUIRE(step > 0.0 && from <= to, "invalid sweep range");
  std::vector<double> xs;
  for (double x = from; x <= to + 1e-9; x += step)
    xs.push_back(std::min(x, to));
  return xs;
}

}  // namespace paserta
