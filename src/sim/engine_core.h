// Flat-array primitives shared by the scalar engine (sim/engine.cpp) and
// the batched engine (sim/batch_engine.cpp). Both engines must extract
// work in the identical total order, so the comparator keys live in plain
// arrays both layouts can host:
//
//  * Ready queue — keyed on (EO, node id), two u32s packed into one u64 so
//    a single integer compare reproduces the lexicographic pair order. The
//    queue is kept sorted descending (minimum at the back): pop is O(1)
//    and the insert shifts only the (tiny) tail, exactly the discipline
//    the scalar engine's pair<eo,id> vector used — the pop sequence is
//    unchanged.
//  * Completion queue — parallel arrays keyed on (finish, seq), which is
//    unique (seq increments per dispatch), extracted by linear min-scan
//    with swap-remove. At most one outstanding completion per CPU, so the
//    scan beats heap maintenance at any realistic CPU count, and the
//    payload (cpu, node — two u32s in one u64) stays out of the scanned
//    key arrays.
//  * Speed-computation overhead table — cycles_to_time(cycles, f) is a
//    pure function of the level table, so both engines charge dynamic
//    dispatches from one precomputed per-level array instead of dividing
//    per dispatch (identical values by construction).
//
// Callers guarantee capacity: ready holds at most one entry per node,
// completions at most one per CPU.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "power/level_table.h"

namespace paserta {
namespace engine_core {

inline std::uint64_t ready_key(std::uint32_t eo, std::uint32_t id) {
  return (static_cast<std::uint64_t>(eo) << 32) | id;
}
inline std::uint32_t ready_key_eo(std::uint64_t key) {
  return static_cast<std::uint32_t>(key >> 32);
}
inline std::uint32_t ready_key_id(std::uint64_t key) {
  return static_cast<std::uint32_t>(key);
}

/// Inserts into a descending-sorted key array of size `n` (capacity must
/// allow n+1). New work usually carries the largest EO seen so far, so the
/// backward shift typically moves the whole (tiny) tail or nothing.
inline void ready_insert(std::uint64_t* q, std::uint32_t& n,
                         std::uint64_t key) {
  std::uint32_t i = n++;
  while (i > 0 && q[i - 1] < key) {
    q[i] = q[i - 1];
    --i;
  }
  q[i] = key;
}

/// Index of the minimum (finish, seq) among `n` completions. (finish, seq)
/// is unique, so the extraction order is deterministic regardless of how
/// swap-removal has permuted the arrays.
inline std::uint32_t completion_min(const std::int64_t* finish,
                                    const std::uint64_t* seq,
                                    std::uint32_t n) {
  std::uint32_t min_i = 0;
  for (std::uint32_t i = 1; i < n; ++i) {
    if (finish[i] < finish[min_i] ||
        (finish[i] == finish[min_i] && seq[i] < seq[min_i]))
      min_i = i;
  }
  return min_i;
}

inline std::uint64_t completion_meta(std::uint32_t cpu, std::uint32_t node) {
  return (static_cast<std::uint64_t>(cpu) << 32) | node;
}
inline std::uint32_t completion_cpu(std::uint64_t meta) {
  return static_cast<std::uint32_t>(meta >> 32);
}
inline std::uint32_t completion_node(std::uint64_t meta) {
  return static_cast<std::uint32_t>(meta);
}

/// Fills `out[l] = cycles_to_time(cycles, levels[l].freq)` for every level.
/// `out` must hold `nlevels` entries.
inline void build_compute_table(std::uint32_t cycles, const Level* levels,
                                std::size_t nlevels, SimTime* out) {
  for (std::size_t l = 0; l < nlevels; ++l)
    out[l] = cycles_to_time(cycles, levels[l].freq);
}

}  // namespace engine_core
}  // namespace paserta
