// Shared helpers for the figure-regeneration benches.
//
// Every bench accepts an optional first argument overriding the number of
// Monte-Carlo runs per point (default 1000, as in the paper) and prints
// machine-readable CSV series plus the experiment parameters.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

namespace paserta::benchutil {

inline int runs_from_args(int argc, char** argv, int def = 1000) {
  if (argc > 1) {
    const int r = std::atoi(argv[1]);
    if (r > 0) return r;
  }
  return def;
}

inline ExperimentConfig paper_config(const LevelTable& table, int cpus,
                                     int runs) {
  ExperimentConfig cfg;
  cfg.cpus = cpus;
  cfg.table = table;
  cfg.runs = runs;
  cfg.seed = 20020818;  // ICPP 2002
  cfg.overheads.speed_compute_cycles = 300;
  cfg.overheads.speed_change_time = SimTime::from_us(5.0);
  return cfg;
}

inline void emit(const std::string& figure, const std::string& caption,
                 const std::vector<SweepPoint>& points,
                 const std::string& x_name) {
  print_figure(std::cout, figure, caption, points, x_name);
}

}  // namespace paserta::benchutil
