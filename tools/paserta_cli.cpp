// paserta_cli — command-line front end to the library.
//
//   paserta_cli analyze  <workload> [options]   offline analysis report
//   paserta_cli simulate <workload> [options]   one run + gantt + stats
//   paserta_cli sweep    <workload> [options]   load/alpha sweep (CSV/JSON)
//   paserta_cli profile  <workload> [options]   per-phase cycle profile
//   paserta_cli metrics  <workload>             structural metrics
//   paserta_cli dot      <workload>             Graphviz dump
//   paserta_cli tables                          DVS level tables
//   paserta_cli serve                           resident simulation daemon
//   paserta_cli --version                       build provenance stamp
//
// <workload> is a text file (docs/WORKLOAD_FORMAT.md) or a built-in:
// @atr, @synthetic, @mpeg.
//
// Common options:
//   --cpus N           processors (default 2)
//   --table NAME       transmeta | xscale (default transmeta)
//   --load L           deadline = W / L (default 0.5)
//   --deadline-ms D    absolute deadline (overrides --load)
//   --heuristic H      ltf | stf | fifo (default ltf)
// simulate:
//   --scheme S         npm | spm | gss | ss1 | ss2 | as (default gss)
//   --seed N           scenario seed (default 1)
//   --power-csv        dump the power-vs-time curve as CSV
//   --svg FILE         write an SVG gantt + power chart to FILE
// sweep:
//   --x load|alpha     swept parameter (default load)
//   --runs N           Monte-Carlo runs per point (default 200)
//   --from F --to T --step S   sweep range (defaults 0.1..1.0 step 0.1)
//   --json             emit JSON instead of CSV
//   --threads N        worker threads for the Monte-Carlo loop (default 1;
//                      results are bit-identical for any value)
//   --batch B          scenarios per batched engine call (0 = auto, 1 =
//                      force the scalar engine; output identical either way)
//   --dedup MODE       auto | on | off: scenario-dedup memoization —
//                      simulate each distinct scenario once, replay
//                      duplicates (bit-identical, so output is the same)
//   --trace-out FILE   write a Chrome/Perfetto trace of the sweep (open in
//                      ui.perfetto.dev or chrome://tracing)
//   --metrics-out DEST write engine + pool metrics to DEST ("-" = stdout)
//   --metrics-format F json | prometheus (default json)
//   --audit            self-audit every run: attribution counters must
//                      rebuild the engine's energies exactly, and the
//                      power-trace integral must match
//   --progress         live progress line on stderr
//
// Flags accept both "--flag value" and "--flag=value".
#include <csignal>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "apps/atr.h"
#include "apps/mpeg.h"
#include "apps/synthetic.h"
#include "common/version.h"
#include "core/offline.h"
#include "core/oracle.h"
#include "graph/dot.h"
#include "graph/metrics.h"
#include "graph/text_format.h"
#include "harness/experiment.h"
#include "harness/json.h"
#include "harness/report.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sim/gantt.h"
#include "sim/power_trace.h"
#include "serve/server.h"
#include "serve/service.h"
#include "sim/svg.h"
#include "sim/trace_stats.h"

using namespace paserta;

namespace {

struct Options {
  std::string command;
  std::string workload;
  int cpus = 2;
  std::string table = "transmeta";
  double load = 0.5;
  std::optional<double> deadline_ms;
  std::string heuristic = "ltf";
  std::string scheme = "gss";
  std::uint64_t seed = 1;
  bool power_csv = false;
  std::string svg_path;
  std::string x = "load";
  int runs = 200;
  double from = 0.1, to = 1.0, step = 0.1;
  bool json = false;
  int threads = 1;
  int batch = 0;
  std::string dedup = "auto";
  std::string trace_out;
  std::string metrics_out;
  std::string metrics_format = "json";
  bool audit = false;
  bool progress = false;
  // profile
  bool sweep = false;
  bool fallback = false;
  // serve
  int port = 0;
  int queue_limit = 256;
  int timeout_ms = 0;
  int max_conn = 32;
  int stream_interval_ms = 250;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n";
  std::cerr <<
      "usage: paserta_cli <command> [workload] [options]\n"
      "\n"
      "commands:\n"
      "  analyze  <workload>   offline analysis report\n"
      "  simulate <workload>   one run + gantt + stats\n"
      "  sweep    <workload>   load/alpha sweep (CSV/JSON)\n"
      "  profile  <workload>   run a point (or --sweep) under the phase\n"
      "                        profiler and print the per-phase table\n"
      "  metrics  <workload>   structural graph metrics\n"
      "  dot      <workload>   Graphviz dump\n"
      "  tables                DVS level tables\n"
      "  serve                 resident simulation daemon (NDJSON + HTTP\n"
      "                        /metrics; see docs/DESIGN.md §16)\n"
      "\n"
      "  --version             print the build provenance stamp and exit\n"
      "\n"
      "<workload> is a text file (docs/WORKLOAD_FORMAT.md) or a built-in:\n"
      "@atr, @synthetic, @mpeg.\n"
      "\n"
      "common options (--flag value or --flag=value):\n"
      "  --cpus N            processors (default 2)\n"
      "  --table NAME        transmeta | xscale (default transmeta)\n"
      "  --load L            deadline = W / L (default 0.5)\n"
      "  --deadline-ms D     absolute deadline (overrides --load)\n"
      "  --heuristic H       ltf | stf | fifo (default ltf)\n"
      "  --seed N            RNG seed (default 1)\n"
      "simulate:\n"
      "  --scheme S          npm | spm | gss | ss1 | ss2 | as (default gss)\n"
      "  --power-csv         dump the power-vs-time curve as CSV\n"
      "  --svg FILE          write an SVG gantt + power chart to FILE\n"
      "sweep:\n"
      "  --x load|alpha      swept parameter (default load)\n"
      "  --runs N            Monte-Carlo runs per point (default 200)\n"
      "  --from F --to T --step S   sweep range (default 0.1..1.0 step 0.1)\n"
      "  --json              emit JSON instead of CSV\n"
      "  --threads N         worker threads (default 1; output identical\n"
      "                      for any value)\n"
      "  --batch B           scenarios per batched engine call (default 0 =\n"
      "                      auto; 1 forces the scalar engine; the batched\n"
      "                      engine is bit-identical, so output is the same\n"
      "                      for any value)\n"
      "  --dedup MODE        auto | on | off (default auto): simulate each\n"
      "                      distinct scenario once and replay duplicates;\n"
      "                      auto enables it when the scenario space is\n"
      "                      provably finite and <= runs. Replay is\n"
      "                      bit-identical, so output is the same either way\n"
      "  --trace-out FILE    Chrome/Perfetto trace of the sweep (open in\n"
      "                      ui.perfetto.dev)\n"
      "  --metrics-out DEST  engine + pool metrics; DEST is a file path or\n"
      "                      \"-\" for stdout\n"
      "  --metrics-format F  json | prometheus (default json)\n"
      "  --audit             self-audit every run: attribution counters\n"
      "                      must rebuild the engine's energies exactly and\n"
      "                      the power-trace integral must match (slower;\n"
      "                      output identical to a non-audited sweep)\n"
      "  --progress          live progress line on stderr\n"
      "profile:\n"
      "  --sweep             profile the full --from/--to/--step load sweep\n"
      "                      instead of the single --load point\n"
      "  --fallback          force the monotonic-clock fallback even when\n"
      "                      perf_event_open is available (PASERTA_NO_PERF=1\n"
      "                      does the same from the environment)\n"
      "  --runs/--threads/--batch/--dedup apply as in sweep\n"
      "serve:\n"
      "  --port N            listen port on 127.0.0.1 (default 0 =\n"
      "                      ephemeral; the bound port is printed)\n"
      "  --queue-limit N     pending requests before submissions are\n"
      "                      rejected as overloaded (default 256)\n"
      "  --timeout-ms N      per-request response wait bound (default 0 =\n"
      "                      none)\n"
      "  --max-conn N        concurrent connections (default 32)\n"
      "  --stream-interval-ms N   spacing of {\"event\":\"progress\"} lines\n"
      "                      for NDJSON requests with \"stream\":true\n"
      "                      (default 250)\n"
      "  --threads/--batch/--dedup, --trace-out, --metrics-out and\n"
      "  --metrics-format apply to the daemon's simulations; SIGINT or\n"
      "  SIGTERM drains in-flight requests and flushes the sinks\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  if (argc < 2) usage();
  o.command = argv[1];
  int i = 2;
  if (o.command != "tables" && o.command != "serve") {
    if (i >= argc || argv[i][0] == '-') usage("missing workload file");
    o.workload = argv[i++];
  }
  // Inline "--flag=value" payload of the current flag, when present.
  std::optional<std::string> inline_value;
  auto need_value = [&](const char* flag) -> std::string {
    if (inline_value) {
      std::string v = std::move(*inline_value);
      inline_value.reset();
      return v;
    }
    if (i >= argc) usage((std::string(flag) + " needs a value").c_str());
    return argv[i++];
  };
  for (; i < argc;) {
    std::string flag = argv[i++];
    inline_value.reset();
    if (const std::size_t eq = flag.find('=');
        flag.rfind("--", 0) == 0 && eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag.erase(eq);
    }
    if (flag == "--cpus") o.cpus = std::stoi(need_value("--cpus"));
    else if (flag == "--table") o.table = need_value("--table");
    else if (flag == "--load") o.load = std::stod(need_value("--load"));
    else if (flag == "--deadline-ms")
      o.deadline_ms = std::stod(need_value("--deadline-ms"));
    else if (flag == "--heuristic") o.heuristic = need_value("--heuristic");
    else if (flag == "--scheme") o.scheme = need_value("--scheme");
    else if (flag == "--seed")
      o.seed = std::stoull(need_value("--seed"));
    else if (flag == "--power-csv") o.power_csv = true;
    else if (flag == "--svg") o.svg_path = need_value("--svg");
    else if (flag == "--x") o.x = need_value("--x");
    else if (flag == "--runs") o.runs = std::stoi(need_value("--runs"));
    else if (flag == "--from") o.from = std::stod(need_value("--from"));
    else if (flag == "--to") o.to = std::stod(need_value("--to"));
    else if (flag == "--step") o.step = std::stod(need_value("--step"));
    else if (flag == "--json") o.json = true;
    else if (flag == "--threads")
      o.threads = std::stoi(need_value("--threads"));
    else if (flag == "--batch") {
      o.batch = std::stoi(need_value("--batch"));
      if (o.batch < 0) usage("--batch must be >= 0");
    }
    else if (flag == "--dedup") {
      o.dedup = need_value("--dedup");
      if (o.dedup != "auto" && o.dedup != "on" && o.dedup != "off")
        usage(("--dedup must be auto, on or off, got \"" + o.dedup + "\"")
                  .c_str());
    }
    else if (flag == "--trace-out") o.trace_out = need_value("--trace-out");
    else if (flag == "--metrics-out")
      o.metrics_out = need_value("--metrics-out");
    else if (flag == "--metrics-format") {
      o.metrics_format = need_value("--metrics-format");
      if (o.metrics_format != "json" && o.metrics_format != "prometheus")
        usage(("--metrics-format must be json or prometheus, got \"" +
               o.metrics_format + "\"").c_str());
    }
    else if (flag == "--audit") o.audit = true;
    else if (flag == "--progress") o.progress = true;
    else if (flag == "--sweep") o.sweep = true;
    else if (flag == "--fallback") o.fallback = true;
    else if (flag == "--port") o.port = std::stoi(need_value("--port"));
    else if (flag == "--queue-limit")
      o.queue_limit = std::stoi(need_value("--queue-limit"));
    else if (flag == "--timeout-ms")
      o.timeout_ms = std::stoi(need_value("--timeout-ms"));
    else if (flag == "--max-conn")
      o.max_conn = std::stoi(need_value("--max-conn"));
    else if (flag == "--stream-interval-ms")
      o.stream_interval_ms = std::stoi(need_value("--stream-interval-ms"));
    else usage(("unknown flag " + flag).c_str());
    if (inline_value) usage(("flag " + flag + " takes no value").c_str());
  }
  return o;
}

LevelTable table_of(const Options& o) {
  if (o.table == "transmeta") return LevelTable::transmeta_tm5400();
  if (o.table == "xscale") return LevelTable::intel_xscale();
  usage("unknown --table (use transmeta or xscale)");
}

ListHeuristic heuristic_of(const Options& o) {
  if (o.heuristic == "ltf") return ListHeuristic::LongestTaskFirst;
  if (o.heuristic == "stf") return ListHeuristic::ShortestTaskFirst;
  if (o.heuristic == "fifo") return ListHeuristic::InsertionOrder;
  usage("unknown --heuristic (use ltf, stf or fifo)");
}

Scheme scheme_of(const Options& o) {
  static const std::map<std::string, Scheme> m{
      {"npm", Scheme::NPM}, {"spm", Scheme::SPM}, {"gss", Scheme::GSS},
      {"ss1", Scheme::SS1}, {"ss2", Scheme::SS2}, {"as", Scheme::AS}};
  const auto it = m.find(o.scheme);
  if (it == m.end()) usage("unknown --scheme");
  return it->second;
}

Application load(const Options& o) {
  if (!o.workload.empty() && o.workload[0] == '@') {
    if (o.workload == "@atr") return apps::build_atr();
    if (o.workload == "@synthetic") return apps::build_synthetic();
    if (o.workload == "@mpeg") return apps::build_mpeg();
    usage(("unknown built-in workload " + o.workload +
           " (use @atr, @synthetic or @mpeg)").c_str());
  }
  std::ifstream in(o.workload);
  if (!in) {
    std::cerr << "cannot open workload '" << o.workload << "'\n";
    std::exit(1);
  }
  return load_application(in);
}

OfflineResult analyze_with(const Application& app, const Options& o,
                           const PowerModel& pm, const Overheads& ovh) {
  OfflineOptions opt;
  opt.cpus = o.cpus;
  opt.heuristic = heuristic_of(o);
  opt.overhead_budget = ovh.worst_case_budget(pm.table());
  if (o.deadline_ms) {
    opt.deadline = SimTime::from_ms(*o.deadline_ms);
  } else {
    const SimTime w = canonical_worst_makespan(app, o.cpus,
                                               opt.overhead_budget,
                                               opt.heuristic);
    opt.deadline = SimTime{static_cast<std::int64_t>(
        static_cast<double>(w.ps) / o.load + 1)};
  }
  return analyze_offline(app, opt);
}

int cmd_analyze(const Options& o) {
  const Application app = load(o);
  const PowerModel pm(table_of(o));
  Overheads ovh;
  const OfflineResult off = analyze_with(app, o, pm, ovh);

  std::cout << "application : " << app.name << "\n"
            << "nodes       : " << app.graph.size() << " ("
            << app.graph.task_count() << " tasks, " << app.or_fork_count()
            << " OR forks)\n"
            << "cpus        : " << off.cpus() << "\n"
            << "heuristic   : " << o.heuristic << "\n"
            << "W (worst)   : " << to_string(off.worst_makespan()) << "\n"
            << "A (average) : " << to_string(off.average_makespan()) << "\n"
            << "deadline    : " << to_string(off.deadline()) << "\n"
            << "feasible    : " << (off.feasible() ? "yes" : "NO") << "\n\n";

  Table t({"node", "kind", "eo", "wcet_ms", "acet_ms", "lst_ms", "eet_ms"});
  for (NodeId id : app.graph.all_nodes()) {
    const Node& n = app.graph.node(id);
    t.add_row({n.name, to_string(n.kind), std::to_string(off.eo(id)),
               Table::num(n.wcet.ms(), 3), Table::num(n.acet.ms(), 3),
               Table::num(off.lst(id).ms(), 3),
               Table::num(off.eet(id).ms(), 3)});
  }
  t.write_pretty(std::cout);

  for (NodeId id : app.graph.all_nodes()) {
    if (!app.graph.node(id).is_or_fork()) continue;
    const OrForkProfile& p = off.fork_profile(id);
    std::cout << "\nPMP at fork '" << app.graph.node(id).name << "':";
    for (std::size_t a = 0; a < p.rem_w_alt.size(); ++a)
      std::cout << "  path" << a << " w=" << to_string(p.rem_w_alt[a])
                << " a=" << to_string(p.rem_a_alt[a]);
    std::cout << "\n";
  }
  return off.feasible() ? 0 : 1;
}

int cmd_simulate(const Options& o) {
  const Application app = load(o);
  const PowerModel pm(table_of(o));
  Overheads ovh;
  const OfflineResult off = analyze_with(app, o, pm, ovh);
  if (!off.feasible())
    std::cerr << "warning: infeasible deadline, guarantee void\n";

  Rng rng(o.seed);
  const RunScenario sc = draw_scenario(app.graph, rng);
  const SimResult r = simulate(app, off, pm, ovh, scheme_of(o), sc);
  const TraceStats st = analyze_trace(app, off, pm, r);
  const OracleResult oracle = clairvoyant_oracle(app, off, pm, ovh, sc);

  std::cout << "scheme        : " << o.scheme << "\n"
            << "energy        : " << r.total_energy() * 1e3 << " mJ  (busy "
            << r.busy_energy * 1e3 << ", overhead " << r.overhead_energy * 1e3
            << ", idle " << r.idle_energy * 1e3 << ")\n"
            << "oracle bound  : " << oracle.energy * 1e3 << " mJ @ "
            << pm.table().level(oracle.level).freq / kMHz << " MHz\n"
            << "finish        : " << to_string(r.finish_time) << " of "
            << to_string(off.deadline())
            << (r.deadline_met ? "  (met)" : "  (MISS)") << "\n"
            << "speed changes : " << r.speed_changes << "\n"
            << "utilization   : " << static_cast<int>(st.utilization * 100)
            << "%\n\n";
  render_gantt(std::cout, app, off, pm, r);

  if (o.power_csv) {
    std::cout << "\n";
    write_power_trace_csv(std::cout,
                          build_power_trace(app, off, pm, ovh, r));
  }
  if (!o.svg_path.empty()) {
    std::ofstream svg(o.svg_path);
    if (!svg) {
      std::cerr << "cannot write '" << o.svg_path << "'\n";
      return 1;
    }
    write_svg_gantt(svg, app, off, pm, ovh, r);
    std::cout << "wrote " << o.svg_path << "\n";
  }
  return r.deadline_met ? 0 : 1;
}

int cmd_sweep(const Options& o) {
  const Application app = load(o);
  ExperimentConfig cfg;
  cfg.cpus = o.cpus;
  cfg.table = table_of(o);
  cfg.runs = o.runs;
  cfg.seed = o.seed;
  cfg.threads = o.threads;
  cfg.batch = o.batch;
  cfg.dedup = o.dedup == "on"    ? DedupMode::kOn
              : o.dedup == "off" ? DedupMode::kOff
                                 : DedupMode::kAuto;
  cfg.heuristic = heuristic_of(o);
  cfg.audit = o.audit;

  // Observability sinks (all optional; none of them changes the sweep
  // output — see the determinism contract in obs/metrics.h).
  std::unique_ptr<Tracer> tracer;
  std::unique_ptr<Profiler> prof;
  if (!o.trace_out.empty()) {
    tracer = std::make_unique<Tracer>(Tracer::Detail::kRuns);
    cfg.tracer = tracer.get();
    // Phase counter tracks ride along in the trace file; write-only for
    // the sweep, like the tracer itself.
    prof = std::make_unique<Profiler>();
    cfg.prof = prof.get();
  }
  MetricsRegistry registry;  // scoped: one sweep's metrics, nothing else
  if (!o.metrics_out.empty()) {
    cfg.collect_metrics = true;
    cfg.registry = &registry;
  }
  std::unique_ptr<ProgressReporter> progress;
  if (o.progress) {
    progress = std::make_unique<ProgressReporter>(
        stderr_progress_renderer("sweep"));
    cfg.progress = progress.get();
  }

  std::vector<SweepPoint> points;
  if (o.x == "load") {
    points = sweep_load(app, cfg, sweep_range(o.from, o.to, o.step));
  } else if (o.x == "alpha") {
    points = sweep_alpha(app, cfg, o.load, sweep_range(o.from, o.to, o.step));
  } else {
    usage("--x must be load or alpha");
  }
  if (progress) progress->finish();

  if (!o.trace_out.empty()) {
    std::ofstream trace_file(o.trace_out);
    if (!trace_file) {
      std::cerr << "cannot write '" << o.trace_out << "'\n";
      return 1;
    }
    write_chrome_trace(trace_file, *tracer, prof.get());
    std::cerr << "wrote " << o.trace_out << " (" << tracer->event_count()
              << " events; open in ui.perfetto.dev)\n";
  }
  if (!o.metrics_out.empty()) {
    if (prof) prof->export_delta_to(registry);
    const MetricsSnapshot snap = registry.snapshot();
    const std::string rendered = o.metrics_format == "prometheus"
                                     ? metrics_to_prometheus(snap)
                                     : metrics_to_json(snap);
    if (o.metrics_out == "-") {
      std::cout << rendered;
    } else {
      std::ofstream metrics_file(o.metrics_out);
      if (!metrics_file) {
        std::cerr << "cannot write '" << o.metrics_out << "'\n";
        return 1;
      }
      metrics_file << rendered;
      std::cerr << "wrote " << o.metrics_out << "\n";
    }
  }

  if (o.json) {
    JsonExportOptions jopt;
    jopt.experiment_id = app.name + "-" + o.x;
    jopt.caption = "paserta_cli sweep";
    jopt.x_name = o.x;
    write_sweep_json(std::cout, points, jopt);
    std::cout << "\n";
  } else {
    sweep_table(points, o.x).write_csv(std::cout);
  }
  return 0;
}

int cmd_profile(const Options& o) {
  const Application app = load(o);
  ExperimentConfig cfg;
  cfg.cpus = o.cpus;
  cfg.table = table_of(o);
  cfg.runs = o.runs;
  cfg.seed = o.seed;
  cfg.threads = o.threads;
  cfg.batch = o.batch;
  cfg.dedup = o.dedup == "on"    ? DedupMode::kOn
              : o.dedup == "off" ? DedupMode::kOff
                                 : DedupMode::kAuto;
  cfg.heuristic = heuristic_of(o);

  Profiler prof(o.fallback ? Profiler::Mode::kFallback
                           : Profiler::Mode::kAuto);
  cfg.prof = &prof;

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<SweepPoint> points = sweep_load(
      app, cfg,
      o.sweep ? sweep_range(o.from, o.to, o.step)
              : std::vector<double>{o.load});
  const double wall_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - t0)
          .count();

  const std::vector<ProfPhaseTotals> phases = prof.snapshot();
  std::uint64_t top_ns = 0;
  for (const ProfPhaseTotals& p : phases)
    if (p.top_level) top_ns += p.ns;
  // Monte-Carlo draws across the whole command — the same denominator the
  // bench's runs/sec uses, so cycles/run here and cycles_per_run there
  // line up (EXPERIMENTS.md).
  const double total_runs =
      static_cast<double>(points.size()) * static_cast<double>(cfg.runs);
  const bool hw = prof.hardware();

  std::cout << "workload    : " << app.name << "  (" << points.size()
            << (points.size() == 1 ? " point, " : " points, ") << cfg.runs
            << " runs/point, " << o.threads << " thread"
            << (o.threads == 1 ? "" : "s") << ")\n"
            << "clock       : "
            << (hw ? "hardware counters" : "monotonic fallback") << "\n"
            << "wall        : " << Table::num(wall_ns / 1e6, 2) << " ms\n"
            << "attributed  : "
            << Table::num(100.0 * static_cast<double>(top_ns) / wall_ns, 1)
            << "% of wall in top-level phases\n\n";

  Table t({"phase", "count", "ms", "%wall", "cyc/run", "ipc", "L$miss%",
           "brm/kI"});
  for (const ProfPhaseTotals& p : phases) {
    if (p.count == 0) continue;
    // Nested phases (indented) break their top-level parent down and are
    // excluded from the attribution sum above.
    const std::string name = p.top_level ? p.name : "  " + p.name;
    const bool cols = hw && p.cycles > 0;
    t.add_row(
        {name, std::to_string(p.count),
         Table::num(static_cast<double>(p.ns) / 1e6, 2),
         Table::num(100.0 * static_cast<double>(p.ns) / wall_ns, 1),
         cols ? Table::num(static_cast<double>(p.cycles) / total_runs, 0)
              : "-",
         cols ? Table::num(static_cast<double>(p.instructions) /
                               static_cast<double>(p.cycles), 2)
              : "-",
         cols && p.cache_refs > 0
             ? Table::num(100.0 * static_cast<double>(p.cache_misses) /
                              static_cast<double>(p.cache_refs), 1)
             : "-",
         cols && p.instructions > 0
             ? Table::num(1000.0 * static_cast<double>(p.branch_misses) /
                              static_cast<double>(p.instructions), 2)
             : "-"});
  }
  t.write_pretty(std::cout);
  return 0;
}

int cmd_metrics(const Options& o) {
  const Application app = load(o);
  const GraphMetrics m = compute_metrics(app);
  std::cout << "application   : " << app.name << "\n"
            << "nodes         : " << m.nodes << " (" << m.tasks
            << " tasks, " << m.and_nodes << " AND, " << m.or_nodes
            << " OR of which " << m.or_forks << " forks)\n"
            << "edges         : " << m.edges << "\n"
            << "paths         : " << m.path_count << "\n"
            << "critical path : " << to_string(m.critical_path) << "\n"
            << "max work      : " << to_string(m.max_work) << "\n"
            << "expected work : " << to_string(m.expected_work) << "\n"
            << "parallelism   : " << m.parallelism << "\n";
  return 0;
}

int cmd_dot(const Options& o) {
  const Application app = load(o);
  write_dot(std::cout, app.graph, app.name);
  return 0;
}

int cmd_tables() {
  for (const LevelTable& t :
       {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
    const PowerModel pm(t);
    std::cout << t.name() << " (" << t.size() << " levels)\n";
    Table tab({"f_MHz", "V", "P_W"});
    for (const Level& l : t.levels())
      tab.add_row({Table::num(static_cast<double>(l.freq) / 1e6, 0),
                   Table::num(l.volts, 3), Table::num(pm.power(t.index_of(l.freq)), 3)});
    tab.write_pretty(std::cout);
    std::cout << "\n";
  }
  return 0;
}

// SIGINT/SIGTERM flag for cmd_serve's wait loop. sig_atomic_t write is
// all the handler does — the drain happens on the main thread.
volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) { g_stop_requested = 1; }

int cmd_serve(const Options& o) {
  std::unique_ptr<Tracer> tracer;
  if (!o.trace_out.empty()) tracer = std::make_unique<Tracer>();

  ServeSettings settings;
  settings.threads = o.threads;
  settings.batch = o.batch;
  settings.dedup = o.dedup == "on"    ? DedupMode::kOn
                   : o.dedup == "off" ? DedupMode::kOff
                                      : DedupMode::kAuto;
  settings.queue_limit = o.queue_limit;
  settings.tracer = tracer.get();
  SimService service(settings);

  ServerSettings net;
  net.port = static_cast<std::uint16_t>(o.port);
  net.max_connections = o.max_conn;
  net.request_timeout_ms = o.timeout_ms;
  net.stream_interval_ms = o.stream_interval_ms;
  SimServer server(service, net);

  struct sigaction sa{};
  sa.sa_handler = handle_stop_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  // The port line is machine-read by the smoke tests; keep it first and
  // flushed before any request arrives.
  std::cout << "listening on 127.0.0.1:" << server.port() << "\n"
            << build_version_string() << "\n" << std::flush;

  while (g_stop_requested == 0) {
    timespec ts{0, 200 * 1000 * 1000};
    ::nanosleep(&ts, nullptr);
  }
  std::cerr << "draining...\n";
  server.stop();  // drains the service, then joins the connections

  if (!o.trace_out.empty()) {
    std::ofstream trace_file(o.trace_out);
    if (!trace_file) {
      std::cerr << "cannot write '" << o.trace_out << "'\n";
      return 1;
    }
    write_chrome_trace(trace_file, *tracer, &service.profiler());
    std::cerr << "wrote " << o.trace_out << " (" << tracer->event_count()
              << " events)\n";
  }
  if (!o.metrics_out.empty()) {
    const std::string rendered =
        o.metrics_format == "prometheus"
            ? service.metrics_text()
            : metrics_to_json(service.registry().snapshot());
    if (o.metrics_out == "-") {
      std::cout << rendered;
    } else {
      std::ofstream metrics_file(o.metrics_out);
      if (!metrics_file) {
        std::cerr << "cannot write '" << o.metrics_out << "'\n";
        return 1;
      }
      metrics_file << rendered;
      std::cerr << "wrote " << o.metrics_out << "\n";
    }
  }
  std::cerr << "bye\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--version") == 0 ||
                    std::strcmp(argv[1], "-V") == 0)) {
    std::cout << build_version_string() << "\n";
    return 0;
  }
  try {
    const Options o = parse_args(argc, argv);
    if (o.command == "analyze") return cmd_analyze(o);
    if (o.command == "simulate") return cmd_simulate(o);
    if (o.command == "sweep") return cmd_sweep(o);
    if (o.command == "profile") return cmd_profile(o);
    if (o.command == "metrics") return cmd_metrics(o);
    if (o.command == "dot") return cmd_dot(o);
    if (o.command == "tables") return cmd_tables();
    if (o.command == "serve") return cmd_serve(o);
    usage(("unknown command " + o.command).c_str());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
