// Precompiled scenario sampler: the hot-loop replacement for draw_scenario.
//
// A Monte-Carlo sweep draws thousands of scenarios from one unchanging
// graph, yet draw_scenario re-derives every distribution parameter from the
// AoS Node structs on every run: mean/sigma/clamp bounds per computation
// node, plus a full validation + summation of the OR-fork weights inside
// Rng::next_discrete per choice. ScenarioSampler hoists all of that out of
// the run loop. Compiled once per AndOrGraph, it precomputes
//
//  * a flat op list over *only* the stochastic nodes, in node-index order:
//    (node, mean, sigma, lo, hi) for computation nodes with sigma > 0 and
//    prevalidated weight slices (with their precomputed sum) for OR forks;
//  * a template scenario holding everything deterministic — zeros for
//    dummies, -1 choices, and the fixed actual time of degenerate
//    (acet == wcet) computation nodes — that each draw starts from with two
//    memcpys.
//
// draw_into() then consumes the RNG stream in exactly the same order and
// count as draw_scenario and performs the same floating-point arithmetic on
// the same precomputed doubles, so the scenarios it produces are
// bit-identical to the legacy path for any seed (regression-tested; the
// stream-compatibility contract is written down in DESIGN.md §10).
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "sim/scenario.h"

namespace paserta {

/// Lane-major scenario slab for the batched engine (sim/batch_engine.h):
/// B runs' actual times and OR choices in contiguous 64-byte-aligned
/// arrays, one row per lane, row stride padded to a cache line so every
/// lane row starts aligned. Filled lane by lane through
/// ScenarioSampler::draw_into(rng, batch, lane) — each lane consumes its
/// own per-run Rng exactly as the RunScenario path does, so lane rows are
/// bit-identical to the scalar draws they replace.
struct ScenarioBatch {
  std::vector<SimTime, CacheAlignedAlloc<SimTime>> actual;
  std::vector<int, CacheAlignedAlloc<int>> or_choice;

  /// Grows the slab to `lanes` rows of `nodes` entries (never shrinks).
  void ensure(std::size_t lanes, std::size_t nodes) {
    nodes_ = nodes;
    actual_stride_ = aligned_stride<SimTime>(nodes);
    choice_stride_ = aligned_stride<int>(nodes);
    if (actual.size() < lanes * actual_stride_)
      actual.resize(lanes * actual_stride_);
    if (or_choice.size() < lanes * choice_stride_)
      or_choice.resize(lanes * choice_stride_);
  }

  std::size_t nodes() const { return nodes_; }
  SimTime* lane_actual(std::size_t lane) {
    return actual.data() + lane * actual_stride_;
  }
  const SimTime* lane_actual(std::size_t lane) const {
    return actual.data() + lane * actual_stride_;
  }
  int* lane_choice(std::size_t lane) {
    return or_choice.data() + lane * choice_stride_;
  }
  const int* lane_choice(std::size_t lane) const {
    return or_choice.data() + lane * choice_stride_;
  }

 private:
  std::size_t nodes_ = 0;
  std::size_t actual_stride_ = 0;
  std::size_t choice_stride_ = 0;
};

class ScenarioSampler {
 public:
  /// Compiles the sampler for `g`. Validates every OR fork's weight table
  /// once (same rules as Rng::next_discrete: non-empty, non-negative,
  /// positive sum); throws paserta::Error on violation. The sampler snap-
  /// shots all node attributes, so it must be recompiled after the graph's
  /// ACETs/WCETs or structure change (e.g. per alpha of an alpha sweep).
  explicit ScenarioSampler(const AndOrGraph& g);

  /// Draws a scenario into `out`, reusing its buffers (no allocation after
  /// the first call). Bit-identical results and RNG stream to
  /// draw_scenario(g, rng, out) for the same RNG state.
  void draw_into(Rng& rng, RunScenario& out) const;

  /// Draws a scenario into row `lane` of a batch slab: the identical
  /// template copy + stochastic-op walk as the RunScenario overload, on
  /// the identical RNG stream, writing through the slab's lane pointers.
  /// The slab must have been ensure()d for this sampler's node count.
  void draw_into(Rng& rng, ScenarioBatch& out, std::size_t lane) const;

  // Key-emitting variants for the dedup memoization layer (DESIGN.md §15):
  // identical draws (same RNG stream, same scenario bits) that additionally
  // write the scenario's canonical fingerprint into `key_out`, one 64-bit
  // word per stochastic op in op order — the rounded actual time's bit
  // pattern for a gaussian op, the chosen alternative index for an OR
  // fork. Two draws produce equal keys iff they produce bit-identical
  // scenarios: everything else in a scenario comes from the shared
  // template, and the key captures each stochastic value *after* the only
  // lossy step (the round to integer picoseconds). `key_out` must hold
  // op_count() words.
  void draw_into(Rng& rng, RunScenario& out, std::uint64_t* key_out) const;
  void draw_into(Rng& rng, ScenarioBatch& out, std::size_t lane,
                 std::uint64_t* key_out) const;

  /// Convenience allocating overload, mirroring draw_scenario's.
  RunScenario draw(Rng& rng) const;

  /// Number of nodes of the compiled graph.
  std::size_t node_count() const { return template_actual_.size(); }
  /// Stochastic ops per draw: gaussian computation nodes + OR forks.
  std::size_t op_count() const { return ops_.size(); }
  std::size_t fork_count() const { return forks_.size(); }
  std::size_t gaussian_count() const { return ops_.size() - forks_.size(); }

  /// Size of the scenario space this sampler draws from: the product of
  /// every OR fork's alternative count when all stochastic ops are forks
  /// (saturated at UINT64_MAX), or 0 — unbounded — when any gaussian op
  /// exists. 1 means the workload is fully deterministic. The dedup layer
  /// uses this to decide whether memoization is guaranteed to pay.
  std::uint64_t scenario_space() const;

 private:
  /// One stochastic draw. Ops are stored in ascending node order — the
  /// order draw_scenario visits them — which is what keeps the RNG stream
  /// identical. `fork < 0` marks a gaussian op (mean/sigma/lo/hi valid);
  /// otherwise `fork` indexes forks_.
  struct Op {
    std::uint32_t node = 0;
    std::int32_t fork = -1;
    double mean = 0.0;
    double sigma = 0.0;
    double lo = 0.0;
    double hi = 0.0;
  };
  /// A prevalidated weight slice of weights_ plus its precomputed sum.
  struct Fork {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    double total = 0.0;
  };

  /// Shared body of all draw_into overloads. kWithKey is a compile-time
  /// split so the keyless hot path carries no per-op branch.
  template <bool kWithKey>
  void draw_ops(Rng& rng, SimTime* actual, int* choice,
                std::uint64_t* key_out) const;

  std::vector<Op> ops_;
  std::vector<Fork> forks_;
  std::vector<double> weights_;  // all fork weights, flat
  // Per-draw starting point: deterministic values baked in.
  std::vector<SimTime> template_actual_;
  std::vector<int> template_choice_;
};

}  // namespace paserta
