// Speed-selection policies: the six schemes evaluated in the paper.
//
//  NPM — no power management: every task at f_max (the normalization base).
//  SPM — static power management: one application-wide level derived from
//        the canonical worst-case makespan W and the deadline D (§5).
//  GSS — greedy slack sharing (§3): per-task speed from the latest start
//        time; uses all slack available at dispatch.
//  SS1 — static speculation, single speed (§4.1): a statistical floor
//        f_max * A / D under which GSS never drops.
//  SS2 — static speculation, two speeds (§4.1): floor f_l before the
//        computed switch point theta, f_h after.
//  AS  — adaptive speculation (§4.2): the floor is re-derived from the
//        expected remaining work after every OR node.
//
// Static policies (NPM/SPM) never touch the DVS hardware at run time and
// therefore pay no speed-computation or transition overheads; dynamic
// policies pay 'compute' per dispatch and 'switch' whenever the chosen
// level differs from the processor's current one (the engine charges both).
#pragma once

#include <memory>
#include <string>

#include "core/offline.h"
#include "power/power_model.h"

namespace paserta {

enum class Scheme { NPM, SPM, GSS, SS1, SS2, AS };

const char* to_string(Scheme s);

class SpeedPolicy {
 public:
  enum class Kind {
    Static,   // fixed level, no runtime PMPs
    Dynamic,  // per-task GSS speed, optionally raised to a floor
  };

  virtual ~SpeedPolicy() = default;

  virtual const char* name() const = 0;
  virtual Kind kind() const = 0;

  /// Called once per run before simulation starts.
  virtual void reset(const OfflineResult& off, const PowerModel& pm) = 0;

  /// Static policies: the level index every task runs at.
  virtual std::size_t static_level() const { return 0; }

  /// Dynamic policies: the speculative frequency floor active at time `t`
  /// (0 = pure greedy). Always a table frequency or 0.
  virtual Freq floor_freq(SimTime t) const {
    (void)t;
    return 0;
  }

  /// Dynamic policies: notification that an OR node fired. `chosen_alt` is
  /// the selected alternative index for forks and -1 for joins.
  virtual void on_or_fired(NodeId node, int chosen_alt, SimTime now,
                           const OfflineResult& off, const PowerModel& pm) {
    (void)node;
    (void)chosen_alt;
    (void)now;
    (void)off;
    (void)pm;
  }
};

/// Options for the speculative schemes. The paper's print is ambiguous on
/// whether a speculated speed between two levels rounds to the higher or
/// lower one for SS1/AS; both are safe (the greedy component guarantees
/// the deadline either way), so the choice is exposed and benchmarked
/// (bench_ablation_rounding). Default: round up, which needs fewer
/// corrective switches later.
struct PolicyOptions {
  enum class SpecRounding { Up, Down };
  SpecRounding spec_rounding = SpecRounding::Up;
};

/// Factory for the paper's schemes.
std::unique_ptr<SpeedPolicy> make_policy(Scheme s,
                                         const PolicyOptions& options = {});

/// A static policy pinned to one level. Building block for the clairvoyant
/// oracle (core/oracle.h) and for custom what-if experiments.
class FixedLevelPolicy final : public SpeedPolicy {
 public:
  explicit FixedLevelPolicy(std::size_t level) : level_(level) {}
  const char* name() const override { return "FIXED"; }
  Kind kind() const override { return Kind::Static; }
  void reset(const OfflineResult&, const PowerModel& pm) override;
  std::size_t static_level() const override { return level_; }

 private:
  std::size_t level_;
};

/// SS1 and SS2 (paper §4.1). Exposed concretely — make_policy returns this
/// type for Scheme::SS1/SS2 — so tests can pin the speculation internals
/// (the bracket frequencies and the switch point theta) exactly.
class StaticSpecPolicy final : public SpeedPolicy {
 public:
  StaticSpecPolicy(bool two_speeds, PolicyOptions::SpecRounding rounding)
      : two_speeds_(two_speeds), rounding_(rounding) {}

  const char* name() const override { return two_speeds_ ? "SS2" : "SS1"; }
  Kind kind() const override { return Kind::Dynamic; }
  void reset(const OfflineResult& off, const PowerModel& pm) override;

  Freq floor_freq(SimTime now) const override {
    return (two_speeds_ && now < theta_) ? f_low_ : f_high_;
  }

  SimTime theta() const { return theta_; }
  Freq f_low() const { return f_low_; }
  Freq f_high() const { return f_high_; }

 private:
  bool two_speeds_;
  PolicyOptions::SpecRounding rounding_;
  Freq f_low_ = 0;
  Freq f_high_ = 0;
  SimTime theta_{};
};

/// Frequency needed to fit `work` (time at f_max) into `avail`:
/// ceil(f_max * work / avail), the deadline-safe direction. Returns f_max
/// when avail <= 0. Inline — the engine calls it once per dynamic
/// dispatch. Fast path mirroring scale_time: when f_max * work + avail - 1
/// fits in 64 bits (every workload in the paper), one hardware divide
/// replaces the libgcc 128-bit division; both paths compute the identical
/// quotient.
inline Freq required_freq(Freq f_max, SimTime work, SimTime avail) {
  if (avail <= SimTime::zero()) return f_max;
  if (work <= SimTime::zero()) return 0;
  const auto w = static_cast<std::uint64_t>(work.ps);
  const auto d = static_cast<std::uint64_t>(avail.ps);
  const std::uint64_t limit = ~std::uint64_t{0} - (d - 1);
  if (w <= limit / f_max) {
    const std::uint64_t f = (f_max * w + (d - 1)) / d;
    return f >= f_max ? f_max : static_cast<Freq>(f);
  }
  const auto num =
      static_cast<__int128>(f_max) * static_cast<__int128>(work.ps);
  const auto den = static_cast<__int128>(avail.ps);
  const __int128 f = (num + den - 1) / den;
  if (f >= static_cast<__int128>(f_max)) return f_max;
  return static_cast<Freq>(f);
}

}  // namespace paserta
