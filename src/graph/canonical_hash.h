// Content-addressed graph identity (DESIGN.md §16).
//
// The serve daemon memoizes offline analysis *across requests*, but the
// OfflineCache keys by graph address — two requests that parse the same
// workload text produce two Application objects and would never share an
// entry. This module assigns every AndOrGraph a canonical form that
// depends only on its structure and timing/probability attributes — not
// on node names, not on construction order — so structurally identical
// graphs can be interned to one shared object.
//
// The canonical form is computed by Weisfeiler–Leman-style color
// refinement: each node starts from a signature of its local attributes
// (kind, wcet, acet) and repeatedly absorbs the *sorted* multiset of its
// neighbors' signatures (successors paired with their branch-probability
// bits, predecessors bare). Sorting at every step removes any dependence
// on adjacency-list or insertion order. After refinement, nodes are laid
// out in signature order and serialized — attributes plus re-indexed
// successor lists — into a flat word array whose bytes are the canonical
// form. Nodes whose signatures tie are automorphic in practice (a
// non-automorphic tie is a 64-bit collision between refined signatures);
// interchange of automorphic nodes leaves the serialization unchanged.
//
// The 64-bit content hash is a fold over the canonical words. Callers
// that need collision *safety* (the serve GraphStore) compare the full
// canonical form on hash match, mirroring FingerprintTable's
// full-key-compare discipline.
#pragma once

#include <cstdint>
#include <vector>

namespace paserta {

class AndOrGraph;

/// Order-independent, name-independent serialization of the graph's
/// structure and attributes. Two graphs have equal canonical forms iff
/// they are the same AND/OR program up to node naming and construction
/// order (modulo refined-signature collisions, see header comment).
std::vector<std::uint64_t> graph_canonical_form(const AndOrGraph& g);

/// 64-bit hash of graph_canonical_form(). Stable across processes (no
/// ASLR-dependent input), suitable as a cross-request cache key.
std::uint64_t graph_content_hash(const AndOrGraph& g);

/// Name-free serialization in *insertion order* (not canonicalized). Two
/// graphs with equal ordered forms are interchangeable bit-for-bit in the
/// simulation: every tie-break in the pipeline (list-scheduling order,
/// ready-queue order, EO assignment) keys on node ids or attributes,
/// never on names. The serve GraphStore interns on THIS form — reordered
/// isomorphic graphs share a content hash (see graph_canonical_form) but
/// intern as distinct entries, because insertion order can legally steer
/// tie-breaks and the server guarantees responses bit-identical to the
/// CLI running the caller's own construction.
std::vector<std::uint64_t> graph_ordered_form(const AndOrGraph& g);

/// splitmix64-style combine step shared by the serve request keys: folds
/// `word` into accumulator `h`. Not order-insensitive — callers fold
/// fields in a fixed documented order.
std::uint64_t hash_combine_u64(std::uint64_t h, std::uint64_t word);

}  // namespace paserta
