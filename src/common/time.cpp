#include "common/time.h"

#include <cstdio>

namespace paserta {

std::string to_string(SimTime t) {
  char buf[64];
  const double abs_ps = static_cast<double>(t.ps < 0 ? -t.ps : t.ps);
  if (abs_ps >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fms", t.ms());
  } else if (abs_ps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fus", t.us());
  } else if (abs_ps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fns", t.ns());
  } else {
    std::snprintf(buf, sizeof(buf), "%ldps", static_cast<long>(t.ps));
  }
  return buf;
}

}  // namespace paserta
