// Content-hash canonicalization (graph/canonical_hash.h): identical
// graphs built through different routes hash equal; any structural,
// timing or probability change hashes different; and the ordered form —
// the serve GraphStore's equality key — tracks construction order while
// staying name-free.
#include <gtest/gtest.h>

#include "graph/canonical_hash.h"
#include "graph/graph.h"
#include "graph/text_format.h"
#include "serve/graph_store.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

// A small AND/OR shape: fork -> {fast | slow} with a join, plus a
// straight-line task. Built with node insertions in the given order.
AndOrGraph diamond(bool reversed_insertion, double p_fast = 0.4,
                   double slow_wcet = 6.0) {
  AndOrGraph g;
  if (!reversed_insertion) {
    const NodeId pre = g.add_task("pre", ms(2), ms(1));
    const NodeId fork = g.add_or("fork");
    const NodeId fast = g.add_task("fast", ms(3), ms(2));
    const NodeId slow = g.add_task("slow", ms(slow_wcet), ms(3));
    const NodeId join = g.add_or("join");
    g.add_edge(pre, fork);
    g.add_or_edge(fork, fast, p_fast);
    g.add_or_edge(fork, slow, 1.0 - p_fast);
    g.add_edge(fast, join);
    g.add_edge(slow, join);
  } else {
    // Same graph, nodes and edges introduced in a different order (and
    // under different names — both must wash out of the content hash).
    const NodeId join = g.add_or("J");
    const NodeId slow = g.add_task("S", ms(slow_wcet), ms(3));
    const NodeId fast = g.add_task("F", ms(3), ms(2));
    const NodeId fork = g.add_or("K");
    const NodeId pre = g.add_task("P", ms(2), ms(1));
    g.add_edge(slow, join);
    g.add_edge(fast, join);
    g.add_or_edge(fork, fast, p_fast);
    g.add_or_edge(fork, slow, 1.0 - p_fast);
    g.add_edge(pre, fork);
  }
  return g;
}

TEST(CanonicalHash, ConstructionOrderAndNamesWashOut) {
  const AndOrGraph a = diamond(false);
  const AndOrGraph b = diamond(true);
  EXPECT_EQ(graph_canonical_form(a), graph_canonical_form(b));
  EXPECT_EQ(graph_content_hash(a), graph_content_hash(b));
  // The ordered (insertion-sensitive) form must NOT collapse them: the
  // simulation's tie-breaks may legally differ between the two orders.
  EXPECT_NE(graph_ordered_form(a), graph_ordered_form(b));
}

TEST(CanonicalHash, TextParseMatchesProgrammaticConstruction) {
  const char* text = R"(app demo
section
  task A 8 5
  task B 5 3
  task C 4 2
  edge A B
  edge A C
end
)";
  const Application parsed = load_application_string(text);

  AndOrGraph built;
  const NodeId a = built.add_task("A", ms(8), ms(5));
  const NodeId b = built.add_task("B", ms(5), ms(3));
  const NodeId c = built.add_task("C", ms(4), ms(2));
  built.add_edge(a, b);
  built.add_edge(a, c);

  EXPECT_EQ(graph_content_hash(parsed.graph), graph_content_hash(built));
  EXPECT_EQ(graph_canonical_form(parsed.graph), graph_canonical_form(built));
}

TEST(CanonicalHash, NamesNeverReachEitherForm) {
  AndOrGraph a;
  a.add_task("alpha", ms(4), ms(2));
  AndOrGraph b;
  b.add_task("completely-different", ms(4), ms(2));
  EXPECT_EQ(graph_content_hash(a), graph_content_hash(b));
  EXPECT_EQ(graph_ordered_form(a), graph_ordered_form(b));
}

TEST(CanonicalHash, WcetChangeChangesHash) {
  const AndOrGraph base = diamond(false);
  const AndOrGraph changed = diamond(false, 0.4, /*slow_wcet=*/6.5);
  EXPECT_NE(graph_content_hash(base), graph_content_hash(changed));
}

TEST(CanonicalHash, AcetChangeChangesHash) {
  AndOrGraph a;
  a.add_task("t", ms(4), ms(2));
  AndOrGraph b;
  b.add_task("t", ms(4), ms(3));
  EXPECT_NE(graph_content_hash(a), graph_content_hash(b));
}

TEST(CanonicalHash, ProbabilityChangeChangesHash) {
  const AndOrGraph base = diamond(false, 0.4);
  const AndOrGraph changed = diamond(false, 0.5);
  EXPECT_NE(graph_content_hash(base), graph_content_hash(changed));
}

TEST(CanonicalHash, StructureChangeChangesHash) {
  AndOrGraph chain;
  const NodeId c1 = chain.add_task("a", ms(1), ms(1));
  const NodeId c2 = chain.add_task("b", ms(1), ms(1));
  const NodeId c3 = chain.add_task("c", ms(1), ms(1));
  chain.add_edge(c1, c2);
  chain.add_edge(c2, c3);

  AndOrGraph fan;
  const NodeId f1 = fan.add_task("a", ms(1), ms(1));
  const NodeId f2 = fan.add_task("b", ms(1), ms(1));
  const NodeId f3 = fan.add_task("c", ms(1), ms(1));
  fan.add_edge(f1, f2);
  fan.add_edge(f1, f3);

  EXPECT_NE(graph_content_hash(chain), graph_content_hash(fan));
}

TEST(CanonicalHash, AutomorphicSiblingsStillCanonicalize) {
  // Two interchangeable parallel tasks: swapping their insertion order
  // must not move the canonical form (their refined signatures tie and
  // the serialization is invariant under their interchange).
  AndOrGraph a;
  const NodeId src_a = a.add_task("src", ms(2), ms(1));
  a.add_edge(src_a, a.add_task("x", ms(3), ms(2)));
  a.add_edge(src_a, a.add_task("y", ms(3), ms(2)));

  AndOrGraph b;
  const NodeId y = b.add_task("y", ms(3), ms(2));
  const NodeId x = b.add_task("x", ms(3), ms(2));
  const NodeId src_b = b.add_task("src", ms(2), ms(1));
  b.add_edge(src_b, y);
  b.add_edge(src_b, x);

  EXPECT_EQ(graph_canonical_form(a), graph_canonical_form(b));
}

TEST(GraphStore, InternsByContentButKeepsOrdersApart) {
  GraphStore store;
  AndOrGraph g1 = diamond(false);
  AndOrGraph g2 = diamond(false);  // same construction -> same entry
  AndOrGraph g3 = diamond(true);   // isomorphic, different order

  const auto& e1 = store.intern(Application{"a", std::move(g1), {}});
  const auto& e2 = store.intern(Application{"b", std::move(g2), {}});
  const auto& e3 = store.intern(Application{"c", std::move(g3), {}});

  EXPECT_EQ(&e1, &e2);  // content-equal: one resident Application
  EXPECT_NE(&e1, &e3);  // reordered: distinct entry...
  EXPECT_EQ(e1.content_hash, e3.content_hash);  // ...sharing the hash
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.misses(), 2u);
}

}  // namespace
}  // namespace paserta
