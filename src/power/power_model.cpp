#include "power/power_model.h"

#include "common/error.h"

namespace paserta {

PowerModel::PowerModel(LevelTable table, double c_ef, double idle_fraction)
    : table_(std::move(table)), c_ef_(c_ef), idle_fraction_(idle_fraction) {
  PASERTA_REQUIRE(c_ef_ > 0.0, "effective capacitance must be positive");
  PASERTA_REQUIRE(idle_fraction_ >= 0.0 && idle_fraction_ <= 1.0,
                  "idle fraction must be in [0,1]");
}

}  // namespace paserta
