#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.h"

namespace paserta {

const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::Computation: return "task";
    case NodeKind::AndNode: return "and";
    case NodeKind::OrNode: return "or";
  }
  return "?";
}

NodeId AndOrGraph::add_node(Node n) {
  PASERTA_REQUIRE(nodes_.size() < NodeId::kInvalid, "graph too large");
  nodes_.push_back(std::move(n));
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

NodeId AndOrGraph::add_task(std::string name, SimTime wcet, SimTime acet) {
  PASERTA_REQUIRE(wcet > SimTime::zero(),
                  "task '" << name << "' needs positive WCET");
  PASERTA_REQUIRE(acet > SimTime::zero() && acet <= wcet,
                  "task '" << name << "' needs 0 < ACET <= WCET (got acet="
                           << acet.ps << "ps, wcet=" << wcet.ps << "ps)");
  Node n;
  n.kind = NodeKind::Computation;
  n.name = std::move(name);
  n.wcet = wcet;
  n.acet = acet;
  return add_node(std::move(n));
}

NodeId AndOrGraph::add_and(std::string name) {
  Node n;
  n.kind = NodeKind::AndNode;
  n.name = std::move(name);
  return add_node(std::move(n));
}

NodeId AndOrGraph::add_or(std::string name) {
  Node n;
  n.kind = NodeKind::OrNode;
  n.name = std::move(name);
  return add_node(std::move(n));
}

void AndOrGraph::add_edge(NodeId from, NodeId to) {
  PASERTA_REQUIRE(from.value < nodes_.size() && to.value < nodes_.size(),
                  "add_edge with out-of-range node id");
  PASERTA_REQUIRE(from != to, "self edge on node '" << node(from).name << "'");
  Node& f = nodes_[from.value];
  PASERTA_REQUIRE(
      std::find(f.succs.begin(), f.succs.end(), to) == f.succs.end(),
      "duplicate edge " << f.name << " -> " << node(to).name);
  f.succs.push_back(to);
  if (f.kind == NodeKind::OrNode && !f.succ_prob.empty()) {
    PASERTA_ASSERT(false, "mixing add_edge and add_or_edge on an OR fork");
  }
  nodes_[to.value].preds.push_back(from);
}

void AndOrGraph::add_or_edge(NodeId or_fork, NodeId to, double probability) {
  PASERTA_REQUIRE(or_fork.value < nodes_.size(),
                  "add_or_edge with out-of-range node id");
  Node& f = nodes_[or_fork.value];
  PASERTA_REQUIRE(f.kind == NodeKind::OrNode,
                  "add_or_edge requires an OR node, got '" << f.name << "'");
  PASERTA_REQUIRE(probability > 0.0 && probability <= 1.0,
                  "branch probability must be in (0,1], got " << probability);
  PASERTA_REQUIRE(f.succ_prob.size() == f.succs.size(),
                  "mixing add_edge and add_or_edge on OR fork '" << f.name
                                                                 << "'");
  PASERTA_REQUIRE(
      std::find(f.succs.begin(), f.succs.end(), to) == f.succs.end(),
      "duplicate edge " << f.name << " -> " << node(to).name);
  f.succs.push_back(to);
  f.succ_prob.push_back(probability);
  nodes_[to.value].preds.push_back(or_fork);
}

std::vector<NodeId> AndOrGraph::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) out.emplace_back(i);
  return out;
}

std::vector<NodeId> AndOrGraph::sources() const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].preds.empty()) out.emplace_back(i);
  return out;
}

std::vector<NodeId> AndOrGraph::sinks() const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].succs.empty()) out.emplace_back(i);
  return out;
}

std::vector<NodeId> AndOrGraph::topo_order() const {
  std::vector<std::uint32_t> indeg(nodes_.size(), 0);
  for (const auto& n : nodes_)
    for (NodeId s : n.succs) ++indeg[s.value];

  // Min-heap on id for a deterministic order.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>> ready;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i)
    if (indeg[i] == 0) ready.push(i);

  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const std::uint32_t u = ready.top();
    ready.pop();
    order.emplace_back(u);
    for (NodeId s : nodes_[u].succs)
      if (--indeg[s.value] == 0) ready.push(s.value);
  }
  PASERTA_REQUIRE(order.size() == nodes_.size(),
                  "AND/OR graph contains a cycle");
  return order;
}

std::size_t AndOrGraph::task_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (node.kind == NodeKind::Computation) ++n;
  return n;
}

SimTime AndOrGraph::total_wcet() const {
  SimTime t{};
  for (const auto& n : nodes_) t += n.wcet;
  return t;
}

SimTime AndOrGraph::total_acet() const {
  SimTime t{};
  for (const auto& n : nodes_) t += n.acet;
  return t;
}

void AndOrGraph::set_acet(NodeId id, SimTime acet) {
  Node& n = nodes_.at(id.value);
  PASERTA_REQUIRE(n.kind == NodeKind::Computation,
                  "set_acet on dummy node '" << n.name << "'");
  PASERTA_REQUIRE(acet > SimTime::zero() && acet <= n.wcet,
                  "set_acet('" << n.name << "'): need 0 < acet <= wcet");
  n.acet = acet;
}

std::optional<NodeId> AndOrGraph::find(const std::string& name) const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].name == name) return NodeId{i};
  return std::nullopt;
}

}  // namespace paserta
