// Layer-by-layer task-graph generator (TGFF-style).
//
// The standard generator of this literature: tasks arranged in layers,
// edges only between adjacent layers, every non-entry task depending on at
// least one task of the previous layer. Produces the wide, synchronization-
// heavy sections that stress multiprocessor slack sharing differently from
// random_app's sparse DAGs. Can emit a single section or a full AND/OR
// program with probabilistic branches between layered stages.
#pragma once

#include "common/rng.h"
#include "graph/program.h"

namespace paserta::apps {

struct LayeredConfig {
  int layers = 4;
  int min_width = 2;
  int max_width = 5;
  /// Probability of an edge between a node and each node of the next
  /// layer (each next-layer node additionally gets one guaranteed
  /// predecessor).
  double fan_prob = 0.4;
  SimTime wcet_min = SimTime::from_ms(1.0);
  SimTime wcet_max = SimTime::from_ms(8.0);
  double alpha_min = 0.4;
  double alpha_max = 0.9;
};

/// One layered section.
SectionSpec layered_section(Rng& rng, const LayeredConfig& config);

/// `stages` layered sections chained through OR branches: after each stage
/// a two-way branch either continues with the next full stage or takes a
/// cheap fallback path (probability `shortcut_prob`).
Program layered_program(Rng& rng, const LayeredConfig& config, int stages,
                        double shortcut_prob = 0.3);

Application layered_application(Rng& rng, const LayeredConfig& config,
                                int stages, double shortcut_prob = 0.3,
                                const std::string& name = "layered");

}  // namespace paserta::apps
