// Unit tests for the hierarchical Program builder: flattening, glue
// insertion, branch structure, loop expansion and collapse.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "graph/program.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }
TaskSpec t(const char* n, double w, double a) {
  return TaskSpec{n, ms(w), ms(a)};
}

std::size_t count_kind(const AndOrGraph& g, NodeKind k) {
  std::size_t n = 0;
  for (NodeId id : g.all_nodes())
    if (g.node(id).kind == k) ++n;
  return n;
}

TEST(Program, EmptyProgramRejected) {
  Program p;
  EXPECT_THROW(build_application("x", p), Error);
}

TEST(Program, SingleTask) {
  Program p;
  p.task("solo", ms(5), ms(3));
  const Application app = build_application("one", p);
  EXPECT_EQ(app.graph.size(), 1u);
  EXPECT_EQ(app.structure.segments.size(), 1u);
  EXPECT_EQ(app.structure.segments[0].kind, StructSegment::Kind::Section);
}

TEST(Program, ChainBuildsSerialEdges) {
  Program p;
  p.chain({t("a", 1, 1), t("b", 2, 1), t("c", 3, 1)});
  const Application app = build_application("chain", p);
  const NodeId a = *app.graph.find("a");
  const NodeId b = *app.graph.find("b");
  const NodeId c = *app.graph.find("c");
  EXPECT_EQ(app.graph.node(a).succs, (std::vector<NodeId>{b}));
  EXPECT_EQ(app.graph.node(b).succs, (std::vector<NodeId>{c}));
}

TEST(Program, ParallelTasksShareNoEdges) {
  Program p;
  p.parallel({t("a", 1, 1), t("b", 2, 1)});
  const Application app = build_application("par", p);
  EXPECT_TRUE(app.graph.node(*app.graph.find("a")).succs.empty());
  EXPECT_TRUE(app.graph.node(*app.graph.find("b")).succs.empty());
}

TEST(Program, SequentialSectionsConnect) {
  // Two-sink section followed by a two-source section requires a glue AND.
  Program p;
  p.parallel({t("a", 1, 1), t("b", 2, 1)});
  p.parallel({t("c", 1, 1), t("d", 2, 1)});
  const Application app = build_application("seq", p);
  EXPECT_EQ(count_kind(app.graph, NodeKind::AndNode), 1u);
  // The glue belongs to the first section.
  EXPECT_EQ(app.structure.segments[0].members.size(), 3u);
  EXPECT_EQ(app.structure.segments[1].members.size(), 2u);
  app.graph.validate();
}

TEST(Program, SingleSinkToMultiSourceNeedsNoGlue) {
  Program p;
  p.task("head", ms(1), ms(1));
  p.parallel({t("x", 1, 1), t("y", 1, 1)});
  const Application app = build_application("fan", p);
  EXPECT_EQ(count_kind(app.graph, NodeKind::AndNode), 0u);
  const NodeId head = *app.graph.find("head");
  EXPECT_EQ(app.graph.node(head).succs.size(), 2u);
}

TEST(Program, BranchCreatesForkAndJoin) {
  Program a, b;
  a.task("fa", ms(8), ms(6));
  b.task("gb", ms(5), ms(3));
  Program p;
  p.task("pre", ms(1), ms(1));
  p.branch("o", {{0.3, std::move(a)}, {0.7, std::move(b)}});
  const Application app = build_application("br", p);
  EXPECT_EQ(count_kind(app.graph, NodeKind::OrNode), 2u);
  EXPECT_EQ(app.or_fork_count(), 1u);

  const StructSegment& seg = app.structure.segments[1];
  EXPECT_EQ(seg.kind, StructSegment::Kind::Branch);
  EXPECT_EQ(seg.alternatives.size(), 2u);
  EXPECT_DOUBLE_EQ(seg.alt_prob[0], 0.3);
  EXPECT_DOUBLE_EQ(seg.alt_prob[1], 0.7);
  const Node& fork = app.graph.node(seg.fork);
  ASSERT_EQ(fork.succ_prob.size(), 2u);
  EXPECT_DOUBLE_EQ(fork.succ_prob[0] + fork.succ_prob[1], 1.0);
}

TEST(Program, BranchProbabilitiesValidated) {
  Program a;
  a.task("x", ms(1), ms(1));
  Program p;
  EXPECT_THROW(p.branch("bad", {{0.4, a}, {0.4, a}}), Error);
  EXPECT_THROW(p.branch("bad", {}), Error);
  EXPECT_THROW(p.branch("bad", {{1.5, a}}), Error);
}

TEST(Program, EmptyAlternativeBecomesSkipDummy) {
  Program work;
  work.task("w", ms(4), ms(2));
  Program p;
  p.task("pre", ms(1), ms(1));
  p.branch("opt", {{0.5, std::move(work)}, {0.5, Program{}}});
  const Application app = build_application("skip", p);
  // One AND dummy for the skipped path.
  EXPECT_EQ(count_kind(app.graph, NodeKind::AndNode), 1u);
  app.graph.validate();
}

TEST(Program, MultiEntryAlternativeGetsGlueFork) {
  Program alt;
  alt.parallel({t("x", 1, 1), t("y", 1, 1)});
  Program other;
  other.task("z", ms(1), ms(1));
  Program p;
  p.task("pre", ms(1), ms(1));
  p.branch("o", {{0.5, std::move(alt)}, {0.5, std::move(other)}});
  const Application app = build_application("glue", p);
  // glue AND fork for the two-entry alternative + glue AND join for its
  // two exits.
  EXPECT_EQ(count_kind(app.graph, NodeKind::AndNode), 2u);
  app.graph.validate();
}

TEST(Program, NestedBranches) {
  Program inner_a, inner_b;
  inner_a.task("ia", ms(1), ms(1));
  inner_b.task("ib", ms(2), ms(1));
  Program outer_alt;
  outer_alt.task("oa_pre", ms(1), ms(1));
  outer_alt.branch("inner", {{0.5, std::move(inner_a)}, {0.5, std::move(inner_b)}});
  Program other;
  other.task("ob", ms(3), ms(2));
  Program p;
  p.task("pre", ms(1), ms(1));
  p.branch("outer", {{0.6, std::move(outer_alt)}, {0.4, std::move(other)}});
  const Application app = build_application("nested", p);
  EXPECT_EQ(app.or_fork_count(), 2u);
  app.graph.validate();
}

// ------------------------------------------------------------------ loops

TEST(Loop, UnrollTwoIterations) {
  Program body;
  body.task("body", ms(2), ms(1));
  Program p;
  p.loop("L", std::move(body), {0.5, 0.5});
  const Application app = build_application("loop2", p);
  // Two body copies (renamed body#1 / body#2) and one OR exit structure.
  EXPECT_EQ(app.graph.task_count(), 2u);
  EXPECT_TRUE(app.graph.find("body#1").has_value());
  EXPECT_TRUE(app.graph.find("body#2").has_value());
  EXPECT_EQ(app.or_fork_count(), 1u);
  app.graph.validate();
}

TEST(Loop, UnrollRespectsConditionalProbabilities) {
  Program body;
  body.task("b", ms(1), ms(1));
  Program p;
  p.loop("L", std::move(body), {0.25, 0.25, 0.5});
  const Application app = build_application("loop3", p);
  EXPECT_EQ(app.graph.task_count(), 3u);
  // First exit fork: P(stop after 1) = 0.25.
  // Second: P(stop after 2 | reached 2) = 0.25/0.75 = 1/3.
  std::vector<double> exit_probs;
  for (NodeId id : app.graph.all_nodes()) {
    const Node& n = app.graph.node(id);
    if (n.is_or_fork()) exit_probs.push_back(n.succ_prob[0]);
  }
  ASSERT_EQ(exit_probs.size(), 2u);
  std::sort(exit_probs.begin(), exit_probs.end());
  EXPECT_NEAR(exit_probs[0], 0.25, 1e-12);
  EXPECT_NEAR(exit_probs[1], 1.0 / 3.0, 1e-12);
}

TEST(Loop, ZeroProbabilityIterationEmitsNoBranch) {
  Program body;
  body.task("b", ms(1), ms(1));
  Program p;
  // Cannot stop after iteration 1: exactly one fork (after iteration 2).
  p.loop("L", std::move(body), {0.0, 0.5, 0.5});
  const Application app = build_application("loopz", p);
  EXPECT_EQ(app.graph.task_count(), 3u);
  EXPECT_EQ(app.or_fork_count(), 1u);
}

TEST(Loop, SingleIterationIsJustTheBody) {
  Program body;
  body.task("b", ms(1), ms(1));
  Program p;
  p.loop("L", std::move(body), {1.0});
  const Application app = build_application("loop1", p);
  EXPECT_EQ(app.graph.size(), 1u);  // no OR structure at all
}

TEST(Loop, TrailingZeroProbabilitiesTrimmed) {
  Program body;
  body.task("b", ms(1), ms(1));
  Program p;
  p.loop("L", std::move(body), {1.0, 0.0, 0.0});
  const Application app = build_application("looptrim", p);
  EXPECT_EQ(app.graph.task_count(), 1u);
}

TEST(Loop, CollapseMakesSingleAggregateTask) {
  Program body;
  body.chain({t("x", 2, 1), t("y", 3, 2)});
  Program p;
  p.loop("L", std::move(body), {0.5, 0.5}, LoopMode::Collapse);
  const Application app = build_application("collapse", p);
  ASSERT_EQ(app.graph.size(), 1u);
  const Node& n = app.graph.node(NodeId{0});
  // WCET = 2 iterations x (2+3) ms; ACET = 1.5 iterations x (1+2) ms.
  EXPECT_EQ(n.wcet, ms(10));
  EXPECT_EQ(n.acet, ms(4.5));
}

TEST(Loop, ValidatesDistribution) {
  Program body;
  body.task("b", ms(1), ms(1));
  Program p;
  EXPECT_THROW(p.loop("L", body, {0.5, 0.4}), Error);   // sums to 0.9
  EXPECT_THROW(p.loop("L", body, {}), Error);           // empty
  EXPECT_THROW(p.loop("L", Program{}, {1.0}), Error);   // empty body
}

TEST(Program, BranchAsFirstSegmentMakesForkRoot) {
  Program a, b;
  a.task("x", ms(1), ms(1));
  b.task("y", ms(1), ms(1));
  Program p;
  p.branch("first", {{0.5, std::move(a)}, {0.5, std::move(b)}});
  const Application app = build_application("rootfork", p);
  const auto sources = app.graph.sources();
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(app.graph.node(sources[0]).kind, NodeKind::OrNode);
  app.graph.validate();
}

TEST(Program, CopySemantics) {
  Program p;
  p.task("a", ms(1), ms(1));
  Program q = p;  // deep copy
  q.task("b", ms(1), ms(1));
  EXPECT_EQ(p.segment_count(), 1u);
  EXPECT_EQ(q.segment_count(), 2u);
}

}  // namespace
}  // namespace paserta
