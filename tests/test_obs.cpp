// Tests for the observability subsystem (src/obs/): sharded metrics,
// span tracing with Chrome export, progress reporting, the pool telemetry
// hooks — and the determinism contract: enabling any of it must not change
// a single output bit of the experiment harness.
//
// The concurrency tests double as the TSan target (ctest -L pool_smoke
// under -DPASERTA_SANITIZE=thread): single-writer shard increments racing
// with live cross-shard reads must stay clean.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "apps/synthetic.h"
#include "common/error.h"
#include "harness/experiment.h"
#include "harness/json.h"
#include "harness/pool.h"
#include "harness/report.h"
#include "harness/throughput.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace paserta {
namespace {

// ------------------------------------------------------------- counters

TEST(Counter, ShardsAggregateInSlotOrder) {
  Counter c;
  c.add(0, 5);
  c.add(3, 7);
  c.add(kMaxShards - 1, 1);
  EXPECT_EQ(c.value(), 13u);
  EXPECT_EQ(c.shard_value(0), 5u);
  EXPECT_EQ(c.shard_value(3), 7u);
  EXPECT_EQ(c.shard_value(1), 0u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentShardWritersWithLiveReader) {
  // One writer per slot plus a live cross-shard reader: the single-writer
  // relaxed store(load + n) pattern must be exact per shard and TSan-clean
  // against value() snapshots taken mid-loop.
  Counter c;
  std::atomic<std::uint64_t> live_max{0};
  WorkerPool pool(3);
  const int chunks = 400;
  pool.parallel_chunks(chunks, 4, [&](int chunk, int slot) {
    c.add(slot);
    if (chunk % 16 == 0) {
      // Live read while other shards are being written.
      std::uint64_t seen = c.value();
      std::uint64_t prev = live_max.load();
      while (seen > prev && !live_max.compare_exchange_weak(prev, seen)) {
      }
    }
  });
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(chunks));
  EXPECT_LE(live_max.load(), static_cast<std::uint64_t>(chunks));
  // Every shard total survives exactly (no lost updates within a shard).
  std::uint64_t sum = 0;
  for (int s = 0; s < kMaxShards; ++s) sum += c.shard_value(s);
  EXPECT_EQ(sum, static_cast<std::uint64_t>(chunks));
}

TEST(Gauge, AddAndSetPerShard) {
  Gauge g;
  g.add(0, 1.5);
  g.add(1, 2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set(1, 0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ------------------------------------------------------------ histogram

TEST(Histogram, BucketEdgesAreLeSemantics) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram h(bounds);
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 bounds + overflow

  h.record(0, 0.5);    // <= 1        -> bucket 0
  h.record(0, 1.0);    // == bound    -> bucket 0 (le, not lt)
  h.record(0, 1.0001); // just above  -> bucket 1
  h.record(0, 10.0);   // == bound    -> bucket 1
  h.record(0, 99.9);   //             -> bucket 2
  h.record(0, 100.0);  // == last     -> bucket 2
  h.record(0, 1e6);    // overflow    -> bucket 3

  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 2u);
  EXPECT_EQ(h.bucket_value(2), 2u);
  EXPECT_EQ(h.bucket_value(3), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 1e6, 1e-9);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  const double bad[] = {1.0, 1.0};
  EXPECT_THROW(Histogram h(bad), Error);
  const double worse[] = {2.0, 1.0};
  EXPECT_THROW(Histogram h(worse), Error);
}

TEST(Histogram, ShardedRecordingAggregates) {
  const double bounds[] = {10.0};
  Histogram h(bounds);
  WorkerPool pool(3);
  pool.parallel_chunks(200, 4, [&](int chunk, int slot) {
    h.record(slot, chunk < 150 ? 1.0 : 100.0);
  });
  EXPECT_EQ(h.bucket_value(0), 150u);
  EXPECT_EQ(h.bucket_value(1), 50u);
  EXPECT_EQ(h.count(), 200u);
}

// ------------------------------------------------------------- registry

TEST(MetricsRegistry, RegisterOrGetReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(0, 3);
  EXPECT_EQ(reg.counter("x").value(), 3u);

  const double bounds[] = {1.0, 2.0};
  Histogram& h1 = reg.histogram("h", bounds);
  Histogram& h2 = reg.histogram("h", bounds);
  EXPECT_EQ(&h1, &h2);
  const double other[] = {5.0};
  EXPECT_THROW(reg.histogram("h", other), Error);

  reg.reset();  // zeroes values, keeps registrations (and handles) alive
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(&reg.counter("x"), &a);
}

TEST(MetricsRegistry, SnapshotIsSortedAndTrimmed) {
  MetricsRegistry reg;
  reg.counter("zeta").add(2, 9);
  reg.counter("alpha").add(0, 1);
  reg.gauge("g").set(0, 2.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  // Shards trimmed at the last non-zero cell.
  EXPECT_EQ(snap.counters[0].shards.size(), 1u);
  ASSERT_EQ(snap.counters[1].shards.size(), 3u);
  EXPECT_EQ(snap.counters[1].shards[2], 9u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 2.5);
}

TEST(MetricsRegistry, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.counter("engine.GSS.tasks").add(1, 42);
  const double bounds[] = {0.5, 1.5};
  Histogram& h = reg.histogram("lat", bounds);
  h.record(0, 0.25);
  h.record(0, 7.0);

  const JsonValue doc = json_parse(metrics_to_json(reg.snapshot()));
  ASSERT_TRUE(doc.is_object());
  const JsonValue& counters = doc.at("counters");
  ASSERT_TRUE(counters.is_array());
  ASSERT_EQ(counters.array.size(), 1u);
  EXPECT_EQ(counters.array[0].at("name").str, "engine.GSS.tasks");
  EXPECT_DOUBLE_EQ(counters.array[0].at("value").number, 42.0);

  const JsonValue& hists = doc.at("histograms");
  ASSERT_EQ(hists.array.size(), 1u);
  const JsonValue& buckets = hists.array[0].at("buckets");
  ASSERT_EQ(buckets.array.size(), 3u);  // 2 bounds + overflow
  EXPECT_DOUBLE_EQ(buckets.array[0].at("le").number, 0.5);
  EXPECT_DOUBLE_EQ(buckets.array[0].at("count").number, 1.0);
  EXPECT_EQ(buckets.array[2].at("le").str, "inf");
  EXPECT_DOUBLE_EQ(buckets.array[2].at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(hists.array[0].at("count").number, 2.0);
}

// -------------------------------------------------------------- tracing

TEST(Tracer, SpansMergeSortedAcrossSlots) {
  Tracer tracer;
  tracer.record(1, "late", 200, 10);
  tracer.record(0, "outer", 100, 500, /*point=*/2);
  tracer.record(0, "inner", 150, 50, 2, 7);
  tracer.instant(1, "mark", 3);

  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  ASSERT_EQ(tracer.event_count(), 4u);
  EXPECT_STREQ(events[0].name, "outer");   // earliest ts first
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "late");
  EXPECT_EQ(events[0].point, 2);
  EXPECT_EQ(events[1].run, 7);
  // The instant records "now", which is far later than the fixed stamps.
  EXPECT_STREQ(events[3].name, "mark");
  EXPECT_LT(events[3].dur_ns, 0);
}

TEST(Tracer, NullTracerSpanIsNoOp) {
  // Must not crash or record anything; call sites stay unconditional.
  TraceSpan span(nullptr, 0, "nothing");
}

TEST(Tracer, RaiiSpanMeasuresNonNegativeDuration) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, 0, "scope", 1, 2);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "scope");
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_EQ(events[0].point, 1);
  EXPECT_EQ(events[0].run, 2);
}

TEST(ChromeTrace, ExportParsesAndCarriesEvents) {
  Tracer tracer;
  tracer.record(0, "sweep", 1000, 2'000'000, 0);
  tracer.record(1, "chunk", 1500, 500'000, 0, 16);
  tracer.instant(1, "note", 0);

  const JsonValue doc = json_parse(chrome_trace_to_json(tracer));
  ASSERT_TRUE(doc.is_object());
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  // 2 thread_name metadata (slots 0 and 1) + 3 events.
  ASSERT_EQ(events.array.size(), 5u);

  int meta = 0, complete = 0, instant = 0;
  for (const JsonValue& ev : events.array) {
    const std::string ph = ev.at("ph").str;
    if (ph == "M") {
      ++meta;
      EXPECT_EQ(ev.at("name").str, "thread_name");
    } else if (ph == "X") {
      ++complete;
      EXPECT_TRUE(ev.find("dur") != nullptr);
    } else if (ph == "i") {
      ++instant;
      EXPECT_EQ(ev.at("s").str, "t");
    }
    EXPECT_DOUBLE_EQ(ev.at("pid").number, 1.0);
  }
  EXPECT_EQ(meta, 2);
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instant, 1);

  // ts/dur are microseconds: the 2 ms span must export as dur 2000.
  for (const JsonValue& ev : events.array) {
    if (ev.at("ph").str == "X" && ev.at("name").str == "sweep") {
      EXPECT_DOUBLE_EQ(ev.at("dur").number, 2000.0);
      EXPECT_DOUBLE_EQ(ev.at("ts").number, 1.0);
      EXPECT_DOUBLE_EQ(ev.at("args").at("point").number, 0.0);
    }
    if (ev.at("ph").str == "X" && ev.at("name").str == "chunk")
      EXPECT_DOUBLE_EQ(ev.at("args").at("run").number, 16.0);
  }
}

// ------------------------------------------------------------- progress

TEST(Progress, TicksAndFinishesOnce) {
  std::vector<ProgressSnapshot> snaps;
  ProgressReporter rep([&](const ProgressSnapshot& s) { snaps.push_back(s); },
                       std::chrono::milliseconds(0));
  rep.add_total(8);
  for (int i = 0; i < 8; ++i) rep.add_done();
  EXPECT_EQ(rep.done(), 8);
  EXPECT_EQ(rep.total(), 8);
  ASSERT_FALSE(snaps.empty());
  EXPECT_FALSE(snaps.back().finished);

  rep.finish();
  rep.finish();  // idempotent
  ASSERT_FALSE(snaps.empty());
  EXPECT_TRUE(snaps.back().finished);
  EXPECT_EQ(snaps.back().done, 8);
  const auto finished =
      std::count_if(snaps.begin(), snaps.end(),
                    [](const ProgressSnapshot& s) { return s.finished; });
  EXPECT_EQ(finished, 1);
}

TEST(Progress, RateLimitSuppressesIntermediateEmits) {
  int emits = 0;
  ProgressReporter rep([&](const ProgressSnapshot&) { ++emits; },
                       std::chrono::hours(1));
  rep.add_total(1000);
  for (int i = 0; i < 1000; ++i) rep.add_done();
  // The first tick claims the emission slot; everything after sits inside
  // the (huge) interval.
  EXPECT_EQ(emits, 1);
  rep.finish();
  EXPECT_EQ(emits, 2);
}

TEST(Progress, RejectsNullCallbackAndNegativeTotals) {
  EXPECT_THROW(ProgressReporter rep(nullptr), Error);
  ProgressReporter rep([](const ProgressSnapshot&) {});
  EXPECT_THROW(rep.add_total(-1), Error);
}

// ------------------------------------------------------- pool telemetry

TEST(PoolTelemetry, CountsChunksBusyAndProgress) {
  MetricsRegistry reg;
  const double bounds[] = {1e-6, 1e-3, 1.0};
  PoolTelemetry tel;
  tel.chunks = &reg.counter("pool.chunks_completed");
  tel.busy_ns = &reg.counter("pool.busy_ns");
  tel.idle_ns = &reg.counter("pool.idle_ns");
  tel.chunk_seconds = &reg.histogram("pool.chunk_seconds", bounds);
  int ticks = 0;
  ProgressReporter progress([&](const ProgressSnapshot&) { ++ticks; },
                            std::chrono::milliseconds(0));
  tel.progress = &progress;
  progress.add_total(64);

  WorkerPool pool(3);
  std::atomic<int> executed{0};
  pool.parallel_chunks(
      64, 4, [&](int, int) { executed.fetch_add(1); }, &tel);

  EXPECT_EQ(executed.load(), 64);
  EXPECT_EQ(tel.chunks->value(), 64u);
  EXPECT_EQ(tel.chunk_seconds->count(), 64u);
  EXPECT_GT(tel.busy_ns->value(), 0u);
  EXPECT_EQ(progress.done(), 64);
  EXPECT_GT(ticks, 0);
}

TEST(PoolTelemetry, SerialChunksReportsOnSlotZero) {
  MetricsRegistry reg;
  PoolTelemetry tel;
  tel.chunks = &reg.counter("chunks");
  tel.busy_ns = &reg.counter("busy");
  WorkerPool::serial_chunks(10, [&](int, int slot) { EXPECT_EQ(slot, 0); },
                            &tel);
  EXPECT_EQ(tel.chunks->value(), 10u);
  EXPECT_EQ(tel.chunks->shard_value(0), 10u);  // everything on the caller
}

TEST(PoolTelemetry, NullTelemetryUnchangedBehaviour) {
  WorkerPool pool(2);
  std::atomic<int> executed{0};
  pool.parallel_chunks(16, 3, [&](int, int) { executed.fetch_add(1); },
                       nullptr);
  EXPECT_EQ(executed.load(), 16);
}

// ----------------------------------------- harness: determinism contract

ExperimentConfig harness_config(int runs, int threads) {
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.runs = runs;
  cfg.threads = threads;
  cfg.seed = 20260806;
  return cfg;
}

/// Full-fidelity serialization of a sweep: the CSV the CLI emits plus the
/// JSON export (mean/ci/min/max/n per stat). Byte equality here is the
/// bit-identity the determinism contract promises.
std::string serialize_sweep(const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  sweep_table(points, "load").write_csv(os);
  JsonExportOptions jopt;
  jopt.experiment_id = "obs-identity";
  jopt.x_name = "load";
  write_sweep_json(os, points, jopt);
  return os.str();
}

TEST(ObsDeterminism, SweepBitIdenticalWithObservabilityOnOrOff) {
  const Application app = apps::build_synthetic();
  const std::vector<double> loads = {0.3, 0.6, 1.0};

  const std::string baseline =
      serialize_sweep(sweep_load(app, harness_config(30, 1), loads));

  for (int threads : {1, 4}) {
    // Everything on: metrics into a scoped registry, run-detail tracing,
    // progress with a counting callback.
    MetricsRegistry reg;
    Tracer tracer(Tracer::Detail::kRuns);
    ProgressReporter progress([](const ProgressSnapshot&) {},
                              std::chrono::milliseconds(0));
    ExperimentConfig cfg = harness_config(30, threads);
    cfg.collect_metrics = true;
    cfg.registry = &reg;
    cfg.tracer = &tracer;
    cfg.progress = &progress;

    const std::vector<SweepPoint> points = sweep_load(app, cfg, loads);
    EXPECT_EQ(serialize_sweep(points), baseline)
        << "observability changed sweep output at threads=" << threads;

    // The observability itself did fire.
    EXPECT_GT(reg.counter("pool.chunks_completed").value(), 0u);
    EXPECT_GT(tracer.event_count(), 0u);
    EXPECT_GT(progress.done(), 0);
    EXPECT_EQ(progress.done(), progress.total());
    ASSERT_EQ(points.size(), loads.size());
    for (const SweepPoint& pt : points) EXPECT_TRUE(pt.metrics.enabled());
  }

  // Plain parallel without observability must also match.
  EXPECT_EQ(
      serialize_sweep(sweep_load(app, harness_config(30, 4), loads)),
      baseline);
}

TEST(ObsDeterminism, RunPointIdenticalWithMetricsOn) {
  const Application app = apps::build_synthetic();
  const SimTime d = SimTime::from_ms(120);

  const SweepPoint plain = run_point(app, harness_config(25, 1), d, 0.0);
  ExperimentConfig cfg = harness_config(25, 3);
  MetricsRegistry reg;
  cfg.collect_metrics = true;
  cfg.registry = &reg;
  const SweepPoint observed = run_point(app, cfg, d, 0.0);

  EXPECT_EQ(serialize_sweep({observed}), serialize_sweep({plain}));
  EXPECT_FALSE(plain.metrics.enabled());
  EXPECT_TRUE(observed.metrics.enabled());
}

// --------------------------------------------- harness: metric semantics

TEST(ObsMetrics, PointMetricsMatchSchemeStats) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = harness_config(40, 2);
  MetricsRegistry reg;
  cfg.collect_metrics = true;
  cfg.registry = &reg;
  const SweepPoint pt = run_point(app, cfg, SimTime::from_ms(120), 0.0);

  ASSERT_EQ(pt.metrics.schemes.size(), cfg.schemes.size());
  const double runs = static_cast<double>(cfg.runs);
  for (std::size_t s = 0; s < cfg.schemes.size(); ++s) {
    const SimCounters& c = pt.metrics.schemes[s];
    // The counter total must equal the per-run RunningStat sum.
    const double stat_sum = pt.stats[s].speed_changes.mean() * runs;
    EXPECT_NEAR(static_cast<double>(c.speed_changes), stat_sum,
                1e-6 * std::max(1.0, stat_sum))
        << to_string(cfg.schemes[s]);
    // Dispatch volume depends only on the scenarios (shared across
    // schemes), so every scheme — and the NPM baseline — agrees.
    EXPECT_EQ(c.dispatches, pt.metrics.npm.dispatches)
        << to_string(cfg.schemes[s]);
    EXPECT_EQ(c.tasks, pt.metrics.npm.tasks);
    EXPECT_EQ(c.or_fires, pt.metrics.npm.or_fires);
    EXPECT_GT(c.tasks, 0u);
    // Dynamic schemes make exactly one floor-vs-greedy decision per task;
    // static schemes (and NPM) make none.
    const Scheme scheme = cfg.schemes[s];
    if (scheme == Scheme::NPM || scheme == Scheme::SPM) {
      EXPECT_EQ(c.spec_picks + c.greedy_picks, 0u);
    } else {
      EXPECT_EQ(c.spec_picks + c.greedy_picks, c.tasks);
    }
    if (scheme == Scheme::GSS) EXPECT_EQ(c.spec_picks, 0u);
  }
  // NPM never changes speed and reclaims no slack.
  EXPECT_EQ(pt.metrics.npm.speed_changes, 0u);
  EXPECT_EQ(pt.metrics.npm.reclaimed_slack_ps, 0u);

  // The registry carries the flushed engine totals and the pool telemetry.
  EXPECT_EQ(reg.counter("engine.NPM.dispatches").value(),
            pt.metrics.npm.dispatches);
  const int chunks = reg.counter("pool.chunks_completed").value() > 0
                         ? static_cast<int>(
                               reg.counter("pool.chunks_completed").value())
                         : 0;
  EXPECT_GT(chunks, 0);
}

TEST(ObsMetrics, ChunkAccountingCoversAllChunks) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = harness_config(33, 2);
  cfg.chunk_runs = 8;  // 33 runs -> 5 chunks (ceil)
  MetricsRegistry reg;
  cfg.collect_metrics = true;
  cfg.registry = &reg;
  ProgressReporter progress([](const ProgressSnapshot&) {},
                            std::chrono::hours(1));
  cfg.progress = &progress;
  (void)run_point(app, cfg, SimTime::from_ms(120), 0.0);

  EXPECT_EQ(reg.counter("pool.chunks_completed").value(), 5u);
  EXPECT_EQ(progress.total(), 5);
  EXPECT_EQ(progress.done(), 5);
}

TEST(ObsMetrics, ChunkDetailTracerOmitsPerRunSpans) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = harness_config(20, 1);
  Tracer tracer(Tracer::Detail::kChunks);
  cfg.tracer = &tracer;
  (void)run_point(app, cfg, SimTime::from_ms(120), 0.0);

  bool saw_chunk = false;
  for (const TraceEvent& ev : tracer.events()) {
    const std::string name = ev.name;
    saw_chunk = saw_chunk || name == "chunk";
    EXPECT_NE(name, "GSS");  // per-simulation spans need Detail::kRuns
    EXPECT_NE(name, "NPM");
  }
  EXPECT_TRUE(saw_chunk);

  // At kRuns detail the per-scheme spans appear.
  Tracer deep(Tracer::Detail::kRuns);
  ExperimentConfig cfg2 = harness_config(20, 1);
  cfg2.tracer = &deep;
  (void)run_point(app, cfg2, SimTime::from_ms(120), 0.0);
  bool saw_scheme = false;
  for (const TraceEvent& ev : deep.events())
    saw_scheme = saw_scheme || std::string(ev.name) == "GSS";
  EXPECT_TRUE(saw_scheme);
}

TEST(ObsMetrics, PoolBalanceJsonParses) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = harness_config(16, 2);
  const std::string doc =
      measure_pool_balance_json(app, cfg, {0.5, 1.0});
  const JsonValue v = json_parse(doc);
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("threads").number, 2.0);
  ASSERT_TRUE(v.at("chunks_per_slot").is_array());
  double total = 0.0;
  for (const JsonValue& c : v.at("chunks_per_slot").array) total += c.number;
  EXPECT_DOUBLE_EQ(total, v.at("chunk_seconds").at("count").number);
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace paserta
