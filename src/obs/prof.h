// Cycle-level phase profiler (DESIGN.md §17).
//
// A Profiler owns a fixed set of named phases; a ProfScope is an RAII
// region that charges its wall time — and, when the host grants
// perf_event_open, its hardware-counter deltas (cycles, instructions,
// cache references/misses, branch misses) — to one (phase, slot) cell.
// Slots follow the observability shard convention (obs/metrics.h): slot 0
// is the caller / dispatcher, slots 1..kMaxShards-1 are pool worker slots,
// each cell is written by exactly one thread and read with relaxed loads,
// so the profiler is TSan-clean against concurrent snapshot/export calls.
//
// Determinism contract: the profiler is write-only with respect to the
// simulation. A null Profiler* turns every ProfScope into a no-op (one
// pointer test, no clock read), and an active profiler only reads clocks
// and counters — sweep output is bit-identical with profiling on or off
// at every thread count and batch size (pinned by the prof_identity
// suite).
//
// Hardware counters: one perf_event_open group per thread (cycles leader
// + followers), opened lazily on first use, read with PERF_FORMAT_GROUP |
// TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING so multiplexed counters are
// scaled by enabled/running per scope delta. When the syscall is denied
// (containers, CI, kernel.perf_event_paranoid) the first failed probe
// latches a process-wide fallback and every scope records wall time only
// — same phases, same counts, hardware columns zero. PASERTA_NO_PERF=1
// forces the fallback without touching the syscall.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace paserta {

/// One phase's merged totals (all slots summed in fixed slot order, so the
/// merge is deterministic for any thread count).
struct ProfPhaseTotals {
  std::string name;
  /// Top-level phases tile the profiled call end to end (no overlap);
  /// nested phases break a top-level phase down and overlap their parent.
  /// Attribution math (profile command) sums top-level phases only.
  bool top_level = false;
  std::uint64_t count = 0;  // scope entries
  std::uint64_t ns = 0;     // wall time inside the phase
  // Hardware columns; all zero on the fallback clock.
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_refs = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
};

/// One rate-limited per-slot counter sample: cumulative totals across all
/// phases of `slot` at steady-clock time `ts_ns`, for Perfetto counter
/// tracks (obs/chrome_trace.h).
struct ProfSample {
  std::int64_t ts_ns = 0;  // absolute steady_clock nanoseconds
  int slot = 0;
  std::uint64_t ns = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
};

class Profiler {
 public:
  enum class Mode {
    kAuto,      ///< hardware counters when the host grants them
    kFallback,  ///< monotonic clock only (tests, forced comparisons)
  };

  explicit Profiler(Mode mode = Mode::kAuto);

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Registers (or finds, by exact name) a phase and returns its id.
  /// Registration order is the snapshot/export order. At most kMaxPhases
  /// distinct names; thread-safe.
  int phase(const char* name, bool top_level = false);

  /// True when scopes read live hardware counters (the process-wide probe
  /// succeeded and the profiler was constructed in kAuto mode).
  bool hardware() const { return hardware_; }

  /// Charges pre-measured wall time to (phase, slot) without reading any
  /// clock here — for callers that already timed the region (pool
  /// busy/idle accounting). Counts `count` scope entries.
  void add_ns(int phase, int slot, std::uint64_t ns, std::uint64_t count = 1);

  /// Merged per-phase totals, in registration order, slots summed in slot
  /// order. Safe to call while scopes are active on other threads (their
  /// in-flight deltas land in a later snapshot).
  std::vector<ProfPhaseTotals> snapshot() const;

  /// Exports the delta since the previous export as prof.<phase>.{ns,
  /// count[,cycles,instructions,cache_refs,cache_misses,branch_misses]}
  /// registry counters (hardware columns only when hardware() is true):
  /// repeated exports (periodic /metrics scrapes) never double-count.
  void export_delta_to(MetricsRegistry& reg);

  /// Rate-limited per-slot counter samples recorded so far (for the
  /// chrome-trace counter tracks). Bounded at kMaxSamples.
  std::vector<ProfSample> samples() const;

  static constexpr int kMaxPhases = 32;
  static constexpr int kSlots = kMaxShards;
  static constexpr int kMaxSamples = 4096;
  /// Minimum spacing between two counter samples of one slot.
  static constexpr std::int64_t kSampleIntervalNs = 10'000'000;  // 10 ms

 private:
  friend class ProfScope;

  enum Field {
    kCount = 0,
    kNs,
    kCycles,
    kInstructions,
    kCacheRefs,
    kCacheMisses,
    kBranchMisses,
    kFields,
  };

  /// One (phase, slot) accumulation cell: single writer (the slot's
  /// thread), relaxed readers, cache-line padded so neighbouring slots
  /// never share a line.
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v[kFields];
  };
  static_assert(kFields * sizeof(std::uint64_t) <= 64,
                "a Cell must fit one cache line");

  Cell& cell(int phase, int slot) {
    return cells_[static_cast<std::size_t>(phase) * kSlots + slot];
  }
  const Cell& cell(int phase, int slot) const {
    return cells_[static_cast<std::size_t>(phase) * kSlots + slot];
  }

  void maybe_sample(int slot, std::int64_t now);

  bool hardware_ = false;
  std::vector<Cell> cells_;  // kMaxPhases * kSlots, preallocated
  mutable std::mutex m_;     // phase table, samples, export bookkeeping
  std::vector<std::string> names_;
  std::vector<std::uint8_t> top_level_;
  std::atomic<int> phase_count_{0};
  std::vector<ProfSample> samples_;
  std::atomic<std::int64_t> next_sample_ns_[kSlots] = {};
  std::vector<std::uint64_t> exported_;  // last-export totals, phase-major
};

/// RAII phase region. Null profiler = single pointer test, nothing else.
/// The slot must follow the shard contract: one live writer per (profiler,
/// slot) at a time.
class ProfScope {
 public:
  ProfScope(Profiler* prof, int phase, int slot) : prof_(prof) {
    if (prof_ != nullptr) begin(phase, slot);
  }
  ~ProfScope() {
    if (prof_ != nullptr) end();
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  void begin(int phase, int slot);
  void end();

  Profiler* prof_;
  int phase_ = 0;
  int slot_ = 0;
  std::int64_t t0_ = 0;
  bool hw_ = false;
  std::uint64_t hw0_[5] = {};  // raw start values (cycles..branch_misses)
  std::uint64_t te0_ = 0, tr0_ = 0;  // time enabled / running at start
};

}  // namespace paserta
