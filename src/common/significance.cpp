#include "common/significance.h"

#include <cmath>

#include "common/error.h"

namespace paserta {
namespace {

/// log Gamma via Lanczos (g = 7, n = 9 coefficients); |error| < 1e-13 over
/// the domain used here.
double log_gamma(double x) {
  static const double c[9] = {0.99999999999980993,
                              676.5203681218851,
                              -1259.1392167224028,
                              771.32342877765313,
                              -176.61502916214059,
                              12.507343278686905,
                              -0.13857109526572012,
                              9.9843695780195716e-6,
                              1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = c[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += c[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

/// Continued fraction for the incomplete beta (Lentz's algorithm).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const auto m2 = static_cast<double>(2 * m);
    const auto dm = static_cast<double>(m);
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) return h;
  }
  PASERTA_ASSERT(false, "incomplete beta continued fraction did not converge");
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  PASERTA_REQUIRE(a > 0.0 && b > 0.0, "beta parameters must be positive");
  PASERTA_REQUIRE(x >= 0.0 && x <= 1.0, "beta argument outside [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly in its fast-convergence region,
  // the symmetry transform elsewhere.
  if (x < (a + 1.0) / (a + b + 2.0)) return front * betacf(a, b, x) / a;
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_two_sided_p(double t, double df) {
  PASERTA_REQUIRE(df > 0.0, "degrees of freedom must be positive");
  if (!std::isfinite(t)) return 0.0;
  const double x = df / (df + t * t);
  return regularized_incomplete_beta(df / 2.0, 0.5, x);
}

TTestResult welch_t_test(const RunningStat& a, const RunningStat& b) {
  PASERTA_REQUIRE(a.count() >= 2 && b.count() >= 2,
                  "welch_t_test needs at least two observations per sample");
  TTestResult r;
  r.mean_diff = a.mean() - b.mean();

  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  const double se2 = va + vb;
  if (se2 <= 0.0) {
    // Zero variance in both samples: the means either coincide or differ
    // deterministically.
    r.t = r.mean_diff == 0.0 ? 0.0
                             : std::numeric_limits<double>::infinity();
    r.df = static_cast<double>(a.count() + b.count() - 2);
    r.p_value = r.mean_diff == 0.0 ? 1.0 : 0.0;
    return r;
  }
  const double se = std::sqrt(se2);
  r.t = r.mean_diff / se;
  const double na1 = static_cast<double>(a.count()) - 1.0;
  const double nb1 = static_cast<double>(b.count()) - 1.0;
  r.df = se2 * se2 / (va * va / na1 + vb * vb / nb1);
  r.p_value = student_t_two_sided_p(r.t, r.df);
  r.ci95_halfwidth = 1.96 * se;  // normal approximation, large runs
  return r;
}

TTestResult one_sample_t_test(const RunningStat& sample, double mu0) {
  PASERTA_REQUIRE(sample.count() >= 2,
                  "one_sample_t_test needs at least two observations");
  TTestResult r;
  r.mean_diff = sample.mean() - mu0;
  const double se2 = sample.variance() / static_cast<double>(sample.count());
  r.df = static_cast<double>(sample.count()) - 1.0;
  if (se2 <= 0.0) {
    r.t = r.mean_diff == 0.0 ? 0.0
                             : std::numeric_limits<double>::infinity();
    r.p_value = r.mean_diff == 0.0 ? 1.0 : 0.0;
    return r;
  }
  const double se = std::sqrt(se2);
  r.t = r.mean_diff / se;
  r.p_value = student_t_two_sided_p(r.t, r.df);
  r.ci95_halfwidth = 1.96 * se;
  return r;
}

}  // namespace paserta
