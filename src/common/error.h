// Error handling primitives.
//
// The library throws `paserta::Error` for user-visible misuse (malformed
// graphs, infeasible deadlines) and uses PASERTA_ASSERT for internal
// invariants that indicate a library bug.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace paserta {

/// Exception thrown on invalid input (malformed graph, bad configuration,
/// infeasible deadline, ...). The message describes the violated rule.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);
[[noreturn]] void fail_assert(const char* file, int line, const char* expr,
                              const std::string& msg);
}  // namespace detail

/// Validate a user-facing precondition; throws paserta::Error on failure.
#define PASERTA_REQUIRE(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::std::ostringstream oss_;                                        \
      oss_ << msg;                                                      \
      ::paserta::detail::throw_error(__FILE__, __LINE__, oss_.str());   \
    }                                                                   \
  } while (0)

/// Internal invariant; failure indicates a bug in paserta itself.
#define PASERTA_ASSERT(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::std::ostringstream oss_;                                           \
      oss_ << msg;                                                         \
      ::paserta::detail::fail_assert(__FILE__, __LINE__, #cond, oss_.str()); \
    }                                                                      \
  } while (0)

}  // namespace paserta
