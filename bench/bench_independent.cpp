// Background experiment: the predecessor algorithm of [20] on independent
// task sets — slack sharing (GSS) vs per-processor greedy (GREEDY) vs SPM,
// normalized to NPM, across load. Quantifies what EET-swap sharing buys
// before the AND/OR extension enters the picture.
#include "bench_util.h"
#include "common/stats.h"
#include "core/independent.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 500);
  constexpr int kCpus = 4;
  constexpr std::size_t kTasks = 24;

  for (const LevelTable& table :
       {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
    const PowerModel pm(table);
    Overheads ovh;
    ovh.speed_change_time = SimTime::from_us(5.0);

    std::cout << "# Independent tasks [20]: energy vs load, " << kTasks
              << " tasks, " << kCpus << " CPUs, " << table.name()
              << ", runs=" << runs << "\n";
    Table out({"load", "SPM", "GREEDY", "GSS"});
    for (double load : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      Rng master(31337);
      RunningStat spm, greedy, share;
      for (int r = 0; r < runs; ++r) {
        Rng rng = master.fork();
        const auto set =
            random_independent_set(rng, kTasks, SimTime::from_ms(1),
                                   SimTime::from_ms(10), 0.3, 0.9);
        IndependentTaskSet inflated = set;
        for (auto& t : inflated.tasks)
          t.wcet += ovh.worst_case_budget(table);
        const auto canon = canonical_independent(inflated, kCpus);
        const SimTime d{static_cast<std::int64_t>(
            static_cast<double>(canon.makespan.ps) / load + 1)};
        const auto actual = draw_independent_actuals(set, rng);

        const double npm =
            simulate_independent(set, kCpus, d, pm, ovh,
                                 IndependentScheme::NPM, actual)
                .total_energy();
        spm.add(simulate_independent(set, kCpus, d, pm, ovh,
                                     IndependentScheme::SPM, actual)
                    .total_energy() /
                npm);
        greedy.add(simulate_independent(set, kCpus, d, pm, ovh,
                                        IndependentScheme::GreedyNoShare,
                                        actual)
                       .total_energy() /
                   npm);
        share.add(simulate_independent(set, kCpus, d, pm, ovh,
                                       IndependentScheme::GreedyShare, actual)
                      .total_energy() /
                  npm);
      }
      out.add_row({Table::num(load, 2), Table::num(spm.mean()),
                   Table::num(greedy.mean()), Table::num(share.mean())});
    }
    out.write_csv(std::cout);
    std::cout << "\n";
  }
  return 0;
}
