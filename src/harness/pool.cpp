#include "harness/pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"

namespace paserta {
namespace {

/// Set while a thread executes a parallel_chunks body; a nested call from
/// inside a body would deadlock on the run mutex, so it degrades to inline
/// serial execution instead.
thread_local bool t_inside_body = false;

}  // namespace

struct WorkerPool::Impl {
  /// One parallel loop in flight. Slot/active bookkeeping is guarded by
  /// `m`; only the chunk counter and abort flag are lock-free, because they
  /// sit on the claim path of every chunk.
  struct Job {
    const std::function<void(int, int)>* body = nullptr;
    int chunks = 0;
    int max_workers = 1;
    std::atomic<int> next_chunk{0};
    std::atomic<bool> abort{false};
    int next_slot = 1;  // guarded by m (slot 0 is the caller)
    int active = 0;     // participants currently between claim and exit
    std::exception_ptr error;  // first body exception (guarded by m)
  };

  std::mutex m;
  std::condition_variable wake;   // workers: a new job was published
  std::condition_variable done;   // caller: a participant finished
  Job* job = nullptr;             // guarded by m
  std::uint64_t generation = 0;   // guarded by m; bumped per published job
  bool stop = false;              // guarded by m
  std::vector<std::thread> threads;  // guarded by spawn_m
  std::mutex spawn_m;
  std::atomic<int> thread_count{0};
  std::mutex run_m;  // serializes parallel loops

  void run_chunks(Job& job_ref, int slot) {
    for (;;) {
      if (job_ref.abort.load(std::memory_order_relaxed)) return;
      const int c = job_ref.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job_ref.chunks) return;
      t_inside_body = true;
      try {
        (*job_ref.body)(c, slot);
        t_inside_body = false;
      } catch (...) {
        t_inside_body = false;
        std::lock_guard<std::mutex> lock(m);
        if (!job_ref.error) job_ref.error = std::current_exception();
        job_ref.abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

  void worker_main() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
      wake.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      Job* j = job;
      // Job pointer reads, slot claims and the active count all happen
      // under `m`, so a job cleared by the caller can never be entered
      // late and the caller can never observe active == 0 while a
      // participant is between claiming a slot and exiting.
      if (j == nullptr || j->next_slot >= j->max_workers) continue;
      const int slot = j->next_slot++;
      ++j->active;
      lock.unlock();
      run_chunks(*j, slot);
      lock.lock();
      if (--j->active == 0) done.notify_all();
    }
  }

  void spawn(int target) {
    std::lock_guard<std::mutex> lock(spawn_m);
    target = std::min(target, WorkerPool::kMaxThreads);
    while (static_cast<int>(threads.size()) < target) {
      threads.emplace_back([this] { worker_main(); });
      thread_count.store(static_cast<int>(threads.size()),
                         std::memory_order_relaxed);
    }
  }
};

WorkerPool::WorkerPool(int threads) : impl_(new Impl) {
  PASERTA_REQUIRE(threads >= 0, "worker count must be non-negative");
  impl_->spawn(threads);
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->threads) t.join();
  delete impl_;
}

int WorkerPool::thread_count() const {
  return impl_->thread_count.load(std::memory_order_relaxed);
}

void WorkerPool::ensure_threads(int threads) { impl_->spawn(threads); }

void WorkerPool::parallel_chunks(
    int chunk_count, int max_workers,
    const std::function<void(int chunk, int slot)>& body) {
  PASERTA_REQUIRE(chunk_count >= 0, "chunk count must be non-negative");
  if (chunk_count == 0) return;
  max_workers = std::clamp(max_workers, 1, chunk_count);

  const int helpers = std::min(max_workers - 1, thread_count());
  if (helpers <= 0 || t_inside_body) {
    // Serial path: no pool involvement, chunks in increasing order. Also
    // the nested-call fallback (a body starting its own loop).
    const bool was_inside = t_inside_body;
    t_inside_body = true;
    try {
      for (int c = 0; c < chunk_count; ++c) body(c, 0);
    } catch (...) {
      t_inside_body = was_inside;
      throw;
    }
    t_inside_body = was_inside;
    return;
  }

  std::lock_guard<std::mutex> run_lock(impl_->run_m);
  Impl::Job job;
  job.body = &body;
  job.chunks = chunk_count;
  job.max_workers = max_workers;
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->wake.notify_all();

  impl_->run_chunks(job, 0);  // the caller is participant slot 0

  {
    // All chunks have been handed out (or the job aborted), so any late
    // worker runs zero body calls; wait for in-flight participants only.
    std::unique_lock<std::mutex> lock(impl_->m);
    impl_->done.wait(lock, [&] { return job.active == 0; });
    impl_->job = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

WorkerPool& WorkerPool::process_pool() {
  static WorkerPool pool(std::max(
      1, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace paserta
