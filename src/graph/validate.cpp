// Structural validation of flat AND/OR graphs.
//
// Beyond local rules (probabilities, dummy attributes, acyclicity) this
// implements the mutual-exclusion check for OR joins: every pair of
// predecessors of an OR join must lie on different alternatives of a common
// OR fork, so that at runtime exactly one of them executes and the join
// (whose unfinished-predecessor counter starts at 1, Fig. 2 of the paper)
// fires exactly once.
//
// Mutual exclusion is decided with a dataflow analysis: for every node `v`
// we compute the set of *mandatory branch commitments*
//     commit(v) = { (fork F, alternative a) : every source->v path passes
//                    through F and leaves it via alternative a }
// via the DAG recurrence
//     commit(v) = intersection over predecessors p of
//                    ( commit(p) + {(p, index of v in p.succs)} if p is an
//                      OR fork, else commit(p) ).
// Two nodes are mutually exclusive iff their commitment sets disagree on
// some fork. This is exact for graphs produced by ProgramBuilder and sound
// (never accepts a non-exclusive pair) for arbitrary DAGs.
#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "common/error.h"
#include "graph/graph.h"

namespace paserta {
namespace {

// fork node -> alternative index that all paths must take.
using CommitSet = std::map<std::uint32_t, std::uint32_t>;

// Intersect `acc` with `other`: keep entries present and equal in both.
void intersect_into(CommitSet& acc, const CommitSet& other) {
  for (auto it = acc.begin(); it != acc.end();) {
    auto found = other.find(it->first);
    if (found == other.end() || found->second != it->second) {
      it = acc.erase(it);
    } else {
      ++it;
    }
  }
}

bool mutually_exclusive(const CommitSet& a, const CommitSet& b) {
  for (const auto& [fork, alt] : a) {
    auto it = b.find(fork);
    if (it != b.end() && it->second != alt) return true;
  }
  return false;
}

}  // namespace

void AndOrGraph::validate() const {
  PASERTA_REQUIRE(!nodes_.empty(), "empty AND/OR graph");

  // ---- Local rules -------------------------------------------------------
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    switch (n.kind) {
      case NodeKind::Computation:
        PASERTA_REQUIRE(n.wcet > SimTime::zero(),
                        "task '" << n.name << "' has non-positive WCET");
        PASERTA_REQUIRE(n.acet > SimTime::zero() && n.acet <= n.wcet,
                        "task '" << n.name << "' violates 0 < ACET <= WCET");
        PASERTA_REQUIRE(n.succ_prob.empty(),
                        "task '" << n.name << "' carries branch probabilities");
        break;
      case NodeKind::AndNode:
        PASERTA_REQUIRE(n.wcet.is_zero() && n.acet.is_zero(),
                        "AND node '" << n.name << "' has execution time");
        PASERTA_REQUIRE(n.succ_prob.empty(),
                        "AND node '" << n.name
                                     << "' carries branch probabilities");
        break;
      case NodeKind::OrNode: {
        PASERTA_REQUIRE(n.wcet.is_zero() && n.acet.is_zero(),
                        "OR node '" << n.name << "' has execution time");
        if (n.succs.size() > 1) {
          PASERTA_REQUIRE(n.succ_prob.size() == n.succs.size(),
                          "OR fork '" << n.name
                                      << "' lacks per-successor probabilities");
          double sum = 0.0;
          for (double p : n.succ_prob) {
            PASERTA_REQUIRE(p > 0.0 && p <= 1.0,
                            "OR fork '" << n.name
                                        << "' has probability outside (0,1]");
            sum += p;
          }
          PASERTA_REQUIRE(std::abs(sum - 1.0) < 1e-9,
                          "OR fork '" << n.name << "' probabilities sum to "
                                      << sum << ", expected 1");
        } else if (!n.succ_prob.empty()) {
          PASERTA_REQUIRE(n.succ_prob.size() == n.succs.size() &&
                              std::abs(n.succ_prob[0] - 1.0) < 1e-9,
                          "single-successor OR node '"
                              << n.name << "' must have probability 1");
        }
        break;
      }
    }
  }

  // ---- Acyclicity (throws on cycle) + order for the dataflow pass. -------
  const std::vector<NodeId> topo = topo_order();

  // ---- Commitment sets & OR-join exclusivity. ----------------------------
  std::vector<CommitSet> commit(nodes_.size());
  std::vector<bool> visited(nodes_.size(), false);
  for (NodeId v : topo) {
    const Node& n = nodes_[v.value];
    CommitSet acc;
    bool first = true;
    for (NodeId p : n.preds) {
      CommitSet from_p = commit[p.value];
      const Node& pn = nodes_[p.value];
      if (pn.is_or_fork()) {
        const auto it = std::find(pn.succs.begin(), pn.succs.end(), v);
        PASERTA_ASSERT(it != pn.succs.end(), "inconsistent adjacency");
        from_p[p.value] =
            static_cast<std::uint32_t>(std::distance(pn.succs.begin(), it));
      }
      if (first) {
        acc = std::move(from_p);
        first = false;
      } else {
        // A non-OR node reachable from several alternatives would merge
        // exclusive control flows with AND semantics — that deadlocks at
        // runtime, so reject it here.
        if (n.kind != NodeKind::OrNode) {
          PASERTA_REQUIRE(
              !mutually_exclusive(acc, from_p),
              "node '" << n.name
                       << "' has AND semantics but mutually exclusive "
                          "predecessors; use an OR join instead");
        }
        intersect_into(acc, from_p);
      }
    }
    commit[v.value] = std::move(acc);
    visited[v.value] = true;
  }

  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (!(n.kind == NodeKind::OrNode && n.preds.size() > 1)) continue;
    for (std::size_t a = 0; a < n.preds.size(); ++a) {
      for (std::size_t b = a + 1; b < n.preds.size(); ++b) {
        const NodeId pa = n.preds[a], pb = n.preds[b];
        PASERTA_REQUIRE(
            mutually_exclusive(commit[pa.value], commit[pb.value]),
            "OR join '" << n.name << "': predecessors '"
                        << nodes_[pa.value].name << "' and '"
                        << nodes_[pb.value].name
                        << "' can both execute in one run; OR-join "
                           "predecessors must be mutually exclusive");
      }
    }
  }
}

}  // namespace paserta
