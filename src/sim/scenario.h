// Run scenarios: the random inputs of one Monte-Carlo simulation run.
//
// A scenario fixes, before any scheme runs, (a) every task's actual
// execution time and (b) the alternative chosen at every OR fork. All
// schemes of one run are evaluated on the same scenario (paired
// comparison), which is what the paper's normalization to NPM implies.
#pragma once

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace paserta {

struct RunScenario {
  /// Actual execution time at f_max, per node (zero for dummies).
  std::vector<SimTime> actual;
  /// Chosen alternative index per node (-1 for anything but OR forks).
  std::vector<int> or_choice;

  SimTime actual_of(NodeId id) const { return actual.at(id.value); }
  int choice_of(NodeId id) const { return or_choice.at(id.value); }
};

/// Draws a scenario: actual times ~ N(acet, ((wcet-acet)/3)^2) clamped to
/// [max(1ps, 2*acet - wcet), wcet] (so ~99.7 % of the unclamped mass lies
/// inside), OR choices from the fork probabilities. The paper specifies the
/// normal distribution around the mean; the clamp bounds are our documented
/// choice (DESIGN.md §3.6).
RunScenario draw_scenario(const AndOrGraph& g, Rng& rng);

/// In-place variant for hot loops: overwrites `out`, reusing its buffers
/// (no allocation after the first call with the same graph). Draws the
/// same values as the returning overload for the same RNG state.
void draw_scenario(const AndOrGraph& g, Rng& rng, RunScenario& out);

/// The adversarial scenario: every task takes its WCET and every fork takes
/// its worst-case (longest remaining canonical time is unknown here, so the
/// caller passes explicit choices; by default alternative 0).
RunScenario worst_case_scenario(const AndOrGraph& g,
                                const std::vector<int>* choices = nullptr);

/// Assigns ACET = alpha * WCET to every computation node, with optional
/// jitter: acet_i ~ N(alpha * wcet_i, ((1-alpha) * wcet_i / 3)^2), clamped
/// to [min_frac * wcet, wcet]. With `jitter == false` the mean is used
/// directly. Mirrors the paper's alpha sweeps (§5.2).
void assign_alpha(AndOrGraph& g, double alpha, Rng* jitter_rng = nullptr,
                  double min_frac = 0.05);

}  // namespace paserta
