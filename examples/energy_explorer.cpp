// Energy design-space explorer.
//
//   $ ./energy_explorer [runs]
//
// For the synthetic Figure-3 application, sweeps (scheme x CPU count x
// power model) at a fixed load and prints a ranked table — the "which
// configuration should I ship?" question. Demonstrates the harness API on
// a custom grid instead of the paper's fixed figures.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "apps/synthetic.h"
#include "common/table.h"
#include "harness/experiment.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::max(1, std::atoi(argv[1])) : 200;
  const Application app = apps::build_synthetic();
  constexpr double kLoad = 0.6;

  struct Row {
    std::string model;
    int cpus;
    Scheme scheme;
    double norm_energy;
    double switches;
  };
  std::vector<Row> rows;

  for (const LevelTable& table :
       {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
    for (int cpus : {1, 2, 4}) {
      ExperimentConfig cfg;
      cfg.cpus = cpus;
      cfg.table = table;
      cfg.runs = runs;
      cfg.seed = 5150;
      const auto points = sweep_load(app, cfg, {kLoad});
      for (const SchemeStats& st : points.front().stats) {
        rows.push_back(Row{table.name(), cpus, st.scheme,
                           st.norm_energy.mean(), st.speed_changes.mean()});
      }
    }
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) {
              return a.norm_energy < b.norm_energy;
            });

  Table t({"rank", "model", "cpus", "scheme", "norm_energy", "switches"});
  int rank = 1;
  for (const Row& r : rows) {
    t.add_row({std::to_string(rank++), r.model, std::to_string(r.cpus),
               to_string(r.scheme), Table::num(r.norm_energy),
               Table::num(r.switches, 1)});
  }
  std::cout << "Synthetic app, load " << kLoad << ", " << runs
            << " runs per cell, energy normalized to NPM on the same "
               "platform:\n\n";
  t.write_pretty(std::cout);

  std::cout << "\nNote: normalized energy is comparable within a platform "
               "(same NPM base), not across platforms.\n";
  return 0;
}
