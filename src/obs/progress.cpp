#include "obs/progress.h"

#include <cstdio>

#include "common/error.h"

namespace paserta {

ProgressReporter::ProgressReporter(Callback callback,
                                   std::chrono::milliseconds min_interval)
    : callback_(std::move(callback)),
      interval_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       min_interval)
                       .count()),
      epoch_(std::chrono::steady_clock::now()) {
  PASERTA_REQUIRE(callback_ != nullptr, "progress callback must be set");
}

void ProgressReporter::add_total(int n) {
  PASERTA_REQUIRE(n >= 0, "progress total increment must be non-negative");
  total_.fetch_add(n, std::memory_order_relaxed);
}

void ProgressReporter::add_done(int n) {
  done_.fetch_add(n, std::memory_order_relaxed);
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  std::int64_t next = next_emit_ns_.load(std::memory_order_relaxed);
  if (now < next) return;
  // One racer wins the emission slot; the rest skip — the next tick will
  // carry their progress anyway.
  if (!next_emit_ns_.compare_exchange_strong(next, now + interval_ns_,
                                             std::memory_order_relaxed))
    return;
  emit();
}

void ProgressReporter::emit() {
  std::lock_guard<std::mutex> lock(emit_m_);
  if (finished_) return;
  ProgressSnapshot snap;
  snap.done = done();
  snap.total = total();
  snap.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - epoch_)
                     .count();
  snap.per_sec = snap.seconds > 0.0
                     ? static_cast<double>(snap.done) / snap.seconds
                     : 0.0;
  callback_(snap);
}

void ProgressReporter::finish() {
  std::lock_guard<std::mutex> lock(emit_m_);
  if (finished_) return;
  ProgressSnapshot snap;
  snap.done = done();
  snap.total = total();
  snap.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - epoch_)
                     .count();
  snap.per_sec = snap.seconds > 0.0
                     ? static_cast<double>(snap.done) / snap.seconds
                     : 0.0;
  snap.finished = true;
  callback_(snap);
  finished_ = true;
}

ProgressReporter::Callback stderr_progress_renderer(const std::string& label) {
  return [label](const ProgressSnapshot& s) {
    const int pct =
        s.total > 0 ? static_cast<int>(100.0 * s.done / s.total) : 0;
    std::fprintf(stderr, "\r%s: %d/%d (%d%%) %.1f/s%s", label.c_str(),
                 s.done, s.total, pct, s.per_sec, s.finished ? "\n" : "");
    std::fflush(stderr);
  };
}

}  // namespace paserta
