// Experiment harness: the Monte-Carlo driver behind every figure.
//
// One *point* fixes an application (with its ACETs), a CPU count, a power
// model, overheads and a deadline, then evaluates all requested schemes on
// `runs` shared scenarios (same actual times and OR choices for every
// scheme — paired comparison) and reports energy normalized to NPM on the
// same scenario, exactly the quantity the paper plots.
//
// Sweeps vary either the load (deadline = W / load, paper §5.1) or alpha
// (ACET/WCET ratio, paper §5.2).
//
// Execution model: runs are partitioned into chunked index ranges claimed
// atomically from the persistent WorkerPool (harness/pool.h) — no per-point
// thread spawn/join. A load sweep additionally (a) runs the
// deadline-independent canonical offline analysis exactly once through an
// OfflineCache and (b) overlaps its points on the pool, so the machine
// stays saturated even when `runs` per point is small. All of this is
// unobservable in the output: every run draws from its own seed-derived
// stream and results accumulate in run order, so SweepPoints are
// bit-identical for every thread count, chunk size and point interleaving.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/offline.h"
#include "core/policy.h"
#include "graph/program.h"
#include "obs/metrics.h"
#include "power/power_model.h"

namespace paserta {

class Tracer;            // obs/trace.h
class ProgressReporter;  // obs/progress.h
class Profiler;          // obs/prof.h

/// Scenario-dedup memoization (DESIGN.md §15): simulate each distinct
/// scenario of a point once, replay the cached per-run record for every
/// duplicate draw. Replay is bit-identical — a duplicate run's values, its
/// counters and its position in the run-ordered accumulation are exactly
/// what re-simulating would produce — so the knob is output-invisible.
enum class DedupMode {
  /// On when the compiled sampler proves the point's scenario space is
  /// finite (OR choices only, no gaussian draws) and no larger than the
  /// run count, so replay is guaranteed to pay; off otherwise. (The
  /// paper's fig4 apps at alpha < 1 draw gaussian execution times, which
  /// makes virtually every scenario distinct — memoizing them would only
  /// burn memory.)
  kAuto,
  /// Always memoize — including unbounded scenario spaces, where the
  /// cache grows with the distinct-draw count (tests use this to pin the
  /// all-miss path; it is never faster there).
  kOn,
  /// Never memoize.
  kOff,
};

struct ExperimentConfig {
  int cpus = 2;
  LevelTable table = LevelTable::transmeta_tm5400();
  Overheads overheads;
  double c_ef = 1e-9;
  double idle_fraction = 0.05;
  std::vector<Scheme> schemes = {Scheme::SPM, Scheme::GSS, Scheme::SS1,
                                 Scheme::SS2, Scheme::AS};
  int runs = 1000;
  std::uint64_t seed = 42;
  /// Maximum concurrent workers for the Monte-Carlo loop (1 = serial, no
  /// pool involvement). Results are bit-identical for any value: each run
  /// draws from its own seed-derived stream and accumulation happens in
  /// run order.
  int threads = 1;
  /// Runs per atomically-claimed work unit (0 = auto). Any value yields
  /// identical results; smaller chunks balance better, larger chunks touch
  /// the shared counter less.
  int chunk_runs = 0;
  /// Overlap independent sweep points on the worker pool (sweep_load).
  /// Off = points evaluated one after another (each still run-parallel).
  /// Either way the output is identical; this is purely a scheduling knob.
  bool parallel_points = true;
  /// Scenarios simulated in lockstep per engine call (sim/batch_engine.h):
  /// 0 = auto, 1 = force the scalar per-run engine, N >= 2 = N lanes.
  /// Purely a scheduling knob: the batched engine is bit-identical to the
  /// scalar one run-for-run, so every output (energies, counters, CSV) is
  /// the same for every value. Configurations that need engine facilities
  /// only the scalar path has (verify_traces' completeness traversal,
  /// per-run tracer spans) fall back to scalar regardless.
  int batch = 0;
  /// Scenario-dedup outcome memoization (see DedupMode). Configurations
  /// that need genuinely per-run engine work — verify_traces, audit's
  /// three-way re-accounting, a per-run tracer — force the uncached path
  /// regardless, because a replayed run performs no engine work to verify,
  /// re-account or span. Output is bit-identical for every mode.
  DedupMode dedup = DedupMode::kAuto;
  /// Canonical-schedule priority rule (paper evaluates LTF).
  ListHeuristic heuristic = ListHeuristic::LongestTaskFirst;
  /// Speculative-floor rounding mode (see PolicyOptions).
  PolicyOptions policy_options;
  /// Verify every trace against the model invariants (slower; used by
  /// tests, off by default in benches).
  bool verify_traces = false;

  // --- Observability (obs/). Everything below is strictly write-only with
  // respect to the simulation: enabling any of it cannot change a single
  // output bit (regression-tested), only record what happened.
  /// Collect engine SimCounters per (point, scheme) onto SweepPoint::
  /// metrics, and pool-balance metrics (chunk counts/latency, busy/idle
  /// time per slot) into `registry`. Off = zero instrumentation cost
  /// beyond a few null checks.
  bool collect_metrics = false;
  /// Registry receiving the pool metrics and engine counter totals; null
  /// with collect_metrics on = MetricsRegistry::global().
  MetricsRegistry* registry = nullptr;
  /// Span tracer: the harness records sweep / offline-analysis / chunk
  /// spans (and per-simulation spans at Tracer::Detail::kRuns) for Chrome
  /// trace export (obs/chrome_trace.h). Null = no tracing.
  Tracer* tracer = nullptr;
  /// Live progress: registered with the total chunk count up front, ticked
  /// once per completed chunk. Null = silent.
  ProgressReporter* progress = nullptr;
  /// Cycle-level phase profiler (obs/prof.h): the harness charges the
  /// offline analyze/apply, sampler compile, pool claim/busy/idle, per-run
  /// sample/simulate, batch setup/drain, stage flush and finalize phases.
  /// Null = every ProfScope is a single pointer test. Strictly write-only
  /// like the rest of this block: output is bit-identical with profiling
  /// on or off (prof_identity suite).
  Profiler* prof = nullptr;
  /// Self-auditing observability: every run is re-accounted three ways and
  /// the books must agree — (1) the engine asserts the attribution
  /// ledger's integer time-conservation invariant (SimOptions::audit);
  /// (2) the run's exported SimCounters are folded back to joules via
  /// attribution_energy() and must equal the engine's busy/overhead/idle
  /// energies *exactly* (bitwise — both sides are the same fold over the
  /// same integers); (3) the power-trace reconstruction's integral must
  /// match total_energy() to 1e-9 relative. Audit forces per-run traces
  /// internally (for check 3) but stays write-only for the simulation:
  /// sweep results are bit-identical with audit on or off. Slower
  /// (~trace + curve build per run); meant for validation runs and CI, not
  /// benches.
  bool audit = false;
};

struct SchemeStats {
  Scheme scheme = Scheme::NPM;
  RunningStat norm_energy;    // E / E_NPM per run
  RunningStat speed_changes;  // voltage transitions per run
  RunningStat finish_frac;    // finish time / deadline per run
  // Energy breakdown, as fractions of the scheme's own total energy.
  RunningStat busy_frac;
  RunningStat overhead_frac;
  RunningStat idle_frac;
  std::uint32_t deadline_misses = 0;
  std::uint32_t verify_failures = 0;
};

/// Engine telemetry totals of one point (ExperimentConfig::collect_metrics):
/// SimCounters summed over all runs, per scheme plus the NPM baseline.
/// Summation happens per (slot, scheme) cell in fixed slot order, so the
/// totals are identical for every thread count and chunk interleaving.
struct PointMetrics {
  std::vector<SimCounters> schemes;  // parallel to ExperimentConfig::schemes
  SimCounters npm;

  bool enabled() const { return !schemes.empty(); }
};

/// Dedup-layer telemetry of one point (zero unless the point's
/// configuration resolved to dedup). hits + misses always equals the run
/// count; misses is the number of distinct scenarios actually simulated.
struct DedupStats {
  bool enabled = false;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Heap footprint of the fingerprint tables and cached records (all
  /// per-slot shards plus the shared publish store).
  std::uint64_t bytes = 0;
};

struct SweepPoint {
  double x = 0.0;  // the swept parameter (load or alpha)
  SimTime deadline{};
  SimTime worst_makespan{};
  RunningStat npm_energy;  // absolute joules, for reference
  /// Runs whose NPM baseline consumed zero energy (degenerate workload:
  /// no computation and zero idle power). Normalized energy is undefined
  /// for them, so they are counted here and excluded from norm_energy.
  std::uint32_t degenerate_runs = 0;
  std::vector<SchemeStats> stats;
  /// Empty unless ExperimentConfig::collect_metrics was on.
  PointMetrics metrics;
  /// Dedup-layer telemetry (ExperimentConfig::dedup).
  DedupStats dedup;

  const SchemeStats& of(Scheme s) const;
};

/// Lanes per batched engine call that `config` resolves to, 0 = the scalar
/// per-run path (config.batch == 1, or a configuration that needs scalar-
/// only engine facilities). run_point's workers use exactly this rule;
/// exposed so benches and tests can label measurements with it.
int resolved_batch_lanes(const ExperimentConfig& config);

/// Whether `config` resolves to scenario-dedup memoization for a workload
/// whose compiled sampler reports `scenario_space` distinct scenarios
/// (ScenarioSampler::scenario_space(); 0 = unbounded). run_point's workers
/// use exactly this rule; exposed so benches and tests can label
/// measurements with it.
bool resolved_dedup(const ExperimentConfig& config,
                    std::uint64_t scenario_space);

/// Evaluates one point. `deadline` must be >= the canonical worst-case
/// makespan for the guarantee to hold (the harness does not enforce it, so
/// infeasible what-if points can be explored; misses are counted). With a
/// `cache`, the deadline-independent canonical analysis is looked up there
/// instead of recomputed (sweeps pass one cache for all their points).
SweepPoint run_point(const Application& app, const ExperimentConfig& config,
                     SimTime deadline, double x_value,
                     OfflineCache* cache = nullptr);

/// The pre-pool implementation: spawns and joins a fresh strided
/// std::thread set, runs its own offline analysis, and draws scenarios
/// through the legacy per-run draw_scenario walk (not the precompiled
/// ScenarioSampler). Kept as the benchmark baseline for the pooled path
/// (harness/throughput.cpp) and as a cross-check in tests — output is
/// bit-identical to run_point, which also pins the sampler against the
/// legacy scenario path.
SweepPoint run_point_unpooled(const Application& app,
                              const ExperimentConfig& config,
                              SimTime deadline, double x_value);

/// Load sweep: deadline = W / load for each load in `loads` (0 < load <= 1).
/// Performs exactly one canonical offline analysis (shared across points
/// via OfflineCache) and, with config.parallel_points, overlaps the points
/// on the worker pool.
std::vector<SweepPoint> sweep_load(const Application& app,
                                   const ExperimentConfig& config,
                                   const std::vector<double>& loads);

/// Alpha sweep at a fixed load: for each alpha the application's ACETs are
/// redrawn as N(alpha*wcet, ((1-alpha)wcet/3)^2) (clamped), the offline
/// analysis is redone, and the point is evaluated. The deadline derives
/// from WCETs only, so it is computed once; one application buffer is
/// reused across alphas (each redraw overwrites every ACET). Points run in
/// sequence — they share that buffer — but each point's runs use the pool.
std::vector<SweepPoint> sweep_alpha(const Application& app,
                                    const ExperimentConfig& config,
                                    double load,
                                    const std::vector<double>& alphas);

/// Uniformly spaced sweep values [from, to] with step `step` (inclusive).
std::vector<double> sweep_range(double from, double to, double step);

}  // namespace paserta
