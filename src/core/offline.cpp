#include "core/offline.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/error.h"
#include "core/list_sched.h"

namespace paserta {
namespace {

/// Cached per-segment analysis: canonical schedules and makespans.
struct SegAnalysis {
  // Sections:
  SectionSchedule wcet_sched;  // inflated WCET durations (defines EO & LST)
  SimTime w{};                 // worst-case makespan
  SimTime a{};                 // average-case makespan
  // Branches: per-alternative program times.
  std::vector<SimTime> alt_w;
  std::vector<SimTime> alt_a;
};

struct ProgramTimes {
  SimTime w{};
  SimTime a{};
};

std::atomic<std::uint64_t> g_canonical_count{0};

}  // namespace

/// Deadline-independent payload of one phase-1 analysis. The per-node
/// tables are copied into every OfflineResult derived from it; the segment
/// cache drives the per-deadline shift walk.
struct CanonicalData {
  const Application* app = nullptr;
  CanonicalOptions opt;
  SimTime worst_makespan{};
  SimTime average_makespan{};
  std::uint32_t max_eo = 0;
  std::vector<std::uint32_t> eo;
  /// Initial NUP per node (Figure 2 initialization: preds for AND /
  /// computation, min(1, preds) for OR) and the nodes starting at zero —
  /// precomputed here so the engine resets its counters with one memcpy
  /// per run instead of re-walking the Node structs.
  std::vector<std::uint32_t> nup_init;
  std::vector<std::uint32_t> sources;
  /// Flat dispatch descriptors (NodeFlag masks, raw WCETs, CSR successor
  /// lists): everything a dispatch needs from the Node structs, laid out
  /// contiguously for the engine hot path.
  std::vector<std::uint8_t> node_flags;
  std::vector<SimTime> wcet;
  std::vector<std::uint32_t> succ_off;
  std::vector<std::uint32_t> succ_flat;
  std::vector<SimTime> inflated_wcet;
  std::vector<SimTime> rem_a;
  std::vector<SimTime> rem_w;
  std::unordered_map<std::uint32_t, OrForkProfile> fork_profiles;
  std::unordered_map<const StructSegment*, SegAnalysis> segs;
};

/// The only writer of CanonicalAnalysis and OfflineResult (their friend):
/// phase 1 fills a CanonicalData, phase 2 shifts it to a deadline.
class OfflineAnalyzer {
 public:
  static CanonicalAnalysis analyze(const Application& app,
                                   const CanonicalOptions& opt) {
    PASERTA_REQUIRE(opt.cpus >= 1, "need at least one processor");
    PASERTA_REQUIRE(!opt.overhead_budget.is_negative(),
                    "overhead budget must be non-negative");
    PASERTA_REQUIRE(!app.structure.segments.empty(),
                    "application '" << app.name << "' has no structure");

    auto data = std::make_shared<CanonicalData>();
    data->app = &app;
    data->opt = opt;

    const std::size_t n = app.graph.size();
    data->eo.assign(n, NodeId::kInvalid);
    data->nup_init.resize(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      const Node& node = app.graph.node(NodeId{v});
      data->nup_init[v] =
          node.kind == NodeKind::OrNode
              ? std::min<std::uint32_t>(
                    1, static_cast<std::uint32_t>(node.preds.size()))
              : static_cast<std::uint32_t>(node.preds.size());
      if (data->nup_init[v] == 0) data->sources.push_back(v);
    }
    data->node_flags.resize(n);
    data->wcet.resize(n);
    data->succ_off.resize(n + 1, 0);
    for (std::uint32_t v = 0; v < n; ++v) {
      const Node& node = app.graph.node(NodeId{v});
      std::uint8_t flags = 0;
      if (node.is_dummy()) flags |= kNodeFlagDummy;
      if (node.is_or_fork()) flags |= kNodeFlagOrFork;
      if (node.kind == NodeKind::OrNode) flags |= kNodeFlagOrNode;
      data->node_flags[v] = flags;
      data->wcet[v] = node.wcet;
      data->succ_off[v] = static_cast<std::uint32_t>(data->succ_flat.size());
      for (NodeId s : node.succs) data->succ_flat.push_back(s.value);
    }
    data->succ_off[n] = static_cast<std::uint32_t>(data->succ_flat.size());
    data->inflated_wcet.assign(n, SimTime::zero());
    data->rem_a.assign(n, SimTime::zero());
    data->rem_w.assign(n, SimTime::zero());

    OfflineAnalyzer an(app, opt, *data);
    const ProgramTimes t = an.compute_times(app.structure);
    data->worst_makespan = t.w;
    data->average_makespan = t.a;
    data->max_eo = an.assign_eo(app.structure, 0);
    PASERTA_ASSERT(
        std::none_of(data->eo.begin(), data->eo.end(),
                     [](std::uint32_t e) { return e == NodeId::kInvalid; }),
        "offline phase left a node without an execution order");
    an.assign_rem(app.structure, SimTime::zero(), SimTime::zero());
    for (NodeId id : app.graph.all_nodes())
      data->inflated_wcet[id.value] = an.inflated_wcet(id);

    g_canonical_count.fetch_add(1, std::memory_order_relaxed);
    CanonicalAnalysis result;
    result.data_ = std::move(data);
    return result;
  }

  static OfflineResult apply(const CanonicalAnalysis& canonical,
                             SimTime deadline) {
    PASERTA_REQUIRE(canonical.valid(),
                    "apply_deadline needs a valid canonical analysis");
    PASERTA_REQUIRE(deadline > SimTime::zero(), "deadline must be positive");
    const CanonicalData& d = *canonical.data_;

    OfflineResult r;
    r.cpus_ = d.opt.cpus;
    r.deadline_ = deadline;
    r.overhead_budget_ = d.opt.overhead_budget;
    r.worst_makespan_ = d.worst_makespan;
    r.average_makespan_ = d.average_makespan;
    r.max_eo_ = d.max_eo;
    r.eo_ = d.eo;
    r.nup_init_ = d.nup_init;
    r.sources_ = d.sources;
    r.node_flags_ = d.node_flags;
    r.wcet_ = d.wcet;
    r.succ_off_ = d.succ_off;
    r.succ_flat_ = d.succ_flat;
    r.inflated_wcet_ = d.inflated_wcet;
    r.rem_a_ = d.rem_a;
    r.rem_w_ = d.rem_w;
    r.fork_profiles_ = d.fork_profiles;

    const std::size_t n = d.app->graph.size();
    r.lst_.assign(n, SimTime::zero());
    r.eet_.assign(n, SimTime::zero());
    assign_lst(d, d.app->structure, deadline, r);
    for (std::uint32_t v = 0; v < n; ++v)
      r.eet_[v] = r.lst_[v] + r.inflated_wcet_[v];
    return r;
  }

 private:
  OfflineAnalyzer(const Application& app, const CanonicalOptions& opt,
                  CanonicalData& data)
      : app_(app), opt_(opt), data_(data) {}

  ProgramTimes compute_times(const StructProgram& p) {
    ProgramTimes total;
    for (const StructSegment& seg : p.segments) {
      if (seg.kind == StructSegment::Kind::Section) {
        SegAnalysis sa;
        sa.wcet_sched = ltf_schedule(
            app_.graph, seg.members, opt_.cpus,
            [&](NodeId id) { return inflated_wcet(id); }, opt_.heuristic);
        const SectionSchedule acet_sched = ltf_schedule(
            app_.graph, seg.members, opt_.cpus,
            [&](NodeId id) { return inflated_acet(id); }, opt_.heuristic);
        sa.w = sa.wcet_sched.makespan;
        sa.a = acet_sched.makespan;
        total.w += sa.w;
        total.a += sa.a;
        data_.segs.emplace(&seg, std::move(sa));
      } else {
        SegAnalysis sa;
        SimTime w_max{};
        double a_exp = 0.0;
        for (std::size_t i = 0; i < seg.alternatives.size(); ++i) {
          const ProgramTimes t = compute_times(seg.alternatives[i]);
          sa.alt_w.push_back(t.w);
          sa.alt_a.push_back(t.a);
          w_max = std::max(w_max, t.w);
          a_exp += seg.alt_prob[i] * static_cast<double>(t.a.ps);
        }
        total.w += w_max;
        total.a += SimTime{static_cast<std::int64_t>(a_exp + 0.5)};
        data_.segs.emplace(&seg, std::move(sa));
      }
    }
    return total;
  }

  std::uint32_t assign_eo(const StructProgram& p, std::uint32_t counter) {
    for (const StructSegment& seg : p.segments) {
      if (seg.kind == StructSegment::Kind::Section) {
        for (NodeId id : data_.segs.at(&seg).wcet_sched.dispatch_order)
          data_.eo[id.value] = counter++;
      } else {
        data_.eo[seg.fork.value] = counter++;
        const std::uint32_t base = counter;
        std::uint32_t max_span = 0;
        for (const StructProgram& alt : seg.alternatives) {
          const std::uint32_t end = assign_eo(alt, base);
          max_span = std::max(max_span, end - base);
        }
        counter = base + max_span;
        data_.eo[seg.join.value] = counter++;
      }
    }
    return counter;
  }

  /// Backward walk computing remaining worst/average times after each OR
  /// node and the per-alternative fork profiles (the PMP data of §2.2).
  void assign_rem(const StructProgram& p, SimTime rem_w_after,
                  SimTime rem_a_after) {
    for (auto it = p.segments.rbegin(); it != p.segments.rend(); ++it) {
      const StructSegment& seg = *it;
      const SegAnalysis& sa = data_.segs.at(&seg);
      if (seg.kind == StructSegment::Kind::Section) {
        rem_w_after += sa.w;
        rem_a_after += sa.a;
      } else {
        data_.rem_w[seg.join.value] = rem_w_after;
        data_.rem_a[seg.join.value] = rem_a_after;
        OrForkProfile prof;
        SimTime rem_w_fork{};
        double rem_a_fork = 0.0;
        for (std::size_t i = 0; i < seg.alternatives.size(); ++i) {
          prof.rem_w_alt.push_back(sa.alt_w[i] + rem_w_after);
          prof.rem_a_alt.push_back(sa.alt_a[i] + rem_a_after);
          rem_w_fork = std::max(rem_w_fork, prof.rem_w_alt.back());
          rem_a_fork += seg.alt_prob[i] *
                        static_cast<double>(prof.rem_a_alt.back().ps);
          assign_rem(seg.alternatives[i], rem_w_after, rem_a_after);
        }
        data_.rem_w[seg.fork.value] = rem_w_fork;
        data_.rem_a[seg.fork.value] =
            SimTime{static_cast<std::int64_t>(rem_a_fork + 0.5)};
        data_.fork_profiles.emplace(seg.fork.value, std::move(prof));
        rem_w_after = data_.rem_w[seg.fork.value];
        rem_a_after = data_.rem_a[seg.fork.value];
      }
    }
  }

  /// Shifts this program's canonical schedule so it finishes exactly at
  /// `end`; records LSTs. Returns the program's shifted start time.
  static SimTime assign_lst(const CanonicalData& d, const StructProgram& p,
                            SimTime end, OfflineResult& r) {
    for (auto it = p.segments.rbegin(); it != p.segments.rend(); ++it) {
      const StructSegment& seg = *it;
      const SegAnalysis& sa = d.segs.at(&seg);
      if (seg.kind == StructSegment::Kind::Section) {
        const SimTime shift = end - sa.w;
        for (const auto& [node, item] : sa.wcet_sched.items)
          r.lst_[node] = item.start + shift;
        end = shift;
      } else {
        r.lst_[seg.join.value] = end;
        SimTime w_max{};
        for (std::size_t i = 0; i < seg.alternatives.size(); ++i) {
          assign_lst(d, seg.alternatives[i], end, r);
          w_max = std::max(w_max, sa.alt_w[i]);
        }
        const SimTime fork_time = end - w_max;
        r.lst_[seg.fork.value] = fork_time;
        end = fork_time;
      }
    }
    return end;
  }

  SimTime inflated_wcet(NodeId id) const {
    const Node& n = app_.graph.node(id);
    return n.is_dummy() ? SimTime::zero() : n.wcet + opt_.overhead_budget;
  }
  SimTime inflated_acet(NodeId id) const {
    const Node& n = app_.graph.node(id);
    return n.is_dummy() ? SimTime::zero() : n.acet + opt_.overhead_budget;
  }

  const Application& app_;
  const CanonicalOptions& opt_;
  CanonicalData& data_;
};

SimTime CanonicalAnalysis::worst_makespan() const {
  return data_ ? data_->worst_makespan : SimTime::zero();
}
SimTime CanonicalAnalysis::average_makespan() const {
  return data_ ? data_->average_makespan : SimTime::zero();
}
int CanonicalAnalysis::cpus() const { return data_ ? data_->opt.cpus : 0; }
SimTime CanonicalAnalysis::overhead_budget() const {
  return data_ ? data_->opt.overhead_budget : SimTime::zero();
}
ListHeuristic CanonicalAnalysis::heuristic() const {
  return data_ ? data_->opt.heuristic : ListHeuristic::LongestTaskFirst;
}
const Application& CanonicalAnalysis::application() const {
  PASERTA_REQUIRE(data_ != nullptr, "empty canonical analysis");
  return *data_->app;
}

CanonicalAnalysis analyze_canonical(const Application& app,
                                    const CanonicalOptions& options) {
  return OfflineAnalyzer::analyze(app, options);
}

OfflineResult apply_deadline(const CanonicalAnalysis& canonical,
                             SimTime deadline) {
  return OfflineAnalyzer::apply(canonical, deadline);
}

OfflineResult analyze_offline(const Application& app,
                              const OfflineOptions& options) {
  CanonicalOptions copt;
  copt.cpus = options.cpus;
  copt.overhead_budget = options.overhead_budget;
  copt.heuristic = options.heuristic;
  return apply_deadline(analyze_canonical(app, copt), options.deadline);
}

SimTime canonical_worst_makespan(const Application& app, int cpus,
                                 SimTime overhead_budget,
                                 ListHeuristic heuristic) {
  CanonicalOptions opt;
  opt.cpus = cpus;
  opt.overhead_budget = overhead_budget;
  opt.heuristic = heuristic;
  return analyze_canonical(app, opt).worst_makespan();
}

std::uint64_t canonical_analysis_count() {
  return g_canonical_count.load(std::memory_order_relaxed);
}

std::size_t OfflineCache::KeyHash::operator()(const Key& k) const {
  // splitmix64-style mix of the key fields.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = mix(0, reinterpret_cast<std::uintptr_t>(k.graph));
  h = mix(h, static_cast<std::uint64_t>(k.cpus));
  h = mix(h, static_cast<std::uint64_t>(k.overhead_budget_ps));
  h = mix(h, static_cast<std::uint64_t>(k.heuristic));
  return static_cast<std::size_t>(h);
}

const CanonicalAnalysis& OfflineCache::get(const Application& app,
                                           const CanonicalOptions& options) {
  Key key;
  key.graph = &app.graph;
  key.cpus = options.cpus;
  key.overhead_budget_ps = options.overhead_budget.ps;
  key.heuristic = options.heuristic;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return entries_.emplace(key, analyze_canonical(app, options)).first->second;
}

}  // namespace paserta
