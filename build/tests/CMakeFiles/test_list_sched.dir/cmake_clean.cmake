file(REMOVE_RECURSE
  "CMakeFiles/test_list_sched.dir/test_list_sched.cpp.o"
  "CMakeFiles/test_list_sched.dir/test_list_sched.cpp.o.d"
  "test_list_sched"
  "test_list_sched.pdb"
  "test_list_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_list_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
