// Tests for the JSON export of sweep results.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/synthetic.h"
#include "harness/json.h"

namespace paserta {
namespace {

std::vector<SweepPoint> tiny_sweep() {
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.runs = 3;
  cfg.seed = 7;
  cfg.schemes = {Scheme::GSS, Scheme::AS};
  return sweep_load(apps::build_synthetic(), cfg, {0.5, 0.8});
}

TEST(Json, DocumentStructure) {
  const auto points = tiny_sweep();
  JsonExportOptions opt;
  opt.experiment_id = "figT";
  opt.caption = "test \"sweep\"";
  opt.x_name = "load";
  const std::string j = sweep_to_json(points, opt);

  EXPECT_NE(j.find("\"experiment\":\"figT\""), std::string::npos);
  EXPECT_NE(j.find("\\\"sweep\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(j.find("\"x_name\":\"load\""), std::string::npos);
  EXPECT_NE(j.find("\"GSS\":{"), std::string::npos);
  EXPECT_NE(j.find("\"AS\":{"), std::string::npos);
  EXPECT_NE(j.find("\"norm_energy\""), std::string::npos);
  EXPECT_NE(j.find("\"deadline_misses\":0"), std::string::npos);
  // The per-point x key '"load":' appears exactly once per point (the
  // x_name declaration carries "load" as a value, not as a key).
  std::size_t count = 0, pos = 0;
  while ((pos = j.find("\"load\":", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Json, BalancedBracesAndBrackets) {
  const auto points = tiny_sweep();
  JsonExportOptions opt;
  opt.experiment_id = "x";
  const std::string j = sweep_to_json(points, opt);
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < j.size(); ++i) {
    const char c = j[i];
    if (c == '"' && (i == 0 || j[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(Json, EscapesControlCharacters) {
  JsonExportOptions opt;
  opt.experiment_id = "tab\there";
  opt.caption = "line\nbreak";
  const std::string j = sweep_to_json({}, opt);
  EXPECT_NE(j.find("tab\\there"), std::string::npos);
  EXPECT_NE(j.find("line\\nbreak"), std::string::npos);
  EXPECT_EQ(j.find('\n'), std::string::npos);
  EXPECT_EQ(j.find('\t'), std::string::npos);
}

TEST(Json, EmptySweepIsValid) {
  JsonExportOptions opt;
  opt.experiment_id = "empty";
  const std::string j = sweep_to_json({}, opt);
  EXPECT_NE(j.find("\"points\":[]"), std::string::npos);
}

TEST(Json, BreakdownFractionsPresentAndSane) {
  const auto points = tiny_sweep();
  for (const auto& p : points) {
    for (const auto& st : p.stats) {
      const double total = st.busy_frac.mean() + st.overhead_frac.mean() +
                           st.idle_frac.mean();
      EXPECT_NEAR(total, 1.0, 1e-9) << to_string(st.scheme);
      EXPECT_GE(st.idle_frac.mean(), 0.0);
    }
  }
}

}  // namespace
}  // namespace paserta
