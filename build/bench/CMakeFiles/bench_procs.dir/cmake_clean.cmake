file(REMOVE_RECURSE
  "CMakeFiles/bench_procs.dir/bench_procs.cpp.o"
  "CMakeFiles/bench_procs.dir/bench_procs.cpp.o.d"
  "bench_procs"
  "bench_procs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
