# Empty compiler generated dependencies file for bench_independent.
# This may be replaced when dependencies are built.
