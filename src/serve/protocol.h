// Wire protocol of the resident simulation service (DESIGN.md §16).
//
// Requests are newline-delimited JSON objects parsed by harness/json —
// the same parser the tools already round-trip against — under explicit
// untrusted-input limits (request size, graph text size, run/cpu caps; the
// parser itself enforces the nesting-depth limit). Responses are rendered
// through the shared JsonWriter, one line per response:
//
//   {"cmd": "hello"}                          -> {"type":"hello",...}
//   {"graph": "@atr", "load": 0.5, ...}       -> {"type":"result",...}
//   anything invalid                          -> {"type":"error",...}
//
// A result response splices the *exact* sweep-export document the offline
// CLI prints for the same point under "experiment" — bit-identity with
// `paserta_cli sweep --json` is part of the contract and pinned by
// test_serve.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/list_sched.h"
#include "core/policy.h"

namespace paserta {

/// Untrusted-input caps enforced on every request before any work runs.
/// Violations produce structured error responses, never crashes — the
/// adversarial inputs in test_json/test_serve pin that.
struct ServeLimits {
  /// Longest accepted request line, bytes (newline excluded).
  std::size_t max_request_bytes = 1u << 20;
  /// Longest accepted inline graph text, bytes.
  std::size_t max_graph_text_bytes = 256u * 1024;
  int max_cpus = 64;
  int max_runs = 1'000'000;
};

/// One parsed simulation request. Field defaults mirror the offline CLI
/// so a minimal request ({"graph": "@atr"}) means exactly what
/// `paserta_cli sweep @atr` means at one point.
struct SimRequest {
  /// The request's "id" member re-rendered as JSON, echoed verbatim in
  /// the response; empty = absent.
  std::string id_json;
  std::string command = "simulate";  // "simulate" | "hello"

  /// "@atr" / "@synthetic" / "@mpeg", or inline workload text
  /// (graph_is_text). Builtin names are resolved by the service.
  std::string graph;
  bool graph_is_text = false;

  std::string table = "transmeta";  // "transmeta" | "xscale"
  int cpus = 2;
  ListHeuristic heuristic = ListHeuristic::LongestTaskFirst;
  std::vector<Scheme> schemes;  // empty = the CLI's default five
  int runs = 200;
  std::uint64_t seed = 1;
  /// Deadline: exactly one of load (D = ceil(W / load), the sweep rule)
  /// or deadline_ms. Neither given = load 0.5, the CLI default.
  double load = 0.5;
  std::optional<double> deadline_ms;
  /// Opt-in progress streaming ("stream": true): on the NDJSON transport
  /// the server interleaves rate-limited {"event":"progress",...} lines
  /// while this request is in flight, then writes the unchanged final
  /// response. Off by default so one-line clients are untouched.
  bool stream = false;
};

/// Parses and validates one request line under `limits`. Throws
/// paserta::Error (with the parser's byte offsets for malformed JSON) on
/// any violation; the caller turns that into a render_error response.
SimRequest parse_request(const std::string& line, const ServeLimits& limits);

/// {"id":...,"type":"error","code":code,"message":message}
/// Codes: bad_request, overloaded, timeout, shutting_down, internal.
std::string render_error(const std::string& id_json, const std::string& code,
                         const std::string& message);

/// {"id":...,"type":"hello","server":...,"git_rev":...,"build":...,"proto":1}
std::string render_hello(const std::string& id_json);

/// {"id":...,"type":"result","graph_hash":"<hex>","coalesced":N,
///  "elapsed_ms":...,"experiment":<experiment_json spliced verbatim>}
std::string render_result(const std::string& id_json,
                          std::uint64_t graph_hash, std::uint64_t coalesced,
                          double elapsed_ms,
                          const std::string& experiment_json);

/// One streamed progress line ("stream": true requests only):
/// {"id":...,"event":"progress","done":N,"total":M,"phase":"...",
///  "elapsed_ms":...,"cycles":C,"instructions":I}
/// done/total count pool chunks of the in-flight batch; cycles and
/// instructions are the live profiler snapshot (0 on the fallback clock).
std::string render_progress(const std::string& id_json, std::uint64_t done,
                            std::uint64_t total, const std::string& phase,
                            double elapsed_ms, std::uint64_t cycles,
                            std::uint64_t instructions);

/// Fixed-width lowercase hex of a 64-bit hash ("%016x"), the rendering
/// graph_hash uses everywhere (responses, logs, tests).
std::string hash_hex(std::uint64_t h);

}  // namespace paserta
