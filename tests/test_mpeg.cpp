// Tests for the MPEG-style decoder workload.
#include <gtest/gtest.h>

#include "apps/mpeg.h"
#include "common/error.h"
#include "core/offline.h"
#include "graph/metrics.h"
#include "sim/engine.h"

namespace paserta {
namespace {

using apps::MpegConfig;

TEST(Mpeg, DefaultBuildValidates) {
  const Application app = apps::build_mpeg();
  EXPECT_NO_THROW(app.graph.validate());
  EXPECT_EQ(app.or_fork_count(), 1u);
  // parse + deblock + 3 alternatives x (4 slices + 0/1/2 mc tasks).
  EXPECT_EQ(app.graph.task_count(), 2u + (4 + 0) + (4 + 1) + (4 + 2));
}

TEST(Mpeg, FrameTypeProbabilities) {
  MpegConfig cfg;
  cfg.p_i = 0.2;
  cfg.p_p = 0.3;
  cfg.p_b = 0.5;
  const Application app = apps::build_mpeg(cfg);
  for (NodeId id : app.graph.all_nodes()) {
    const Node& n = app.graph.node(id);
    if (!n.is_or_fork()) continue;
    ASSERT_EQ(n.succ_prob.size(), 3u);
    EXPECT_DOUBLE_EQ(n.succ_prob[0], 0.2);
    EXPECT_DOUBLE_EQ(n.succ_prob[1], 0.3);
    EXPECT_DOUBLE_EQ(n.succ_prob[2], 0.5);
  }
}

TEST(Mpeg, BFramesCostMoreDespiteSmallerSlices) {
  // B path: 4x3ms parallel + 2x3ms serial MC; I path: 4x6ms parallel.
  // On 4 CPUs the critical paths are 3+6=9ms (B) vs 6ms (I).
  const Application app = apps::build_mpeg();
  const GraphMetrics m = compute_metrics(app);
  EXPECT_GT(m.parallelism, 1.5);
  EXPECT_DOUBLE_EQ(m.path_count, 3.0);
}

TEST(Mpeg, WorstCasePathIsP) {
  // Total work: I = 24ms, P = 16+3 = 19ms, B = 12+6 = 18ms -> I wins on
  // work; canonical W on 1 cpu = parse + 24 + deblock.
  const Application app = apps::build_mpeg();
  const SimTime w1 = canonical_worst_makespan(app, 1, SimTime::zero());
  EXPECT_EQ(w1, SimTime::from_ms(1 + 24 + 4));
}

TEST(Mpeg, SlicesScaleParallelism) {
  MpegConfig narrow, wide;
  narrow.slices = 1;
  wide.slices = 8;
  const auto mn = compute_metrics(apps::build_mpeg(narrow));
  const auto mw = compute_metrics(apps::build_mpeg(wide));
  EXPECT_GT(mw.parallelism, mn.parallelism);
}

TEST(Mpeg, RunsCleanUnderAllSchemes) {
  const Application app = apps::build_mpeg();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 4;
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  o.deadline = canonical_worst_makespan(app, 4, o.overhead_budget);
  const OfflineResult off = analyze_offline(app, o);
  ASSERT_TRUE(off.feasible());
  Rng rng(44);
  for (int run = 0; run < 8; ++run) {
    const RunScenario sc = draw_scenario(app.graph, rng);
    for (Scheme s : {Scheme::NPM, Scheme::SPM, Scheme::GSS, Scheme::SS1,
                     Scheme::SS2, Scheme::AS}) {
      EXPECT_TRUE(simulate(app, off, pm, ovh, s, sc).deadline_met)
          << to_string(s);
    }
  }
}

TEST(Mpeg, ConfigValidation) {
  MpegConfig cfg;
  cfg.p_i = 0.5;  // sums to 1.4
  EXPECT_THROW(apps::build_mpeg(cfg), Error);
  cfg = MpegConfig{};
  cfg.slices = 0;
  EXPECT_THROW(apps::build_mpeg(cfg), Error);
  cfg = MpegConfig{};
  cfg.alpha = 1.5;
  EXPECT_THROW(apps::build_mpeg(cfg), Error);
}

}  // namespace
}  // namespace paserta
