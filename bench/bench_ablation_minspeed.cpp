// Ablation: the minimum-speed ratio f_min/f_max (the paper's §6 planned
// experiment). A higher f_min prevents greedy from burning all slack on
// early tasks, which is exactly why GSS stays competitive with the
// speculative schemes.
#include "apps/synthetic.h"
#include "bench_util.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 500);
  const Application syn = apps::build_synthetic();
  constexpr double kLoad = 0.5;
  constexpr Freq kFmax = 1000 * kMHz;

  std::vector<SweepPoint> points;
  for (double ratio : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    const auto fmin = static_cast<Freq>(ratio * static_cast<double>(kFmax));
    const LevelTable table = LevelTable::synthetic(
        "ratio" + std::to_string(ratio), 16, fmin, kFmax,
        0.8 + ratio * 1.0, 1.8);
    auto cfg = benchutil::paper_config(table, 2, runs);
    const SimTime w = canonical_worst_makespan(
        syn, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table));
    const SimTime deadline{
        static_cast<std::int64_t>(static_cast<double>(w.ps) / kLoad + 1)};
    points.push_back(run_point(syn, cfg, deadline, ratio));
  }
  benchutil::emit("Ablation.minspeed",
                  "Energy vs f_min/f_max ratio, synthetic, 2 CPUs, "
                  "load=0.5, 16 levels",
                  points, "fmin_ratio");
  return 0;
}
