#include <sstream>
#include <algorithm>
// Tests for the SVG schedule renderer.
#include <gtest/gtest.h>

#include "apps/synthetic.h"
#include "common/error.h"
#include "core/offline.h"
#include "sim/svg.h"

namespace paserta {
namespace {

struct Env {
  Application app = apps::build_synthetic();
  PowerModel pm{LevelTable::intel_xscale()};
  Overheads ovh;
  OfflineResult off;
  SimResult result;

  Env() {
    OfflineOptions o;
    o.cpus = 2;
    o.overhead_budget = ovh.worst_case_budget(pm.table());
    o.deadline = canonical_worst_makespan(app, 2, o.overhead_budget) * 2;
    off = analyze_offline(app, o);
    Rng rng(8);
    result = simulate(app, off, pm, ovh, Scheme::GSS,
                      draw_scenario(app.graph, rng));
  }
};

/// Minimal well-formedness: every '<tag' has a matching close and
/// attribute quotes are balanced.
void expect_balanced_xml(const std::string& svg) {
  EXPECT_EQ(std::count(svg.begin(), svg.end(), '"') % 2, 0);
  const auto opens = [&](const std::string& tag) {
    std::size_t n = 0, pos = 0;
    while ((pos = svg.find("<" + tag, pos)) != std::string::npos) {
      ++n;
      ++pos;
    }
    return n;
  };
  const auto closed_inline = [&](const std::string& tag) {
    // count "<tag ... />" self-closes plus "</tag>" closes
    std::size_t n = 0, pos = 0;
    while ((pos = svg.find("</" + tag + ">", pos)) != std::string::npos) {
      ++n;
      ++pos;
    }
    return n;
  };
  EXPECT_EQ(opens("svg"), 1u);
  EXPECT_EQ(closed_inline("svg"), 1u);
  EXPECT_EQ(opens("title"), closed_inline("title"));
  EXPECT_EQ(opens("text"), closed_inline("text"));
}

TEST(Svg, StructureAndContent) {
  Env e;
  const std::string svg =
      svg_gantt_to_string(e.app, e.off, e.pm, e.ovh, e.result);
  EXPECT_EQ(svg.rfind("<svg ", 0), 0u);
  expect_balanced_xml(svg);
  // Lanes for both CPUs and at least one task rect with a tooltip.
  EXPECT_NE(svg.find("cpu0"), std::string::npos);
  EXPECT_NE(svg.find("cpu1"), std::string::npos);
  EXPECT_NE(svg.find("class=\"task\""), std::string::npos);
  EXPECT_NE(svg.find("MHz"), std::string::npos);
  // Deadline marker and power curve present by default.
  EXPECT_NE(svg.find("class=\"deadline\""), std::string::npos);
  EXPECT_NE(svg.find("class=\"power\""), std::string::npos);
}

TEST(Svg, SwitchMarkers) {
  Env e;
  ASSERT_GT(e.result.speed_changes, 0u);
  const std::string svg =
      svg_gantt_to_string(e.app, e.off, e.pm, e.ovh, e.result);
  EXPECT_NE(svg.find("class=\"switch\""), std::string::npos);
}

TEST(Svg, OptionsRespected) {
  Env e;
  SvgOptions opt;
  opt.show_power_curve = false;
  opt.show_labels = false;
  const std::string svg =
      svg_gantt_to_string(e.app, e.off, e.pm, e.ovh, e.result, opt);
  EXPECT_EQ(svg.find("class=\"power\""), std::string::npos);
  EXPECT_THROW(
      (void)svg_gantt_to_string(e.app, e.off, e.pm, e.ovh, e.result,
                                SvgOptions{100}),
      Error);
}

TEST(Svg, EscapesTaskNames) {
  Program p;
  p.task("a<b>&c", SimTime::from_ms(5), SimTime::from_ms(3));
  Application app = build_application("esc", p);
  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 1;
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  o.deadline = SimTime::from_ms(20);
  const OfflineResult off = analyze_offline(app, o);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS,
                               worst_case_scenario(app.graph));
  const std::string svg = svg_gantt_to_string(app, off, pm, ovh, r);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;c"), std::string::npos);
  EXPECT_EQ(svg.find("a<b>"), std::string::npos);
}

TEST(Svg, EnergyAnnotationMatchesLedger) {
  Env e;
  const std::string svg =
      svg_gantt_to_string(e.app, e.off, e.pm, e.ovh, e.result);
  std::ostringstream expect;
  expect << e.result.total_energy() * 1e3;
  EXPECT_NE(svg.find(expect.str().substr(0, 6)), std::string::npos);
}

}  // namespace
}  // namespace paserta
