#include "harness/report.h"

#include <ostream>

namespace paserta {

Table sweep_table(const std::vector<SweepPoint>& points,
                  const std::string& x_name) {
  Table t({x_name, "scheme", "norm_energy", "ci95", "speed_changes",
           "finish_frac", "misses", "runs"});
  for (const SweepPoint& p : points) {
    for (const SchemeStats& s : p.stats) {
      t.add_row({Table::num(p.x, 2), to_string(s.scheme),
                 Table::num(s.norm_energy.mean()),
                 Table::num(s.norm_energy.ci95_halfwidth()),
                 Table::num(s.speed_changes.mean(), 2),
                 Table::num(s.finish_frac.mean(), 3),
                 std::to_string(s.deadline_misses),
                 std::to_string(s.norm_energy.count())});
    }
  }
  return t;
}

Table sweep_series(const std::vector<SweepPoint>& points,
                   const std::string& x_name) {
  std::vector<std::string> header{x_name};
  if (!points.empty()) {
    for (const SchemeStats& s : points.front().stats)
      header.emplace_back(to_string(s.scheme));
  }
  Table t(std::move(header));
  for (const SweepPoint& p : points) {
    std::vector<std::string> row{Table::num(p.x, 2)};
    for (const SchemeStats& s : p.stats)
      row.push_back(Table::num(s.norm_energy.mean()));
    t.add_row(std::move(row));
  }
  return t;
}

void print_figure(std::ostream& os, const std::string& figure_id,
                  const std::string& caption,
                  const std::vector<SweepPoint>& points,
                  const std::string& x_name) {
  os << "# " << figure_id << ": " << caption << "\n";
  sweep_series(points, x_name).write_csv(os);
  os << "\n";
}

}  // namespace paserta
