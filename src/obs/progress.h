// Live progress reporting for long sweeps.
//
// A ProgressReporter is fed one add_done() tick per completed work unit
// (the pool's telemetry hook calls it per chunk) and invokes a
// user-supplied callback at most once per rate-limit interval — workers
// race on a relaxed compare-exchange for the next emission slot, so the
// ticking path costs an atomic increment and a clock read, and the
// callback itself is serialized. The total may grow while work is running
// (add_total): a sweep registers its chunk count when it starts, so one
// reporter can span several run_point calls (sweep_alpha's sequential
// points). finish() force-emits the final state exactly once.
//
// Determinism contract: like the rest of obs/, progress is observational —
// it never feeds back into scheduling or results.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace paserta {

struct ProgressSnapshot {
  int done = 0;
  int total = 0;          // as registered so far; may still grow
  double seconds = 0.0;   // since the reporter was constructed
  double per_sec = 0.0;   // done / seconds
  bool finished = false;  // set by finish()
};

class ProgressReporter {
 public:
  using Callback = std::function<void(const ProgressSnapshot&)>;

  explicit ProgressReporter(
      Callback callback,
      std::chrono::milliseconds min_interval = std::chrono::milliseconds(200));

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Registers `n` more expected work units (thread-safe).
  void add_total(int n);

  /// Records `n` completed units; emits the callback if the rate limit
  /// allows (thread-safe, called from pool workers).
  void add_done(int n = 1);

  /// Force-emits the final snapshot once; later calls are no-ops.
  void finish();

  int done() const { return done_.load(std::memory_order_relaxed); }
  int total() const { return total_.load(std::memory_order_relaxed); }

 private:
  void emit();

  Callback callback_;
  std::int64_t interval_ns_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<int> done_{0};
  std::atomic<int> total_{0};
  std::atomic<std::int64_t> next_emit_ns_{0};
  std::mutex emit_m_;        // serializes the callback
  bool finished_ = false;    // guarded by emit_m_
};

/// Callback rendering a single rewritten stderr line:
///   "<label>: 123/290 (42%) 812.3/s"
/// with a trailing newline on the finished snapshot.
ProgressReporter::Callback stderr_progress_renderer(
    const std::string& label = "progress");

}  // namespace paserta
