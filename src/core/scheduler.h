// PowerAwareScheduler: the one-object entry point for downstream users.
//
// Wraps application + platform + offline analysis + policy into a frame
// scheduler for periodic AND/OR applications (one "frame" = one execution
// of the whole graph against its deadline, the ATR usage pattern): feed it
// frames, get per-frame results and a running summary.
#pragma once

#include <memory>
#include <optional>

#include "common/stats.h"
#include "core/offline.h"
#include "core/policy.h"
#include "sim/engine.h"
#include "sim/sampler.h"

namespace paserta {

class PowerAwareScheduler {
 public:
  struct Config {
    int cpus = 2;
    LevelTable table = LevelTable::transmeta_tm5400();
    double c_ef = 1e-9;
    double idle_fraction = 0.05;
    Overheads overheads;
    Scheme scheme = Scheme::GSS;
    /// Either an absolute frame deadline...
    std::optional<SimTime> deadline;
    /// ...or a load factor (deadline = W / load). Exactly one must be set.
    std::optional<double> load;
    /// Also simulate NPM per frame to report normalized energy.
    bool track_npm_baseline = true;
    /// Record the per-task trace in every run_frame() result. Turn off
    /// for high-volume frame streams that only read the summary — frames
    /// then reuse the internal workspace with zero per-frame allocation.
    bool record_trace = true;
    /// Accumulate engine telemetry (SimCounters: dispatch volume, DVS
    /// activity, reclaimed slack, the energy-attribution ledger) across
    /// frames into Summary::counters (and Summary::npm_counters for the
    /// baseline runs). Observational only — never changes a frame result.
    bool collect_metrics = false;
    /// Self-audit every frame: the engine asserts the attribution ledger's
    /// integer time-conservation invariant (SimOptions::audit), and with
    /// collect_metrics the accumulated Summary counters stay foldable to
    /// the summed frame energies via attribution_energy(). Observational
    /// only — never changes a frame result.
    bool audit = false;
  };

  struct Summary {
    std::uint64_t frames = 0;
    std::uint64_t deadline_misses = 0;
    /// Frames whose NPM baseline consumed zero energy (degenerate
    /// workload): normalized energy is undefined, so they are counted
    /// here and excluded from norm_energy.
    std::uint64_t degenerate_frames = 0;
    RunningStat energy_joules;
    RunningStat norm_energy;  // populated when track_npm_baseline
    RunningStat speed_changes;
    RunningStat finish_frac;  // finish / deadline
    /// Engine totals over all frames (zeros unless Config::collect_metrics).
    SimCounters counters;
    SimCounters npm_counters;  // NPM baseline runs (track_npm_baseline)
  };

  /// Throws paserta::Error on invalid config or an infeasible deadline
  /// (canonical worst case exceeds it — the offline phase "fails").
  PowerAwareScheduler(Application app, const Config& config);

  /// Simulates one frame on a freshly drawn scenario (drawn through the
  /// scheduler's precompiled ScenarioSampler — bit-identical to
  /// draw_scenario on the same RNG state, without the per-frame parameter
  /// re-derivation).
  SimResult run_frame(Rng& rng);
  /// Simulates one frame on the given scenario (e.g. replayed or crafted).
  SimResult run_frame(const RunScenario& scenario);

  const Application& app() const { return app_; }
  const OfflineResult& offline() const { return off_; }
  const PowerModel& power_model() const { return pm_; }
  const Overheads& overheads() const { return ovh_; }
  SimTime deadline() const { return off_.deadline(); }
  Scheme scheme() const { return scheme_; }
  const Summary& summary() const { return summary_; }
  void reset_summary() { summary_ = Summary{}; }

 private:
  Application app_;
  PowerModel pm_;
  Overheads ovh_;
  Scheme scheme_;
  ScenarioSampler sampler_;  // compiled once against app_'s fixed graph
  OfflineResult off_;
  std::unique_ptr<SpeedPolicy> policy_;
  std::unique_ptr<SpeedPolicy> npm_;
  bool track_npm_ = false;
  bool record_trace_ = true;
  bool collect_metrics_ = false;
  bool audit_ = false;
  SimWorkspace ws_;  // reused by every frame (and the NPM baseline)
  Summary summary_;
};

}  // namespace paserta
