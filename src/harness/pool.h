// Persistent worker pool for the experiment harness.
//
// The Monte-Carlo driver used to spawn and join a fresh std::thread set for
// every sweep point; once the simulation kernel itself became cheap (PR 1's
// reusable SimWorkspace) that orchestration cost started to dominate short
// points. WorkerPool keeps one set of workers alive for the whole process
// (see process_pool()) and hands them *chunked index ranges* claimed from a
// single atomic counter, so load balances itself across chunks of uneven
// cost and across overlapped sweep points — no strided partitioning, no
// per-point thread churn.
//
// Determinism contract: the pool guarantees only that every chunk index in
// [0, chunk_count) is executed exactly once, by some participant, with a
// stable slot id. Callers that need bit-identical outputs (the experiment
// harness does) must make each chunk's work depend only on its index — the
// harness derives every run's RNG stream from (seed, run index) and
// accumulates results in run order, so which worker ran which chunk, in
// which order, is unobservable in the output.
#pragma once

#include <functional>

namespace paserta {

struct PoolTelemetry;  // obs/metrics.h

/// A persistent pool of worker threads executing chunked parallel loops.
/// One loop runs at a time (concurrent parallel_chunks calls from different
/// threads serialize; nested calls from inside a body degrade to inline
/// serial execution). Thread-safe.
class WorkerPool {
 public:
  /// Starts `threads` background workers (>= 0; the pool also uses the
  /// calling thread of parallel_chunks, so `threads == 0` still works).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Current number of background worker threads.
  int thread_count() const;

  /// Grows the pool to at least `threads` background workers (bounded by
  /// kMaxThreads). Never shrinks.
  void ensure_threads(int threads);

  /// Executes body(chunk, slot) for every chunk in [0, chunk_count)
  /// exactly once. At most `max_workers` participants run concurrently:
  /// the calling thread is always slot 0, background workers claim slots
  /// 1..max_workers-1. A slot is owned by one thread for the whole call,
  /// so callers can keep per-slot scratch state (workspaces, policies)
  /// without locks. Chunks are claimed from one atomic counter, in batches
  /// of `claim_batch` (>= 1) consecutive chunks per claim: a participant
  /// that claims [c, c + claim_batch) runs those chunks back to back, so
  /// callers with very fine chunks can amortize the shared counter without
  /// changing chunk semantics (coverage, slot ownership and determinism
  /// are unaffected; only claim frequency and tail balance change). The
  /// first exception thrown by a body aborts remaining chunks and is
  /// rethrown here. With max_workers <= 1 (or no background threads) the
  /// loop runs inline, in increasing chunk order, touching no
  /// synchronization.
  ///
  /// When `telemetry` is non-null the pool records, per participant slot:
  /// completed chunks, per-chunk wall latency, time inside bodies (busy)
  /// and time spent claiming/waiting (idle; the caller's wait for helpers
  /// to drain counts into slot 0), and ticks the progress reporter once
  /// per chunk. Null telemetry leaves the claim loop untimed — not even a
  /// clock read.
  void parallel_chunks(int chunk_count, int max_workers,
                       const std::function<void(int chunk, int slot)>& body,
                       const PoolTelemetry* telemetry = nullptr,
                       int claim_batch = 1);

  /// Runs the same loop inline on the calling thread (slot 0), with the
  /// same telemetry accounting as parallel_chunks — including idle time
  /// for the claim loop itself (the stretches between bodies), so per-slot
  /// busy/idle fractions are directly comparable between the serial and
  /// pooled modes. This is the shared serial path: parallel_chunks
  /// degrades to it, and callers that decide serial-vs-pooled themselves
  /// (the experiment harness's single-threaded bypass) use it directly so
  /// serial runs report the same metrics without instantiating the
  /// process pool.
  static void serial_chunks(int chunk_count,
                            const std::function<void(int chunk, int slot)>& body,
                            const PoolTelemetry* telemetry = nullptr);

  /// The process-wide pool, created on first use with one background
  /// worker per hardware thread and grown on demand (ensure_threads) when
  /// a caller asks for more participants than it has.
  static WorkerPool& process_pool();

  static constexpr int kMaxThreads = 64;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace paserta
