// Loopback load generator for the serve daemon: the blocking NDJSON/HTTP
// client used by test_serve, plus the benchmark harness behind the
// "serve" section of BENCH_throughput.json (bench_throughput wraps it,
// tools/bench_compare gates it — same split as harness/throughput).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace paserta {

class SimServer;
class SimService;

/// Minimal blocking NDJSON client for 127.0.0.1:<port>. One request line
/// out, one response line back; the connection stays open across
/// request() calls (the daemon's pipelining path). Not thread-safe; give
/// each client thread its own instance.
class ServeClient {
 public:
  explicit ServeClient(std::uint16_t port);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  bool connected() const { return fd_ >= 0; }
  /// Sends `line` (newline appended) and returns the response line
  /// (newline stripped); empty on a dead connection.
  std::string request(const std::string& line);
  /// Blocks for the next response line without sending anything — how a
  /// streaming client (`"stream":true`) drains progress lines until the
  /// final result. Empty on a dead connection.
  std::string read_line();

 private:
  int fd_ = -1;
  std::string carry_;  // bytes past the last newline already received
};

/// One-shot HTTP/1.1 request against 127.0.0.1:<port>; returns the
/// response body (headers stripped), empty on connection failure.
/// `body` non-empty turns it into a POST.
std::string http_request(std::uint16_t port, const std::string& path,
                         const std::string& body = "");

struct ServeThroughputSample {
  int clients = 0;
  std::uint64_t requests = 0;  // completed responses across all clients
  double seconds = 0.0;        // wall time, first send to last response
  double requests_per_sec = 0.0;
  /// offline.cache hit rate across this sample's requests — the
  /// cross-request cache at work (with one resident graph this approaches
  /// 1 after the very first request ever).
  double cache_hit_rate = 0.0;
  /// Requests that shared another request's simulation (serve.coalesced
  /// delta). Grows with concurrent clients: identical in-flight requests
  /// land in one dispatcher batch and collapse into one run.
  std::uint64_t coalesced = 0;
  /// Cumulative serve.request_seconds quantiles at the end of the sample
  /// (milliseconds; cumulative across the ladder, matching what a
  /// scraped /metrics would show).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

struct ServeThroughputReport {
  std::string label;  // e.g. "atr@load=0.5"
  int runs = 0;       // Monte-Carlo runs per request
  std::vector<ServeThroughputSample> samples;
};

/// Drives `server` over loopback with a ladder of concurrent NDJSON
/// clients, each sending `requests_per_client` copies of `request_line`
/// back-to-back, after one untimed warm-up request (faults in code paths
/// and seeds the offline cache, as a resident daemon would be). Counter
/// deltas come from `service`'s registry, so the service must be the one
/// behind `server` and otherwise idle.
ServeThroughputReport measure_serve_throughput(
    SimService& service, SimServer& server, const std::string& request_line,
    const std::vector<int>& client_counts, int requests_per_client,
    const std::string& label, int runs);

/// Renders the report as a JSON object (pretty-printed, newline-terminated).
std::string serve_throughput_to_json(const ServeThroughputReport& report);

}  // namespace paserta
