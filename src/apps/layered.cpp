#include "apps/layered.h"

#include <algorithm>
#include <string>

#include "common/error.h"

namespace paserta::apps {
namespace {

TaskSpec random_task(Rng& rng, const LayeredConfig& cfg, int layer, int idx) {
  const auto span = static_cast<double>((cfg.wcet_max - cfg.wcet_min).ps);
  const SimTime wcet =
      cfg.wcet_min +
      SimTime{static_cast<std::int64_t>(rng.next_double() * span)};
  const double alpha =
      cfg.alpha_min + rng.next_double() * (cfg.alpha_max - cfg.alpha_min);
  SimTime acet{
      static_cast<std::int64_t>(alpha * static_cast<double>(wcet.ps) + 0.5)};
  acet = std::clamp(acet, SimTime{1}, wcet);
  return TaskSpec{
      "L" + std::to_string(layer) + "_" + std::to_string(idx), wcet, acet};
}

void validate(const LayeredConfig& cfg) {
  PASERTA_REQUIRE(cfg.layers >= 1, "need at least one layer");
  PASERTA_REQUIRE(cfg.min_width >= 1 && cfg.min_width <= cfg.max_width,
                  "invalid layer width range");
  PASERTA_REQUIRE(cfg.fan_prob >= 0.0 && cfg.fan_prob <= 1.0,
                  "fan_prob must be in [0,1]");
  PASERTA_REQUIRE(cfg.wcet_min > SimTime::zero() &&
                      cfg.wcet_min <= cfg.wcet_max,
                  "invalid WCET range");
  PASERTA_REQUIRE(cfg.alpha_min > 0.0 && cfg.alpha_min <= cfg.alpha_max &&
                      cfg.alpha_max <= 1.0,
                  "invalid alpha range");
}

}  // namespace

SectionSpec layered_section(Rng& rng, const LayeredConfig& cfg) {
  validate(cfg);
  SectionSpec sec;
  std::vector<std::vector<std::size_t>> layer_members(
      static_cast<std::size_t>(cfg.layers));

  for (int layer = 0; layer < cfg.layers; ++layer) {
    const int width =
        cfg.min_width +
        static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(cfg.max_width - cfg.min_width + 1)));
    for (int i = 0; i < width; ++i) {
      layer_members[static_cast<std::size_t>(layer)].push_back(
          sec.tasks.size());
      sec.tasks.push_back(random_task(rng, cfg, layer, i));
    }
  }

  for (int layer = 1; layer < cfg.layers; ++layer) {
    const auto& prev = layer_members[static_cast<std::size_t>(layer - 1)];
    for (std::size_t to : layer_members[static_cast<std::size_t>(layer)]) {
      bool connected = false;
      for (std::size_t from : prev) {
        if (rng.next_double() < cfg.fan_prob) {
          sec.edges.push_back({from, to});
          connected = true;
        }
      }
      if (!connected) {
        // Guaranteed predecessor: a uniformly chosen previous-layer node.
        const std::size_t from =
            prev[rng.next_below(static_cast<std::uint64_t>(prev.size()))];
        sec.edges.push_back({from, to});
      }
    }
  }
  return sec;
}

Program layered_program(Rng& rng, const LayeredConfig& cfg, int stages,
                        double shortcut_prob) {
  PASERTA_REQUIRE(stages >= 1, "need at least one stage");
  PASERTA_REQUIRE(shortcut_prob >= 0.0 && shortcut_prob < 1.0,
                  "shortcut probability must be in [0,1)");
  Program p;
  p.section(layered_section(rng, cfg));
  for (int stage = 1; stage < stages; ++stage) {
    if (shortcut_prob > 0.0) {
      Program full;
      full.section(layered_section(rng, cfg));
      Program shortcut;
      shortcut.task("shortcut" + std::to_string(stage),
                    cfg.wcet_min, std::max(SimTime{1}, cfg.wcet_min));
      p.branch("stage" + std::to_string(stage),
               {{1.0 - shortcut_prob, std::move(full)},
                {shortcut_prob, std::move(shortcut)}});
    } else {
      p.section(layered_section(rng, cfg));
    }
  }
  return p;
}

Application layered_application(Rng& rng, const LayeredConfig& cfg,
                                int stages, double shortcut_prob,
                                const std::string& name) {
  return build_application(name,
                           layered_program(rng, cfg, stages, shortcut_prob));
}

}  // namespace paserta::apps
