// Hierarchical application builder for AND/OR graphs.
//
// The paper's applications are sequences of *program sections* separated by
// OR synchronization nodes (§2.1, §3.2): within a section there is AND/task
// parallelism; OR forks choose one of several alternative sub-programs with
// known probabilities; loops with a known maximum iteration count and an
// iteration-count distribution are expanded into nested OR structures
// (or collapsed into a single task), exactly as §2.1 describes.
//
// `Program` is that grammar as a value type. `build_application` flattens a
// Program into (a) the flat AndOrGraph executed by the simulator and (b) an
// `AppStructure` — the same hierarchy expressed over flat node ids — which
// the offline analysis (canonical schedules, latest start times, execution
// orders, speculation profiles) consumes. Graphs produced this way satisfy
// the paper's structural constraints by construction (and are re-checked by
// AndOrGraph::validate()).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "graph/graph.h"

namespace paserta {

/// Specification of one computation task (times at f_max).
struct TaskSpec {
  std::string name;
  SimTime wcet;
  SimTime acet;
};

class Program;

/// A DAG of tasks with no OR structure; the unit the offline phase
/// list-schedules canonically. `edges` are (from,to) indices into `tasks`.
struct SectionSpec {
  std::vector<TaskSpec> tasks;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
};

/// One alternative of an OR fork. An empty program models a skipped path
/// (it flattens to a single zero-time dummy).
struct AlternativeSpec {
  double probability;
  Program* program;  // owned via Program's storage; see Program::branch
};

/// How to translate a loop into the flat model (paper §2.1 offers both).
enum class LoopMode {
  /// Expand into `max_iterations` body copies chained through OR exits whose
  /// probabilities are the conditionals of the iteration-count distribution.
  Unroll,
  /// Replace the loop by a single task with WCET = max iterations x body
  /// serial WCET and ACET = E[iterations] x body serial ACET.
  Collapse,
};

/// A sequence of segments (sections, branches, loops). Value semantics.
class Program {
 public:
  Program();
  Program(const Program&);
  Program(Program&&) noexcept;
  Program& operator=(const Program&);
  Program& operator=(Program&&) noexcept;
  ~Program();

  /// Appends a section; returns *this for chaining.
  Program& section(SectionSpec s);

  /// Appends a single-task section.
  Program& task(std::string name, SimTime wcet, SimTime acet);

  /// Appends a section of independent parallel tasks.
  Program& parallel(std::vector<TaskSpec> tasks);

  /// Appends a section of serially-dependent tasks (a chain).
  Program& chain(std::vector<TaskSpec> tasks);

  /// Appends an OR branch. Probabilities must sum to 1; at least one
  /// alternative. Alternatives may be empty programs (skipped paths).
  Program& branch(std::string name,
                  std::vector<std::pair<double, Program>> alternatives);

  /// Appends a loop of `body`, where `iteration_prob[k]` is the probability
  /// of executing exactly k+1 iterations (so max iterations =
  /// iteration_prob.size()); probabilities must sum to 1.
  Program& loop(std::string name, Program body,
                std::vector<double> iteration_prob,
                LoopMode mode = LoopMode::Unroll);

  bool empty() const;
  std::size_t segment_count() const;

  struct Impl;
  const Impl& impl() const { return *impl_; }
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Hierarchical structure of a *flattened* application, over flat node ids.
/// Loops are already expanded, so only sections and branches remain.
struct StructSegment;

struct StructProgram {
  std::vector<StructSegment> segments;
};

struct StructSegment {
  enum class Kind { Section, Branch } kind = Kind::Section;

  /// Kind::Section — every node canonically scheduled as this section, in
  /// insertion order (tasks plus any glue AND dummies).
  std::vector<NodeId> members;

  /// Kind::Branch — the OR fork/join pair and the alternatives between them.
  NodeId fork;
  NodeId join;
  std::vector<double> alt_prob;
  std::vector<StructProgram> alternatives;
};

/// A flattened, validated application: the flat graph plus its hierarchy.
struct Application {
  std::string name;
  AndOrGraph graph;
  StructProgram structure;

  /// Number of OR forks in the flat graph (speculation points).
  std::size_t or_fork_count() const;
};

/// Flattens `program` into an Application. Throws paserta::Error on invalid
/// input (empty program, bad probabilities, ...). The result's graph always
/// passes AndOrGraph::validate().
Application build_application(std::string name, const Program& program);

}  // namespace paserta
