#include "harness/throughput.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "core/offline.h"
#include "harness/json.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace paserta {
namespace {

// Shared emit helpers from harness/json — one escaping/number policy for
// every JSON artifact in the tree.
inline std::string escape(const std::string& s) { return json_escape(s); }
inline std::string num(double v) { return json_num(v); }

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// One extra untimed pass under a bench-level profiler phase, filling the
/// section's cycles_per_run / ipc columns (see HwColumns in the header).
/// Leaves the NaN defaults untouched when perf_event_open is denied.
template <typename Fn>
void profile_section(double runs, HwColumns& hw, Fn&& body) {
  Profiler prof;
  if (!prof.hardware() || runs <= 0.0) return;
  {
    ProfScope scope(&prof, prof.phase("bench", /*top_level=*/true), 0);
    body();
  }
  const std::vector<ProfPhaseTotals> snap = prof.snapshot();
  if (snap.empty() || snap.front().cycles == 0) return;
  hw.cycles_per_run = static_cast<double>(snap.front().cycles) / runs;
  hw.ipc = static_cast<double>(snap.front().instructions) /
           static_cast<double>(snap.front().cycles);
}

/// The pre-pool sweep shape: one shared worst-case makespan, then one
/// run_point_unpooled per load — fresh thread spawn/join and a fresh
/// offline analysis for every point.
void legacy_sweep_load(const Application& app, const ExperimentConfig& cfg,
                       const std::vector<double>& loads) {
  const SimTime w = canonical_worst_makespan(
      app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
      cfg.heuristic);
  for (double load : loads) {
    const SimTime deadline{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / load))};
    (void)run_point_unpooled(app, cfg, deadline, load);
  }
}

}  // namespace

ThroughputReport measure_throughput(const Application& app,
                                    ExperimentConfig cfg, SimTime deadline,
                                    const std::vector<int>& thread_counts,
                                    const std::string& label, int reps) {
  PASERTA_REQUIRE(!thread_counts.empty(), "need at least one thread count");
  PASERTA_REQUIRE(reps >= 1, "need at least one repetition");
  ThroughputReport report;
  report.label = label;
  report.runs = cfg.runs;
  report.schemes = static_cast<int>(cfg.schemes.size());

  // Untimed warm-up: fault in code paths, allocator state and the worker
  // pool so the first timed sample is not penalized relative to later ones.
  cfg.threads = thread_counts.front();
  (void)run_point(app, cfg, deadline, 0.0);

  for (int threads : thread_counts) {
    cfg.threads = threads;
    // Best of `reps`: contention noise only ever adds time, so the
    // fastest repetition is the cleanest measurement.
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      const auto t0 = clock_type::now();
      (void)run_point(app, cfg, deadline, 0.0);
      best = std::min(best, seconds_since(t0));
    }
    ThroughputSample s;
    s.threads = threads;
    s.seconds = best;
    s.runs_per_sec =
        s.seconds > 0.0 ? static_cast<double>(cfg.runs) / s.seconds : 0.0;
    report.samples.push_back(s);
  }

  // Hardware columns at threads = 1: the measuring thread is the worker.
  cfg.threads = 1;
  profile_section(static_cast<double>(cfg.runs), report.hw,
                  [&] { (void)run_point(app, cfg, deadline, 0.0); });
  return report;
}

std::string throughput_to_json(const ThroughputReport& report) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object()
      .key("benchmark").value("throughput")
      .key("label").value(report.label)
      .key("runs").value(report.runs)
      .key("schemes").value(report.schemes)
      .key("cycles_per_run").value(report.hw.cycles_per_run)
      .key("ipc").value(report.hw.ipc)
      .key("samples").begin_array();
  for (const ThroughputSample& s : report.samples) {
    std::ostringstream item;
    JsonWriter iw(item);  // compact: one sample object per line
    iw.begin_object()
        .key("threads").value(s.threads)
        .key("seconds").value(s.seconds)
        .key("runs_per_sec").value(s.runs_per_sec)
        .end_object();
    w.raw(item.str());
  }
  w.end_array().end_object();
  os << "\n";
  return os.str();
}

BatchThroughputReport measure_batch_throughput(const Application& app,
                                               ExperimentConfig cfg,
                                               SimTime deadline,
                                               const std::vector<int>& batches,
                                               const std::string& label,
                                               int reps) {
  PASERTA_REQUIRE(!batches.empty(), "need at least one batch size");
  PASERTA_REQUIRE(reps >= 1, "need at least one repetition");
  BatchThroughputReport report;
  report.label = label;
  report.runs = cfg.runs;
  report.schemes = static_cast<int>(cfg.schemes.size());
  cfg.threads = 1;
  report.threads = cfg.threads;

  cfg.batch = batches.front();
  (void)run_point(app, cfg, deadline, 0.0);  // untimed warm-up

  for (int batch : batches) {
    cfg.batch = batch;
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      const auto t0 = clock_type::now();
      (void)run_point(app, cfg, deadline, 0.0);
      best = std::min(best, seconds_since(t0));
    }
    BatchThroughputSample s;
    s.batch = batch;
    s.lanes = resolved_batch_lanes(cfg);
    s.seconds = best;
    s.runs_per_sec =
        s.seconds > 0.0 ? static_cast<double>(cfg.runs) / s.seconds : 0.0;
    report.samples.push_back(s);
  }

  cfg.batch = batches.front();
  profile_section(static_cast<double>(cfg.runs), report.hw,
                  [&] { (void)run_point(app, cfg, deadline, 0.0); });
  return report;
}

std::string batch_throughput_to_json(const BatchThroughputReport& report) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object()
      .key("benchmark").value("batch_throughput")
      .key("label").value(report.label)
      .key("runs").value(report.runs)
      .key("schemes").value(report.schemes)
      .key("threads").value(report.threads)
      .key("cycles_per_run").value(report.hw.cycles_per_run)
      .key("ipc").value(report.hw.ipc)
      .key("samples").begin_array();
  for (const BatchThroughputSample& s : report.samples) {
    std::ostringstream item;
    JsonWriter iw(item);
    iw.begin_object()
        .key("batch").value(s.batch)
        .key("lanes").value(s.lanes)
        .key("seconds").value(s.seconds)
        .key("runs_per_sec").value(s.runs_per_sec)
        .end_object();
    w.raw(item.str());
  }
  w.end_array().end_object();
  os << "\n";
  return os.str();
}

DedupThroughputReport measure_dedup_throughput(
    const Application& app, ExperimentConfig cfg, SimTime deadline,
    const std::vector<int>& run_counts, const std::string& label, int reps) {
  PASERTA_REQUIRE(!run_counts.empty(), "need at least one run count");
  PASERTA_REQUIRE(reps >= 1, "need at least one repetition");
  DedupThroughputReport report;
  report.label = label;
  report.schemes = static_cast<int>(cfg.schemes.size());
  cfg.threads = 1;
  report.threads = cfg.threads;

  // Untimed warm-up on both paths at the smallest run count.
  cfg.runs = run_counts.front();
  cfg.dedup = DedupMode::kOff;
  (void)run_point(app, cfg, deadline, 0.0);
  cfg.dedup = DedupMode::kOn;
  (void)run_point(app, cfg, deadline, 0.0);

  for (int runs : run_counts) {
    cfg.runs = runs;
    DedupThroughputSample s;
    s.runs = runs;

    cfg.dedup = DedupMode::kOff;
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      const auto t0 = clock_type::now();
      (void)run_point(app, cfg, deadline, 0.0);
      best = std::min(best, seconds_since(t0));
    }
    s.off_seconds = best;
    s.off_runs_per_sec =
        best > 0.0 ? static_cast<double>(runs) / best : 0.0;

    cfg.dedup = DedupMode::kOn;
    best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      const auto t0 = clock_type::now();
      const SweepPoint pt = run_point(app, cfg, deadline, 0.0);
      const double secs = seconds_since(t0);
      if (secs < best) {
        best = secs;
        s.distinct = pt.dedup.misses;
        const std::uint64_t total = pt.dedup.hits + pt.dedup.misses;
        s.hit_rate = total > 0 ? static_cast<double>(pt.dedup.hits) /
                                     static_cast<double>(total)
                               : 0.0;
      }
    }
    s.on_seconds = best;
    s.on_runs_per_sec = best > 0.0 ? static_cast<double>(runs) / best : 0.0;
    s.speedup = best > 0.0 ? s.off_seconds / best : 0.0;
    report.samples.push_back(s);
  }

  cfg.runs = run_counts.front();
  cfg.dedup = DedupMode::kOff;  // pure simulation cost, like the point section
  profile_section(static_cast<double>(cfg.runs), report.hw,
                  [&] { (void)run_point(app, cfg, deadline, 0.0); });
  return report;
}

std::string dedup_throughput_to_json(const DedupThroughputReport& report) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object()
      .key("benchmark").value("dedup_throughput")
      .key("label").value(report.label)
      .key("schemes").value(report.schemes)
      .key("threads").value(report.threads)
      .key("cycles_per_run").value(report.hw.cycles_per_run)
      .key("ipc").value(report.hw.ipc)
      .key("samples").begin_array();
  for (const DedupThroughputSample& s : report.samples) {
    std::ostringstream item;
    JsonWriter iw(item);
    iw.begin_object()
        .key("runs").value(s.runs)
        .key("off_seconds").value(s.off_seconds)
        .key("off_runs_per_sec").value(s.off_runs_per_sec)
        .key("on_seconds").value(s.on_seconds)
        .key("on_runs_per_sec").value(s.on_runs_per_sec)
        .key("speedup").value(s.speedup)
        .key("hit_rate").value(s.hit_rate)
        .key("distinct").value(s.distinct)
        .end_object();
    w.raw(item.str());
  }
  w.end_array().end_object();
  os << "\n";
  return os.str();
}

SweepThroughputReport measure_sweep_throughput(
    const Application& app, ExperimentConfig cfg,
    const std::vector<double>& loads, const std::vector<int>& thread_counts,
    const std::string& label, int reps) {
  PASERTA_REQUIRE(!thread_counts.empty(), "need at least one thread count");
  PASERTA_REQUIRE(!loads.empty(), "need at least one sweep point");
  PASERTA_REQUIRE(reps >= 1, "need at least one repetition");
  SweepThroughputReport report;
  report.label = label;
  report.points = static_cast<int>(loads.size());
  report.runs = cfg.runs;
  report.schemes = static_cast<int>(cfg.schemes.size());
  report.host_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  cfg.parallel_points = true;

  // Untimed warm-up of the pooled path (faults in the pool's threads too).
  cfg.threads = thread_counts.front();
  (void)sweep_load(app, cfg, loads);

  for (int threads : thread_counts) {
    cfg.threads = threads;
    SweepThroughputSample s;
    s.threads = threads;

    // Best of `reps` per path, as in measure_throughput.
    s.pooled_seconds = std::numeric_limits<double>::infinity();
    s.legacy_seconds = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      auto t0 = clock_type::now();
      (void)sweep_load(app, cfg, loads);
      s.pooled_seconds = std::min(s.pooled_seconds, seconds_since(t0));

      t0 = clock_type::now();
      legacy_sweep_load(app, cfg, loads);
      s.legacy_seconds = std::min(s.legacy_seconds, seconds_since(t0));
    }

    const auto pts = static_cast<double>(loads.size());
    s.pooled_points_per_sec =
        s.pooled_seconds > 0.0 ? pts / s.pooled_seconds : 0.0;
    s.legacy_points_per_sec =
        s.legacy_seconds > 0.0 ? pts / s.legacy_seconds : 0.0;
    s.speedup =
        s.pooled_seconds > 0.0 ? s.legacy_seconds / s.pooled_seconds : 0.0;
    report.samples.push_back(s);
  }

  // Scaling efficiency relative to the first (typically 1-thread) sample.
  const SweepThroughputSample& base = report.samples.front();
  for (SweepThroughputSample& s : report.samples) {
    if (base.pooled_points_per_sec > 0.0 && s.threads > 0) {
      s.efficiency = (s.pooled_points_per_sec / base.pooled_points_per_sec) *
                     static_cast<double>(base.threads) /
                     static_cast<double>(s.threads);
    }
  }

  cfg.threads = 1;
  profile_section(
      static_cast<double>(loads.size()) * static_cast<double>(cfg.runs),
      report.hw, [&] { (void)sweep_load(app, cfg, loads); });
  return report;
}

std::string sweep_throughput_to_json(const SweepThroughputReport& report) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object()
      .key("benchmark").value("sweep_throughput")
      .key("label").value(report.label)
      .key("points").value(report.points)
      .key("runs").value(report.runs)
      .key("schemes").value(report.schemes)
      .key("host_threads").value(report.host_threads)
      .key("cycles_per_run").value(report.hw.cycles_per_run)
      .key("ipc").value(report.hw.ipc)
      .key("samples").begin_array();
  for (const SweepThroughputSample& s : report.samples) {
    std::ostringstream item;
    JsonWriter iw(item);
    iw.begin_object()
        .key("threads").value(s.threads)
        .key("pooled_seconds").value(s.pooled_seconds)
        .key("pooled_points_per_sec").value(s.pooled_points_per_sec)
        .key("legacy_seconds").value(s.legacy_seconds)
        .key("legacy_points_per_sec").value(s.legacy_points_per_sec)
        .key("speedup").value(s.speedup)
        .key("efficiency").value(s.efficiency)
        .end_object();
    w.raw(item.str());
  }
  w.end_array().end_object();
  os << "\n";
  return os.str();
}

std::string measure_pool_balance_json(const Application& app,
                                      ExperimentConfig cfg,
                                      const std::vector<double>& loads) {
  PASERTA_REQUIRE(!loads.empty(), "need at least one sweep point");
  MetricsRegistry reg;  // scoped: the measurement cannot bleed elsewhere
  cfg.collect_metrics = true;
  cfg.registry = &reg;
  cfg.parallel_points = true;
  (void)sweep_load(app, cfg, loads);
  const MetricsSnapshot snap = reg.snapshot();

  const auto counter_row =
      [&](const std::string& name) -> const MetricsSnapshot::CounterRow* {
    for (const auto& row : snap.counters)
      if (row.name == name) return &row;
    return nullptr;
  };
  const auto shard_list = [&](std::ostream& os, const std::string& name) {
    os << "[";
    if (const auto* row = counter_row(name)) {
      for (std::size_t i = 0; i < row->shards.size(); ++i)
        os << (i ? ", " : "") << row->shards[i];
    }
    os << "]";
  };

  std::ostringstream os;
  os << "{\n"
     << "    \"threads\": " << cfg.threads << ",\n"
     << "    \"chunks_per_slot\": ";
  shard_list(os, "pool.chunks_completed");
  os << ",\n    \"busy_ns_per_slot\": ";
  shard_list(os, "pool.busy_ns");
  os << ",\n    \"idle_ns_per_slot\": ";
  shard_list(os, "pool.idle_ns");
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = std::numeric_limits<double>::quiet_NaN();
  double p95 = p50;
  for (const auto& h : snap.histograms) {
    if (h.name == "pool.chunk_seconds") {
      count = h.count;
      sum = h.sum;
      // Latency percentiles: re-resolve the live histogram under the
      // snapshot's own (registered) bounds — registration is idempotent
      // for identical bounds — and interpolate within the matched bucket.
      // Estimates at bucket resolution, good enough to spot a
      // straggler-dominated chunk distribution in the history.
      const Histogram& lat = reg.histogram(h.name, h.bounds);
      p50 = lat.percentile(0.5);
      p95 = lat.percentile(0.95);
    }
  }
  os << ",\n    \"chunk_seconds\": {\"count\": " << count
     << ", \"sum\": " << num(sum) << ", \"p50\": " << num(p50)
     << ", \"p95\": " << num(p95) << "}\n  }";
  return os.str();
}

std::string throughput_history_entry(const std::string& git_rev, bool dirty,
                                     const std::string& date,
                                     const std::string& doc) {
  const std::size_t open = doc.find('{');
  const std::size_t close = doc.rfind('}');
  PASERTA_REQUIRE(open != std::string::npos && close != std::string::npos &&
                      open < close,
                  "history entry needs a JSON object document");
  std::string inner = doc.substr(open + 1, close - open - 1);
  // Trim leading whitespace so the spliced field list stays tidy.
  const std::size_t first = inner.find_first_not_of(" \t\n\r");
  inner = first == std::string::npos ? std::string{} : inner.substr(first);
  std::string entry = "{\n\"git_rev\": \"" + escape(git_rev) +
                      "\",\n\"dirty\": " + (dirty ? "true" : "false") +
                      ",\n\"date\": \"" + escape(date) + "\",\n";
  if (inner.empty() || inner[0] == '}') {
    // Empty document: drop the trailing comma separator.
    entry.erase(entry.size() - 2, 1);
    entry += "}\n";
    return entry;
  }
  entry += inner;
  if (entry.back() != '\n') entry.push_back('\n');
  entry += "}\n";
  return entry;
}

std::string throughput_history_append(const std::string& existing,
                                      const std::string& entry) {
  const std::size_t last = existing.find_last_not_of(" \t\n\r");
  if (last == std::string::npos) return "[\n" + entry + "]\n";
  if (existing[last] == ']') {
    // Already a history array: splice before the closing bracket, with a
    // comma unless the array is empty.
    const std::string head = existing.substr(0, last);
    const std::size_t tail = head.find_last_not_of(" \t\n\r");
    const bool empty_array = tail != std::string::npos && head[tail] == '[';
    std::string out = head;
    if (const std::size_t t2 = out.find_last_not_of(" \t\n\r");
        t2 != std::string::npos)
      out.erase(t2 + 1);
    out += empty_array ? "\n" : ",\n";
    out += entry;
    out += "]\n";
    return out;
  }
  // Legacy single-object baseline: keep it as the first history entry.
  return "[\n" + existing.substr(0, last + 1) + ",\n" + entry + "]\n";
}

}  // namespace paserta
