// The resident simulation service (DESIGN.md §16): protocol-independent
// core behind the socket server.
//
// Connection handlers (or tests, directly) submit() request lines and get
// a future for the full response line. A single dispatcher thread drains
// the bounded queue in batches, groups jobs whose semantic key is
// identical — same interned graph, platform, heuristic, schemes, runs,
// seed and deadline — runs each distinct group once through the existing
// harness (run_point on the WorkerPool / batched engine), and fulfills
// every job of a group from the one shared result. Grouping is pure
// coalescing: results are bit-identical whether a request ran alone or
// shared a simulation, because the key pins every output-relevant input.
//
// Cross-request caching happens at two levels, both confined to the
// dispatcher thread (OfflineCache and GraphStore are single-threaded by
// contract): the GraphStore interns Applications by content so repeated
// workloads resolve to one object, and the OfflineCache then memoizes
// the canonical offline analysis across requests keyed by that object's
// address. serve.* and offline.cache.* registry counters make both
// observable.
//
// Threading / metrics discipline: submit-side counters (serve.requests,
// serve.rejected, ...) are only written under the queue mutex; dispatch-
// side counters and the latency histogram are only written by the
// dispatcher thread. Either way each (metric, shard-0) cell has
// serialized writers, keeping the registry's single-writer-per-shard
// contract TSan-clean.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/offline.h"
#include "harness/experiment.h"
#include "serve/graph_store.h"
#include "serve/protocol.h"

namespace paserta {

class Tracer;

struct ServeSettings {
  /// Worker threads per dispatched simulation (ExperimentConfig::threads).
  int threads = 1;
  /// Batched-engine lanes (ExperimentConfig::batch; 0 = auto).
  int batch = 0;
  DedupMode dedup = DedupMode::kAuto;
  /// Pending requests beyond which submit() rejects with "overloaded"
  /// (the 429-style backpressure bound).
  int queue_limit = 256;
  ServeLimits limits;
  /// Metrics sink; null = a service-owned scoped registry.
  MetricsRegistry* registry = nullptr;
  /// Optional span tracer: per-request "serve.request" spans (span id =
  /// the request sequence number, in the run arg) plus batch/group spans,
  /// all on slot 0 (the dispatcher's track).
  Tracer* tracer = nullptr;
};

class SimService {
 public:
  explicit SimService(ServeSettings settings);
  ~SimService();  // shutdown()

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Thread-safe. Parses one request line and returns a future yielding
  /// the full response line. Parse errors, hello, overload and
  /// shutting-down responses resolve immediately; simulate requests
  /// resolve when the dispatcher has run them. Inline graph-text errors
  /// surface asynchronously (the graph is built on the dispatcher).
  std::shared_future<std::string> submit(const std::string& line);

  /// Drains every pending request (even while paused), stops the
  /// dispatcher and rejects later submits with "shutting_down".
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Test hooks: while paused the dispatcher leaves the queue alone, so
  /// tests can pile up concurrent requests and observe deterministic
  /// coalescing/backpressure; resume (or shutdown) releases the backlog.
  void pause_dispatch();
  void resume_dispatch();

  MetricsRegistry& registry();
  /// Prometheus exposition of the registry, preceded by a
  /// "# paserta <rev> (<build>)" provenance comment — the /metrics body.
  std::string metrics_text();

  /// Pending (not yet dispatched) requests; test/observability hook.
  std::size_t queue_depth();

  const ServeLimits& limits() const { return settings_.limits; }

  /// Quantile of the cumulative serve.request_seconds histogram (seconds;
  /// NaN while empty). Read-side; call while the dispatcher is quiet for
  /// an exact answer.
  double latency_quantile(double q) const { return latency_->percentile(q); }

 private:
  struct Job {
    SimRequest req;
    std::promise<std::string> promise;
    std::uint64_t seq = 0;                          // request span id
    std::chrono::steady_clock::time_point t0{};     // latency epoch
    std::int64_t ts_ns = 0;                         // tracer epoch
  };

  void dispatcher_main();
  void process_batch(std::vector<std::unique_ptr<Job>>& batch);
  void finish_job(Job& job, const std::string& response);

  ServeSettings settings_;
  std::unique_ptr<MetricsRegistry> owned_registry_;
  MetricsRegistry* registry_ = nullptr;
  Histogram* latency_ = nullptr;

  std::mutex m_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Job>> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  std::uint64_t next_seq_ = 0;

  // Dispatcher-confined state (no locking: single thread).
  GraphStore store_;
  OfflineCache cache_;
  std::uint64_t last_interned_ = 0;  // store_.misses() already exported

  std::thread dispatcher_;
};

}  // namespace paserta
