// Online multiprocessor scheduling engine (paper §3.2, Figure 2).
//
// Identical processors share a global ready queue kept in canonical
// execution order (EO). Each idle processor tries to dequeue the head;
// a computation node may be taken only when its EO equals the next
// expected order NEO (OR nodes may jump ahead — their EO skips untaken
// alternatives, and NEO is reset to EO+1 after they fire). Processors that
// find the head non-dispatchable sleep and are signalled when new work at
// the head becomes dispatchable.
//
// Dummy AND/OR nodes execute in zero time on the dispatching processor.
// For computation nodes the engine charges the speed-computation overhead
// (cycles at the current frequency), asks the SpeedPolicy for a level
// (greedy slack reclamation against the task's estimated end time
// EET = LST + inflated WCET, optionally raised to a speculative floor),
// charges a voltage-transition overhead when the level changes, and runs
// the task for actual_time * f_max / f.
//
// Energy is integrated over [0, deadline]: busy + overhead + transition
// energy plus idle/sleep energy at the model's idle power.
#pragma once

#include <cstdint>
#include <vector>

#include "core/offline.h"
#include "core/policy.h"
#include "graph/program.h"
#include "power/power_model.h"
#include "sim/scenario.h"

namespace paserta {

/// Trace record of one dispatched node.
struct TaskRecord {
  NodeId node;
  int cpu = -1;
  std::uint32_t eo = 0;
  SimTime dispatch_time{};  // when dequeued (Figure 2 step 4)
  SimTime exec_start{};     // after overheads
  SimTime finish{};
  std::size_t level = 0;        // level index the task ran at
  std::size_t level_before = 0; // processor's level at dispatch time
  bool switched = false;        // a voltage transition was charged
  int chosen_alt = -1;      // OR forks: selected alternative
};

/// Result of one simulated run of one scheme.
struct SimResult {
  Energy busy_energy = 0.0;        // task execution
  Energy overhead_energy = 0.0;    // speed computation + transitions
  Energy idle_energy = 0.0;        // idle/sleep until the deadline
  SimTime finish_time{};
  std::uint32_t speed_changes = 0;
  std::uint32_t dispatched = 0;
  bool deadline_met = false;
  std::vector<TaskRecord> trace;

  Energy total_energy() const {
    return busy_energy + overhead_energy + idle_energy;
  }
};

/// Simulates one run. `off` must come from analyze_offline on the same
/// application with the same CPU count; `off.feasible()` should hold for
/// the deadline guarantee to apply (the engine still runs otherwise and
/// reports deadline_met = false when it misses).
SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   SpeedPolicy& policy, const RunScenario& scenario);

/// Convenience: build the policy for `scheme`, reset it, and simulate.
SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   Scheme scheme, const RunScenario& scenario);

/// The set of nodes that execute under the given fork choices (taken-path
/// closure from the sources). Exposed for the verifier and tests.
std::vector<bool> executed_set(const AndOrGraph& g, const RunScenario& sc);

}  // namespace paserta
