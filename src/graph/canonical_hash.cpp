#include "graph/canonical_hash.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>

#include "graph/graph.h"

namespace paserta {
namespace {

/// splitmix64 finalizer — the same mixing family sim/fingerprint uses.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Branch probability of edge k out of `n`: OR forks carry one per
/// successor; every other edge is certain. bit_cast keeps the exact
/// double bits in the signature, so any probability change re-keys.
std::uint64_t prob_bits(const Node& n, std::size_t k) {
  const double p =
      n.succ_prob.size() == n.succs.size() ? n.succ_prob[k] : 1.0;
  return std::bit_cast<std::uint64_t>(p);
}

}  // namespace

std::uint64_t hash_combine_u64(std::uint64_t h, std::uint64_t word) {
  return mix64(h ^ word);
}

std::vector<std::uint64_t> graph_canonical_form(const AndOrGraph& g) {
  const std::span<const Node> nodes = g.nodes();
  const std::size_t n = nodes.size();

  // --- color refinement ------------------------------------------------
  std::vector<std::uint64_t> sig(n), next(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t h = mix64(static_cast<std::uint64_t>(nodes[i].kind) + 1);
    h = hash_combine_u64(h, static_cast<std::uint64_t>(nodes[i].wcet.ps));
    h = hash_combine_u64(h, static_cast<std::uint64_t>(nodes[i].acet.ps));
    sig[i] = h;
  }
  // Signatures stabilize once every node has absorbed its whole
  // reachable neighborhood; the DAG depth bounds that, and n bounds the
  // depth. Capped for pathological chains — beyond the cap, far-apart
  // differences stop propagating, which only risks extra hash ties that
  // the canonical-form compare resolves.
  const std::size_t rounds = std::min<std::size_t>(n, 64);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out_edges;
  std::vector<std::uint64_t> in_sigs;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const Node& node = nodes[i];
      std::uint64_t h = hash_combine_u64(sig[i], 0xA11CE5ull);
      out_edges.clear();
      for (std::size_t k = 0; k < node.succs.size(); ++k)
        out_edges.emplace_back(sig[node.succs[k].value], prob_bits(node, k));
      std::sort(out_edges.begin(), out_edges.end());
      for (const auto& [s, p] : out_edges)
        h = hash_combine_u64(hash_combine_u64(h, s), p);
      in_sigs.clear();
      for (const NodeId p : node.preds) in_sigs.push_back(sig[p.value]);
      std::sort(in_sigs.begin(), in_sigs.end());
      for (const std::uint64_t s : in_sigs) h = hash_combine_u64(h, s);
      next[i] = h;
    }
    if (next == sig) break;  // already stable
    sig.swap(next);
  }

  // --- canonical node order -------------------------------------------
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return sig[a] < sig[b];
                   });
  std::vector<std::uint32_t> rank(n);
  for (std::uint32_t pos = 0; pos < n; ++pos) rank[order[pos]] = pos;

  // --- serialization ---------------------------------------------------
  std::vector<std::uint64_t> form;
  form.reserve(1 + n * 5);
  form.push_back(static_cast<std::uint64_t>(n));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> succ_rows;
  for (const std::uint32_t i : order) {
    const Node& node = nodes[i];
    form.push_back(static_cast<std::uint64_t>(node.kind));
    form.push_back(static_cast<std::uint64_t>(node.wcet.ps));
    form.push_back(static_cast<std::uint64_t>(node.acet.ps));
    form.push_back(static_cast<std::uint64_t>(node.succs.size()));
    succ_rows.clear();
    for (std::size_t k = 0; k < node.succs.size(); ++k)
      succ_rows.emplace_back(rank[node.succs[k].value], prob_bits(node, k));
    std::sort(succ_rows.begin(), succ_rows.end());
    for (const auto& [to, p] : succ_rows) {
      form.push_back(to);
      form.push_back(p);
    }
  }
  return form;
}

std::vector<std::uint64_t> graph_ordered_form(const AndOrGraph& g) {
  const std::span<const Node> nodes = g.nodes();
  std::vector<std::uint64_t> form;
  form.reserve(1 + nodes.size() * 5);
  form.push_back(static_cast<std::uint64_t>(nodes.size()));
  for (const Node& node : nodes) {
    form.push_back(static_cast<std::uint64_t>(node.kind));
    form.push_back(static_cast<std::uint64_t>(node.wcet.ps));
    form.push_back(static_cast<std::uint64_t>(node.acet.ps));
    form.push_back(static_cast<std::uint64_t>(node.succs.size()));
    // Successor order is preserved: OR forks index alternatives by
    // position, and the engine's traversal order follows the lists.
    for (std::size_t k = 0; k < node.succs.size(); ++k) {
      form.push_back(node.succs[k].value);
      form.push_back(prob_bits(node, k));
    }
  }
  return form;
}

std::uint64_t graph_content_hash(const AndOrGraph& g) {
  const std::vector<std::uint64_t> form = graph_canonical_form(g);
  std::uint64_t h = 0x5157A9E2B1C0D3F4ull;
  for (const std::uint64_t w : form) h = hash_combine_u64(h, w);
  return h;
}

}  // namespace paserta
