// Independent verification of simulation traces.
//
// Re-derives, from the trace alone, every invariant the scheduler must
// uphold, without trusting the engine's bookkeeping:
//   1. exactly the taken-path nodes executed, each once;
//   2. dispatches follow the execution-order rules of Figure 2 (EO == NEO,
//      with OR nodes allowed to jump NEO forward);
//   3. readiness: a node's executed predecessors finished before its
//      dispatch (any-one semantics for OR nodes, all for the rest);
//   4. no processor executes two tasks at once;
//   5. the application finished by the deadline;
//   6. (dispatch-bound check, on by default) every node was dispatched no
//      later than its latest start time and every computation node
//      finished by its estimated end time — the invariant behind the
//      paper's Theorem 1.
#pragma once

#include <string>
#include <vector>

#include "core/offline.h"
#include "sim/engine.h"

namespace paserta {

struct VerifyOptions {
  bool check_deadline = true;
  /// Theorem-1 bounds (dispatch <= LST, finish <= EET). Holds for every
  /// scheme in this library; can be disabled for experimental policies.
  bool check_bounds = true;
};

struct VerifyReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string v) {
    ok = false;
    violations.push_back(std::move(v));
  }
};

VerifyReport verify_trace(const Application& app, const OfflineResult& off,
                          const RunScenario& scenario, const SimResult& result,
                          const VerifyOptions& options = {});

}  // namespace paserta
