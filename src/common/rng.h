// Deterministic random number generation.
//
// Experiments must be exactly reproducible from a seed, independent of the
// platform's std::mt19937 / distribution implementations (which the C++
// standard does not pin down for normal/discrete distributions). paserta
// therefore ships its own xoshiro256++ generator plus the handful of
// distributions the simulator needs.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace paserta {

/// xoshiro256++ 1.0 (Blackman & Vigna, public domain algorithm),
/// seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value. Defined inline (as are the other per-draw
  /// primitives below): scenario sampling draws dozens of variates per
  /// Monte-Carlo run, and keeping the generator core visible to callers
  /// lets it inline into those loops.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    // 53 high bits -> uniform in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n) using rejection sampling (unbiased).
  std::uint64_t next_below(std::uint64_t n);

  /// Standard normal variate (Marsaglia polar method).
  double next_gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Normal with the given mean / standard deviation.
  double next_normal(double mean, double stddev) {
    return mean + stddev * next_gaussian();
  }

  /// Sample an index from a discrete distribution. `weights` need not be
  /// normalized but must be non-negative with a positive sum. Validates and
  /// sums the weights on every call — fine for cold paths; hot loops should
  /// prevalidate once and use next_discrete_prenorm.
  std::size_t next_discrete(std::span<const double> weights);

  /// Hot-path overload for prevalidated weight tables: `total` is the
  /// weights' sum, computed once ahead of time with the same left-to-right
  /// accumulation next_discrete uses. Performs the exact same arithmetic
  /// walk as next_discrete (deliberately a subtract-walk, not a
  /// cumulative-table compare, so the floating-point comparisons — and
  /// therefore the drawn indices and the RNG stream — are bit-identical to
  /// the checked version; see DESIGN.md §10). The caller guarantees:
  /// weights non-empty, all non-negative, total > 0.
  std::size_t next_discrete_prenorm(std::span<const double> weights,
                                    double total) {
    double x = next_double() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
      if (x < weights[i]) return i;
      x -= weights[i];
    }
    return weights.size() - 1;
  }

  /// Derive an independent child generator; used to give each Monte-Carlo
  /// run its own stream so scheme evaluation order cannot perturb draws.
  Rng fork();

  /// Stateless seed derivation for stream `index` of experiment `seed`:
  /// lets run i be reproduced in isolation and in any order (the parallel
  /// harness depends on this).
  static std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace paserta
