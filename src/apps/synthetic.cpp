#include "apps/synthetic.h"

namespace paserta::apps {
namespace {

TaskSpec ms_task(const char* name, double wcet_ms, double acet_ms) {
  return TaskSpec{name, SimTime::from_ms(wcet_ms), SimTime::from_ms(acet_ms)};
}

}  // namespace

Program synthetic_program(const SyntheticConfig& cfg) {
  Program p;

  // Prologue (Figure 1a's AND structure): A fans out to B and C.
  p.section(SectionSpec{
      {ms_task("A", 8, 5), ms_task("B", 5, 3), ms_task("C", 4, 2)},
      {{0, 1}, {0, 2}}});

  // Probabilistic loop: maximal 4 iterations at 30/20/25/25 %, body of two
  // parallel tasks (OR exits O1/O2 in the figure).
  Program loop_body;
  loop_body.parallel({ms_task("D1", 4, 2), ms_task("D2", 4, 2)});
  p.loop("scan", std::move(loop_body), {0.30, 0.20, 0.25, 0.25},
         cfg.loop_mode);

  // First OR branch (35 % / 65 %): a serial pipeline vs. a parallel pair.
  Program path_a;
  path_a.chain({ms_task("E", 5, 4), ms_task("H", 10, 6)});
  Program path_b;
  path_b.parallel({ms_task("K", 5, 3), ms_task("L", 10, 8)});
  p.branch("path", {{0.35, std::move(path_a)}, {0.65, std::move(path_b)}});

  // Second OR branch (Figure 1b: O3 -> 30 % F(8/6) | 70 % G(5/3) -> O4).
  Program tail_f;
  tail_f.task("F", SimTime::from_ms(8), SimTime::from_ms(6));
  Program tail_g;
  tail_g.task("G", SimTime::from_ms(5), SimTime::from_ms(3));
  p.branch("tail", {{0.30, std::move(tail_f)}, {0.70, std::move(tail_g)}});

  // Epilogue.
  p.chain({ms_task("I", 10, 8), ms_task("J", 4, 2)});

  return p;
}

Application build_synthetic(const SyntheticConfig& cfg) {
  return build_application("synthetic_fig3", synthetic_program(cfg));
}

}  // namespace paserta::apps
