// SVG rendering of schedules and power curves.
//
// Publication-quality counterparts of the ASCII tools: a per-processor
// Gantt chart (tasks colored by DVS level, switch markers, deadline line)
// and a stepped power-vs-time curve. Self-contained SVG 1.1, no external
// assets.
#pragma once

#include <iosfwd>
#include <string>

#include "core/offline.h"
#include "graph/program.h"
#include "power/power_model.h"
#include "sim/engine.h"
#include "sim/power_trace.h"

namespace paserta {

struct SvgOptions {
  int width = 900;        // total canvas width (px)
  int lane_height = 34;   // per-processor lane
  bool show_labels = true;
  bool show_power_curve = true;  // append the P(t) strip below the lanes
};

/// Renders the run as an SVG document.
void write_svg_gantt(std::ostream& os, const Application& app,
                     const OfflineResult& off, const PowerModel& pm,
                     const Overheads& overheads, const SimResult& result,
                     const SvgOptions& options = {});

std::string svg_gantt_to_string(const Application& app,
                                const OfflineResult& off, const PowerModel& pm,
                                const Overheads& overheads,
                                const SimResult& result,
                                const SvgOptions& options = {});

}  // namespace paserta
