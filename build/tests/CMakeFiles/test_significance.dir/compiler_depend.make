# Empty compiler generated dependencies file for test_significance.
# This may be replaced when dependencies are built.
