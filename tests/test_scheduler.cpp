// Tests for the PowerAwareScheduler facade.
#include <gtest/gtest.h>

#include "apps/atr.h"
#include "common/error.h"
#include "core/scheduler.h"
#include "sim/scenario.h"

namespace paserta {
namespace {

PowerAwareScheduler::Config base_config() {
  PowerAwareScheduler::Config cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.scheme = Scheme::GSS;
  cfg.load = 0.6;
  return cfg;
}

TEST(Scheduler, ConfigValidation) {
  auto cfg = base_config();
  cfg.deadline = SimTime::from_ms(100);  // both deadline and load set
  EXPECT_THROW(PowerAwareScheduler(apps::build_atr(), cfg), Error);

  cfg = base_config();
  cfg.load.reset();  // neither set
  EXPECT_THROW(PowerAwareScheduler(apps::build_atr(), cfg), Error);

  cfg = base_config();
  cfg.load = 1.5;
  EXPECT_THROW(PowerAwareScheduler(apps::build_atr(), cfg), Error);
}

TEST(Scheduler, InfeasibleDeadlineRejected) {
  auto cfg = base_config();
  cfg.load.reset();
  cfg.deadline = SimTime::from_us(1);
  EXPECT_THROW(PowerAwareScheduler(apps::build_atr(), cfg), Error);
}

TEST(Scheduler, LoadDerivesDeadline) {
  const auto cfg = base_config();
  PowerAwareScheduler sched(apps::build_atr(), cfg);
  const SimTime w = sched.offline().worst_makespan();
  // deadline = ceil(W / 0.6).
  EXPECT_GE(sched.deadline() * 6, w * 10);
  EXPECT_LE((sched.deadline() * 6 - w * 10).ps, 10);
  EXPECT_TRUE(sched.offline().feasible());
}

TEST(Scheduler, FramesAccumulateSummary) {
  PowerAwareScheduler sched(apps::build_atr(), base_config());
  Rng rng(31);
  for (int f = 0; f < 25; ++f) {
    const SimResult r = sched.run_frame(rng);
    EXPECT_TRUE(r.deadline_met);
  }
  const auto& s = sched.summary();
  EXPECT_EQ(s.frames, 25u);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_EQ(s.energy_joules.count(), 25u);
  EXPECT_EQ(s.norm_energy.count(), 25u);
  EXPECT_GT(s.norm_energy.mean(), 0.0);
  EXPECT_LE(s.norm_energy.max(), 1.0 + 1e-9);
  EXPECT_GT(s.finish_frac.mean(), 0.0);
  EXPECT_LE(s.finish_frac.max(), 1.0 + 1e-12);
}

TEST(Scheduler, NpmTrackingOptional) {
  auto cfg = base_config();
  cfg.track_npm_baseline = false;
  PowerAwareScheduler sched(apps::build_atr(), cfg);
  Rng rng(2);
  sched.run_frame(rng);
  EXPECT_EQ(sched.summary().norm_energy.count(), 0u);
  EXPECT_EQ(sched.summary().energy_joules.count(), 1u);
}

TEST(Scheduler, ResetSummary) {
  PowerAwareScheduler sched(apps::build_atr(), base_config());
  Rng rng(3);
  sched.run_frame(rng);
  EXPECT_EQ(sched.summary().frames, 1u);
  sched.reset_summary();
  EXPECT_EQ(sched.summary().frames, 0u);
}

TEST(Scheduler, ExplicitScenarioReplay) {
  PowerAwareScheduler sched(apps::build_atr(), base_config());
  Rng rng(17);
  const RunScenario sc = draw_scenario(sched.app().graph, rng);
  const SimResult a = sched.run_frame(sc);
  const SimResult b = sched.run_frame(sc);
  EXPECT_DOUBLE_EQ(a.total_energy(), b.total_energy());
  EXPECT_EQ(a.finish_time, b.finish_time);
}

TEST(Scheduler, AdaptiveSchemeStateResetsBetweenFrames) {
  // AS mutates its floor during a frame; the facade must reset the policy
  // so frame order does not change results.
  auto cfg = base_config();
  cfg.scheme = Scheme::AS;
  PowerAwareScheduler sched(apps::build_atr(), cfg);
  Rng rng(5);
  const RunScenario s1 = draw_scenario(sched.app().graph, rng);
  const RunScenario s2 = draw_scenario(sched.app().graph, rng);
  const double e1_first = sched.run_frame(s1).total_energy();
  sched.run_frame(s2);
  const double e1_again = sched.run_frame(s1).total_energy();
  EXPECT_DOUBLE_EQ(e1_first, e1_again);
}

TEST(Scheduler, SchemesDifferInEnergy) {
  Rng rng(9);
  const Application app = apps::build_atr();
  const RunScenario sc = draw_scenario(app.graph, rng);

  auto run_with = [&](Scheme s) {
    auto cfg = base_config();
    cfg.scheme = s;
    PowerAwareScheduler sched(apps::build_atr(), cfg);
    return sched.run_frame(sc).total_energy();
  };
  const double gss = run_with(Scheme::GSS);
  const double npm = run_with(Scheme::NPM);
  EXPECT_LT(gss, npm);
}

}  // namespace
}  // namespace paserta
