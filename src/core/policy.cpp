#include "core/policy.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace paserta {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::NPM: return "NPM";
    case Scheme::SPM: return "SPM";
    case Scheme::GSS: return "GSS";
    case Scheme::SS1: return "SS1";
    case Scheme::SS2: return "SS2";
    case Scheme::AS: return "AS";
  }
  return "?";
}

namespace {

/// Speculative speed f_max * work / horizon, rounded to a table level per
/// the policy options and clamped to [f_min, f_max] (paper §4). Returns the
/// level's frequency.
Freq speculate_level_freq(const PowerModel& pm, SimTime work, SimTime horizon,
                          PolicyOptions::SpecRounding rounding) {
  const LevelTable& t = pm.table();
  const Freq desired = required_freq(t.f_max(), work, horizon);
  const std::size_t idx = rounding == PolicyOptions::SpecRounding::Up
                              ? t.quantize_up(desired)
                              : t.quantize_down(desired);
  return t.level(idx).freq;
}

class NpmPolicy final : public SpeedPolicy {
 public:
  const char* name() const override { return "NPM"; }
  Kind kind() const override { return Kind::Static; }
  void reset(const OfflineResult&, const PowerModel& pm) override {
    level_ = pm.table().size() - 1;
  }
  std::size_t static_level() const override { return level_; }

 private:
  std::size_t level_ = 0;
};

class SpmPolicy final : public SpeedPolicy {
 public:
  const char* name() const override { return "SPM"; }
  Kind kind() const override { return Kind::Static; }
  void reset(const OfflineResult& off, const PowerModel& pm) override {
    // Stretch the canonical longest path to the deadline: f = f_max * W / D,
    // rounded up to the next level so the stretched schedule still fits.
    const Freq desired = required_freq(pm.table().f_max(), off.worst_makespan(),
                                       off.deadline());
    level_ = pm.table().quantize_up(desired);
  }
  std::size_t static_level() const override { return level_; }

 private:
  std::size_t level_ = 0;
};

class GssPolicy final : public SpeedPolicy {
 public:
  const char* name() const override { return "GSS"; }
  Kind kind() const override { return Kind::Dynamic; }
  void reset(const OfflineResult&, const PowerModel&) override {}
};

/// AS (paper §4.2): re-speculate after every OR node from the expected
/// average-case remaining time.
class AdaptiveSpecPolicy final : public SpeedPolicy {
 public:
  explicit AdaptiveSpecPolicy(PolicyOptions::SpecRounding rounding)
      : rounding_(rounding) {}

  const char* name() const override { return "AS"; }
  Kind kind() const override { return Kind::Dynamic; }

  void reset(const OfflineResult& off, const PowerModel& pm) override {
    floor_ = speculate_level_freq(pm, off.average_makespan(), off.deadline(),
                                  rounding_);
  }

  Freq floor_freq(SimTime) const override { return floor_; }

  void on_or_fired(NodeId node, int chosen_alt, SimTime now,
                   const OfflineResult& off, const PowerModel& pm) override {
    const SimTime horizon = off.deadline() - now;
    SimTime rem{};
    if (chosen_alt >= 0 && off.has_fork_profile(node)) {
      rem = off.fork_profile(node)
                .rem_a_alt[static_cast<std::size_t>(chosen_alt)];
    } else {
      rem = off.rem_a_after(node);
    }
    floor_ = speculate_level_freq(pm, rem, horizon, rounding_);
  }

 private:
  PolicyOptions::SpecRounding rounding_;
  Freq floor_ = 0;
};

}  // namespace

void FixedLevelPolicy::reset(const OfflineResult&, const PowerModel& pm) {
  PASERTA_REQUIRE(level_ < pm.table().size(),
                  "fixed level " << level_ << " out of range for table '"
                                 << pm.table().name() << "'");
}

void StaticSpecPolicy::reset(const OfflineResult& off, const PowerModel& pm) {
  const LevelTable& t = pm.table();
  const Freq raw =
      required_freq(t.f_max(), off.average_makespan(), off.deadline());
  const std::size_t hi = t.quantize_up(raw);
  if (!two_speeds_ || hi == 0 || t.level(hi).freq == raw ||
      raw <= t.f_min()) {
    // Single-speed speculation (or the speculated speed is exactly a
    // level / below the minimum level): one constant floor, rounded per
    // the policy options.
    const std::size_t idx =
        rounding_ == PolicyOptions::SpecRounding::Up ? hi
                                                     : t.quantize_down(raw);
    f_low_ = f_high_ = t.level(idx).freq;
    theta_ = SimTime::zero();
    return;
  }
  f_low_ = t.level(hi - 1).freq;
  f_high_ = t.level(hi).freq;
  // Run at f_low until theta, f_high afterwards, such that the two-speed
  // profile does the same expected work as running at `raw` for D:
  //   theta = D * (f_high - raw) / (f_high - f_low),
  // rounded to the nearest picosecond (truncation would bias theta low by
  // up to 1 ps whenever the product is not exactly representable).
  const double frac = static_cast<double>(f_high_ - raw) /
                      static_cast<double>(f_high_ - f_low_);
  theta_ = SimTime{static_cast<std::int64_t>(
      std::llround(frac * static_cast<double>(off.deadline().ps)))};
}

std::unique_ptr<SpeedPolicy> make_policy(Scheme s,
                                         const PolicyOptions& options) {
  switch (s) {
    case Scheme::NPM: return std::make_unique<NpmPolicy>();
    case Scheme::SPM: return std::make_unique<SpmPolicy>();
    case Scheme::GSS: return std::make_unique<GssPolicy>();
    case Scheme::SS1:
      return std::make_unique<StaticSpecPolicy>(false, options.spec_rounding);
    case Scheme::SS2:
      return std::make_unique<StaticSpecPolicy>(true, options.spec_rounding);
    case Scheme::AS:
      return std::make_unique<AdaptiveSpecPolicy>(options.spec_rounding);
  }
  PASERTA_ASSERT(false, "unknown scheme");
  return nullptr;
}

}  // namespace paserta
