#include "sim/power_trace.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/error.h"

namespace paserta {

Energy PowerTrace::total_energy() const {
  Energy e = 0.0;
  for (const PowerSegment& s : segments) e += s.watts * s.duration().sec();
  return e;
}

Energy PowerTrace::peak_watts() const {
  Energy p = 0.0;
  for (const PowerSegment& s : segments) p = std::max(p, s.watts);
  return p;
}

Energy PowerTrace::energy_between(SimTime from, SimTime to) const {
  Energy e = 0.0;
  for (const PowerSegment& s : segments) {
    const SimTime a = std::max(from, s.begin);
    const SimTime b = std::min(to, s.end);
    if (b > a) e += s.watts * (b - a).sec();
  }
  return e;
}

namespace {

/// One constant-power span on one processor.
struct Span {
  SimTime begin{};
  SimTime end{};
  Energy watts = 0.0;
};

}  // namespace

PowerTrace build_power_trace(const Application& app, const OfflineResult& off,
                             const PowerModel& pm, const Overheads& ovh,
                             const SimResult& result) {
  const SimTime horizon = std::max(off.deadline(), result.finish_time);
  std::vector<std::vector<Span>> busy(static_cast<std::size_t>(off.cpus()));
  std::vector<SimTime> boundaries{SimTime::zero(), horizon};

  for (const TaskRecord& rec : result.trace) {
    const Node& n = app.graph.node(rec.node);
    if (n.is_dummy() || rec.cpu < 0) continue;
    auto& spans = busy[static_cast<std::size_t>(rec.cpu)];

    // Overheads between dispatch and execution start: speed computation at
    // the level held at dispatch, then (if switched) the transition at the
    // higher of the two involved levels.
    if (rec.exec_start > rec.dispatch_time) {
      const SimTime compute_dt = cycles_to_time(
          ovh.speed_compute_cycles, pm.table().level(rec.level_before).freq);
      const SimTime compute_end =
          std::min(rec.exec_start, rec.dispatch_time + compute_dt);
      if (compute_end > rec.dispatch_time) {
        spans.push_back(Span{rec.dispatch_time, compute_end,
                             pm.power(rec.level_before)});
        boundaries.push_back(rec.dispatch_time);
        boundaries.push_back(compute_end);
      }
      if (rec.exec_start > compute_end) {
        spans.push_back(Span{compute_end, rec.exec_start,
                             std::max(pm.power(rec.level_before),
                                      pm.power(rec.level))});
        boundaries.push_back(rec.exec_start);
      }
    }
    if (rec.finish > rec.exec_start) {
      spans.push_back(Span{rec.exec_start, rec.finish, pm.power(rec.level)});
      boundaries.push_back(rec.exec_start);
      boundaries.push_back(rec.finish);
    }
  }

  for (auto& spans : busy)
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.begin < b.begin; });

  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  // Power of `cpu` during the elementary interval containing `mid`.
  auto cpu_power_at = [&](const std::vector<Span>& spans, SimTime mid) {
    auto it = std::upper_bound(
        spans.begin(), spans.end(), mid,
        [](SimTime t, const Span& s) { return t < s.begin; });
    if (it != spans.begin()) {
      --it;
      if (mid < it->end) return it->watts;
    }
    return pm.idle_power();
  };

  PowerTrace out;
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const SimTime a = boundaries[i], b = boundaries[i + 1];
    if (b <= a) continue;
    const SimTime mid{a.ps + (b.ps - a.ps) / 2};
    Energy watts = 0.0;
    for (const auto& spans : busy) watts += cpu_power_at(spans, mid);
    // Merge equal-power neighbours to keep the curve minimal.
    if (!out.segments.empty() && out.segments.back().watts == watts &&
        out.segments.back().end == a) {
      out.segments.back().end = b;
    } else {
      out.segments.push_back(PowerSegment{a, b, watts});
    }
  }
  PASERTA_ASSERT(!out.segments.empty() &&
                     out.segments.front().begin == SimTime::zero() &&
                     out.segments.back().end == horizon,
                 "power trace does not cover [0, horizon]");
  return out;
}

void write_power_trace_csv(std::ostream& os, const PowerTrace& trace) {
  os << "time_ms,watts\n";
  for (const PowerSegment& s : trace.segments)
    os << s.begin.ms() << "," << s.watts << "\n";
  if (!trace.segments.empty())
    os << trace.segments.back().end.ms() << ","
       << trace.segments.back().watts << "\n";
}

}  // namespace paserta
