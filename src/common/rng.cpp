#include "common/rng.h"

#include <cmath>

namespace paserta {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not be seeded with the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  have_spare_ = false;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  PASERTA_REQUIRE(n > 0, "next_below(0) is undefined");
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::size_t Rng::next_discrete(std::span<const double> weights) {
  PASERTA_REQUIRE(!weights.empty(), "next_discrete needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    PASERTA_REQUIRE(w >= 0.0, "negative weight in discrete distribution");
    total += w;
  }
  PASERTA_REQUIRE(total > 0.0, "discrete distribution weights sum to zero");
  return next_discrete_prenorm(weights, total);
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL); }

std::uint64_t Rng::stream_seed(std::uint64_t seed, std::uint64_t index) {
  // Two rounds of splitmix64 over (seed, index) decorrelate the streams.
  std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  (void)splitmix64(x);
  return splitmix64(x);
}

}  // namespace paserta
