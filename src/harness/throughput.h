// Throughput measurement for the Monte-Carlo hot loop.
//
// Times run_point on a fixed configuration across a list of thread counts
// and reports runs/sec as a small self-contained JSON document. Lives in
// the library — rather than inlined in the bench binary — so the timing
// plumbing and the JSON shape are unit-testable; bench_throughput is a
// thin wrapper over this module.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace paserta {

struct ThroughputSample {
  int threads = 1;
  double seconds = 0.0;       // wall time of the timed run_point call
  double runs_per_sec = 0.0;  // runs / seconds
};

struct ThroughputReport {
  std::string label;  // e.g. "fig4a@load=0.5"
  int runs = 0;       // Monte-Carlo runs per measurement
  int schemes = 0;    // schemes per run (the NPM baseline is extra)
  std::vector<ThroughputSample> samples;
};

/// Times run_point(app, cfg, deadline, ...) once per entry of
/// `thread_counts` (cfg.threads is overridden), after one untimed warm-up
/// at the first thread count to fault in code and allocator state.
ThroughputReport measure_throughput(const Application& app,
                                    ExperimentConfig cfg, SimTime deadline,
                                    const std::vector<int>& thread_counts,
                                    const std::string& label);

/// Renders the report as a JSON object (pretty-printed, newline-terminated).
std::string throughput_to_json(const ThroughputReport& report);

}  // namespace paserta
