// Streaming statistics accumulators used by the experiment harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace paserta {

/// Welford one-pass accumulator for mean / variance / min / max.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double stderr_mean() const {
    return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Half-width of the ~95 % confidence interval on the mean (normal approx).
  double ci95_halfwidth() const { return 1.96 * stderr_mean(); }

  void merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
    mean_ += delta * nb / (na + nb);
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace paserta
