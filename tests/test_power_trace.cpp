// Tests for the power-vs-time reconstruction. The load-bearing property:
// integrating the reconstructed curve reproduces the engine's energy
// ledger exactly, for every scheme — an independent audit of the
// accounting.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/atr.h"
#include "apps/synthetic.h"
#include "core/offline.h"
#include "sim/power_trace.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

struct Env {
  Application app;
  PowerModel pm;
  Overheads ovh;
  OfflineResult off;
};

Env make_env(Application app, const LevelTable& table, int cpus, double load) {
  Overheads ovh;
  OfflineOptions o;
  o.cpus = cpus;
  o.overhead_budget = ovh.worst_case_budget(table);
  const SimTime w = canonical_worst_makespan(app, cpus, o.overhead_budget);
  o.deadline = SimTime{static_cast<std::int64_t>(
      static_cast<double>(w.ps) / load + 1)};
  OfflineResult off = analyze_offline(app, o);
  return Env{std::move(app), PowerModel(table), ovh, std::move(off)};
}

TEST(PowerTrace, IntegralMatchesLedgerAllSchemes) {
  Env e = make_env(apps::build_synthetic(), LevelTable::intel_xscale(), 2,
                   0.6);
  Rng rng(5);
  for (int run = 0; run < 5; ++run) {
    const RunScenario sc = draw_scenario(e.app.graph, rng);
    for (Scheme s : {Scheme::NPM, Scheme::SPM, Scheme::GSS, Scheme::SS1,
                     Scheme::SS2, Scheme::AS}) {
      const SimResult r = simulate(e.app, e.off, e.pm, e.ovh, s, sc);
      const PowerTrace pt =
          build_power_trace(e.app, e.off, e.pm, e.ovh, r);
      EXPECT_NEAR(pt.total_energy(), r.total_energy(),
                  1e-9 * std::max(1.0, r.total_energy()))
          << to_string(s);
    }
  }
}

TEST(PowerTrace, IntegralMatchesLedgerTransmeta6Cpu) {
  Env e = make_env(apps::build_atr(), LevelTable::transmeta_tm5400(), 6, 0.4);
  Rng rng(9);
  const RunScenario sc = draw_scenario(e.app.graph, rng);
  const SimResult r = simulate(e.app, e.off, e.pm, e.ovh, Scheme::GSS, sc);
  const PowerTrace pt = build_power_trace(e.app, e.off, e.pm, e.ovh, r);
  EXPECT_NEAR(pt.total_energy(), r.total_energy(), 1e-9);
}

TEST(PowerTrace, SegmentsAreContiguousAndCoverWindow) {
  Env e = make_env(apps::build_synthetic(), LevelTable::intel_xscale(), 2,
                   0.5);
  Rng rng(1);
  const RunScenario sc = draw_scenario(e.app.graph, rng);
  const SimResult r = simulate(e.app, e.off, e.pm, e.ovh, Scheme::AS, sc);
  const PowerTrace pt = build_power_trace(e.app, e.off, e.pm, e.ovh, r);
  ASSERT_FALSE(pt.segments.empty());
  EXPECT_EQ(pt.segments.front().begin, SimTime::zero());
  EXPECT_EQ(pt.segments.back().end, e.off.deadline());
  for (std::size_t i = 1; i < pt.segments.size(); ++i) {
    EXPECT_EQ(pt.segments[i].begin, pt.segments[i - 1].end);
    // Neighbours merged: power actually changes at boundaries.
    EXPECT_NE(pt.segments[i].watts, pt.segments[i - 1].watts);
  }
}

TEST(PowerTrace, AllIdleRunIsFlat) {
  // NPM with a huge deadline: after the work finishes the curve drops to
  // m * idle power and stays there.
  Program p;
  p.task("T", ms(2), ms(1));
  Application app = build_application("flat", p);
  Env e = make_env(std::move(app), LevelTable::intel_xscale(), 2, 0.05);
  const RunScenario sc = worst_case_scenario(e.app.graph);
  const SimResult r = simulate(e.app, e.off, e.pm, e.ovh, Scheme::NPM, sc);
  const PowerTrace pt = build_power_trace(e.app, e.off, e.pm, e.ovh, r);
  // Final segment: both cpus idle.
  EXPECT_NEAR(pt.segments.back().watts, 2 * e.pm.idle_power(), 1e-12);
  // Peak: one cpu at max power + one idle.
  EXPECT_NEAR(pt.peak_watts(), e.pm.max_power() + e.pm.idle_power(), 1e-12);
}

TEST(PowerTrace, EnergyBetweenClips) {
  Env e = make_env(apps::build_synthetic(), LevelTable::intel_xscale(), 2,
                   0.5);
  Rng rng(2);
  const RunScenario sc = draw_scenario(e.app.graph, rng);
  const SimResult r = simulate(e.app, e.off, e.pm, e.ovh, Scheme::GSS, sc);
  const PowerTrace pt = build_power_trace(e.app, e.off, e.pm, e.ovh, r);
  const Energy whole = pt.energy_between(SimTime::zero(), e.off.deadline());
  EXPECT_NEAR(whole, pt.total_energy(), 1e-12);
  const SimTime mid{e.off.deadline().ps / 2};
  const Energy left = pt.energy_between(SimTime::zero(), mid);
  const Energy right = pt.energy_between(mid, e.off.deadline());
  EXPECT_NEAR(left + right, whole, 1e-12);
  EXPECT_EQ(pt.energy_between(e.off.deadline(), e.off.deadline() + ms(5)),
            0.0);
}

TEST(PowerTrace, CsvOutputShape) {
  Env e = make_env(apps::build_synthetic(), LevelTable::intel_xscale(), 2,
                   0.5);
  Rng rng(3);
  const RunScenario sc = draw_scenario(e.app.graph, rng);
  const SimResult r = simulate(e.app, e.off, e.pm, e.ovh, Scheme::GSS, sc);
  const PowerTrace pt = build_power_trace(e.app, e.off, e.pm, e.ovh, r);
  std::ostringstream oss;
  write_power_trace_csv(oss, pt);
  const std::string s = oss.str();
  EXPECT_EQ(s.rfind("time_ms,watts\n", 0), 0u);
  // header + one row per segment + final endpoint.
  const auto lines = std::count(s.begin(), s.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), pt.segments.size() + 2);
}

}  // namespace
}  // namespace paserta
