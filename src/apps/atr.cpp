#include "apps/atr.h"

#include <string>

#include "common/error.h"

namespace paserta::apps {
namespace {

SimTime scaled_acet(SimTime wcet, double alpha) {
  auto t = SimTime{static_cast<std::int64_t>(
      alpha * static_cast<double>(wcet.ps) + 0.5)};
  if (t <= SimTime::zero()) t = SimTime{1};
  return std::min(t, wcet);
}

}  // namespace

Application build_atr(const AtrConfig& cfg) {
  PASERTA_REQUIRE(cfg.max_rois >= 1, "ATR needs at least one ROI branch");
  PASERTA_REQUIRE(cfg.templates >= 1, "ATR needs at least one template");
  PASERTA_REQUIRE(cfg.alpha > 0.0 && cfg.alpha <= 1.0,
                  "ATR alpha must be in (0,1]");

  std::vector<double> probs = cfg.roi_count_prob;
  if (probs.empty()) {
    // Default per the paper's description: most frames detect few ROIs.
    switch (cfg.max_rois) {
      case 1: probs = {1.0}; break;
      case 2: probs = {0.6, 0.4}; break;
      case 3: probs = {0.45, 0.35, 0.2}; break;
      default: {
        probs = {0.4, 0.3, 0.2, 0.1};
        // Spread the tail uniformly if more than 4 branches are requested.
        while (static_cast<int>(probs.size()) < cfg.max_rois) {
          for (double& p : probs) p *= 0.9;
          probs.push_back(1.0 - 0.9 * 1.0);
        }
        // Renormalize.
        double s = 0.0;
        for (double p : probs) s += p;
        for (double& p : probs) p /= s;
        break;
      }
    }
  }
  PASERTA_REQUIRE(static_cast<int>(probs.size()) == cfg.max_rois,
                  "roi_count_prob needs one entry per ROI count (got "
                      << probs.size() << ", expected " << cfg.max_rois << ")");

  auto task = [&](std::string name, SimTime wcet) {
    return TaskSpec{std::move(name), wcet, scaled_acet(wcet, cfg.alpha)};
  };

  const SimTime compare_wcet =
      SimTime{cfg.compare_wcet_per_template.ps * cfg.templates};

  Program app;
  app.task("detect", cfg.detect_wcet, scaled_acet(cfg.detect_wcet, cfg.alpha));

  // One alternative per ROI count: k parallel extract->match->classify
  // pipelines.
  std::vector<std::pair<double, Program>> alts;
  for (int k = 1; k <= cfg.max_rois; ++k) {
    Program alt;
    SectionSpec sec;
    for (int r = 0; r < k; ++r) {
      const std::string roi = "roi" + std::to_string(k) + "_" +
                              std::to_string(r);
      const std::size_t base = sec.tasks.size();
      sec.tasks.push_back(task(roi + "_extract", cfg.extract_wcet));
      sec.tasks.push_back(task(roi + "_match", compare_wcet));
      sec.tasks.push_back(task(roi + "_classify", cfg.classify_wcet));
      sec.edges.push_back({base, base + 1});
      sec.edges.push_back({base + 1, base + 2});
    }
    alt.section(std::move(sec));
    alts.emplace_back(probs[static_cast<std::size_t>(k - 1)], std::move(alt));
  }
  app.branch("nroi", std::move(alts));

  app.task("report", cfg.report_wcet, scaled_acet(cfg.report_wcet, cfg.alpha));

  return build_application("atr", app);
}

}  // namespace paserta::apps
