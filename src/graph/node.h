// Node-level types of the AND/OR task-graph model (paper §2.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace paserta {

/// Index of a node within its AndOrGraph. Strongly typed to avoid mixing
/// with processor ids, execution orders etc.
struct NodeId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }
  constexpr auto operator<=>(const NodeId&) const = default;
};

/// The three vertex kinds of the extended AND/OR model:
///  * Computation — a real task with WCET/ACET attributes (circle).
///  * AndNode     — synchronization: depends on *all* predecessors, all
///                  successors depend on it (diamond). Zero execution time.
///  * OrNode      — depends on *one* predecessor; exactly one successor
///                  executes after it (double circle). Zero execution time.
///                  With >1 successors it is an OR *fork* and carries one
///                  probability per successor; with >1 predecessors it is an
///                  OR *join* whose predecessors must be mutually exclusive.
enum class NodeKind : std::uint8_t { Computation, AndNode, OrNode };

const char* to_string(NodeKind k);

/// One vertex of the flat AND/OR graph.
struct Node {
  NodeKind kind = NodeKind::Computation;
  std::string name;

  /// Worst-case execution time at f_max (zero for AND/OR nodes).
  SimTime wcet{};
  /// Average-case execution time at f_max (zero for AND/OR nodes).
  SimTime acet{};

  std::vector<NodeId> preds;
  std::vector<NodeId> succs;

  /// For OR forks only: probability of taking each successor, parallel to
  /// `succs`, summing to 1. Empty otherwise.
  std::vector<double> succ_prob;

  bool is_dummy() const { return kind != NodeKind::Computation; }
  bool is_or_fork() const {
    return kind == NodeKind::OrNode && succs.size() > 1;
  }
  bool is_or_join() const {
    return kind == NodeKind::OrNode && preds.size() > 1;
  }
};

}  // namespace paserta
