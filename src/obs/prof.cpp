#include "obs/prof.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace paserta {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Single-writer relaxed accumulate, same idiom as obs_detail::shard_add:
/// no RMW, so concurrent relaxed readers (snapshot/export) are TSan-clean.
inline void cell_add(std::atomic<std::uint64_t>& v, std::uint64_t delta) {
  if (delta != 0)
    v.store(v.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
}

#if defined(__linux__)

/// The hardware events a group carries, in fixed order. The leader
/// (cycles) must open for the group to exist; followers that the host
/// lacks (e.g. LLC events on some VMs) are skipped individually.
constexpr std::uint64_t kEventConfigs[5] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return ::syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// One per-thread counter group: counters run continuously for the
/// thread's lifetime; scopes read start/end values and charge the delta.
/// Shared by every Profiler in the process — deltas make that safe.
struct PerfGroup {
  int leader = -1;
  int fds[5] = {-1, -1, -1, -1, -1};
  int idx[5] = {-1, -1, -1, -1, -1};  // event -> position in the group read
  int nvals = 0;
  bool tried = false;

  ~PerfGroup() {
    for (int fd : fds)
      if (fd >= 0) ::close(fd);
  }

  bool open() {
    tried = true;
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    for (int e = 0; e < 5; ++e) {
      attr.config = kEventConfigs[e];
      const long fd = perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                      /*group_fd=*/leader, /*flags=*/0);
      if (fd < 0) {
        if (e == 0) return false;  // no leader, no group
        continue;
      }
      fds[e] = static_cast<int>(fd);
      if (e == 0) leader = static_cast<int>(fd);
      idx[e] = nvals++;
    }
    return true;
  }

  /// Reads the group into `out` (event order, missing events zero) plus
  /// the leader's enabled/running times. False on a failed read.
  bool read(std::uint64_t out[5], std::uint64_t& te, std::uint64_t& tr) {
    // nr, time_enabled, time_running, then one value per open event.
    std::uint64_t buf[3 + 5] = {};
    const std::size_t want = (3 + static_cast<std::size_t>(nvals)) * 8;
    if (::read(leader, buf, want) != static_cast<ssize_t>(want)) return false;
    te = buf[1];
    tr = buf[2];
    for (int e = 0; e < 5; ++e)
      out[e] = idx[e] >= 0 ? buf[3 + idx[e]] : 0;
    return true;
  }
};

thread_local PerfGroup t_perf;

/// Process-wide availability latch: 0 unknown, 1 available, 2 unavailable.
/// Probed once — a denied perf_event_open (EACCES/EPERM/ENOSYS under
/// seccomp or perf_event_paranoid) latches the fallback for every thread.
std::atomic<int> g_perf_state{0};

bool perf_available() {
  int state = g_perf_state.load(std::memory_order_acquire);
  if (state == 0) {
    const char* off = std::getenv("PASERTA_NO_PERF");
    if (off != nullptr && off[0] != '\0' && off[0] != '0') {
      state = 2;
    } else {
      PerfGroup probe;
      state = probe.open() ? 1 : 2;
    }
    g_perf_state.store(state, std::memory_order_release);
  }
  return state == 1;
}

/// The calling thread's group, opened on first use. A thread whose own
/// open fails after the process probe passed (exotic, e.g. fd exhaustion)
/// just records wall time.
PerfGroup* thread_group() {
  if (!t_perf.tried) t_perf.open();
  return t_perf.leader >= 0 ? &t_perf : nullptr;
}

#else  // !__linux__

bool perf_available() { return false; }

#endif

}  // namespace

Profiler::Profiler(Mode mode)
    : cells_(static_cast<std::size_t>(kMaxPhases) * kSlots) {
  hardware_ = mode == Mode::kAuto && perf_available();
  for (auto& c : cells_)
    for (auto& v : c.v) v.store(0, std::memory_order_relaxed);
  for (auto& s : next_sample_ns_) s.store(0, std::memory_order_relaxed);
  names_.reserve(kMaxPhases);
  samples_.reserve(64);
}

int Profiler::phase(const char* name, bool top_level) {
  std::lock_guard<std::mutex> lock(m_);
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<int>(i);
  PASERTA_REQUIRE(names_.size() < kMaxPhases,
                  "profiler phase table full (kMaxPhases = " << kMaxPhases
                                                             << ")");
  names_.emplace_back(name);
  top_level_.push_back(top_level ? 1 : 0);
  phase_count_.store(static_cast<int>(names_.size()),
                     std::memory_order_release);
  return static_cast<int>(names_.size()) - 1;
}

void Profiler::add_ns(int phase, int slot, std::uint64_t ns,
                      std::uint64_t count) {
  Cell& c = cell(phase, slot);
  cell_add(c.v[kCount], count);
  cell_add(c.v[kNs], ns);
}

std::vector<ProfPhaseTotals> Profiler::snapshot() const {
  const int n = phase_count_.load(std::memory_order_acquire);
  std::vector<ProfPhaseTotals> out(static_cast<std::size_t>(n));
  {
    std::lock_guard<std::mutex> lock(m_);
    for (int p = 0; p < n; ++p) {
      out[p].name = names_[p];
      out[p].top_level = top_level_[p] != 0;
    }
  }
  for (int p = 0; p < n; ++p) {
    std::uint64_t acc[kFields] = {};
    for (int s = 0; s < kSlots; ++s) {
      const Cell& c = cell(p, s);
      for (int f = 0; f < kFields; ++f)
        acc[f] += c.v[f].load(std::memory_order_relaxed);
    }
    out[p].count = acc[kCount];
    out[p].ns = acc[kNs];
    out[p].cycles = acc[kCycles];
    out[p].instructions = acc[kInstructions];
    out[p].cache_refs = acc[kCacheRefs];
    out[p].cache_misses = acc[kCacheMisses];
    out[p].branch_misses = acc[kBranchMisses];
  }
  return out;
}

void Profiler::export_delta_to(MetricsRegistry& reg) {
  const std::vector<ProfPhaseTotals> snap = snapshot();
  std::lock_guard<std::mutex> lock(m_);
  exported_.resize(snap.size() * kFields, 0);
  for (std::size_t p = 0; p < snap.size(); ++p) {
    const std::uint64_t totals[kFields] = {
        snap[p].count,      snap[p].ns,          snap[p].cycles,
        snap[p].instructions, snap[p].cache_refs, snap[p].cache_misses,
        snap[p].branch_misses,
    };
    static constexpr const char* kFieldNames[kFields] = {
        "count",      "ns",           "cycles",      "instructions",
        "cache_refs", "cache_misses", "branch_misses",
    };
    const int fields = hardware_ ? kFields : 2;  // count + ns only
    for (int f = 0; f < fields; ++f) {
      std::uint64_t& last = exported_[p * kFields + f];
      const std::uint64_t delta = totals[f] - last;
      last = totals[f];
      reg.counter("prof." + snap[p].name + "." + kFieldNames[f])
          .add(0, delta);
    }
  }
}

std::vector<ProfSample> Profiler::samples() const {
  std::lock_guard<std::mutex> lock(m_);
  return samples_;
}

void Profiler::maybe_sample(int slot, std::int64_t now) {
  const std::int64_t next =
      next_sample_ns_[slot].load(std::memory_order_relaxed);
  if (now < next) return;
  next_sample_ns_[slot].store(now + kSampleIntervalNs,
                              std::memory_order_relaxed);
  ProfSample s;
  s.ts_ns = now;
  s.slot = slot;
  const int n = phase_count_.load(std::memory_order_acquire);
  for (int p = 0; p < n; ++p) {
    const Cell& c = cell(p, slot);
    s.ns += c.v[kNs].load(std::memory_order_relaxed);
    s.cycles += c.v[kCycles].load(std::memory_order_relaxed);
    s.instructions += c.v[kInstructions].load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(m_);
  if (samples_.size() < kMaxSamples) samples_.push_back(s);
}

void ProfScope::begin(int phase, int slot) {
  phase_ = phase;
  slot_ = slot;
#if defined(__linux__)
  if (prof_->hardware()) {
    if (PerfGroup* g = thread_group())
      hw_ = g->read(hw0_, te0_, tr0_);
  }
#endif
  t0_ = now_ns();
}

void ProfScope::end() {
  const std::int64_t t1 = now_ns();
  Profiler::Cell& c = prof_->cell(phase_, slot_);
  cell_add(c.v[Profiler::kCount], 1);
  cell_add(c.v[Profiler::kNs],
           t1 > t0_ ? static_cast<std::uint64_t>(t1 - t0_) : 0);
#if defined(__linux__)
  if (hw_) {
    std::uint64_t hw1[5];
    std::uint64_t te1 = 0, tr1 = 0;
    if (PerfGroup* g = thread_group(); g != nullptr && g->read(hw1, te1, tr1)) {
      // Multiplex scaling: when the PMU time-shared this group with others
      // during the scope, extrapolate the delta by enabled/running.
      const std::uint64_t d_te = te1 - te0_;
      const std::uint64_t d_tr = tr1 - tr0_;
      const double scale =
          (d_tr > 0 && d_tr != d_te)
              ? static_cast<double>(d_te) / static_cast<double>(d_tr)
              : 1.0;
      static constexpr Profiler::Field kHwFields[5] = {
          Profiler::kCycles,      Profiler::kInstructions,
          Profiler::kCacheRefs,   Profiler::kCacheMisses,
          Profiler::kBranchMisses,
      };
      for (int e = 0; e < 5; ++e) {
        const std::uint64_t raw = hw1[e] - hw0_[e];
        const std::uint64_t scaled =
            scale == 1.0
                ? raw
                : static_cast<std::uint64_t>(static_cast<double>(raw) * scale);
        cell_add(c.v[kHwFields[e]], scaled);
      }
    }
  }
#endif
  prof_->maybe_sample(slot_, t1);
}

}  // namespace paserta
