#include "serve/service.h"

#include <bit>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "apps/atr.h"
#include "apps/mpeg.h"
#include "apps/synthetic.h"
#include "common/error.h"
#include "common/version.h"
#include "graph/text_format.h"
#include "harness/json.h"
#include "obs/trace.h"

namespace paserta {
namespace {

// Queue-latency buckets, seconds. The top finite bound (30 s) comfortably
// covers the largest request the limits admit on this class of host.
constexpr double kLatencyBounds[] = {0.0005, 0.001, 0.0025, 0.005, 0.01,
                                     0.025,  0.05,  0.1,    0.25,  0.5,
                                     1.0,    2.5,   5.0,    10.0,  30.0};

Application build_app(const SimRequest& req) {
  if (req.graph_is_text) return load_application_string(req.graph);
  if (req.graph == "@atr") return apps::build_atr();
  if (req.graph == "@synthetic") return apps::build_synthetic();
  if (req.graph == "@mpeg") return apps::build_mpeg();
  PASERTA_REQUIRE(false, "unknown built-in workload " << req.graph
                         << " (use @atr, @synthetic or @mpeg)");
  return {};  // unreachable
}

LevelTable table_of(const std::string& name) {
  return name == "xscale" ? LevelTable::intel_xscale()
                          : LevelTable::transmeta_tm5400();
}

// sweep_load's per-point deadline rule (experiment.cpp deadline_for):
// D = ceil(W / load). Must match exactly — the bit-identity contract with
// `paserta_cli sweep` hangs on it.
SimTime deadline_from_load(SimTime worst_makespan, double load) {
  return SimTime{static_cast<std::int64_t>(
      std::ceil(static_cast<double>(worst_makespan.ps) / load))};
}

/// The coalescing key: every request input that can influence the
/// response's "experiment" document. Two jobs with equal keys may share
/// one simulation; nothing else may.
std::string group_key(const SimRequest& req, std::uint32_t graph_id,
                      const std::string& app_name) {
  std::ostringstream k;
  // The response embeds experiment_id = app name, so coalescing across
  // same-structure graphs with different names must keep them apart only
  // in the rendered id — but the simulation inputs are identical. Still
  // key on the name: it keeps per-group rendering trivially uniform.
  k << graph_id << '|' << app_name << '|' << req.table << '|' << req.cpus
    << '|' << static_cast<int>(req.heuristic) << '|' << req.runs << '|'
    << req.seed << '|';
  for (Scheme s : req.schemes) k << static_cast<int>(s) << ',';
  k << '|';
  if (req.deadline_ms) {
    // Bit-pattern, not decimal text: keys must never merge two doubles
    // that simulate differently.
    k << 'd' << std::bit_cast<std::uint64_t>(*req.deadline_ms);
  } else {
    k << 'l' << std::bit_cast<std::uint64_t>(req.load);
  }
  return k.str();
}

std::shared_future<std::string> ready_future(std::string response) {
  std::promise<std::string> p;
  p.set_value(std::move(response));
  return p.get_future().share();
}

}  // namespace

SimService::SimService(ServeSettings settings) : settings_(settings) {
  if (settings_.registry != nullptr) {
    registry_ = settings_.registry;
  } else {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  latency_ = &registry_->histogram("serve.request_seconds", kLatencyBounds);
  ph_parse_ = prof_.phase("serve.parse", /*top_level=*/true);
  ph_intern_ = prof_.phase("serve.intern", /*top_level=*/true);
  ph_group_ = prof_.phase("serve.group", /*top_level=*/true);
  ph_simulate_ = prof_.phase("serve.simulate", /*top_level=*/true);
  ph_respond_ = prof_.phase("serve.respond", /*top_level=*/true);
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

SimService::~SimService() { shutdown(); }

MetricsRegistry& SimService::registry() { return *registry_; }

std::string SimService::metrics_text() {
  // Fold the profiler's phase totals into the registry as prof.* counter
  // deltas first, so /metrics carries them alongside serve.*.
  prof_.export_delta_to(*registry_);
  return "# " + build_version_string() + "\n" +
         metrics_to_prometheus(registry_->snapshot());
}

std::string SimService::healthz_json() {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .key("status").value("ok")
      .key("queue_depth")
      .value(static_cast<std::uint64_t>(
          depth_.load(std::memory_order_relaxed)))
      .key("uptime_s").value(uptime)
      .end_object();
  return os.str();
}

SimService::LiveProgress SimService::live_progress() {
  LiveProgress lp;
  lp.done = static_cast<std::uint64_t>(progress_.done());
  lp.total = static_cast<std::uint64_t>(progress_.total());
  lp.phase = phase_.load(std::memory_order_relaxed);
  for (const ProfPhaseTotals& t : prof_.snapshot()) {
    lp.cycles += t.cycles;
    lp.instructions += t.instructions;
  }
  return lp;
}

std::size_t SimService::queue_depth() {
  std::lock_guard<std::mutex> lk(m_);
  return queue_.size();
}

std::shared_future<std::string> SimService::submit(const std::string& line) {
  return submit_line(line).response;
}

SimService::Submission SimService::submit_line(const std::string& line) {
  // Parsing runs concurrently on connection threads, so it is timed here
  // and charged to serve.parse inside the m_-held sections below — the
  // mutex serializes the cell writes, keeping the single-writer contract.
  const auto p0 = std::chrono::steady_clock::now();
  SimRequest req;
  std::string parse_error;
  try {
    req = parse_request(line, settings_.limits);
  } catch (const std::exception& e) {
    parse_error = e.what();
  }
  const auto parse_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - p0)
          .count());

  Submission sub;
  if (!parse_error.empty()) {
    std::lock_guard<std::mutex> lk(m_);
    prof_.add_ns(ph_parse_, 0, parse_ns);
    registry_->counter("serve.bad_requests").add(0, 1);
    sub.response = ready_future(render_error("", "bad_request", parse_error));
    return sub;
  }
  sub.stream = req.stream;
  sub.id_json = req.id_json;
  if (req.command == "hello") {
    std::lock_guard<std::mutex> lk(m_);
    prof_.add_ns(ph_parse_, 0, parse_ns);
    registry_->counter("serve.hellos").add(0, 1);
    sub.response = ready_future(render_hello(req.id_json));
    return sub;
  }

  auto job = std::make_unique<Job>();
  job->req = std::move(req);
  job->t0 = std::chrono::steady_clock::now();
  if (settings_.tracer != nullptr) job->ts_ns = settings_.tracer->now_ns();

  std::lock_guard<std::mutex> lk(m_);
  prof_.add_ns(ph_parse_, 0, parse_ns);
  if (stopping_) {
    registry_->counter("serve.rejected").add(0, 1);
    sub.response = ready_future(render_error(job->req.id_json, "shutting_down",
                                             "server is shutting down"));
    return sub;
  }
  if (queue_.size() >= static_cast<std::size_t>(settings_.queue_limit)) {
    registry_->counter("serve.rejected").add(0, 1);
    sub.response = ready_future(render_error(
        job->req.id_json, "overloaded",
        "queue full (" + std::to_string(queue_.size()) +
            " pending); retry later"));
    return sub;
  }
  job->seq = next_seq_++;
  registry_->counter("serve.requests").add(0, 1);
  sub.response = job->promise.get_future().share();
  queue_.push_back(std::move(job));
  depth_.store(queue_.size(), std::memory_order_relaxed);
  registry_->gauge("serve.queue_depth")
      .set(0, static_cast<double>(queue_.size()));
  cv_.notify_all();
  return sub;
}

void SimService::pause_dispatch() {
  std::lock_guard<std::mutex> lk(m_);
  paused_ = true;
}

void SimService::resume_dispatch() {
  {
    std::lock_guard<std::mutex> lk(m_);
    paused_ = false;
  }
  cv_.notify_all();
}

void SimService::shutdown() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
    paused_ = false;  // shutdown drains even a paused queue
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void SimService::dispatcher_main() {
  std::vector<std::unique_ptr<Job>> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      batch.swap(queue_);
      depth_.store(0, std::memory_order_relaxed);
      registry_->gauge("serve.queue_depth").set(0, 0.0);
    }
    process_batch(batch);
    batch.clear();
  }
}

void SimService::finish_job(Job& job, const std::string& response) {
  // Latency covers submit -> response ready; the histogram is
  // dispatcher-written only (single writer, shard 0).
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - job.t0)
          .count();
  latency_->record(0, seconds);
  if (settings_.tracer != nullptr) {
    settings_.tracer->record(0, "serve.request", job.ts_ns,
                             settings_.tracer->now_ns() - job.ts_ns,
                             /*point=*/-1,
                             static_cast<std::int64_t>(job.seq));
  }
  job.promise.set_value(response);
}

void SimService::process_batch(std::vector<std::unique_ptr<Job>>& batch) {
  TraceSpan batch_span(settings_.tracer, 0, "serve.batch", /*point=*/-1,
                       static_cast<std::int64_t>(batch.size()));
  registry_->counter("serve.batches").add(0, 1);

  // Group jobs by semantic key, preserving first-seen order. The
  // Application of each group's representative is interned so repeated
  // workloads hit the same object (and with it the OfflineCache).
  struct Group {
    const GraphStore::Entry* entry = nullptr;
    std::string app_name;  // the *request's* name, used for rendering
    std::vector<Job*> jobs;
  };
  std::vector<Group> groups;
  std::unordered_map<std::string, std::size_t> index;
  phase_.store("intern", std::memory_order_relaxed);
  for (auto& job : batch) {
    Application app;
    try {
      ProfScope intern_scope(&prof_, ph_intern_, 0);
      app = build_app(job->req);
    } catch (const std::exception& e) {
      registry_->counter("serve.bad_requests").add(0, 1);
      finish_job(*job, render_error(job->req.id_json, "bad_request",
                                    e.what()));
      continue;
    }
    std::string app_name = app.name;
    const GraphStore::Entry* entry = nullptr;
    {
      ProfScope intern_scope(&prof_, ph_intern_, 0);
      entry = &store_.intern(std::move(app));
    }
    ProfScope group_scope(&prof_, ph_group_, 0);
    const std::string key = group_key(job->req, entry->id, app_name);
    auto [it, inserted] = index.try_emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{entry, std::move(app_name), {}});
    }
    groups[it->second].jobs.push_back(job.get());
  }
  registry_->counter("serve.graph_interned").add(0, store_.misses() -
                                                        last_interned_);
  last_interned_ = store_.misses();

  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    Group& g = groups[gi];
    if (g.jobs.size() > 1) {
      registry_->counter("serve.coalesced")
          .add(0, static_cast<std::uint64_t>(g.jobs.size() - 1));
    }
    TraceSpan group_span(settings_.tracer, 0, "serve.group",
                         static_cast<std::int64_t>(gi),
                         static_cast<std::int64_t>(g.jobs.size()));
    const SimRequest& req = g.jobs.front()->req;
    std::string response_error;
    std::string experiment_json;
    double elapsed_ms = 0.0;
    try {
      const Application& app = g.entry->app;
      ExperimentConfig cfg;
      cfg.cpus = req.cpus;
      cfg.table = table_of(req.table);
      cfg.runs = req.runs;
      cfg.seed = req.seed;
      cfg.threads = settings_.threads;
      cfg.batch = settings_.batch;
      cfg.dedup = settings_.dedup;
      cfg.heuristic = req.heuristic;
      if (!req.schemes.empty()) cfg.schemes = req.schemes;
      cfg.collect_metrics = true;
      cfg.registry = registry_;
      cfg.tracer = settings_.tracer;
      cfg.prof = &prof_;
      cfg.progress = &progress_;

      SweepPoint point;
      double x = 0.0;
      std::string x_name;
      phase_.store("simulate", std::memory_order_relaxed);
      {
        ProfScope sim_scope(&prof_, ph_simulate_, 0);
        SimTime deadline{};
        if (req.deadline_ms) {
          deadline = SimTime::from_ms(*req.deadline_ms);
          x = *req.deadline_ms;
          x_name = "deadline_ms";
        } else {
          // Same derivation as sweep_load: one canonical analysis per
          // (graph, cpus, budget, heuristic), shared across requests via
          // the long-lived cache. Export the get() delta ourselves — only
          // run_point's internal gets are exported by the harness.
          const std::uint64_t h0 = cache_.hits();
          const std::uint64_t m0 = cache_.misses();
          const CanonicalAnalysis& canon = cache_.get(
              app, CanonicalOptions{
                       cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
                       cfg.heuristic});
          registry_->counter("offline.cache.hits").add(0, cache_.hits() - h0);
          registry_->counter("offline.cache.misses")
              .add(0, cache_.misses() - m0);
          deadline = deadline_from_load(canon.worst_makespan(), req.load);
          x = req.load;
          x_name = "load";
        }

        const auto sim0 = std::chrono::steady_clock::now();
        point = run_point(app, cfg, deadline, x, &cache_);
        elapsed_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - sim0)
                         .count();
      }

      // Render the exact document `paserta_cli sweep --json` prints for
      // this point (minus its trailing newline) — the bit-identity
      // contract pinned by test_serve.
      phase_.store("respond", std::memory_order_relaxed);
      ProfScope render_scope(&prof_, ph_respond_, 0);
      JsonExportOptions jopt;
      jopt.experiment_id = g.app_name + "-" + x_name;
      jopt.caption = "paserta_cli sweep";
      jopt.x_name = x_name;
      experiment_json = sweep_to_json({point}, jopt);
    } catch (const std::exception& e) {
      response_error = e.what();
    }

    ProfScope respond_scope(&prof_, ph_respond_, 0);
    for (Job* job : g.jobs) {
      if (!response_error.empty()) {
        registry_->counter("serve.errors").add(0, 1);
        finish_job(*job, render_error(job->req.id_json, "internal",
                                      response_error));
      } else {
        registry_->counter("serve.responses").add(0, 1);
        finish_job(*job,
                   render_result(job->req.id_json, g.entry->content_hash,
                                 static_cast<std::uint64_t>(g.jobs.size() - 1),
                                 elapsed_ms, experiment_json));
      }
    }
  }
  phase_.store("idle", std::memory_order_relaxed);
}

}  // namespace paserta
