// Tests for the figure registry: the exact experiment configurations the
// paper's figures use, plus small-scale end-to-end smoke runs asserting
// the qualitative shapes EXPERIMENTS.md reports.
#include <gtest/gtest.h>

#include "common/error.h"
#include "harness/figures.h"

namespace paserta {
namespace {

TEST(Figures, RegistryComplete) {
  const auto figs = paper_figures();
  ASSERT_EQ(figs.size(), 6u);
  EXPECT_EQ(figs[0].id, "fig4a");
  EXPECT_EQ(figs[5].id, "fig6b");
  for (const auto& f : figs) {
    EXPECT_EQ(f.config.runs, 1000);  // the paper's count
    EXPECT_EQ(f.config.overheads.speed_change_time, SimTime::from_us(5));
    EXPECT_EQ(f.config.overheads.speed_compute_cycles, 300u);
    EXPECT_EQ(f.xs.size(), 19u);  // 0.1..1.0 step 0.05
  }
}

TEST(Figures, LookupById) {
  const FigureDef f = paper_figure("fig5b", 10);
  EXPECT_EQ(f.config.cpus, 6);
  EXPECT_EQ(f.config.table.name(), "IntelXScale");
  EXPECT_EQ(f.config.runs, 10);
  EXPECT_FALSE(f.is_alpha_sweep());
  EXPECT_THROW(paper_figure("fig9z"), Error);
}

TEST(Figures, AlphaFiguresUseSyntheticAtLoad09) {
  const FigureDef f = paper_figure("fig6a");
  EXPECT_TRUE(f.is_alpha_sweep());
  EXPECT_DOUBLE_EQ(f.fixed_load, 0.9);
  EXPECT_EQ(figure_workload(f).name, "synthetic_fig3");
  EXPECT_EQ(figure_workload(paper_figure("fig4a")).name, "atr");
}

TEST(Figures, Fig4aShapeSmoke) {
  // Scaled-down fig4a: the two headline shapes must already show at 60
  // runs — (1) energy dips then rises with load; (2) zero misses.
  FigureDef f = paper_figure("fig4a", 60);
  f.xs = {0.1, 0.4, 1.0};
  const auto points = run_figure(f);
  ASSERT_EQ(points.size(), 3u);
  const double at01 = points[0].of(Scheme::GSS).norm_energy.mean();
  const double at04 = points[1].of(Scheme::GSS).norm_energy.mean();
  const double at10 = points[2].of(Scheme::GSS).norm_energy.mean();
  EXPECT_GT(at01, at04);  // the counter-intuitive dip
  EXPECT_LT(at04, at10);  // and the rise
  for (const auto& p : points)
    for (const auto& st : p.stats) EXPECT_EQ(st.deadline_misses, 0u);
}

TEST(Figures, Fig6bSpmEqualsNpmSmoke) {
  // The paper's §5.2 remark: on XScale at load 0.9, SPM degenerates to
  // NPM (900 MHz desire rounds up to f_max), normalized energy exactly 1.
  FigureDef f = paper_figure("fig6b", 20);
  f.xs = {0.5};
  const auto points = run_figure(f);
  EXPECT_NEAR(points[0].of(Scheme::SPM).norm_energy.mean(), 1.0, 1e-9);
  // While the dynamic schemes save substantially.
  EXPECT_LT(points[0].of(Scheme::GSS).norm_energy.mean(), 0.8);
}

TEST(Figures, Fig5SavesLessThanFig4) {
  // 6 CPUs save less than 2 at like load (limited parallelism, forced
  // idleness) — the paper's processor-count claim.
  FigureDef f4 = paper_figure("fig4a", 40);
  FigureDef f5 = paper_figure("fig5a", 40);
  f4.xs = f5.xs = {0.6};
  const double e2 = run_figure(f4)[0].of(Scheme::GSS).norm_energy.mean();
  const double e6 = run_figure(f5)[0].of(Scheme::GSS).norm_energy.mean();
  EXPECT_LT(e2, e6);
}

}  // namespace
}  // namespace paserta
