#include "common/version.h"

// The definitions arrive as per-source compile definitions from
// src/CMakeLists.txt so only this translation unit rebuilds when the
// stamp changes.
#ifndef PASERTA_GIT_REV
#define PASERTA_GIT_REV "unknown"
#endif
#ifndef PASERTA_BUILD_TYPE
#define PASERTA_BUILD_TYPE "unknown"
#endif

namespace paserta {

const char* build_git_rev() { return PASERTA_GIT_REV; }

const char* build_type() { return PASERTA_BUILD_TYPE; }

std::string build_version_string() {
  return std::string("paserta ") + build_git_rev() + " (" + build_type() + ")";
}

}  // namespace paserta
