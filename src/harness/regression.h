// Golden-baseline regression checking for experiment results.
//
// Every simulation in paserta is bit-deterministic given (seed, config),
// so experiment outputs can be pinned exactly: a baseline file records the
// normalized energy and switch counts of a sweep; `check_baseline`
// replays and diffs. Guards the scheduler's numeric behaviour against
// accidental drift during refactors (tests/baselines/*.csv, regenerable
// with PASERTA_UPDATE_BASELINES=1).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace paserta {

/// Serializes sweep results as a baseline (CSV:
/// x,scheme,norm_energy,speed_changes,misses — full double precision).
void write_baseline(std::ostream& os, const std::vector<SweepPoint>& points);

struct BaselineDiff {
  bool ok = true;
  std::vector<std::string> mismatches;
};

/// Compares fresh results against a stored baseline. `tolerance` is the
/// allowed relative deviation of the means (0 pins them bit-exactly,
/// modulo the textual round-trip, which preserves doubles exactly).
BaselineDiff check_baseline(std::istream& baseline,
                            const std::vector<SweepPoint>& points,
                            double tolerance = 0.0);

}  // namespace paserta
