file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_idle.dir/bench_ablation_idle.cpp.o"
  "CMakeFiles/bench_ablation_idle.dir/bench_ablation_idle.cpp.o.d"
  "bench_ablation_idle"
  "bench_ablation_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
