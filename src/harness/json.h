// JSON export of sweep results, for plotting pipelines.
//
// Emits a self-describing document: experiment metadata plus one object
// per point with per-scheme statistics (mean, ci95, min/max, switches,
// misses). No external JSON dependency; the emitter escapes strings and
// prints numbers round-trippably.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace paserta {

struct JsonExportOptions {
  std::string experiment_id;   // e.g. "fig4a"
  std::string caption;
  std::string x_name = "x";    // "load" or "alpha"
};

void write_sweep_json(std::ostream& os, const std::vector<SweepPoint>& points,
                      const JsonExportOptions& options);

std::string sweep_to_json(const std::vector<SweepPoint>& points,
                          const JsonExportOptions& options);

}  // namespace paserta
