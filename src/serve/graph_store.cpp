#include "serve/graph_store.h"

#include "graph/canonical_hash.h"

namespace paserta {

const GraphStore::Entry& GraphStore::intern(Application&& app) {
  const std::uint64_t hash = graph_content_hash(app.graph);
  std::vector<std::uint64_t> ordered = graph_ordered_form(app.graph);
  auto& bucket = by_hash_[hash];
  for (const auto& entry : bucket) {
    if (entry->ordered_form == ordered) {
      ++hits_;
      return *entry;
    }
  }
  ++misses_;
  auto entry = std::make_unique<Entry>();
  entry->id = static_cast<std::uint32_t>(count_++);
  entry->content_hash = hash;
  entry->ordered_form = std::move(ordered);
  entry->app = std::move(app);
  bucket.push_back(std::move(entry));
  return *bucket.back();
}

}  // namespace paserta
