#include "harness/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace paserta {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream oss;
  oss << std::setprecision(12) << v;
  return oss.str();
}

// ---- writer -----------------------------------------------------------

void JsonWriter::newline_indent(std::size_t depth) {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < depth * static_cast<std::size_t>(indent_); ++i)
    os_ << ' ';
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    PASERTA_ASSERT(!wrote_top_, "JsonWriter: multiple top-level values");
    wrote_top_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.kind == '{') {
    // Values inside objects are introduced by key(); the separator was
    // already emitted there.
    PASERTA_ASSERT(top.key_pending, "JsonWriter: value in object needs key()");
    top.key_pending = false;
    return;
  }
  if (top.has_items) os_ << ',';
  top.has_items = true;
  newline_indent(stack_.size());
}

JsonWriter& JsonWriter::key(const std::string& k) {
  PASERTA_ASSERT(!stack_.empty() && stack_.back().kind == '{',
                 "JsonWriter: key() outside object");
  Frame& top = stack_.back();
  PASERTA_ASSERT(!top.key_pending, "JsonWriter: key() twice without value");
  if (top.has_items) os_ << ',';
  top.has_items = true;
  newline_indent(stack_.size());
  os_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  top.key_pending = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Frame{'{'});
  os_ << '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PASERTA_ASSERT(!stack_.empty() && stack_.back().kind == '{' &&
                     !stack_.back().key_pending,
                 "JsonWriter: unbalanced end_object()");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent(stack_.size());
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Frame{'['});
  os_ << '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PASERTA_ASSERT(!stack_.empty() && stack_.back().kind == '[',
                 "JsonWriter: unbalanced end_array()");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent(stack_.size());
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  before_value();
  os_ << '"' << json_escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) { return value(std::string(s)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << json_num(v);
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  before_value();
  os_ << json;
  return *this;
}

// ---- sweep export -----------------------------------------------------

namespace {

inline std::string escape(const std::string& s) { return json_escape(s); }
inline std::string num(double v) { return json_num(v); }

void write_stat(std::ostream& os, const char* key, const RunningStat& st) {
  os << "\"" << key << "\":{\"mean\":" << num(st.mean())
     << ",\"ci95\":" << num(st.ci95_halfwidth()) << ",\"min\":"
     << num(st.min()) << ",\"max\":" << num(st.max()) << ",\"n\":"
     << st.count() << "}";
}

}  // namespace

void write_sweep_json(std::ostream& os, const std::vector<SweepPoint>& points,
                      const JsonExportOptions& opt) {
  os << "{\"experiment\":\"" << escape(opt.experiment_id) << "\","
     << "\"caption\":\"" << escape(opt.caption) << "\","
     << "\"x_name\":\"" << escape(opt.x_name) << "\",\"points\":[";
  for (std::size_t p = 0; p < points.size(); ++p) {
    const SweepPoint& pt = points[p];
    if (p) os << ",";
    os << "{\"" << escape(opt.x_name) << "\":" << num(pt.x)
       << ",\"deadline_ms\":" << num(pt.deadline.ms())
       << ",\"worst_makespan_ms\":" << num(pt.worst_makespan.ms()) << ",";
    write_stat(os, "npm_energy_joules", pt.npm_energy);
    os << ",\"schemes\":{";
    for (std::size_t s = 0; s < pt.stats.size(); ++s) {
      const SchemeStats& st = pt.stats[s];
      if (s) os << ",";
      os << "\"" << to_string(st.scheme) << "\":{";
      write_stat(os, "norm_energy", st.norm_energy);
      os << ",";
      write_stat(os, "speed_changes", st.speed_changes);
      os << ",";
      write_stat(os, "finish_frac", st.finish_frac);
      os << ",\"deadline_misses\":" << st.deadline_misses
         << ",\"verify_failures\":" << st.verify_failures << "}";
    }
    os << "}}";
  }
  os << "]}";
}

std::string sweep_to_json(const std::vector<SweepPoint>& points,
                          const JsonExportOptions& options) {
  std::ostringstream oss;
  write_sweep_json(oss, points, options);
  return oss.str();
}

// ---- parser -----------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  PASERTA_REQUIRE(v != nullptr, "JSON key '" << key << "' not found");
  return *v;
}

namespace {

/// Recursive-descent parser over the whole input string. Depth-limited so
/// adversarial nesting cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value(0);
    skip_ws();
    PASERTA_REQUIRE(pos_ == text_.size(),
                    "trailing garbage after JSON document at byte " << pos_);
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const char* what) const {
    PASERTA_REQUIRE(false, "malformed JSON: " << what << " at byte " << pos_);
    std::abort();  // unreachable
  }

  /// number = [-] int [frac] [exp]; int = "0" / digit1-9 *digit;
  /// frac = "." 1*digit; exp = ("e"/"E") ["+"/"-"] 1*digit
  static bool valid_number_token(const std::string& t) {
    std::size_t i = 0;
    const auto digit = [&](std::size_t k) {
      return k < t.size() && t[k] >= '0' && t[k] <= '9';
    };
    if (i < t.size() && t[i] == '-') ++i;
    if (!digit(i)) return false;
    if (t[i] == '0') ++i;
    else
      while (digit(i)) ++i;
    if (i < t.size() && t[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
      ++i;
      if (i < t.size() && (t[i] == '+' || t[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == t.size();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        // RFC 8259: control characters must arrive escaped. Untrusted
        // input (the serve daemon) leans on this check.
        if (static_cast<unsigned char>(c) < 0x20) {
          --pos_;
          fail("unescaped control character in string");
        }
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are rare in
          // our documents; a lone surrogate is passed through encoded).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      ++pos_;
      v.type = JsonValue::Type::Object;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = string_body();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.type = JsonValue::Type::Array;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.array.push_back(value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::String;
      v.str = string_body();
      return v;
    }
    if (consume_literal("true")) {
      v.type = JsonValue::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type = JsonValue::Type::Bool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return v;
    if (c == '-' || (c >= '0' && c <= '9')) {
      const std::size_t start = pos_;
      if (peek() == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      const std::string tok = text_.substr(start, pos_ - start);
      // Strict RFC 8259 number grammar before handing the token to
      // strtod: rejects the lenient shapes strtod would accept ("01",
      // "1.", "1e", hex), which matters once input is untrusted.
      if (!valid_number_token(tok)) {
        pos_ = start;
        fail("malformed number");
      }
      v.type = JsonValue::Type::Number;
      v.number = std::strtod(tok.c_str(), nullptr);
      return v;
    }
    fail("unexpected character");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace paserta
