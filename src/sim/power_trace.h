// Power-vs-time reconstruction from a simulation trace.
//
// Builds the piecewise-constant system power curve P(t) over [0, deadline]
// of one run: per processor — execution power at the task's level, overhead
// power (speed computation at the current level, transitions at the higher
// of the two levels involved), idle power elsewhere. Integrating the curve
// reproduces the engine's energy ledger exactly, which doubles as an
// independent check of the accounting (tested).
#pragma once

#include <iosfwd>
#include <vector>

#include "core/offline.h"
#include "graph/program.h"
#include "power/power_model.h"
#include "sim/engine.h"

namespace paserta {

/// One segment of the piecewise-constant power curve.
struct PowerSegment {
  SimTime begin{};
  SimTime end{};
  Energy watts = 0.0;  // total system power during [begin, end)

  SimTime duration() const { return end - begin; }
};

/// The full curve, segments contiguous over [0, deadline].
struct PowerTrace {
  std::vector<PowerSegment> segments;

  /// Integral of the curve (joules).
  Energy total_energy() const;
  /// Highest instantaneous power.
  Energy peak_watts() const;
  /// Energy within [from, to) (clipped to the curve).
  Energy energy_between(SimTime from, SimTime to) const;
};

/// Reconstructs the curve. Requires the run's trace (SimResult::trace).
PowerTrace build_power_trace(const Application& app, const OfflineResult& off,
                             const PowerModel& pm, const Overheads& overheads,
                             const SimResult& result);

/// CSV dump: time_ms,watts (one row per segment start, plus the final end).
void write_power_trace_csv(std::ostream& os, const PowerTrace& trace);

}  // namespace paserta
