// Graphviz export of AND/OR graphs (tasks as circles, AND as diamonds,
// OR as double circles, matching the paper's Figure 1 notation).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace paserta {

/// Writes `g` in DOT format. Computation nodes are labelled
/// "name\nwcet/acet" (milliseconds); OR fork edges carry probabilities.
void write_dot(std::ostream& os, const AndOrGraph& g,
               const std::string& title = "andor");

std::string to_dot(const AndOrGraph& g, const std::string& title = "andor");

}  // namespace paserta
