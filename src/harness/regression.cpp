#include "harness/regression.h"

#include <cmath>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace paserta {
namespace {

std::string exact(double v) {
  std::ostringstream oss;
  oss << std::setprecision(17) << v;
  return oss.str();
}

struct Key {
  std::string x;
  std::string scheme;
  bool operator<(const Key& o) const {
    if (x != o.x) return x < o.x;
    return scheme < o.scheme;
  }
};

struct Row {
  double norm_energy = 0.0;
  double speed_changes = 0.0;
  std::uint32_t misses = 0;
};

std::map<Key, Row> rows_of(const std::vector<SweepPoint>& points) {
  std::map<Key, Row> rows;
  for (const SweepPoint& p : points) {
    for (const SchemeStats& st : p.stats) {
      rows[Key{exact(p.x), to_string(st.scheme)}] =
          Row{st.norm_energy.mean(), st.speed_changes.mean(),
              st.deadline_misses};
    }
  }
  return rows;
}

}  // namespace

void write_baseline(std::ostream& os, const std::vector<SweepPoint>& points) {
  os << "x,scheme,norm_energy,speed_changes,misses\n";
  for (const auto& [key, row] : rows_of(points)) {
    os << key.x << "," << key.scheme << "," << exact(row.norm_energy) << ","
       << exact(row.speed_changes) << "," << row.misses << "\n";
  }
}

BaselineDiff check_baseline(std::istream& baseline,
                            const std::vector<SweepPoint>& points,
                            double tolerance) {
  BaselineDiff diff;
  const std::map<Key, Row> fresh = rows_of(points);
  std::map<Key, Row> stored;

  std::string line;
  std::getline(baseline, line);  // header
  PASERTA_REQUIRE(line.rfind("x,scheme,", 0) == 0,
                  "not a baseline file (bad header)");
  int lineno = 1;
  while (std::getline(baseline, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream iss(line);
    std::string x, scheme, e, sw, misses;
    PASERTA_REQUIRE(std::getline(iss, x, ',') &&
                        std::getline(iss, scheme, ',') &&
                        std::getline(iss, e, ',') &&
                        std::getline(iss, sw, ',') &&
                        std::getline(iss, misses, ','),
                    "baseline line " << lineno << " malformed");
    stored[Key{x, scheme}] = Row{std::stod(e), std::stod(sw),
                                 static_cast<std::uint32_t>(
                                     std::stoul(misses))};
  }

  auto close = [&](double a, double b) {
    if (a == b) return true;
    const double denom = std::max(std::fabs(a), std::fabs(b));
    return denom > 0.0 && std::fabs(a - b) / denom <= tolerance;
  };

  for (const auto& [key, want] : stored) {
    const auto it = fresh.find(key);
    if (it == fresh.end()) {
      diff.ok = false;
      diff.mismatches.push_back("missing result for x=" + key.x +
                                " scheme=" + key.scheme);
      continue;
    }
    const Row& got = it->second;
    if (!close(got.norm_energy, want.norm_energy))
      diff.mismatches.push_back(
          "x=" + key.x + " " + key.scheme + ": norm_energy " +
          exact(got.norm_energy) + " != baseline " +
          exact(want.norm_energy));
    if (!close(got.speed_changes, want.speed_changes))
      diff.mismatches.push_back("x=" + key.x + " " + key.scheme +
                                ": speed_changes drifted");
    if (got.misses != want.misses)
      diff.mismatches.push_back("x=" + key.x + " " + key.scheme +
                                ": deadline misses changed");
  }
  for (const auto& [key, unused] : fresh) {
    (void)unused;
    if (!stored.contains(key)) {
      diff.mismatches.push_back("baseline lacks x=" + key.x +
                                " scheme=" + key.scheme);
    }
  }
  diff.ok = diff.mismatches.empty();
  return diff;
}

}  // namespace paserta
