# Empty dependencies file for paserta.
# This may be replaced when dependencies are built.
