#include "apps/random_app.h"

#include <algorithm>
#include <string>

#include "common/error.h"

namespace paserta::apps {
namespace {

class Generator {
 public:
  Generator(Rng& rng, const RandomAppConfig& cfg) : rng_(rng), cfg_(cfg) {}

  Program program(int depth) {
    Program p;
    const int n_segs =
        1 + static_cast<int>(rng_.next_below(
                static_cast<std::uint64_t>(cfg_.max_segments)));
    for (int s = 0; s < n_segs; ++s) {
      const double roll = rng_.next_double();
      // The first segment is always a section so every program has real
      // work before its first speculation point.
      if (s > 0 && depth < cfg_.max_depth && roll < cfg_.branch_prob) {
        add_branch(p, depth);
      } else if (s > 0 && depth < cfg_.max_depth &&
                 roll < cfg_.branch_prob + cfg_.loop_prob) {
        add_loop(p, depth);
      } else {
        p.section(section());
      }
    }
    return p;
  }

 private:
  SectionSpec section() {
    SectionSpec sec;
    const int n = 1 + static_cast<int>(rng_.next_below(
                          static_cast<std::uint64_t>(cfg_.max_section_tasks)));
    for (int i = 0; i < n; ++i) sec.tasks.push_back(task());
    for (std::size_t i = 0; i < sec.tasks.size(); ++i) {
      for (std::size_t j = i + 1; j < sec.tasks.size(); ++j) {
        if (rng_.next_double() < cfg_.intra_edge_prob)
          sec.edges.push_back({i, j});
      }
    }
    return sec;
  }

  TaskSpec task() {
    const auto span = static_cast<double>((cfg_.wcet_max - cfg_.wcet_min).ps);
    const SimTime wcet =
        cfg_.wcet_min +
        SimTime{static_cast<std::int64_t>(rng_.next_double() * span)};
    const double alpha =
        cfg_.alpha_min + rng_.next_double() * (cfg_.alpha_max - cfg_.alpha_min);
    SimTime acet{static_cast<std::int64_t>(
        alpha * static_cast<double>(wcet.ps) + 0.5)};
    acet = std::clamp(acet, SimTime{1}, wcet);
    return TaskSpec{"t" + std::to_string(task_counter_++), wcet, acet};
  }

  void add_branch(Program& p, int depth) {
    const int n_alts =
        2 + static_cast<int>(rng_.next_below(
                static_cast<std::uint64_t>(cfg_.max_branch_alts - 1)));
    std::vector<double> probs = random_probs(n_alts);
    std::vector<std::pair<double, Program>> alts;
    for (int a = 0; a < n_alts; ++a) {
      if (rng_.next_double() < cfg_.empty_alt_prob) {
        alts.emplace_back(probs[static_cast<std::size_t>(a)], Program{});
      } else {
        alts.emplace_back(probs[static_cast<std::size_t>(a)],
                          program(depth + 1));
      }
    }
    p.branch("b" + std::to_string(branch_counter_++), std::move(alts));
  }

  void add_loop(Program& p, int depth) {
    const int iters =
        1 + static_cast<int>(rng_.next_below(
                static_cast<std::uint64_t>(cfg_.max_loop_iters)));
    p.loop("l" + std::to_string(branch_counter_++), program(depth + 1),
           random_probs(iters));
  }

  std::vector<double> random_probs(int n) {
    std::vector<double> probs(static_cast<std::size_t>(n));
    double sum = 0.0;
    for (double& x : probs) {
      x = 0.05 + rng_.next_double();
      sum += x;
    }
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < probs.size(); ++i) {
      probs[i] /= sum;
      acc += probs[i];
    }
    probs.back() = 1.0 - acc;  // exact sum of 1 despite rounding
    return probs;
  }

  Rng& rng_;
  const RandomAppConfig& cfg_;
  int task_counter_ = 0;
  int branch_counter_ = 0;
};

}  // namespace

Program random_program(Rng& rng, const RandomAppConfig& config) {
  PASERTA_REQUIRE(config.max_segments >= 1 && config.max_section_tasks >= 1,
                  "random app config needs positive sizes");
  PASERTA_REQUIRE(config.max_branch_alts >= 2,
                  "branches need at least two alternatives");
  PASERTA_REQUIRE(config.wcet_min > SimTime::zero() &&
                      config.wcet_min <= config.wcet_max,
                  "invalid WCET range");
  PASERTA_REQUIRE(config.alpha_min > 0.0 &&
                      config.alpha_min <= config.alpha_max &&
                      config.alpha_max <= 1.0,
                  "invalid alpha range");
  Generator gen(rng, config);
  return gen.program(0);
}

Application random_application(Rng& rng, const RandomAppConfig& config,
                               const std::string& name) {
  return build_application(name, random_program(rng, config));
}

}  // namespace paserta::apps
