#include "core/list_sched.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/error.h"

namespace paserta {

const char* to_string(ListHeuristic h) {
  switch (h) {
    case ListHeuristic::LongestTaskFirst: return "LTF";
    case ListHeuristic::ShortestTaskFirst: return "STF";
    case ListHeuristic::InsertionOrder: return "FIFO";
  }
  return "?";
}

namespace {

/// Ready-queue key: earlier readiness first, then the heuristic's priority
/// (encoded as a signed duration so one comparator serves all), then id.
struct ReadyKey {
  SimTime ready_time;
  std::int64_t priority;  // smaller dispatches first
  std::uint32_t id;

  bool operator<(const ReadyKey& o) const {
    if (ready_time != o.ready_time) return ready_time < o.ready_time;
    if (priority != o.priority) return priority < o.priority;
    return id < o.id;
  }
};

std::int64_t priority_of(SimTime duration, ListHeuristic h) {
  switch (h) {
    case ListHeuristic::LongestTaskFirst: return -duration.ps;
    case ListHeuristic::ShortestTaskFirst: return duration.ps;
    case ListHeuristic::InsertionOrder: return 0;
  }
  return 0;
}

}  // namespace

SectionSchedule ltf_schedule(const AndOrGraph& g,
                             std::span<const NodeId> members, int cpus,
                             const std::function<SimTime(NodeId)>& duration,
                             ListHeuristic heuristic) {
  PASERTA_REQUIRE(cpus >= 1, "ltf_schedule needs at least one processor");
  PASERTA_REQUIRE(!members.empty(), "ltf_schedule on empty section");

  SectionSchedule out;
  out.dispatch_order.reserve(members.size());

  // Membership + per-member in-degree restricted to the section.
  std::unordered_map<std::uint32_t, std::uint32_t> indeg;
  indeg.reserve(members.size());
  for (NodeId m : members) indeg[m.value] = 0;
  for (NodeId m : members) {
    for (NodeId p : g.node(m).preds) {
      if (indeg.contains(p.value)) ++indeg[m.value];
    }
  }

  std::set<ReadyKey> ready;
  for (NodeId m : members) {
    if (indeg[m.value] == 0)
      ready.insert(ReadyKey{SimTime::zero(),
                          priority_of(duration(m), heuristic), m.value});
  }

  // Busy processors: completion events (finish time, cpu, node).
  struct Completion {
    SimTime finish;
    int cpu;
    std::uint32_t node;
    bool operator>(const Completion& o) const {
      if (finish != o.finish) return finish > o.finish;
      return node > o.node;
    }
  };
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      running;

  // Idle processor pool, lowest id first for determinism.
  std::priority_queue<int, std::vector<int>, std::greater<>> idle;
  for (int c = 0; c < cpus; ++c) idle.push(c);

  SimTime now = SimTime::zero();
  std::size_t scheduled = 0;

  auto release_successors = [&](std::uint32_t node, SimTime at) {
    for (NodeId s : g.node(NodeId{node}).succs) {
      auto it = indeg.find(s.value);
      if (it == indeg.end()) continue;  // successor outside the section
      PASERTA_ASSERT(it->second > 0, "in-degree underflow in list scheduler");
      if (--it->second == 0)
        ready.insert(ReadyKey{
            at, priority_of(duration(NodeId{s.value}), heuristic), s.value});
    }
  };

  while (scheduled < members.size()) {
    // Dispatch every ready task we can at the current time.
    while (!ready.empty() && !idle.empty() &&
           ready.begin()->ready_time <= now) {
      const ReadyKey key = *ready.begin();
      ready.erase(ready.begin());
      const NodeId id{key.id};
      const SimTime dur = duration(id);

      SectionSchedule::Item item;
      item.start = now;
      item.finish = now + dur;
      out.dispatch_order.push_back(id);
      ++scheduled;

      if (dur.is_zero()) {
        // Dummies borrow an idle CPU for zero time: they dispatch only when
        // a processor is free (matching the online engine) but do not
        // occupy it.
        item.cpu = -1;
        out.items.emplace(id.value, item);
        out.makespan = std::max(out.makespan, item.finish);
        release_successors(id.value, now);
      } else {
        const int cpu = idle.top();
        idle.pop();
        item.cpu = cpu;
        out.items.emplace(id.value, item);
        running.push(Completion{item.finish, cpu, id.value});
      }
    }

    if (scheduled == members.size()) break;

    // Nothing more dispatchable now: advance to the next completion.
    PASERTA_REQUIRE(!running.empty(),
                    "section contains a dependence cycle or dangling edge");
    const Completion done = running.top();
    running.pop();
    now = done.finish;
    idle.push(done.cpu);
    out.makespan = std::max(out.makespan, done.finish);
    release_successors(done.node, now);
  }

  // Drain remaining completions for the true makespan.
  while (!running.empty()) {
    out.makespan = std::max(out.makespan, running.top().finish);
    running.pop();
  }
  return out;
}

}  // namespace paserta
