#include "graph/text_format.h"

#include <cmath>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "graph/program_impl.h"

namespace paserta {
namespace {

// --------------------------------------------------------------- tokenizer

struct Line {
  int number = 0;
  std::vector<std::string> tokens;

  const std::string& keyword() const { return tokens.front(); }
};

std::vector<Line> tokenize(std::istream& in) {
  std::vector<Line> lines;
  std::string raw;
  int number = 0;
  while (std::getline(in, raw)) {
    ++number;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream iss(raw);
    Line line;
    line.number = number;
    std::string tok;
    while (iss >> tok) line.tokens.push_back(tok);
    if (!line.tokens.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

[[noreturn]] void syntax_error(const Line& line, const std::string& what) {
  PASERTA_REQUIRE(false, "workload line " << line.number << ": " << what);
  std::abort();  // unreachable
}

double parse_number(const Line& line, const std::string& tok,
                    const char* what) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    syntax_error(line, std::string("invalid ") + what + " '" + tok + "'");
  }
  if (pos != tok.size())
    syntax_error(line, std::string("invalid ") + what + " '" + tok + "'");
  return v;
}

// ------------------------------------------------------------------ parser

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  ParsedWorkload parse() {
    ParsedWorkload out;
    out.name = "workload";
    if (!eof() && peek().keyword() == "app") {
      const Line& line = next();
      if (line.tokens.size() != 2)
        syntax_error(line, "expected: app <name>");
      out.name = line.tokens[1];
    }
    out.program = parse_program(/*stop_at_end=*/false);
    return out;
  }

 private:
  bool eof() const { return pos_ >= lines_.size(); }
  const Line& peek() const { return lines_[pos_]; }
  const Line& next() { return lines_[pos_++]; }

  /// Parses segments until EOF (top level) or a matching 'end'.
  Program parse_program(bool stop_at_end) {
    Program p;
    while (!eof()) {
      const Line& line = peek();
      const std::string& kw = line.keyword();
      if (kw == "end") {
        if (!stop_at_end) syntax_error(line, "unexpected 'end'");
        next();
        return p;
      }
      if (kw == "task") {
        const Line& l = next();
        if (l.tokens.size() != 4)
          syntax_error(l, "expected: task <name> <wcet_ms> <acet_ms>");
        p.task(l.tokens[1], SimTime::from_ms(parse_number(l, l.tokens[2], "wcet")),
               SimTime::from_ms(parse_number(l, l.tokens[3], "acet")));
      } else if (kw == "section") {
        p.section(parse_section(next()));
      } else if (kw == "branch") {
        parse_branch(p);
      } else if (kw == "loop") {
        parse_loop(p);
      } else {
        syntax_error(line, "unknown keyword '" + kw + "'");
      }
    }
    if (stop_at_end)
      PASERTA_REQUIRE(false, "workload ended inside a block (missing 'end')");
    return p;
  }

  SectionSpec parse_section(const Line& header) {
    if (header.tokens.size() != 1)
      syntax_error(header, "expected: section");
    SectionSpec sec;
    std::map<std::string, std::size_t> index;
    while (true) {
      if (eof())
        syntax_error(header, "'section' without matching 'end'");
      const Line& l = next();
      const std::string& kw = l.keyword();
      if (kw == "end") break;
      if (kw == "task") {
        if (l.tokens.size() != 4)
          syntax_error(l, "expected: task <name> <wcet_ms> <acet_ms>");
        if (index.contains(l.tokens[1]))
          syntax_error(l, "duplicate task '" + l.tokens[1] + "' in section");
        index[l.tokens[1]] = sec.tasks.size();
        sec.tasks.push_back(
            {l.tokens[1], SimTime::from_ms(parse_number(l, l.tokens[2], "wcet")),
             SimTime::from_ms(parse_number(l, l.tokens[3], "acet"))});
      } else if (kw == "edge") {
        if (l.tokens.size() != 3)
          syntax_error(l, "expected: edge <from> <to>");
        const auto from = index.find(l.tokens[1]);
        const auto to = index.find(l.tokens[2]);
        if (from == index.end())
          syntax_error(l, "edge references unknown task '" + l.tokens[1] + "'");
        if (to == index.end())
          syntax_error(l, "edge references unknown task '" + l.tokens[2] + "'");
        sec.edges.push_back({from->second, to->second});
      } else {
        syntax_error(l, "unexpected '" + kw + "' inside section");
      }
    }
    return sec;
  }

  void parse_branch(Program& p) {
    const Line header = next();
    if (header.tokens.size() != 2)
      syntax_error(header, "expected: branch <name>");
    std::vector<std::pair<double, Program>> alts;
    while (true) {
      if (eof())
        syntax_error(header, "'branch' without matching 'end'");
      const Line& l = next();
      if (l.keyword() == "end") break;
      if (l.keyword() != "alt")
        syntax_error(l, "expected 'alt <probability>' or 'end' in branch");
      if (l.tokens.size() != 2)
        syntax_error(l, "expected: alt <probability>");
      const double prob = parse_number(l, l.tokens[1], "probability");
      alts.emplace_back(prob, parse_program(/*stop_at_end=*/true));
    }
    if (alts.empty()) syntax_error(header, "branch needs alternatives");
    p.branch(header.tokens[1], std::move(alts));
  }

  void parse_loop(Program& p) {
    const Line header = next();
    if (header.tokens.size() < 3)
      syntax_error(header,
                   "expected: loop <name> [collapse] <p1> <p2> ...");
    std::size_t first_prob = 2;
    LoopMode mode = LoopMode::Unroll;
    if (header.tokens[2] == "collapse") {
      mode = LoopMode::Collapse;
      first_prob = 3;
    }
    std::vector<double> probs;
    for (std::size_t i = first_prob; i < header.tokens.size(); ++i)
      probs.push_back(parse_number(header, header.tokens[i], "probability"));
    if (probs.empty()) syntax_error(header, "loop needs probabilities");
    Program body = parse_program(/*stop_at_end=*/true);
    p.loop(header.tokens[1], std::move(body), std::move(probs), mode);
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------------ writer

/// Shortest decimal that parses back to exactly the same double, so that
/// serialize -> parse -> serialize is a fixed point and probability sums
/// survive the round-trip bit-exactly.
std::string fmt_exact(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::ostringstream oss;
    oss << static_cast<std::int64_t>(v);
    return oss.str();
  }
  for (int precision = 6; precision <= 17; ++precision) {
    std::ostringstream oss;
    oss << std::setprecision(precision) << v;
    if (std::stod(oss.str()) == v) return oss.str();
  }
  std::ostringstream oss;
  oss << std::setprecision(17) << v;
  return oss.str();
}

std::string fmt_ms(SimTime t) { return fmt_exact(t.ms()); }

std::string fmt_prob(double p) { return fmt_exact(p); }

void write_program(std::ostream& os, const Program& p, int indent);

void write_section(std::ostream& os, const SectionSpec& sec, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  if (sec.tasks.size() == 1 && sec.edges.empty()) {
    const TaskSpec& t = sec.tasks[0];
    os << pad << "task " << t.name << " " << fmt_ms(t.wcet) << " "
       << fmt_ms(t.acet) << "\n";
    return;
  }
  os << pad << "section\n";
  for (const TaskSpec& t : sec.tasks)
    os << pad << "  task " << t.name << " " << fmt_ms(t.wcet) << " "
       << fmt_ms(t.acet) << "\n";
  for (const auto& [from, to] : sec.edges)
    os << pad << "  edge " << sec.tasks[from].name << " "
       << sec.tasks[to].name << "\n";
  os << pad << "end\n";
}

void write_program(std::ostream& os, const Program& p, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  for (const auto& seg : p.impl().segs) {
    if (const auto* sec = std::get_if<SectionSpec>(&seg)) {
      write_section(os, *sec, indent);
    } else if (const auto* br = std::get_if<Program::Impl::BranchSeg>(&seg)) {
      os << pad << "branch " << br->name << "\n";
      for (const auto& [prob, prog] : br->alts) {
        os << pad << "  alt " << fmt_prob(prob) << "\n";
        write_program(os, prog, indent + 4);
        os << pad << "  end\n";
      }
      os << pad << "end\n";
    } else {
      const auto& lp = std::get<Program::Impl::LoopSeg>(seg);
      os << pad << "loop " << lp.name;
      if (lp.mode == LoopMode::Collapse) os << " collapse";
      for (double prob : lp.iter_prob) os << " " << fmt_prob(prob);
      os << "\n";
      write_program(os, lp.body, indent + 2);
      os << pad << "end\n";
    }
  }
}

}  // namespace

ParsedWorkload parse_workload(std::istream& in) {
  Parser parser(tokenize(in));
  ParsedWorkload out = parser.parse();
  PASERTA_REQUIRE(!out.program.empty(), "workload defines no segments");
  return out;
}

ParsedWorkload parse_workload_string(const std::string& text) {
  std::istringstream iss(text);
  return parse_workload(iss);
}

Application load_application(std::istream& in) {
  ParsedWorkload w = parse_workload(in);
  return build_application(std::move(w.name), w.program);
}

Application load_application_string(const std::string& text) {
  std::istringstream iss(text);
  return load_application(iss);
}

void write_workload(std::ostream& os, const std::string& name,
                    const Program& program) {
  os << "app " << name << "\n";
  write_program(os, program, 0);
}

std::string workload_to_string(const std::string& name,
                               const Program& program) {
  std::ostringstream oss;
  write_workload(oss, name, program);
  return oss.str();
}

}  // namespace paserta
