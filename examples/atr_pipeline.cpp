// ATR pipeline example: the paper's motivating workload end-to-end.
//
//   $ ./atr_pipeline [frames]
//
// Processes a stream of frames through the automated-target-recognition
// application on a 2-CPU XScale platform under GSS, printing a per-frame
// energy/deadline report and a final summary comparing all schemes —
// the view a system integrator would want before picking a scheme.
#include <cstdlib>
#include <iostream>

#include "apps/atr.h"
#include "common/stats.h"
#include "core/offline.h"
#include "sim/engine.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::max(1, std::atoi(argv[1])) : 20;

  apps::AtrConfig atr_cfg;  // 4 ROIs max, alpha = 0.9 (measured)
  const Application app = apps::build_atr(atr_cfg);
  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;

  OfflineOptions opt;
  opt.cpus = 2;
  opt.overhead_budget = ovh.worst_case_budget(pm.table());
  const SimTime w = canonical_worst_makespan(app, opt.cpus,
                                             opt.overhead_budget);
  opt.deadline = SimTime{static_cast<std::int64_t>(w.ps / 0.6)};  // load 0.6
  const OfflineResult off = analyze_offline(app, opt);

  std::cout << "ATR: " << app.graph.task_count() << " tasks, worst case "
            << to_string(w) << ", frame deadline " << to_string(off.deadline())
            << " (load 0.6), 2x Intel XScale\n\n";

  // Per-frame log under GSS.
  Rng rng(1);
  std::cout << "frame  rois  finish      energy_mJ  switches\n";
  std::vector<RunScenario> scenarios;
  for (int f = 0; f < frames; ++f) {
    const RunScenario sc = draw_scenario(app.graph, rng);
    scenarios.push_back(sc);
    const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
    int rois = -1;
    for (const TaskRecord& rec : r.trace)
      if (rec.chosen_alt >= 0) rois = rec.chosen_alt + 1;
    std::printf("%4d   %3d   %-10s  %8.3f   %u%s\n", f, rois,
                to_string(r.finish_time).c_str(), r.total_energy() * 1e3,
                r.speed_changes, r.deadline_met ? "" : "  DEADLINE MISS");
  }

  // Scheme comparison over the same frames.
  std::cout << "\nscheme  mean_norm_energy  mean_switches  misses\n";
  std::vector<double> npm(scenarios.size());
  for (std::size_t f = 0; f < scenarios.size(); ++f)
    npm[f] = simulate(app, off, pm, ovh, Scheme::NPM, scenarios[f])
                 .total_energy();
  for (Scheme s : {Scheme::SPM, Scheme::GSS, Scheme::SS1, Scheme::SS2,
                   Scheme::AS}) {
    RunningStat norm, sw;
    int misses = 0;
    for (std::size_t f = 0; f < scenarios.size(); ++f) {
      const SimResult r = simulate(app, off, pm, ovh, s, scenarios[f]);
      norm.add(r.total_energy() / npm[f]);
      sw.add(static_cast<double>(r.speed_changes));
      if (!r.deadline_met) ++misses;
    }
    std::printf("%-7s %10.4f        %8.2f       %d\n", to_string(s),
                norm.mean(), sw.mean(), misses);
  }
  return 0;
}
