// Throughput of the Monte-Carlo harness on the paper's Fig. 4 workload
// (ATR on the 2-CPU Transmeta platform), emitted as JSON on stdout:
//
//   point  runs/sec of one run_point call (load 0.5) per thread count —
//          the PR-1 hot-loop metric, unchanged;
//   batch  runs/sec of the same point, single-threaded, across a batch-size
//          ladder (1 = scalar engine forced, 0 = auto) — the batched
//          engine's speedup over its scalar oracle, gated by bench_compare;
//   dedup  runs/sec of the ATR point at alpha = 1 (discrete scenario
//          space), single-threaded, dedup off vs on across a run-count
//          ladder — the scenario-dedup cache's speedup and hit rate, gated
//          by bench_compare --dedup-floor;
//   sweep  points/sec of a whole 10-point load sweep per thread count,
//          pooled (persistent pool, chunked claiming, point overlap, one
//          canonical offline analysis) vs the pre-pool baseline (fresh
//          thread spawn/join and a fresh offline analysis per point), with
//          speedup and scaling efficiency;
//   serve  requests/sec of the resident daemon (src/serve) on loopback,
//          one ATR request line replayed by a ladder of concurrent NDJSON
//          clients — measures the full service path (socket, parse,
//          coalescing, cross-request cache, response render). The recorded
//          cache hit rate is gated by bench_compare --serve-cache-floor.
//
// Traces are off, so the loop runs with zero steady-state allocation (one
// SimWorkspace per worker slot). Sweep runs-per-point defaults to runs/10:
// the sweep mode exists to measure orchestration overhead, which the
// paper's sweep shape exposes when points are short.
//
// Usage: bench_throughput [runs] [threads] [--out=FILE] [--reps=N]
//   runs     Monte-Carlo runs per point-mode measurement (default 2000)
//   threads  max worker count sampled (default: hardware threads, min 4)
//   --out    append the measurement to the history array in FILE (the repo
//            keeps a committed history in BENCH_throughput.json). Each
//            entry carries {git_rev, dirty, date} provenance (dirty = the
//            working tree had uncommitted changes); a legacy single-object
//            file is preserved as the first entry.
//   --reps   repetitions per timed section, best kept (default 3):
//            contention noise is one-sided, so the fastest repetition is
//            the cleanest estimate and keeps history entries comparable
//            when the host is busy.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/offline.h"
#include "harness/figures.h"
#include "harness/throughput.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/service.h"
#include "sim/scenario.h"

namespace {

constexpr const char* kUsage =
    "bench_throughput [runs] [threads] [--out=FILE] [--reps=N]";

/// Short git revision of the working tree, "unknown" when git (or the
/// repository) is unavailable — the bench must work from a tarball too.
std::string git_revision() {
  FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {};
  std::string rev;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) rev = buf;
  const int status = pclose(pipe);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r'))
    rev.pop_back();
  if (status != 0 || rev.empty()) return "unknown";
  return rev;
}

/// True when the working tree has uncommitted changes (a measurement from
/// a dirty tree cannot be attributed to its git_rev). Clean when git is
/// unavailable — the revision is already "unknown" then.
bool git_dirty() {
  FILE* pipe = popen("git status --porcelain 2>/dev/null", "r");
  if (pipe == nullptr) return false;
  char buf[256];
  bool dirty = false;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    if (buf[0] != '\0' && buf[0] != '\n') dirty = true;
  }
  const int status = pclose(pipe);
  return status == 0 && dirty;
}

/// Current UTC date, ISO "YYYY-MM-DD".
std::string utc_date() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  if (gmtime_r(&now, &tm) == nullptr) return "unknown";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday);
  return buf;
}

std::vector<int> thread_ladder(int max_threads) {
  std::vector<int> counts;
  for (int t : {1, 2, 4, 8, max_threads}) {
    if (t <= max_threads &&
        (counts.empty() || counts.back() < t))
      counts.push_back(t);
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paserta;

  std::string out_path;
  int reps = 3;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
      if (out_path.empty()) {
        std::cerr << "error: --out needs a file path\nusage: " << kUsage
                  << "\n";
        return 2;
      }
    } else if (arg.rfind("--reps=", 0) == 0) {
      arg = arg.substr(7);
      reps = benchutil::positive_int_arg(arg.c_str(), "reps", kUsage);
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int runs =
      positional.size() > 0
          ? benchutil::positive_int_arg(positional[0], "runs", kUsage)
          : 2000;
  int threads =
      positional.size() > 1
          ? benchutil::positive_int_arg(positional[1], "threads", kUsage)
          : std::max(4, static_cast<int>(std::thread::hardware_concurrency()));

  const FigureDef fig = paper_figure("fig4a", runs);
  const Application app = figure_workload(fig);
  ExperimentConfig cfg = fig.config;
  // Only the summary is consumed: leave verify_traces off so the engine
  // records no traces and the hot loop is allocation-free.
  cfg.verify_traces = false;

  const double load = 0.5;
  const SimTime w = canonical_worst_makespan(
      app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
      cfg.heuristic);
  const SimTime deadline{
      static_cast<std::int64_t>(std::ceil(static_cast<double>(w.ps) / load))};

  // Same thread ladder as the sweep section ({1, 2, 4, 8, max} filtered to
  // the sampled maximum): scaling regressions at intermediate counts must
  // be visible in the history, not just the 1-vs-max endpoints.
  const ThroughputReport point_report = measure_throughput(
      app, cfg, deadline, thread_ladder(threads), fig.id + "@load=0.5", reps);

  // Batched-vs-scalar engine section: the same point, single-threaded, at a
  // batch-size ladder (1 = scalar engine forced, 0 = auto). Outputs are
  // bit-identical across the ladder, so the ratio is pure engine overhead;
  // bench_compare gates the auto-vs-scalar speedup against a floor.
  const BatchThroughputReport batch_report = measure_batch_throughput(
      app, cfg, deadline, {1, 8, 32, 0}, fig.id + "@load=0.5", reps);

  // Scenario-dedup section: the same ATR graph at alpha = 1 (ACET = WCET,
  // so OR forks are the only randomness and the scenario space collapses
  // to a handful of fork outcomes), single-threaded, dedup off vs. on
  // across a run-count ladder. WCETs are untouched, so the deadline is the
  // same; replay is bit-identical, so the ratio is pure scheduling win.
  // Dedup pays nothing on the gaussian fig4a workload above (virtually
  // every scenario is distinct there) — this section measures the regime
  // the cache exists for, and bench_compare gates its largest-runs speedup.
  Application dedup_app = app;
  assign_alpha(dedup_app.graph, 1.0);
  const DedupThroughputReport dedup_report =
      measure_dedup_throughput(dedup_app, cfg, deadline, {1000, 10000, 100000},
                               fig.id + "-alpha1.0@load=0.5", reps);

  // Sweep mode: the paper's 10-point §5.1 load grid with short points, so
  // orchestration (thread churn, repeated offline analyses, point
  // serialization) dominates and the executor's win is visible.
  ExperimentConfig sweep_cfg = cfg;
  sweep_cfg.runs = std::max(20, runs / 100);
  const std::vector<double> loads = sweep_range(0.1, 1.0, 0.1);
  const SweepThroughputReport sweep_report =
      measure_sweep_throughput(app, sweep_cfg, loads, thread_ladder(threads),
                               fig.id + "@loads=0.1..1.0", reps);

  // Pool balance of one instrumented sweep at the max thread count: how
  // evenly the chunks (and the time inside them) spread over the slots.
  // Collected through a scoped registry, so it cannot perturb the timed
  // measurements above (which run with observability off).
  ExperimentConfig balance_cfg = sweep_cfg;
  balance_cfg.threads = threads;
  const std::string pool_doc =
      measure_pool_balance_json(app, balance_cfg, loads);

  // Serve section: a resident daemon in-process on an ephemeral loopback
  // port, driven with one @atr request line (short runs — the section
  // measures the service path, not the Monte-Carlo loop) by a ladder of
  // concurrent clients. After the warm-up every request is a cache hit,
  // which is exactly what the serve-cache gate pins.
  const int serve_runs = std::max(20, runs / 100);
  ServeThroughputReport serve_report;
  {
    SimService service{ServeSettings{}};
    SimServer server(service, ServerSettings{});
    const std::string request_line =
        "{\"graph\":\"@atr\",\"runs\":" + std::to_string(serve_runs) +
        ",\"load\":0.5}";
    serve_report = measure_serve_throughput(service, server, request_line,
                                            {1, 2, 4}, /*requests_per_client=*/
                                            8, "atr@load=0.5", serve_runs);
    server.stop();
  }

  const std::string doc = "{\n\"point\": " + throughput_to_json(point_report) +
                          ",\n\"batch\": " +
                          batch_throughput_to_json(batch_report) +
                          ",\n\"dedup\": " +
                          dedup_throughput_to_json(dedup_report) +
                          ",\n\"sweep\": " +
                          sweep_throughput_to_json(sweep_report) +
                          ",\n\"serve\": " +
                          serve_throughput_to_json(serve_report) +
                          ",\n\"pool\": " + pool_doc + "\n}\n";
  std::cout << doc;
  if (!out_path.empty()) {
    // Append to the measurement history rather than overwrite: the file
    // keeps one {git_rev, dirty, date, point, sweep, pool} entry per
    // recorded run.
    std::string existing;
    {
      std::ifstream in(out_path);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        existing = buf.str();
      }
    }
    const std::string entry =
        throughput_history_entry(git_revision(), git_dirty(), utc_date(), doc);
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "error: cannot write '" << out_path << "'\n";
      return 1;
    }
    out << throughput_history_append(existing, entry);
  }
  return 0;
}
