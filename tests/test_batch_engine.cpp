// Batched-engine bit-identity suite: simulate_batch (sim/batch_engine.h)
// must reproduce the scalar engine run-for-run — energies, finish times,
// traces, counters and the attribution ledger, bitwise — and run_point
// must produce byte-identical points for every batch size. The suite
// cross-validates on randomized AND/OR applications (apps/random_app.h),
// so the lockstep dispatch loop is exercised across graph shapes no
// hand-written workload covers: nested OR forks, loops, empty
// alternatives, wide sections. Batch sizes deliberately include odd
// remainders (runs not divisible by the lane count) and lane counts
// larger than the run count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/random_app.h"
#include "core/offline.h"
#include "harness/experiment.h"
#include "obs/metrics.h"
#include "power/power_model.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/sampler.h"

namespace paserta {
namespace {

Application random_app(std::uint64_t seed) {
  apps::RandomAppConfig cfg;
  cfg.max_segments = 5;
  cfg.max_section_tasks = 6;
  Rng rng(seed);
  return apps::random_application(rng, cfg, "rnd" + std::to_string(seed));
}

// TaskRecord has padding, so never memcmp — field by field.
void expect_trace_eq(const std::vector<TaskRecord>& a,
                     const std::vector<TaskRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "trace record " << i);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].cpu, b[i].cpu);
    EXPECT_EQ(a[i].eo, b[i].eo);
    EXPECT_EQ(a[i].dispatch_time.ps, b[i].dispatch_time.ps);
    EXPECT_EQ(a[i].exec_start.ps, b[i].exec_start.ps);
    EXPECT_EQ(a[i].finish.ps, b[i].finish.ps);
    EXPECT_EQ(a[i].level, b[i].level);
    EXPECT_EQ(a[i].level_before, b[i].level_before);
    EXPECT_EQ(a[i].switched, b[i].switched);
    EXPECT_EQ(a[i].chosen_alt, b[i].chosen_alt);
  }
}

void expect_counters_eq(const SimCounters& a, const SimCounters& b) {
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.or_fires, b.or_fires);
  EXPECT_EQ(a.speed_changes, b.speed_changes);
  EXPECT_EQ(a.spec_picks, b.spec_picks);
  EXPECT_EQ(a.greedy_picks, b.greedy_picks);
  EXPECT_EQ(a.reclaimed_slack_ps, b.reclaimed_slack_ps);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.busy_ps, b.busy_ps);
  EXPECT_EQ(a.compute_ps, b.compute_ps);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.idle_ps, b.idle_ps);
}

void expect_stat_eq(const RunningStat& a, const RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_point_eq(const SweepPoint& a, const SweepPoint& b) {
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.deadline.ps, b.deadline.ps);
  expect_stat_eq(a.npm_energy, b.npm_energy);
  EXPECT_EQ(a.degenerate_runs, b.degenerate_runs);
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "scheme " << i);
    EXPECT_EQ(a.stats[i].scheme, b.stats[i].scheme);
    expect_stat_eq(a.stats[i].norm_energy, b.stats[i].norm_energy);
    expect_stat_eq(a.stats[i].speed_changes, b.stats[i].speed_changes);
    expect_stat_eq(a.stats[i].finish_frac, b.stats[i].finish_frac);
    expect_stat_eq(a.stats[i].busy_frac, b.stats[i].busy_frac);
    expect_stat_eq(a.stats[i].overhead_frac, b.stats[i].overhead_frac);
    expect_stat_eq(a.stats[i].idle_frac, b.stats[i].idle_frac);
    EXPECT_EQ(a.stats[i].deadline_misses, b.stats[i].deadline_misses);
    EXPECT_EQ(a.stats[i].verify_failures, b.stats[i].verify_failures);
  }
  ASSERT_EQ(a.metrics.enabled(), b.metrics.enabled());
  if (a.metrics.enabled()) {
    expect_counters_eq(a.metrics.npm, b.metrics.npm);
    ASSERT_EQ(a.metrics.schemes.size(), b.metrics.schemes.size());
    for (std::size_t i = 0; i < a.metrics.schemes.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "scheme counters " << i);
      expect_counters_eq(a.metrics.schemes[i], b.metrics.schemes[i]);
    }
  }
}

// Engine level: simulate_batch vs the scalar workspace loop on the same
// pre-drawn scenarios, every scheme, with traces, audit and per-lane
// counters on. Any divergence in the lockstep dispatch order, the
// division-free duration math or the ledger fold fails here with the
// exact field named.
TEST(BatchEngine, MatchesScalarEngineOnRandomApps) {
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  constexpr std::size_t kLanes = 17;  // odd: exercises divergence retirement

  for (std::uint64_t app_seed : {1u, 7u, 13u}) {
    const Application app = random_app(app_seed);
    OfflineOptions oo;
    oo.cpus = 2;
    oo.overhead_budget = ovh.worst_case_budget(pm.table());
    const SimTime w = canonical_worst_makespan(app, oo.cpus,
                                               oo.overhead_budget,
                                               oo.heuristic);
    oo.deadline = SimTime{2 * w.ps};  // load 0.5
    const OfflineResult off = analyze_offline(app, oo);

    const ScenarioSampler sampler(app.graph);
    ScenarioBatch batch;
    batch.ensure(kLanes, app.graph.size());
    std::vector<RunScenario> scenarios(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) {
      // Two draws from identically seeded streams: the slab fill must
      // consume the stream exactly like the per-run draw.
      Rng a(Rng::stream_seed(app_seed, l));
      Rng b(Rng::stream_seed(app_seed, l));
      sampler.draw_into(a, scenarios[l]);
      sampler.draw_into(b, batch, l);
    }

    for (Scheme scheme : {Scheme::NPM, Scheme::SPM, Scheme::GSS, Scheme::SS1,
                          Scheme::SS2, Scheme::AS}) {
      SCOPED_TRACE(testing::Message()
                   << "app seed " << app_seed << " scheme "
                   << static_cast<int>(scheme));
      // Scalar oracle: one policy reset, one workspace, per-run loop.
      auto policy = make_policy(scheme);
      policy->reset(off, pm);
      SimWorkspace sws;
      SimOptions so;
      so.record_trace = true;
      so.audit = true;
      std::vector<SimResult> want(kLanes);
      std::vector<SimCounters> want_cells(kLanes);
      for (std::size_t l = 0; l < kLanes; ++l) {
        so.counters = &want_cells[l];
        want[l] = simulate(app, off, pm, ovh, *policy, scenarios[l], sws, so);
      }

      BatchWorkspace bws;
      BatchSimOptions bo;
      bo.record_trace = true;
      bo.audit = true;
      std::vector<SimCounters> got_cells(kLanes);
      bo.lane_cells = got_cells.data();
      std::vector<SimResult> got(kLanes);
      simulate_batch(app, off, pm, ovh, scheme, PolicyOptions{}, batch,
                     kLanes, bws, got.data(), bo);

      for (std::size_t l = 0; l < kLanes; ++l) {
        SCOPED_TRACE(testing::Message() << "lane " << l);
        EXPECT_EQ(want[l].busy_energy, got[l].busy_energy);
        EXPECT_EQ(want[l].overhead_energy, got[l].overhead_energy);
        EXPECT_EQ(want[l].idle_energy, got[l].idle_energy);
        EXPECT_EQ(want[l].finish_time.ps, got[l].finish_time.ps);
        EXPECT_EQ(want[l].speed_changes, got[l].speed_changes);
        EXPECT_EQ(want[l].dispatched, got[l].dispatched);
        EXPECT_EQ(want[l].deadline_met, got[l].deadline_met);
        expect_trace_eq(want[l].trace, got[l].trace);
        expect_counters_eq(want_cells[l], got_cells[l]);
      }
    }
  }
}

// Harness level: run_point output (stats, metrics, degenerate counts) is
// identical for every batch size against the forced-scalar reference,
// including lane counts that leave odd remainders (50 % 3, 50 % 8) and
// one larger than the run count. Audit and metrics stay on, so the
// counter export paths (shared cell vs per-lane cells) are both covered.
TEST(BatchEngine, RunPointMatchesScalarAcrossBatchSizes) {
  constexpr int kRuns = 50;
  for (std::uint64_t app_seed : {2u, 11u}) {
    const Application app = random_app(app_seed);
    ExperimentConfig cfg;
    cfg.runs = kRuns;
    cfg.seed = 99;
    cfg.audit = true;
    cfg.collect_metrics = true;
    MetricsRegistry ref_reg;
    cfg.registry = &ref_reg;
    const SimTime w = canonical_worst_makespan(
        app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
        cfg.heuristic);
    const SimTime deadline{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / 0.5))};

    cfg.batch = 1;  // forced scalar
    ASSERT_EQ(resolved_batch_lanes(cfg), 0);
    const SweepPoint ref = run_point(app, cfg, deadline, 0.5);

    for (int b : {0, 3, 8, 64, kRuns}) {
      SCOPED_TRACE(testing::Message()
                   << "app seed " << app_seed << " batch " << b);
      ExperimentConfig bcfg = cfg;
      bcfg.batch = b;
      MetricsRegistry reg;
      bcfg.registry = &reg;
      EXPECT_GT(resolved_batch_lanes(bcfg), 0);
      expect_point_eq(ref, run_point(app, bcfg, deadline, 0.5));
    }
  }
}

// verify_traces needs the scalar engine's completeness traversal, so such
// configurations must resolve to the scalar path no matter what batch
// size was requested — silently degrading verification would be worse
// than the lost batching.
TEST(BatchEngine, ScalarOnlyFacilitiesForceScalarResolution) {
  ExperimentConfig cfg;
  cfg.batch = 64;
  EXPECT_EQ(resolved_batch_lanes(cfg), 64);
  cfg.verify_traces = true;
  EXPECT_EQ(resolved_batch_lanes(cfg), 0);
  cfg.verify_traces = false;
  cfg.batch = 0;
  EXPECT_GT(resolved_batch_lanes(cfg), 1);  // auto resolves to real lanes
  cfg.batch = 1;
  EXPECT_EQ(resolved_batch_lanes(cfg), 0);
}

}  // namespace
}  // namespace paserta
