// Rendering sweep results as the tables/series the paper's figures plot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

namespace paserta {

/// One row per (x, scheme): normalized energy, CI, speed changes, misses.
Table sweep_table(const std::vector<SweepPoint>& points,
                  const std::string& x_name);

/// Wide format: one row per x, one normalized-energy column per scheme —
/// the exact series layout of the paper's figures.
Table sweep_series(const std::vector<SweepPoint>& points,
                   const std::string& x_name);

/// Writes both the figure header and the CSV series to `os`.
void print_figure(std::ostream& os, const std::string& figure_id,
                  const std::string& caption,
                  const std::vector<SweepPoint>& points,
                  const std::string& x_name);

}  // namespace paserta
