// Figure 5: normalized energy vs load for ATR on 6-processor systems,
// alpha = 0.9, overhead = 5 us. More processors force more synchronization
// idleness, so every dynamic scheme saves less than on 2 CPUs.
#include "bench_util.h"
#include "harness/figures.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv);
  for (const char* id : {"fig5a", "fig5b"}) {
    const FigureDef f = paper_figure(id, runs);
    benchutil::emit("Fig." + f.id.substr(3),
                    f.caption + ", runs=" + std::to_string(runs),
                    run_figure(f), f.x_name);
  }
  return 0;
}
