#include "sim/trace_stats.h"

#include <algorithm>

#include "common/error.h"

namespace paserta {

const LevelResidency& TraceStats::dominant_level() const {
  PASERTA_REQUIRE(!residency.empty(), "no residency data");
  return *std::max_element(residency.begin(), residency.end(),
                           [](const LevelResidency& a, const LevelResidency& b) {
                             return a.busy_time < b.busy_time;
                           });
}

TraceStats analyze_trace(const Application& app, const OfflineResult& off,
                         const PowerModel& pm, const SimResult& result) {
  TraceStats st;
  st.speed_changes = result.speed_changes;
  st.busy_energy = result.busy_energy;
  st.overhead_energy = result.overhead_energy;
  st.idle_energy = result.idle_energy;

  st.residency.resize(pm.table().size());
  for (std::size_t i = 0; i < pm.table().size(); ++i) {
    st.residency[i].level = i;
    st.residency[i].freq = pm.table().level(i).freq;
  }

  SimTime slack_sum{};
  for (const TaskRecord& rec : result.trace) {
    const Node& n = app.graph.node(rec.node);
    if (n.is_dummy()) continue;
    ++st.tasks_executed;
    const SimTime exec = rec.finish - rec.exec_start;
    const SimTime ovh = rec.exec_start - rec.dispatch_time;
    st.busy_time += exec;
    st.overhead_time += ovh;
    auto& res = st.residency.at(rec.level);
    res.busy_time += exec;
    res.energy += pm.busy_energy(rec.level, exec);
    slack_sum += off.lst(rec.node) - rec.dispatch_time;
  }

  if (st.busy_time > SimTime::zero()) {
    for (auto& r : st.residency)
      r.busy_fraction = static_cast<double>(r.busy_time.ps) /
                        static_cast<double>(st.busy_time.ps);
  }
  if (st.tasks_executed > 0)
    st.mean_claimed_slack =
        SimTime{slack_sum.ps / static_cast<std::int64_t>(st.tasks_executed)};

  const SimTime window{off.deadline().ps * off.cpus()};
  const SimTime occupied = st.busy_time + st.overhead_time;
  st.idle_time = window > occupied ? window - occupied : SimTime::zero();
  st.utilization = window.ps > 0 ? static_cast<double>(st.busy_time.ps) /
                                       static_cast<double>(window.ps)
                                 : 0.0;
  return st;
}

}  // namespace paserta
