// Phase-profiler suite (obs/prof.h, DESIGN.md §17) and its determinism
// contract: attaching a Profiler to the harness must not change a single
// output bit of a sweep at any thread count or batch size, the fallback
// clock must produce the same phase structure as the hardware path (only
// the hardware columns go to zero), and the per-(phase, slot) cells must
// merge deterministically. Carries the prof_identity ctest label, which CI
// also runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "apps/synthetic.h"
#include "harness/experiment.h"
#include "harness/json.h"
#include "harness/pool.h"
#include "harness/report.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace paserta {
namespace {

// ------------------------------------------------------------ unit layer

TEST(Profiler, PhaseRegistrationIsStableAndOrdered) {
  Profiler prof(Profiler::Mode::kFallback);
  const int a = prof.phase("alpha", /*top_level=*/true);
  const int b = prof.phase("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(prof.phase("alpha"), a);  // find-by-name, not re-register
  EXPECT_EQ(prof.phase("beta"), b);
  EXPECT_FALSE(prof.hardware());

  const std::vector<ProfPhaseTotals> snap = prof.snapshot();
  ASSERT_EQ(snap.size(), 2u);  // registration order is snapshot order
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_TRUE(snap[0].top_level);
  EXPECT_EQ(snap[1].name, "beta");
  EXPECT_FALSE(snap[1].top_level);
  EXPECT_EQ(snap[0].count, 0u);
  EXPECT_EQ(snap[0].ns, 0u);
}

TEST(Profiler, NullProfilerScopeIsNoOp) {
  // Call sites stay unconditional: a null profiler must cost one pointer
  // test and record nothing.
  ProfScope scope(nullptr, 0, 0);
}

TEST(Profiler, AddNsAccumulatesAcrossSlots) {
  Profiler prof(Profiler::Mode::kFallback);
  const int p = prof.phase("work");
  prof.add_ns(p, 0, 100, /*count=*/2);
  prof.add_ns(p, 5, 50);
  prof.add_ns(p, Profiler::kSlots - 1, 7);

  const std::vector<ProfPhaseTotals> snap = prof.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 4u);
  EXPECT_EQ(snap[0].ns, 157u);
  EXPECT_EQ(snap[0].cycles, 0u);
}

TEST(Profiler, ScopeChargesWallTimeOnFallbackClock) {
  Profiler prof(Profiler::Mode::kFallback);
  const int p = prof.phase("region", /*top_level=*/true);
  {
    ProfScope scope(&prof, p, 0);
    // Enough work that even a coarse monotonic clock moves.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 200000; ++i) sink += static_cast<std::uint64_t>(i);
  }
  const std::vector<ProfPhaseTotals> snap = prof.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 1u);
  EXPECT_GT(snap[0].ns, 0u);
  // Forced fallback: every hardware column stays zero.
  EXPECT_EQ(snap[0].cycles, 0u);
  EXPECT_EQ(snap[0].instructions, 0u);
  EXPECT_EQ(snap[0].cache_refs, 0u);
  EXPECT_EQ(snap[0].cache_misses, 0u);
  EXPECT_EQ(snap[0].branch_misses, 0u);
}

TEST(Profiler, ExportDeltaNeverDoubleCounts) {
  Profiler prof(Profiler::Mode::kFallback);
  const int p = prof.phase("serve.parse");
  prof.add_ns(p, 0, 100, 3);

  MetricsRegistry reg;
  prof.export_delta_to(reg);
  EXPECT_EQ(reg.counter("prof.serve.parse.ns").value(), 100u);
  EXPECT_EQ(reg.counter("prof.serve.parse.count").value(), 3u);

  // A second export with no new work adds nothing (periodic scrapes).
  prof.export_delta_to(reg);
  EXPECT_EQ(reg.counter("prof.serve.parse.ns").value(), 100u);
  EXPECT_EQ(reg.counter("prof.serve.parse.count").value(), 3u);

  prof.add_ns(p, 2, 50);
  prof.export_delta_to(reg);
  EXPECT_EQ(reg.counter("prof.serve.parse.ns").value(), 150u);
  EXPECT_EQ(reg.counter("prof.serve.parse.count").value(), 4u);
}

TEST(Profiler, MergeAcrossPoolSlotsIsExact) {
  // One writer per slot (the shard contract): the per-slot sums — and
  // therefore the snapshot merge, which walks slots in fixed order — are
  // exact for any interleaving. Runs under TSan via the prof_identity
  // label together with concurrent snapshot() reads.
  Profiler prof(Profiler::Mode::kFallback);
  const int p = prof.phase("chunk");
  WorkerPool pool(3);
  const int chunks = 400;
  pool.parallel_chunks(chunks, 4, [&](int chunk, int slot) {
    ProfScope scope(&prof, p, slot);
    prof.add_ns(p, slot, 10, /*count=*/0);  // +10 ns, scope adds the count
    if (chunk % 32 == 0) {
      const std::vector<ProfPhaseTotals> live = prof.snapshot();
      ASSERT_EQ(live.size(), 1u);  // live reads see a consistent table
    }
  });

  const std::vector<ProfPhaseTotals> snap = prof.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, static_cast<std::uint64_t>(chunks));
  EXPECT_GE(snap[0].ns, static_cast<std::uint64_t>(chunks) * 10u);
}

TEST(Profiler, SamplesStayBoundedWithValidSlots) {
  Profiler prof(Profiler::Mode::kFallback);
  const int p = prof.phase("tick");
  for (int i = 0; i < 1000; ++i) ProfScope scope(&prof, p, 0);
  const std::vector<ProfSample> samples = prof.samples();
  EXPECT_LE(samples.size(),
            static_cast<std::size_t>(Profiler::kMaxSamples));
  for (const ProfSample& s : samples) {
    EXPECT_GE(s.slot, 0);
    EXPECT_LT(s.slot, Profiler::kSlots);
  }
}

// --------------------------------------------- harness: identity contract

ExperimentConfig prof_config(int runs, int threads) {
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.runs = runs;
  cfg.threads = threads;
  cfg.seed = 20260808;
  return cfg;
}

/// Full-fidelity serialization of a sweep (CSV + JSON export), the same
/// byte-equality pin the observability suite uses.
std::string serialize_sweep(const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  sweep_table(points, "load").write_csv(os);
  JsonExportOptions jopt;
  jopt.experiment_id = "prof-identity";
  jopt.x_name = "load";
  write_sweep_json(os, points, jopt);
  return os.str();
}

TEST(ProfIdentity, SweepBitIdenticalWithProfilingOnOrOff) {
  const Application app = apps::build_synthetic();
  const std::vector<double> loads = {0.4, 0.8};

  const std::string baseline =
      serialize_sweep(sweep_load(app, prof_config(24, 1), loads));

  for (int threads : {1, 2, 4}) {
    for (int batch : {1, 0}) {
      // kAuto exercises the hardware path where the host grants it and
      // the latched fallback everywhere else; identity must hold in both
      // regimes.
      Profiler prof;
      ExperimentConfig cfg = prof_config(24, threads);
      cfg.batch = batch;
      cfg.prof = &prof;
      const std::string bytes = serialize_sweep(sweep_load(app, cfg, loads));
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " batch=" << batch);
      EXPECT_EQ(bytes, baseline);

      // The profiler itself did fire: the simulate phase saw every run.
      std::uint64_t simulate_count = 0, total_ns = 0;
      for (const ProfPhaseTotals& p : prof.snapshot()) {
        if (p.name == "harness.simulate") simulate_count = p.count;
        total_ns += p.ns;
      }
      EXPECT_GT(simulate_count, 0u);
      EXPECT_GT(total_ns, 0u);
    }
  }
}

TEST(ProfIdentity, FallbackMatchesHardwarePhaseStructure) {
  // The same serial sweep profiled under both clocks: identical output
  // bytes, identical phase tables (names, nesting flags, deterministic
  // entry counts), and the fallback's hardware columns pinned to zero.
  // When the host denies perf_event_open both profilers run the fallback
  // clock and the comparison is trivially tight — the assertion set is
  // valid either way.
  const Application app = apps::build_synthetic();
  const std::vector<double> loads = {0.5, 1.0};

  Profiler hw_prof(Profiler::Mode::kAuto);
  ExperimentConfig hw_cfg = prof_config(20, 1);
  hw_cfg.prof = &hw_prof;
  const std::string hw_bytes =
      serialize_sweep(sweep_load(app, hw_cfg, loads));

  Profiler fb_prof(Profiler::Mode::kFallback);
  ExperimentConfig fb_cfg = prof_config(20, 1);
  fb_cfg.prof = &fb_prof;
  const std::string fb_bytes =
      serialize_sweep(sweep_load(app, fb_cfg, loads));

  EXPECT_EQ(fb_bytes, hw_bytes);
  EXPECT_FALSE(fb_prof.hardware());

  const std::vector<ProfPhaseTotals> hw = hw_prof.snapshot();
  const std::vector<ProfPhaseTotals> fb = fb_prof.snapshot();
  ASSERT_EQ(hw.size(), fb.size());
  for (std::size_t i = 0; i < hw.size(); ++i) {
    SCOPED_TRACE(hw[i].name);
    EXPECT_EQ(fb[i].name, hw[i].name);
    EXPECT_EQ(fb[i].top_level, hw[i].top_level);
    // Scope-entry counts are deterministic except for the pool's idle /
    // claim stretches, whose subdivision depends on wait timing.
    if (hw[i].name.rfind("pool.", 0) != 0)
      EXPECT_EQ(fb[i].count, hw[i].count);
    // Fallback clock: wall time only.
    EXPECT_EQ(fb[i].cycles, 0u);
    EXPECT_EQ(fb[i].instructions, 0u);
    EXPECT_EQ(fb[i].cache_refs, 0u);
    EXPECT_EQ(fb[i].cache_misses, 0u);
    EXPECT_EQ(fb[i].branch_misses, 0u);
  }
  if (hw_prof.hardware()) {
    // The hardware run measured real cycles somewhere.
    std::uint64_t cycles = 0;
    for (const ProfPhaseTotals& p : hw) cycles += p.cycles;
    EXPECT_GT(cycles, 0u);
  }
}

TEST(ProfIdentity, RegistryExportCarriesPhaseTotals) {
  // End-to-end: a profiled sweep exported through the registry produces
  // prof.<phase>.{ns,count} counters that match the snapshot exactly.
  const Application app = apps::build_synthetic();
  Profiler prof(Profiler::Mode::kFallback);
  ExperimentConfig cfg = prof_config(16, 2);
  cfg.prof = &prof;
  (void)sweep_load(app, cfg, {0.6});

  MetricsRegistry reg;
  prof.export_delta_to(reg);
  for (const ProfPhaseTotals& p : prof.snapshot()) {
    if (p.count == 0) continue;
    SCOPED_TRACE(p.name);
    EXPECT_EQ(reg.counter("prof." + p.name + ".ns").value(), p.ns);
    EXPECT_EQ(reg.counter("prof." + p.name + ".count").value(), p.count);
  }
}

}  // namespace
}  // namespace paserta
