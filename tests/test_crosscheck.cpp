// Differential cross-checks between independent implementations.
//
// An independent task set can be expressed two ways in this library: as a
// single parallel section run by the AND/OR engine (core/offline +
// sim/engine) or through the dedicated independent-task module
// (core/independent, the [20] algorithm). For the *static* schemes the two
// paths share every modelling assumption — same LTF canonical schedule,
// same level choice, same power model — so their energies must agree
// exactly. That pins both implementations against each other.
//
// Also: a grammar-less fuzz of the workload parser (garbage must throw
// paserta::Error, never crash or hang).
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/independent.h"
#include "core/offline.h"
#include "graph/text_format.h"
#include "sim/engine.h"

namespace paserta {
namespace {

struct Pair {
  IndependentTaskSet set;
  Application app;  // the same tasks as one parallel section
};

Pair make_pair_case(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Pair out{random_independent_set(rng, n, SimTime::from_ms(1),
                                  SimTime::from_ms(9), 0.3, 0.9),
           Application{}};
  SectionSpec sec;
  for (const auto& t : out.set.tasks)
    sec.tasks.push_back(TaskSpec{t.name, t.wcet, t.acet});
  Program p;
  p.section(std::move(sec));
  out.app = build_application("pair", p);
  return out;
}

/// Scenario/actuals aligned across both representations: task i of the set
/// is node i of the flat graph (single section preserves order).
std::vector<SimTime> align_actuals(const Pair& pc, Rng& rng) {
  return draw_independent_actuals(pc.set, rng);
}

RunScenario to_scenario(const Pair& pc, const std::vector<SimTime>& actual) {
  RunScenario sc;
  sc.actual = actual;
  sc.or_choice.assign(pc.app.graph.size(), -1);
  return sc;
}

class CrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossCheck, StaticSchemesAgreeExactly) {
  const Pair pc = make_pair_case(GetParam(), 10);
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;  // static schemes charge nothing, any value works
  const int cpus = 3;

  OfflineOptions o;
  o.cpus = cpus;
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  const SimTime w = canonical_worst_makespan(pc.app, cpus, o.overhead_budget);
  o.deadline = w * 2;
  const OfflineResult off = analyze_offline(pc.app, o);

  Rng rng(GetParam() * 17 + 3);
  for (int run = 0; run < 5; ++run) {
    const auto actual = align_actuals(pc, rng);
    const RunScenario sc = to_scenario(pc, actual);

    // NPM: identical busy work at f_max, identical idle window.
    const SimResult andor_npm =
        simulate(pc.app, off, pm, ovh, Scheme::NPM, sc);
    const auto indep_npm = simulate_independent(
        pc.set, cpus, o.deadline, pm, ovh, IndependentScheme::NPM, actual);
    ASSERT_TRUE(andor_npm.deadline_met);
    ASSERT_TRUE(indep_npm.deadline_met);
    // Total energy agrees exactly: same busy work at f_max and the same
    // m x D idle window. (Finish times may differ — the AND/OR engine
    // rebalances tasks onto whichever processor frees first, while the
    // independent module keeps the canonical processor binding for its
    // static schemes.)
    EXPECT_NEAR(andor_npm.total_energy(), indep_npm.total_energy(), 1e-12);

    // SPM: both derive the level from the same inflated canonical W.
    const SimResult andor_spm =
        simulate(pc.app, off, pm, ovh, Scheme::SPM, sc);
    const auto indep_spm = simulate_independent(
        pc.set, cpus, o.deadline, pm, ovh, IndependentScheme::SPM, actual);
    EXPECT_NEAR(andor_spm.total_energy(), indep_spm.total_energy(), 1e-12);
  }
}

TEST_P(CrossCheck, DynamicSchemesBothSafeAndComparable) {
  // The greedy mechanisms differ (global LSTs vs EET swapping) so energies
  // need not match, but both must meet deadlines and both must beat NPM
  // whenever there is slack.
  const Pair pc = make_pair_case(GetParam(), 12);
  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;
  const int cpus = 2;

  OfflineOptions o;
  o.cpus = cpus;
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  const SimTime w = canonical_worst_makespan(pc.app, cpus, o.overhead_budget);
  o.deadline = w * 2;
  const OfflineResult off = analyze_offline(pc.app, o);

  Rng rng(GetParam() * 31 + 5);
  for (int run = 0; run < 5; ++run) {
    const auto actual = align_actuals(pc, rng);
    const RunScenario sc = to_scenario(pc, actual);

    const SimResult andor =
        simulate(pc.app, off, pm, ovh, Scheme::GSS, sc);
    const auto indep =
        simulate_independent(pc.set, cpus, o.deadline, pm, ovh,
                             IndependentScheme::GreedyShare, actual);
    ASSERT_TRUE(andor.deadline_met);
    ASSERT_TRUE(indep.deadline_met);

    const SimResult npm = simulate(pc.app, off, pm, ovh, Scheme::NPM, sc);
    EXPECT_LT(andor.total_energy(), npm.total_energy());
    EXPECT_LT(indep.total_energy(), npm.total_energy());
    // Same modelling universe: the two greedy variants should land in the
    // same ballpark (within 25 % of each other on these workloads).
    const double ratio = andor.total_energy() / indep.total_energy();
    EXPECT_GT(ratio, 0.75);
    EXPECT_LT(ratio, 1.33);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheck,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------------------- parser fuzz

TEST(ParserFuzz, GarbageNeverCrashes) {
  Rng rng(2026);
  const char charset[] =
      "abcdef 0123456789.\n#ltask section end branch alt loop edge app -";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t len = rng.next_below(200);
    for (std::size_t i = 0; i < len; ++i)
      text += charset[rng.next_below(sizeof(charset) - 1)];
    try {
      const ParsedWorkload w = parse_workload_string(text);
      // Rarely, random text parses; it must then build & validate or throw.
      try {
        build_application(w.name, w.program).graph.validate();
      } catch (const Error&) {
      }
    } catch (const Error&) {
      // expected for garbage
    }
  }
  SUCCEED();
}

TEST(ParserFuzz, DeeplyNestedInputBounded) {
  // 200 nested branches parse fine (recursion depth is linear and small).
  std::string text = "task root 1 1\n";
  for (int i = 0; i < 200; ++i)
    text += "branch b" + std::to_string(i) + "\n alt 1\n  task t" +
            std::to_string(i) + " 1 1\n";
  for (int i = 0; i < 200; ++i) text += " end\nend\n";
  const ParsedWorkload w = parse_workload_string(text);
  const Application app = build_application(w.name, w.program);
  EXPECT_EQ(app.graph.task_count(), 201u);
  app.graph.validate();
}

}  // namespace
}  // namespace paserta
