#include "obs/trace.h"

#include <algorithm>

namespace paserta {

Tracer::Tracer(Detail detail)
    : detail_(detail), epoch_(std::chrono::steady_clock::now()) {}

std::int64_t Tracer::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(int slot, const char* name, std::int64_t ts_ns,
                    std::int64_t dur_ns, std::int64_t point,
                    std::int64_t run) {
  TraceEvent ev;
  ev.name = name;
  ev.slot = slot;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  ev.point = point;
  ev.run = run;
  shards_[static_cast<std::size_t>(slot)].events.push_back(ev);
}

void Tracer::instant(int slot, const char* name, std::int64_t point) {
  TraceEvent ev;
  ev.name = name;
  ev.slot = slot;
  ev.ts_ns = now_ns();
  ev.dur_ns = -1;
  ev.point = point;
  shards_[static_cast<std::size_t>(slot)].events.push_back(ev);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> all;
  all.reserve(event_count());
  for (const Shard& s : shards_)
    all.insert(all.end(), s.events.begin(), s.events.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     if (a.slot != b.slot) return a.slot < b.slot;
                     return a.dur_ns > b.dur_ns;  // parents before children
                   });
  return all;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.events.size();
  return n;
}

}  // namespace paserta
