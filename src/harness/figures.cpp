#include "harness/figures.h"

#include "apps/atr.h"
#include "apps/synthetic.h"
#include "common/error.h"

namespace paserta {
namespace {

constexpr std::uint64_t kPaperSeed = 20020818;  // ICPP 2002

ExperimentConfig base_config(const LevelTable& table, int cpus, int runs) {
  ExperimentConfig cfg;
  cfg.cpus = cpus;
  cfg.table = table;
  cfg.runs = runs;
  cfg.seed = kPaperSeed;
  cfg.overheads.speed_compute_cycles = 300;
  cfg.overheads.speed_change_time = SimTime::from_us(5.0);
  return cfg;
}

FigureDef load_figure(const std::string& id, const LevelTable& table,
                      int cpus, int runs) {
  FigureDef f;
  f.id = id;
  f.caption = "Energy vs load, ATR, " + std::to_string(cpus) + " CPUs, " +
              table.name() + ", alpha=0.9, overhead=5us";
  f.x_name = "load";
  f.config = base_config(table, cpus, runs);
  f.xs = sweep_range(0.1, 1.0, 0.05);
  return f;
}

FigureDef alpha_figure(const std::string& id, const LevelTable& table,
                       int runs) {
  FigureDef f;
  f.id = id;
  f.caption = "Energy vs alpha, synthetic Fig.3 app, 2 CPUs, " +
              table.name() + ", load=0.9, overhead=5us";
  f.x_name = "alpha";
  f.config = base_config(table, 2, runs);
  f.xs = sweep_range(0.10, 1.0, 0.05);
  f.fixed_load = 0.9;
  return f;
}

}  // namespace

std::vector<FigureDef> paper_figures(int runs) {
  return {
      load_figure("fig4a", LevelTable::transmeta_tm5400(), 2, runs),
      load_figure("fig4b", LevelTable::intel_xscale(), 2, runs),
      load_figure("fig5a", LevelTable::transmeta_tm5400(), 6, runs),
      load_figure("fig5b", LevelTable::intel_xscale(), 6, runs),
      alpha_figure("fig6a", LevelTable::transmeta_tm5400(), runs),
      alpha_figure("fig6b", LevelTable::intel_xscale(), runs),
  };
}

FigureDef paper_figure(const std::string& id, int runs) {
  for (FigureDef& f : paper_figures(runs)) {
    if (f.id == id) return std::move(f);
  }
  PASERTA_REQUIRE(false, "unknown figure id '" << id << "'");
  return {};  // unreachable
}

Application figure_workload(const FigureDef& figure) {
  if (figure.is_alpha_sweep()) return apps::build_synthetic();
  return apps::build_atr();  // alpha = 0.9 measured, the paper's setting
}

std::vector<SweepPoint> run_figure(const FigureDef& figure) {
  const Application app = figure_workload(figure);
  if (figure.is_alpha_sweep())
    return sweep_alpha(app, figure.config, figure.fixed_load, figure.xs);
  return sweep_load(app, figure.config, figure.xs);
}

}  // namespace paserta
