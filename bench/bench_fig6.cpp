// Figure 6: normalized energy vs alpha (ACET/WCET ratio) for the synthetic
// Figure-3 application on dual-processor systems, load = 0.9,
// overhead = 5 us. With load 0.9 on the XScale model, SPM's 900 MHz desire
// rounds up to f_max = 1 GHz, so SPM matches NPM — the paper's §5.2 remark.
#include "bench_util.h"
#include "harness/figures.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv);
  for (const char* id : {"fig6a", "fig6b"}) {
    const FigureDef f = paper_figure(id, runs);
    benchutil::emit("Fig." + f.id.substr(3),
                    f.caption + ", runs=" + std::to_string(runs),
                    run_figure(f), f.x_name);
  }
  return 0;
}
