// Unit tests for the LTF list scheduler that produces canonical schedules.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/list_sched.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

std::function<SimTime(NodeId)> wcet_of(const AndOrGraph& g) {
  return [&g](NodeId id) {
    return g.node(id).is_dummy() ? SimTime::zero() : g.node(id).wcet;
  };
}

TEST(ListSched, SingleTask) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(5), ms(3));
  const std::vector<NodeId> members{a};
  const auto s = ltf_schedule(g, members, 2, wcet_of(g));
  EXPECT_EQ(s.makespan, ms(5));
  EXPECT_EQ(s.item(a).start, SimTime::zero());
  EXPECT_EQ(s.item(a).cpu, 0);
  EXPECT_EQ(s.dispatch_order, members);
}

TEST(ListSched, LongestTaskFirstOrdering) {
  // Three independent tasks on one CPU: dispatched longest-first.
  AndOrGraph g;
  const NodeId s1 = g.add_task("short", ms(1), ms(1));
  const NodeId s2 = g.add_task("long", ms(9), ms(1));
  const NodeId s3 = g.add_task("mid", ms(5), ms(1));
  const std::vector<NodeId> members{s1, s2, s3};
  const auto s = ltf_schedule(g, members, 1, wcet_of(g));
  EXPECT_EQ(s.dispatch_order, (std::vector<NodeId>{s2, s3, s1}));
  EXPECT_EQ(s.makespan, ms(15));
}

TEST(ListSched, TwoProcessorsBalanceLoad) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(4), ms(1));
  const NodeId b = g.add_task("b", ms(3), ms(1));
  const NodeId c = g.add_task("c", ms(3), ms(1));
  const std::vector<NodeId> members{a, b, c};
  const auto s = ltf_schedule(g, members, 2, wcet_of(g));
  // a on cpu0 [0,4]; b on cpu1 [0,3]; c follows b [3,6].
  EXPECT_EQ(s.item(a).cpu, 0);
  EXPECT_EQ(s.item(b).cpu, 1);
  EXPECT_EQ(s.item(c).start, ms(3));
  EXPECT_EQ(s.makespan, ms(6));
}

TEST(ListSched, RespectsPrecedence) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(2), ms(1));
  const NodeId b = g.add_task("b", ms(3), ms(1));
  g.add_edge(a, b);
  const std::vector<NodeId> members{a, b};
  const auto s = ltf_schedule(g, members, 4, wcet_of(g));
  EXPECT_EQ(s.item(b).start, ms(2));
  EXPECT_EQ(s.makespan, ms(5));
}

TEST(ListSched, PaperFigure1aStructure) {
  // A(8) -> {B(5), C(4)} on 2 CPUs: A [0,8], then B and C in parallel.
  AndOrGraph g;
  const NodeId a = g.add_task("A", ms(8), ms(5));
  const NodeId b = g.add_task("B", ms(5), ms(3));
  const NodeId c = g.add_task("C", ms(4), ms(2));
  g.add_edge(a, b);
  g.add_edge(a, c);
  const std::vector<NodeId> members{a, b, c};
  const auto s = ltf_schedule(g, members, 2, wcet_of(g));
  EXPECT_EQ(s.makespan, ms(13));
  EXPECT_EQ(s.item(b).start, ms(8));
  EXPECT_EQ(s.item(c).start, ms(8));
  // LTF: B (longer) dispatched before C.
  EXPECT_EQ(s.dispatch_order, (std::vector<NodeId>{a, b, c}));
}

TEST(ListSched, DummiesBorrowButDoNotOccupyCpus) {
  // task(4) -> AND -> {x(2), y(2)} on 2 CPUs: the AND fires at 4, x and y
  // run in parallel immediately after.
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(4), ms(1));
  const NodeId d = g.add_and("sync");
  const NodeId x = g.add_task("x", ms(2), ms(1));
  const NodeId y = g.add_task("y", ms(2), ms(1));
  g.add_edge(a, d);
  g.add_edge(d, x);
  g.add_edge(d, y);
  const std::vector<NodeId> members{a, d, x, y};
  const auto s = ltf_schedule(g, members, 2, wcet_of(g));
  EXPECT_EQ(s.item(d).cpu, -1);
  EXPECT_EQ(s.item(d).start, ms(4));
  EXPECT_EQ(s.item(x).start, ms(4));
  EXPECT_EQ(s.item(y).start, ms(4));
  EXPECT_EQ(s.makespan, ms(6));
}

TEST(ListSched, ReadinessBeatsLength) {
  // The queue is FIFO by readiness time; a longer task that becomes ready
  // later does not overtake an earlier short one.
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(2), ms(1));
  const NodeId s1 = g.add_task("short_early", ms(1), ms(1));
  const NodeId l1 = g.add_task("long_late", ms(9), ms(1));
  g.add_edge(a, l1);  // l1 ready at 2; short_early ready at 0
  const std::vector<NodeId> members{a, s1, l1};
  const auto s = ltf_schedule(g, members, 1, wcet_of(g));
  EXPECT_EQ(s.dispatch_order, (std::vector<NodeId>{a, s1, l1}));
}

TEST(ListSched, DeterministicTieBreakById) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(3), ms(1));
  const NodeId b = g.add_task("b", ms(3), ms(1));
  const std::vector<NodeId> members{b, a};  // insertion order irrelevant
  const auto s1 = ltf_schedule(g, members, 1, wcet_of(g));
  const auto s2 = ltf_schedule(g, members, 1, wcet_of(g));
  EXPECT_EQ(s1.dispatch_order, s2.dispatch_order);
  EXPECT_EQ(s1.dispatch_order.front(), a);  // lower id wins the tie
}

TEST(ListSched, MorePocessorsNeverWorse) {
  AndOrGraph g;
  std::vector<NodeId> members;
  for (int i = 0; i < 12; ++i)
    members.push_back(g.add_task("t" + std::to_string(i), ms(1 + i % 4),
                                 ms(1)));
  SimTime prev = SimTime::max();
  for (int cpus : {1, 2, 3, 4, 8}) {
    const auto s = ltf_schedule(g, members, cpus, wcet_of(g));
    EXPECT_LE(s.makespan, prev);
    prev = s.makespan;
  }
}

TEST(ListSched, CustomDurationCallback) {
  // The caller can schedule with ACETs (average canonical schedule).
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(8), ms(2));
  const std::vector<NodeId> members{a};
  const auto s = ltf_schedule(g, members, 1, [&](NodeId id) {
    return g.node(id).acet;
  });
  EXPECT_EQ(s.makespan, ms(2));
}

TEST(ListSched, RejectsBadInput) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const std::vector<NodeId> members{a};
  EXPECT_THROW(ltf_schedule(g, members, 0, wcet_of(g)), Error);
  EXPECT_THROW(ltf_schedule(g, std::vector<NodeId>{}, 1, wcet_of(g)), Error);
}

TEST(ListSched, MakespanLowerBoundedByCriticalPathAndWork) {
  AndOrGraph g;
  std::vector<NodeId> members;
  // Chain of 3 x 2ms plus 4 independent 3ms tasks on 2 CPUs.
  NodeId prev = g.add_task("c0", ms(2), ms(1));
  members.push_back(prev);
  for (int i = 1; i < 3; ++i) {
    const NodeId n = g.add_task("c" + std::to_string(i), ms(2), ms(1));
    g.add_edge(prev, n);
    members.push_back(n);
    prev = n;
  }
  for (int i = 0; i < 4; ++i)
    members.push_back(g.add_task("p" + std::to_string(i), ms(3), ms(1)));
  const auto s = ltf_schedule(g, members, 2, wcet_of(g));
  EXPECT_GE(s.makespan, ms(6));  // critical path
  EXPECT_GE(s.makespan, ms(9));  // total work 18ms / 2 cpus
}

}  // namespace
}  // namespace paserta
