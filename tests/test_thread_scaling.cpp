// Thread-scaling bit-identity suite: the contract the parallel-path
// restructure (per-slot staging buffers, per-slot sampler clones, batched
// chunk claiming — DESIGN.md §13) must preserve is that the rendered
// figure output is *byte-identical* to the unpooled single-thread
// reference at every thread count and chunk size, with audit and
// observability enabled. The full fig4a load sweep is rendered to CSV per
// configuration and compared as strings, so any reordering, dropped run,
// staging-merge mistake or float-accumulation change fails loudly. The
// suite carries the pool_smoke ctest label, so the pooled portion also
// runs under ThreadSanitizer in CI (cmake -DPASERTA_SANITIZE=thread;
// ctest -L pool_smoke).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/offline.h"
#include "harness/experiment.h"
#include "harness/figures.h"
#include "harness/report.h"
#include "obs/metrics.h"
#include "sim/scenario.h"

namespace paserta {
namespace {

// Small enough to keep the 9-configuration sweep (and its TSan run) fast,
// large enough that every chunk-size regime below is distinct: chunk=1
// makes one chunk per run, chunk=kRuns one chunk per point, and the
// default auto size lands in between.
constexpr int kRuns = 40;

std::string render_csv(const FigureDef& fig,
                       const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  print_figure(os, fig.id, fig.caption, points, fig.x_name);
  return os.str();
}

// Unpooled reference: the pre-pool execution model (fresh strided
// std::thread set, fresh offline analysis, legacy per-run draw_scenario
// walk), serial, with observability and audit off. Everything the pooled
// path layers on top — persistent pool, chunk claiming, staging merge,
// offline cache, compiled samplers, the batched engine, audit, metrics —
// must be unobservable against this.
std::string unpooled_reference_csv(const FigureDef& fig,
                                   const Application& app) {
  ExperimentConfig ref_cfg = fig.config;
  ref_cfg.threads = 1;
  const SimTime w = canonical_worst_makespan(
      app, ref_cfg.cpus, ref_cfg.overheads.worst_case_budget(ref_cfg.table),
      ref_cfg.heuristic);
  std::vector<SweepPoint> ref_points;
  for (double load : fig.xs) {
    const SimTime deadline{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / load))};
    ref_points.push_back(run_point_unpooled(app, ref_cfg, deadline, load));
  }
  return render_csv(fig, ref_points);
}

TEST(ThreadScalingBitIdentity, Fig4aSweepMatchesUnpooledReference) {
  const FigureDef fig = paper_figure("fig4a", kRuns);
  const Application app = figure_workload(fig);
  const std::string ref_csv = unpooled_reference_csv(fig, app);
  ASSERT_FALSE(ref_csv.empty());

  for (int threads : {1, 2, 4}) {
    for (int chunk : {0, 1, kRuns}) {
      ExperimentConfig cfg = fig.config;
      cfg.threads = threads;
      cfg.chunk_runs = chunk;
      // Audit re-accounts every run three ways and metrics route through
      // the per-(point, slot, scheme) cells; both must stay write-only
      // for the simulation at every thread count.
      cfg.audit = true;
      cfg.collect_metrics = true;
      MetricsRegistry reg;  // scoped: keep the global registry clean
      cfg.registry = &reg;
      const std::string csv = render_csv(fig, sweep_load(app, cfg, fig.xs));
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " chunk_runs=" << chunk);
      EXPECT_EQ(csv, ref_csv);
    }
  }
}

// The batched engine (sim/batch_engine.h) under the same contract: the
// rendered fig4a sweep must stay byte-identical to the unpooled reference
// at every (thread count x batch size), with audit and metrics on. Batch
// sizes cover forced scalar (1), a small size that leaves sub-batch
// remainders wherever a claimed chunk's run count is not a multiple of 8,
// auto (0), and lanes = the whole point.
TEST(ThreadScalingBitIdentity, Fig4aSweepIdenticalAcrossBatchSizes) {
  const FigureDef fig = paper_figure("fig4a", kRuns);
  const Application app = figure_workload(fig);
  const std::string ref_csv = unpooled_reference_csv(fig, app);
  ASSERT_FALSE(ref_csv.empty());

  for (int threads : {1, 2, 4}) {
    for (int batch : {1, 8, 0, kRuns}) {
      ExperimentConfig cfg = fig.config;
      cfg.threads = threads;
      cfg.batch = batch;
      cfg.audit = true;
      cfg.collect_metrics = true;
      MetricsRegistry reg;
      cfg.registry = &reg;
      const std::string csv = render_csv(fig, sweep_load(app, cfg, fig.xs));
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " batch=" << batch);
      EXPECT_EQ(csv, ref_csv);
    }
  }
}

void expect_counters_eq(const SimCounters& a, const SimCounters& b) {
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.or_fires, b.or_fires);
  EXPECT_EQ(a.speed_changes, b.speed_changes);
  EXPECT_EQ(a.spec_picks, b.spec_picks);
  EXPECT_EQ(a.greedy_picks, b.greedy_picks);
  EXPECT_EQ(a.reclaimed_slack_ps, b.reclaimed_slack_ps);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.busy_ps, b.busy_ps);
  EXPECT_EQ(a.compute_ps, b.compute_ps);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.idle_ps, b.idle_ps);
}

// Scenario-dedup memoization (DESIGN.md §15) under the same contract, in
// the regime the cache exists for: the fig4a ATR graph at alpha = 1, where
// ACET = WCET leaves the OR forks as the only randomness and the scenario
// space collapses to a handful of outcomes (most runs replay a cached
// record). The rendered sweep CSV and the per-point engine-counter totals
// (including the integer attribution ledger) must be byte-identical with
// dedup forced on vs. forced off, at every (thread count x batch size).
TEST(ThreadScalingBitIdentity, DedupOnMatchesOffOnDiscreteWorkload) {
  const FigureDef fig = paper_figure("fig4a", kRuns);
  Application app = figure_workload(fig);
  assign_alpha(app.graph, 1.0);  // ACET = WCET: discrete scenario space

  // Reference: dedup forced off, serial, scalar engine, metrics on.
  ExperimentConfig ref_cfg = fig.config;
  ref_cfg.threads = 1;
  ref_cfg.batch = 1;
  ref_cfg.dedup = DedupMode::kOff;
  ref_cfg.collect_metrics = true;
  MetricsRegistry ref_reg;
  ref_cfg.registry = &ref_reg;
  const std::vector<SweepPoint> ref_points =
      sweep_load(app, ref_cfg, fig.xs);
  const std::string ref_csv = render_csv(fig, ref_points);
  ASSERT_FALSE(ref_csv.empty());
  for (const SweepPoint& pt : ref_points) EXPECT_FALSE(pt.dedup.enabled);

  for (int threads : {1, 2, 4}) {
    for (int batch : {1, 0}) {
      ExperimentConfig cfg = fig.config;
      cfg.threads = threads;
      cfg.batch = batch;
      cfg.dedup = DedupMode::kOn;
      cfg.collect_metrics = true;
      MetricsRegistry reg;
      cfg.registry = &reg;
      const std::vector<SweepPoint> points = sweep_load(app, cfg, fig.xs);
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " batch=" << batch);
      EXPECT_EQ(render_csv(fig, points), ref_csv);
      ASSERT_EQ(points.size(), ref_points.size());
      for (std::size_t p = 0; p < points.size(); ++p) {
        SCOPED_TRACE(testing::Message() << "point=" << p);
        // The dedup layer actually engaged and accounted for every run.
        EXPECT_TRUE(points[p].dedup.enabled);
        EXPECT_EQ(points[p].dedup.hits + points[p].dedup.misses,
                  static_cast<std::uint64_t>(kRuns));
        EXPECT_GT(points[p].dedup.hits, 0u);
        // Engine-counter totals (with attribution ledgers) are bitwise
        // equal to the uncached reference.
        const PointMetrics& m = points[p].metrics;
        const PointMetrics& rm = ref_points[p].metrics;
        ASSERT_EQ(m.schemes.size(), rm.schemes.size());
        for (std::size_t s = 0; s < m.schemes.size(); ++s)
          expect_counters_eq(m.schemes[s], rm.schemes[s]);
        expect_counters_eq(m.npm, rm.npm);
      }
    }
  }
}

// Configurations whose purpose is per-run engine work (audit's three-way
// re-accounting, verify_traces) must force the uncached path even when
// dedup is requested — a replayed run performs no engine work to audit.
TEST(ThreadScalingBitIdentity, AuditAndVerifyForceDedupOff) {
  ExperimentConfig cfg;
  cfg.runs = 100;
  cfg.dedup = DedupMode::kOn;
  EXPECT_TRUE(resolved_dedup(cfg, 4));
  cfg.audit = true;
  EXPECT_FALSE(resolved_dedup(cfg, 4));
  cfg.audit = false;
  cfg.verify_traces = true;
  EXPECT_FALSE(resolved_dedup(cfg, 4));
  cfg.verify_traces = false;

  // And end-to-end: an audited sweep with dedup requested reports the
  // layer as disabled while the output stays identical to the reference.
  const FigureDef fig = paper_figure("fig4a", kRuns);
  Application app = figure_workload(fig);
  assign_alpha(app.graph, 1.0);
  ExperimentConfig ref_cfg = fig.config;
  ref_cfg.threads = 1;
  ref_cfg.dedup = DedupMode::kOff;
  const std::string ref_csv =
      render_csv(fig, sweep_load(app, ref_cfg, fig.xs));
  ExperimentConfig audit_cfg = fig.config;
  audit_cfg.threads = 2;
  audit_cfg.dedup = DedupMode::kOn;
  audit_cfg.audit = true;
  const std::vector<SweepPoint> points = sweep_load(app, audit_cfg, fig.xs);
  for (const SweepPoint& pt : points) {
    EXPECT_FALSE(pt.dedup.enabled);
    EXPECT_EQ(pt.dedup.hits, 0u);
  }
  EXPECT_EQ(render_csv(fig, points), ref_csv);
}

}  // namespace
}  // namespace paserta
