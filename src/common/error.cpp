#include "common/error.h"

#include <cstdlib>
#include <iostream>

namespace paserta::detail {

[[noreturn]] void throw_error(const char* file, int line, const std::string& msg) {
  std::ostringstream oss;
  oss << msg << " (" << file << ":" << line << ")";
  throw Error(oss.str());
}

[[noreturn]] void fail_assert(const char* file, int line, const char* expr,
                              const std::string& msg) {
  std::cerr << "paserta internal assertion failed: " << expr << "\n  " << msg
            << "\n  at " << file << ":" << line << std::endl;
  std::abort();
}

}  // namespace paserta::detail
