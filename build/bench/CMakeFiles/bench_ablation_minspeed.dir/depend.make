# Empty dependencies file for bench_ablation_minspeed.
# This may be replaced when dependencies are built.
