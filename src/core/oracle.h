// Clairvoyant single-speed oracle (paper §3.3).
//
// "A clairvoyant algorithm can achieve minimal energy consumption ... by
// running all tasks at a single speed setting if the actual running time of
// every task is known." This module computes that bound for a concrete
// scenario: the slowest DVS level at which the run (actual times, actual
// path, canonical dispatch order) still meets the deadline, and the energy
// it consumes. Because both busy energy (quadratic in voltage) and idle
// energy (less idle the slower we run) fall with the level, the lowest
// feasible level is optimal among constant-speed schedules.
//
// No implementable scheme can know the scenario in advance; the oracle is
// the yardstick the speculative schemes (§4) chase.
#pragma once

#include "sim/engine.h"

namespace paserta {

struct OracleResult {
  bool feasible = false;     // even f_max misses (infeasible run)
  std::size_t level = 0;     // lowest feasible level index
  Energy energy = 0.0;       // total energy at that level over [0, D]
  SimTime finish_time{};
  SimResult run;             // the full run at the chosen level
};

/// Finds the lowest feasible constant level by binary search (feasibility
/// is monotone in the level for a fixed dispatch order) and returns the
/// corresponding run.
OracleResult clairvoyant_oracle(const Application& app,
                                const OfflineResult& off, const PowerModel& pm,
                                const Overheads& overheads,
                                const RunScenario& scenario);

}  // namespace paserta
