file(REMOVE_RECURSE
  "CMakeFiles/bench_layered.dir/bench_layered.cpp.o"
  "CMakeFiles/bench_layered.dir/bench_layered.cpp.o.d"
  "bench_layered"
  "bench_layered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
