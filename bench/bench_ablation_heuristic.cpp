// Ablation: list-scheduling heuristic. The paper fixes longest-task-first
// but proves the framework for any priority rule (§3.2). Compares LTF,
// shortest-task-first and FIFO: canonical makespans (feasibility) and GSS
// energy. LTF's tighter canonical packing usually yields more static slack
// for the same deadline.
#include "apps/atr.h"
#include "bench_util.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 500);
  const Application atr = apps::build_atr();

  for (auto heuristic :
       {ListHeuristic::LongestTaskFirst, ListHeuristic::ShortestTaskFirst,
        ListHeuristic::InsertionOrder}) {
    auto cfg = benchutil::paper_config(LevelTable::transmeta_tm5400(), 2, runs);
    cfg.heuristic = heuristic;
    cfg.schemes = {Scheme::SPM, Scheme::GSS, Scheme::AS};
    const SimTime w = canonical_worst_makespan(
        atr, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table), heuristic);
    std::cout << "# heuristic " << to_string(heuristic)
              << ": canonical W = " << to_string(w) << "\n";
    benchutil::emit("Ablation.heuristic." + std::string(to_string(heuristic)),
                    "Energy vs load, ATR, 2 CPUs, Transmeta, heuristic = " +
                        std::string(to_string(heuristic)),
                    sweep_load(atr, cfg, {0.3, 0.5, 0.7, 0.9}), "load");
  }
  return 0;
}
