# Empty compiler generated dependencies file for adaptive_branching.
# This may be replaced when dependencies are built.
