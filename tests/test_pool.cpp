// Tests for the persistent worker pool (harness/pool.h) and the pooled
// sweep executor built on it: chunk coverage, exception propagation, and —
// the contract the paper's figures depend on — bit-identical SweepPoints
// for every thread count, chunk size and point-interleaving mode. The
// determinism tests carry the `pool_smoke` ctest label so they can be run
// standalone under TSan (cmake -DPASERTA_SANITIZE=thread; ctest -L
// pool_smoke).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "apps/synthetic.h"
#include "common/error.h"
#include "core/offline.h"
#include "harness/experiment.h"
#include "harness/pool.h"
#include "obs/metrics.h"

namespace paserta {
namespace {

TEST(WorkerPool, EveryChunkExactlyOnce) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3);
  std::vector<std::atomic<int>> counts(257);
  pool.parallel_chunks(257, 4, [&](int chunk, int slot) {
    ASSERT_GE(chunk, 0);
    ASSERT_LT(chunk, 257);
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, 4);
    counts[static_cast<std::size_t>(chunk)]++;
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(WorkerPool, ReusableAcrossCallsAndWorkerCounts) {
  WorkerPool pool(2);
  for (int max_workers : {1, 2, 5}) {
    std::atomic<int> sum{0};
    pool.parallel_chunks(40, max_workers,
                         [&](int chunk, int) { sum += chunk; });
    EXPECT_EQ(sum.load(), 40 * 39 / 2);
  }
}

TEST(WorkerPool, BatchedClaimsCoverEveryChunkOnce) {
  WorkerPool pool(3);
  // Coverage must be exact for any claim batch, including batches larger
  // than the chunk space and batches that do not divide it.
  for (int batch : {1, 2, 5, 64, 1000}) {
    SCOPED_TRACE(testing::Message() << "claim_batch=" << batch);
    std::vector<std::atomic<int>> counts(257);
    pool.parallel_chunks(
        257, 4,
        [&](int chunk, int slot) {
          ASSERT_GE(chunk, 0);
          ASSERT_LT(chunk, 257);
          ASSERT_GE(slot, 0);
          ASSERT_LT(slot, 4);
          counts[static_cast<std::size_t>(chunk)]++;
        },
        /*telemetry=*/nullptr, batch);
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
}

TEST(WorkerPool, NonPositiveClaimBatchRejected) {
  WorkerPool pool(1);
  for (int batch : {0, -3}) {
    EXPECT_THROW(
        pool.parallel_chunks(4, 2, [](int, int) {}, nullptr, batch), Error);
  }
}

TEST(WorkerPool, ZeroThreadsRunsInline) {
  WorkerPool pool(0);
  // With no background workers every chunk runs on the caller, slot 0, in
  // increasing order.
  std::vector<int> order;
  pool.parallel_chunks(5, 8, [&](int chunk, int slot) {
    EXPECT_EQ(slot, 0);
    order.push_back(chunk);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, ZeroChunksIsANoop) {
  WorkerPool pool(1);
  pool.parallel_chunks(0, 4, [&](int, int) { FAIL() << "no chunks to run"; });
}

TEST(WorkerPool, BodyExceptionPropagatesToCaller) {
  WorkerPool pool(3);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallel_chunks(1000, 4,
                                    [&](int chunk, int) {
                                      ++executed;
                                      if (chunk == 7)
                                        throw Error("boom in chunk 7");
                                    }),
               Error);
  // The abort flag stops remaining chunks: far fewer than 1000 ran.
  EXPECT_LT(executed.load(), 1000);
  // The pool survives and is usable afterwards.
  std::atomic<int> after{0};
  pool.parallel_chunks(10, 4, [&](int, int) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(WorkerPool, NestedCallDegradesToInline) {
  WorkerPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_chunks(4, 2, [&](int, int) {
    // A body starting its own loop must not deadlock; it runs inline.
    pool.parallel_chunks(3, 2, [&](int, int) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 12);
}

// ---------------------------------------------------------------------------
// Telemetry invariants: the serial and pooled paths must attribute time the
// same way — chunks counted per completed body, busy = time inside bodies,
// idle = everything else in the claim loop (including the serial stand-in
// for claims) — so per-slot busy/idle fractions are comparable between
// modes.

struct TelemetryFixture {
  MetricsRegistry reg;
  PoolTelemetry tel;
  TelemetryFixture() {
    tel.chunks = &reg.counter("t.chunks");
    tel.busy_ns = &reg.counter("t.busy_ns");
    tel.idle_ns = &reg.counter("t.idle_ns");
  }
  std::uint64_t total(const std::string& name) {
    for (const auto& row : reg.snapshot().counters)
      if (row.name == name) return row.value;
    return 0;
  }
};

TEST(PoolTelemetryInvariants, SerialAndPooledAccountAlike) {
  constexpr int kChunks = 96;
  const auto body = [](int, int) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };

  TelemetryFixture serial;
  WorkerPool::serial_chunks(kChunks, body, &serial.tel);

  TelemetryFixture pooled;
  WorkerPool pool(3);
  pool.parallel_chunks(kChunks, 4, body, &pooled.tel);

  for (TelemetryFixture* f : {&serial, &pooled}) {
    // Every chunk counted exactly once, and the sleeps dominate busy time.
    EXPECT_EQ(f->total("t.chunks"), static_cast<std::uint64_t>(kChunks));
    EXPECT_GE(f->total("t.busy_ns"), kChunks * 150000ull);
    // The claim loop is timed on BOTH paths: even the serial loop's
    // inter-body stretches must land in idle, not vanish (the historical
    // untimed-claim shortcut made serial busy fractions incomparable).
    EXPECT_GT(f->total("t.idle_ns"), 0ull);
  }

  // Busy/idle split the loop's wall time exactly; neither can exceed the
  // sum of all participants' loop residency. Serial has one participant.
  const std::uint64_t serial_total =
      serial.total("t.busy_ns") + serial.total("t.idle_ns");
  EXPECT_GE(serial_total, kChunks * 150000ull);
}

TEST(WorkerPool, EnsureThreadsGrows) {
  WorkerPool pool(1);
  pool.ensure_threads(3);
  EXPECT_EQ(pool.thread_count(), 3);
  pool.ensure_threads(2);  // never shrinks
  EXPECT_EQ(pool.thread_count(), 3);
}

// ---------------------------------------------------------------------------
// Executor determinism: the SweepPoint outputs must be bit-identical to the
// serial run for every thread count, chunk size and point-parallel mode.

ExperimentConfig config(int runs, int threads) {
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.runs = runs;
  cfg.threads = threads;
  cfg.seed = 20260806;
  return cfg;
}

void expect_stat_identical(const RunningStat& a, const RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.variance(), b.variance());
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
}

void expect_point_identical(const SweepPoint& a, const SweepPoint& b) {
  EXPECT_DOUBLE_EQ(a.x, b.x);
  EXPECT_EQ(a.deadline, b.deadline);
  EXPECT_EQ(a.worst_makespan, b.worst_makespan);
  EXPECT_EQ(a.degenerate_runs, b.degenerate_runs);
  expect_stat_identical(a.npm_energy, b.npm_energy);
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t s = 0; s < a.stats.size(); ++s) {
    EXPECT_EQ(a.stats[s].scheme, b.stats[s].scheme);
    expect_stat_identical(a.stats[s].norm_energy, b.stats[s].norm_energy);
    expect_stat_identical(a.stats[s].speed_changes, b.stats[s].speed_changes);
    expect_stat_identical(a.stats[s].finish_frac, b.stats[s].finish_frac);
    expect_stat_identical(a.stats[s].busy_frac, b.stats[s].busy_frac);
    expect_stat_identical(a.stats[s].overhead_frac,
                          b.stats[s].overhead_frac);
    expect_stat_identical(a.stats[s].idle_frac, b.stats[s].idle_frac);
    EXPECT_EQ(a.stats[s].deadline_misses, b.stats[s].deadline_misses);
    EXPECT_EQ(a.stats[s].verify_failures, b.stats[s].verify_failures);
  }
}

void expect_sweep_identical(const std::vector<SweepPoint>& a,
                            const std::vector<SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    expect_point_identical(a[i], b[i]);
}

TEST(PoolDeterminism, SweepInvariantAcrossThreadsChunksPointModes) {
  const Application app = apps::build_synthetic();
  const std::vector<double> loads = {0.3, 0.5, 0.9};

  ExperimentConfig base_cfg = config(30, 1);
  base_cfg.parallel_points = false;
  const std::vector<SweepPoint> baseline = sweep_load(app, base_cfg, loads);

  for (int threads : {1, 2, 5}) {
    for (int chunk : {0, 1, 7, 64}) {
      for (bool parallel_points : {false, true}) {
        ExperimentConfig cfg = config(30, threads);
        cfg.chunk_runs = chunk;
        cfg.parallel_points = parallel_points;
        const std::vector<SweepPoint> sweep = sweep_load(app, cfg, loads);
        SCOPED_TRACE(testing::Message()
                     << "threads=" << threads << " chunk=" << chunk
                     << " parallel_points=" << parallel_points);
        expect_sweep_identical(baseline, sweep);
      }
    }
  }
}

TEST(PoolDeterminism, PooledMatchesUnpooledRunPoint) {
  const Application app = apps::build_synthetic();
  const SimTime d = SimTime::from_ms(120);
  for (int threads : {1, 3}) {
    const SweepPoint legacy =
        run_point_unpooled(app, config(40, threads), d, 0.0);
    const SweepPoint pooled = run_point(app, config(40, threads), d, 0.0);
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_point_identical(legacy, pooled);
  }
}

TEST(PoolDeterminism, LoadSweepRunsExactlyOneCanonicalAnalysis) {
  const Application app = apps::build_synthetic();
  const std::vector<double> loads = sweep_range(0.1, 1.0, 0.1);
  ASSERT_EQ(loads.size(), 10u);

  for (bool parallel_points : {true, false}) {
    ExperimentConfig cfg = config(5, 2);
    cfg.parallel_points = parallel_points;
    const std::uint64_t before = canonical_analysis_count();
    const std::vector<SweepPoint> sweep = sweep_load(app, cfg, loads);
    EXPECT_EQ(sweep.size(), 10u);
    EXPECT_EQ(canonical_analysis_count() - before, 1u)
        << "a load sweep must run round 1 once, parallel_points="
        << parallel_points;
  }
}

}  // namespace
}  // namespace paserta
