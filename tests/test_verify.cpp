// Tests for the trace verifier: genuine traces pass; each class of
// corruption is detected.
#include <gtest/gtest.h>

#include "apps/synthetic.h"
#include "core/offline.h"
#include "sim/verify.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

struct Fixture {
  Application app = apps::build_synthetic();
  PowerModel pm{LevelTable::intel_xscale()};
  Overheads ovh;
  OfflineResult off;
  RunScenario sc;
  SimResult result;

  Fixture() {
    OfflineOptions o;
    o.cpus = 2;
    o.overhead_budget = ovh.worst_case_budget(pm.table());
    o.deadline = canonical_worst_makespan(app, 2, o.overhead_budget) * 2;
    off = analyze_offline(app, o);
    Rng rng(33);
    sc = draw_scenario(app.graph, rng);
    result = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  }

  TaskRecord& some_task_record() {
    for (TaskRecord& r : result.trace)
      if (!app.graph.node(r.node).is_dummy()) return r;
    throw std::runtime_error("no task record");
  }
};

TEST(Verify, GenuineTracePasses) {
  Fixture f;
  const VerifyReport rep = verify_trace(f.app, f.off, f.sc, f.result);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
  EXPECT_TRUE(rep.violations.empty());
}

TEST(Verify, DetectsMissingNode) {
  Fixture f;
  // Drop the last record (a taken-path node never "executed").
  f.result.trace.pop_back();
  const VerifyReport rep = verify_trace(f.app, f.off, f.sc, f.result);
  EXPECT_FALSE(rep.ok);
}

TEST(Verify, DetectsDuplicateExecution) {
  Fixture f;
  f.result.trace.push_back(f.result.trace.front());
  const VerifyReport rep = verify_trace(f.app, f.off, f.sc, f.result);
  EXPECT_FALSE(rep.ok);
}

TEST(Verify, DetectsUntakenPathExecution) {
  Fixture f;
  // Find a node that is NOT in the executed set and pretend it ran.
  const auto executed = executed_set(f.app.graph, f.sc);
  NodeId ghost;
  for (NodeId id : f.app.graph.all_nodes()) {
    if (!executed[id.value] &&
        f.app.graph.node(id).kind == NodeKind::Computation) {
      ghost = id;
      break;
    }
  }
  ASSERT_TRUE(ghost.valid());
  TaskRecord fake;
  fake.node = ghost;
  fake.cpu = 0;
  fake.eo = f.off.eo(ghost);
  f.result.trace.push_back(fake);
  const VerifyReport rep = verify_trace(f.app, f.off, f.sc, f.result);
  EXPECT_FALSE(rep.ok);
}

TEST(Verify, DetectsExecutionOrderViolation) {
  Fixture f;
  // Swap two adjacent computation records' positions in dispatch order.
  auto& t = f.result.trace;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!f.app.graph.node(t[i].node).is_dummy() &&
        !f.app.graph.node(t[i + 1].node).is_dummy()) {
      std::swap(t[i], t[i + 1]);
      break;
    }
  }
  const VerifyReport rep = verify_trace(f.app, f.off, f.sc, f.result);
  EXPECT_FALSE(rep.ok);
}

TEST(Verify, DetectsPrecedenceViolation) {
  Fixture f;
  // Make some successor start before its predecessor finished.
  for (TaskRecord& r : f.result.trace) {
    const Node& n = f.app.graph.node(r.node);
    if (!n.is_dummy() && !n.preds.empty()) {
      r.dispatch_time = SimTime::zero() - ms(1);
      break;
    }
  }
  const VerifyReport rep = verify_trace(f.app, f.off, f.sc, f.result);
  EXPECT_FALSE(rep.ok);
}

TEST(Verify, DetectsProcessorOverlap) {
  Fixture f;
  // Move every record to cpu 0 with overlapping times.
  int moved = 0;
  for (TaskRecord& r : f.result.trace) {
    if (f.app.graph.node(r.node).is_dummy()) continue;
    r.cpu = 0;
    if (++moved >= 2) break;
  }
  // Force the first two task intervals to overlap.
  TaskRecord* first = nullptr;
  for (TaskRecord& r : f.result.trace) {
    if (f.app.graph.node(r.node).is_dummy()) continue;
    if (first == nullptr) {
      first = &r;
    } else {
      r.dispatch_time = first->dispatch_time;
      r.finish = first->finish;
      break;
    }
  }
  const VerifyReport rep = verify_trace(f.app, f.off, f.sc, f.result);
  EXPECT_FALSE(rep.ok);
}

TEST(Verify, DetectsDeadlineMiss) {
  Fixture f;
  f.result.finish_time = f.off.deadline() + ms(1);
  const VerifyReport rep = verify_trace(f.app, f.off, f.sc, f.result);
  EXPECT_FALSE(rep.ok);
  // And the check can be disabled.
  VerifyOptions opt;
  opt.check_deadline = false;
  opt.check_bounds = false;
  const VerifyReport rep2 = verify_trace(f.app, f.off, f.sc, f.result, opt);
  EXPECT_TRUE(rep2.ok);
}

TEST(Verify, DetectsLstViolation) {
  Fixture f;
  TaskRecord& r = f.some_task_record();
  r.dispatch_time = f.off.lst(r.node) + ms(1);
  r.finish = f.off.eet(r.node) + ms(2);
  const VerifyReport rep = verify_trace(f.app, f.off, f.sc, f.result);
  EXPECT_FALSE(rep.ok);
  // Bounds checking off: the LST/EET violation is ignored (but precedence
  // or ordering may still fire, so only assert the specific message).
  VerifyOptions opt;
  opt.check_bounds = false;
  const VerifyReport rep2 = verify_trace(f.app, f.off, f.sc, f.result, opt);
  for (const std::string& v : rep2.violations)
    EXPECT_EQ(v.find("after its LST"), std::string::npos) << v;
}

TEST(Verify, ViolationMessagesNameTheNode) {
  Fixture f;
  f.result.trace.pop_back();
  const VerifyReport rep = verify_trace(f.app, f.off, f.sc, f.result);
  ASSERT_FALSE(rep.violations.empty());
  EXPECT_NE(rep.violations[0].find("node"), std::string::npos);
}

}  // namespace
}  // namespace paserta
