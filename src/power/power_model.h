// Processor power/energy model (paper §2.3).
//
// Dynamic power dominates: P = C_ef * V^2 * f. Idle (and sleeping)
// processors consume a fixed fraction of the maximum power level (5 % in
// the paper, after [2]). Speed changes carry a time overhead and — during
// the transition — power at the higher of the two involved levels
// (a documented interpretation; the paper only counts the time).
#pragma once

#include <cstdint>

#include "common/time.h"
#include "power/level_table.h"

namespace paserta {

/// Energy in joules.
using Energy = double;

/// The two overheads the paper accounts for (§5).
struct Overheads {
  /// Cycles to compute a new speed at a power-management point
  /// (paper: ~300 cycles measured with SimpleScalar). Executed at the
  /// processor's *current* frequency.
  std::uint64_t speed_compute_cycles = 300;

  /// Wall-clock cost of one voltage/frequency transition (paper: 5 us
  /// in the evaluated configurations; real hardware of the era needed
  /// 25-150 us). Charged only when the level actually changes.
  SimTime speed_change_time = SimTime::from_us(5.0);

  /// Worst-case budget of one dispatch's overheads, used by the offline
  /// phase to inflate task WCETs so the online guarantee survives the
  /// overheads (see OfflineAnalysis). Computed against a table's f_min.
  SimTime worst_case_budget(const LevelTable& table) const {
    return cycles_to_time(speed_compute_cycles, table.f_min()) +
           speed_change_time;
  }
};

class PowerModel {
 public:
  /// `c_ef` is the effective switched capacitance (farads);
  /// `idle_fraction` is idle power as a fraction of P(max level).
  PowerModel(LevelTable table, double c_ef = 1e-9, double idle_fraction = 0.05);

  const LevelTable& table() const { return table_; }
  double c_ef() const { return c_ef_; }
  double idle_fraction() const { return idle_fraction_; }

  /// Dynamic power at an operating point: C_ef * V^2 * f (watts).
  Energy power(const Level& l) const {
    return c_ef_ * l.volts * l.volts * static_cast<double>(l.freq);
  }
  Energy power(std::size_t level_index) const {
    return power(table_.level(level_index));
  }

  /// Maximum power (at the top level).
  Energy max_power() const { return level_power_.back(); }

  /// Idle/sleep power (fraction of max).
  Energy idle_power() const { return idle_power_; }

  /// Power at every level, indexed by level — precomputed at construction
  /// so per-dispatch energy accounting is a load and a multiply (the
  /// simulation engine keeps a span over this).
  const std::vector<Energy>& level_powers() const { return level_power_; }

  /// Energy of running busy for `t` at level `i`.
  Energy busy_energy(std::size_t level_index, SimTime t) const {
    return level_power_[level_index] * t.sec();
  }

  /// Energy of idling for `t`.
  Energy idle_energy(SimTime t) const { return idle_power_ * t.sec(); }

  /// Energy of one voltage transition between levels `from` and `to`
  /// lasting `t`: power at the higher of the two levels for the duration.
  Energy transition_energy(std::size_t from, std::size_t to, SimTime t) const {
    const Energy p = std::max(level_power_[from], level_power_[to]);
    return p * t.sec();
  }

 private:
  LevelTable table_;
  double c_ef_;
  double idle_fraction_;
  std::vector<Energy> level_power_;  // power(level(i)) for every i
  Energy idle_power_ = 0.0;
};

}  // namespace paserta
