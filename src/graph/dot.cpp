#include "graph/dot.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace paserta {

void write_dot(std::ostream& os, const AndOrGraph& g, const std::string& title) {
  os << "digraph \"" << title << "\" {\n"
     << "  rankdir=TB;\n  node [fontsize=10];\n";
  for (NodeId id : g.all_nodes()) {
    const Node& n = g.node(id);
    os << "  n" << id.value << " [";
    switch (n.kind) {
      case NodeKind::Computation:
        os << "shape=circle, label=\"" << n.name << "\\n" << std::fixed
           << std::setprecision(1) << n.wcet.ms() << "/" << n.acet.ms()
           << "\"";
        break;
      case NodeKind::AndNode:
        os << "shape=diamond, label=\"" << n.name << "\"";
        break;
      case NodeKind::OrNode:
        os << "shape=doublecircle, label=\"" << n.name << "\"";
        break;
    }
    os << "];\n";
  }
  for (NodeId id : g.all_nodes()) {
    const Node& n = g.node(id);
    for (std::size_t s = 0; s < n.succs.size(); ++s) {
      os << "  n" << id.value << " -> n" << n.succs[s].value;
      if (!n.succ_prob.empty()) {
        os << " [label=\"" << std::fixed << std::setprecision(0)
           << n.succ_prob[s] * 100.0 << "%\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
}

std::string to_dot(const AndOrGraph& g, const std::string& title) {
  std::ostringstream oss;
  write_dot(oss, g, title);
  return oss.str();
}

}  // namespace paserta
