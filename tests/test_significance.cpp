// Tests for the Welch t-test machinery against known reference values.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"
#include "common/significance.h"

namespace paserta {
namespace {

// ----------------------------------------------- incomplete beta function

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(regularized_incomplete_beta(1, 1, 0.3), 0.3, 1e-12);
  // I_x(2,2) = 3x^2 - 2x^3.
  EXPECT_NEAR(regularized_incomplete_beta(2, 2, 0.4),
              3 * 0.16 - 2 * 0.064, 1e-12);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  const double v = regularized_incomplete_beta(2.5, 4.0, 0.35);
  EXPECT_NEAR(v, 1.0 - regularized_incomplete_beta(4.0, 2.5, 0.65), 1e-12);
  // Endpoints.
  EXPECT_EQ(regularized_incomplete_beta(3, 2, 0.0), 0.0);
  EXPECT_EQ(regularized_incomplete_beta(3, 2, 1.0), 1.0);
}

TEST(IncompleteBeta, DomainChecked) {
  EXPECT_THROW(regularized_incomplete_beta(0, 1, 0.5), Error);
  EXPECT_THROW(regularized_incomplete_beta(1, 1, 1.5), Error);
}

// ----------------------------------------------------- Student-t p-values

TEST(StudentT, ReferenceQuantiles) {
  // Two-sided p at the textbook critical values.
  // t = 2.776, df = 4 -> p = 0.05.
  EXPECT_NEAR(student_t_two_sided_p(2.776, 4), 0.05, 2e-4);
  // t = 1.96, df -> large ~ normal -> p = 0.05.
  EXPECT_NEAR(student_t_two_sided_p(1.96, 10000), 0.05, 5e-4);
  // t = 0 -> p = 1.
  EXPECT_DOUBLE_EQ(student_t_two_sided_p(0.0, 7), 1.0);
  // Symmetric in t.
  EXPECT_DOUBLE_EQ(student_t_two_sided_p(1.5, 9),
                   student_t_two_sided_p(-1.5, 9));
  // Infinite t -> p = 0.
  EXPECT_EQ(student_t_two_sided_p(
                std::numeric_limits<double>::infinity(), 5),
            0.0);
}

// ------------------------------------------------------------ Welch test

RunningStat sample(Rng& rng, int n, double mean, double sd) {
  RunningStat st;
  for (int i = 0; i < n; ++i) st.add(rng.next_normal(mean, sd));
  return st;
}

TEST(Welch, DetectsClearDifference) {
  Rng rng(1);
  const RunningStat a = sample(rng, 200, 0.50, 0.05);
  const RunningStat b = sample(rng, 200, 0.55, 0.05);
  const TTestResult r = welch_t_test(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_TRUE(r.significant());
  EXPECT_NEAR(r.mean_diff, -0.05, 0.02);
  EXPECT_LT(r.t, 0.0);
}

TEST(Welch, NoFalsePositiveOnEqualMeans) {
  // Same distribution: across repetitions, p < 0.05 should be rare.
  Rng rng(2);
  int rejections = 0;
  const int trials = 200;
  for (int k = 0; k < trials; ++k) {
    const RunningStat a = sample(rng, 50, 1.0, 0.2);
    const RunningStat b = sample(rng, 50, 1.0, 0.2);
    if (welch_t_test(a, b).significant()) ++rejections;
  }
  // Expected ~5 % rejections; allow generous slack.
  EXPECT_LT(rejections, trials / 8);
}

TEST(Welch, PValueIsRoughlyUniformUnderNull) {
  Rng rng(3);
  RunningStat pvals;
  for (int k = 0; k < 300; ++k) {
    const RunningStat a = sample(rng, 40, 2.0, 0.3);
    const RunningStat b = sample(rng, 40, 2.0, 0.3);
    pvals.add(welch_t_test(a, b).p_value);
  }
  EXPECT_NEAR(pvals.mean(), 0.5, 0.07);
}

TEST(Welch, UnequalVariancesHandled) {
  Rng rng(4);
  const RunningStat a = sample(rng, 30, 1.0, 0.01);
  const RunningStat b = sample(rng, 300, 1.0, 1.0);
  const TTestResult r = welch_t_test(a, b);
  // Welch df is dominated by the noisier sample, far below the pooled df.
  EXPECT_LT(r.df, 340.0);
  EXPECT_GT(r.df, 10.0);
  EXPECT_FALSE(r.significant());
}

TEST(Welch, DegenerateZeroVariance) {
  RunningStat a, b, c;
  for (int i = 0; i < 5; ++i) {
    a.add(1.0);
    b.add(1.0);
    c.add(2.0);
  }
  EXPECT_DOUBLE_EQ(welch_t_test(a, b).p_value, 1.0);
  EXPECT_DOUBLE_EQ(welch_t_test(a, c).p_value, 0.0);
}

TEST(Welch, RequiresTwoObservations) {
  RunningStat a, b;
  a.add(1.0);
  b.add(1.0);
  b.add(2.0);
  EXPECT_THROW(welch_t_test(a, b), Error);
}

}  // namespace
}  // namespace paserta
