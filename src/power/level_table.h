// Discrete voltage/frequency level tables (paper §2.3, Tables 1 & 2).
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "common/time.h"

namespace paserta {

/// One DVS operating point.
struct Level {
  Freq freq = 0;       // Hz
  double volts = 0.0;  // supply voltage

  bool operator==(const Level&) const = default;
};

/// An ordered set of operating points for one processor model.
///
/// Levels are sorted by ascending frequency; `quantize_up` implements the
/// deadline-safe rounding used throughout the paper: the slowest level that
/// is at least as fast as the desired frequency.
class LevelTable {
 public:
  LevelTable(std::string name, std::vector<Level> levels);

  const std::string& name() const { return name_; }
  std::size_t size() const { return levels_.size(); }
  const Level& level(std::size_t i) const { return levels_.at(i); }
  const std::vector<Level>& levels() const { return levels_; }

  const Level& min_level() const { return levels_.front(); }
  const Level& max_level() const { return levels_.back(); }
  Freq f_min() const { return levels_.front().freq; }
  Freq f_max() const { return levels_.back().freq; }

  /// Index of the slowest level with freq >= desired; clamps to the extreme
  /// levels (below f_min -> index 0, above f_max -> last index). This is the
  /// "minimal speed limitation" central to the paper's findings. Inline:
  /// the engine quantizes once per dynamic dispatch, and tables are small
  /// enough that the call overhead would rival the search.
  std::size_t quantize_up(Freq desired) const {
    const auto it = std::lower_bound(
        levels_.begin(), levels_.end(), desired,
        [](const Level& l, Freq f) { return l.freq < f; });
    if (it == levels_.end()) return levels_.size() - 1;
    return static_cast<std::size_t>(it - levels_.begin());
  }

  /// Index of the fastest level with freq <= desired; clamps to the extreme
  /// levels. Deadline-UNSAFE for required speeds — used only for
  /// speculative floors, which the greedy component backstops.
  std::size_t quantize_down(Freq desired) const {
    const auto it = std::upper_bound(
        levels_.begin(), levels_.end(), desired,
        [](Freq f, const Level& l) { return f < l.freq; });
    if (it == levels_.begin()) return 0;
    return static_cast<std::size_t>(it - levels_.begin()) - 1;
  }

  /// Index of the level with exactly this frequency; throws if absent.
  std::size_t index_of(Freq f) const;

  // ---- Built-in tables -----------------------------------------------

  /// Transmeta Crusoe TM5400 (paper Table 1): 16 levels, 200 MHz @ 1.10 V
  /// to 700 MHz @ 1.65 V. The paper's table print is corrupted in our
  /// source; frequencies step uniformly by ~33 MHz and voltages by
  /// ~0.0367 V across the published range, matching the authors' other
  /// publications of the same table.
  static LevelTable transmeta_tm5400();

  /// Intel XScale 80200 (paper Table 2): 150/400/600/800/1000 MHz at
  /// 0.75/1.0/1.3/1.6/1.8 V — few levels, wide gaps.
  static LevelTable intel_xscale();

  /// A synthetic table with `n` levels spaced uniformly in frequency
  /// between f_min and f_max, with voltage linear in frequency between
  /// v_min and v_max. Used for the min-speed and level-count ablations the
  /// paper lists as future work.
  static LevelTable synthetic(std::string name, std::size_t n, Freq f_min,
                              Freq f_max, double v_min, double v_max);

  /// A near-continuous table (200 levels) emulating the "infinite levels"
  /// assumption of earlier DVS papers; for comparison experiments.
  static LevelTable ideal_continuous(Freq f_min, Freq f_max, double v_min,
                                     double v_max);

 private:
  std::string name_;
  std::vector<Level> levels_;
};

}  // namespace paserta
