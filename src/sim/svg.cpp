#include "sim/svg.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace paserta {
namespace {

constexpr int kMarginLeft = 48;
constexpr int kMarginTop = 28;
constexpr int kLaneGap = 8;
constexpr int kPowerStripHeight = 90;

/// Level index -> fill color: a cold-to-hot ramp (slow = blue, fast = red).
std::string level_color(std::size_t level, std::size_t levels) {
  const double frac =
      levels <= 1 ? 1.0
                  : static_cast<double>(level) /
                        static_cast<double>(levels - 1);
  const int r = static_cast<int>(40 + 205 * frac);
  const int g = static_cast<int>(90 + 60 * (1.0 - frac));
  const int b = static_cast<int>(220 - 180 * frac);
  std::ostringstream oss;
  oss << "rgb(" << r << "," << g << "," << b << ")";
  return oss.str();
}

std::string escape_xml(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void write_svg_gantt(std::ostream& os, const Application& app,
                     const OfflineResult& off, const PowerModel& pm,
                     const Overheads& ovh, const SimResult& result,
                     const SvgOptions& opt) {
  PASERTA_REQUIRE(opt.width >= 200, "svg width must be at least 200 px");
  const int cpus = off.cpus();
  const SimTime horizon = std::max(off.deadline(), result.finish_time);
  const double plot_w = opt.width - kMarginLeft - 12;
  const auto x_of = [&](SimTime t) {
    return kMarginLeft + plot_w * static_cast<double>(t.ps) /
                             static_cast<double>(horizon.ps);
  };

  const int lanes_h = cpus * (opt.lane_height + kLaneGap);
  const int power_h = opt.show_power_curve ? kPowerStripHeight + 24 : 0;
  const int total_h = kMarginTop + lanes_h + power_h + 30;

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opt.width
     << "\" height=\"" << total_h << "\" viewBox=\"0 0 " << opt.width << " "
     << total_h << "\">\n"
     << "<style>text{font:10px sans-serif;fill:#333}"
        ".lane{fill:#f4f4f4}.task{stroke:#555;stroke-width:.5}"
        ".switch{stroke:#c00;stroke-width:1.5}"
        ".deadline{stroke:#c00;stroke-dasharray:4 3}"
        ".power{fill:none;stroke:#28c;stroke-width:1.2}</style>\n";

  os << "<text x=\"" << kMarginLeft << "\" y=\"14\">" << escape_xml(app.name)
     << " — deadline " << to_string(off.deadline()) << ", finish "
     << to_string(result.finish_time) << ", " << result.speed_changes
     << " switch(es)</text>\n";

  // Lanes.
  for (int c = 0; c < cpus; ++c) {
    const int y = kMarginTop + c * (opt.lane_height + kLaneGap);
    os << "<rect class=\"lane\" x=\"" << kMarginLeft << "\" y=\"" << y
       << "\" width=\"" << plot_w << "\" height=\"" << opt.lane_height
       << "\"/>\n"
       << "<text x=\"4\" y=\"" << y + opt.lane_height / 2 + 3 << "\">cpu"
       << c << "</text>\n";
  }

  // Task boxes.
  const std::size_t levels = pm.table().size();
  for (const TaskRecord& rec : result.trace) {
    const Node& n = app.graph.node(rec.node);
    if (n.is_dummy() || rec.cpu < 0) continue;
    const int y = kMarginTop + rec.cpu * (opt.lane_height + kLaneGap);
    const double x0 = x_of(rec.exec_start);
    const double x1 = x_of(rec.finish);
    os << "<rect class=\"task\" x=\"" << x0 << "\" y=\"" << y + 2
       << "\" width=\"" << std::max(1.0, x1 - x0) << "\" height=\""
       << opt.lane_height - 4 << "\" fill=\""
       << level_color(rec.level, levels) << "\"><title>"
       << escape_xml(n.name) << " @"
       << pm.table().level(rec.level).freq / kMHz << "MHz ["
       << to_string(rec.exec_start) << ", " << to_string(rec.finish)
       << "]</title></rect>\n";
    if (opt.show_labels && x1 - x0 > 28) {
      os << "<text x=\"" << x0 + 3 << "\" y=\"" << y + opt.lane_height / 2 + 3
         << "\">" << escape_xml(n.name) << "</text>\n";
    }
    if (rec.switched) {
      const double xs = x_of(rec.dispatch_time);
      os << "<line class=\"switch\" x1=\"" << xs << "\" y1=\"" << y
         << "\" x2=\"" << xs << "\" y2=\"" << y + opt.lane_height
         << "\"><title>voltage switch</title></line>\n";
    }
  }

  // Deadline marker across all lanes.
  const double xd = x_of(off.deadline());
  os << "<line class=\"deadline\" x1=\"" << xd << "\" y1=\"" << kMarginTop
     << "\" x2=\"" << xd << "\" y2=\"" << kMarginTop + lanes_h - kLaneGap
     << "\"/>\n";

  // Power strip.
  if (opt.show_power_curve) {
    const PowerTrace trace = build_power_trace(app, off, pm, ovh, result);
    const double peak = std::max(trace.peak_watts(), 1e-12);
    const int y0 = kMarginTop + lanes_h + 12;
    const auto y_of = [&](double watts) {
      return y0 + kPowerStripHeight * (1.0 - watts / peak);
    };
    os << "<text x=\"4\" y=\"" << y0 + 10 << "\">P(t)</text>\n<polyline "
          "class=\"power\" points=\"";
    for (const PowerSegment& seg : trace.segments) {
      os << x_of(seg.begin) << "," << y_of(seg.watts) << " "
         << x_of(seg.end) << "," << y_of(seg.watts) << " ";
    }
    os << "\"/>\n";
    os << "<text x=\"" << kMarginLeft << "\" y=\""
       << y0 + kPowerStripHeight + 12 << "\">peak "
       << trace.peak_watts() << " W, energy "
       << trace.total_energy() * 1e3 << " mJ</text>\n";
  }

  os << "</svg>\n";
}

std::string svg_gantt_to_string(const Application& app,
                                const OfflineResult& off, const PowerModel& pm,
                                const Overheads& ovh, const SimResult& result,
                                const SvgOptions& options) {
  std::ostringstream oss;
  write_svg_gantt(oss, app, off, pm, ovh, result, options);
  return oss.str();
}

}  // namespace paserta
