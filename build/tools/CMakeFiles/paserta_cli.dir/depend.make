# Empty dependencies file for paserta_cli.
# This may be replaced when dependencies are built.
