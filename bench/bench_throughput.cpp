// Throughput of the Monte-Carlo hot loop on the paper's Fig. 4 point (ATR
// on the 2-CPU Transmeta platform at load 0.5): runs/sec serial and with a
// worker pool, emitted as JSON on stdout. Traces are off, so the loop runs
// with zero steady-state allocation (one SimWorkspace per worker).
//
// Usage: bench_throughput [runs] [threads]
//   runs     Monte-Carlo runs per measurement (default 2000)
//   threads  pool size for the threaded sample (default: hardware threads)
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "core/offline.h"
#include "harness/figures.h"
#include "harness/throughput.h"

int main(int argc, char** argv) {
  using namespace paserta;
  const int runs = benchutil::runs_from_args(argc, argv, 2000);
  int threads = argc > 2 ? std::atoi(argv[2]) : 0;
  if (threads <= 0)
    threads = std::max(2, static_cast<int>(std::thread::hardware_concurrency()));

  const FigureDef fig = paper_figure("fig4a", runs);
  const Application app = figure_workload(fig);
  ExperimentConfig cfg = fig.config;
  // Only the summary is consumed: leave verify_traces off so the engine
  // records no traces and the hot loop is allocation-free.
  cfg.verify_traces = false;

  const double load = 0.5;
  const SimTime w = canonical_worst_makespan(
      app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
      cfg.heuristic);
  const SimTime deadline{
      static_cast<std::int64_t>(std::ceil(static_cast<double>(w.ps) / load))};

  const ThroughputReport report = measure_throughput(
      app, cfg, deadline, {1, threads}, fig.id + "@load=0.5");
  std::cout << throughput_to_json(report);
  return 0;
}
