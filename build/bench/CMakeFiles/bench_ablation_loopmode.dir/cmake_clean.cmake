file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_loopmode.dir/bench_ablation_loopmode.cpp.o"
  "CMakeFiles/bench_ablation_loopmode.dir/bench_ablation_loopmode.cpp.o.d"
  "bench_ablation_loopmode"
  "bench_ablation_loopmode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_loopmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
