file(REMOVE_RECURSE
  "CMakeFiles/atr_pipeline.dir/atr_pipeline.cpp.o"
  "CMakeFiles/atr_pipeline.dir/atr_pipeline.cpp.o.d"
  "atr_pipeline"
  "atr_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atr_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
