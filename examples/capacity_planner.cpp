#include "common/error.h"
// Capacity planner: size a platform for a periodic workload.
//
//   $ ./capacity_planner [frames_per_second] [frames]
//
// Given the MPEG-style decoder and a target frame rate, searches
// (platform x CPU count x scheme) for configurations that (a) fit the
// frame deadline in the worst case and (b) minimize average energy —
// using the PowerAwareScheduler facade and paired significance tests to
// report whether the winner's margin is real.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <vector>

#include "apps/mpeg.h"
#include "common/significance.h"
#include "common/table.h"
#include "core/scheduler.h"

using namespace paserta;

int main(int argc, char** argv) {
  const double fps = argc > 1 ? std::atof(argv[1]) : 50.0;
  const int frames = argc > 2 ? std::max(10, std::atoi(argv[2])) : 400;
  const SimTime deadline = SimTime::from_ms(1000.0 / fps);

  const Application app = apps::build_mpeg();
  std::cout << "Workload: MPEG-style decoder, " << app.graph.task_count()
            << " tasks, frame deadline " << to_string(deadline) << " ("
            << fps << " fps), " << frames << " frames per cell\n\n";

  struct Cell {
    std::string table;
    int cpus;
    Scheme scheme;
    double mean_energy_mj;
    RunningStat energies;
  };
  std::vector<Cell> feasible;
  int infeasible = 0;

  for (const LevelTable& table :
       {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
    for (int cpus : {1, 2, 4}) {
      for (Scheme scheme : {Scheme::SPM, Scheme::GSS, Scheme::AS}) {
        PowerAwareScheduler::Config cfg;
        cfg.cpus = cpus;
        cfg.table = table;
        cfg.scheme = scheme;
        cfg.deadline = deadline;
        cfg.track_npm_baseline = false;
        try {
          PowerAwareScheduler sched(app, cfg);
          Rng rng(1);
          RunningStat energies;
          for (int f = 0; f < frames; ++f)
            energies.add(sched.run_frame(rng).total_energy() * 1e3);
          if (sched.summary().deadline_misses > 0) {
            ++infeasible;
            continue;
          }
          feasible.push_back(Cell{table.name(), cpus, scheme,
                                  energies.mean(), energies});
        } catch (const Error&) {
          ++infeasible;  // canonical worst case does not fit the deadline
        }
      }
    }
  }

  if (feasible.empty()) {
    std::cout << "no configuration meets " << to_string(deadline)
              << " per frame; lower the frame rate or widen the search\n";
    return 1;
  }

  std::sort(feasible.begin(), feasible.end(),
            [](const Cell& a, const Cell& b) {
              return a.mean_energy_mj < b.mean_energy_mj;
            });

  Table t({"rank", "platform", "cpus", "scheme", "mJ/frame", "ci95"});
  int rank = 1;
  for (const Cell& c : feasible) {
    t.add_row({std::to_string(rank++), c.table, std::to_string(c.cpus),
               to_string(c.scheme), Table::num(c.mean_energy_mj, 3),
               Table::num(c.energies.ci95_halfwidth(), 3)});
  }
  t.write_pretty(std::cout);
  std::cout << "\n(" << infeasible
            << " configurations rejected: worst case misses the deadline "
               "or frames were lost)\n";

  if (feasible.size() >= 2) {
    const TTestResult tt =
        welch_t_test(feasible[0].energies, feasible[1].energies);
    std::cout << "\nwinner vs runner-up: diff "
              << Table::num(tt.mean_diff, 3) << " mJ/frame, p = "
              << tt.p_value
              << (tt.significant() ? " (significant)"
                                   : " (not significant — treat as a tie)")
              << "\n";
  }
  return 0;
}
