// Longest-Task-First list scheduling of one program section (paper §3.1).
//
// List scheduling puts tasks into a ready queue as soon as they become
// ready and dispatches from the front to idle processors; among tasks that
// become ready simultaneously the longest (by WCET) goes first. This is the
// heuristic the paper fixes for both the offline (canonical) and online
// phases; the canonical dispatch order becomes the execution order (EO)
// that the online scheduler must preserve.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace paserta {

/// Canonical schedule of one section on `cpus` identical processors.
struct SectionSchedule {
  struct Item {
    SimTime start{};
    SimTime finish{};
    int cpu = -1;  // -1 for zero-duration dummies (they only borrow a CPU)
  };

  /// Tasks in the order they were dispatched (defines execution order).
  std::vector<NodeId> dispatch_order;
  std::unordered_map<std::uint32_t, Item> items;
  SimTime makespan{};

  const Item& item(NodeId id) const { return items.at(id.value); }
};

/// Priority rule among tasks that become ready simultaneously. The paper
/// fixes LTF for its evaluation but notes (§3.2) that *any* heuristic
/// works as long as the offline and online phases use the same one — the
/// execution order recorded offline is what the online phase preserves.
enum class ListHeuristic {
  LongestTaskFirst,   // the paper's choice
  ShortestTaskFirst,
  InsertionOrder,     // FIFO by node id
};

const char* to_string(ListHeuristic h);

/// Schedules exactly the nodes in `members` (edges among non-members are
/// ignored) with the given heuristic. `duration(id)` supplies each node's
/// execution time at f_max (typically inflated WCET or ACET); dummies must
/// return zero. Deterministic: ties break on (ready time, heuristic key,
/// node id).
SectionSchedule ltf_schedule(
    const AndOrGraph& g, std::span<const NodeId> members, int cpus,
    const std::function<SimTime(NodeId)>& duration,
    ListHeuristic heuristic = ListHeuristic::LongestTaskFirst);

}  // namespace paserta
