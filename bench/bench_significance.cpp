// Head-to-head scheme comparison with paired statistics: is AS's advantage
// over GSS (and over SS1) statistically real at the paper's run counts?
// Uses per-run energy differences on identical scenarios (paired design)
// and a one-sample t-test against zero.
#include "apps/atr.h"
#include "bench_util.h"
#include "common/significance.h"
#include "core/offline.h"
#include "sim/engine.h"
#include "sim/sampler.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 1000);
  const Application app = apps::build_atr();
  // One sampler for all loads/tables: the graph never changes, and
  // draw() is stream-compatible with the per-run draw_scenario walk.
  const ScenarioSampler sampler(app.graph);

  for (const LevelTable& table :
       {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
    const PowerModel pm(table);
    Overheads ovh;
    ovh.speed_change_time = SimTime::from_us(5.0);

    std::cout << "# Paired per-run energy differences (normalized to NPM), "
              << "ATR, 2 CPUs, " << table.name() << ", runs=" << runs
              << "\n";
    Table t({"load", "pair", "mean_diff", "ci95", "t", "p", "verdict"});
    for (double load : {0.3, 0.5, 0.7, 0.9}) {
      OfflineOptions o;
      o.cpus = 2;
      o.overhead_budget = ovh.worst_case_budget(table);
      const SimTime w = canonical_worst_makespan(app, 2, o.overhead_budget);
      o.deadline = SimTime{static_cast<std::int64_t>(
          static_cast<double>(w.ps) / load + 1)};
      const OfflineResult off = analyze_offline(app, o);

      RunningStat as_vs_gss, as_vs_ss1;
      for (int r = 0; r < runs; ++r) {
        Rng rng(Rng::stream_seed(1234, static_cast<std::uint64_t>(r)));
        const RunScenario sc = sampler.draw(rng);
        const double npm =
            simulate(app, off, pm, ovh, Scheme::NPM, sc).total_energy();
        const double gss =
            simulate(app, off, pm, ovh, Scheme::GSS, sc).total_energy() / npm;
        const double ss1 =
            simulate(app, off, pm, ovh, Scheme::SS1, sc).total_energy() / npm;
        const double as =
            simulate(app, off, pm, ovh, Scheme::AS, sc).total_energy() / npm;
        as_vs_gss.add(as - gss);
        as_vs_ss1.add(as - ss1);
      }
      for (const auto& [name, stat] :
           {std::pair<const char*, const RunningStat*>{"AS-GSS", &as_vs_gss},
            {"AS-SS1", &as_vs_ss1}}) {
        const TTestResult tt = one_sample_t_test(*stat);
        t.add_row({Table::num(load, 2), name, Table::num(tt.mean_diff, 5),
                   Table::num(tt.ci95_halfwidth, 5), Table::num(tt.t, 2),
                   Table::num(tt.p_value, 6),
                   tt.significant()
                       ? (tt.mean_diff < 0 ? "AS significantly better"
                                           : "AS significantly worse")
                       : "no significant difference"});
      }
    }
    t.write_csv(std::cout);
    std::cout << "\n";
  }
  return 0;
}
