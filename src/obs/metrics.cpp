#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "harness/json.h"

namespace paserta {

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (int s = 0; s < kMaxShards; ++s) total += shard_value(s);
  return total;
}

void Counter::reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

double Gauge::value() const {
  double total = 0.0;
  for (const Shard& s : shards_)
    total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Gauge::reset() {
  for (Shard& s : shards_) s.v.store(0.0, std::memory_order_relaxed);
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  PASERTA_REQUIRE(bounds_.size() + 1 <= kMaxBuckets,
                  "histogram limited to " << kMaxBuckets - 1 << " bounds, got "
                                          << bounds_.size());
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    PASERTA_REQUIRE(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly ascending");
}

std::uint64_t Histogram::bucket_value(std::size_t b) const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_)
    total += s.buckets[b].load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < bucket_count(); ++b) total += bucket_value(b);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& s : shards_)
    total += s.sum.load(std::memory_order_relaxed);
  return total;
}

double Histogram::percentile(double q) const {
  PASERTA_REQUIRE(q >= 0.0 && q <= 1.0,
                  "percentile quantile must be in [0, 1], got " << q);
  const std::uint64_t total = count();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  // No finite bounds: everything lives in the overflow bucket and there is
  // no finite edge to clamp to.
  if (bounds_.empty()) return std::numeric_limits<double>::quiet_NaN();
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < bounds_.size(); ++b) {
    const std::uint64_t in_bucket = bucket_value(b);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) >= rank) {
      const double upper = bounds_[b];
      const double lower = b == 0 ? 0.0 : bounds_[b - 1];
      if (in_bucket == 0) return upper;
      const std::uint64_t below = cumulative - in_bucket;
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
  }
  // Rank lands in the overflow bucket: clamp to the last finite bound.
  return bounds_.back();
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

void SimCounters::add(const SimCounters& o) {
  dispatches += o.dispatches;
  tasks += o.tasks;
  or_fires += o.or_fires;
  speed_changes += o.speed_changes;
  spec_picks += o.spec_picks;
  greedy_picks += o.greedy_picks;
  reclaimed_slack_ps += o.reclaimed_slack_ps;
  idle_ps += o.idle_ps;
  if (o.levels == 0) return;  // other side carries no ledger
  if (levels == 0) {
    // Adopt the other ledger's shape wholesale.
    levels = o.levels;
    busy_ps = o.busy_ps;
    compute_ps = o.compute_ps;
    transitions = o.transitions;
    return;
  }
  PASERTA_REQUIRE(levels == o.levels,
                  "SimCounters ledgers recorded against different power "
                  "tables (" << levels << " vs " << o.levels << " levels)");
  for (std::size_t i = 0; i < busy_ps.size(); ++i) busy_ps[i] += o.busy_ps[i];
  for (std::size_t i = 0; i < compute_ps.size(); ++i)
    compute_ps[i] += o.compute_ps[i];
  for (std::size_t i = 0; i < transitions.size(); ++i)
    transitions[i] += o.transitions[i];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(m_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(upper_bounds);
    return *slot;
  }
  PASERTA_REQUIRE(
      slot->bounds() ==
          std::vector<double>(upper_bounds.begin(), upper_bounds.end()),
      "histogram '" << name << "' re-registered with different bounds");
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(m_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    MetricsSnapshot::CounterRow row;
    row.name = name;
    row.value = c->value();
    int last = -1;
    for (int s = 0; s < kMaxShards; ++s)
      if (c->shard_value(s) != 0) last = s;
    for (int s = 0; s <= last; ++s) row.shards.push_back(c->shard_value(s));
    snap.counters.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.bounds = h->bounds();
    for (std::size_t b = 0; b < h->bucket_count(); ++b)
      row.buckets.push_back(h->bucket_value(b));
    row.count = h->count();
    row.sum = h->sum();
    snap.histograms.push_back(std::move(row));
  }
  return snap;  // std::map iteration keeps every section name-sorted
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(m_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string metrics_to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object();
  w.key("counters").begin_array();
  for (const auto& c : snap.counters) {
    w.begin_object().key("name").value(c.name).key("value").value(c.value);
    w.key("shards").begin_array();
    for (const std::uint64_t s : c.shards) w.value(s);
    w.end_array().end_object();
  }
  w.end_array();
  w.key("gauges").begin_array();
  for (const auto& g : snap.gauges)
    w.begin_object().key("name").value(g.name).key("value").value(g.value)
        .end_object();
  w.end_array();
  w.key("histograms").begin_array();
  for (const auto& h : snap.histograms) {
    w.begin_object().key("name").value(h.name).key("count").value(h.count)
        .key("sum").value(h.sum);
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      const bool overflow = b >= h.bounds.size();
      w.begin_object().key("le");
      if (overflow)
        w.value("inf");
      else
        w.value(h.bounds[b]);
      w.key("count").value(h.buckets[b]).end_object();
    }
    w.end_array().end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return os.str();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// hierarchy (engine.GSS.dispatches) maps onto underscores.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

/// Prometheus sample values are rendered like JSON numbers except for the
/// non-finite cases, which the text format spells "+Inf" / "-Inf" / "NaN"
/// (json_num's "null" is not a valid sample value).
std::string prom_num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return json_num(v);
}

/// HELP text: the registry's original dotted name, which the sanitized
/// Prometheus name cannot always be mapped back to ('.' and '-' both
/// become '_'). Escapes the two characters the format requires.
void write_help(std::ostream& os, const std::string& prom,
                const std::string& original) {
  os << "# HELP " << prom << " paserta metric ";
  for (const char c : original) {
    if (c == '\\')
      os << "\\\\";
    else if (c == '\n')
      os << "\\n";
    else
      os << c;
  }
  os << "\n";
}

}  // namespace

std::string metrics_to_prometheus(const MetricsSnapshot& snap) {
  std::ostringstream os;
  for (const auto& c : snap.counters) {
    const std::string name = prometheus_name(c.name);
    write_help(os, name, c.name);
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string name = prometheus_name(g.name);
    write_help(os, name, g.name);
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << prom_num(g.value) << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string name = prometheus_name(h.name);
    write_help(os, name, h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      const bool overflow = b >= h.bounds.size();
      os << name << "_bucket{le=\""
         << (overflow ? std::string("+Inf") : json_num(h.bounds[b])) << "\"} "
         << cumulative << "\n";
    }
    os << name << "_sum " << prom_num(h.sum) << "\n";
    os << name << "_count " << h.count << "\n";
  }
  return os.str();
}

}  // namespace paserta
