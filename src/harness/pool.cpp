#include "harness/pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/progress.h"

namespace paserta {

// Every parallel loop has at most 1 caller + kMaxThreads workers, each
// owning one metric shard; keep the two constants from drifting apart.
static_assert(WorkerPool::kMaxThreads + 1 <= kMaxShards,
              "obs::kMaxShards must cover every pool participant slot");

namespace {

/// Set while a thread executes a parallel_chunks body; a nested call from
/// inside a body would deadlock on the run mutex, so it degrades to inline
/// serial execution instead.
thread_local bool t_inside_body = false;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Accounts one completed chunk into every non-null telemetry sink.
void record_chunk(const PoolTelemetry& tel, int slot, std::int64_t body_ns) {
  if (tel.chunks) tel.chunks->add(slot);
  if (tel.busy_ns) tel.busy_ns->add(slot, static_cast<std::uint64_t>(body_ns));
  if (tel.chunk_seconds)
    tel.chunk_seconds->record(slot, static_cast<double>(body_ns) * 1e-9);
  if (tel.prof != nullptr && tel.ph_busy >= 0)
    tel.prof->add_ns(tel.ph_busy, slot,
                     static_cast<std::uint64_t>(body_ns));
  if (tel.progress) tel.progress->add_done(1);
}

}  // namespace

struct WorkerPool::Impl {
  /// One parallel loop in flight. Slot/active bookkeeping is guarded by
  /// `m`; only the chunk counter and abort flag are lock-free, because they
  /// sit on the claim path of every chunk.
  struct Job {
    const std::function<void(int, int)>* body = nullptr;
    const PoolTelemetry* telemetry = nullptr;
    int chunks = 0;
    int max_workers = 1;
    int claim_batch = 1;
    // 64-bit: each participant's final failed claim overshoots by up to
    // claim_batch, so an int counter could wrap past INT_MAX on chunk
    // spaces near the int limit.
    std::atomic<std::int64_t> next_chunk{0};
    std::atomic<bool> abort{false};
    int next_slot = 1;  // guarded by m (slot 0 is the caller)
    int active = 0;     // participants currently between claim and exit
    std::exception_ptr error;  // first body exception (guarded by m)
  };

  std::mutex m;
  std::condition_variable wake;   // workers: a new job was published
  std::condition_variable done;   // caller: a participant finished
  Job* job = nullptr;             // guarded by m
  std::uint64_t generation = 0;   // guarded by m; bumped per published job
  bool stop = false;              // guarded by m
  std::vector<std::thread> threads;  // guarded by spawn_m
  std::mutex spawn_m;
  std::atomic<int> thread_count{0};
  std::mutex run_m;  // serializes parallel loops

  void run_chunks(Job& job_ref, int slot) {
    if (job_ref.telemetry != nullptr) {
      run_chunks_instrumented(job_ref, slot);
      return;
    }
    for (;;) {
      const std::int64_t c0 = job_ref.next_chunk.fetch_add(
          job_ref.claim_batch, std::memory_order_relaxed);
      if (c0 >= job_ref.chunks) return;
      const std::int64_t c1 =
          std::min<std::int64_t>(job_ref.chunks, c0 + job_ref.claim_batch);
      for (std::int64_t c = c0; c < c1; ++c) {
        if (job_ref.abort.load(std::memory_order_relaxed)) return;
        t_inside_body = true;
        try {
          (*job_ref.body)(static_cast<int>(c), slot);
          t_inside_body = false;
        } catch (...) {
          t_inside_body = false;
          std::lock_guard<std::mutex> lock(m);
          if (!job_ref.error) job_ref.error = std::current_exception();
          job_ref.abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  }

  /// Same claim loop as run_chunks plus per-chunk timing: time inside the
  /// body is busy, everything else between entering and leaving the loop
  /// (claims, the final failed claim) is idle. With a phase profiler in
  /// the telemetry, the same stretches additionally land in its
  /// claim/busy/idle phases — the claim split (counter contention vs
  /// genuine waiting) exists only there, paid for by one extra clock read
  /// per claim.
  void run_chunks_instrumented(Job& job_ref, int slot) {
    const PoolTelemetry& tel = *job_ref.telemetry;
    const bool prof = tel.prof != nullptr;
    std::int64_t mark = now_ns();  // start of the current idle stretch
    std::int64_t prof_mark = mark;  // start of the uncharged profile stretch
    const auto account_idle = [&](std::int64_t until) {
      if (tel.idle_ns && until > mark)
        tel.idle_ns->add(slot, static_cast<std::uint64_t>(until - mark));
      if (prof && tel.ph_idle >= 0 && until > prof_mark) {
        tel.prof->add_ns(tel.ph_idle, slot,
                         static_cast<std::uint64_t>(until - prof_mark));
        prof_mark = until;
      }
    };
    for (;;) {
      const std::int64_t c0 = job_ref.next_chunk.fetch_add(
          job_ref.claim_batch, std::memory_order_relaxed);
      if (prof && tel.ph_claim >= 0) {
        const std::int64_t t_claim = now_ns();
        if (t_claim > prof_mark)
          tel.prof->add_ns(tel.ph_claim, slot,
                           static_cast<std::uint64_t>(t_claim - prof_mark));
        prof_mark = t_claim;
      }
      if (c0 >= job_ref.chunks) break;
      const std::int64_t c1 =
          std::min<std::int64_t>(job_ref.chunks, c0 + job_ref.claim_batch);
      for (std::int64_t c = c0; c < c1; ++c) {
        if (job_ref.abort.load(std::memory_order_relaxed)) {
          account_idle(now_ns());
          return;
        }
        const std::int64_t t0 = now_ns();
        account_idle(t0);
        t_inside_body = true;
        try {
          (*job_ref.body)(static_cast<int>(c), slot);
          t_inside_body = false;
        } catch (...) {
          t_inside_body = false;
          record_chunk(tel, slot, now_ns() - t0);
          std::lock_guard<std::mutex> lock(m);
          if (!job_ref.error) job_ref.error = std::current_exception();
          job_ref.abort.store(true, std::memory_order_relaxed);
          return;
        }
        mark = now_ns();
        prof_mark = mark;  // body time reaches the profiler via record_chunk
        record_chunk(tel, slot, mark - t0);
      }
    }
    account_idle(now_ns());
  }

  void worker_main() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
      wake.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      Job* j = job;
      // Job pointer reads, slot claims and the active count all happen
      // under `m`, so a job cleared by the caller can never be entered
      // late and the caller can never observe active == 0 while a
      // participant is between claiming a slot and exiting.
      if (j == nullptr || j->next_slot >= j->max_workers) continue;
      const int slot = j->next_slot++;
      ++j->active;
      lock.unlock();
      run_chunks(*j, slot);
      lock.lock();
      if (--j->active == 0) done.notify_all();
    }
  }

  void spawn(int target) {
    std::lock_guard<std::mutex> lock(spawn_m);
    target = std::min(target, WorkerPool::kMaxThreads);
    while (static_cast<int>(threads.size()) < target) {
      threads.emplace_back([this] { worker_main(); });
      thread_count.store(static_cast<int>(threads.size()),
                         std::memory_order_relaxed);
    }
  }
};

WorkerPool::WorkerPool(int threads) : impl_(new Impl) {
  PASERTA_REQUIRE(threads >= 0, "worker count must be non-negative");
  impl_->spawn(threads);
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->threads) t.join();
  delete impl_;
}

int WorkerPool::thread_count() const {
  return impl_->thread_count.load(std::memory_order_relaxed);
}

void WorkerPool::ensure_threads(int threads) { impl_->spawn(threads); }

void WorkerPool::parallel_chunks(
    int chunk_count, int max_workers,
    const std::function<void(int chunk, int slot)>& body,
    const PoolTelemetry* telemetry, int claim_batch) {
  PASERTA_REQUIRE(chunk_count >= 0, "chunk count must be non-negative");
  PASERTA_REQUIRE(claim_batch >= 1, "claim batch must be positive");
  if (chunk_count == 0) return;
  max_workers = std::clamp(max_workers, 1, chunk_count);

  const int helpers = std::min(max_workers - 1, thread_count());
  if (helpers <= 0 || t_inside_body) {
    // Serial path: no pool involvement, chunks in increasing order. Also
    // the nested-call fallback (a body starting its own loop).
    serial_chunks(chunk_count, body, telemetry);
    return;
  }

  std::lock_guard<std::mutex> run_lock(impl_->run_m);
  Impl::Job job;
  job.body = &body;
  job.telemetry = telemetry;
  job.chunks = chunk_count;
  job.max_workers = max_workers;
  job.claim_batch = claim_batch;
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->wake.notify_all();

  impl_->run_chunks(job, 0);  // the caller is participant slot 0

  const bool time_wait =
      telemetry != nullptr &&
      (telemetry->idle_ns != nullptr || telemetry->prof != nullptr);
  const std::int64_t wait_start = time_wait ? now_ns() : 0;
  {
    // All chunks have been handed out (or the job aborted), so any late
    // worker runs zero body calls; wait for in-flight participants only.
    std::unique_lock<std::mutex> lock(impl_->m);
    impl_->done.wait(lock, [&] { return job.active == 0; });
    impl_->job = nullptr;
  }
  if (time_wait) {
    // The caller's wait for helpers to drain is slot 0 idle time.
    const auto wait_ns = static_cast<std::uint64_t>(now_ns() - wait_start);
    if (telemetry->idle_ns) telemetry->idle_ns->add(0, wait_ns);
    if (telemetry->prof != nullptr && telemetry->ph_idle >= 0)
      telemetry->prof->add_ns(telemetry->ph_idle, 0, wait_ns);
  }
  if (job.error) std::rethrow_exception(job.error);
}

void WorkerPool::serial_chunks(
    int chunk_count, const std::function<void(int chunk, int slot)>& body,
    const PoolTelemetry* telemetry) {
  PASERTA_REQUIRE(chunk_count >= 0, "chunk count must be non-negative");
  const bool was_inside = t_inside_body;
  t_inside_body = true;
  try {
    if (telemetry == nullptr) {
      for (int c = 0; c < chunk_count; ++c) body(c, 0);
    } else {
      // Mirror run_chunks_instrumented's accounting exactly: time inside
      // bodies is busy, everything else in the loop (the serial stand-in
      // for claims, including the trailing exit) is idle, so per-slot
      // busy/idle fractions compare 1:1 between the serial and pooled
      // modes.
      const PoolTelemetry& tel = *telemetry;
      std::int64_t mark = now_ns();
      const auto account_idle = [&](std::int64_t until) {
        if (tel.idle_ns && until > mark)
          tel.idle_ns->add(0, static_cast<std::uint64_t>(until - mark));
        // Serial mode has no claim counter: the whole between-body stretch
        // is the profiler's idle phase, like the untimed claim stand-in.
        if (tel.prof != nullptr && tel.ph_idle >= 0 && until > mark)
          tel.prof->add_ns(tel.ph_idle, 0,
                           static_cast<std::uint64_t>(until - mark));
      };
      for (int c = 0; c < chunk_count; ++c) {
        const std::int64_t t0 = now_ns();
        account_idle(t0);
        body(c, 0);
        mark = now_ns();
        record_chunk(tel, 0, mark - t0);
      }
      account_idle(now_ns());
    }
  } catch (...) {
    t_inside_body = was_inside;
    throw;
  }
  t_inside_body = was_inside;
}

WorkerPool& WorkerPool::process_pool() {
  static WorkerPool pool(std::max(
      1, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace paserta
