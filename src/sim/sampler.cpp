#include "sim/sampler.h"

#include <algorithm>
#include <limits>
#include <span>

#include "common/error.h"

namespace paserta {

ScenarioSampler::ScenarioSampler(const AndOrGraph& g) {
  const std::size_t n = g.size();
  template_actual_.assign(n, SimTime::zero());
  template_choice_.assign(n, -1);

  const std::span<const Node> nodes = g.nodes();
  for (std::uint32_t v = 0; v < n; ++v) {
    const Node& node = nodes[v];
    if (node.kind == NodeKind::Computation) {
      // Same parameter derivation as draw_scenario (DESIGN.md §3.6):
      // N(acet, ((wcet-acet)/3)^2) clamped to [max(1ps, 2*acet-wcet), wcet].
      const double mean = static_cast<double>(node.acet.ps);
      const double sigma =
          static_cast<double>((node.wcet - node.acet).ps) / 3.0;
      const double hi = static_cast<double>(node.wcet.ps);
      const double lo = std::max(1.0, 2.0 * mean - hi);
      if (sigma > 0.0) {
        Op op;
        op.node = v;
        op.mean = mean;
        op.sigma = sigma;
        op.lo = lo;
        op.hi = hi;
        ops_.push_back(op);
      } else {
        // Degenerate (acet == wcet): draw_scenario clamps the mean without
        // consuming randomness — bake the identical value into the template.
        const double x = std::clamp(mean, lo, hi);
        template_actual_[v] = SimTime{static_cast<std::int64_t>(x + 0.5)};
      }
    } else if (node.is_or_fork()) {
      PASERTA_REQUIRE(node.succ_prob.size() == node.succs.size(),
                      "OR fork '" << node.name
                                  << "' lacks one probability per successor");
      // Validate once, with the exact left-to-right summation
      // Rng::next_discrete performs, so the precomputed total — and hence
      // every per-draw comparison — is bit-identical to the checked path.
      double total = 0.0;
      for (double w : node.succ_prob) {
        PASERTA_REQUIRE(w >= 0.0, "negative branch probability on fork '"
                                      << node.name << "'");
        total += w;
      }
      PASERTA_REQUIRE(total > 0.0, "branch probabilities of fork '"
                                       << node.name << "' sum to zero");
      Fork f;
      f.first = static_cast<std::uint32_t>(weights_.size());
      f.count = static_cast<std::uint32_t>(node.succ_prob.size());
      f.total = total;
      weights_.insert(weights_.end(), node.succ_prob.begin(),
                      node.succ_prob.end());
      Op op;
      op.node = v;
      op.fork = static_cast<std::int32_t>(forks_.size());
      forks_.push_back(f);
      ops_.push_back(op);
    }
  }
}

template <bool kWithKey>
void ScenarioSampler::draw_ops(Rng& rng, SimTime* actual, int* choice,
                               std::uint64_t* key_out) const {
  const double* weights = weights_.data();
  for (const Op& op : ops_) {
    if (op.fork < 0) {
      double x = rng.next_normal(op.mean, op.sigma);
      x = std::clamp(x, op.lo, op.hi);
      const auto ps = static_cast<std::int64_t>(x + 0.5);
      actual[op.node] = SimTime{ps};
      // Fingerprint word = the *rounded* integer time: the scenario only
      // ever sees the rounded value, so keying on it (not the raw double)
      // makes equal keys mean bit-identical scenarios and nothing finer.
      if constexpr (kWithKey) *key_out++ = static_cast<std::uint64_t>(ps);
    } else {
      const Fork& f = forks_[static_cast<std::size_t>(op.fork)];
      const std::size_t pick = rng.next_discrete_prenorm(
          std::span<const double>{weights + f.first, f.count}, f.total);
      choice[op.node] = static_cast<int>(pick);
      if constexpr (kWithKey) *key_out++ = static_cast<std::uint64_t>(pick);
    }
  }
}

void ScenarioSampler::draw_into(Rng& rng, RunScenario& out) const {
  out.actual = template_actual_;
  out.or_choice = template_choice_;
  draw_ops<false>(rng, out.actual.data(), out.or_choice.data(), nullptr);
}

void ScenarioSampler::draw_into(Rng& rng, RunScenario& out,
                                std::uint64_t* key_out) const {
  out.actual = template_actual_;
  out.or_choice = template_choice_;
  draw_ops<true>(rng, out.actual.data(), out.or_choice.data(), key_out);
}

void ScenarioSampler::draw_into(Rng& rng, ScenarioBatch& out,
                                std::size_t lane) const {
  const std::size_t n = template_actual_.size();
  PASERTA_ASSERT(out.nodes() == n,
                 "scenario batch sized for " << out.nodes()
                                             << " nodes, sampler compiled for "
                                             << n);
  SimTime* actual = out.lane_actual(lane);
  int* choice = out.lane_choice(lane);
  std::copy(template_actual_.begin(), template_actual_.end(), actual);
  std::copy(template_choice_.begin(), template_choice_.end(), choice);
  draw_ops<false>(rng, actual, choice, nullptr);
}

void ScenarioSampler::draw_into(Rng& rng, ScenarioBatch& out, std::size_t lane,
                                std::uint64_t* key_out) const {
  const std::size_t n = template_actual_.size();
  PASERTA_ASSERT(out.nodes() == n,
                 "scenario batch sized for " << out.nodes()
                                             << " nodes, sampler compiled for "
                                             << n);
  SimTime* actual = out.lane_actual(lane);
  int* choice = out.lane_choice(lane);
  std::copy(template_actual_.begin(), template_actual_.end(), actual);
  std::copy(template_choice_.begin(), template_choice_.end(), choice);
  draw_ops<true>(rng, actual, choice, key_out);
}

RunScenario ScenarioSampler::draw(Rng& rng) const {
  RunScenario sc;
  draw_into(rng, sc);
  return sc;
}

std::uint64_t ScenarioSampler::scenario_space() const {
  if (gaussian_count() > 0) return 0;  // continuous: unbounded
  std::uint64_t space = 1;
  for (const Fork& f : forks_) {
    const auto alts = static_cast<std::uint64_t>(f.count);
    if (alts != 0 && space > std::numeric_limits<std::uint64_t>::max() / alts)
      return std::numeric_limits<std::uint64_t>::max();  // saturate
    space *= alts;
  }
  return space;
}

}  // namespace paserta
