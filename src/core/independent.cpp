#include "core/independent.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.h"
#include "core/policy.h"

namespace paserta {

const char* to_string(IndependentScheme s) {
  switch (s) {
    case IndependentScheme::NPM: return "NPM";
    case IndependentScheme::SPM: return "SPM";
    case IndependentScheme::GreedyNoShare: return "GREEDY";
    case IndependentScheme::GreedyShare: return "GSS";
  }
  return "?";
}

SimTime IndependentTaskSet::total_wcet() const {
  SimTime t{};
  for (const auto& task : tasks) t += task.wcet;
  return t;
}

SimTime IndependentTaskSet::total_acet() const {
  SimTime t{};
  for (const auto& task : tasks) t += task.acet;
  return t;
}

IndependentCanonical canonical_independent(const IndependentTaskSet& set,
                                           int cpus) {
  PASERTA_REQUIRE(cpus >= 1, "need at least one processor");
  PASERTA_REQUIRE(!set.tasks.empty(), "empty task set");

  IndependentCanonical out;
  out.order.resize(set.tasks.size());
  std::iota(out.order.begin(), out.order.end(), 0u);
  std::sort(out.order.begin(), out.order.end(),
            [&](std::size_t a, std::size_t b) {
              if (set.tasks[a].wcet != set.tasks[b].wcet)
                return set.tasks[a].wcet > set.tasks[b].wcet;  // longest first
              return a < b;
            });

  out.cpu.resize(set.tasks.size(), -1);
  out.start.resize(set.tasks.size());
  out.finish.resize(set.tasks.size());

  // Min-heap of (free time, cpu id).
  using Slot = std::pair<SimTime, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (int c = 0; c < cpus; ++c) free_at.emplace(SimTime::zero(), c);

  for (std::size_t idx : out.order) {
    auto [t, c] = free_at.top();
    free_at.pop();
    out.cpu[idx] = c;
    out.start[idx] = t;
    out.finish[idx] = t + set.tasks[idx].wcet;
    out.makespan = std::max(out.makespan, out.finish[idx]);
    free_at.emplace(out.finish[idx], c);
  }
  return out;
}

namespace {

/// One processor's runtime state.
struct Cpu {
  SimTime free_at{};
  std::size_t level = 0;
  SimTime busy{};
  SimTime eet{};  // estimated end time register (dynamic schemes)
};

}  // namespace

IndependentResult simulate_independent(const IndependentTaskSet& set,
                                       int cpus, SimTime deadline,
                                       const PowerModel& pm,
                                       const Overheads& ovh,
                                       IndependentScheme scheme,
                                       const std::vector<SimTime>& actual) {
  PASERTA_REQUIRE(actual.size() == set.tasks.size(),
                  "actuals size mismatches the task set");
  PASERTA_REQUIRE(deadline > SimTime::zero(), "deadline must be positive");

  const LevelTable& table = pm.table();
  const SimTime budget = ovh.worst_case_budget(table);

  // Canonical schedule with inflated WCETs so the overhead reservation is
  // part of the guarantee (same device as the AND/OR offline phase).
  IndependentTaskSet inflated = set;
  for (auto& t : inflated.tasks) t.wcet += budget;
  const IndependentCanonical canon = canonical_independent(inflated, cpus);
  const SimTime shift =
      deadline > canon.makespan ? deadline - canon.makespan : SimTime::zero();

  IndependentResult out;
  std::vector<Cpu> cpu(static_cast<std::size_t>(cpus));

  const bool dynamic = scheme == IndependentScheme::GreedyNoShare ||
                       scheme == IndependentScheme::GreedyShare;
  std::size_t static_level = table.size() - 1;
  if (scheme == IndependentScheme::SPM) {
    static_level = table.quantize_up(
        required_freq(table.f_max(), canon.makespan, deadline));
  }
  for (auto& c : cpu) {
    c.level = dynamic ? table.size() - 1 : static_level;
    c.eet = shift;  // shifted canonical "no work yet" completion profile
  }

  // Executes task `idx` on processor `c` starting when the processor is
  // free, at speed sized against end-of-allocation `eet`.
  auto run_task = [&](Cpu& c, std::size_t idx, SimTime eet) {
    SimTime t = c.free_at;
    std::size_t lvl = c.level;
    if (dynamic) {
      const SimTime dt_compute =
          cycles_to_time(ovh.speed_compute_cycles, table.level(lvl).freq);
      out.overhead_energy += pm.busy_energy(lvl, dt_compute);
      c.busy += dt_compute;
      t += dt_compute;
      const SimTime avail = eet - t - ovh.speed_change_time;
      const Freq desired =
          required_freq(table.f_max(), set.tasks[idx].wcet, avail);
      const std::size_t new_lvl = table.quantize_up(desired);
      if (new_lvl != lvl) {
        out.overhead_energy +=
            pm.transition_energy(lvl, new_lvl, ovh.speed_change_time);
        c.busy += ovh.speed_change_time;
        t += ovh.speed_change_time;
        ++out.speed_changes;
        lvl = new_lvl;
        c.level = lvl;
      }
    }
    const SimTime duration =
        scale_time(actual[idx], table.f_max(), table.level(lvl).freq);
    out.busy_energy += pm.busy_energy(lvl, duration);
    c.busy += duration;
    c.free_at = t + duration;
    out.finish_time = std::max(out.finish_time, c.free_at);
  };

  if (scheme == IndependentScheme::GreedyShare) {
    // Global queue in canonical order; the earliest-free processor fetches,
    // adopting (swapping in) the minimum EET — the slack-sharing step.
    for (std::size_t idx : canon.order) {
      auto fetcher = std::min_element(
          cpu.begin(), cpu.end(), [](const Cpu& a, const Cpu& b) {
            return a.free_at < b.free_at;
          });
      auto min_holder = std::min_element(
          cpu.begin(), cpu.end(),
          [](const Cpu& a, const Cpu& b) { return a.eet < b.eet; });
      std::swap(fetcher->eet, min_holder->eet);
      fetcher->eet += inflated.tasks[idx].wcet;
      run_task(*fetcher, idx, fetcher->eet);
    }
  } else {
    // Static schemes and no-share greedy: tasks stay on their canonical
    // processor, in canonical order.
    for (std::size_t idx : canon.order) {
      Cpu& c = cpu[static_cast<std::size_t>(canon.cpu[idx])];
      c.eet += inflated.tasks[idx].wcet;  // local reclamation only
      run_task(c, idx, c.eet);
    }
  }

  out.deadline_met = out.finish_time <= deadline;
  for (const Cpu& c : cpu) {
    const SimTime idle = deadline - c.busy;
    if (idle > SimTime::zero()) out.idle_energy += pm.idle_energy(idle);
  }
  return out;
}

std::vector<SimTime> draw_independent_actuals(const IndependentTaskSet& set,
                                              Rng& rng) {
  std::vector<SimTime> actual(set.tasks.size());
  for (std::size_t i = 0; i < set.tasks.size(); ++i) {
    const auto& t = set.tasks[i];
    const double mean = static_cast<double>(t.acet.ps);
    const double sigma = static_cast<double>((t.wcet - t.acet).ps) / 3.0;
    double x = sigma > 0.0 ? rng.next_normal(mean, sigma) : mean;
    const double lo =
        std::max(1.0, 2.0 * mean - static_cast<double>(t.wcet.ps));
    x = std::clamp(x, lo, static_cast<double>(t.wcet.ps));
    actual[i] = SimTime{static_cast<std::int64_t>(x + 0.5)};
  }
  return actual;
}

IndependentTaskSet random_independent_set(Rng& rng, std::size_t n,
                                          SimTime wcet_min, SimTime wcet_max,
                                          double alpha_min, double alpha_max) {
  PASERTA_REQUIRE(n >= 1, "need at least one task");
  PASERTA_REQUIRE(wcet_min > SimTime::zero() && wcet_min <= wcet_max,
                  "invalid WCET range");
  PASERTA_REQUIRE(alpha_min > 0.0 && alpha_min <= alpha_max &&
                      alpha_max <= 1.0,
                  "invalid alpha range");
  IndependentTaskSet set;
  const auto span = static_cast<double>((wcet_max - wcet_min).ps);
  for (std::size_t i = 0; i < n; ++i) {
    const SimTime wcet =
        wcet_min + SimTime{static_cast<std::int64_t>(rng.next_double() * span)};
    const double alpha =
        alpha_min + rng.next_double() * (alpha_max - alpha_min);
    SimTime acet{static_cast<std::int64_t>(
        alpha * static_cast<double>(wcet.ps) + 0.5)};
    acet = std::clamp(acet, SimTime{1}, wcet);
    set.tasks.push_back({"t" + std::to_string(i), wcet, acet});
  }
  return set;
}

}  // namespace paserta
