// MPEG-style video decoder workload.
//
// The other canonical AND/OR application of the DVS literature: per-frame
// work depends on the frame type (I/P/B with stream-dependent
// probabilities — the OR fork), macroblock slices decode in parallel (AND
// parallelism), and motion compensation only runs for predicted frames.
// Complements ATR (detection-driven) with a decode-driven control-flow
// profile: high branch variance, moderate parallelism.
#pragma once

#include <vector>

#include "graph/program.h"

namespace paserta::apps {

struct MpegConfig {
  /// P(I frame), P(P frame), P(B frame); must sum to 1.
  double p_i = 0.10;
  double p_p = 0.40;
  double p_b = 0.50;
  /// Parallel slice decoders per frame.
  int slices = 4;
  /// ACET/WCET ratio for all tasks.
  double alpha = 0.7;
  /// Per-slice entropy-decode WCET; I frames carry the most coefficient
  /// data, B frames the least.
  SimTime slice_wcet_i = SimTime::from_ms(6.0);
  SimTime slice_wcet_p = SimTime::from_ms(4.0);
  SimTime slice_wcet_b = SimTime::from_ms(3.0);
  /// Motion compensation per reference (P: one, B: two passes).
  SimTime mc_wcet = SimTime::from_ms(3.0);
  /// Header parse / deblock+display WCETs.
  SimTime parse_wcet = SimTime::from_ms(1.0);
  SimTime deblock_wcet = SimTime::from_ms(4.0);
};

/// Builds one frame's decode graph:
///   parse -> OR{I, P, B} -> deblock
/// where each alternative holds `slices` parallel slice decoders and the
/// frame type's motion-compensation chain.
Application build_mpeg(const MpegConfig& config = {});

Program mpeg_program(const MpegConfig& config = {});

}  // namespace paserta::apps
