file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_minspeed.dir/bench_ablation_minspeed.cpp.o"
  "CMakeFiles/bench_ablation_minspeed.dir/bench_ablation_minspeed.cpp.o.d"
  "bench_ablation_minspeed"
  "bench_ablation_minspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_minspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
