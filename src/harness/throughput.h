// Throughput measurement for the Monte-Carlo hot loop and for whole sweeps.
//
// Point mode times run_point on a fixed configuration across a list of
// thread counts and reports runs/sec. Sweep mode times a whole load sweep
// (the paper's §5.1 shape) two ways per thread count — the pooled,
// point-overlapped, canonical-cached path (sweep_load) against the pre-pool
// baseline (run_point_unpooled per point: fresh thread spawn/join and a
// fresh offline analysis each) — and reports points/sec, the speedup of the
// pooled path over the baseline, and scaling efficiency across thread
// counts. Both are emitted as small self-contained JSON documents. Lives in
// the library — rather than inlined in the bench binary — so the timing
// plumbing and the JSON shape are unit-testable; bench_throughput is a thin
// wrapper over this module.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace paserta {

/// Section-level hardware-counter columns (cycles per Monte-Carlo run and
/// instructions per cycle), filled by one extra *untimed* profiled pass at
/// a single-threaded configuration — the bench thread is the worker there,
/// so its perf_event group sees the whole run without perturbing the timed
/// repetitions. NaN (rendered as JSON null) when the host denies
/// perf_event_open; bench_compare skips non-numeric fields, so history
/// entries with and without the columns coexist.
struct HwColumns {
  double cycles_per_run = std::numeric_limits<double>::quiet_NaN();
  double ipc = std::numeric_limits<double>::quiet_NaN();
};

struct ThroughputSample {
  int threads = 1;
  double seconds = 0.0;       // wall time of the timed run_point call
  double runs_per_sec = 0.0;  // runs / seconds
};

struct ThroughputReport {
  std::string label;  // e.g. "fig4a@load=0.5"
  int runs = 0;       // Monte-Carlo runs per measurement
  int schemes = 0;    // schemes per run (the NPM baseline is extra)
  HwColumns hw;       // measured at threads = 1
  std::vector<ThroughputSample> samples;
};

/// Times run_point(app, cfg, deadline, ...) once per entry of
/// `thread_counts` (cfg.threads is overridden), after one untimed warm-up
/// at the first thread count to fault in code and allocator state. With
/// `reps` > 1 each thread count is timed that many times and the fastest
/// repetition is reported: scheduler noise on a shared host is one-sided
/// (contention only ever slows a run down), so the minimum is the least
/// contaminated estimate of the code's actual throughput and keeps
/// recorded history entries comparable across machine epochs.
ThroughputReport measure_throughput(const Application& app,
                                    ExperimentConfig cfg, SimTime deadline,
                                    const std::vector<int>& thread_counts,
                                    const std::string& label, int reps = 1);

/// Renders the report as a JSON object (pretty-printed, newline-terminated).
std::string throughput_to_json(const ThroughputReport& report);

struct BatchThroughputSample {
  int batch = 0;              // requested ExperimentConfig::batch (0 = auto)
  int lanes = 0;              // lanes per engine call it resolved to (0 = scalar)
  double seconds = 0.0;       // wall time of the timed run_point call
  double runs_per_sec = 0.0;  // runs / seconds
};

struct BatchThroughputReport {
  std::string label;  // e.g. "fig4a@load=0.5"
  int runs = 0;
  int schemes = 0;
  int threads = 1;  // worker count the section was measured at
  HwColumns hw;     // measured at the first batch entry
  std::vector<BatchThroughputSample> samples;
};

/// Times run_point once per entry of `batches` (cfg.batch is overridden;
/// cfg.threads is forced to 1 so the section isolates the engine choice
/// from thread scaling), after one untimed warm-up. Batched and scalar
/// run_point outputs are bit-identical, so the section measures pure
/// scheduling overhead differences: the batched-vs-scalar speedup gated by
/// tools/bench_compare --check. `reps` keeps the fastest repetition (see
/// measure_throughput).
BatchThroughputReport measure_batch_throughput(const Application& app,
                                               ExperimentConfig cfg,
                                               SimTime deadline,
                                               const std::vector<int>& batches,
                                               const std::string& label,
                                               int reps = 1);

/// Renders the report as a JSON object (pretty-printed, newline-terminated).
std::string batch_throughput_to_json(const BatchThroughputReport& report);

struct DedupThroughputSample {
  int runs = 0;  // Monte-Carlo runs of this rung of the ladder
  // Dedup forced off: every run simulated.
  double off_seconds = 0.0;
  double off_runs_per_sec = 0.0;
  // Dedup forced on: distinct scenarios simulated once, replayed after.
  double on_seconds = 0.0;
  double on_runs_per_sec = 0.0;
  /// off_seconds / on_seconds at this run count — what tools/bench_compare
  /// --dedup-floor gates.
  double speedup = 0.0;
  /// Cache hit rate of the dedup-on measurement: hits / (hits + misses).
  double hit_rate = 0.0;
  /// Distinct scenarios simulated (= dedup misses) at this run count.
  std::uint64_t distinct = 0;
};

struct DedupThroughputReport {
  std::string label;  // e.g. "fig4a-alpha1.0@load=0.5"
  int schemes = 0;
  int threads = 1;  // worker count the section was measured at
  HwColumns hw;     // dedup-off path at the first run count
  std::vector<DedupThroughputSample> samples;
};

/// Times run_point with dedup forced off vs. forced on, once per entry of
/// `run_counts` (cfg.runs is overridden; cfg.threads is forced to 1 so the
/// section isolates replay from thread scaling), after one untimed warm-up
/// per path. Dedup replay is bit-identical, so the section measures pure
/// scheduling wins: the speedup grows with the duplicate fraction, which
/// is why the bench feeds it a discrete workload (alpha = 1: OR forks are
/// the only randomness, so the scenario space is tiny and the hit rate
/// approaches 1). `reps` keeps the fastest repetition per path (see
/// measure_throughput).
DedupThroughputReport measure_dedup_throughput(
    const Application& app, ExperimentConfig cfg, SimTime deadline,
    const std::vector<int>& run_counts, const std::string& label,
    int reps = 1);

/// Renders the report as a JSON object (pretty-printed, newline-terminated).
std::string dedup_throughput_to_json(const DedupThroughputReport& report);

struct SweepThroughputSample {
  int threads = 1;
  // Pooled path: sweep_load (persistent pool, chunked claiming, point
  // overlap, one canonical analysis for the whole sweep).
  double pooled_seconds = 0.0;
  double pooled_points_per_sec = 0.0;
  // Baseline path: serial points, run_point_unpooled each (fresh
  // std::thread spawn/join and a fresh offline analysis per point) — the
  // pre-pool behaviour of the harness.
  double legacy_seconds = 0.0;
  double legacy_points_per_sec = 0.0;
  /// legacy_seconds / pooled_seconds at this thread count.
  double speedup = 0.0;
  /// Pooled scaling efficiency relative to the report's first sample:
  /// (pooled_pps / pooled_pps_first) * threads_first / threads.
  double efficiency = 0.0;
};

struct SweepThroughputReport {
  std::string label;
  int points = 0;   // sweep points per measurement
  int runs = 0;     // Monte-Carlo runs per point
  int schemes = 0;  // schemes per run (the NPM baseline is extra)
  /// Hardware threads of the measuring host (hardware_concurrency at
  /// measurement time, 0 = unknown). Recorded as provenance: thread
  /// scaling above this count is physically impossible, so consumers
  /// (tools/bench_compare's efficiency gate) normalize the recorded
  /// efficiency by min(threads, host_threads) before judging it.
  int host_threads = 0;
  HwColumns hw;  // pooled path at threads = 1, per Monte-Carlo run
  std::vector<SweepThroughputSample> samples;
};

/// Times sweep_load(app, cfg, loads) — pooled and legacy — once per entry
/// of `thread_counts`, after one untimed pooled warm-up at the first
/// thread count. cfg.parallel_points is forced on for the pooled path.
/// `reps` > 1 keeps the fastest of that many repetitions per path and
/// thread count (see measure_throughput for the rationale).
SweepThroughputReport measure_sweep_throughput(
    const Application& app, ExperimentConfig cfg,
    const std::vector<double>& loads, const std::vector<int>& thread_counts,
    const std::string& label, int reps = 1);

/// Renders the report as a JSON object (pretty-printed, newline-terminated).
std::string sweep_throughput_to_json(const SweepThroughputReport& report);

/// Runs one pooled load sweep with metrics collection into a scoped local
/// registry and renders the pool-balance picture as a JSON object:
/// per-slot chunk counts and busy/idle time, plus the chunk-latency
/// histogram totals. bench_throughput appends this as the "pool" section
/// of its history entries so load-balance regressions are visible next to
/// the throughput numbers.
std::string measure_pool_balance_json(const Application& app,
                                      ExperimentConfig cfg,
                                      const std::vector<double>& loads);

// ---- measurement history ---------------------------------------------
//
// BENCH_throughput.json is a *history*: a JSON array of measurement
// entries, one appended per bench_throughput --out run, so regressions can
// be traced to a revision instead of the previous numbers being destroyed
// by every refresh. Both functions are pure string transforms (no file
// I/O) so the splicing is unit-testable; the bench binary owns the file.

/// Wraps one measurement document (a JSON object, e.g. the {"point":...,
/// "sweep":...} composite bench_throughput emits) into a history entry by
/// splicing provenance fields in front of the document's own:
/// {"git_rev": <rev>, "dirty": <bool>, "date": <date>, <document
/// fields...>}. `dirty` records whether the working tree had uncommitted
/// changes at measurement time — a number from a dirty tree cannot be
/// attributed to its git_rev.
std::string throughput_history_entry(const std::string& git_rev, bool dirty,
                                     const std::string& date,
                                     const std::string& doc);

/// Appends `entry` to the history array `existing` (the current file
/// content). Empty/blank input starts a new one-entry array; a legacy
/// single-object baseline (the pre-history file format) is preserved as
/// the array's first entry. Returns the new file content.
std::string throughput_history_append(const std::string& existing,
                                      const std::string& entry);

}  // namespace paserta
