// Loopback socket front-end of the resident simulation service
// (DESIGN.md §16).
//
// One listener on 127.0.0.1 (port 0 = ephemeral; port() reports the bound
// one), a fixed pool of connection slots, and two wire formats sniffed
// from the first bytes of each connection:
//
//   * newline-delimited JSON (the native protocol): one request line in,
//     one response line out, connection stays open for pipelining;
//   * minimal HTTP/1.1 for curl-ability: GET /metrics returns the
//     Prometheus exposition, GET /healthz the liveness document (built
//     from atomics — it answers even with the dispatcher wedged), and
//     POST /simulate wraps one NDJSON request; responses close the
//     connection (Connection: close).
//
// Each connection thread submits to the shared SimService and blocks on
// the response future — optionally bounded by request_timeout_ms, after
// which the client gets a structured "timeout" error (the simulation
// still completes on the dispatcher; only the wait is abandoned).
//
// NDJSON requests carrying "stream": true additionally get rate-limited
// {"event":"progress",...} lines (every stream_interval_ms while the
// request is in flight) before the final — unchanged — response line.
//
// Graceful shutdown: stop() closes the listener, asks the service to
// drain (already-queued requests still resolve and their responses are
// written), then unblocks and joins every connection thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace paserta {

class SimService;

struct ServerSettings {
  /// 0 = ephemeral: the kernel picks, port() reports.
  std::uint16_t port = 0;
  /// Connection slots; an accept beyond this is closed immediately
  /// (counted as serve.conn_rejected).
  int max_connections = 32;
  /// Per-request response wait bound, ms; 0 = wait forever.
  int request_timeout_ms = 0;
  /// Spacing of streamed {"event":"progress"} lines for NDJSON requests
  /// with "stream": true. Requests without the flag never stream.
  int stream_interval_ms = 250;
};

class SimServer {
 public:
  /// Binds and starts accepting. Throws paserta::Error when the port
  /// cannot be bound. `service` must outlive the server.
  SimServer(SimService& service, const ServerSettings& settings);
  ~SimServer();  // stop()

  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// The bound port (resolves ephemeral binds).
  std::uint16_t port() const { return port_; }

  /// Graceful shutdown: drains the service, then closes every
  /// connection and joins all threads. Idempotent.
  void stop();

 private:
  struct Slot;

  void accept_main();
  void handle_connection(int fd, Slot& slot);
  void serve_ndjson(int fd, std::string first_chunk);
  void serve_http(int fd, std::string first_chunk);
  std::string response_for(const std::string& line);
  /// One NDJSON request/response exchange, including the streamed
  /// progress lines when the request asked for them.
  void respond_ndjson(int fd, const std::string& line);

  SimService& service_;
  ServerSettings settings_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Slot>> slots_;
  std::thread acceptor_;
};

}  // namespace paserta
