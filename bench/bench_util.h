// Shared helpers for the figure-regeneration benches.
//
// Every bench accepts an optional first argument overriding the number of
// Monte-Carlo runs per point (default 1000, as in the paper) and prints
// machine-readable CSV series plus the experiment parameters.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

namespace paserta::benchutil {

/// Strict positive-integer parse of a full token. Garbage ("abc"), partial
/// numbers ("12abc"), out-of-range values and non-positive counts all fail
/// loudly with usage text instead of being silently coerced the way
/// std::atoi would ("abc" -> default, "12abc" -> 12).
inline int positive_int_arg(const char* token, const char* what,
                            const char* usage) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(token, &end, 10);
  if (end == token || *end != '\0' || errno == ERANGE || v < 1 ||
      v > INT_MAX) {
    std::cerr << "error: invalid " << what << " '" << token
              << "' (expected a positive integer)\n"
              << "usage: " << usage << "\n";
    std::exit(2);
  }
  return static_cast<int>(v);
}

inline int runs_from_args(int argc, char** argv, int def = 1000) {
  if (argc > 1)
    return positive_int_arg(argv[1], "runs",
                            "bench [runs]   (runs: Monte-Carlo runs per "
                            "point, positive integer)");
  return def;
}

inline ExperimentConfig paper_config(const LevelTable& table, int cpus,
                                     int runs) {
  ExperimentConfig cfg;
  cfg.cpus = cpus;
  cfg.table = table;
  cfg.runs = runs;
  cfg.seed = 20020818;  // ICPP 2002
  cfg.overheads.speed_compute_cycles = 300;
  cfg.overheads.speed_change_time = SimTime::from_us(5.0);
  return cfg;
}

inline void emit(const std::string& figure, const std::string& caption,
                 const std::vector<SweepPoint>& points,
                 const std::string& x_name) {
  print_figure(std::cout, figure, caption, points, x_name);
}

}  // namespace paserta::benchutil
