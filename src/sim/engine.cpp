#include "sim/engine.h"

#include <algorithm>
#include <functional>
#include <span>

#include "common/error.h"
#include "sim/engine_core.h"

namespace paserta {
namespace {

/// The canonical ledger-to-joules fold is: per-level busy times ascending,
/// per-level compute times ascending, then non-zero transition pairs in
/// ascending flat index (== row-major) order, then idle. Both the engine's
/// end-of-run energy computation and the public attribution_energy() build
/// their sums from these pieces in that order, so an exported ledger folds
/// back to the engine's energies bit-for-bit by construction. The engine
/// walks its sorted touched-entry list instead of scanning the L x L
/// matrix — the visit sequence (the non-zero entries, ascending) and hence
/// the FP sum are identical.
double fold_levels(std::span<const std::uint64_t> ps,
                   std::span<const Energy> power) {
  double joules = 0.0;
  for (std::size_t l = 0; l < power.size(); ++l) {
    if (ps[l] != 0)
      joules += power[l] * SimTime{static_cast<std::int64_t>(ps[l])}.sec();
  }
  return joules;
}

double transition_energy(std::size_t idx, std::uint64_t count,
                         std::span<const Energy> power, double switch_sec) {
  const std::size_t from = idx / power.size();
  const std::size_t to = idx % power.size();
  return static_cast<double>(count) * std::max(power[from], power[to]) *
         switch_sec;
}

EnergySplit fold_ledger(std::span<const std::uint64_t> busy_ps,
                        std::span<const std::uint64_t> compute_ps,
                        std::span<const std::uint64_t> transitions,
                        std::uint64_t idle_ps, const PowerModel& pm,
                        const Overheads& ovh) {
  const std::span<const Energy> power = pm.level_powers();
  const double switch_sec = ovh.speed_change_time.sec();
  EnergySplit split;
  split.busy = fold_levels(busy_ps, power);
  split.overhead = fold_levels(compute_ps, power);
  for (std::size_t idx = 0; idx < transitions.size(); ++idx) {
    if (transitions[idx] != 0)
      split.overhead +=
          transition_energy(idx, transitions[idx], power, switch_sec);
  }
  if (idle_ps != 0)
    split.idle = pm.idle_energy(SimTime{static_cast<std::int64_t>(idle_ps)});
  return split;
}

/// Number of nodes on the taken path, computed with workspace scratch so
/// the debug completeness check allocates nothing in steady state. Same
/// closure as executed_set(), counting instead of materializing; the NUP
/// initialization comes from the offline result's precomputed table
/// (shared with the engine's own per-run reset).
std::uint32_t count_executed(const AndOrGraph& g, const RunScenario& sc,
                             const std::vector<std::uint32_t>& nup_init,
                             const std::vector<std::uint32_t>& sources,
                             SimWorkspace& ws) {
  ws.reach_nup = nup_init;
  ws.reached.assign(g.size(), 0);
  ws.reach_stack.assign(sources.begin(), sources.end());
  const std::span<const Node> nodes = g.nodes();
  std::uint32_t count = 0;
  while (!ws.reach_stack.empty()) {
    const NodeId id{ws.reach_stack.back()};
    ws.reach_stack.pop_back();
    if (ws.reached[id.value]) continue;
    ws.reached[id.value] = 1;
    ++count;
    const Node& node = nodes[id.value];
    if (node.is_or_fork()) {
      const int chosen = sc.choice_of(id);
      ws.reach_stack.push_back(
          node.succs[static_cast<std::size_t>(chosen)].value);
    } else {
      for (NodeId s : node.succs) {
        if (ws.reach_nup[s.value] > 0 && --ws.reach_nup[s.value] == 0)
          ws.reach_stack.push_back(s.value);
      }
    }
  }
  return count;
}

class Engine {
 public:
  Engine(const Application& app, const OfflineResult& off, const PowerModel& pm,
         const Overheads& ovh, SpeedPolicy& policy, const RunScenario& sc,
         SimWorkspace& ws, const SimOptions& opt)
      : app_(app),
        g_(app.graph),
        nodes_(app.graph.nodes()),
        eo_(off.eo_table()),
        eet_(off.eet_table()),
        nup_init_(off.nup_init_table()),
        flags_(off.node_flag_table()),
        wcet_(off.wcet_table()),
        succ_off_(off.succ_offset_table()),
        succ_flat_(off.succ_list_table()),
        levels_(pm.table().levels()),
        power_(pm.level_powers()),
        f_max_(pm.table().f_max()),
        dynamic_(policy.kind() == SpeedPolicy::Kind::Dynamic),
        trace_(opt.record_trace),
        ctr_(opt.counters),
        off_(off),
        pm_(pm),
        ovh_(ovh),
        policy_(policy),
        sc_(sc),
        ws_(ws),
        opt_(opt) {}

  SimResult run();

 private:
  using Cpu = SimWorkspace::Cpu;

  void dispatch(int cpu, SimTime t);
  void on_completion(int cpu, NodeId node, SimTime t);
  // First write to a level's ledger entry this run records it in the
  // touched list, so the per-run reset and the fold walk a handful of
  // levels instead of the whole table.
  void touch_level(std::size_t l) {
    if (!ws_.level_touched[l]) {
      ws_.level_touched[l] = 1;
      ws_.touched_levels.push_back(static_cast<std::uint32_t>(l));
    }
  }
  void enqueue_ready(NodeId id);
  std::pair<std::uint32_t, std::uint32_t> pop_ready();
  void release_successors(NodeId id);
  bool head_dispatchable() const;
  void wake_one(SimTime t);

  const Application& app_;
  const AndOrGraph& g_;
  // simulate() validates that scenario and offline data match the graph,
  // so the per-dispatch paths below index unchecked. The dispatch loop
  // reads only the flat per-node tables (flags/WCET/CSR successors) and the
  // precomputed per-level powers; the Node structs are touched solely by
  // failed-assertion messages.
  const std::span<const Node> nodes_;
  const std::span<const std::uint32_t> eo_;
  const std::span<const SimTime> eet_;
  const std::span<const std::uint32_t> nup_init_;
  const std::span<const std::uint8_t> flags_;
  const std::span<const SimTime> wcet_;
  const std::span<const std::uint32_t> succ_off_;
  const std::span<const std::uint32_t> succ_flat_;
  const std::span<const Level> levels_;
  const std::span<const Energy> power_;
  const Freq f_max_;
  const bool dynamic_;  // policy_.kind(), resolved once per run
  const bool trace_;    // opt_.record_trace, hoisted out of the loop
  SimCounters* const ctr_;  // opt_.counters, null = no telemetry
  const OfflineResult& off_;
  const PowerModel& pm_;
  const Overheads& ovh_;
  SpeedPolicy& policy_;
  const RunScenario& sc_;
  SimWorkspace& ws_;
  const SimOptions& opt_;

  std::uint32_t neo_ = 0;
  std::uint64_t seq_ = 0;
  // Inline run accounting (replaces the post-run closure traversal):
  // activated_ counts nodes that received their first NUP decrement (or
  // were force-readied by their OR fork), completed_ those whose NUP
  // reached zero. activated_ == completed_ at the end of the run — together
  // with an empty ready queue — certifies that exactly the taken path was
  // dispatched; a gap means a node was partially released and the run
  // deadlocked.
  std::uint32_t activated_ = 0;
  std::uint32_t completed_ = 0;

  SimResult result_;
  SimTime last_activity_{};
};

void Engine::enqueue_ready(NodeId id) {
  // Shared flat-key insert (engine_core): one u64 compare reproduces the
  // (eo, id) lexicographic order of the pair vector this replaces.
  auto& q = ws_.ready;
  q.push_back(0);  // grow; ready_insert writes every moved slot
  std::uint32_t n = static_cast<std::uint32_t>(q.size()) - 1;
  engine_core::ready_insert(q.data(), n,
                            engine_core::ready_key(eo_[id.value], id.value));
}

std::pair<std::uint32_t, std::uint32_t> Engine::pop_ready() {
  const std::uint64_t head = ws_.ready.back();
  ws_.ready.pop_back();
  return {engine_core::ready_key_eo(head), engine_core::ready_key_id(head)};
}

void Engine::release_successors(NodeId id) {
  const std::uint32_t begin = succ_off_[id.value];
  const std::uint32_t end = succ_off_[id.value + 1];
  for (std::uint32_t k = begin; k < end; ++k) {
    const std::uint32_t sv = succ_flat_[k];
    std::uint32_t& nup = ws_.nup[sv];
    PASERTA_ASSERT(nup > 0,
                   "NUP underflow at node '" << nodes_[sv].name << "'");
    if (nup == nup_init_[sv]) ++activated_;
    if (--nup == 0) {
      ++completed_;
      enqueue_ready(NodeId{sv});
    }
  }
}

bool Engine::head_dispatchable() const {
  if (ws_.ready.empty()) return false;
  const std::uint64_t head = ws_.ready.back();  // minimum of the sorted queue
  const std::uint32_t eo = engine_core::ready_key_eo(head);
  if (eo == neo_) return true;
  // OR nodes may jump NEO forward past the EOs of untaken alternatives.
  return (flags_[engine_core::ready_key_id(head)] & kNodeFlagOrNode) != 0 &&
         eo > neo_;
}

void Engine::wake_one(SimTime t) {
  if (!head_dispatchable()) return;
  for (int c = 0; c < static_cast<int>(ws_.cpus.size()); ++c) {
    if (ws_.cpus[c].sleeping) {
      ws_.cpus[c].sleeping = false;
      dispatch(c, t);
      return;
    }
  }
}

void Engine::dispatch(int cpu_id, SimTime t) {
  Cpu& cpu = ws_.cpus[static_cast<std::size_t>(cpu_id)];
  for (;;) {
    if (!head_dispatchable()) {
      cpu.sleeping = true;  // Figure 2 step 3: wait()
      return;
    }
    const auto [eo, idv] = pop_ready();
    const NodeId id{idv};
    const std::uint8_t flags = flags_[idv];
    PASERTA_ASSERT(eo >= neo_, "execution order went backwards");
    neo_ = eo + 1;  // Figure 2 steps 4 & 7
    ++result_.dispatched;
    if (ctr_) ++ctr_->dispatches;
    last_activity_ = std::max(last_activity_, t);

    if (flags & kNodeFlagDummy) {
      int chosen_alt = -1;
      if (flags & kNodeFlagOrFork) {
        const int chosen = sc_.or_choice[idv];
        PASERTA_ASSERT(
            chosen >= 0 && succ_off_[idv] + static_cast<std::uint32_t>(
                               chosen) < succ_off_[idv + 1],
            "scenario lacks a choice for fork '" << nodes_[idv].name << "'");
        chosen_alt = chosen;
        if (ctr_) ++ctr_->or_fires;
        const std::uint32_t child =
            succ_flat_[succ_off_[idv] + static_cast<std::uint32_t>(chosen)];
        std::uint32_t& child_nup = ws_.nup[child];
        PASERTA_ASSERT(child_nup > 0, "OR fork '"
                                          << nodes_[idv].name
                                          << "' re-readied its alternative");
        // Forcing the chosen alternative ready opens (if untouched) and
        // closes its activation in one step.
        if (child_nup == nup_init_[child]) ++activated_;
        ++completed_;
        child_nup = 0;
        enqueue_ready(NodeId{child});
        if (dynamic_) policy_.on_or_fired(id, chosen, t, off_, pm_);
      } else {
        release_successors(id);
        if ((flags & kNodeFlagOrNode) && dynamic_)
          policy_.on_or_fired(id, -1, t, off_, pm_);
      }
      if (trace_) {
        TaskRecord rec;
        rec.node = id;
        rec.cpu = cpu_id;
        rec.eo = eo;
        rec.dispatch_time = rec.exec_start = rec.finish = t;
        rec.level = rec.level_before = cpu.level;
        rec.chosen_alt = chosen_alt;
        ws_.trace.push_back(rec);
      }
      continue;  // same processor keeps dispatching at the same instant
    }

    // ---- Computation node: pick a speed and execute (Figure 2 step 5). --
    SimTime start = t;
    const std::size_t lvl_before = cpu.level;
    std::size_t lvl = lvl_before;
    bool switched = false;

    if (dynamic_) {
      // Speed-computation overhead runs at the current frequency — charged
      // from the workspace's precomputed per-level table (engine_core),
      // value-identical to the per-dispatch division it replaces.
      const SimTime dt_compute = ws_.dt_compute[lvl];
      touch_level(lvl);
      ws_.compute_ps[lvl] += static_cast<std::uint64_t>(dt_compute.ps);
      cpu.busy += dt_compute;
      start += dt_compute;

      // Greedy slack reclamation: the task owns everything up to its
      // estimated end time EET = LST + inflated WCET. Reserve the switch
      // overhead before sizing the speed (conservative: the reservation is
      // kept even if the level ends up unchanged).
      const SimTime avail = eet_[idv] - start - ovh_.speed_change_time;
      const Freq gss = required_freq(f_max_, wcet_[idv], avail);
      const Freq floor = policy_.floor_freq(start);
      const Freq target = std::max(gss, floor);
      const std::size_t new_lvl = pm_.table().quantize_up(target);
      if (ctr_) {
        // Did the speculative floor override greedy slack reclamation?
        // (GSS's floor is 0, so it always counts as a greedy pick.)
        if (floor > gss) ++ctr_->spec_picks;
        else ++ctr_->greedy_picks;
      }

      if (new_lvl != lvl) {
        const std::size_t idx = lvl * power_.size() + new_lvl;
        if (ws_.transitions[idx]++ == 0)
          ws_.touched_transitions.push_back(static_cast<std::uint32_t>(idx));
        cpu.busy += ovh_.speed_change_time;
        start += ovh_.speed_change_time;
        ++result_.speed_changes;
        if (ctr_) ++ctr_->speed_changes;
        switched = true;
        lvl = new_lvl;
        cpu.level = lvl;
      }
    }

    const SimTime actual = sc_.actual[idv];
    PASERTA_ASSERT(actual > SimTime::zero() && actual <= wcet_[idv],
                   "scenario actual time out of (0, WCET] for '"
                       << nodes_[idv].name << "'");
    // scale_time(t, f, f) == t exactly (integer ceil), so running at f_max
    // — every static NPM dispatch and any dynamic task without slack —
    // skips the 128-bit division.
    const Freq freq = levels_[lvl].freq;
    const SimTime duration =
        freq == f_max_ ? actual : scale_time(actual, f_max_, freq);
    const SimTime finish = start + duration;
    touch_level(lvl);
    ws_.busy_ps[lvl] += static_cast<std::uint64_t>(duration.ps);
    cpu.busy += duration;
    if (ctr_) {
      ++ctr_->tasks;
      // Slack actually spent: the extra wall time bought by running below
      // f_max (zero whenever the task ran at full speed).
      ctr_->reclaimed_slack_ps +=
          static_cast<std::uint64_t>((duration - actual).ps);
    }

    if (trace_) {
      TaskRecord rec;
      rec.node = id;
      rec.cpu = cpu_id;
      rec.eo = eo;
      rec.dispatch_time = t;
      rec.exec_start = start;
      rec.finish = finish;
      rec.level = lvl;
      rec.level_before = lvl_before;
      rec.switched = switched;
      ws_.trace.push_back(rec);
    }
    ws_.ev_finish.push_back(finish.ps);
    ws_.ev_seq.push_back(seq_++);
    ws_.ev_meta.push_back(engine_core::completion_meta(
        static_cast<std::uint32_t>(cpu_id), idv));

    // Figure 2 step 5: if another processor sleeps and the (new) head is
    // dispatchable, signal it before executing.
    wake_one(t);
    return;
  }
}

void Engine::on_completion(int cpu_id, NodeId node, SimTime t) {
  last_activity_ = std::max(last_activity_, t);
  release_successors(node);
  dispatch(cpu_id, t);  // Figure 2 step 6: back to step 1
}

SimResult Engine::run() {
  // NUP reset is a single memcpy from the offline result's precomputed
  // table (OR rule baked in: fire on the first finishing predecessor), and
  // the initial ready set comes from its precomputed source list — the
  // per-run walk over the Node structs is gone. Sources are listed in
  // ascending id order, matching the index loop this replaces.
  ws_.nup = off_.nup_init_table();
  ws_.ready.clear();
  ws_.ev_finish.clear();
  ws_.ev_seq.clear();
  ws_.ev_meta.clear();
  ws_.trace.clear();
  // Per-level compute-overhead table: a pure function of (overheads,
  // table), rebuilt only when the workspace meets a different pair.
  if (ws_.dt_key != levels_.data() ||
      ws_.dt_cycles != ovh_.speed_compute_cycles) {
    ws_.dt_compute.resize(levels_.size());
    engine_core::build_compute_table(ovh_.speed_compute_cycles,
                                     levels_.data(), levels_.size(),
                                     ws_.dt_compute.data());
    ws_.dt_key = levels_.data();
    ws_.dt_cycles = ovh_.speed_compute_cycles;
  }
  // Attribution ledger reset. A run touches only a few levels and a few
  // transition pairs, so clearing the full tables (an O(L^2) memset for
  // the transition matrix) would dominate short runs; instead the previous
  // run's touched entries are zeroed individually — runs abandoned
  // mid-flight by an exception are cleaned up here too. The full assigns
  // run only when the workspace first meets this power table.
  const std::size_t nlevels = power_.size();
  if (ws_.busy_ps.size() != nlevels) {
    ws_.busy_ps.assign(nlevels, 0);
    ws_.compute_ps.assign(nlevels, 0);
    ws_.level_touched.assign(nlevels, 0);
  } else {
    for (const std::uint32_t l : ws_.touched_levels) {
      ws_.busy_ps[l] = 0;
      ws_.compute_ps[l] = 0;
      ws_.level_touched[l] = 0;
    }
  }
  ws_.touched_levels.clear();
  if (ws_.transitions.size() != nlevels * nlevels) {
    ws_.transitions.assign(nlevels * nlevels, 0);
  } else {
    for (const std::uint32_t idx : ws_.touched_transitions)
      ws_.transitions[idx] = 0;
  }
  ws_.touched_transitions.clear();
  for (std::uint32_t v : off_.source_table()) enqueue_ready(NodeId{v});

  const std::size_t initial_level =
      dynamic_ ? pm_.table().size() - 1  // dynamic schemes power up at f_max
               : policy_.static_level();
  ws_.cpus.assign(static_cast<std::size_t>(off_.cpus()),
                  Cpu{initial_level, false, SimTime::zero()});

  for (int c = 0; c < off_.cpus(); ++c) {
    if (!ws_.cpus[static_cast<std::size_t>(c)].sleeping) {
      // dispatch() may have been woken transitively already; the flag
      // check keeps each CPU's first dispatch single.
      dispatch(c, SimTime::zero());
    }
  }

  while (!ws_.ev_finish.empty()) {
    // At most one outstanding completion per CPU, so a linear min-scan
    // beats heap maintenance; (finish, seq) is unique, so the extraction
    // order matches the heap this replaces. The scan runs over the shared
    // flat key arrays (engine_core::completion_min) with swap-removal.
    const std::uint32_t n = static_cast<std::uint32_t>(ws_.ev_finish.size());
    const std::uint32_t min_i =
        engine_core::completion_min(ws_.ev_finish.data(), ws_.ev_seq.data(), n);
    const SimTime finish{ws_.ev_finish[min_i]};
    const std::uint64_t meta = ws_.ev_meta[min_i];
    ws_.ev_finish[min_i] = ws_.ev_finish.back();
    ws_.ev_seq[min_i] = ws_.ev_seq.back();
    ws_.ev_meta[min_i] = ws_.ev_meta.back();
    ws_.ev_finish.pop_back();
    ws_.ev_seq.pop_back();
    ws_.ev_meta.pop_back();
    on_completion(static_cast<int>(engine_core::completion_cpu(meta)),
                  NodeId{engine_core::completion_node(meta)}, finish);
  }

  // Completeness: every node on the taken path must have been dispatched.
  // The inline accounting certifies it in O(1): everything readied was
  // taken (empty queue) and nothing was left partially released (a node
  // stuck with 0 < NUP < initial NUP would show as activated > completed).
  PASERTA_ASSERT(ws_.ready.empty(), "simulation ended with ready work");
  PASERTA_ASSERT(activated_ == completed_,
                 "simulation ended with " << activated_ - completed_
                                          << " partially released nodes "
                                             "(deadlock?)");
  if (opt_.check_completeness) {
    // Debug-only second opinion: recompute the closure from scratch.
    const std::uint32_t expected_count = count_executed(
        g_, sc_, off_.nup_init_table(), off_.source_table(), ws_);
    PASERTA_ASSERT(result_.dispatched == expected_count,
                   "simulation dispatched " << result_.dispatched << " of "
                                            << expected_count
                                            << " expected nodes (deadlock?)");
  }

  result_.finish_time = last_activity_;
  result_.deadline_met = result_.finish_time <= off_.deadline();

  // Idle/sleep time over [0, deadline], clamped at 0 per processor when a
  // run overruns; joins the ledger so idle energy flows through the same
  // fold as busy and overhead energy.
  std::uint64_t idle_ps = 0;
  for (const Cpu& c : ws_.cpus) {
    const SimTime idle = off_.deadline() - c.busy;
    if (idle > SimTime::zero()) idle_ps += static_cast<std::uint64_t>(idle.ps);
  }

  // The canonical ledger fold computes the run's energies. Level and
  // transition entries are visited through their sorted touched lists —
  // the same non-zero entries in the same ascending order as
  // attribution_energy()'s full-table scans over exported counters
  // (untouched entries are zero and both scans skip zeros), which is what
  // makes audit mode's "counters rebuild the engine's energies exactly"
  // an equality, not a tolerance.
  if (ws_.touched_levels.size() > 1)
    std::sort(ws_.touched_levels.begin(), ws_.touched_levels.end());
  if (ws_.touched_transitions.size() > 1)
    std::sort(ws_.touched_transitions.begin(), ws_.touched_transitions.end());
  {
    const std::span<const Energy> power = pm_.level_powers();
    const double switch_sec = ovh_.speed_change_time.sec();
    // One pass over the touched levels with two accumulators: each
    // accumulator still receives its terms in ascending level order, so
    // the sums are bitwise those of fold_ledger's separate busy and
    // compute loops.
    double busy = 0.0;
    double overhead = 0.0;
    for (const std::uint32_t l : ws_.touched_levels) {
      if (ws_.busy_ps[l] != 0)
        busy += power[l] *
                SimTime{static_cast<std::int64_t>(ws_.busy_ps[l])}.sec();
      if (ws_.compute_ps[l] != 0)
        overhead += power[l] *
                    SimTime{static_cast<std::int64_t>(ws_.compute_ps[l])}.sec();
    }
    for (const std::uint32_t idx : ws_.touched_transitions)
      overhead +=
          transition_energy(idx, ws_.transitions[idx], power, switch_sec);
    result_.busy_energy = busy;
    result_.overhead_energy = overhead;
    result_.idle_energy =
        idle_ps != 0
            ? pm_.idle_energy(SimTime{static_cast<std::int64_t>(idle_ps)})
            : 0.0;
  }

  if (opt_.audit) {
    // Integer time conservation: every energy-bearing picosecond the
    // ledger attributes must come from a processor's busy time — exactly.
    std::uint64_t ledger_ps = 0;
    for (const std::uint64_t t : ws_.busy_ps) ledger_ps += t;
    for (const std::uint64_t t : ws_.compute_ps) ledger_ps += t;
    std::uint64_t switches = 0;
    for (const std::uint64_t n : ws_.transitions) switches += n;
    ledger_ps +=
        switches * static_cast<std::uint64_t>(ovh_.speed_change_time.ps);
    std::uint64_t cpu_busy_ps = 0;
    for (const Cpu& c : ws_.cpus)
      cpu_busy_ps += static_cast<std::uint64_t>(c.busy.ps);
    PASERTA_ASSERT(ledger_ps == cpu_busy_ps,
                   "attribution ledger accounts for "
                       << ledger_ps << " ps of busy time but processors "
                       << "recorded " << cpu_busy_ps << " ps");
  }

  if (ctr_) {
    // Export the ledger. Cells are zero-initialized per sweep, so the
    // first run adopts the shape and later runs of the same cell add
    // elementwise (SimCounters::add asserts the level count matches).
    if (ctr_->levels == 0) {
      ctr_->levels = static_cast<std::uint32_t>(power_.size());
      ctr_->busy_ps = ws_.busy_ps;
      ctr_->compute_ps = ws_.compute_ps;
      ctr_->transitions = ws_.transitions;
    } else {
      PASERTA_ASSERT(ctr_->levels == power_.size(),
                     "SimCounters cell reused across power tables");
      // Only this run's touched entries can be non-zero.
      for (const std::uint32_t l : ws_.touched_levels) {
        ctr_->busy_ps[l] += ws_.busy_ps[l];
        ctr_->compute_ps[l] += ws_.compute_ps[l];
      }
      for (const std::uint32_t idx : ws_.touched_transitions)
        ctr_->transitions[idx] += ws_.transitions[idx];
    }
    ctr_->idle_ps += idle_ps;
  }

  if (opt_.record_trace) {
    result_.trace = std::move(ws_.trace);
    ws_.trace.clear();  // leave the moved-from buffer in a defined state
  }
  return result_;
}

}  // namespace

EnergySplit attribution_energy(const SimCounters& c, const PowerModel& pm,
                               const Overheads& ovh) {
  const std::size_t n = pm.table().size();
  PASERTA_REQUIRE(c.levels == n,
                  "attribution ledger recorded against "
                      << c.levels << " levels, power model has " << n);
  PASERTA_REQUIRE(c.busy_ps.size() == n && c.compute_ps.size() == n &&
                      c.transitions.size() == n * n,
                  "attribution ledger shape does not match its level count");
  return fold_ledger(c.busy_ps, c.compute_ps, c.transitions, c.idle_ps, pm,
                     ovh);
}

std::vector<bool> executed_set(const AndOrGraph& g, const RunScenario& sc) {
  std::vector<std::uint32_t> nup(g.size());
  std::vector<bool> executed(g.size(), false);
  std::vector<NodeId> stack;
  for (NodeId id : g.all_nodes()) {
    const Node& n = g.node(id);
    nup[id.value] =
        n.kind == NodeKind::OrNode
            ? std::min<std::uint32_t>(
                  1, static_cast<std::uint32_t>(n.preds.size()))
            : static_cast<std::uint32_t>(n.preds.size());
    if (nup[id.value] == 0) stack.push_back(id);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (executed[id.value]) continue;
    executed[id.value] = true;
    const Node& n = g.node(id);
    if (n.is_or_fork()) {
      const int chosen = sc.choice_of(id);
      stack.push_back(n.succs[static_cast<std::size_t>(chosen)]);
    } else {
      for (NodeId s : n.succs) {
        if (nup[s.value] > 0 && --nup[s.value] == 0) stack.push_back(s);
      }
    }
  }
  return executed;
}

SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   SpeedPolicy& policy, const RunScenario& scenario,
                   SimWorkspace& workspace, const SimOptions& options) {
  PASERTA_REQUIRE(scenario.actual.size() == app.graph.size() &&
                      scenario.or_choice.size() == app.graph.size(),
                  "scenario size does not match the application graph");
  PASERTA_REQUIRE(off.eo_table().size() == app.graph.size() &&
                      off.eet_table().size() == app.graph.size() &&
                      off.nup_init_table().size() == app.graph.size() &&
                      off.node_flag_table().size() == app.graph.size() &&
                      off.wcet_table().size() == app.graph.size() &&
                      off.succ_offset_table().size() == app.graph.size() + 1,
                  "offline result does not match the application graph");
  Engine engine(app, off, pm, overheads, policy, scenario, workspace, options);
  return engine.run();
}

SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   SpeedPolicy& policy, const RunScenario& scenario) {
  SimWorkspace workspace;
  SimOptions options;
  options.check_completeness = true;  // one-shot callers keep the full check
  return simulate(app, off, pm, overheads, policy, scenario, workspace,
                  options);
}

SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   Scheme scheme, const RunScenario& scenario) {
  auto policy = make_policy(scheme);
  policy->reset(off, pm);
  return simulate(app, off, pm, overheads, *policy, scenario);
}

}  // namespace paserta
