// Scenario-dedup memoization suite (DESIGN.md §15).
//
// Layers under test, bottom-up: the FingerprintTable (dense interning,
// growth, full-key comparison under adversarial hash collisions), the
// sampler's key-emitting draws (equal keys iff bit-identical scenarios)
// and scenario_space(), the dedup resolution rule (resolved_dedup), and —
// the point of it all — randomized bitwise cross-validation: on random
// AND/OR applications, in both the discrete (high-hit-rate) and the
// continuous (all-miss) regime, a dedup-on evaluation must produce
// byte-identical rendered output and bitwise-equal counter totals to
// dedup-off at every (thread count x batch size). Carries the
// batch_identity label (ASan/UBSan CI) and the dedup_identity label
// (TSan CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/random_app.h"
#include "common/rng.h"
#include "core/offline.h"
#include "harness/experiment.h"
#include "harness/json.h"
#include "obs/metrics.h"
#include "sim/fingerprint.h"
#include "sim/sampler.h"
#include "sim/scenario.h"

namespace paserta {
namespace {

// ---- FingerprintTable ---------------------------------------------------

TEST(FingerprintTable, InternsDenseIdsInFirstEncounterOrder) {
  FingerprintTable table(2);
  bool inserted = false;
  const std::uint64_t a[] = {1, 2};
  const std::uint64_t b[] = {3, 4};
  EXPECT_EQ(table.intern(a, inserted), 0u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(table.intern(b, inserted), 1u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(table.intern(a, inserted), 0u);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(b), 1u);
  const std::uint64_t c[] = {1, 3};  // shares a word with `a`, distinct key
  EXPECT_EQ(table.find(c), FingerprintTable::kNotFound);
  // Stored keys are readable back, id-major.
  EXPECT_EQ(table.key(0)[0], 1u);
  EXPECT_EQ(table.key(1)[1], 4u);
}

TEST(FingerprintTable, GrowsPastInitialCapacityWithoutLosingKeys) {
  FingerprintTable table(1);
  bool inserted = false;
  constexpr std::uint64_t kKeys = 10000;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::uint64_t key = k * 0x9E3779B97F4A7C15ULL + 7;
    ASSERT_EQ(table.intern(&key, inserted), k);
    ASSERT_TRUE(inserted);
  }
  EXPECT_EQ(table.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::uint64_t key = k * 0x9E3779B97F4A7C15ULL + 7;
    ASSERT_EQ(table.find(&key), k);
    ASSERT_EQ(table.intern(&key, inserted), k);
    ASSERT_FALSE(inserted);
  }
  EXPECT_GT(table.bytes(), kKeys * sizeof(std::uint64_t));
}

TEST(FingerprintTable, ZeroWordKeysCollapseToOneId) {
  // A deterministic workload has no stochastic ops: every run's (empty)
  // fingerprint is the same scenario.
  FingerprintTable table(0);
  bool inserted = false;
  EXPECT_EQ(table.intern(nullptr, inserted), 0u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(table.intern(nullptr, inserted), 0u);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FingerprintTable, CollidingHashesFallBackToFullKeyComparison) {
  // Adversarial hash: every key collides. Correctness may not depend on
  // hash quality — distinct keys must still intern to distinct ids, and
  // lookups must land on the right one via the full-key memcmp.
  const auto constant_hash = [](const std::uint64_t*, std::size_t)
      -> std::uint64_t { return 42; };
  FingerprintTable table(3, constant_hash);
  bool inserted = false;
  constexpr std::uint64_t kKeys = 500;  // forces growth while colliding
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::uint64_t key[] = {k, ~k, k ^ 0xABCDEF};
    ASSERT_EQ(table.intern(key, inserted), k);
    ASSERT_TRUE(inserted);
  }
  EXPECT_EQ(table.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::uint64_t key[] = {k, ~k, k ^ 0xABCDEF};
    ASSERT_EQ(table.find(key), k);
  }
  // A near-miss key (equal hash, equal first words, one differing word)
  // must not alias an existing entry.
  const std::uint64_t near[] = {0, ~std::uint64_t{0}, 0xABCDEE};
  EXPECT_EQ(table.find(near), FingerprintTable::kNotFound);
  EXPECT_EQ(table.intern(near, inserted), kKeys);
  EXPECT_TRUE(inserted);
}

// ---- Sampler fingerprints ----------------------------------------------

TEST(ScenarioFingerprint, EqualKeysMeanBitIdenticalScenarios) {
  Rng gen(2026);
  apps::RandomAppConfig rcfg;
  const Application app = apps::random_application(gen, rcfg, "keys");
  const ScenarioSampler sampler(app.graph);
  ASSERT_GT(sampler.op_count(), 0u);

  std::vector<std::uint64_t> key_a(sampler.op_count());
  std::vector<std::uint64_t> key_b(sampler.op_count());
  RunScenario sc_a, sc_b, sc_plain;

  // Same stream -> same key, same scenario; the key-emitting draw must
  // also consume exactly the same randomness as the plain draw.
  for (std::uint64_t run = 0; run < 16; ++run) {
    Rng r1(Rng::stream_seed(99, run));
    Rng r2(Rng::stream_seed(99, run));
    sampler.draw_into(r1, sc_a, key_a.data());
    sampler.draw_into(r2, sc_plain);
    EXPECT_EQ(sc_a.actual, sc_plain.actual);
    EXPECT_EQ(sc_a.or_choice, sc_plain.or_choice);

    Rng r3(Rng::stream_seed(99, run));
    sampler.draw_into(r3, sc_b, key_b.data());
    EXPECT_EQ(key_a, key_b);
    // Distinct runs draw gaussians here, so keys (and scenarios) differ.
    if (run > 0) {
      Rng r0(Rng::stream_seed(99, 0));
      sampler.draw_into(r0, sc_b, key_b.data());
      EXPECT_NE(key_a, key_b);
      EXPECT_NE(sc_a.actual, sc_b.actual);
    }
  }
}

TEST(ScenarioFingerprint, ScenarioSpaceCountsForkOutcomesOnly) {
  Rng gen(7);
  apps::RandomAppConfig rcfg;
  // Continuous regime: gaussian ACET draws -> unbounded space.
  const Application cont = apps::random_application(gen, rcfg, "cont");
  EXPECT_EQ(ScenarioSampler(cont.graph).scenario_space(), 0u);

  // Discrete regime: ACET = WCET kills every gaussian op; the space is
  // the product of fork alternative counts.
  Application disc = cont;
  assign_alpha(disc.graph, 1.0);
  const ScenarioSampler sampler(disc.graph);
  EXPECT_EQ(sampler.gaussian_count(), 0u);
  std::uint64_t expected = 1;
  for (const Node& node : disc.graph.nodes())
    if (node.is_or_fork()) expected *= node.succs.size();
  EXPECT_EQ(sampler.scenario_space(), expected);
  EXPECT_GE(expected, 1u);
}

TEST(ScenarioFingerprint, ResolvedDedupFollowsModeAndSpace) {
  ExperimentConfig cfg;
  cfg.runs = 100;

  cfg.dedup = DedupMode::kAuto;
  EXPECT_FALSE(resolved_dedup(cfg, 0));    // unbounded space
  EXPECT_TRUE(resolved_dedup(cfg, 1));     // deterministic
  EXPECT_TRUE(resolved_dedup(cfg, 100));   // space == runs
  EXPECT_FALSE(resolved_dedup(cfg, 101));  // more scenarios than runs

  cfg.dedup = DedupMode::kOn;
  EXPECT_TRUE(resolved_dedup(cfg, 0));  // forced, even unbounded
  cfg.dedup = DedupMode::kOff;
  EXPECT_FALSE(resolved_dedup(cfg, 1));

  // Per-run engine work forces the uncached path in every mode.
  cfg.dedup = DedupMode::kOn;
  cfg.verify_traces = true;
  EXPECT_FALSE(resolved_dedup(cfg, 1));
  cfg.verify_traces = false;
  cfg.audit = true;
  EXPECT_FALSE(resolved_dedup(cfg, 1));
}

// ---- Randomized bitwise cross-validation --------------------------------

struct EvalResult {
  std::string json;       // rendered sweep point (all stats, all schemes)
  PointMetrics metrics;   // engine-counter totals incl. attribution ledger
  DedupStats dedup;
};

EvalResult evaluate(const Application& app, ExperimentConfig cfg,
                    SimTime deadline, DedupMode mode, int threads,
                    int batch) {
  cfg.dedup = mode;
  cfg.threads = threads;
  cfg.batch = batch;
  cfg.collect_metrics = true;
  MetricsRegistry reg;
  cfg.registry = &reg;
  std::vector<SweepPoint> points;
  points.push_back(run_point(app, cfg, deadline, 0.5));
  EvalResult r;
  JsonExportOptions jopt;
  jopt.experiment_id = "dedup-crosscheck";
  r.json = sweep_to_json(points, jopt);
  r.metrics = points.front().metrics;
  r.dedup = points.front().dedup;
  return r;
}

void expect_counters_eq(const SimCounters& a, const SimCounters& b) {
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.or_fires, b.or_fires);
  EXPECT_EQ(a.speed_changes, b.speed_changes);
  EXPECT_EQ(a.spec_picks, b.spec_picks);
  EXPECT_EQ(a.greedy_picks, b.greedy_picks);
  EXPECT_EQ(a.reclaimed_slack_ps, b.reclaimed_slack_ps);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.busy_ps, b.busy_ps);
  EXPECT_EQ(a.compute_ps, b.compute_ps);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.idle_ps, b.idle_ps);
}

void cross_validate(const Application& app, std::uint64_t seed,
                    bool expect_hits) {
  ExperimentConfig cfg;
  cfg.runs = 60;
  cfg.seed = seed;
  const SimTime w = canonical_worst_makespan(
      app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
      cfg.heuristic);
  ASSERT_GT(w.ps, 0);
  const SimTime deadline{w.ps * 2};

  const EvalResult ref =
      evaluate(app, cfg, deadline, DedupMode::kOff, 1, 1);
  EXPECT_FALSE(ref.dedup.enabled);

  for (int threads : {1, 2, 4}) {
    for (int batch : {1, 0}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " batch=" << batch);
      const EvalResult on =
          evaluate(app, cfg, deadline, DedupMode::kOn, threads, batch);
      EXPECT_EQ(on.json, ref.json);
      ASSERT_EQ(on.metrics.schemes.size(), ref.metrics.schemes.size());
      for (std::size_t s = 0; s < on.metrics.schemes.size(); ++s)
        expect_counters_eq(on.metrics.schemes[s], ref.metrics.schemes[s]);
      expect_counters_eq(on.metrics.npm, ref.metrics.npm);
      EXPECT_TRUE(on.dedup.enabled);
      EXPECT_EQ(on.dedup.hits + on.dedup.misses,
                static_cast<std::uint64_t>(cfg.runs));
      if (expect_hits) {
        EXPECT_GT(on.dedup.hits, 0u);
      }
    }
  }
}

TEST(DedupCrossValidation, DiscreteRandomAppsReplayBitIdentically) {
  // ACET = WCET: OR forks are the only randomness, so scenarios repeat
  // and the replay path carries most runs.
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    Rng gen(seed);
    apps::RandomAppConfig rcfg;
    Application app = apps::random_application(gen, rcfg, "disc");
    assign_alpha(app.graph, 1.0);
    cross_validate(app, /*seed=*/seed * 1000 + 1, /*expect_hits=*/true);
  }
}

TEST(DedupCrossValidation, ContinuousRandomAppsSurviveForcedDedup) {
  // Gaussian ACET draws: virtually every scenario is distinct, so forcing
  // dedup on exercises the all-miss bookkeeping (auto would decline).
  for (std::uint64_t seed : {5u, 17u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    Rng gen(seed);
    apps::RandomAppConfig rcfg;
    const Application app = apps::random_application(gen, rcfg, "cont");
    cross_validate(app, /*seed=*/seed * 1000 + 2, /*expect_hits=*/false);
  }
}

}  // namespace
}  // namespace paserta
