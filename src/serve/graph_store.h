// Content-addressed Application interning for the serve daemon
// (DESIGN.md §16).
//
// The OfflineCache keys canonical analyses by graph *address*, so making
// it cross-request requires that two requests carrying the same workload
// resolve to the same Application object. The store hashes each incoming
// graph with the order-insensitive content hash (graph/canonical_hash.h)
// and — mirroring sim/fingerprint's discipline that equal hashes must
// never alias distinct keys — resolves hash matches with a full
// comparison of the *ordered* form: name-free but insertion-order
// sensitive, because tie-breaks in list scheduling legally depend on
// construction order and the server promises responses bit-identical to
// the CLI running the caller's own construction. Reordered isomorphic
// graphs therefore share a content hash but intern as distinct entries.
//
// Single-threaded by design, like OfflineCache: the service confines the
// store to its dispatcher thread.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/program.h"

namespace paserta {

class GraphStore {
 public:
  struct Entry {
    std::uint32_t id = 0;            // dense, first-encounter order
    std::uint64_t content_hash = 0;  // graph_content_hash
    std::vector<std::uint64_t> ordered_form;
    Application app;  // address-stable for the store's lifetime
  };

  /// Interns `app` by content: returns the existing entry when an equal
  /// graph (ordered form) is already stored, otherwise moves `app` in.
  /// The returned reference is stable for the store's lifetime.
  const Entry& intern(Application&& app);

  std::size_t size() const { return count_; }
  /// Lifetime intern() statistics (hit = an equal graph was resident).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  // Hash buckets hold owning pointers so entries never move on rehash.
  std::unordered_map<std::uint64_t, std::vector<std::unique_ptr<Entry>>>
      by_hash_;
  std::size_t count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace paserta
