// Observability metrics: sharded counters, gauges and fixed-bucket
// histograms behind a name-keyed registry.
//
// Sharding. Every metric keeps kMaxShards cache-line-separated cells, one
// per worker-pool participant slot (slot 0 is the calling thread of a
// parallel loop, 1..kMaxThreads the background workers — harness/pool.h
// guarantees a slot is owned by exactly one thread for the whole loop).
// The write path is therefore single-writer per shard: a relaxed atomic
// store of (relaxed load + n) compiles to a plain increment — no
// read-modify-write instruction, no contention — while staying TSan-clean
// when another thread snapshots the metric mid-loop (live progress
// displays). Aggregation happens only at read time, by summing shards in
// slot order.
//
// Determinism. Metrics are write-only for the simulation: nothing feeds
// back into RNG streams, scheduling decisions or result accumulation, so
// enabling collection cannot change a single output bit (test_obs pins
// sweep results with observability on vs off). Counter cells are integers
// and histogram cells are integer bucket counts, so cross-shard sums are
// order-independent by construction.
//
// Cost. Disabled mode is a null-pointer check at each would-be increment
// site; BENCH_throughput.json records the end-to-end bound (< 2 %).
//
// Registries. MetricsRegistry::global() is the process-wide instance the
// harness defaults to; tests and tools construct scoped local registries
// so concurrent measurements cannot bleed into each other.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace paserta {

/// One shard per worker-pool participant: the caller of a parallel loop is
/// slot 0, background workers claim 1..WorkerPool::kMaxThreads (pool.cpp
/// static_asserts the bound so the two constants cannot drift apart).
constexpr int kMaxShards = 65;

namespace obs_detail {

/// Single-writer relaxed increment: the owning slot is the only writer, so
/// load + store (no lock prefix) is exact; concurrent readers may miss the
/// in-flight add but never see a torn value.
inline void shard_add(std::atomic<std::uint64_t>& cell, std::uint64_t n) {
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

inline void shard_add(std::atomic<double>& cell, double v) {
  cell.store(cell.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
}

}  // namespace obs_detail

/// Monotonic sharded counter.
class Counter {
 public:
  void add(int shard, std::uint64_t n = 1) {
    obs_detail::shard_add(shards_[static_cast<std::size_t>(shard)].v, n);
  }

  /// Sum over shards (exact once writers have joined; a live read may lag
  /// by in-flight increments).
  std::uint64_t value() const;
  std::uint64_t shard_value(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].v.load(
        std::memory_order_relaxed);
  }
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMaxShards> shards_{};
};

/// Additive sharded gauge (e.g. bytes held, entries buffered): each shard
/// tracks its own contribution via add(); value() is the cross-shard sum.
class Gauge {
 public:
  void add(int shard, double delta) {
    obs_detail::shard_add(shards_[static_cast<std::size_t>(shard)].v, delta);
  }
  void set(int shard, double v) {
    shards_[static_cast<std::size_t>(shard)].v.store(
        v, std::memory_order_relaxed);
  }
  double value() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<double> v{0.0};
  };
  std::array<Shard, kMaxShards> shards_{};
};

/// Fixed-bucket sharded histogram. Bucket i counts values v with
/// v <= upper_bounds[i] (and v > upper_bounds[i-1]); one implicit overflow
/// bucket catches everything above the last bound — cumulative
/// Prometheus-style "le" semantics, pinned by test_obs.
class Histogram {
 public:
  /// Bounds must be strictly ascending and at most kMaxBuckets - 1 long.
  explicit Histogram(std::span<const double> upper_bounds);

  static constexpr std::size_t kMaxBuckets = 24;  // including overflow

  void record(int shard, double value) {
    // Branchless-enough: buckets are few, the scan is a handful of
    // well-predicted compares on a cache-resident array.
    std::size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    Shard& s = shards_[static_cast<std::size_t>(shard)];
    obs_detail::shard_add(s.buckets[b], 1);
    obs_detail::shard_add(s.sum, value);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Number of buckets including the overflow bucket.
  std::size_t bucket_count() const { return bounds_.size() + 1; }
  /// Cross-shard count of bucket `b` (b == bounds().size() = overflow).
  std::uint64_t bucket_value(std::size_t b) const;
  std::uint64_t count() const;  // total samples
  double sum() const;           // sum of recorded values
  /// Quantile estimate from the bucket counts, Prometheus
  /// histogram_quantile-style: the rank q * count() is located in the
  /// cumulative bucket counts and interpolated linearly inside the matched
  /// bucket (the first bucket interpolates from 0). Ranks landing in the
  /// overflow bucket clamp to the last finite bound; an empty histogram
  /// returns NaN. `q` must be in [0, 1].
  double percentile(double q) const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kMaxBuckets> buckets{};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Shard, kMaxShards> shards_{};
};

/// Additive engine telemetry for one simulated run (sim/engine.cpp fills
/// it when SimOptions::counters is set): dispatch volume, DVS activity,
/// the slack-reclamation behaviour the paper only reports as final energy,
/// and the integer energy-attribution ledger (where every picosecond of
/// the run went, per voltage level). Plain integers so per-(point, slot,
/// scheme) cells can be summed in any order without changing the result.
///
/// The attribution ledger is the engine's own energy accounting: the
/// engine derives busy/overhead/idle joules from exactly these integers
/// (sim/engine.h attribution_energy), so folding an exported ledger back
/// through the power table reproduces the engine's energies bit-for-bit —
/// the invariant audit mode enforces per run.
struct SimCounters {
  std::uint64_t dispatches = 0;     // nodes dequeued (incl. dummy AND/OR)
  std::uint64_t tasks = 0;          // computation nodes executed
  std::uint64_t or_fires = 0;       // OR forks resolved
  std::uint64_t speed_changes = 0;  // voltage transitions charged
  /// Dynamic speed picks where the speculative floor overrode the greedy
  /// slack-reclamation frequency (SS1/SS2/AS), vs. picks where the greedy
  /// choice prevailed (always greedy for GSS).
  std::uint64_t spec_picks = 0;
  std::uint64_t greedy_picks = 0;
  /// Total extra execution time gained by running below f_max: the sum of
  /// (scaled duration - actual time at f_max) over dispatched tasks. This
  /// is the reclaimed slack actually spent, in picoseconds.
  std::uint64_t reclaimed_slack_ps = 0;

  // --- Energy-attribution ledger (empty until the first audited/counted
  // run; sized by the run's voltage-level table, recorded in `levels`).
  /// Voltage levels of the power table the ledger was recorded against
  /// (the stride of `transitions`); 0 = no ledger recorded yet.
  std::uint32_t levels = 0;
  /// Task execution time per level, picoseconds.
  std::vector<std::uint64_t> busy_ps;
  /// Speed-computation overhead time per level (the level the processor
  /// ran the computation at), picoseconds.
  std::vector<std::uint64_t> compute_ps;
  /// Voltage-transition counts per ordered level pair, row-major
  /// [from * levels + to]. Each transition costs the run's fixed
  /// speed-change time at the higher-power level of the pair.
  std::vector<std::uint64_t> transitions;
  /// Idle/sleep time summed over processors up to the deadline,
  /// picoseconds (clamped at 0 per processor when a run overruns).
  std::uint64_t idle_ps = 0;

  /// Elementwise sum; ledgers must come from the same power table (equal
  /// `levels`, enforced), or one side may be ledger-free.
  void add(const SimCounters& o);
};

class ProgressReporter;  // obs/progress.h
class Profiler;          // obs/prof.h

/// Telemetry sinks for WorkerPool::parallel_chunks / serial_chunks. Every
/// pointer may be null (that sink is skipped); a null struct pointer
/// disables instrumentation entirely, leaving the claim loop untouched.
struct PoolTelemetry {
  Counter* chunks = nullptr;          // completed chunks, sharded by slot
  Histogram* chunk_seconds = nullptr; // per-chunk wall latency
  Counter* busy_ns = nullptr;         // time inside bodies, per slot
  Counter* idle_ns = nullptr;         // claim/wait time outside bodies
  ProgressReporter* progress = nullptr;  // one tick per completed chunk
  /// Phase profiler (obs/prof.h): when set, the pool charges body time to
  /// ph_busy, counter-claim time to ph_claim and the rest of the claim
  /// loop to ph_idle via Profiler::add_ns — no extra clock reads beyond
  /// the one the claim split needs, and none at all when null.
  Profiler* prof = nullptr;
  int ph_claim = -1;
  int ph_busy = -1;
  int ph_idle = -1;
};

/// Read-time snapshot of a registry, suitable for rendering. Rows are
/// sorted by name; counter rows carry the per-shard breakdown (trailing
/// all-zero shards trimmed) so pool-balance analyses can see skew.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
    std::vector<std::uint64_t> shards;  // trimmed at the last non-zero
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
};

/// Name-keyed metric registry. Registration (the first counter()/gauge()/
/// histogram() call per name) takes a mutex; the returned reference is
/// stable for the registry's lifetime, so hot paths resolve their handles
/// once and then write lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-registering an existing histogram requires identical bounds.
  Histogram& histogram(const std::string& name,
                       std::span<const double> upper_bounds);

  MetricsSnapshot snapshot() const;
  /// Zeroes every metric, keeping registrations (and handles) alive.
  void reset();

  /// The process-wide registry the experiment harness defaults to.
  static MetricsRegistry& global();

 private:
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Renders a snapshot as a pretty-printed JSON object (counters / gauges /
/// histograms arrays), newline-terminated; parseable by harness/json.
std::string metrics_to_json(const MetricsSnapshot& snapshot);

/// Renders a snapshot in the Prometheus text exposition format (0.0.4):
/// `# TYPE` lines, counters/gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series ending in `le="+Inf"` plus `_sum`
/// and `_count`. Metric names are sanitized to [a-zA-Z0-9_:] and numeric
/// values use the same 12-significant-digit formatting as metrics_to_json,
/// so the two exports round-trip against each other (pinned by test_obs).
std::string metrics_to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace paserta
