// Figure 4: normalized energy vs load for ATR on dual-processor systems,
// alpha = 0.9 (measured), overhead = 5 us, on (a) Transmeta TM5400 and
// (b) Intel XScale. Thin wrapper over the figure registry
// (harness/figures.h).
#include "bench_util.h"
#include "harness/figures.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv);
  for (const char* id : {"fig4a", "fig4b"}) {
    const FigureDef f = paper_figure(id, runs);
    benchutil::emit("Fig." + f.id.substr(3),
                    f.caption + ", runs=" + std::to_string(runs),
                    run_figure(f), f.x_name);
  }
  return 0;
}
