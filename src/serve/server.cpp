#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <sstream>
#include <string>

#include "common/error.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace paserta {
namespace {

// Headers of an HTTP request must fit here; bodies are bounded separately
// by the service's request limit.
constexpr std::size_t kMaxHttpHead = 16u * 1024;

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing sensible to do
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << ' ' << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

/// Case-insensitive Content-Length extraction; -1 when absent/garbled.
long content_length_of(const std::string& head) {
  std::istringstream is(head);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (name != "content-length") continue;
    try {
      return std::stol(line.substr(colon + 1));
    } catch (...) {
      return -1;
    }
  }
  return -1;
}

}  // namespace

struct SimServer::Slot {
  std::thread thread;
  std::atomic<int> fd{-1};
  std::atomic<bool> done{true};
};

SimServer::SimServer(SimService& service, const ServerSettings& settings)
    : service_(service), settings_(settings) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PASERTA_REQUIRE(listen_fd_ >= 0,
                  "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(settings_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    PASERTA_REQUIRE(false, "cannot listen on 127.0.0.1:"
                               << settings_.port << ": "
                               << std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  slots_.reserve(static_cast<std::size_t>(settings_.max_connections));
  for (int i = 0; i < settings_.max_connections; ++i)
    slots_.push_back(std::make_unique<Slot>());
  acceptor_ = std::thread([this] { accept_main(); });
}

SimServer::~SimServer() { stop(); }

void SimServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // Stop accepting, then drain the service: every already-queued request
  // resolves and its connection thread writes the response before the
  // socket teardown below can interrupt anything.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  service_.shutdown();
  for (auto& slot : slots_) {
    const int fd = slot->fd.load();
    if (fd >= 0) ::shutdown(fd, SHUT_RD);  // unblock recv; writes still OK
  }
  for (auto& slot : slots_)
    if (slot->thread.joinable()) slot->thread.join();
}

void SimServer::accept_main() {
  while (!stopping_.load()) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    if (stopping_.load()) return;
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    Slot* free_slot = nullptr;
    for (auto& slot : slots_) {
      if (!slot->done.load()) continue;
      if (slot->thread.joinable()) slot->thread.join();
      free_slot = slot.get();
      break;
    }
    if (free_slot == nullptr) {
      // All slots busy: shed the connection rather than queue unbounded
      // socket state (the request queue has its own backpressure).
      service_.registry().counter("serve.conn_rejected").add(0, 1);
      write_all(fd, render_error("", "overloaded",
                                 "too many connections; retry later") + "\n");
      ::close(fd);
      continue;
    }
    service_.registry().counter("serve.connections").add(0, 1);
    free_slot->done.store(false);
    free_slot->fd.store(fd);
    free_slot->thread = std::thread(
        [this, fd, free_slot] { handle_connection(fd, *free_slot); });
  }
}

void SimServer::handle_connection(int fd, Slot& slot) {
  // Sniff the protocol from the first chunk: HTTP verbs vs. raw NDJSON.
  char buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  if (n > 0) {
    std::string first(buf, static_cast<std::size_t>(n));
    if (first.rfind("GET ", 0) == 0 || first.rfind("POST ", 0) == 0) {
      serve_http(fd, std::move(first));
    } else {
      serve_ndjson(fd, std::move(first));
    }
  }
  ::close(fd);
  slot.fd.store(-1);
  slot.done.store(true);
}

std::string SimServer::response_for(const std::string& line) {
  std::shared_future<std::string> f = service_.submit(line);
  if (settings_.request_timeout_ms > 0) {
    const auto status =
        f.wait_for(std::chrono::milliseconds(settings_.request_timeout_ms));
    if (status != std::future_status::ready) {
      // The dispatcher still finishes the job; only this wait gives up.
      service_.registry().counter("serve.timeouts").add(0, 1);
      return render_error("", "timeout",
                          "no response within " +
                              std::to_string(settings_.request_timeout_ms) +
                              " ms");
    }
  }
  return f.get();
}

void SimServer::respond_ndjson(int fd, const std::string& line) {
  SimService::Submission sub = service_.submit_line(line);
  const auto t0 = std::chrono::steady_clock::now();
  const long timeout_ms = settings_.request_timeout_ms;
  if (!sub.stream) {
    // The pre-streaming exchange, byte for byte: one response line.
    if (timeout_ms > 0 &&
        sub.response.wait_for(std::chrono::milliseconds(timeout_ms)) !=
            std::future_status::ready) {
      service_.registry().counter("serve.timeouts").add(0, 1);
      write_all(fd, render_error("", "timeout",
                                 "no response within " +
                                     std::to_string(timeout_ms) + " ms") +
                        "\n");
      return;
    }
    write_all(fd, sub.response.get() + "\n");
    return;
  }

  // Streamed request: a progress line at most every stream_interval_ms
  // while the response is pending, then the unchanged final response —
  // the overall request_timeout_ms bound still applies.
  const long interval_ms =
      std::max(1, settings_.stream_interval_ms);
  for (;;) {
    long wait_ms = interval_ms;
    if (timeout_ms > 0) {
      const long elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const long remaining_ms = timeout_ms - elapsed_ms;
      if (remaining_ms <= 0) {
        service_.registry().counter("serve.timeouts").add(0, 1);
        write_all(fd, render_error("", "timeout",
                                   "no response within " +
                                       std::to_string(timeout_ms) + " ms") +
                          "\n");
        return;
      }
      wait_ms = std::min(wait_ms, remaining_ms);
    }
    if (sub.response.wait_for(std::chrono::milliseconds(wait_ms)) ==
        std::future_status::ready) {
      break;
    }
    const SimService::LiveProgress lp = service_.live_progress();
    const double elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    write_all(fd, render_progress(sub.id_json, lp.done, lp.total, lp.phase,
                                  elapsed, lp.cycles, lp.instructions) +
                      "\n");
  }
  write_all(fd, sub.response.get() + "\n");
}

void SimServer::serve_ndjson(int fd, std::string pending) {
  const std::size_t line_cap = service_.limits().max_request_bytes + 1;
  std::string carry;
  for (;;) {
    // Process every complete line already buffered.
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = carry + pending.substr(start, nl - start);
      carry.clear();
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      respond_ndjson(fd, line);
    }
    carry += pending.substr(start);
    pending.clear();
    if (carry.size() > line_cap) {
      // Oversized line: reject without buffering the rest of it.
      write_all(fd, render_error("", "bad_request",
                                 "request line exceeds " +
                                     std::to_string(line_cap - 1) +
                                     " bytes") + "\n");
      return;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // EOF or shutdown(SHUT_RD) from stop()
    pending.assign(buf, static_cast<std::size_t>(n));
  }
}

void SimServer::serve_http(int fd, std::string head) {
  // Read to the end of the headers.
  std::size_t hdr_end;
  while ((hdr_end = head.find("\r\n\r\n")) == std::string::npos) {
    if (head.size() > kMaxHttpHead) {
      write_all(fd, http_response(431, "Request Header Fields Too Large",
                                  "text/plain", "headers too large\n"));
      return;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    head.append(buf, static_cast<std::size_t>(n));
  }
  std::string body = head.substr(hdr_end + 4);
  head.resize(hdr_end);

  const std::size_t sp1 = head.find(' ');
  const std::size_t sp2 = head.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    write_all(fd, http_response(400, "Bad Request", "text/plain",
                                "malformed request line\n"));
    return;
  }
  const std::string method = head.substr(0, sp1);
  const std::string path = head.substr(sp1 + 1, sp2 - sp1 - 1);

  if (method == "GET" && (path == "/metrics" || path == "/metrics/")) {
    write_all(fd, http_response(200, "OK", "text/plain; version=0.0.4",
                                service_.metrics_text()));
    return;
  }
  if (method == "GET" && (path == "/healthz" || path == "/healthz/")) {
    write_all(fd, http_response(200, "OK", "application/json",
                                service_.healthz_json() + "\n"));
    return;
  }
  if (method == "POST" && path == "/simulate") {
    const long want = content_length_of(head);
    if (want < 0 ||
        static_cast<std::size_t>(want) >
            service_.limits().max_request_bytes) {
      write_all(fd, http_response(413, "Payload Too Large", "text/plain",
                                  "missing or oversized Content-Length\n"));
      return;
    }
    while (body.size() < static_cast<std::size_t>(want)) {
      char buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return;
      body.append(buf, static_cast<std::size_t>(n));
    }
    // Strip a trailing newline so curl -d @file and NDJSON agree.
    while (!body.empty() && (body.back() == '\n' || body.back() == '\r'))
      body.pop_back();
    write_all(fd, http_response(200, "OK", "application/json",
                                response_for(body) + "\n"));
    return;
  }
  write_all(fd, http_response(404, "Not Found", "text/plain",
                              "try GET /metrics, GET /healthz or "
                              "POST /simulate\n"));
}

}  // namespace paserta
