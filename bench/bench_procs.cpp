// Processor-count study (paper §5 text: 4-processor results are "similar"
// to 2 and 6): ATR at 2/4/6 CPUs on both models, a coarse load sweep.
#include "apps/atr.h"
#include "bench_util.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 500);
  const Application atr = apps::build_atr();
  const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8, 1.0};

  for (const LevelTable& table :
       {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
    for (int cpus : {2, 4, 6}) {
      const auto cfg = benchutil::paper_config(table, cpus, runs);
      benchutil::emit(
          "Procs." + table.name() + "." + std::to_string(cpus),
          "Energy vs load, ATR, " + std::to_string(cpus) + " CPUs, " +
              table.name() + ", alpha=0.9, overhead=5us",
          sweep_load(atr, cfg, loads), "load");
    }
  }
  return 0;
}
