// The resident simulation service (DESIGN.md §16): protocol-independent
// core behind the socket server.
//
// Connection handlers (or tests, directly) submit() request lines and get
// a future for the full response line. A single dispatcher thread drains
// the bounded queue in batches, groups jobs whose semantic key is
// identical — same interned graph, platform, heuristic, schemes, runs,
// seed and deadline — runs each distinct group once through the existing
// harness (run_point on the WorkerPool / batched engine), and fulfills
// every job of a group from the one shared result. Grouping is pure
// coalescing: results are bit-identical whether a request ran alone or
// shared a simulation, because the key pins every output-relevant input.
//
// Cross-request caching happens at two levels, both confined to the
// dispatcher thread (OfflineCache and GraphStore are single-threaded by
// contract): the GraphStore interns Applications by content so repeated
// workloads resolve to one object, and the OfflineCache then memoizes
// the canonical offline analysis across requests keyed by that object's
// address. serve.* and offline.cache.* registry counters make both
// observable.
//
// Threading / metrics discipline: submit-side counters (serve.requests,
// serve.rejected, ...) are only written under the queue mutex; dispatch-
// side counters and the latency histogram are only written by the
// dispatcher thread. Either way each (metric, shard-0) cell has
// serialized writers, keeping the registry's single-writer-per-shard
// contract TSan-clean.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/offline.h"
#include "harness/experiment.h"
#include "obs/prof.h"
#include "obs/progress.h"
#include "serve/graph_store.h"
#include "serve/protocol.h"

namespace paserta {

class Tracer;

struct ServeSettings {
  /// Worker threads per dispatched simulation (ExperimentConfig::threads).
  int threads = 1;
  /// Batched-engine lanes (ExperimentConfig::batch; 0 = auto).
  int batch = 0;
  DedupMode dedup = DedupMode::kAuto;
  /// Pending requests beyond which submit() rejects with "overloaded"
  /// (the 429-style backpressure bound).
  int queue_limit = 256;
  ServeLimits limits;
  /// Metrics sink; null = a service-owned scoped registry.
  MetricsRegistry* registry = nullptr;
  /// Optional span tracer: per-request "serve.request" spans (span id =
  /// the request sequence number, in the run arg) plus batch/group spans,
  /// all on slot 0 (the dispatcher's track).
  Tracer* tracer = nullptr;
};

class SimService {
 public:
  explicit SimService(ServeSettings settings);
  ~SimService();  // shutdown()

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Thread-safe. Parses one request line and returns a future yielding
  /// the full response line. Parse errors, hello, overload and
  /// shutting-down responses resolve immediately; simulate requests
  /// resolve when the dispatcher has run them. Inline graph-text errors
  /// surface asynchronously (the graph is built on the dispatcher).
  std::shared_future<std::string> submit(const std::string& line);

  /// submit() plus the transport hints a streaming front-end needs: the
  /// request's parsed "stream" flag and its echoed id (for the
  /// {"event":"progress"} lines the server interleaves while waiting).
  struct Submission {
    std::shared_future<std::string> response;
    bool stream = false;
    std::string id_json;
  };
  Submission submit_line(const std::string& line);

  /// Live dispatcher state for streamed progress lines: cumulative pool
  /// chunks done/total over the service lifetime, the phase the
  /// dispatcher is in, and the profiler's cycle/instruction totals (0 on
  /// the fallback clock). Lock-free w.r.t. the dispatcher (atomics plus a
  /// profiler snapshot); callable from any thread.
  struct LiveProgress {
    std::uint64_t done = 0;
    std::uint64_t total = 0;
    const char* phase = "idle";
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
  };
  LiveProgress live_progress();

  /// The GET /healthz body: {"status":"ok","queue_depth":N,
  /// "uptime_s":...} built from atomics only — never touches the
  /// dispatcher lock, so a wedged dispatcher still answers liveness.
  std::string healthz_json();

  /// Drains every pending request (even while paused), stops the
  /// dispatcher and rejects later submits with "shutting_down".
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Test hooks: while paused the dispatcher leaves the queue alone, so
  /// tests can pile up concurrent requests and observe deterministic
  /// coalescing/backpressure; resume (or shutdown) releases the backlog.
  void pause_dispatch();
  void resume_dispatch();

  MetricsRegistry& registry();
  /// Prometheus exposition of the registry, preceded by a
  /// "# paserta <rev> (<build>)" provenance comment — the /metrics body.
  std::string metrics_text();

  /// Pending (not yet dispatched) requests; test/observability hook.
  std::size_t queue_depth();

  const ServeLimits& limits() const { return settings_.limits; }

  /// Quantile of the cumulative serve.request_seconds histogram (seconds;
  /// NaN while empty). Read-side; call while the dispatcher is quiet for
  /// an exact answer.
  double latency_quantile(double q) const { return latency_->percentile(q); }

  /// The service's phase profiler — counter tracks for the daemon's
  /// --trace-out flush. Snapshot/samples are safe from any thread.
  const Profiler& profiler() const { return prof_; }

 private:
  struct Job {
    SimRequest req;
    std::promise<std::string> promise;
    std::uint64_t seq = 0;                          // request span id
    std::chrono::steady_clock::time_point t0{};     // latency epoch
    std::int64_t ts_ns = 0;                         // tracer epoch
  };

  void dispatcher_main();
  void process_batch(std::vector<std::unique_ptr<Job>>& batch);
  void finish_job(Job& job, const std::string& response);

  ServeSettings settings_;
  std::unique_ptr<MetricsRegistry> owned_registry_;
  MetricsRegistry* registry_ = nullptr;
  Histogram* latency_ = nullptr;

  std::mutex m_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Job>> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  std::uint64_t next_seq_ = 0;

  // Lock-free observability mirrors (healthz / live progress): depth_
  // shadows queue_.size() (stored under m_, read without it), phase_ is
  // the dispatcher's current stage, progress_ counts pool chunks (its
  // callback is a no-op; the atomic done/total accessors are the point).
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::atomic<std::size_t> depth_{0};
  std::atomic<const char*> phase_{"idle"};
  ProgressReporter progress_{[](const ProgressSnapshot&) {}};

  // Phase profiler (DESIGN.md §17). serve.parse is charged by connection
  // threads but only inside submit_line's m_-held section (serialized
  // writers, wall-clock only); the other serve.* phases and everything
  // the harness charges run on the dispatcher / pool slots.
  Profiler prof_;
  int ph_parse_ = -1;
  int ph_intern_ = -1;
  int ph_group_ = -1;
  int ph_simulate_ = -1;
  int ph_respond_ = -1;

  // Dispatcher-confined state (no locking: single thread).
  GraphStore store_;
  OfflineCache cache_;
  std::uint64_t last_interned_ = 0;  // store_.misses() already exported

  std::thread dispatcher_;
};

}  // namespace paserta
