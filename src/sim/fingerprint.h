// Scenario fingerprint interning for the dedup memoization layer.
//
// A Monte-Carlo point draws `runs` scenarios from one compiled sampler;
// when the scenario space is discrete (OR-branch choices only) most draws
// repeat a scenario that has already been simulated. ScenarioSampler can
// emit a canonical *fingerprint* per draw — one 64-bit word per stochastic
// op, see sampler.h — and this table assigns each distinct fingerprint a
// dense id, so the harness can simulate each distinct scenario once and
// replay the cached per-run record for every duplicate (DESIGN.md §15).
//
// The table is a plain open-addressed hash set with linear probing over
// power-of-two capacities. Keys are stored contiguously id-major in one
// flat array, so a probe that lands on an occupied slot resolves the
// collision with a full-key memcmp — equal hashes never alias distinct
// scenarios, which is what the replay's bit-identity guarantee rests on.
// The hash function is injectable precisely so tests can force every key
// onto one probe chain and pin that property adversarially.
//
// Single-threaded by design: the harness keeps one table per (point, slot)
// shard plus a mutex-protected shared store, mirroring the staging design
// of DESIGN.md §13.
#pragma once

#include <cstdint>
#include <vector>

namespace paserta {

class FingerprintTable {
 public:
  using HashFn = std::uint64_t (*)(const std::uint64_t* key,
                                   std::size_t words);

  /// Sentinel returned by find() for unknown keys.
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  /// A table for keys of `key_words` 64-bit words (0 is legal: a fully
  /// deterministic workload has an empty fingerprint and exactly one
  /// distinct scenario). `hash` defaults to a splitmix64-style mix;
  /// injectable so collision tests can supply a degenerate constant hash.
  explicit FingerprintTable(std::size_t key_words, HashFn hash = nullptr);

  /// Returns the dense id of `key`, interning it first when unseen.
  /// `inserted` reports which case occurred. Ids are assigned 0, 1, 2, ...
  /// in first-encounter order, so callers can keep id-major side arrays.
  std::uint32_t intern(const std::uint64_t* key, bool& inserted);

  /// Lookup without insertion; kNotFound when the key is unknown.
  std::uint32_t find(const std::uint64_t* key) const;

  /// The interned key of `id` (key_words() words), valid until the next
  /// intern() — entries are never removed, but the key store may grow.
  const std::uint64_t* key(std::uint32_t id) const {
    return keys_.data() + static_cast<std::size_t>(id) * key_words_;
  }

  std::size_t size() const { return count_; }
  std::size_t key_words() const { return key_words_; }

  /// Heap footprint (slot array + key store), for dedup.bytes accounting.
  std::size_t bytes() const {
    return slots_.capacity() * sizeof(std::uint32_t) +
           keys_.capacity() * sizeof(std::uint64_t);
  }

 private:
  bool key_equals(std::uint32_t id, const std::uint64_t* key) const;
  void grow();

  std::size_t key_words_;
  HashFn hash_;
  std::vector<std::uint32_t> slots_;  // id + 1; 0 = empty
  std::vector<std::uint64_t> keys_;   // id-major, key_words_ each
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
};

}  // namespace paserta
