#include "obs/chrome_trace.h"

#include <ostream>
#include <set>
#include <sstream>

#include "harness/json.h"
#include "obs/trace.h"

namespace paserta {
namespace {

/// Microseconds with nanosecond resolution kept as a decimal fraction —
/// the trace-event spec's "ts"/"dur" unit.
void write_us(std::ostream& os, std::int64_t ns) {
  os << ns / 1000 << "." << (ns % 1000 < 100 ? "0" : "")
     << (ns % 1000 < 10 ? "0" : "") << ns % 1000;
}

void write_args(std::ostream& os, const TraceEvent& ev) {
  if (ev.point < 0 && ev.run < 0) return;
  os << ", \"args\": {";
  if (ev.point >= 0) os << "\"point\": " << ev.point;
  if (ev.run >= 0) os << (ev.point >= 0 ? ", " : "") << "\"run\": " << ev.run;
  os << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  const std::vector<TraceEvent> events = tracer.events();
  std::set<int> slots;
  for (const TraceEvent& ev : events) slots.insert(ev.slot);

  os << "{\"traceEvents\": [\n";
  bool first = true;
  // Thread-name metadata first: Perfetto labels each slot's track.
  for (int slot : slots) {
    os << (first ? "" : ",\n")
       << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << slot
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << (slot == 0 ? "slot 0 (caller)" : "slot " + std::to_string(slot))
       << "\"}}";
    first = false;
  }
  for (const TraceEvent& ev : events) {
    os << (first ? "" : ",\n") << "{\"name\": \"" << json_escape(ev.name)
       << "\", \"cat\": \"paserta\", \"ph\": \""
       << (ev.dur_ns < 0 ? "i" : "X") << "\", \"pid\": 1, \"tid\": "
       << ev.slot << ", \"ts\": ";
    write_us(os, ev.ts_ns);
    if (ev.dur_ns >= 0) {
      os << ", \"dur\": ";
      write_us(os, ev.dur_ns);
    } else {
      os << ", \"s\": \"t\"";  // instant scope: thread
    }
    write_args(os, ev);
    os << "}";
    first = false;
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

std::string chrome_trace_to_json(const Tracer& tracer) {
  std::ostringstream os;
  write_chrome_trace(os, tracer);
  return os.str();
}

}  // namespace paserta
