// Tests for the two-phase offline analysis: apply_deadline on a cached
// CanonicalAnalysis must reproduce analyze_offline bit-for-bit (on AND/OR
// graphs with nested forks), the OfflineCache must key on
// (graph, cpus, overhead_budget, heuristic), and the canonical-analysis
// counter must reflect the round-1 work actually performed.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/offline.h"
#include "harness/experiment.h"
#include "obs/metrics.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }
TaskSpec t(const char* n, double w, double a) {
  return TaskSpec{n, ms(w), ms(a)};
}

/// An application with a branch nested inside a branch alternative, AND
/// parallelism around both, and a loop (which expands into further nested
/// OR structure) — the shape that exercises every recursive walk of the
/// analyzer.
Application nested_fork_app() {
  Program inner_a;
  inner_a.task("ia", ms(3), ms(1));
  Program inner_b;
  inner_b.chain({t("ib1", 2, 1), t("ib2", 5, 2)});

  Program alt1;
  alt1.task("pre1", ms(2), ms(1));
  alt1.branch("inner", {{0.3, std::move(inner_a)}, {0.7, std::move(inner_b)}});
  Program alt2;
  alt2.parallel({t("p1", 4, 2), t("p2", 6, 3), t("p3", 2, 1)});

  Program body;
  body.task("lb", ms(3), ms(2));

  Program p;
  p.parallel({t("s1", 4, 2), t("s2", 3, 1)});
  p.branch("outer", {{0.4, std::move(alt1)}, {0.6, std::move(alt2)}});
  p.loop("lp", std::move(body), {0.5, 0.3, 0.2});
  p.task("tail", ms(2), ms(1));
  return build_application("nested", p);
}

CanonicalOptions copts(int cpus, SimTime budget = SimTime::zero()) {
  CanonicalOptions o;
  o.cpus = cpus;
  o.overhead_budget = budget;
  return o;
}

void expect_offline_identical(const Application& app, const OfflineResult& a,
                              const OfflineResult& b) {
  EXPECT_EQ(a.cpus(), b.cpus());
  EXPECT_EQ(a.deadline(), b.deadline());
  EXPECT_EQ(a.overhead_budget(), b.overhead_budget());
  EXPECT_EQ(a.worst_makespan(), b.worst_makespan());
  EXPECT_EQ(a.average_makespan(), b.average_makespan());
  EXPECT_EQ(a.feasible(), b.feasible());
  EXPECT_EQ(a.max_eo(), b.max_eo());
  for (NodeId id : app.graph.all_nodes()) {
    SCOPED_TRACE(testing::Message() << "node " << id.value);
    EXPECT_EQ(a.eo(id), b.eo(id));
    EXPECT_EQ(a.lst(id), b.lst(id));
    EXPECT_EQ(a.eet(id), b.eet(id));
    EXPECT_EQ(a.inflated_wcet(id), b.inflated_wcet(id));
    EXPECT_EQ(a.rem_w_after(id), b.rem_w_after(id));
    EXPECT_EQ(a.rem_a_after(id), b.rem_a_after(id));
    ASSERT_EQ(a.has_fork_profile(id), b.has_fork_profile(id));
    if (a.has_fork_profile(id)) {
      const OrForkProfile& pa = a.fork_profile(id);
      const OrForkProfile& pb = b.fork_profile(id);
      ASSERT_EQ(pa.rem_w_alt.size(), pb.rem_w_alt.size());
      ASSERT_EQ(pa.rem_a_alt.size(), pb.rem_a_alt.size());
      for (std::size_t i = 0; i < pa.rem_w_alt.size(); ++i) {
        EXPECT_EQ(pa.rem_w_alt[i], pb.rem_w_alt[i]);
        EXPECT_EQ(pa.rem_a_alt[i], pb.rem_a_alt[i]);
      }
    }
  }
}

TEST(OfflineCache, CachedEqualsFreshOnNestedForks) {
  const Application app = nested_fork_app();
  OfflineCache cache;
  for (int cpus : {1, 2, 3}) {
    const CanonicalAnalysis& canon =
        cache.get(app, copts(cpus, SimTime::from_us(50)));
    for (double deadline_ms : {40.0, 60.0, 123.4}) {
      SCOPED_TRACE(testing::Message()
                   << "cpus=" << cpus << " deadline=" << deadline_ms);
      OfflineOptions opt;
      opt.cpus = cpus;
      opt.deadline = ms(deadline_ms);
      opt.overhead_budget = SimTime::from_us(50);
      const OfflineResult fresh = analyze_offline(app, opt);
      const OfflineResult cached = apply_deadline(canon, ms(deadline_ms));
      expect_offline_identical(app, fresh, cached);
    }
  }
}

TEST(OfflineCache, HitsAndMissesFollowTheKey) {
  const Application app = nested_fork_app();
  OfflineCache cache;

  std::uint64_t before = canonical_analysis_count();
  (void)cache.get(app, copts(2));
  EXPECT_EQ(canonical_analysis_count() - before, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);

  // Same key: a hit, no new round-1 work.
  before = canonical_analysis_count();
  (void)cache.get(app, copts(2));
  EXPECT_EQ(canonical_analysis_count() - before, 0u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Different cpus / budget / heuristic: three distinct entries.
  (void)cache.get(app, copts(3));
  (void)cache.get(app, copts(2, SimTime::from_us(5)));
  CanonicalOptions stf = copts(2);
  stf.heuristic = ListHeuristic::ShortestTaskFirst;
  (void)cache.get(app, stf);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 4u);
}

// run_point with a shared cache exports its get() deltas as
// offline.cache.{hits,misses} registry counters (collect_metrics only):
// the first call misses (fresh round-1 analysis), the second hits.
TEST(OfflineCache, RunPointExportsCacheCounters) {
  const Application app = nested_fork_app();
  OfflineCache cache;
  ExperimentConfig cfg;
  cfg.runs = 4;
  cfg.collect_metrics = true;
  MetricsRegistry reg;
  cfg.registry = &reg;

  const SimTime w = canonical_worst_makespan(
      app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
      cfg.heuristic);
  const SimTime deadline{w.ps * 2};
  (void)run_point(app, cfg, deadline, 0.5, &cache);
  EXPECT_EQ(reg.counter("offline.cache.hits").value(), 0u);
  EXPECT_EQ(reg.counter("offline.cache.misses").value(), 1u);

  (void)run_point(app, cfg, deadline, 0.5, &cache);
  EXPECT_EQ(reg.counter("offline.cache.hits").value(), 1u);
  EXPECT_EQ(reg.counter("offline.cache.misses").value(), 1u);

  // Without a registry (collect_metrics off) the export is a no-op — the
  // global registry must stay untouched.
  const std::uint64_t g_hits =
      MetricsRegistry::global().counter("offline.cache.hits").value();
  ExperimentConfig plain = cfg;
  plain.collect_metrics = false;
  plain.registry = nullptr;
  (void)run_point(app, plain, deadline, 0.5, &cache);
  EXPECT_EQ(MetricsRegistry::global().counter("offline.cache.hits").value(),
            g_hits);
}

TEST(OfflineCache, CanonicalAccessorsMatchOfflineResult) {
  const Application app = nested_fork_app();
  const CanonicalAnalysis canon = analyze_canonical(app, copts(2));
  ASSERT_TRUE(canon.valid());
  EXPECT_EQ(canon.cpus(), 2);
  EXPECT_EQ(&canon.application(), &app);
  EXPECT_EQ(canon.heuristic(), ListHeuristic::LongestTaskFirst);

  const OfflineResult off = apply_deadline(canon, ms(100));
  EXPECT_EQ(off.worst_makespan(), canon.worst_makespan());
  EXPECT_EQ(off.average_makespan(), canon.average_makespan());
  EXPECT_EQ(canon.worst_makespan(),
            canonical_worst_makespan(app, 2, SimTime::zero()));
}

TEST(OfflineCache, ApplyDeadlineValidatesInput) {
  const Application app = nested_fork_app();
  const CanonicalAnalysis canon = analyze_canonical(app, copts(2));
  EXPECT_THROW(apply_deadline(canon, SimTime::zero()), Error);
  EXPECT_THROW(apply_deadline(CanonicalAnalysis{}, ms(10)), Error);
}

}  // namespace
}  // namespace paserta
