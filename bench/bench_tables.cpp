// Reproduces paper Tables 1 and 2: the Transmeta TM5400 and Intel XScale
// voltage/frequency operating points used by every experiment, plus the
// derived power figures of the energy model.
#include <iostream>

#include "common/table.h"
#include "power/power_model.h"

using namespace paserta;

namespace {

void print_table(const char* title, const LevelTable& lt) {
  std::cout << "# " << title << "\n";
  const PowerModel pm(lt);
  Table t({"level", "f_MHz", "V", "P_watts", "P/Pmax"});
  for (std::size_t i = 0; i < lt.size(); ++i) {
    const Level& l = lt.level(i);
    t.add_row({std::to_string(i),
               Table::num(static_cast<double>(l.freq) / 1e6, 1),
               Table::num(l.volts, 3), Table::num(pm.power(i), 4),
               Table::num(pm.power(i) / pm.max_power(), 4)});
  }
  t.write_csv(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  print_table("Table 1: Speed & Voltages of Transmeta TM5400",
              LevelTable::transmeta_tm5400());
  print_table("Table 2: Speed & Voltages of Intel XScale",
              LevelTable::intel_xscale());
  return 0;
}
