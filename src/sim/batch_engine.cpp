// Batched SoA engine (see batch_engine.h and DESIGN.md §14).
//
// Correctness contract: every per-lane step below is the scalar engine's
// step (sim/engine.cpp) operating on lane-major slab rows instead of
// SimWorkspace vectors. Integer arithmetic may be hoisted, amortized and
// restructured freely as long as every produced value is identical:
//
//  * the per-level compute-overhead table, the shared initial ready set
//    and the once-per-batch policy reset are pure functions of
//    batch-constant inputs;
//  * the sorted-key ready queue is a bitmap over execution order: EO
//    values are unique on any single run path (EO ranges only overlap
//    across mutually exclusive OR alternatives), so lowest-set-bit pop is
//    the identical order with O(1) insert instead of a sorted shift;
//  * the speed choice required_freq -> max(floor) -> quantize_up is
//    replaced by a multiply-compare walk up the level table from the
//    floor's level (freq * avail >= f_max * wcet <=> freq >= ceil), which
//    selects the identical level without a division;
//  * duration scaling ceil(actual * f_max / freq) uses a per-level 2^64
//    reciprocal with a final exact fixup, yielding the identical quotient
//    of scale_time for every input (overflow-guarded: out-of-range inputs
//    take the original scale_time path);
//  * the per-dispatch finish-clock update is dropped: dispatch only ever
//    runs at instants already folded into last_activity (t = 0 initially,
//    or a completion time maxed in by on_completion before dispatch runs),
//    so the final value is unchanged.
//
// The end-of-run floating-point fold is kept operation-for-operation
// identical. Any divergence is a bug that the cross-validation suite
// (tests/test_batch_engine.cpp) and the fig4a identity matrix
// (tests/test_thread_scaling.cpp) must catch.
#include "sim/batch_engine.h"

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.h"
#include "obs/prof.h"
#include "sim/engine_core.h"

namespace paserta {

void BatchWorkspace::ensure(std::size_t lanes_in, std::size_t nodes_in,
                            std::size_t cpus_in, std::size_t levels_in,
                            bool trace) {
  const std::size_t new_sn = aligned_stride<std::uint64_t>(nodes_in);
  const std::size_t new_sc = aligned_stride<std::uint64_t>(cpus_in);
  const std::size_t new_sl = aligned_stride<std::uint64_t>(levels_in);
  const std::size_t new_sll =
      aligned_stride<std::uint64_t>(levels_in * levels_in);
  const std::size_t new_sw =
      aligned_stride<std::uint64_t>((nodes_in + 63) / 64);
  const bool regeometry = new_sn != sn || new_sc != sc || new_sl != sl ||
                          new_sll != sll || new_sw != sw || lanes_in > lanes;
  if (!regeometry) {
    nodes = nodes_in;
    cpus = cpus_in;
    levels = levels_in;
    if (trace && traces.size() < lanes) traces.resize(lanes);
    return;
  }
  lanes = std::max(lanes, lanes_in);
  nodes = nodes_in;
  cpus = cpus_in;
  levels = levels_in;
  sn = new_sn;
  sc = new_sc;
  sl = new_sl;
  sll = new_sll;
  sw = new_sw;
  nup.resize(lanes * sn);
  ready_words.resize(lanes * sw);
  ready_node.resize(lanes * sn);
  ev_finish.resize(lanes * sc);
  ev_seq.resize(lanes * sc);
  ev_meta.resize(lanes * sc);
  cpu_level.resize(lanes * sc);
  cpu_sleep.resize(lanes * sc);
  cpu_busy.resize(lanes * sc);
  busy_ps.resize(lanes * sl);
  compute_ps.resize(lanes * sl);
  transitions.resize(lanes * sll);
  touched_levels.resize(lanes * sl);
  level_touched.resize(lanes * sl);
  touched_transitions.resize(lanes * sll);
  active.resize(lanes);
  if (trace) traces.resize(lanes);
  // Rows remapped under the new strides: stale ledger values from a
  // previous geometry must not leak through the touched-entry reset
  // discipline, which only clears what the previous batch in this
  // geometry touched. Resetting the lane scalars zeroes the touched
  // counts to match.
  lane.assign(lanes, LaneScalars{});
  std::fill(busy_ps.begin(), busy_ps.end(), 0);
  std::fill(compute_ps.begin(), compute_ps.end(), 0);
  std::fill(transitions.begin(), transitions.end(), 0);
  std::fill(level_touched.begin(), level_touched.end(), 0);
}

namespace {

enum class PolicyClass { Static, Gss, StaticSpec, Adaptive };

inline std::uint64_t mulhi64(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) >> 64);
}

/// Batch-constant inputs of one simulate_batch call: shared read-only
/// tables plus the devirtualized policy parameters.
struct BatchCtx {
  std::span<const Node> nodes;
  std::span<const std::uint32_t> eo;
  std::span<const SimTime> eet;
  std::span<const std::uint32_t> nup_init;
  std::span<const std::uint8_t> flags;
  std::span<const SimTime> wcet;
  std::span<const std::uint32_t> succ_off;
  std::span<const std::uint32_t> succ_flat;
  std::span<const Level> levels;
  std::span<const Energy> power;
  Freq f_max = 0;
  const LevelTable* table = nullptr;
  SimTime deadline{};
  SimTime switch_time{};
  std::uint32_t ncpus = 0;
  std::uint32_t top_lvl = 0;   // levels.size() - 1
  std::uint32_t nwords = 0;    // ready-bitmap words in use
  // Devirtualized policy parameters (valid per PolicyClass).
  std::size_t initial_level = 0;
  std::uint32_t spec_low_lvl = 0;
  std::uint32_t spec_high_lvl = 0;
  std::int64_t spec_theta_ps = 0;
  std::uint32_t as_floor0_lvl = 0;
  PolicyOptions::SpecRounding rounding = PolicyOptions::SpecRounding::Up;
  const ScenarioBatch* scen = nullptr;
  const PowerModel* pm = nullptr;
  const BatchSimOptions* opt = nullptr;
  SimResult* results = nullptr;
};

template <PolicyClass PC, bool kCounters, bool kTrace>
class Kernel {
 public:
  static constexpr bool kDynamic = PC != PolicyClass::Static;

  Kernel(const BatchCtx& ctx, BatchWorkspace& ws) : c_(ctx), ws_(ws) {}

  void run(std::size_t nlanes);

 private:
  using LaneScalars = BatchWorkspace::LaneScalars;

  const BatchCtx& c_;
  BatchWorkspace& ws_;

  /// All hot pointers of one lane — slab rows, the lane's scenario rows
  /// and the shared derived tables — materialized once per lane turn so
  /// the event loop runs on register-held pointers instead of re-deriving
  /// base + lane * stride on every access.
  struct LaneView {
    std::uint32_t* nup;
    std::uint64_t* ready_words;
    std::uint32_t* ready_node;
    std::int64_t* ev_finish;
    std::uint64_t* ev_seq;
    std::uint64_t* ev_meta;
    std::uint32_t* cpu_level;
    std::uint8_t* cpu_sleep;
    std::int64_t* cpu_busy;
    std::uint64_t* busy_ps;
    std::uint64_t* compute_ps;
    std::uint64_t* transitions;
    std::uint32_t* touched_levels;
    std::uint8_t* level_touched;
    std::uint32_t* touched_transitions;
    const SimTime* actual;  // this lane's scenario rows
    const int* choice;
    const SimTime* dt_compute;
    const BatchWorkspace::LevelDiv* level_div;
    const std::uint64_t* fwork;
    std::vector<TaskRecord>* trace;
    SimCounters* cnt;
  };

  LaneView view(std::size_t l) {
    LaneView v;
    v.nup = ws_.nup.data() + l * ws_.sn;
    v.ready_words = ws_.ready_words.data() + l * ws_.sw;
    v.ready_node = ws_.ready_node.data() + l * ws_.sn;
    v.ev_finish = ws_.ev_finish.data() + l * ws_.sc;
    v.ev_seq = ws_.ev_seq.data() + l * ws_.sc;
    v.ev_meta = ws_.ev_meta.data() + l * ws_.sc;
    v.cpu_level = ws_.cpu_level.data() + l * ws_.sc;
    v.cpu_sleep = ws_.cpu_sleep.data() + l * ws_.sc;
    v.cpu_busy = ws_.cpu_busy.data() + l * ws_.sc;
    v.busy_ps = ws_.busy_ps.data() + l * ws_.sl;
    v.compute_ps = ws_.compute_ps.data() + l * ws_.sl;
    v.transitions = ws_.transitions.data() + l * ws_.sll;
    v.touched_levels = ws_.touched_levels.data() + l * ws_.sl;
    v.level_touched = ws_.level_touched.data() + l * ws_.sl;
    v.touched_transitions = ws_.touched_transitions.data() + l * ws_.sll;
    v.actual = c_.scen->lane_actual(l);
    v.choice = c_.scen->lane_choice(l);
    v.dt_compute = ws_.dt_compute.data();
    v.level_div = ws_.level_div.data();
    v.fwork = ws_.fwork.data();
    v.trace = kTrace ? &ws_.traces[l] : nullptr;
    v.cnt = kCounters ? (c_.opt->lane_cells != nullptr
                             ? c_.opt->lane_cells + l
                             : c_.opt->shared_cell)
                      : nullptr;
    return v;
  }

  /// The policy's floor, as a level index (every floor frequency is a
  /// table frequency, so the index carries the same information).
  std::uint32_t floor_lvl(const LaneScalars& s, SimTime now) const {
    if constexpr (PC == PolicyClass::StaticSpec) {
      (void)s;
      return now.ps < c_.spec_theta_ps ? c_.spec_low_lvl : c_.spec_high_lvl;
    } else if constexpr (PC == PolicyClass::Adaptive) {
      (void)now;
      return s.as_floor_lvl;
    } else {
      (void)s;
      (void)now;
      return 0;
    }
  }

  /// AdaptiveSpecPolicy::on_or_fired, inlined over the per-batch
  /// remaining-work tables: the identical required_freq + quantize
  /// arithmetic, storing the level index instead of its frequency.
  void on_or_fired(LaneScalars& s, std::uint32_t node, int chosen_alt,
                   SimTime now) {
    if constexpr (PC == PolicyClass::Adaptive) {
      const SimTime horizon = c_.deadline - now;
      const SimTime* alt = ws_.as_alt[node];
      const SimTime rem = (chosen_alt >= 0 && alt != nullptr)
                              ? alt[static_cast<std::size_t>(chosen_alt)]
                              : ws_.as_rem_after[node];
      const Freq desired = required_freq(c_.f_max, rem, horizon);
      const std::size_t idx =
          c_.rounding == PolicyOptions::SpecRounding::Up
              ? c_.table->quantize_up(desired)
              : c_.table->quantize_down(desired);
      // Normalize to the first level of this frequency — the index
      // quantize_up(max(gss, floor)) would land on (identity unless the
      // table carries duplicate frequencies).
      s.as_floor_lvl = static_cast<std::uint32_t>(
          c_.table->quantize_up(c_.levels[idx].freq));
    } else {
      (void)s;
      (void)node;
      (void)chosen_alt;
      (void)now;
    }
  }

  void touch_level(LaneView& v, LaneScalars& s, std::size_t lvl) {
    if (!v.level_touched[lvl]) {
      v.level_touched[lvl] = 1;
      v.touched_levels[s.touched_levels_n++] =
          static_cast<std::uint32_t>(lvl);
    }
  }

  static void ready_set(LaneView& v, LaneScalars& s, std::uint32_t eo,
                        std::uint32_t idv) {
    v.ready_words[eo >> 6] |= std::uint64_t{1} << (eo & 63);
    v.ready_node[eo] = idv;
    ++s.ready_n;
  }

  /// Lowest ready EO; requires ready_n > 0.
  std::uint32_t ready_head(const LaneView& v) const {
    for (std::uint32_t w = 0;; ++w) {
      PASERTA_ASSERT(w < c_.nwords, "ready count out of sync with bitmap");
      const std::uint64_t bits = v.ready_words[w];
      if (bits != 0)
        return (w << 6) +
               static_cast<std::uint32_t>(__builtin_ctzll(bits));
    }
  }

  bool head_dispatchable(const LaneView& v, const LaneScalars& s) const {
    if (s.ready_n == 0) return false;
    const std::uint32_t eo = ready_head(v);
    if (eo == s.neo) return true;
    return eo > s.neo &&
           (c_.flags[v.ready_node[eo]] & kNodeFlagOrNode) != 0;
  }

  void release_successors(LaneView& v, LaneScalars& s, std::uint32_t idv) {
    const std::uint32_t begin = c_.succ_off[idv];
    const std::uint32_t end = c_.succ_off[idv + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      const std::uint32_t sv = c_.succ_flat[k];
      PASERTA_ASSERT(v.nup[sv] > 0,
                     "NUP underflow at node '" << c_.nodes[sv].name << "'");
      if (v.nup[sv] == c_.nup_init[sv]) ++s.activated;
      if (--v.nup[sv] == 0) {
        ++s.completed;
        ready_set(v, s, c_.eo[sv], sv);
      }
    }
  }

  void wake_one(LaneView& v, LaneScalars& s, SimTime t) {
    if (!head_dispatchable(v, s)) return;
    for (std::uint32_t cpu = 0; cpu < c_.ncpus; ++cpu) {
      if (v.cpu_sleep[cpu]) {
        v.cpu_sleep[cpu] = 0;
        dispatch(v, s, cpu, t);
        return;
      }
    }
  }

  void dispatch(LaneView& v, LaneScalars& s, std::uint32_t cpu_id,
                SimTime t);
  void on_completion(LaneView& v, LaneScalars& s, std::uint32_t cpu_id,
                     std::uint32_t node, SimTime t) {
    s.last_activity = std::max(s.last_activity, t.ps);
    release_successors(v, s, node);
    dispatch(v, s, cpu_id, t);
  }

  /// Extracts and processes the lane's next completion. Returns false when
  /// the lane has no outstanding completions left afterwards.
  bool step(LaneView& v, LaneScalars& s) {
    const std::uint32_t n = s.ev_n;
    const std::uint32_t mi = engine_core::completion_min(v.ev_finish,
                                                         v.ev_seq, n);
    const SimTime finish{v.ev_finish[mi]};
    const std::uint64_t m = v.ev_meta[mi];
    v.ev_finish[mi] = v.ev_finish[n - 1];
    v.ev_seq[mi] = v.ev_seq[n - 1];
    v.ev_meta[mi] = v.ev_meta[n - 1];
    s.ev_n = n - 1;
    on_completion(v, s, engine_core::completion_cpu(m),
                  engine_core::completion_node(m), finish);
    return s.ev_n != 0;
  }

  void finalize(LaneView& v, std::size_t l);
};

template <PolicyClass PC, bool kCounters, bool kTrace>
void Kernel<PC, kCounters, kTrace>::dispatch(LaneView& v, LaneScalars& s,
                                             std::uint32_t cpu_id,
                                             SimTime t) {
  for (;;) {
    if (s.ready_n == 0) {
      v.cpu_sleep[cpu_id] = 1;  // Figure 2 step 3: wait()
      return;
    }
    const std::uint32_t eo = ready_head(v);
    const std::uint32_t idv = v.ready_node[eo];
    const std::uint8_t flags = c_.flags[idv];
    if (eo != s.neo &&
        !(eo > s.neo && (flags & kNodeFlagOrNode) != 0)) {
      v.cpu_sleep[cpu_id] = 1;  // head not dispatchable yet: wait()
      return;
    }
    v.ready_words[eo >> 6] &= ~(std::uint64_t{1} << (eo & 63));
    --s.ready_n;
    PASERTA_ASSERT(eo >= s.neo, "execution order went backwards");
    s.neo = eo + 1;  // Figure 2 steps 4 & 7
    ++s.dispatched;
    if constexpr (kCounters) ++v.cnt->dispatches;
    // (No finish-clock update here: t is already folded into
    // last_activity — see the header comment.)

    if (flags & kNodeFlagDummy) {
      int chosen_alt = -1;
      if (flags & kNodeFlagOrFork) {
        const int chosen = v.choice[idv];
        PASERTA_ASSERT(
            chosen >= 0 && c_.succ_off[idv] + static_cast<std::uint32_t>(
                               chosen) < c_.succ_off[idv + 1],
            "scenario lacks a choice for fork '" << c_.nodes[idv].name
                                                 << "'");
        chosen_alt = chosen;
        if constexpr (kCounters) ++v.cnt->or_fires;
        const std::uint32_t child =
            c_.succ_flat[c_.succ_off[idv] +
                         static_cast<std::uint32_t>(chosen)];
        PASERTA_ASSERT(v.nup[child] > 0,
                       "OR fork '" << c_.nodes[idv].name
                                   << "' re-readied its alternative");
        if (v.nup[child] == c_.nup_init[child]) ++s.activated;
        ++s.completed;
        v.nup[child] = 0;
        ready_set(v, s, c_.eo[child], child);
        if constexpr (kDynamic) on_or_fired(s, idv, chosen, t);
      } else {
        release_successors(v, s, idv);
        if constexpr (kDynamic) {
          if (flags & kNodeFlagOrNode) on_or_fired(s, idv, -1, t);
        }
      }
      if constexpr (kTrace) {
        TaskRecord rec;
        rec.node = NodeId{idv};
        rec.cpu = static_cast<int>(cpu_id);
        rec.eo = eo;
        rec.dispatch_time = rec.exec_start = rec.finish = t;
        rec.level = rec.level_before = v.cpu_level[cpu_id];
        rec.chosen_alt = chosen_alt;
        v.trace->push_back(rec);
      }
      continue;  // same processor keeps dispatching at the same instant
    }

    // ---- Computation node: pick a speed and execute (Figure 2 step 5). --
    SimTime start = t;
    const std::size_t lvl_before = v.cpu_level[cpu_id];
    std::size_t lvl = lvl_before;
    bool switched = false;

    if constexpr (kDynamic) {
      const SimTime dt_compute = v.dt_compute[lvl];
      touch_level(v, s, lvl);
      v.compute_ps[lvl] += static_cast<std::uint64_t>(dt_compute.ps);
      v.cpu_busy[cpu_id] += dt_compute.ps;
      start += dt_compute;

      const SimTime avail = c_.eet[idv] - start - c_.switch_time;
      const std::uint32_t flvl = floor_lvl(s, start);
      std::size_t new_lvl;
      bool spec = false;
      if (avail <= SimTime::zero()) {
        // No slack: required_freq is f_max, and no floor exceeds f_max, so
        // quantize_up(max(f_max, floor)) is the top level, a greedy pick.
        new_lvl = c_.top_lvl;
      } else if (static_cast<std::uint64_t>(avail.ps) <= ws_.avail_limit &&
                 ws_.fwork_fits) {
        // Division-free speed choice. With a = avail, x = f_max * wcet:
        //   freq >= ceil(x / a)  <=>  freq * a >= x,
        // so walking up from the floor's level to the first level whose
        // freq * a >= x lands exactly on quantize_up(max(gss, floor)) —
        // the walk never stops below the floor, stops at the first level
        // at least as fast as the greedy requirement, and tops out when
        // even f_max is too slow (required_freq's clamp).
        const std::uint64_t a = static_cast<std::uint64_t>(avail.ps);
        const std::uint64_t x = v.fwork[idv];
        std::uint32_t walk = flvl;
        while (walk < c_.top_lvl && c_.levels[walk].freq * a < x) ++walk;
        new_lvl = walk;
        if constexpr (kCounters && PC != PolicyClass::Gss) {
          // floor > gss  <=>  ceil(x / a) < floor_freq  <=>
          // x <= a * (floor_freq - 1); the f_max clamp needs no special
          // case since floor_freq - 1 <= f_max - 1.
          spec = x <= a * (c_.levels[flvl].freq - 1);
        }
      } else {
        // Out-of-range inputs: the original arithmetic, bit-identical.
        const Freq gss = required_freq(c_.f_max, c_.wcet[idv], avail);
        const Freq floor = c_.levels[flvl].freq;
        const Freq target = std::max(gss, floor);
        new_lvl = c_.table->quantize_up(target);
        spec = floor > gss;
      }
      if constexpr (kCounters) {
        if (PC != PolicyClass::Gss && spec) ++v.cnt->spec_picks;
        else ++v.cnt->greedy_picks;
      }

      if (new_lvl != lvl) {
        const std::size_t idx = lvl * c_.power.size() + new_lvl;
        if (v.transitions[idx]++ == 0)
          v.touched_transitions[s.touched_trans_n++] =
              static_cast<std::uint32_t>(idx);
        v.cpu_busy[cpu_id] += c_.switch_time.ps;
        start += c_.switch_time;
        ++s.speed_changes;
        if constexpr (kCounters) ++v.cnt->speed_changes;
        switched = true;
        lvl = new_lvl;
        v.cpu_level[cpu_id] = static_cast<std::uint32_t>(lvl);
      }
    }

    const SimTime actual = v.actual[idv];
    PASERTA_ASSERT(actual > SimTime::zero() && actual <= c_.wcet[idv],
                   "scenario actual time out of (0, WCET] for '"
                       << c_.nodes[idv].name << "'");
    const Freq freq = c_.levels[lvl].freq;
    SimTime duration;
    if (freq == c_.f_max) {
      duration = actual;
    } else if (static_cast<std::uint64_t>(actual.ps) <= ws_.actual_limit) {
      // ceil(actual * f_max / freq) by reciprocal: q0 = floor(n * m / 2^64)
      // with m = floor(2^64 / freq) undershoots floor(n / freq) by at most
      // 2, and the remainder loop lands on the exact quotient — the same
      // value scale_time's division produces, for every in-range input.
      const BatchWorkspace::LevelDiv& d = v.level_div[lvl];
      const std::uint64_t num =
          static_cast<std::uint64_t>(actual.ps) * c_.f_max + d.den1;
      std::uint64_t q = mulhi64(num, d.magic);
      std::uint64_t r = num - q * d.freq;
      while (r >= d.freq) {
        r -= d.freq;
        ++q;
      }
      duration = SimTime{static_cast<std::int64_t>(q)};
    } else {
      duration = scale_time(actual, c_.f_max, freq);
    }
    const SimTime finish = start + duration;
    touch_level(v, s, lvl);
    v.busy_ps[lvl] += static_cast<std::uint64_t>(duration.ps);
    v.cpu_busy[cpu_id] += duration.ps;
    if constexpr (kCounters) {
      ++v.cnt->tasks;
      v.cnt->reclaimed_slack_ps +=
          static_cast<std::uint64_t>((duration - actual).ps);
    }

    if constexpr (kTrace) {
      TaskRecord rec;
      rec.node = NodeId{idv};
      rec.cpu = static_cast<int>(cpu_id);
      rec.eo = eo;
      rec.dispatch_time = t;
      rec.exec_start = start;
      rec.finish = finish;
      rec.level = lvl;
      rec.level_before = lvl_before;
      rec.switched = switched;
      v.trace->push_back(rec);
    }
    {
      const std::uint32_t k = s.ev_n++;
      v.ev_finish[k] = finish.ps;
      v.ev_seq[k] = s.seq++;
      v.ev_meta[k] = engine_core::completion_meta(cpu_id, idv);
    }

    // Figure 2 step 5: if another processor sleeps and the (new) head is
    // dispatchable, signal it before executing.
    wake_one(v, s, t);
    return;
  }
}

template <PolicyClass PC, bool kCounters, bool kTrace>
void Kernel<PC, kCounters, kTrace>::finalize(LaneView& v, std::size_t l) {
  LaneScalars& s = ws_.lane[l];
  PASERTA_ASSERT(s.ready_n == 0, "simulation ended with ready work");
  PASERTA_ASSERT(s.activated == s.completed,
                 "simulation ended with "
                     << s.activated - s.completed
                     << " partially released nodes (deadlock?)");

  SimResult r;
  r.finish_time = SimTime{s.last_activity};
  r.deadline_met = r.finish_time <= c_.deadline;
  r.speed_changes = s.speed_changes;
  r.dispatched = s.dispatched;

  std::uint64_t idle_ps = 0;
  for (std::uint32_t cpu = 0; cpu < c_.ncpus; ++cpu) {
    const std::int64_t idle = c_.deadline.ps - v.cpu_busy[cpu];
    if (idle > 0) idle_ps += static_cast<std::uint64_t>(idle);
  }

  std::uint32_t* tl = v.touched_levels;
  std::uint32_t* tt = v.touched_transitions;
  const std::uint32_t ntl = s.touched_levels_n;
  const std::uint32_t ntt = s.touched_trans_n;
  if (ntl > 1) std::sort(tl, tl + ntl);
  if (ntt > 1) std::sort(tt, tt + ntt);
  {
    // The canonical ledger fold (see sim/engine.cpp): busy and compute
    // terms per touched level ascending into two accumulators, non-zero
    // transition pairs ascending, then idle — bitwise the scalar engine's
    // end-of-run energies.
    const std::span<const Energy> power = c_.power;
    const double switch_sec = c_.switch_time.sec();
    double busy = 0.0;
    double overhead = 0.0;
    for (std::uint32_t i = 0; i < ntl; ++i) {
      const std::uint32_t lv = tl[i];
      if (v.busy_ps[lv] != 0)
        busy += power[lv] *
                SimTime{static_cast<std::int64_t>(v.busy_ps[lv])}.sec();
      if (v.compute_ps[lv] != 0)
        overhead +=
            power[lv] *
            SimTime{static_cast<std::int64_t>(v.compute_ps[lv])}.sec();
    }
    for (std::uint32_t i = 0; i < ntt; ++i) {
      const std::uint32_t idx = tt[i];
      const std::size_t from = idx / power.size();
      const std::size_t to = idx % power.size();
      overhead += static_cast<double>(v.transitions[idx]) *
                  std::max(power[from], power[to]) * switch_sec;
    }
    r.busy_energy = busy;
    r.overhead_energy = overhead;
    r.idle_energy =
        idle_ps != 0
            ? c_.pm->idle_energy(SimTime{static_cast<std::int64_t>(idle_ps)})
            : 0.0;
  }

  if (c_.opt->audit) {
    // Integer time conservation, exactly as the scalar engine checks it.
    std::uint64_t ledger_ps = 0;
    for (std::size_t lv = 0; lv < c_.power.size(); ++lv)
      ledger_ps += v.busy_ps[lv] + v.compute_ps[lv];
    std::uint64_t switches = 0;
    const std::size_t nsq = c_.power.size() * c_.power.size();
    for (std::size_t idx = 0; idx < nsq; ++idx)
      switches += v.transitions[idx];
    ledger_ps +=
        switches * static_cast<std::uint64_t>(c_.switch_time.ps);
    std::uint64_t cpu_busy_ps = 0;
    for (std::uint32_t cpu = 0; cpu < c_.ncpus; ++cpu)
      cpu_busy_ps += static_cast<std::uint64_t>(v.cpu_busy[cpu]);
    PASERTA_ASSERT(ledger_ps == cpu_busy_ps,
                   "attribution ledger accounts for "
                       << ledger_ps << " ps of busy time but processors "
                       << "recorded " << cpu_busy_ps << " ps");
  }

  if constexpr (kCounters) {
    SimCounters* const cnt = v.cnt;
    const std::size_t nlv = c_.power.size();
    if (cnt->levels == 0) {
      cnt->levels = static_cast<std::uint32_t>(nlv);
      cnt->busy_ps.assign(v.busy_ps, v.busy_ps + nlv);
      cnt->compute_ps.assign(v.compute_ps, v.compute_ps + nlv);
      cnt->transitions.assign(v.transitions, v.transitions + nlv * nlv);
    } else {
      PASERTA_ASSERT(cnt->levels == nlv,
                     "SimCounters cell reused across power tables");
      for (std::uint32_t i = 0; i < ntl; ++i) {
        const std::uint32_t lv = tl[i];
        cnt->busy_ps[lv] += v.busy_ps[lv];
        cnt->compute_ps[lv] += v.compute_ps[lv];
      }
      for (std::uint32_t i = 0; i < ntt; ++i)
        cnt->transitions[tt[i]] += v.transitions[tt[i]];
    }
    cnt->idle_ps += idle_ps;
  }

  if constexpr (kTrace) {
    r.trace = std::move(*v.trace);
    v.trace->clear();
  }
  c_.results[l] = std::move(r);
}

template <PolicyClass PC, bool kCounters, bool kTrace>
void Kernel<PC, kCounters, kTrace>::run(std::size_t nlanes) {
  // Event loop over the compacted active-lane list. Each lane turn drains
  // up to kTurnBudget completion events with the lane's row pointers held
  // in registers; lanes whose event queue empties (divergence: fewer
  // computation nodes on the taken path, earlier finish) are finalized and
  // swap-removed. Lanes are mutually independent, so neither the budget
  // nor the compaction order can affect any result. A budget of 1 is the
  // classic event-granular lockstep — measured 25-40% slower here because
  // every turn reloads the lane's working set (nup/ready/ledger rows) from
  // L2 after its neighbours evicted it; a budget past the largest per-run
  // event count makes turns lane-major, which keeps each lane's rows
  // L1-hot from first dispatch to finalize while the shared tables stay
  // hot across lanes. (The other extreme — stepping two independent lanes
  // alternately to overlap their serial completion->dispatch dependency
  // chains — also measured 10-30% slower: the doubled live state spills
  // and defeats step() inlining.)
  constexpr std::uint32_t kTurnBudget = 4096;
  std::uint32_t nactive = 0;
  for (std::size_t l = 0; l < nlanes; ++l) {
    LaneView v = view(l);
    LaneScalars& s = ws_.lane[l];
    // Initial dispatch round: every processor starts at t = 0. dispatch()
    // may have woken a CPU transitively already; the flag check keeps each
    // CPU's first dispatch single.
    for (std::uint32_t cpu = 0; cpu < c_.ncpus; ++cpu) {
      if (!v.cpu_sleep[cpu]) dispatch(v, s, cpu, SimTime::zero());
    }
    if (s.ev_n != 0)
      ws_.active[nactive++] = static_cast<std::uint32_t>(l);
    else
      finalize(v, l);
  }
  while (nactive != 0) {
    for (std::uint32_t i = 0; i < nactive;) {
      const std::uint32_t l = ws_.active[i];
      LaneView v = view(l);
      LaneScalars& s = ws_.lane[l];
      bool alive = true;
      for (std::uint32_t b = 0; alive && b < kTurnBudget; ++b)
        alive = step(v, s);
      if (alive) {
        ++i;
      } else {
        finalize(v, l);
        ws_.active[i] = ws_.active[--nactive];
      }
    }
  }
}

template <PolicyClass PC, bool kC, bool kT>
void run_kernel(const BatchCtx& ctx, BatchWorkspace& ws, std::size_t lanes) {
  Kernel<PC, kC, kT>(ctx, ws).run(lanes);
}

template <PolicyClass PC>
void run_class(const BatchCtx& ctx, BatchWorkspace& ws, std::size_t lanes,
               bool counters, bool trace) {
  if (counters) {
    if (trace) run_kernel<PC, true, true>(ctx, ws, lanes);
    else run_kernel<PC, true, false>(ctx, ws, lanes);
  } else {
    if (trace) run_kernel<PC, false, true>(ctx, ws, lanes);
    else run_kernel<PC, false, false>(ctx, ws, lanes);
  }
}

/// The level index whose frequency AdaptiveSpecPolicy::reset /
/// speculate_level_freq picks (the policy stores the frequency; the kernel
/// keeps the index, normalized to the first level of that frequency).
std::uint32_t speculate_level_idx(const PowerModel& pm, SimTime work,
                                  SimTime horizon,
                                  PolicyOptions::SpecRounding rounding) {
  const LevelTable& t = pm.table();
  const Freq desired = required_freq(t.f_max(), work, horizon);
  const std::size_t idx = rounding == PolicyOptions::SpecRounding::Up
                              ? t.quantize_up(desired)
                              : t.quantize_down(desired);
  return static_cast<std::uint32_t>(t.quantize_up(t.level(idx).freq));
}

}  // namespace

void simulate_batch(const Application& app, const OfflineResult& off,
                    const PowerModel& pm, const Overheads& overheads,
                    Scheme scheme, const PolicyOptions& popt,
                    const ScenarioBatch& batch, std::size_t lanes,
                    BatchWorkspace& ws, SimResult* results,
                    const BatchSimOptions& options) {
  const std::size_t n = app.graph.size();
  PASERTA_REQUIRE(lanes >= 1, "need at least one lane");
  PASERTA_REQUIRE(results != nullptr, "need a per-lane result array");
  PASERTA_REQUIRE(batch.nodes() == n,
                  "scenario batch does not match the application graph");
  PASERTA_REQUIRE(off.eo_table().size() == n && off.eet_table().size() == n &&
                      off.nup_init_table().size() == n &&
                      off.node_flag_table().size() == n &&
                      off.wcet_table().size() == n &&
                      off.succ_offset_table().size() == n + 1,
                  "offline result does not match the application graph");
  PASERTA_REQUIRE(options.lane_cells == nullptr ||
                      options.shared_cell == nullptr,
                  "pass per-lane cells or a shared cell, not both");

  // Everything up to the run_class dispatch is per-batch setup (derived
  // tables, policy devirtualization, per-lane slab reset); the dispatch
  // loop itself is the drain. Both phases are profiler-charged when the
  // caller wired one up (harness batch.setup / batch.drain).
  const bool trace = options.record_trace;
  PolicyClass pc = PolicyClass::Static;
  BatchCtx ctx;
  {
  ProfScope setup_scope(options.prof, options.ph_setup, options.slot);
  ctx.nodes = app.graph.nodes();
  ctx.eo = off.eo_table();
  ctx.eet = off.eet_table();
  ctx.nup_init = off.nup_init_table();
  ctx.flags = off.node_flag_table();
  ctx.wcet = off.wcet_table();
  ctx.succ_off = off.succ_offset_table();
  ctx.succ_flat = off.succ_list_table();
  ctx.levels = pm.table().levels();
  ctx.power = pm.level_powers();
  ctx.f_max = pm.table().f_max();
  ctx.table = &pm.table();
  ctx.deadline = off.deadline();
  ctx.switch_time = overheads.speed_change_time;
  ctx.ncpus = static_cast<std::uint32_t>(off.cpus());
  ctx.top_lvl = static_cast<std::uint32_t>(pm.table().size() - 1);
  ctx.nwords = static_cast<std::uint32_t>((n + 63) / 64);
  ctx.rounding = popt.spec_rounding;
  ctx.scen = &batch;
  ctx.pm = &pm;
  ctx.opt = &options;
  ctx.results = results;

  // The ready bitmap indexes by execution order, so every EO must fall in
  // [0, n). The offline pass assigns EO as a schedule position (OR
  // alternatives share a range), so this holds for every valid result.
  for (std::uint32_t v = 0; v < n; ++v)
    PASERTA_REQUIRE(ctx.eo[v] < n, "execution order out of range for '"
                                       << ctx.nodes[v].name << "'");

  // Devirtualize the policy: build and reset the real object once per
  // batch (legal because every non-adaptive policy's post-reset state is a
  // pure function of (off, pm) — identical for every run — and the
  // adaptive floor is re-derived per lane below).
  const auto policy = make_policy(scheme, popt);
  policy->reset(off, pm);
  const bool dynamic = policy->kind() == SpeedPolicy::Kind::Dynamic;
  ctx.initial_level =
      dynamic ? pm.table().size() - 1 : policy->static_level();
  switch (scheme) {
    case Scheme::NPM:
    case Scheme::SPM:
      pc = PolicyClass::Static;
      break;
    case Scheme::GSS:
      pc = PolicyClass::Gss;
      break;
    case Scheme::SS1:
    case Scheme::SS2: {
      pc = PolicyClass::StaticSpec;
      const auto& sp = static_cast<const StaticSpecPolicy&>(*policy);
      ctx.spec_low_lvl =
          static_cast<std::uint32_t>(pm.table().quantize_up(sp.f_low()));
      ctx.spec_high_lvl =
          static_cast<std::uint32_t>(pm.table().quantize_up(sp.f_high()));
      ctx.spec_theta_ps = sp.theta().ps;
      break;
    }
    case Scheme::AS:
      pc = PolicyClass::Adaptive;
      ctx.as_floor0_lvl = speculate_level_idx(pm, off.average_makespan(),
                                              off.deadline(), popt.spec_rounding);
      break;
  }

  const std::size_t nlevels = pm.table().size();
  ws.ensure(lanes, n, static_cast<std::size_t>(off.cpus()), nlevels, trace);

  // Batch-shared derived tables. The compute-overhead and reciprocal
  // tables are pure functions of the level table (and cycle count), cached
  // on its identity; the per-node and per-source tables depend on the
  // OfflineResult and are rebuilt every call (cheap, and the offline
  // result's address may be reused across sweep points).
  if (ws.dt_key != ctx.levels.data() ||
      ws.dt_cycles != overheads.speed_compute_cycles) {
    ws.dt_compute.resize(nlevels);
    engine_core::build_compute_table(overheads.speed_compute_cycles,
                                     ctx.levels.data(), nlevels,
                                     ws.dt_compute.data());
    ws.level_div.resize(nlevels);
    for (std::size_t lv = 0; lv < nlevels; ++lv) {
      const Freq f = ctx.levels[lv].freq;
      ws.level_div[lv].freq = f;
      ws.level_div[lv].den1 = f - 1;
      ws.level_div[lv].magic = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(1) << 64) / f);
    }
    ws.avail_limit = ~std::uint64_t{0} / ctx.f_max;
    ws.actual_limit =
        (~std::uint64_t{0} - (ctx.f_max - 1)) / ctx.f_max;
    ws.dt_key = ctx.levels.data();
    ws.dt_cycles = overheads.speed_compute_cycles;
  }
  ws.fwork.resize(n);
  ws.fwork_fits = true;
  const std::uint64_t wcet_limit = ~std::uint64_t{0} / ctx.f_max;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint64_t w = static_cast<std::uint64_t>(ctx.wcet[v].ps);
    if (w > wcet_limit) {
      ws.fwork_fits = false;
      ws.fwork[v] = 0;
    } else {
      ws.fwork[v] = w * ctx.f_max;
    }
  }
  // Initial ready-set templates: source bits and their EO -> node entries,
  // copied verbatim into each lane below.
  ws.ready_init_words.assign(ctx.nwords, 0);
  ws.ready_init_nodes.assign(n, 0);
  const std::uint32_t init_ready_n =
      static_cast<std::uint32_t>(off.source_table().size());
  for (const std::uint32_t v : off.source_table()) {
    const std::uint32_t eo = ctx.eo[v];
    ws.ready_init_words[eo >> 6] |= std::uint64_t{1} << (eo & 63);
    ws.ready_init_nodes[eo] = v;
  }
  if (pc == PolicyClass::Adaptive) {
    // Per-node expected-remaining-work tables: hoists rem_a_after()'s and
    // the fork-profile hash lookups out of the event path.
    ws.as_rem_after.assign(n, SimTime::zero());
    ws.as_alt.assign(n, nullptr);
    for (std::uint32_t v = 0; v < n; ++v) {
      if ((ctx.flags[v] & (kNodeFlagOrNode | kNodeFlagOrFork)) == 0) continue;
      const NodeId id{v};
      ws.as_rem_after[v] = off.rem_a_after(id);
      if (off.has_fork_profile(id))
        ws.as_alt[v] = off.fork_profile(id).rem_a_alt.data();
    }
  }

  // Per-lane reset (the scalar engine's per-run reset, amortized: the
  // ready set's initial content and the initial level are batch
  // constants, computed once and copied per lane).
  for (std::size_t l = 0; l < lanes; ++l) {
    BatchWorkspace::LaneScalars& s = ws.lane[l];
    // Ledger reset through the previous batch's touched lists (full zero
    // happened in ensure() when the geometry was first set up).
    {
      std::uint64_t* busy_row = ws.busy_ps.data() + l * ws.sl;
      std::uint64_t* compute_row = ws.compute_ps.data() + l * ws.sl;
      std::uint8_t* flag_row = ws.level_touched.data() + l * ws.sl;
      const std::uint32_t* tl = ws.touched_levels.data() + l * ws.sl;
      for (std::uint32_t i = 0; i < s.touched_levels_n; ++i) {
        busy_row[tl[i]] = 0;
        compute_row[tl[i]] = 0;
        flag_row[tl[i]] = 0;
      }
      std::uint64_t* trans_row = ws.transitions.data() + l * ws.sll;
      const std::uint32_t* tt = ws.touched_transitions.data() + l * ws.sll;
      for (std::uint32_t i = 0; i < s.touched_trans_n; ++i)
        trans_row[tt[i]] = 0;
    }
    s = BatchWorkspace::LaneScalars{};
    s.ready_n = init_ready_n;
    if (pc == PolicyClass::Adaptive) s.as_floor_lvl = ctx.as_floor0_lvl;
    std::memcpy(ws.nup.data() + l * ws.sn, ctx.nup_init.data(),
                n * sizeof(std::uint32_t));
    std::memcpy(ws.ready_words.data() + l * ws.sw,
                ws.ready_init_words.data(),
                ctx.nwords * sizeof(std::uint64_t));
    std::memcpy(ws.ready_node.data() + l * ws.sn,
                ws.ready_init_nodes.data(), n * sizeof(std::uint32_t));
    std::uint32_t* lvlrow = ws.cpu_level.data() + l * ws.sc;
    std::uint8_t* sleeprow = ws.cpu_sleep.data() + l * ws.sc;
    std::int64_t* busyrow = ws.cpu_busy.data() + l * ws.sc;
    for (std::uint32_t cpu = 0; cpu < ctx.ncpus; ++cpu) {
      lvlrow[cpu] = static_cast<std::uint32_t>(ctx.initial_level);
      sleeprow[cpu] = 0;
      busyrow[cpu] = 0;
    }
    if (trace) ws.traces[l].clear();
  }
  }  // end of batch.setup

  const bool counters =
      options.lane_cells != nullptr || options.shared_cell != nullptr;
  ProfScope drain_scope(options.prof, options.ph_drain, options.slot);
  switch (pc) {
    case PolicyClass::Static:
      run_class<PolicyClass::Static>(ctx, ws, lanes, counters, trace);
      break;
    case PolicyClass::Gss:
      run_class<PolicyClass::Gss>(ctx, ws, lanes, counters, trace);
      break;
    case PolicyClass::StaticSpec:
      run_class<PolicyClass::StaticSpec>(ctx, ws, lanes, counters, trace);
      break;
    case PolicyClass::Adaptive:
      run_class<PolicyClass::Adaptive>(ctx, ws, lanes, counters, trace);
      break;
  }
}

}  // namespace paserta
