#include "sim/verify.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace paserta {

VerifyReport verify_trace(const Application& app, const OfflineResult& off,
                          const RunScenario& scenario, const SimResult& result,
                          const VerifyOptions& options) {
  VerifyReport rep;
  const AndOrGraph& g = app.graph;

  // A result produced with SimOptions::record_trace off carries no trace;
  // report that directly instead of a misleading coverage failure per node.
  if (result.trace.empty() && result.dispatched > 0) {
    rep.fail("result has no trace (" + std::to_string(result.dispatched) +
             " nodes dispatched) — simulate with record_trace enabled to "
             "verify");
    return rep;
  }

  auto describe = [&](NodeId id) {
    std::ostringstream oss;
    oss << "'" << g.node(id).name << "' (node " << id.value << ")";
    return oss.str();
  };

  // ---- 1. Coverage: executed set == taken path, each node once. ---------
  const std::vector<bool> expected = executed_set(g, scenario);
  std::vector<int> seen(g.size(), 0);
  for (const TaskRecord& r : result.trace) {
    if (r.node.value >= g.size()) {
      rep.fail("trace references unknown node id " +
               std::to_string(r.node.value));
      return rep;
    }
    ++seen[r.node.value];
  }
  for (NodeId id : g.all_nodes()) {
    const bool want = expected[id.value];
    if (want && seen[id.value] != 1)
      rep.fail("node " + describe(id) + " executed " +
               std::to_string(seen[id.value]) + " times, expected 1");
    if (!want && seen[id.value] != 0)
      rep.fail("untaken node " + describe(id) + " executed");
  }

  // ---- 2. Execution-order rules over the dispatch sequence. -------------
  std::uint32_t neo = 0;
  for (const TaskRecord& r : result.trace) {
    const Node& n = g.node(r.node);
    const std::uint32_t eo = off.eo(r.node);
    if (r.eo != eo)
      rep.fail("trace EO mismatch for " + describe(r.node));
    if (eo == neo) {
      // in order
    } else if (n.kind == NodeKind::OrNode && eo > neo) {
      // OR nodes may skip the EOs of untaken alternatives
    } else {
      rep.fail("node " + describe(r.node) + " dispatched at EO " +
               std::to_string(eo) + " when NEO was " + std::to_string(neo));
    }
    neo = eo + 1;
  }

  // ---- 3. Readiness at dispatch. -----------------------------------------
  std::map<std::uint32_t, const TaskRecord*> by_node;
  for (const TaskRecord& r : result.trace) by_node[r.node.value] = &r;
  for (const TaskRecord& r : result.trace) {
    const Node& n = g.node(r.node);
    if (n.preds.empty()) continue;
    if (n.kind == NodeKind::OrNode) {
      bool one_done = false;
      for (NodeId p : n.preds) {
        const auto it = by_node.find(p.value);
        if (it != by_node.end() && it->second->finish <= r.dispatch_time)
          one_done = true;
      }
      if (!one_done)
        rep.fail("OR node " + describe(r.node) +
                 " dispatched before any predecessor finished");
    } else {
      for (NodeId p : n.preds) {
        const auto it = by_node.find(p.value);
        if (it == by_node.end()) {
          rep.fail("node " + describe(r.node) + " ran but predecessor " +
                   describe(p) + " never executed");
        } else if (it->second->finish > r.dispatch_time) {
          rep.fail("node " + describe(r.node) +
                   " dispatched before predecessor " + describe(p) +
                   " finished");
        }
      }
    }
  }

  // ---- 4. Per-processor exclusivity. -------------------------------------
  std::map<int, std::vector<std::pair<SimTime, SimTime>>> busy;
  for (const TaskRecord& r : result.trace) {
    if (g.node(r.node).is_dummy()) continue;  // zero-time bookkeeping
    busy[r.cpu].emplace_back(r.dispatch_time, r.finish);
  }
  for (auto& [cpu, intervals] : busy) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].first < intervals[i - 1].second)
        rep.fail("processor " + std::to_string(cpu) +
                 " runs two tasks concurrently");
    }
  }

  // ---- 5. Deadline. -------------------------------------------------------
  if (options.check_deadline && result.finish_time > off.deadline())
    rep.fail("application finished at " + to_string(result.finish_time) +
             ", after the deadline " + to_string(off.deadline()));

  // ---- 6. Theorem-1 bounds. ----------------------------------------------
  if (options.check_bounds) {
    for (const TaskRecord& r : result.trace) {
      if (r.dispatch_time > off.lst(r.node))
        rep.fail("node " + describe(r.node) + " dispatched at " +
                 to_string(r.dispatch_time) + " after its LST " +
                 to_string(off.lst(r.node)));
      if (!g.node(r.node).is_dummy() && r.finish > off.eet(r.node))
        rep.fail("node " + describe(r.node) + " finished at " +
                 to_string(r.finish) + " after its EET " +
                 to_string(off.eet(r.node)));
    }
  }

  return rep;
}

}  // namespace paserta
