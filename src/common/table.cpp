#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace paserta {

void Table::add_row(std::vector<std::string> cells) {
  PASERTA_REQUIRE(cells.size() == header_.size(),
                  "row has " << cells.size() << " cells, header has "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

namespace {
// CSV-escape a cell (quote when it contains separators or quotes).
std::string csv_cell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << csv_cell(cells[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i ? "  " : "") << std::left << std::setw(static_cast<int>(width[i]))
         << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace paserta
