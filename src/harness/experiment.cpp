#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/aligned.h"
#include "common/error.h"
#include "core/offline.h"
#include "harness/pool.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/fingerprint.h"
#include "sim/power_trace.h"
#include "sim/sampler.h"
#include "sim/scenario.h"
#include "sim/verify.h"

namespace paserta {

const SchemeStats& SweepPoint::of(Scheme s) const {
  for (const auto& st : stats)
    if (st.scheme == s) return st;
  PASERTA_REQUIRE(false, "scheme " << to_string(s) << " not in sweep point");
  return stats.front();  // unreachable
}

namespace {

/// Raw per-run measurements; accumulated into SweepPoint in run order so
/// results are independent of how many worker threads produced them.
struct SchemeOutcome {
  double norm_energy = 0.0;
  double speed_changes = 0.0;
  double finish_frac = 0.0;
  double busy_frac = 0.0;
  double overhead_frac = 0.0;
  double idle_frac = 0.0;
  bool has_norm = false;
  bool has_fracs = false;
  bool missed = false;
  bool verify_failed = false;
};

/// All per-run measurements of one point, laid out run-major in flat
/// preallocated arrays (schemes[run * nschemes + s]): no per-run heap
/// blocks, and both the worker writes and the run-ordered accumulation
/// walk memory sequentially.
struct PointOutcomes {
  std::vector<double> npm_energy;        // one per run
  std::vector<std::uint8_t> degenerate;  // NPM baseline consumed zero energy
  std::vector<SchemeOutcome> schemes;    // runs x cfg.schemes, run-major

  explicit PointOutcomes(int runs, std::size_t nschemes)
      : npm_energy(static_cast<std::size_t>(runs), 0.0),
        degenerate(static_cast<std::size_t>(runs), 0),
        schemes(static_cast<std::size_t>(runs) * nschemes) {}
};

// (The staging buffers use CacheAlignedAlloc from common/aligned.h — the
// same allocator the batched engine's SoA slabs are built on — so two
// slots' staging arrays never share a cache line.)

/// Slot-private staging for one chunk's outcomes. Workers evaluate every
/// run of a claimed chunk into this scratch — cache-line-aligned arrays no
/// other thread ever touches — and then flush the whole chunk into the
/// shared run-major PointOutcomes with one bulk copy per array. The shared
/// store is therefore written at chunk granularity instead of per run
/// field-by-field, so the only lines two workers can ever contend on are
/// the single boundary lines between adjacent chunks, touched once each.
/// The staged values are copied verbatim to the same run-indexed positions
/// the direct path writes, so the merge is unobservable in the output.
struct ChunkStage {
  std::vector<double, CacheAlignedAlloc<double>> npm_energy;
  std::vector<std::uint8_t, CacheAlignedAlloc<std::uint8_t>> degenerate;
  std::vector<SchemeOutcome, CacheAlignedAlloc<SchemeOutcome>> schemes;

  /// Grows the scratch to `chunk_runs` entries (never shrinks, so the
  /// final short chunk of a point reuses the full-size buffers). Entries
  /// are *not* cleared between chunks: evaluate_run assigns every field.
  void ensure(int chunk_runs, std::size_t nschemes) {
    const auto n = static_cast<std::size_t>(chunk_runs);
    if (npm_energy.size() >= n) return;
    npm_energy.resize(n);
    degenerate.resize(n);
    schemes.resize(n * nschemes);
  }

  /// Bulk-copies the first `n` staged runs into `store` at [first, first+n).
  void flush(PointOutcomes& store, int first, int n,
             std::size_t nschemes) const {
    const auto offset = static_cast<std::size_t>(first);
    const auto count = static_cast<std::size_t>(n);
    std::memcpy(store.npm_energy.data() + offset, npm_energy.data(),
                count * sizeof(double));
    std::memcpy(store.degenerate.data() + offset, degenerate.data(), count);
    std::memcpy(store.schemes.data() + offset * nschemes, schemes.data(),
                count * nschemes * sizeof(SchemeOutcome));
  }
};
static_assert(std::is_trivially_copyable_v<SchemeOutcome>,
              "ChunkStage::flush memcpys SchemeOutcome rows");

// ---- Scenario-dedup outcome memoization (DESIGN.md §15) -----------------
//
// The simulation consumes no randomness: a drawn scenario fully determines
// every output bit of every scheme. So when two runs draw bit-identical
// scenarios (equal fingerprints — see ScenarioSampler's key-emitting
// draw_into), the second run's complete record — NPM energy, degenerate
// flag, every SchemeOutcome row, every SimCounters cell including the
// integer attribution ledger — is *copied* from the first instead of
// re-simulated. The copy lands in the same run-major stage slot and the
// counters integer-add into the same slot cells, so sums, CSVs, metrics
// and ledgers stay bit-identical at every thread count and batch size.
//
// Sharding mirrors the staging design of §13: each (point, slot) owns a
// single-threaded OutcomeShard (fingerprint table + id-major record
// arenas) that its worker consults lock-free on the per-run path; a
// mutex-protected SharedOutcomes store per point lets slots adopt each
// other's records — consulted only on a shard-local first encounter, and
// appended to only in a post-chunk publish, so the lock is off the per-run
// path entirely.

/// Whether `cfg` resolves to dedup for a point whose compiled sampler
/// reports `space` distinct scenarios (0 = unbounded).
bool dedup_for(const ExperimentConfig& cfg, std::uint64_t space) {
  // Replayed runs perform no engine work, so configurations whose purpose
  // is per-run engine work keep the uncached path: verify_traces walks
  // every run's trace, audit re-accounts every run three ways, and a
  // per-run tracer spans every simulation.
  if (cfg.verify_traces || cfg.audit) return false;
  if (cfg.tracer != nullptr && cfg.tracer->detail() == Tracer::Detail::kRuns)
    return false;
  switch (cfg.dedup) {
    case DedupMode::kOff:
      return false;
    case DedupMode::kOn:
      return true;
    case DedupMode::kAuto:
      break;
  }
  // Auto: only when the scenario space is provably finite and no larger
  // than the run count, so replay is guaranteed to pay and the cache is
  // bounded by the space, not the draw count.
  return space != 0 && space <= static_cast<std::uint64_t>(cfg.runs);
}

/// Cached outcome records of one (point, slot). Strictly single-threaded:
/// only the owning slot's worker ever touches it (the cross-thread record
/// flow goes through SharedOutcomes). Records are stored id-major in flat
/// arenas parallel to the fingerprint table's dense ids.
struct OutcomeShard {
  FingerprintTable table;
  std::vector<double> npm_energy;        // one per record
  std::vector<std::uint8_t> degenerate;  // one per record
  std::vector<SchemeOutcome> rows;       // id-major x nschemes
  std::vector<SimCounters> cells;        // id-major x (nschemes+1); metrics
  std::vector<std::uint32_t> pending;    // record ids not yet published
  std::uint64_t hits = 0;    // runs replayed from a cached record
  std::uint64_t misses = 0;  // scenarios this shard actually simulated

  explicit OutcomeShard(std::size_t key_words) : table(key_words) {}

  std::uint32_t record_count() const {
    return static_cast<std::uint32_t>(npm_energy.size());
  }

  /// Approximate heap footprint (flat arenas + table; the ledger vectors
  /// inside cached SimCounters are counted at header size only).
  std::uint64_t bytes() const {
    return table.bytes() + npm_energy.capacity() * sizeof(double) +
           degenerate.capacity() +
           rows.capacity() * sizeof(SchemeOutcome) +
           cells.capacity() * sizeof(SimCounters) +
           pending.capacity() * sizeof(std::uint32_t);
  }
};

/// One complete record in transit between stores: shared-store reads copy
/// into this (slot-owned) buffer under the lock, so no simulation or
/// shard mutation ever happens while the shared mutex is held.
struct RecordTmp {
  double npm_energy = 0.0;
  std::uint8_t degenerate = 0;
  std::vector<SchemeOutcome> rows;
  std::vector<SimCounters> cells;  // empty when metrics are off
};

/// Appends `tmp` as the shard's next record (dense id order: the caller
/// interned the key and got exactly record_count() as its id).
void append_record(OutcomeShard& sh, const RecordTmp& tmp, bool metrics) {
  sh.npm_energy.push_back(tmp.npm_energy);
  sh.degenerate.push_back(tmp.degenerate);
  sh.rows.insert(sh.rows.end(), tmp.rows.begin(), tmp.rows.end());
  if (metrics)
    sh.cells.insert(sh.cells.end(), tmp.cells.begin(), tmp.cells.end());
}

/// Appends a new record copied from stage position `i` (the run that was
/// just simulated there) plus its run-local counter cells.
void append_record_from_stage(OutcomeShard& sh, const ChunkStage& stage,
                              std::size_t i, std::size_t nschemes,
                              const SimCounters* run_cells,
                              std::size_t ncells) {
  sh.npm_energy.push_back(stage.npm_energy[i]);
  sh.degenerate.push_back(stage.degenerate[i]);
  const SchemeOutcome* row = stage.schemes.data() + i * nschemes;
  sh.rows.insert(sh.rows.end(), row, row + nschemes);
  if (run_cells != nullptr)
    sh.cells.insert(sh.cells.end(), run_cells, run_cells + ncells);
}

/// Replays cached record `id` into stage position `i`: copies the staged
/// values and integer-adds the cached counter cells into the slot cells —
/// exactly the writes re-simulating the scenario would have produced
/// (copies are bitwise, counter adds are integer and order-independent).
void replay_record(const OutcomeShard& sh, std::uint32_t id,
                   ChunkStage& stage, std::size_t i, std::size_t nschemes,
                   SimCounters* slot_cells, std::size_t ncells) {
  stage.npm_energy[i] = sh.npm_energy[id];
  stage.degenerate[i] = sh.degenerate[id];
  std::copy_n(sh.rows.data() + static_cast<std::size_t>(id) * nschemes,
              nschemes, stage.schemes.data() + i * nschemes);
  if (slot_cells != nullptr) {
    const SimCounters* cell =
        sh.cells.data() + static_cast<std::size_t>(id) * ncells;
    for (std::size_t c = 0; c < ncells; ++c) slot_cells[c].add(cell[c]);
  }
}

/// Shared per-point publish store: lets one slot adopt a record another
/// slot already simulated. All access is under `mu`; consulted only on a
/// shard-local first encounter and appended to per chunk, so contention is
/// O(distinct scenarios + chunks), never O(runs). Which slot wins a
/// publish race is output-invisible: both computed bit-identical records.
struct SharedOutcomes {
  std::mutex mu;
  FingerprintTable table;
  std::vector<double> npm_energy;
  std::vector<std::uint8_t> degenerate;
  std::vector<SchemeOutcome> rows;
  std::vector<SimCounters> cells;

  explicit SharedOutcomes(std::size_t key_words) : table(key_words) {}

  /// Copies the record of `key` into `tmp` when present.
  bool find_copy(const std::uint64_t* key, std::size_t nschemes,
                 std::size_t ncells, bool metrics, RecordTmp& tmp) {
    std::lock_guard<std::mutex> lock(mu);
    const std::uint32_t id = table.find(key);
    if (id == FingerprintTable::kNotFound) return false;
    tmp.npm_energy = npm_energy[id];
    tmp.degenerate = degenerate[id];
    const auto r = rows.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(id) * nschemes);
    tmp.rows.assign(r, r + static_cast<std::ptrdiff_t>(nschemes));
    if (metrics) {
      const auto c = cells.begin() + static_cast<std::ptrdiff_t>(
                                         static_cast<std::size_t>(id) * ncells);
      tmp.cells.assign(c, c + static_cast<std::ptrdiff_t>(ncells));
    }
    return true;
  }

  /// Publishes the shard's pending records (first writer per key wins).
  void publish(OutcomeShard& shard, std::size_t nschemes, std::size_t ncells,
               bool metrics) {
    if (shard.pending.empty()) return;
    std::lock_guard<std::mutex> lock(mu);
    for (const std::uint32_t id : shard.pending) {
      bool inserted = false;
      (void)table.intern(shard.table.key(id), inserted);
      if (!inserted) continue;  // another slot published this key first
      // The new dense id equals the arena size: append keeps alignment.
      npm_energy.push_back(shard.npm_energy[id]);
      degenerate.push_back(shard.degenerate[id]);
      const SchemeOutcome* row =
          shard.rows.data() + static_cast<std::size_t>(id) * nschemes;
      rows.insert(rows.end(), row, row + nschemes);
      if (metrics) {
        const SimCounters* cell =
            shard.cells.data() + static_cast<std::size_t>(id) * ncells;
        cells.insert(cells.end(), cell, cell + ncells);
      }
    }
    shard.pending.clear();
  }

  std::uint64_t bytes() {
    std::lock_guard<std::mutex> lock(mu);
    return table.bytes() + npm_energy.capacity() * sizeof(double) +
           degenerate.capacity() +
           rows.capacity() * sizeof(SchemeOutcome) +
           cells.capacity() * sizeof(SimCounters);
  }
};

/// Observability context of one run, threaded through evaluate_run by the
/// worker that owns the slot. Everything may be null/defaulted: a
/// zero-initialized RunObs makes evaluate_run observation-free.
struct RunObs {
  Tracer* run_tracer = nullptr;  // non-null only at Tracer::Detail::kRuns
  int slot = 0;
  std::int64_t point = -1;
  /// Slot-owned telemetry cells for this (point, slot): one SimCounters
  /// per scheme in config order, then one for the NPM baseline. Null =
  /// counting off.
  SimCounters* cells = nullptr;
  /// Phase profiler + pre-registered phase ids (run_point_specs resolves
  /// them once per call). Null prof = every scope is a pointer test.
  Profiler* prof = nullptr;
  int ph_sample = -1;    // scenario drawing (nested under pool.busy)
  int ph_simulate = -1;  // engine simulation (nested under pool.busy)
  int ph_flush = -1;     // chunk stage flush (nested under pool.busy)
  int ph_batch_setup = -1;  // batch-engine setup (nested under simulate)
  int ph_batch_drain = -1;  // batch-engine drain (nested under simulate)
};

/// Audit cross-check of one finished run (ExperimentConfig::audit): the
/// exported attribution ledger must fold back to the engine's energy split
/// exactly (same fold over the same integers — see attribution_energy),
/// and the power-trace reconstruction must integrate to the same total
/// within 1e-9 relative. `c` must hold this run's counters alone and `r`
/// must carry its trace.
void audit_run(const Application& app, const OfflineResult& off,
               const PowerModel& pm, const Overheads& ovh,
               const SimCounters& c, const SimResult& r, Scheme scheme) {
  const EnergySplit split = attribution_energy(c, pm, ovh);
  PASERTA_REQUIRE(split.busy == r.busy_energy &&
                      split.overhead == r.overhead_energy &&
                      split.idle == r.idle_energy,
                  "audit(" << to_string(scheme)
                           << "): attribution counters rebuild ("
                           << split.busy << ", " << split.overhead << ", "
                           << split.idle << ") J but the engine reported ("
                           << r.busy_energy << ", " << r.overhead_energy
                           << ", " << r.idle_energy << ") J");
  const PowerTrace trace = build_power_trace(app, off, pm, ovh, r);
  const Energy integral = trace.total_energy();
  const Energy total = r.total_energy();
  const double tol = 1e-9 * std::max(1.0, std::abs(total));
  PASERTA_REQUIRE(std::abs(integral - total) <= tol,
                  "audit(" << to_string(scheme)
                           << "): power-trace integral " << integral
                           << " J deviates from engine total " << total
                           << " J");
}

/// Evaluates one already-drawn scenario into the caller's output cells:
/// `npm_energy_out`, `degenerate_out` and the `row` of cfg.schemes.size()
/// SchemeOutcomes. Every field of every cell is assigned unconditionally,
/// so callers may hand in reused (stale) buffers — the pooled path stages
/// chunks through per-slot scratch that is never cleared. Thread-safe: all
/// shared inputs are const, distinct runs write distinct cells; policies
/// and the workspace are caller-provided (one set per worker slot), so the
/// loop over runs performs no heap allocation in steady state. The
/// simulation consumes no randomness — a scenario fully determines every
/// output bit — which is what lets the dedup layer hoist the draw out and
/// replay cached records for repeated scenarios (DESIGN.md §15). `run` is
/// only used to label trace spans.
void evaluate_scenario(const Application& app, const ExperimentConfig& cfg,
                       const OfflineResult& off, const PowerModel& pm,
                       SimTime deadline,
                       std::vector<std::unique_ptr<SpeedPolicy>>& policies,
                       SpeedPolicy& npm, int run, SimWorkspace& ws,
                       const RunScenario& sc, double& npm_energy_out,
                       std::uint8_t& degenerate_out, SchemeOutcome* row,
                       const RunObs& obs = {}) {
  // Traces are only materialized when something consumes them; the
  // verifying (test) configuration also keeps the engine's debug
  // completeness traversal on, and audit needs per-run traces for the
  // power-curve integral check.
  SimOptions sim_opt;
  sim_opt.record_trace = cfg.verify_traces || cfg.audit;
  sim_opt.check_completeness = cfg.verify_traces;
  sim_opt.audit = cfg.audit;

  // Audit runs export into a run-local cell first, so attribution_energy
  // sees exactly one run's ledger; the local is then merged into the
  // slot-owned cell (integer adds — the merged totals are identical to
  // direct accumulation).
  SimCounters audit_cell;
  SimCounters* const slot_npm =
      obs.cells != nullptr ? obs.cells + cfg.schemes.size() : nullptr;

  npm.reset(off, pm);
  sim_opt.counters = cfg.audit ? &audit_cell : slot_npm;
  const SimResult npm_r = [&] {
    TraceSpan span(obs.run_tracer, obs.slot, "NPM", obs.point, run);
    return simulate(app, off, pm, cfg.overheads, npm, sc, ws, sim_opt);
  }();
  if (cfg.audit) {
    audit_run(app, off, pm, cfg.overheads, audit_cell, npm_r, Scheme::NPM);
    if (slot_npm != nullptr) slot_npm->add(audit_cell);
  }
  const double npm_energy = npm_r.total_energy();
  // A degenerate workload (no computation and zero idle power) yields a
  // zero NPM baseline; dividing by it would poison RunningStat with
  // NaN/Inf, so such runs are flagged and excluded from norm_energy.
  const bool degenerate = !(npm_energy > 0.0);
  npm_energy_out = npm_energy;
  degenerate_out = degenerate ? 1 : 0;

  for (std::size_t s = 0; s < cfg.schemes.size(); ++s) {
    SpeedPolicy& policy = *policies[s];
    policy.reset(off, pm);
    SimCounters* const slot_cell =
        obs.cells != nullptr ? obs.cells + s : nullptr;
    if (cfg.audit) audit_cell = SimCounters{};
    sim_opt.counters = cfg.audit ? &audit_cell : slot_cell;
    const SimResult r = [&] {
      TraceSpan span(obs.run_tracer, obs.slot, to_string(cfg.schemes[s]),
                     obs.point, run);
      return simulate(app, off, pm, cfg.overheads, policy, sc, ws, sim_opt);
    }();
    if (cfg.audit) {
      audit_run(app, off, pm, cfg.overheads, audit_cell, r, cfg.schemes[s]);
      if (slot_cell != nullptr) slot_cell->add(audit_cell);
    }
    // Built from scratch and stored once: the output cell may be a reused
    // staging entry, so no field may survive from a previous run.
    SchemeOutcome so;
    if (!degenerate) {
      so.norm_energy = r.total_energy() / npm_energy;
      so.has_norm = true;
    }
    so.speed_changes = static_cast<double>(r.speed_changes);
    so.finish_frac = static_cast<double>(r.finish_time.ps) /
                     static_cast<double>(deadline.ps);
    const Energy total = r.total_energy();
    if (total > 0.0) {
      so.busy_frac = r.busy_energy / total;
      so.overhead_frac = r.overhead_energy / total;
      so.idle_frac = r.idle_energy / total;
      so.has_fracs = true;
    }
    so.missed = !r.deadline_met;
    if (cfg.verify_traces) {
      const VerifyReport rep = verify_trace(app, off, sc, r);
      so.verify_failed = !rep.ok;
    }
    row[s] = so;
  }
}

/// Draw + evaluate of one run on its own seed-derived stream. Scenario
/// generation goes through the precompiled `sampler` when one is given; a
/// null sampler falls back to the legacy per-run draw_scenario walk
/// (bit-identical by contract — run_point_unpooled stays on it as the
/// in-tree reference).
void evaluate_run(const Application& app, const ExperimentConfig& cfg,
                  const OfflineResult& off, const PowerModel& pm,
                  SimTime deadline, const ScenarioSampler* sampler,
                  std::vector<std::unique_ptr<SpeedPolicy>>& policies,
                  SpeedPolicy& npm, int run, SimWorkspace& ws,
                  RunScenario& sc, double& npm_energy_out,
                  std::uint8_t& degenerate_out, SchemeOutcome* row,
                  const RunObs& obs = {}) {
  Rng run_rng(Rng::stream_seed(cfg.seed, static_cast<std::uint64_t>(run)));
  {
    ProfScope ps(obs.prof, obs.ph_sample, obs.slot);
    if (sampler != nullptr) {
      sampler->draw_into(run_rng, sc);
    } else {
      draw_scenario(app.graph, run_rng, sc);
    }
  }
  ProfScope ps(obs.prof, obs.ph_simulate, obs.slot);
  evaluate_scenario(app, cfg, off, pm, deadline, policies, npm, run, ws, sc,
                    npm_energy_out, degenerate_out, row, obs);
}

/// Worker-local state, one set per pool slot, reused across every chunk
/// (and every point) that slot processes. Lazily constructed by the slot's
/// own thread on its first chunk, so every buffer a worker touches per run
/// is allocated by (and stays local to) that worker. `samplers` holds the
/// slot's private copies of the shared compiled ScenarioSamplers, cloned
/// on first use per distinct application: scenario drawing then reads no
/// memory another thread is also streaming through, which keeps the per-
/// run path free of any cross-thread cache traffic (the shared masters
/// are read-only, but private copies also dodge capacity fights on a
/// busy socket and make the no-shared-state property mechanical).
struct WorkerCtx {
  std::vector<std::unique_ptr<SpeedPolicy>> policies;
  std::unique_ptr<SpeedPolicy> npm;
  SimWorkspace ws;
  RunScenario sc;
  ChunkStage stage;
  std::vector<std::unique_ptr<ScenarioSampler>> samplers;
  // Batched-path state (sim/batch_engine.h), sized lazily on first use.
  BatchWorkspace batch_ws;
  ScenarioBatch batch_sc;
  std::vector<SimResult> batch_results;
  std::vector<SimCounters> batch_cells;  // audit/dedup: one cell per lane
  // Dedup-path scratch (DESIGN.md §15), sized lazily on first use.
  std::vector<std::uint64_t> key;          // one fingerprint (op_count words)
  std::vector<SimCounters> dedup_cells;    // miss: run-local counter cells
  std::vector<std::pair<int, std::uint32_t>> fill;  // (stage idx, record id)
  RecordTmp rec_tmp;  // shared-store reads copy here under the lock

  WorkerCtx(const ExperimentConfig& cfg, std::size_t sampler_count)
      : samplers(sampler_count) {
    for (Scheme s : cfg.schemes)
      policies.push_back(make_policy(s, cfg.policy_options));
    npm = make_policy(Scheme::NPM);
  }
};

/// Lanes per batched engine call, or 0 for the scalar per-run path.
/// The value is output-invisible (the batched engine is bit-identical to
/// the scalar one), so auto just picks the measured sweet spot: large
/// enough to amortize the per-batch setup (derived tables, devirtualized
/// policy reset) over many runs, small enough that the batch's lane state
/// stays cache-resident on one core.
int batch_lanes_for(const ExperimentConfig& cfg) {
  if (cfg.batch == 1) return 0;
  // verify_traces needs the scalar engine's completeness traversal.
  if (cfg.verify_traces) return 0;
  if (cfg.batch > 1) return cfg.batch;
  return 32;
}

/// Batched analogue of the per-run evaluate_run loop over one chunk:
/// draws the chunk's scenarios into a lane-major slab (each lane from its
/// own run's seed-derived stream) and simulates the NPM baseline plus
/// every scheme through simulate_batch, `lanes_max` runs per engine call.
/// Every staged value is computed by the same floating-point expression on
/// bit-identical engine outputs as evaluate_run's, and counter export
/// reduces to the same integer sums, so the scalar and batched chunk paths
/// are interchangeable run for run.
void evaluate_chunk_batched(const Application& app,
                            const ExperimentConfig& cfg,
                            const OfflineResult& off, const PowerModel& pm,
                            SimTime deadline, const ScenarioSampler& sampler,
                            int first, int count, int lanes_max,
                            WorkerCtx& ctx, const RunObs& obs) {
  const std::size_t nschemes = cfg.schemes.size();
  SimCounters* const slot_npm =
      obs.cells != nullptr ? obs.cells + nschemes : nullptr;
  ctx.batch_results.resize(static_cast<std::size_t>(lanes_max));
  for (int base = 0; base < count; base += lanes_max) {
    const int lanes = std::min(lanes_max, count - base);
    const auto nlanes = static_cast<std::size_t>(lanes);
    ctx.batch_sc.ensure(nlanes, app.graph.size());
    {
      ProfScope ps(obs.prof, obs.ph_sample, obs.slot);
      for (int l = 0; l < lanes; ++l) {
        Rng run_rng(Rng::stream_seed(
            cfg.seed, static_cast<std::uint64_t>(first + base + l)));
        sampler.draw_into(run_rng, ctx.batch_sc,
                          static_cast<std::size_t>(l));
      }
    }

    // One scheme after another over the same scenario slab, the NPM
    // baseline first (its energies normalize the others). Audit mode
    // exports each lane into its own cell so attribution_energy sees one
    // run's ledger, exactly like the scalar path's run-local cell.
    const auto run_scheme = [&](Scheme scheme, SimCounters* slot_cell) {
      ProfScope ps(obs.prof, obs.ph_simulate, obs.slot);
      BatchSimOptions bo;
      bo.record_trace = cfg.audit;
      bo.audit = cfg.audit;
      bo.prof = obs.prof;
      bo.ph_setup = obs.ph_batch_setup;
      bo.ph_drain = obs.ph_batch_drain;
      bo.slot = obs.slot;
      if (cfg.audit) {
        ctx.batch_cells.assign(nlanes, SimCounters{});
        bo.lane_cells = ctx.batch_cells.data();
      } else {
        bo.shared_cell = slot_cell;
      }
      simulate_batch(app, off, pm, cfg.overheads, scheme,
                     cfg.policy_options, ctx.batch_sc, nlanes, ctx.batch_ws,
                     ctx.batch_results.data(), bo);
      if (cfg.audit) {
        for (std::size_t l = 0; l < nlanes; ++l) {
          audit_run(app, off, pm, cfg.overheads, ctx.batch_cells[l],
                    ctx.batch_results[l], scheme);
          if (slot_cell != nullptr) slot_cell->add(ctx.batch_cells[l]);
        }
      }
    };

    run_scheme(Scheme::NPM, slot_npm);
    for (int l = 0; l < lanes; ++l) {
      const auto i = static_cast<std::size_t>(base + l);
      const double npm_energy =
          ctx.batch_results[static_cast<std::size_t>(l)].total_energy();
      ctx.stage.npm_energy[i] = npm_energy;
      ctx.stage.degenerate[i] = !(npm_energy > 0.0) ? 1 : 0;
    }

    for (std::size_t s = 0; s < nschemes; ++s) {
      run_scheme(cfg.schemes[s],
                 obs.cells != nullptr ? obs.cells + s : nullptr);
      for (int l = 0; l < lanes; ++l) {
        const auto i = static_cast<std::size_t>(base + l);
        const SimResult& r = ctx.batch_results[static_cast<std::size_t>(l)];
        SchemeOutcome so;
        if (!ctx.stage.degenerate[i]) {
          so.norm_energy = r.total_energy() / ctx.stage.npm_energy[i];
          so.has_norm = true;
        }
        so.speed_changes = static_cast<double>(r.speed_changes);
        so.finish_frac = static_cast<double>(r.finish_time.ps) /
                         static_cast<double>(deadline.ps);
        const Energy total = r.total_energy();
        if (total > 0.0) {
          so.busy_frac = r.busy_energy / total;
          so.overhead_frac = r.overhead_energy / total;
          so.idle_frac = r.idle_energy / total;
          so.has_fracs = true;
        }
        so.missed = !r.deadline_met;
        ctx.stage.schemes[i * nschemes + s] = so;
      }
    }
  }
}

/// Scalar dedup chunk path: draws each run's scenario together with its
/// fingerprint, simulates only first encounters and replays the cached
/// record for every duplicate. Stage rows and slot cells end up with
/// exactly the values the plain scalar loop writes (DESIGN.md §15).
void evaluate_chunk_dedup_scalar(
    const Application& app, const ExperimentConfig& cfg,
    const OfflineResult& off, const PowerModel& pm, SimTime deadline,
    const ScenarioSampler& sampler, int first, int count, WorkerCtx& ctx,
    const RunObs& obs, OutcomeShard& shard, SharedOutcomes* shared) {
  const std::size_t nschemes = cfg.schemes.size();
  const std::size_t ncells = nschemes + 1;
  const bool metrics = obs.cells != nullptr;
  ctx.key.resize(sampler.op_count());
  if (metrics) ctx.dedup_cells.resize(ncells);
  for (int k = 0; k < count; ++k) {
    const int run = first + k;
    const auto i = static_cast<std::size_t>(k);
    Rng run_rng(Rng::stream_seed(cfg.seed, static_cast<std::uint64_t>(run)));
    {
      ProfScope ps(obs.prof, obs.ph_sample, obs.slot);
      sampler.draw_into(run_rng, ctx.sc, ctx.key.data());
    }
    bool inserted = false;
    const std::uint32_t id = shard.table.intern(ctx.key.data(), inserted);
    if (inserted) {
      if (shared != nullptr &&
          shared->find_copy(ctx.key.data(), nschemes, ncells, metrics,
                            ctx.rec_tmp)) {
        // Another slot already simulated this scenario: adopt its record
        // (id == record_count(), so the append keeps id-major alignment).
        append_record(shard, ctx.rec_tmp, metrics);
      } else {
        // First encounter anywhere: simulate straight into the stage row,
        // capturing the run's counters in run-local cells so the record
        // caches exactly one run's worth.
        ++shard.misses;
        RunObs miss_obs = obs;
        if (metrics) {
          std::fill(ctx.dedup_cells.begin(), ctx.dedup_cells.end(),
                    SimCounters{});
          miss_obs.cells = ctx.dedup_cells.data();
        }
        {
          ProfScope ps(obs.prof, obs.ph_simulate, obs.slot);
          evaluate_scenario(app, cfg, off, pm, deadline, ctx.policies,
                            *ctx.npm, run, ctx.ws, ctx.sc,
                            ctx.stage.npm_energy[i], ctx.stage.degenerate[i],
                            ctx.stage.schemes.data() + i * nschemes,
                            miss_obs);
        }
        if (metrics)
          for (std::size_t c = 0; c < ncells; ++c)
            obs.cells[c].add(ctx.dedup_cells[c]);
        append_record_from_stage(shard, ctx.stage, i, nschemes,
                                 metrics ? ctx.dedup_cells.data() : nullptr,
                                 ncells);
        if (shared != nullptr) shard.pending.push_back(id);
        continue;  // this run's stage row and cells are already written
      }
    }
    ++shard.hits;
    replay_record(shard, id, ctx.stage, i, nschemes, obs.cells, ncells);
  }
  if (shared != nullptr) shared->publish(shard, nschemes, ncells, metrics);
}

/// Batched dedup chunk path: dedup happens *before* lane packing, so only
/// first-encounter scenarios occupy engine lanes — duplicates never reach
/// the batched engine at all. Runs are recorded as (stage index, record id)
/// pairs and replayed when their flush group materializes, which keeps the
/// stage bit-identical to the non-dedup batched path (same engine, same
/// floating-point expressions, same integer counter sums).
void evaluate_chunk_dedup_batched(
    const Application& app, const ExperimentConfig& cfg,
    const OfflineResult& off, const PowerModel& pm, SimTime deadline,
    const ScenarioSampler& sampler, int first, int count, int lanes_max,
    WorkerCtx& ctx, const RunObs& obs, OutcomeShard& shard,
    SharedOutcomes* shared) {
  const std::size_t nschemes = cfg.schemes.size();
  const std::size_t ncells = nschemes + 1;
  const bool metrics = obs.cells != nullptr;
  const std::uint64_t miss0 = shard.misses;
  ctx.key.resize(sampler.op_count());
  ctx.batch_results.resize(static_cast<std::size_t>(lanes_max));
  ctx.batch_sc.ensure(static_cast<std::size_t>(lanes_max), app.graph.size());
  ctx.fill.clear();
  int cur = 0;  // pending lanes in the current flush group

  // Simulates the group's `cur` pending lanes (NPM baseline first, then
  // every scheme), appends their records in lane order — lane l's record
  // id is record_count() + l, because intern assigned the group's ids
  // densely in lane order — then replays every (run, id) pair staged so
  // far. The record rows are built by the same floating-point expressions
  // as evaluate_chunk_batched's, on bit-identical engine outputs.
  const auto flush_group = [&] {
    if (cur > 0) {
      const auto nlanes = static_cast<std::size_t>(cur);
      const std::size_t base = shard.npm_energy.size();
      shard.npm_energy.resize(base + nlanes);
      shard.degenerate.resize(base + nlanes);
      shard.rows.resize((base + nlanes) * nschemes);
      if (metrics) shard.cells.resize((base + nlanes) * ncells);

      const auto run_scheme = [&](Scheme scheme) {
        ProfScope ps(obs.prof, obs.ph_simulate, obs.slot);
        BatchSimOptions bo;
        bo.prof = obs.prof;
        bo.ph_setup = obs.ph_batch_setup;
        bo.ph_drain = obs.ph_batch_drain;
        bo.slot = obs.slot;
        if (metrics) {
          // Per-lane cells: each record must cache exactly one run's
          // counters (and ledger), so replay adds per-run quantities.
          ctx.batch_cells.assign(nlanes, SimCounters{});
          bo.lane_cells = ctx.batch_cells.data();
        }
        simulate_batch(app, off, pm, cfg.overheads, scheme,
                       cfg.policy_options, ctx.batch_sc, nlanes,
                       ctx.batch_ws, ctx.batch_results.data(), bo);
      };

      run_scheme(Scheme::NPM);
      for (std::size_t l = 0; l < nlanes; ++l) {
        const double npm_energy = ctx.batch_results[l].total_energy();
        shard.npm_energy[base + l] = npm_energy;
        shard.degenerate[base + l] = !(npm_energy > 0.0) ? 1 : 0;
        if (metrics)
          shard.cells[(base + l) * ncells + nschemes] = ctx.batch_cells[l];
      }
      for (std::size_t s = 0; s < nschemes; ++s) {
        run_scheme(cfg.schemes[s]);
        for (std::size_t l = 0; l < nlanes; ++l) {
          const SimResult& r = ctx.batch_results[l];
          SchemeOutcome so;
          if (!shard.degenerate[base + l]) {
            so.norm_energy = r.total_energy() / shard.npm_energy[base + l];
            so.has_norm = true;
          }
          so.speed_changes = static_cast<double>(r.speed_changes);
          so.finish_frac = static_cast<double>(r.finish_time.ps) /
                           static_cast<double>(deadline.ps);
          const Energy total = r.total_energy();
          if (total > 0.0) {
            so.busy_frac = r.busy_energy / total;
            so.overhead_frac = r.overhead_energy / total;
            so.idle_frac = r.idle_energy / total;
            so.has_fracs = true;
          }
          so.missed = !r.deadline_met;
          shard.rows[(base + l) * nschemes + s] = so;
          if (metrics) shard.cells[(base + l) * ncells + s] = ctx.batch_cells[l];
        }
      }
      if (shared != nullptr)
        for (std::size_t l = 0; l < nlanes; ++l)
          shard.pending.push_back(static_cast<std::uint32_t>(base + l));
      shard.misses += nlanes;
      cur = 0;
    }
    for (const auto& [idx, id] : ctx.fill)
      replay_record(shard, id, ctx.stage, static_cast<std::size_t>(idx),
                    nschemes, obs.cells, ncells);
    ctx.fill.clear();
  };

  for (int k = 0; k < count; ++k) {
    if (cur == lanes_max) flush_group();
    const int run = first + k;
    Rng run_rng(Rng::stream_seed(cfg.seed, static_cast<std::uint64_t>(run)));
    {
      ProfScope ps(obs.prof, obs.ph_sample, obs.slot);
      sampler.draw_into(run_rng, ctx.batch_sc, static_cast<std::size_t>(cur),
                        ctx.key.data());
    }
    bool inserted = false;
    const std::uint32_t id = shard.table.intern(ctx.key.data(), inserted);
    if (inserted) {
      if (shared != nullptr &&
          shared->find_copy(ctx.key.data(), nschemes, ncells, metrics,
                            ctx.rec_tmp)) {
        // Adopting a shared record mid-group would slot its id between
        // the group's pending lane ids; materialize the group first so
        // the append lands exactly at id (dense order restored).
        flush_group();
        append_record(shard, ctx.rec_tmp, metrics);
      } else {
        ++cur;  // lane `cur` holds this scenario until the group flushes
      }
    }
    ctx.fill.emplace_back(k, id);
  }
  flush_group();
  shard.hits += static_cast<std::uint64_t>(count) - (shard.misses - miss0);
  if (shared != nullptr) shared->publish(shard, nschemes, ncells, metrics);
}

/// One prepared sweep point: the (application, offline result, deadline)
/// triple the Monte-Carlo loop needs. Pointees must outlive the call.
struct PointSpec {
  const Application* app = nullptr;
  const OfflineResult* off = nullptr;
  SimTime deadline{};
  double x = 0.0;
};

int chunk_size_for(const ExperimentConfig& cfg) {
  if (cfg.chunk_runs > 0) return cfg.chunk_runs;
  // Auto: batch enough runs per claim that the shared counter (and the
  // chunk-boundary cache lines of the shared outcome store) are touched
  // O(threads) times per point, not O(runs) — about 8 chunks per worker
  // per point. Floored at 16 so short points still balance, capped so
  // progress ticks and tail imbalance stay bounded. Any value is
  // output-identical; this is purely a scheduling knob.
  const std::int64_t target =
      static_cast<std::int64_t>(cfg.runs) /
      (static_cast<std::int64_t>(std::max(1, cfg.threads)) * 8);
  return static_cast<int>(std::clamp<std::int64_t>(target, 16, 2048));
}

/// Consecutive chunks per atomic claim (WorkerPool claim_batch): when a
/// caller forces very fine chunks (chunk_runs=1 makes one chunk per run),
/// claiming them one by one would put the shared counter back on the
/// per-run path; batching restores O(threads) claims without changing
/// chunk semantics. With auto-sized chunks this stays 1.
int claim_batch_for(std::int64_t total_chunks, int max_workers) {
  const std::int64_t target =
      total_chunks / (static_cast<std::int64_t>(std::max(1, max_workers)) * 32);
  return static_cast<int>(std::clamp<std::int64_t>(target, 1, 64));
}

void validate_config(const ExperimentConfig& cfg) {
  PASERTA_REQUIRE(cfg.runs >= 1, "need at least one run");
  PASERTA_REQUIRE(cfg.threads >= 1, "need at least one worker thread");
  PASERTA_REQUIRE(cfg.chunk_runs >= 0, "chunk_runs must be non-negative");
}

/// Latency buckets of the pool chunk histogram: ~log-spaced 10 us .. 10 s.
constexpr double kChunkSecondsBounds[] = {1e-5, 3e-5, 1e-4, 3e-4, 1e-3,
                                          3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
                                          1.0,  3.0,  10.0};

/// Adds one SimCounters total into "<prefix>.<field>" registry counters.
/// Shard 0 is correct: the flush runs on the driving thread after the
/// parallel section has joined.
void flush_sim_counters(MetricsRegistry& reg, const std::string& prefix,
                        const SimCounters& c) {
  reg.counter(prefix + ".dispatches").add(0, c.dispatches);
  reg.counter(prefix + ".tasks").add(0, c.tasks);
  reg.counter(prefix + ".or_fires").add(0, c.or_fires);
  reg.counter(prefix + ".speed_changes").add(0, c.speed_changes);
  reg.counter(prefix + ".spec_picks").add(0, c.spec_picks);
  reg.counter(prefix + ".greedy_picks").add(0, c.greedy_picks);
  reg.counter(prefix + ".reclaimed_slack_ps").add(0, c.reclaimed_slack_ps);
  // Energy-attribution ledger: per-level time counters, transition counts
  // per (from, to) level pair (only the pairs that fired — an L x L matrix
  // of mostly-zero names would drown the export), and total idle time.
  // With the power table and overheads these rebuild the paper's busy /
  // overhead / idle energy split (attribution_energy).
  for (std::uint32_t l = 0; l < c.levels; ++l) {
    const std::string suffix = ".L" + std::to_string(l);
    reg.counter(prefix + ".busy_ps" + suffix).add(0, c.busy_ps[l]);
    if (c.compute_ps[l] != 0)
      reg.counter(prefix + ".compute_ps" + suffix).add(0, c.compute_ps[l]);
  }
  for (std::uint32_t from = 0; from < c.levels; ++from)
    for (std::uint32_t to = 0; to < c.levels; ++to) {
      const std::uint64_t n = c.transitions[from * c.levels + to];
      if (n != 0)
        reg.counter(prefix + ".transitions.L" + std::to_string(from) + "_L" +
                    std::to_string(to))
            .add(0, n);
    }
  reg.counter(prefix + ".idle_ps").add(0, c.idle_ps);
}

SweepPoint finalize_point(const ExperimentConfig& cfg, const PointSpec& spec,
                          const PointOutcomes& outcomes) {
  SweepPoint point;
  point.x = spec.x;
  point.deadline = spec.deadline;
  point.worst_makespan = spec.off->worst_makespan();
  const std::size_t nschemes = cfg.schemes.size();
  point.stats.resize(nschemes);
  for (std::size_t s = 0; s < nschemes; ++s)
    point.stats[s].scheme = cfg.schemes[s];

  // Accumulate strictly in run order: identical floating-point results for
  // every thread count, chunk size and point interleaving.
  for (std::size_t run = 0; run < outcomes.npm_energy.size(); ++run) {
    point.npm_energy.add(outcomes.npm_energy[run]);
    if (outcomes.degenerate[run]) ++point.degenerate_runs;
    const SchemeOutcome* row = outcomes.schemes.data() + run * nschemes;
    for (std::size_t s = 0; s < nschemes; ++s) {
      const SchemeOutcome& so = row[s];
      SchemeStats& st = point.stats[s];
      if (so.has_norm) st.norm_energy.add(so.norm_energy);
      st.speed_changes.add(so.speed_changes);
      st.finish_frac.add(so.finish_frac);
      if (so.has_fracs) {
        st.busy_frac.add(so.busy_frac);
        st.overhead_frac.add(so.overhead_frac);
        st.idle_frac.add(so.idle_frac);
      }
      if (so.missed) ++st.deadline_misses;
      if (so.verify_failed) ++st.verify_failures;
    }
  }
  return point;
}

/// The shared Monte-Carlo loop: evaluates every (point, run) pair of
/// `specs` by claiming chunked run ranges from the worker pool. The flat
/// chunk space spans all points, so independent points overlap and the
/// pool stays saturated even when `cfg.runs` is small.
std::vector<SweepPoint> run_point_specs(std::span<const PointSpec> specs,
                                        const ExperimentConfig& cfg) {
  validate_config(cfg);
  for (const PointSpec& spec : specs)
    PASERTA_REQUIRE(spec.deadline > SimTime::zero(),
                    "deadline must be positive");
  if (specs.empty()) return {};

  const PowerModel pm(cfg.table, cfg.c_ef, cfg.idle_fraction);
  const int runs = cfg.runs;
  const int chunk = chunk_size_for(cfg);
  // The flat chunk space spans all points, so its size is the *product*
  // of two int-ranged quantities: do the arithmetic in 64 bits and reject
  // configurations whose chunk space does not fit the pool's int chunk
  // indices — before any per-run storage is allocated. (runs + chunk - 1
  // alone can overflow int for runs near INT_MAX.)
  const std::int64_t chunks_per_point64 =
      (static_cast<std::int64_t>(runs) + chunk - 1) / chunk;
  const std::int64_t total_chunks64 =
      chunks_per_point64 * static_cast<std::int64_t>(specs.size());
  PASERTA_REQUIRE(
      total_chunks64 <= std::numeric_limits<int>::max(),
      "chunk space overflows int: " << specs.size() << " points x "
                                    << chunks_per_point64
                                    << " chunks/point (runs=" << runs
                                    << ", chunk=" << chunk
                                    << ") — raise chunk_runs or split the "
                                       "sweep");
  const int chunks_per_point = static_cast<int>(chunks_per_point64);
  const int total_chunks = static_cast<int>(total_chunks64);
  const int max_workers = std::min(cfg.threads, total_chunks);
  const int claim_batch = claim_batch_for(total_chunks64, max_workers);
  const int batch_lanes = batch_lanes_for(cfg);

  // --- Observability. Everything in this block is write-only for the
  // simulation (see the determinism contract in obs/metrics.h): the
  // workers below behave identically whether it is active or not.
  MetricsRegistry* const reg =
      cfg.collect_metrics
          ? (cfg.registry != nullptr ? cfg.registry
                                     : &MetricsRegistry::global())
          : nullptr;
  Tracer* const tracer = cfg.tracer;
  Tracer* const run_tracer =
      (tracer != nullptr && tracer->detail() == Tracer::Detail::kRuns)
          ? tracer
          : nullptr;
  PoolTelemetry tel;
  const PoolTelemetry* telp = nullptr;
  if (reg != nullptr) {
    tel.chunks = &reg->counter("pool.chunks_completed");
    tel.chunk_seconds =
        &reg->histogram("pool.chunk_seconds", kChunkSecondsBounds);
    tel.busy_ns = &reg->counter("pool.busy_ns");
    tel.idle_ns = &reg->counter("pool.idle_ns");
  }
  if (cfg.progress != nullptr) {
    tel.progress = cfg.progress;
    cfg.progress->add_total(total_chunks);
  }
  // Phase profiler: resolve every phase id once, before the workers start
  // (Profiler::phase takes a mutex; the hot paths then index by id). The
  // pool.* phases are top-level — together with harness.compile/finalize
  // they tile this call's wall time; harness.* / batch.* run-phases are
  // nested inside pool.busy.
  Profiler* const prof = cfg.prof;
  RunObs obs_proto;
  int ph_setup = -1;
  if (prof != nullptr) {
    tel.prof = prof;
    tel.ph_claim = prof->phase("pool.claim", /*top_level=*/true);
    tel.ph_busy = prof->phase("pool.busy", /*top_level=*/true);
    tel.ph_idle = prof->phase("pool.idle", /*top_level=*/true);
    ph_setup = prof->phase("harness.setup", /*top_level=*/true);
    obs_proto.prof = prof;
    obs_proto.ph_sample = prof->phase("harness.sample");
    obs_proto.ph_simulate = prof->phase("harness.simulate");
    obs_proto.ph_flush = prof->phase("harness.stage_flush");
    obs_proto.ph_batch_setup = prof->phase("batch.setup");
    obs_proto.ph_batch_drain = prof->phase("batch.drain");
  }
  if (reg != nullptr || cfg.progress != nullptr || prof != nullptr)
    telp = &tel;

  // Everything between here and the pool run that is not sampler
  // compilation is per-run storage allocation and dedup plumbing; charge
  // it as harness.setup (two scope entries, split around the compile) so
  // the top-level phases keep tiling the call.
  auto setup_scope = std::make_optional<ProfScope>(prof, ph_setup, 0);

  // Engine-counter cells, one SimCounters row (schemes + NPM) per
  // (point, slot): each worker accumulates into its own slot's row without
  // synchronization, and the rows are summed in fixed slot order after the
  // join, so the totals are thread-count independent.
  const std::size_t nslots =
      static_cast<std::size_t>(std::max(1, max_workers));
  const std::size_t nschemes = cfg.schemes.size();
  const std::size_t ncells = nschemes + 1;  // + NPM baseline
  std::vector<SimCounters> cells(
      cfg.collect_metrics ? specs.size() * nslots * ncells : 0);

  // Preallocate every per-run slot before the workers start, so the run
  // loop itself writes in place without allocating.
  std::vector<PointOutcomes> outcomes;
  outcomes.reserve(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p)
    outcomes.emplace_back(runs, cfg.schemes.size());

  // One compiled sampler per distinct application: load-sweep points share
  // one graph, so a 10-point sweep compiles exactly one. Compiled up front
  // on the driving thread; workers clone their own private copies from
  // these masters (WorkerCtx::samplers) instead of reading them shared.
  std::vector<std::unique_ptr<ScenarioSampler>> samplers;
  std::vector<const Application*> sampler_apps;
  std::vector<std::size_t> spec_sampler_idx(specs.size());
  {
    TraceSpan span(tracer, 0, "compile_samplers");
    setup_scope.reset();  // close the setup stretch around the compile
    ProfScope ps(prof, prof != nullptr ? prof->phase("harness.compile", true)
                                       : -1,
                 0);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      std::size_t j = 0;
      while (j < sampler_apps.size() && sampler_apps[j] != specs[i].app) ++j;
      if (j == sampler_apps.size()) {
        sampler_apps.push_back(specs[i].app);
        samplers.push_back(
            std::make_unique<ScenarioSampler>(specs[i].app->graph));
      }
      spec_sampler_idx[i] = j;
    }
  }
  setup_scope.emplace(prof, ph_setup, 0);  // dedup plumbing + worker slots

  // Dedup resolution (DESIGN.md §15): the scenario space is a sampler
  // property, so resolve once per distinct application and fan out per
  // spec. When any point dedups, each (point, slot) pair gets a lazily
  // created single-threaded OutcomeShard; with more than one worker, each
  // dedup point additionally gets a shared publish store so slots can
  // adopt each other's simulated records instead of re-simulating.
  std::vector<std::uint8_t> spec_dedup(specs.size(), 0);
  bool any_dedup = false;
  {
    std::vector<std::uint8_t> sampler_dedup(samplers.size(), 0);
    for (std::size_t j = 0; j < samplers.size(); ++j)
      sampler_dedup[j] = dedup_for(cfg, samplers[j]->scenario_space()) ? 1 : 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      spec_dedup[i] = sampler_dedup[spec_sampler_idx[i]];
      any_dedup = any_dedup || spec_dedup[i] != 0;
    }
  }
  std::vector<std::unique_ptr<OutcomeShard>> shards(
      any_dedup ? specs.size() * nslots : 0);
  std::vector<std::unique_ptr<SharedOutcomes>> shared_stores(
      any_dedup && max_workers > 1 ? specs.size() : 0);
  for (std::size_t i = 0; i < shared_stores.size(); ++i)
    if (spec_dedup[i])
      shared_stores[i] = std::make_unique<SharedOutcomes>(
          samplers[spec_sampler_idx[i]]->op_count());

  std::vector<std::unique_ptr<WorkerCtx>> ctxs(nslots);

  const auto body = [&](int c, int slot) {
    auto& ctx = ctxs[static_cast<std::size_t>(slot)];
    if (!ctx) ctx = std::make_unique<WorkerCtx>(cfg, samplers.size());
    const int p = c / chunks_per_point;
    const int first = (c % chunks_per_point) * chunk;
    const int last = std::min(runs, first + chunk);
    const int count = last - first;
    const PointSpec& spec = specs[static_cast<std::size_t>(p)];
    TraceSpan chunk_span(tracer, slot, "chunk", p, first);
    RunObs obs = obs_proto;
    obs.run_tracer = run_tracer;
    obs.slot = slot;
    obs.point = p;
    if (!cells.empty())
      obs.cells = cells.data() +
                  (static_cast<std::size_t>(p) * nslots +
                   static_cast<std::size_t>(slot)) *
                      ncells;
    // The slot's private sampler copy for this point's application,
    // cloned from the shared master on first use.
    const std::size_t sidx = spec_sampler_idx[static_cast<std::size_t>(p)];
    if (!ctx->samplers[sidx])
      ctx->samplers[sidx] = std::make_unique<ScenarioSampler>(*samplers[sidx]);
    // Evaluate the whole chunk into slot-private staging, then flush it
    // into the shared run-major store with one bulk copy per array: the
    // per-run loop touches no shared mutable memory at all. The batched
    // and scalar chunk paths stage bit-identical values (the engines are
    // interchangeable run for run); per-run tracer spans exist only on
    // the scalar path, so kRuns detail keeps it.
    ctx->stage.ensure(chunk, nschemes);
    if (spec_dedup[static_cast<std::size_t>(p)] != 0) {
      // Dedup path (dedup_for already excludes every configuration that
      // needs per-run engine work, including a kRuns tracer). The shard is
      // created by the owning slot's own thread, like the rest of its
      // worker-local state.
      auto& shard = shards[static_cast<std::size_t>(p) * nslots +
                           static_cast<std::size_t>(slot)];
      if (!shard)
        shard = std::make_unique<OutcomeShard>(ctx->samplers[sidx]->op_count());
      SharedOutcomes* const shared =
          shared_stores.empty()
              ? nullptr
              : shared_stores[static_cast<std::size_t>(p)].get();
      if (batch_lanes > 0) {
        evaluate_chunk_dedup_batched(*spec.app, cfg, *spec.off, pm,
                                     spec.deadline, *ctx->samplers[sidx],
                                     first, count, batch_lanes, *ctx, obs,
                                     *shard, shared);
      } else {
        evaluate_chunk_dedup_scalar(*spec.app, cfg, *spec.off, pm,
                                    spec.deadline, *ctx->samplers[sidx],
                                    first, count, *ctx, obs, *shard, shared);
      }
    } else if (batch_lanes > 0 && run_tracer == nullptr) {
      evaluate_chunk_batched(*spec.app, cfg, *spec.off, pm, spec.deadline,
                             *ctx->samplers[sidx], first, count, batch_lanes,
                             *ctx, obs);
    } else {
      for (int run = first; run < last; ++run) {
        const auto i = static_cast<std::size_t>(run - first);
        evaluate_run(*spec.app, cfg, *spec.off, pm, spec.deadline,
                     ctx->samplers[sidx].get(), ctx->policies, *ctx->npm,
                     run, ctx->ws, ctx->sc, ctx->stage.npm_energy[i],
                     ctx->stage.degenerate[i],
                     ctx->stage.schemes.data() + i * nschemes, obs);
      }
    }
    {
      ProfScope ps(obs.prof, obs.ph_flush, slot);
      ctx->stage.flush(outcomes[static_cast<std::size_t>(p)], first, count,
                       nschemes);
    }
  };

  setup_scope.reset();
  {
    TraceSpan span(tracer, 0, "monte_carlo");
    if (max_workers <= 1) {
      // Fully serial: never touches (or instantiates) the process pool.
      WorkerPool::serial_chunks(total_chunks, body, telp);
    } else {
      WorkerPool& pool = WorkerPool::process_pool();
      pool.ensure_threads(max_workers - 1);
      pool.parallel_chunks(total_chunks, max_workers, body, telp,
                           claim_batch);
    }
  }

  std::vector<SweepPoint> points;
  points.reserve(specs.size());
  {
    TraceSpan span(tracer, 0, "finalize");
    ProfScope ps(prof, prof != nullptr ? prof->phase("harness.finalize", true)
                                       : -1,
                 0);
    for (std::size_t p = 0; p < specs.size(); ++p) {
      points.push_back(finalize_point(cfg, specs[p], outcomes[p]));
      if (cfg.collect_metrics) {
        // Sum the slot cells in fixed slot order (integer adds: the order
        // would not matter anyway, but keep it canonical).
        PointMetrics& m = points.back().metrics;
        m.schemes.resize(nschemes);
        for (std::size_t slot = 0; slot < nslots; ++slot) {
          const SimCounters* cell =
              cells.data() + (p * nslots + slot) * ncells;
          for (std::size_t s = 0; s < nschemes; ++s)
            m.schemes[s].add(cell[s]);
          m.npm.add(cell[nschemes]);
        }
      }
      if (spec_dedup[p] != 0) {
        DedupStats& d = points.back().dedup;
        d.enabled = true;
        for (std::size_t slot = 0; slot < nslots; ++slot) {
          const auto& shard = shards[p * nslots + slot];
          if (!shard) continue;
          d.hits += shard->hits;
          d.misses += shard->misses;
          d.bytes += shard->bytes();
        }
        if (!shared_stores.empty() && shared_stores[p])
          d.bytes += shared_stores[p]->bytes();
      }
    }
  }
  if (reg != nullptr) {
    // Counter flushing is part of wrapping the run up — second entry into
    // the finalize phase, so profile attribution covers the whole tail.
    ProfScope ps(prof, prof != nullptr ? prof->phase("harness.finalize", true)
                                       : -1,
                 0);
    for (const SweepPoint& pt : points) {
      for (std::size_t s = 0; s < nschemes; ++s)
        flush_sim_counters(
            *reg, std::string("engine.") + to_string(cfg.schemes[s]),
            pt.metrics.schemes[s]);
      flush_sim_counters(*reg, "engine.NPM", pt.metrics.npm);
    }
    if (any_dedup) {
      std::uint64_t hits = 0, misses = 0, bytes = 0;
      for (const SweepPoint& pt : points) {
        hits += pt.dedup.hits;
        misses += pt.dedup.misses;
        bytes += pt.dedup.bytes;
      }
      reg->counter("engine.dedup.hits").add(0, hits);
      reg->counter("engine.dedup.misses").add(0, misses);
      reg->counter("engine.dedup.bytes").add(0, bytes);
    }
  }
  return points;
}

CanonicalOptions canonical_options(const ExperimentConfig& cfg) {
  CanonicalOptions opt;
  opt.cpus = cfg.cpus;
  opt.overhead_budget = cfg.overheads.worst_case_budget(cfg.table);
  opt.heuristic = cfg.heuristic;
  return opt;
}

SimTime deadline_for(SimTime worst_makespan, double load) {
  PASERTA_REQUIRE(load > 0.0, "load must be positive, got " << load);
  return SimTime{static_cast<std::int64_t>(
      std::ceil(static_cast<double>(worst_makespan.ps) / load))};
}

/// Exports an OfflineCache::get delta as offline.cache.{hits,misses}
/// registry counters (collect_metrics only). Callers snapshot the cache's
/// lifetime counters before their get() calls and pass the snapshot here,
/// so shared caches export each harness call's own lookups, not history.
void export_offline_cache_delta(const ExperimentConfig& cfg,
                                const OfflineCache& cache,
                                std::uint64_t hits0, std::uint64_t misses0) {
  if (!cfg.collect_metrics) return;
  MetricsRegistry& reg =
      cfg.registry != nullptr ? *cfg.registry : MetricsRegistry::global();
  reg.counter("offline.cache.hits").add(0, cache.hits() - hits0);
  reg.counter("offline.cache.misses").add(0, cache.misses() - misses0);
}

}  // namespace

int resolved_batch_lanes(const ExperimentConfig& config) {
  return batch_lanes_for(config);
}

bool resolved_dedup(const ExperimentConfig& config,
                    std::uint64_t scenario_space) {
  return dedup_for(config, scenario_space);
}

SweepPoint run_point(const Application& app, const ExperimentConfig& cfg,
                     SimTime deadline, double x_value, OfflineCache* cache) {
  validate_config(cfg);
  PASERTA_REQUIRE(deadline > SimTime::zero(), "deadline must be positive");

  Profiler* const prof = cfg.prof;
  const int ph_analyze =
      prof != nullptr ? prof->phase("offline.analyze", true) : -1;
  const int ph_apply =
      prof != nullptr ? prof->phase("offline.apply", true) : -1;
  OfflineResult off;
  {
    TraceSpan span(cfg.tracer, 0, "offline_analysis");
    if (cache != nullptr) {
      const std::uint64_t h0 = cache->hits();
      const std::uint64_t m0 = cache->misses();
      const CanonicalAnalysis* canon = nullptr;
      {
        ProfScope ps(prof, ph_analyze, 0);
        canon = &cache->get(app, canonical_options(cfg));
      }
      {
        ProfScope ps(prof, ph_apply, 0);
        off = apply_deadline(*canon, deadline);
      }
      export_offline_cache_delta(cfg, *cache, h0, m0);
    } else {
      OfflineOptions opt;
      opt.cpus = cfg.cpus;
      opt.deadline = deadline;
      opt.overhead_budget = cfg.overheads.worst_case_budget(cfg.table);
      opt.heuristic = cfg.heuristic;
      ProfScope ps(prof, ph_analyze, 0);
      off = analyze_offline(app, opt);
    }
  }

  PointSpec spec;
  spec.app = &app;
  spec.off = &off;
  spec.deadline = deadline;
  spec.x = x_value;
  return run_point_specs({&spec, 1}, cfg).front();
}

SweepPoint run_point_unpooled(const Application& app,
                              const ExperimentConfig& cfg, SimTime deadline,
                              double x_value) {
  validate_config(cfg);
  PASERTA_REQUIRE(deadline > SimTime::zero(), "deadline must be positive");

  const PowerModel pm(cfg.table, cfg.c_ef, cfg.idle_fraction);
  OfflineOptions opt;
  opt.cpus = cfg.cpus;
  opt.deadline = deadline;
  opt.overhead_budget = cfg.overheads.worst_case_budget(cfg.table);
  opt.heuristic = cfg.heuristic;
  const OfflineResult off = analyze_offline(app, opt);

  PointOutcomes outcomes(cfg.runs, cfg.schemes.size());

  const std::size_t nschemes = cfg.schemes.size();
  auto worker = [&](int first, int step) {
    WorkerCtx ctx(cfg, /*sampler_count=*/0);
    // nullptr sampler: the baseline keeps the legacy per-run
    // draw_scenario walk, so it doubles as the sampler's bit-identity
    // reference (tests compare it against the pooled path). Outcomes are
    // written straight into the shared run-major store — the strided,
    // false-sharing-prone layout is part of the pre-pool behaviour this
    // baseline preserves.
    for (int run = first; run < cfg.runs; run += step) {
      const auto r = static_cast<std::size_t>(run);
      evaluate_run(app, cfg, off, pm, deadline, /*sampler=*/nullptr,
                   ctx.policies, *ctx.npm, run, ctx.ws, ctx.sc,
                   outcomes.npm_energy[r], outcomes.degenerate[r],
                   outcomes.schemes.data() + r * nschemes);
    }
  };

  const int threads = std::min(cfg.threads, cfg.runs);
  if (threads <= 1) {
    worker(0, 1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t, threads);
    for (auto& th : pool) th.join();
  }

  PointSpec spec;
  spec.app = &app;
  spec.off = &off;
  spec.deadline = deadline;
  spec.x = x_value;
  return finalize_point(cfg, spec, outcomes);
}

std::vector<SweepPoint> sweep_load(const Application& app,
                                   const ExperimentConfig& cfg,
                                   const std::vector<double>& loads) {
  validate_config(cfg);
  TraceSpan sweep_span(cfg.tracer, 0, "sweep_load");
  // One canonical (round-1) analysis for the whole sweep: only the
  // deadline varies across points, and the deadline enters the offline
  // data solely through the cheap round-2 shift.
  Profiler* const prof = cfg.prof;
  OfflineCache cache;
  const CanonicalAnalysis* canon_ptr = nullptr;
  {
    TraceSpan span(cfg.tracer, 0, "offline_analysis");
    ProfScope ps(prof,
                 prof != nullptr ? prof->phase("offline.analyze", true) : -1,
                 0);
    const std::uint64_t h0 = cache.hits();
    const std::uint64_t m0 = cache.misses();
    canon_ptr = &cache.get(app, canonical_options(cfg));
    export_offline_cache_delta(cfg, cache, h0, m0);
  }
  const CanonicalAnalysis& canon = *canon_ptr;

  const int ph_apply =
      prof != nullptr ? prof->phase("offline.apply", true) : -1;
  std::vector<OfflineResult> offs;
  std::vector<PointSpec> specs;
  offs.reserve(loads.size());
  specs.reserve(loads.size());
  for (double load : loads) {
    const SimTime deadline = deadline_for(canon.worst_makespan(), load);
    {
      ProfScope ps(prof, ph_apply, 0);
      offs.push_back(apply_deadline(canon, deadline));
    }
    PointSpec spec;
    spec.app = &app;
    spec.off = &offs.back();
    spec.deadline = deadline;
    spec.x = load;
    specs.push_back(spec);
  }

  if (cfg.parallel_points) return run_point_specs(specs, cfg);
  std::vector<SweepPoint> points;
  points.reserve(specs.size());
  for (const PointSpec& spec : specs)
    points.push_back(run_point_specs({&spec, 1}, cfg).front());
  return points;
}

std::vector<SweepPoint> sweep_alpha(const Application& app,
                                    const ExperimentConfig& cfg, double load,
                                    const std::vector<double>& alphas) {
  validate_config(cfg);
  // The deadline derives from WCETs only, so it is alpha-independent:
  // compute it once, before any ACET redraw.
  const SimTime w = canonical_worst_makespan(
      app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
      cfg.heuristic);
  const SimTime deadline = deadline_for(w, load);

  // One variant buffer reused across alphas: assign_alpha overwrites every
  // computation node's ACET from its (untouched) WCET, so successive
  // redraws into the same buffer are equivalent to fresh copies. Points
  // therefore run in sequence; their runs still use the worker pool, and
  // each alpha needs its own canonical analysis anyway (ACETs feed the
  // average-case profiles).
  Application variant = app;
  std::vector<SweepPoint> points;
  points.reserve(alphas.size());
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    const double alpha = alphas[i];
    Rng acet_rng(cfg.seed ^ (0x517CC1B727220A95ULL + i));
    assign_alpha(variant.graph, alpha, &acet_rng);
    points.push_back(run_point(variant, cfg, deadline, alpha));
  }
  return points;
}

std::vector<double> sweep_range(double from, double to, double step) {
  PASERTA_REQUIRE(step > 0.0 && from <= to, "invalid sweep range");
  // Integer step index: accumulating `x += step` in floating point drifts
  // across many steps and could emit the endpoint twice when the
  // accumulated value lands within the tolerance just above `to`. The
  // relative tolerance decides whether the endpoint itself sits on the
  // grid (e.g. (1.0 - 0.1) / 0.1 evaluates to 8.999...).
  const double raw = (to - from) / step;
  const auto steps =
      static_cast<std::int64_t>(raw + 1e-9 * std::max(1.0, raw));
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(steps) + 1);
  for (std::int64_t i = 0; i <= steps; ++i)
    xs.push_back(std::min(from + static_cast<double>(i) * step, to));
  return xs;
}

}  // namespace paserta
