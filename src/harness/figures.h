// Registry of the paper's figures as executable experiment definitions.
//
// Each figure of the evaluation section is a (workload, platform, sweep)
// triple. Keeping them in the library — rather than inlined in bench
// binaries — makes the exact configurations unit-testable and reusable
// (CLI, notebooks, regression baselines). bench_fig* binaries are thin
// wrappers over this registry.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace paserta {

struct FigureDef {
  std::string id;        // "fig4a", "fig5b", ...
  std::string caption;
  std::string x_name;    // "load" or "alpha"
  ExperimentConfig config;
  std::vector<double> xs;      // sweep values
  double fixed_load = 0.0;     // for alpha sweeps

  bool is_alpha_sweep() const { return x_name == "alpha"; }
};

/// All figures of the paper's §5, in order: fig4a, fig4b, fig5a, fig5b,
/// fig6a, fig6b. `runs` defaults to the paper's 1000 per point.
std::vector<FigureDef> paper_figures(int runs = 1000);

/// Looks up one figure by id; throws paserta::Error if unknown.
FigureDef paper_figure(const std::string& id, int runs = 1000);

/// Builds the figure's workload (ATR for fig4/fig5, the synthetic Figure-3
/// application for fig6).
Application figure_workload(const FigureDef& figure);

/// Runs the figure end-to-end and returns its sweep points.
std::vector<SweepPoint> run_figure(const FigureDef& figure);

}  // namespace paserta
