// Ablation: number of discrete speed levels between f_min and f_max (the
// paper's §6 planned experiment; Chandrakasan et al. showed a few levels
// suffice). Fewer levels also reduce greedy's switch count — the paper's
// second explanation for GSS's surprising competitiveness.
#include "apps/synthetic.h"
#include "bench_util.h"

using namespace paserta;

int main(int argc, char** argv) {
  const int runs = benchutil::runs_from_args(argc, argv, 500);
  const Application syn = apps::build_synthetic();
  constexpr double kLoad = 0.5;

  std::vector<SweepPoint> points;
  for (std::size_t n_levels : {2u, 3u, 5u, 9u, 17u, 33u, 200u}) {
    const LevelTable table =
        LevelTable::synthetic("n" + std::to_string(n_levels), n_levels,
                              200 * kMHz, 1000 * kMHz, 0.9, 1.8);
    auto cfg = benchutil::paper_config(table, 2, runs);
    const SimTime w = canonical_worst_makespan(
        syn, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table));
    const SimTime deadline{
        static_cast<std::int64_t>(static_cast<double>(w.ps) / kLoad + 1)};
    points.push_back(
        run_point(syn, cfg, deadline, static_cast<double>(n_levels)));
  }
  benchutil::emit("Ablation.levels",
                  "Energy vs number of speed levels, synthetic, 2 CPUs, "
                  "load=0.5, 200MHz..1GHz",
                  points, "n_levels");
  return 0;
}
