// Unit tests for the flat AND/OR graph: construction, queries and the
// structural validator (including OR-join mutual exclusivity).
#include <gtest/gtest.h>

#include "common/error.h"
#include "graph/dot.h"
#include "graph/graph.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

TEST(Graph, AddTaskValidatesTimes) {
  AndOrGraph g;
  EXPECT_THROW(g.add_task("bad", SimTime::zero(), SimTime::zero()), Error);
  EXPECT_THROW(g.add_task("bad", ms(1), ms(2)), Error);  // acet > wcet
  const NodeId t = g.add_task("ok", ms(2), ms(1));
  EXPECT_EQ(g.node(t).kind, NodeKind::Computation);
  EXPECT_EQ(g.node(t).wcet, ms(2));
}

TEST(Graph, EdgesMaintainAdjacency) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const NodeId b = g.add_task("b", ms(1), ms(1));
  g.add_edge(a, b);
  ASSERT_EQ(g.node(a).succs.size(), 1u);
  EXPECT_EQ(g.node(a).succs[0], b);
  ASSERT_EQ(g.node(b).preds.size(), 1u);
  EXPECT_EQ(g.node(b).preds[0], a);
}

TEST(Graph, RejectsSelfAndDuplicateEdges) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const NodeId b = g.add_task("b", ms(1), ms(1));
  EXPECT_THROW(g.add_edge(a, a), Error);
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), Error);
}

TEST(Graph, SourcesAndSinks) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const NodeId b = g.add_task("b", ms(1), ms(1));
  const NodeId c = g.add_task("c", ms(1), ms(1));
  g.add_edge(a, c);
  g.add_edge(b, c);
  EXPECT_EQ(g.sources(), (std::vector<NodeId>{a, b}));
  EXPECT_EQ(g.sinks(), (std::vector<NodeId>{c}));
}

TEST(Graph, TopoOrderRespectsEdges) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const NodeId b = g.add_task("b", ms(1), ms(1));
  const NodeId c = g.add_task("c", ms(1), ms(1));
  g.add_edge(c, b);
  g.add_edge(b, a);
  const auto order = g.topo_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], c);
  EXPECT_EQ(order[1], b);
  EXPECT_EQ(order[2], a);
}

TEST(Graph, TopoOrderDetectsCycle) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const NodeId b = g.add_task("b", ms(1), ms(1));
  g.add_edge(a, b);
  g.add_edge(b, a);  // builds a cycle (add_edge does not check globally)
  EXPECT_THROW(g.topo_order(), Error);
}

TEST(Graph, Totals) {
  AndOrGraph g;
  g.add_task("a", ms(2), ms(1));
  g.add_task("b", ms(3), ms(2));
  g.add_and("j");
  EXPECT_EQ(g.task_count(), 2u);
  EXPECT_EQ(g.total_wcet(), ms(5));
  EXPECT_EQ(g.total_acet(), ms(3));
}

TEST(Graph, FindByName) {
  AndOrGraph g;
  const NodeId a = g.add_task("alpha", ms(1), ms(1));
  EXPECT_EQ(g.find("alpha"), a);
  EXPECT_FALSE(g.find("missing").has_value());
}

TEST(Graph, SetAcetChecksRange) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(4), ms(2));
  g.set_acet(a, ms(3));
  EXPECT_EQ(g.node(a).acet, ms(3));
  EXPECT_THROW(g.set_acet(a, ms(5)), Error);
  const NodeId d = g.add_and("d");
  EXPECT_THROW(g.set_acet(d, ms(1)), Error);
}

// --------------------------------------------------------------- validate

/// A minimal valid OR structure: fork -> {f, g} -> join.
AndOrGraph valid_or_structure() {
  AndOrGraph g;
  const NodeId fork = g.add_or("o3");
  const NodeId f = g.add_task("f", ms(8), ms(6));
  const NodeId gg = g.add_task("g", ms(5), ms(3));
  const NodeId join = g.add_or("o4");
  g.add_or_edge(fork, f, 0.3);
  g.add_or_edge(fork, gg, 0.7);
  g.add_edge(f, join);
  g.add_edge(gg, join);
  return g;
}

TEST(Validate, AcceptsPaperFigure1b) {
  AndOrGraph g = valid_or_structure();
  EXPECT_NO_THROW(g.validate());
}

TEST(Validate, OrForkProbabilitiesMustSumToOne) {
  AndOrGraph g;
  const NodeId fork = g.add_or("o");
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const NodeId b = g.add_task("b", ms(1), ms(1));
  g.add_or_edge(fork, a, 0.3);
  g.add_or_edge(fork, b, 0.3);  // sums to 0.6
  EXPECT_THROW(g.validate(), Error);
}

TEST(Validate, OrForkNeedsProbabilities) {
  AndOrGraph g;
  const NodeId fork = g.add_or("o");
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const NodeId b = g.add_task("b", ms(1), ms(1));
  // Plain edges out of an OR node leave succ_prob empty.
  g.add_edge(fork, a);
  g.add_edge(fork, b);
  EXPECT_THROW(g.validate(), Error);
}

TEST(Validate, OrJoinWithIndependentPredecessorsRejected) {
  // Two tasks that both always execute must not merge at an OR join: the
  // join would fire twice.
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const NodeId b = g.add_task("b", ms(1), ms(1));
  const NodeId join = g.add_or("join");
  g.add_edge(a, join);
  g.add_edge(b, join);
  EXPECT_THROW(g.validate(), Error);
}

TEST(Validate, AndJoinAcrossExclusiveBranchesRejected) {
  // An AND-semantics node fed from two exclusive alternatives deadlocks.
  AndOrGraph g;
  const NodeId fork = g.add_or("fork");
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const NodeId b = g.add_task("b", ms(1), ms(1));
  const NodeId join = g.add_and("join");
  g.add_or_edge(fork, a, 0.5);
  g.add_or_edge(fork, b, 0.5);
  g.add_edge(a, join);
  g.add_edge(b, join);
  EXPECT_THROW(g.validate(), Error);
}

TEST(Validate, NestedExclusivityAccepted) {
  // fork1 -> {a, fork2 -> {b, c} -> join2} -> join1; join1's predecessors
  // (a, join2) are exclusive via fork1.
  AndOrGraph g;
  const NodeId f1 = g.add_or("f1");
  const NodeId a = g.add_task("a", ms(1), ms(1));
  const NodeId f2 = g.add_or("f2");
  const NodeId b = g.add_task("b", ms(1), ms(1));
  const NodeId c = g.add_task("c", ms(1), ms(1));
  const NodeId j2 = g.add_or("j2");
  const NodeId j1 = g.add_or("j1");
  g.add_or_edge(f1, a, 0.4);
  g.add_or_edge(f1, f2, 0.6);
  g.add_or_edge(f2, b, 0.5);
  g.add_or_edge(f2, c, 0.5);
  g.add_edge(b, j2);
  g.add_edge(c, j2);
  g.add_edge(a, j1);
  g.add_edge(j2, j1);
  EXPECT_NO_THROW(g.validate());
}

TEST(Validate, DummyWithExecutionTimeRejected) {
  AndOrGraph g;
  const NodeId d = g.add_and("d");
  g.node(d).wcet = ms(1);  // corrupt it
  EXPECT_THROW(g.validate(), Error);
}

TEST(Validate, EmptyGraphRejected) {
  AndOrGraph g;
  EXPECT_THROW(g.validate(), Error);
}

TEST(Validate, ProbabilityOutOfRangeRejected) {
  AndOrGraph g;
  const NodeId fork = g.add_or("o");
  const NodeId a = g.add_task("a", ms(1), ms(1));
  EXPECT_THROW(g.add_or_edge(fork, a, 1.5), Error);
  EXPECT_THROW(g.add_or_edge(fork, a, 0.0), Error);
}

// -------------------------------------------------------------------- dot

TEST(Dot, ContainsShapesAndProbabilities) {
  AndOrGraph g = valid_or_structure();
  const std::string dot = to_dot(g, "fig1b");
  EXPECT_NE(dot.find("digraph \"fig1b\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // OR nodes
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);  // tasks
  EXPECT_NE(dot.find("30%"), std::string::npos);
  EXPECT_NE(dot.find("70%"), std::string::npos);
}

}  // namespace
}  // namespace paserta
