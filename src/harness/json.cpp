#include "harness/json.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace paserta {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream oss;
  oss << std::setprecision(12) << v;
  return oss.str();
}

void write_stat(std::ostream& os, const char* key, const RunningStat& st) {
  os << "\"" << key << "\":{\"mean\":" << num(st.mean())
     << ",\"ci95\":" << num(st.ci95_halfwidth()) << ",\"min\":"
     << num(st.min()) << ",\"max\":" << num(st.max()) << ",\"n\":"
     << st.count() << "}";
}

}  // namespace

void write_sweep_json(std::ostream& os, const std::vector<SweepPoint>& points,
                      const JsonExportOptions& opt) {
  os << "{\"experiment\":\"" << escape(opt.experiment_id) << "\","
     << "\"caption\":\"" << escape(opt.caption) << "\","
     << "\"x_name\":\"" << escape(opt.x_name) << "\",\"points\":[";
  for (std::size_t p = 0; p < points.size(); ++p) {
    const SweepPoint& pt = points[p];
    if (p) os << ",";
    os << "{\"" << escape(opt.x_name) << "\":" << num(pt.x)
       << ",\"deadline_ms\":" << num(pt.deadline.ms())
       << ",\"worst_makespan_ms\":" << num(pt.worst_makespan.ms()) << ",";
    write_stat(os, "npm_energy_joules", pt.npm_energy);
    os << ",\"schemes\":{";
    for (std::size_t s = 0; s < pt.stats.size(); ++s) {
      const SchemeStats& st = pt.stats[s];
      if (s) os << ",";
      os << "\"" << to_string(st.scheme) << "\":{";
      write_stat(os, "norm_energy", st.norm_energy);
      os << ",";
      write_stat(os, "speed_changes", st.speed_changes);
      os << ",";
      write_stat(os, "finish_frac", st.finish_frac);
      os << ",\"deadline_misses\":" << st.deadline_misses
         << ",\"verify_failures\":" << st.verify_failures << "}";
    }
    os << "}}";
  }
  os << "]}";
}

std::string sweep_to_json(const std::vector<SweepPoint>& points,
                          const JsonExportOptions& options) {
  std::ostringstream oss;
  write_sweep_json(oss, points, options);
  return oss.str();
}

}  // namespace paserta
