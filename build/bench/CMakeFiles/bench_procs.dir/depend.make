# Empty dependencies file for bench_procs.
# This may be replaced when dependencies are built.
