// Adaptive speculation under heavy control-flow variance.
//
//   $ ./adaptive_branching
//
// Builds an application whose alternative paths differ wildly in length
// (a short "cache hit" path vs a long "full recompute" path, plus a
// data-dependent refinement loop) — the situation §4.2 motivates — and
// shows how AS re-speculates at each OR node while SS1 is stuck with one
// whole-application average. Prints the per-task speed decisions of both.
#include <iostream>

#include "core/offline.h"
#include "sim/engine.h"

using namespace paserta;

namespace {

Application build_app() {
  // Short path: one 2ms touch-up. Long path: an 18ms pipeline with
  // internal parallelism.
  Program short_path;
  short_path.task("touch_up", SimTime::from_ms(2), SimTime::from_ms(1));

  Program long_path;
  long_path.parallel({{"recompute_a", SimTime::from_ms(9), SimTime::from_ms(7)},
                      {"recompute_b", SimTime::from_ms(9), SimTime::from_ms(7)}});
  long_path.task("merge", SimTime::from_ms(4), SimTime::from_ms(3));

  Program refine_body;
  refine_body.task("refine", SimTime::from_ms(3), SimTime::from_ms(2));

  Program p;
  p.task("ingest", SimTime::from_ms(3), SimTime::from_ms(2));
  p.branch("cache", {{0.7, std::move(short_path)}, {0.3, std::move(long_path)}});
  p.loop("refinement", std::move(refine_body), {0.5, 0.3, 0.2});
  p.task("emit", SimTime::from_ms(2), SimTime::from_ms(1));
  return build_application("adaptive_branching", p);
}

void show_run(const Application& app, const OfflineResult& off,
              const PowerModel& pm, const Overheads& ovh, Scheme scheme,
              const RunScenario& sc) {
  const SimResult r = simulate(app, off, pm, ovh, scheme, sc);
  std::cout << to_string(scheme) << ": energy " << r.total_energy() * 1e3
            << " mJ, " << r.speed_changes << " switch(es), finish "
            << to_string(r.finish_time) << "\n";
  for (const TaskRecord& rec : r.trace) {
    const Node& n = app.graph.node(rec.node);
    if (n.is_dummy()) {
      if (n.is_or_fork())
        std::cout << "    [" << n.name << " -> alternative "
                  << rec.chosen_alt << " @" << to_string(rec.dispatch_time)
                  << "]\n";
      continue;
    }
    std::cout << "    " << n.name << " @cpu" << rec.cpu << " "
              << to_string(rec.dispatch_time) << " .. "
              << to_string(rec.finish) << "  @"
              << pm.table().level(rec.level).freq / kMHz << "MHz"
              << (rec.switched ? " (switched)" : "") << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const Application app = build_app();
  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;

  OfflineOptions opt;
  opt.cpus = 2;
  opt.overhead_budget = ovh.worst_case_budget(pm.table());
  opt.deadline =
      canonical_worst_makespan(app, opt.cpus, opt.overhead_budget) * 2;
  const OfflineResult off = analyze_offline(app, opt);

  std::cout << "W = " << to_string(off.worst_makespan())
            << ", A = " << to_string(off.average_makespan())
            << ", D = " << to_string(off.deadline()) << "\n\n";

  // A scenario that takes the SHORT path: AS discovers the windfall at the
  // fork and slows down; SS1 keeps its static floor.
  Rng rng(11);
  RunScenario sc = draw_scenario(app.graph, rng);
  for (NodeId id : app.graph.all_nodes())
    if (app.graph.node(id).name == "cache_fork") sc.or_choice[id.value] = 0;

  std::cout << "--- short path taken ---\n";
  show_run(app, off, pm, ovh, Scheme::SS1, sc);
  show_run(app, off, pm, ovh, Scheme::AS, sc);

  for (NodeId id : app.graph.all_nodes())
    if (app.graph.node(id).name == "cache_fork") sc.or_choice[id.value] = 1;
  std::cout << "--- long path taken ---\n";
  show_run(app, off, pm, ovh, Scheme::SS1, sc);
  show_run(app, off, pm, ovh, Scheme::AS, sc);
  return 0;
}
