// Offline phase of the AND/OR greedy slack-sharing algorithm (paper §3.2),
// split into two phases so sweeps do not repeat deadline-independent work.
//
// Phase 1 — *canonical* (round 1): builds canonical LTF schedules for every
// program section (WCETs at f_max, inflated by a per-dispatch overhead
// budget so the online guarantee survives speed-computation and
// voltage-switch costs), derives the execution order (EO) of every node —
// including the OR rules: an OR node's EO is one past the largest EO of its
// predecessors, and tasks on different alternatives of the same fork share
// EO values — and collects the per-path worst/average remaining times
// stored at the power-management points. Nothing in this phase depends on
// the deadline, so a sweep over deadlines (paper §5.1: D = W / load) runs
// it exactly once; see analyze_canonical / OfflineCache.
//
// Phase 2 — *shift* (round 2): shifts every canonical schedule (recursively
// through embedded OR structures) so it finishes exactly at the deadline,
// yielding each node's latest start time LST(i): the time it must start for
// the rest of the shifted schedule to meet the deadline. The online phase
// claims slack for a task as LST(i) - t. This phase is a cheap linear walk
// over the cached canonical schedules; see apply_deadline.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/list_sched.h"
#include "graph/program.h"
#include "power/power_model.h"

namespace paserta {

struct OfflineOptions {
  int cpus = 2;
  /// Application deadline D. Must be positive.
  SimTime deadline{};
  /// Per-dispatch worst-case overhead budget added to every task's WCET
  /// (and ACET) in canonical schedules; normally
  /// Overheads::worst_case_budget(table).
  SimTime overhead_budget{};
  /// Priority rule for the canonical schedules. The online phase preserves
  /// whatever execution order this produced (paper §3.2: "given any
  /// heuristic, if the off-line phase does not fail, the following on-line
  /// phase can be applied under the same heuristic").
  ListHeuristic heuristic = ListHeuristic::LongestTaskFirst;
};

/// The deadline-independent subset of OfflineOptions: everything phase 1
/// depends on. Two analyses with equal CanonicalOptions on the same graph
/// are interchangeable — the basis of OfflineCache's key.
struct CanonicalOptions {
  int cpus = 2;
  SimTime overhead_budget{};
  ListHeuristic heuristic = ListHeuristic::LongestTaskFirst;
};

/// Remaining-time profile attached to an OR fork's power-management point:
/// per alternative, the worst/average time from the fork to the end of the
/// application along that path (the paper's w_p and a_p).
struct OrForkProfile {
  std::vector<SimTime> rem_w_alt;
  std::vector<SimTime> rem_a_alt;
};

class OfflineAnalyzer;  // offline.cpp: the sole writer of the types below
struct CanonicalData;   // offline.cpp: phase-1 payload (segment schedules)

/// Per-node kind flags in OfflineResult::node_flag_table(), precomputed so
/// the engine's dispatch loop never touches the pointer-heavy Node structs.
enum NodeFlag : std::uint8_t {
  kNodeFlagDummy = 1u,   // AND/OR node: executes in zero time
  kNodeFlagOrFork = 2u,  // OR node with more than one successor
  kNodeFlagOrNode = 4u,  // OR node of any arity (EO may jump ahead)
};

/// Immutable result of phase 1 for one (application, CanonicalOptions)
/// pair. Holds pointers into the application's structure, so the
/// Application object must outlive every CanonicalAnalysis derived from it
/// (sweeps keep the app alive for their whole duration). Copies share the
/// underlying payload; the type is cheap to pass by value.
class CanonicalAnalysis {
 public:
  CanonicalAnalysis() = default;

  bool valid() const { return data_ != nullptr; }
  /// W: canonical worst-case finish time along the longest path.
  SimTime worst_makespan() const;
  /// A: probability-weighted average-case finish time of the application.
  SimTime average_makespan() const;
  int cpus() const;
  SimTime overhead_budget() const;
  ListHeuristic heuristic() const;
  /// The application this analysis was computed for.
  const Application& application() const;

 private:
  friend class OfflineAnalyzer;
  std::shared_ptr<const CanonicalData> data_;
};

class OfflineResult {
 public:
  int cpus() const { return cpus_; }
  SimTime deadline() const { return deadline_; }
  SimTime overhead_budget() const { return overhead_budget_; }

  /// W: canonical worst-case finish time along the longest path.
  SimTime worst_makespan() const { return worst_makespan_; }
  /// A: probability-weighted average-case finish time of the application.
  SimTime average_makespan() const { return average_makespan_; }
  /// Whether W <= D (the offline phase "fails" otherwise; online schemes
  /// then cannot guarantee the deadline).
  bool feasible() const { return worst_makespan_ <= deadline_; }

  std::uint32_t eo(NodeId id) const { return eo_.at(id.value); }
  SimTime lst(NodeId id) const { return lst_.at(id.value); }
  /// Estimated end time: LST + inflated WCET (worst-case finish in the
  /// shifted schedule) — what the online phase allocates to the task.
  SimTime eet(NodeId id) const { return eet_.at(id.value); }
  SimTime inflated_wcet(NodeId id) const { return inflated_wcet_.at(id.value); }

  /// Expected average-case remaining time *after* the given OR node fires
  /// (for OR joins; for forks prefer fork_profile(), which conditions on
  /// the chosen alternative).
  SimTime rem_a_after(NodeId id) const { return rem_a_.at(id.value); }
  SimTime rem_w_after(NodeId id) const { return rem_w_.at(id.value); }

  const OrForkProfile& fork_profile(NodeId fork) const {
    return fork_profiles_.at(fork.value);
  }
  bool has_fork_profile(NodeId id) const {
    return fork_profiles_.contains(id.value);
  }

  std::uint32_t max_eo() const { return max_eo_; }

  /// Whole-table views for the simulation engine's hot path (one bounds
  /// check per run instead of one per dispatch).
  const std::vector<std::uint32_t>& eo_table() const { return eo_; }
  const std::vector<SimTime>& eet_table() const { return eet_; }

  /// Initial NUP (number of unfinished predecessors) per node: preds for
  /// AND/computation nodes, min(1, preds) for OR nodes (Figure 2
  /// initialization). Precomputed in phase 1 so the engine resets its
  /// per-run counters with one memcpy instead of re-walking the Node
  /// structs; the debug completeness traversal reuses it too.
  const std::vector<std::uint32_t>& nup_init_table() const {
    return nup_init_;
  }
  /// Nodes whose initial NUP is zero, in ascending id order — the engine's
  /// initial ready set.
  const std::vector<std::uint32_t>& source_table() const { return sources_; }

  /// Per-node NodeFlag masks (dummy / OR fork / OR node) — the dispatch
  /// loop's replacement for Node::kind and the is_* predicates.
  const std::vector<std::uint8_t>& node_flag_table() const {
    return node_flags_;
  }
  /// Raw (uninflated) WCET per node, the quantity the online phase sizes
  /// speeds against (zero for dummy nodes).
  const std::vector<SimTime>& wcet_table() const { return wcet_; }
  /// Flattened successor adjacency in CSR form: the successors of node v
  /// are succ_list_table()[succ_offset_table()[v] ..
  /// succ_offset_table()[v+1]]. Successor order matches Node::succs, so OR
  /// forks index alternatives identically.
  const std::vector<std::uint32_t>& succ_offset_table() const {
    return succ_off_;
  }
  const std::vector<std::uint32_t>& succ_list_table() const {
    return succ_flat_;
  }

 private:
  // Populated exclusively by OfflineAnalyzer (offline.cpp), so results can
  // only come out of analyze_offline / apply_deadline — nothing can bypass
  // the canonical cache by poking fields.
  friend class OfflineAnalyzer;

  int cpus_ = 0;
  SimTime deadline_{};
  SimTime overhead_budget_{};
  SimTime worst_makespan_{};
  SimTime average_makespan_{};
  std::vector<std::uint32_t> eo_;
  std::vector<std::uint32_t> nup_init_;
  std::vector<std::uint32_t> sources_;
  std::vector<std::uint8_t> node_flags_;
  std::vector<SimTime> wcet_;
  std::vector<std::uint32_t> succ_off_;
  std::vector<std::uint32_t> succ_flat_;
  std::vector<SimTime> lst_;
  std::vector<SimTime> eet_;
  std::vector<SimTime> inflated_wcet_;
  std::vector<SimTime> rem_a_;
  std::vector<SimTime> rem_w_;
  std::unordered_map<std::uint32_t, OrForkProfile> fork_profiles_;
  std::uint32_t max_eo_ = 0;
};

/// Phase 1: canonical schedules, makespans, EOs, PMP profiles. Throws
/// paserta::Error on invalid options. Increments canonical_analysis_count().
CanonicalAnalysis analyze_canonical(const Application& app,
                                    const CanonicalOptions& options);

/// Phase 2: derives the per-deadline OfflineResult (LST/EET shift) from a
/// cached phase-1 analysis. Cheap (linear in graph size); call it once per
/// sweep point against one shared CanonicalAnalysis.
OfflineResult apply_deadline(const CanonicalAnalysis& canonical,
                             SimTime deadline);

/// Runs both offline rounds (analyze_canonical + apply_deadline). Throws
/// paserta::Error on invalid options.
OfflineResult analyze_offline(const Application& app,
                              const OfflineOptions& options);

/// Convenience: canonical worst-case makespan only (used to derive a
/// deadline from a load factor: D = W / load).
SimTime canonical_worst_makespan(
    const Application& app, int cpus, SimTime overhead_budget,
    ListHeuristic heuristic = ListHeuristic::LongestTaskFirst);

/// Process-wide count of phase-1 (round 1) analyses performed. Test hook:
/// lets sweeps assert they ran exactly one canonical analysis. Monotonic;
/// take a before/after difference rather than resetting.
std::uint64_t canonical_analysis_count();

/// Memoizes analyze_canonical per (graph identity, cpus, overhead_budget,
/// heuristic). Graph identity is the graph object's address: the cache is
/// meant to be scoped to one sweep (or one driver) that keeps its
/// applications alive and unmodified; do not cache across mutations of the
/// same graph object (sweep_alpha redraws ACETs, so it must NOT reuse a
/// cache entry across alphas — it keys nothing here and analyzes fresh).
/// Not thread-safe; confine one cache to one driving thread.
class OfflineCache {
 public:
  /// Returns the cached analysis for (app.graph, options), computing and
  /// inserting it on first use.
  const CanonicalAnalysis& get(const Application& app,
                               const CanonicalOptions& options);
  std::size_t size() const { return entries_.size(); }

  /// Lifetime get() statistics: lookups served from the cache vs. lookups
  /// that ran a fresh canonical analysis. Exposed so harness callers can
  /// export them as offline.cache.{hits,misses} registry counters
  /// (ExperimentConfig::collect_metrics) instead of relying on the
  /// canonical_analysis_count() test hook.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Key {
    const void* graph = nullptr;
    int cpus = 0;
    std::int64_t overhead_budget_ps = 0;
    ListHeuristic heuristic = ListHeuristic::LongestTaskFirst;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  std::unordered_map<Key, CanonicalAnalysis, KeyHash> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace paserta
