// End-to-end tests for the resident simulation service (src/serve):
// protocol parsing, the service core (coalescing, cross-request caching,
// backpressure, graceful drain) and the socket front-end (NDJSON + HTTP,
// concurrent clients, timeouts). The bit-identity case pins the serve
// contract: a result's "experiment" document is byte-for-byte what
// `paserta_cli sweep --json` prints for the same point. Labeled
// serve_smoke; CI runs it in the Release and TSan jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/atr.h"
#include "common/error.h"
#include "common/version.h"
#include "harness/experiment.h"
#include "harness/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"

namespace paserta {
namespace {

constexpr int kRuns = 20;  // small Monte-Carlo load: these are smoke tests

std::string atr_request(double load = 0.5, int runs = kRuns,
                        const std::string& extra = "") {
  return "{\"graph\":\"@atr\",\"runs\":" + std::to_string(runs) +
         ",\"load\":" + std::to_string(load) + extra + "}";
}

std::uint64_t counter(SimService& service, const std::string& name) {
  for (const auto& row : service.registry().snapshot().counters)
    if (row.name == name) return row.value;
  return 0;
}

/// The exact document the offline CLI prints for this point:
/// `paserta_cli sweep @atr --json --runs R --from L --to L --step 1`
/// (minus the trailing newline the CLI adds after the document).
std::string expected_cli_document(double load, int runs) {
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::transmeta_tm5400();
  cfg.runs = runs;
  cfg.seed = 1;
  const std::vector<SweepPoint> points =
      sweep_load(apps::build_atr(), cfg, {load});
  JsonExportOptions jopt;
  jopt.experiment_id = "atr-load";
  jopt.caption = "paserta_cli sweep";
  jopt.x_name = "load";
  return sweep_to_json(points, jopt);
}

// ----------------------------------------------------------- protocol

TEST(ServeProtocol, ParsesMinimalAndFullRequests) {
  const ServeLimits limits;
  const SimRequest min = parse_request("{\"graph\":\"@atr\"}", limits);
  EXPECT_EQ(min.command, "simulate");
  EXPECT_EQ(min.graph, "@atr");
  EXPECT_EQ(min.cpus, 2);
  EXPECT_EQ(min.runs, 200);
  EXPECT_DOUBLE_EQ(min.load, 0.5);
  EXPECT_TRUE(min.schemes.empty());  // = the CLI's default five

  const SimRequest full = parse_request(
      "{\"id\":\"r1\",\"graph\":{\"text\":\"task T 4 2\\n\"},"
      "\"table\":\"xscale\",\"cpus\":4,\"runs\":7,\"seed\":9,"
      "\"heuristic\":\"stf\",\"schemes\":[\"gss\",\"as\"],"
      "\"deadline_ms\":12.5}",
      limits);
  EXPECT_EQ(full.id_json, "\"r1\"");
  EXPECT_TRUE(full.graph_is_text);
  EXPECT_EQ(full.table, "xscale");
  EXPECT_EQ(full.cpus, 4);
  EXPECT_EQ(full.runs, 7);
  EXPECT_EQ(full.seed, 9u);
  EXPECT_EQ(full.heuristic, ListHeuristic::ShortestTaskFirst);
  EXPECT_EQ(full.schemes,
            (std::vector<Scheme>{Scheme::GSS, Scheme::AS}));
  ASSERT_TRUE(full.deadline_ms.has_value());
  EXPECT_DOUBLE_EQ(*full.deadline_ms, 12.5);
}

TEST(ServeProtocol, RejectsInvalidRequests) {
  const ServeLimits limits;
  // Malformed JSON surfaces the parser's byte offset.
  try {
    parse_request("{\"graph\": nope}", limits);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
  EXPECT_THROW(parse_request("[1,2]", limits), Error);
  EXPECT_THROW(parse_request("{\"cmd\":\"drop\"}", limits), Error);
  EXPECT_THROW(parse_request("{\"graph\":\"no-at-prefix\"}", limits), Error);
  EXPECT_THROW(parse_request("{\"graph\":\"@nope\",\"cpus\":0}", limits),
               Error);
  EXPECT_THROW(parse_request("{\"graph\":\"@atr\",\"runs\":1.5}", limits),
               Error);
  EXPECT_THROW(parse_request("{\"graph\":\"@atr\",\"schemes\":[]}", limits),
               Error);
  EXPECT_THROW(
      parse_request("{\"graph\":\"@atr\",\"load\":0.5,\"deadline_ms\":1}",
                    limits),
      Error);
  EXPECT_THROW(parse_request("{\"graph\":\"@atr\",\"load\":1.5}", limits),
               Error);
  EXPECT_THROW(parse_request("{\"graph\":\"@atr\",\"id\":[1]}", limits),
               Error);
  // Size limits: request line and inline graph text.
  ServeLimits tiny;
  tiny.max_request_bytes = 16;
  EXPECT_THROW(parse_request(atr_request(), tiny), Error);
  ServeLimits small_graph;
  small_graph.max_graph_text_bytes = 4;
  EXPECT_THROW(
      parse_request("{\"graph\":{\"text\":\"task T 4 2\\n\"}}", small_graph),
      Error);
}

TEST(ServeProtocol, RendersSingleLineResponses) {
  const std::string err = render_error("42", "bad_request", "broken\nthing");
  EXPECT_EQ(err.find('\n'), std::string::npos);
  const JsonValue v = json_parse(err);
  EXPECT_DOUBLE_EQ(v.at("id").number, 42.0);
  EXPECT_EQ(v.at("type").str, "error");
  EXPECT_EQ(v.at("code").str, "bad_request");
  EXPECT_EQ(v.at("message").str, "broken\nthing");

  const JsonValue hello = json_parse(render_hello("\"h\""));
  EXPECT_EQ(hello.at("type").str, "hello");
  EXPECT_EQ(hello.at("git_rev").str, build_git_rev());
  EXPECT_EQ(hello.at("build").str, build_type());
  EXPECT_DOUBLE_EQ(hello.at("proto").number, 1.0);
}

TEST(ServeProtocol, HashHexIsFixedWidthLowercase) {
  EXPECT_EQ(hash_hex(0), "0000000000000000");
  EXPECT_EQ(hash_hex(0xABCDEF0123456789ull), "abcdef0123456789");
}

// ------------------------------------------------------------ service

TEST(ServeService, HelloAndParseErrorsResolveImmediately) {
  SimService service(ServeSettings{});
  const std::string hello =
      service.submit("{\"id\":7,\"cmd\":\"hello\"}").get();
  EXPECT_EQ(json_parse(hello).at("type").str, "hello");
  EXPECT_DOUBLE_EQ(json_parse(hello).at("id").number, 7.0);

  const std::string err = service.submit("{oops").get();
  EXPECT_EQ(json_parse(err).at("code").str, "bad_request");
  EXPECT_EQ(counter(service, "serve.bad_requests"), 1u);
}

TEST(ServeService, ResultBitIdenticalToOfflineCli) {
  SimService service(ServeSettings{});
  const std::string response = service.submit(atr_request()).get();
  const std::string expected = expected_cli_document(0.5, kRuns);
  const std::string marker = "\"experiment\":";
  const std::size_t at = response.find(marker);
  ASSERT_NE(at, std::string::npos);
  // The spliced document runs to the response's final '}'.
  const std::string spliced =
      response.substr(at + marker.size(),
                      response.size() - (at + marker.size()) - 1);
  EXPECT_EQ(spliced, expected);  // byte-for-byte
  const JsonValue v = json_parse(response);
  EXPECT_EQ(v.at("type").str, "result");
  EXPECT_EQ(v.at("graph_hash").str.size(), 16u);
}

TEST(ServeService, CrossRequestCacheHitsAreObservable) {
  SimService service(ServeSettings{});
  service.submit(atr_request()).get();
  const std::uint64_t misses_after_first =
      counter(service, "offline.cache.misses");
  const std::uint64_t hits_after_first = counter(service, "offline.cache.hits");
  EXPECT_GE(misses_after_first, 1u);

  service.submit(atr_request()).get();
  // Second identical request: canonical analysis comes from the cache —
  // hits grow, misses do not.
  EXPECT_EQ(counter(service, "offline.cache.misses"), misses_after_first);
  EXPECT_GT(counter(service, "offline.cache.hits"), hits_after_first);
  // And the graph store interned the second parse onto the first object.
  EXPECT_EQ(counter(service, "serve.graph_interned"), 1u);
}

TEST(ServeService, CoalescesIdenticalPendingRequests) {
  SimService service(ServeSettings{});
  service.pause_dispatch();
  auto f1 = service.submit(atr_request());
  auto f2 = service.submit(atr_request());
  auto f3 = service.submit(atr_request());
  auto other = service.submit(atr_request(0.8));
  EXPECT_EQ(service.queue_depth(), 4u);
  service.resume_dispatch();

  const std::string r1 = f1.get(), r2 = f2.get(), r3 = f3.get();
  const std::string r_other = other.get();
  // The three identical requests shared one simulation...
  EXPECT_EQ(counter(service, "serve.coalesced"), 2u);
  EXPECT_DOUBLE_EQ(json_parse(r1).at("coalesced").number, 2.0);
  // ...and their experiment documents are identical bytes (elapsed_ms
  // may differ, the simulation result may not).
  const auto doc = [](const std::string& r) {
    return r.substr(r.find("\"experiment\":"));
  };
  EXPECT_EQ(doc(r1), doc(r2));
  EXPECT_EQ(doc(r2), doc(r3));
  EXPECT_NE(doc(r1), doc(r_other));
  EXPECT_EQ(counter(service, "serve.batches"), 1u);
}

TEST(ServeService, BackpressureRejectsBeyondQueueLimit) {
  ServeSettings settings;
  settings.queue_limit = 2;
  SimService service(settings);
  service.pause_dispatch();
  auto f1 = service.submit(atr_request(0.4));
  auto f2 = service.submit(atr_request(0.5));
  auto f3 = service.submit(atr_request(0.6));  // over the limit
  const JsonValue rejected = json_parse(f3.get());
  EXPECT_EQ(rejected.at("type").str, "error");
  EXPECT_EQ(rejected.at("code").str, "overloaded");
  EXPECT_EQ(counter(service, "serve.rejected"), 1u);
  service.resume_dispatch();
  EXPECT_EQ(json_parse(f1.get()).at("type").str, "result");
  EXPECT_EQ(json_parse(f2.get()).at("type").str, "result");
}

TEST(ServeService, GracefulShutdownDrainsPendingRequests) {
  auto service = std::make_unique<SimService>(ServeSettings{});
  service->pause_dispatch();
  std::vector<std::shared_future<std::string>> futures;
  for (int i = 0; i < 3; ++i)
    futures.push_back(service->submit(atr_request(0.4 + 0.1 * i)));
  // shutdown() must drain the paused queue before stopping.
  service->shutdown();
  for (auto& f : futures)
    EXPECT_EQ(json_parse(f.get()).at("type").str, "result");
  // After shutdown, new submissions are turned away in order.
  const JsonValue late = json_parse(service->submit(atr_request()).get());
  EXPECT_EQ(late.at("code").str, "shutting_down");
}

TEST(ServeService, AsyncGraphAndConfigErrorsAreStructured) {
  SimService service(ServeSettings{});
  // Graph text parse errors surface from the dispatcher.
  const JsonValue bad_text = json_parse(
      service.submit("{\"graph\":{\"text\":\"task broken\"}}").get());
  EXPECT_EQ(bad_text.at("type").str, "error");
  EXPECT_EQ(bad_text.at("code").str, "bad_request");
  // Unknown builtin, same path.
  const JsonValue bad_builtin =
      json_parse(service.submit("{\"graph\":\"@nope\"}").get());
  EXPECT_EQ(bad_builtin.at("code").str, "bad_request");
  EXPECT_EQ(counter(service, "serve.bad_requests"), 2u);
}

TEST(ServeService, InlineTextMatchesEquivalentRun) {
  // An inline graph simulates and renders under its own app name.
  SimService service(ServeSettings{});
  const std::string response =
      service
          .submit("{\"graph\":{\"text\":\"app tiny\\ntask T 4 2\\n\"},"
                  "\"runs\":5}")
          .get();
  const JsonValue v = json_parse(response);
  EXPECT_EQ(v.at("type").str, "result");
  EXPECT_EQ(v.at("experiment").at("experiment").str, "tiny-load");
}

TEST(ServeService, MetricsTextCarriesProvenanceHeader) {
  SimService service(ServeSettings{});
  service.submit(atr_request()).get();
  const std::string text = service.metrics_text();
  EXPECT_EQ(text.rfind("# " + build_version_string(), 0), 0u);
  EXPECT_NE(text.find("serve_requests 1"), std::string::npos);
}

TEST(ServeService, TracerRecordsRequestSpans) {
  Tracer tracer;
  ServeSettings settings;
  settings.tracer = &tracer;
  {
    SimService service(settings);
    service.submit(atr_request()).get();
    service.submit(atr_request()).get();
    service.shutdown();
  }
  int request_spans = 0, batch_spans = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (std::string(e.name) == "serve.request") ++request_spans;
    if (std::string(e.name) == "serve.batch") ++batch_spans;
  }
  EXPECT_EQ(request_spans, 2);
  EXPECT_GE(batch_spans, 1);
}

// ------------------------------------------------------------- server

TEST(ServeServer, EphemeralPortAndHello) {
  SimService service(ServeSettings{});
  SimServer server(service, ServerSettings{});
  EXPECT_NE(server.port(), 0);
  ServeClient client(server.port());
  ASSERT_TRUE(client.connected());
  const JsonValue hello =
      json_parse(client.request("{\"id\":\"x\",\"cmd\":\"hello\"}"));
  EXPECT_EQ(hello.at("type").str, "hello");
  EXPECT_EQ(hello.at("git_rev").str, build_git_rev());
}

TEST(ServeServer, NdjsonResultMatchesCliBytes) {
  SimService service(ServeSettings{});
  SimServer server(service, ServerSettings{});
  ServeClient client(server.port());
  const std::string response = client.request(atr_request());
  const std::string expected = expected_cli_document(0.5, kRuns);
  EXPECT_NE(response.find("\"experiment\":" + expected), std::string::npos);
}

TEST(ServeServer, HttpMetricsAndSimulate) {
  SimService service(ServeSettings{});
  SimServer server(service, ServerSettings{});
  // Metrics exposition over HTTP, with the provenance header.
  const std::string metrics = http_request(server.port(), "/metrics");
  EXPECT_EQ(metrics.rfind("# " + build_version_string(), 0), 0u);
  // One simulate via POST.
  const std::string body =
      http_request(server.port(), "/simulate", atr_request() + "\n");
  const JsonValue v = json_parse(body);
  EXPECT_EQ(v.at("type").str, "result");
  // Unknown path 404s without killing the server: metrics still answer.
  http_request(server.port(), "/nope");
  EXPECT_NE(http_request(server.port(), "/metrics").find("serve_requests"),
            std::string::npos);
}

TEST(ServeServer, RequestTimeoutProducesStructuredError) {
  SimService service(ServeSettings{});
  ServerSettings net;
  net.request_timeout_ms = 50;
  SimServer server(service, net);
  service.pause_dispatch();  // guarantee the wait expires
  ServeClient client(server.port());
  const JsonValue v = json_parse(client.request(atr_request()));
  EXPECT_EQ(v.at("type").str, "error");
  EXPECT_EQ(v.at("code").str, "timeout");
  service.resume_dispatch();
}

TEST(ServeServer, OversizedRequestLineIsRejected) {
  ServeSettings settings;
  settings.limits.max_request_bytes = 256;
  SimService service(settings);
  SimServer server(service, ServerSettings{});
  ServeClient client(server.port());
  const std::string big(1024, 'x');
  const JsonValue v = json_parse(client.request(big));
  EXPECT_EQ(v.at("type").str, "error");
  EXPECT_EQ(v.at("code").str, "bad_request");
}

TEST(ServeServer, ConcurrentClientsAllComplete) {
  SimService service(ServeSettings{});
  SimServer server(service, ServerSettings{});
  constexpr int kClients = 4;
  constexpr int kPerClient = 3;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client(server.port());
      for (int i = 0; i < kPerClient; ++i) {
        // Mix of loads so batches hold both fresh and coalescable work.
        const std::string response =
            client.request(atr_request(0.4 + 0.1 * (c % 3), 5));
        if (json_parse(response).at("type").str == "result") ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  EXPECT_EQ(counter(service, "serve.requests"),
            static_cast<std::uint64_t>(kClients * kPerClient));
  server.stop();
  // stop() drained and is idempotent.
  server.stop();
}

TEST(ServeProtocol, RendersProgressLines) {
  const std::string with_id =
      render_progress("\"s1\"", 3, 8, "simulate", 12.5, 1000, 2000);
  EXPECT_EQ(with_id.find('\n'), std::string::npos);
  const JsonValue v = json_parse(with_id);
  EXPECT_EQ(v.at("id").str, "s1");
  EXPECT_EQ(v.at("event").str, "progress");
  EXPECT_DOUBLE_EQ(v.at("done").number, 3.0);
  EXPECT_DOUBLE_EQ(v.at("total").number, 8.0);
  EXPECT_EQ(v.at("phase").str, "simulate");
  EXPECT_DOUBLE_EQ(v.at("elapsed_ms").number, 12.5);
  EXPECT_DOUBLE_EQ(v.at("cycles").number, 1000.0);
  EXPECT_DOUBLE_EQ(v.at("instructions").number, 2000.0);
  // No id field when the request carried none.
  const JsonValue anon = json_parse(render_progress("", 0, 0, "idle", 0, 0, 0));
  EXPECT_EQ(anon.find("id"), nullptr);
  EXPECT_EQ(anon.at("event").str, "progress");
}

TEST(ServeService, HealthzReportsQueueDepthWithoutDispatcher) {
  SimService service(ServeSettings{});
  const JsonValue idle = json_parse(service.healthz_json());
  EXPECT_EQ(idle.at("status").str, "ok");
  EXPECT_DOUBLE_EQ(idle.at("queue_depth").number, 0.0);
  EXPECT_GE(idle.at("uptime_s").number, 0.0);

  // With the dispatcher paused (standing in for a wedged one), liveness
  // still answers — healthz reads atomics, never the dispatcher lock —
  // and sees the queued work.
  service.pause_dispatch();
  auto f1 = service.submit(atr_request(0.4));
  auto f2 = service.submit(atr_request(0.5));
  const JsonValue busy = json_parse(service.healthz_json());
  EXPECT_EQ(busy.at("status").str, "ok");
  EXPECT_DOUBLE_EQ(busy.at("queue_depth").number, 2.0);
  service.resume_dispatch();
  f1.get();
  f2.get();
  // Dispatched: the depth gauge returns to zero.
  EXPECT_DOUBLE_EQ(json_parse(service.healthz_json()).at("queue_depth").number,
                   0.0);
}

TEST(ServeServer, HttpHealthzAnswersAlongsideMetrics) {
  SimService service(ServeSettings{});
  SimServer server(service, ServerSettings{});
  const JsonValue v = json_parse(http_request(server.port(), "/healthz"));
  EXPECT_EQ(v.at("status").str, "ok");
  EXPECT_DOUBLE_EQ(v.at("queue_depth").number, 0.0);
  EXPECT_GE(v.at("uptime_s").number, 0.0);
  // Both observability endpoints coexist on one listener. A fresh
  // service has no request counters yet, but /metrics always leads with
  // the provenance comment.
  EXPECT_EQ(http_request(server.port(), "/metrics").rfind("# paserta ", 0),
            0u);
}

TEST(ServeServer, StreamedRequestEmitsProgressThenUnchangedResult) {
  SimService service(ServeSettings{});
  ServerSettings net;
  net.stream_interval_ms = 10;  // fast ticks so the test sees progress
  SimServer server(service, net);
  service.pause_dispatch();  // hold the response so progress lines flow

  ServeClient client(server.port());
  const std::string first =
      client.request(atr_request(0.5, kRuns, ",\"id\":\"s1\",\"stream\":true"));
  // Every line before the final response is a progress event carrying the
  // request id — the paused dispatcher guarantees at least this first one.
  const JsonValue p = json_parse(first);
  EXPECT_EQ(p.at("event").str, "progress");
  EXPECT_EQ(p.at("id").str, "s1");
  EXPECT_GE(p.at("elapsed_ms").number, 0.0);
  EXPECT_GE(p.at("total").number, p.at("done").number);

  service.resume_dispatch();
  int progress_lines = 1;
  std::string final_line;
  for (;;) {
    const std::string line = client.read_line();
    ASSERT_FALSE(line.empty());
    const JsonValue v = json_parse(line);
    if (v.find("event") != nullptr) {
      // Strict ordering: progress only ever precedes the result.
      EXPECT_EQ(v.at("event").str, "progress");
      ++progress_lines;
      continue;
    }
    final_line = line;
    break;
  }
  EXPECT_GE(progress_lines, 1);
  // The final line is byte-for-byte the non-streamed result document.
  const JsonValue result = json_parse(final_line);
  EXPECT_EQ(result.at("type").str, "result");
  EXPECT_NE(final_line.find("\"experiment\":" + expected_cli_document(0.5, kRuns)),
            std::string::npos);
}

TEST(ServeServer, StreamIntervalRateLimitsProgress) {
  // A huge interval means the response is ready long before the first
  // progress tick: a streaming client sees exactly one line, identical in
  // payload to the non-streamed exchange. One-line clients that never set
  // the flag are untouched by construction (sub.stream = false path).
  SimService service(ServeSettings{});
  ServerSettings net;
  net.stream_interval_ms = 60'000;
  SimServer server(service, net);
  ServeClient client(server.port());
  const std::string only =
      client.request(atr_request(0.5, kRuns, ",\"stream\":true"));
  const JsonValue v = json_parse(only);
  EXPECT_EQ(v.at("type").str, "result");
  EXPECT_EQ(only.find("\"event\""), std::string::npos);
  EXPECT_NE(only.find("\"experiment\":" + expected_cli_document(0.5, kRuns)),
            std::string::npos);
}

TEST(ServeServer, StreamedRequestStillHonoursTimeout) {
  SimService service(ServeSettings{});
  ServerSettings net;
  net.request_timeout_ms = 80;
  net.stream_interval_ms = 25;
  SimServer server(service, net);
  service.pause_dispatch();  // guarantee the overall wait expires
  ServeClient client(server.port());
  const std::string first =
      client.request(atr_request(0.5, kRuns, ",\"stream\":true"));
  // Progress lines may precede the timeout; the last line is the same
  // structured error the non-streamed path produces.
  std::string line = first;
  for (;;) {
    const JsonValue v = json_parse(line);
    if (v.find("event") != nullptr) {
      line = client.read_line();
      ASSERT_FALSE(line.empty());
      continue;
    }
    EXPECT_EQ(v.at("type").str, "error");
    EXPECT_EQ(v.at("code").str, "timeout");
    break;
  }
  service.resume_dispatch();
}

TEST(ServeServer, StopDrainsInFlightRequests) {
  auto service = std::make_unique<SimService>(ServeSettings{});
  auto server = std::make_unique<SimServer>(*service, ServerSettings{});
  service->pause_dispatch();
  ServeClient client(server->port());

  // Fire a request whose response can only arrive once stop() drains the
  // paused queue — the graceful-shutdown contract.
  std::promise<std::string> got;
  std::thread requester([&] { got.set_value(client.request(atr_request())); });
  // Wait until the request is actually queued before stopping.
  while (service->queue_depth() == 0)
    std::this_thread::yield();
  server->stop();
  const std::string response = got.get_future().get();
  requester.join();
  EXPECT_EQ(json_parse(response).at("type").str, "result");
}

}  // namespace
}  // namespace paserta
