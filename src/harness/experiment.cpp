#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/error.h"
#include "core/offline.h"
#include "sim/engine.h"
#include "sim/scenario.h"
#include "sim/verify.h"

namespace paserta {

const SchemeStats& SweepPoint::of(Scheme s) const {
  for (const auto& st : stats)
    if (st.scheme == s) return st;
  PASERTA_REQUIRE(false, "scheme " << to_string(s) << " not in sweep point");
  return stats.front();  // unreachable
}

namespace {

/// Raw per-run measurements; accumulated into SweepPoint in run order so
/// results are independent of how many worker threads produced them.
struct SchemeOutcome {
  double norm_energy = 0.0;
  double speed_changes = 0.0;
  double finish_frac = 0.0;
  double busy_frac = 0.0;
  double overhead_frac = 0.0;
  double idle_frac = 0.0;
  bool has_norm = false;
  bool has_fracs = false;
  bool missed = false;
  bool verify_failed = false;
};

struct RunOutcome {
  double npm_energy = 0.0;
  bool degenerate = false;  // NPM baseline consumed zero energy
  std::vector<SchemeOutcome> schemes;
};

/// Evaluates one run on its own seed-derived stream into `out` (whose
/// `schemes` vector is preallocated by run_point). Thread-safe: all shared
/// inputs are const; policies, the workspace and the scenario buffer are
/// caller-provided (one set per worker), so the loop over runs performs no
/// heap allocation in steady state.
void evaluate_run(const Application& app, const ExperimentConfig& cfg,
                  const OfflineResult& off, const PowerModel& pm,
                  SimTime deadline,
                  std::vector<std::unique_ptr<SpeedPolicy>>& policies,
                  SpeedPolicy& npm, int run, SimWorkspace& ws,
                  RunScenario& sc, RunOutcome& out) {
  Rng run_rng(Rng::stream_seed(cfg.seed, static_cast<std::uint64_t>(run)));
  draw_scenario(app.graph, run_rng, sc);

  // Traces are only materialized when something consumes them.
  SimOptions sim_opt;
  sim_opt.record_trace = cfg.verify_traces;

  npm.reset(off, pm);
  const SimResult base =
      simulate(app, off, pm, cfg.overheads, npm, sc, ws, sim_opt);
  out.npm_energy = base.total_energy();
  // A degenerate workload (no computation and zero idle power) yields a
  // zero NPM baseline; dividing by it would poison RunningStat with
  // NaN/Inf, so such runs are flagged and excluded from norm_energy.
  out.degenerate = !(out.npm_energy > 0.0);

  for (std::size_t s = 0; s < cfg.schemes.size(); ++s) {
    SpeedPolicy& policy = *policies[s];
    policy.reset(off, pm);
    const SimResult r =
        simulate(app, off, pm, cfg.overheads, policy, sc, ws, sim_opt);
    SchemeOutcome& so = out.schemes[s];
    if (!out.degenerate) {
      so.norm_energy = r.total_energy() / out.npm_energy;
      so.has_norm = true;
    }
    so.speed_changes = static_cast<double>(r.speed_changes);
    so.finish_frac = static_cast<double>(r.finish_time.ps) /
                     static_cast<double>(deadline.ps);
    const Energy total = r.total_energy();
    if (total > 0.0) {
      so.busy_frac = r.busy_energy / total;
      so.overhead_frac = r.overhead_energy / total;
      so.idle_frac = r.idle_energy / total;
      so.has_fracs = true;
    }
    so.missed = !r.deadline_met;
    if (cfg.verify_traces) {
      const VerifyReport rep = verify_trace(app, off, sc, r);
      so.verify_failed = !rep.ok;
    }
  }
}

}  // namespace

SweepPoint run_point(const Application& app, const ExperimentConfig& cfg,
                     SimTime deadline, double x_value) {
  PASERTA_REQUIRE(cfg.runs >= 1, "need at least one run");
  PASERTA_REQUIRE(cfg.threads >= 1, "need at least one worker thread");
  PASERTA_REQUIRE(deadline > SimTime::zero(), "deadline must be positive");

  const PowerModel pm(cfg.table, cfg.c_ef, cfg.idle_fraction);
  OfflineOptions opt;
  opt.cpus = cfg.cpus;
  opt.deadline = deadline;
  opt.overhead_budget = cfg.overheads.worst_case_budget(cfg.table);
  opt.heuristic = cfg.heuristic;
  const OfflineResult off = analyze_offline(app, opt);

  SweepPoint point;
  point.x = x_value;
  point.deadline = deadline;
  point.worst_makespan = off.worst_makespan();
  point.stats.resize(cfg.schemes.size());
  for (std::size_t s = 0; s < cfg.schemes.size(); ++s)
    point.stats[s].scheme = cfg.schemes[s];

  // Preallocate every per-run slot before the workers start, so the run
  // loop itself writes in place without allocating.
  std::vector<RunOutcome> outcomes(static_cast<std::size_t>(cfg.runs));
  for (RunOutcome& out : outcomes) out.schemes.resize(cfg.schemes.size());

  auto worker = [&](int first, int step) {
    // Each worker owns one set of (stateful) policy objects, one engine
    // workspace and one scenario buffer, all reused across its runs.
    std::vector<std::unique_ptr<SpeedPolicy>> policies;
    for (Scheme s : cfg.schemes)
      policies.push_back(make_policy(s, cfg.policy_options));
    auto npm = make_policy(Scheme::NPM);
    SimWorkspace ws;
    RunScenario sc;
    for (int run = first; run < cfg.runs; run += step)
      evaluate_run(app, cfg, off, pm, deadline, policies, *npm, run, ws, sc,
                   outcomes[static_cast<std::size_t>(run)]);
  };

  const int threads = std::min(cfg.threads, cfg.runs);
  if (threads <= 1) {
    worker(0, 1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t, threads);
    for (auto& th : pool) th.join();
  }

  // Accumulate strictly in run order: identical floating-point results for
  // every thread count.
  for (const RunOutcome& run : outcomes) {
    point.npm_energy.add(run.npm_energy);
    if (run.degenerate) ++point.degenerate_runs;
    for (std::size_t s = 0; s < run.schemes.size(); ++s) {
      const SchemeOutcome& so = run.schemes[s];
      SchemeStats& st = point.stats[s];
      if (so.has_norm) st.norm_energy.add(so.norm_energy);
      st.speed_changes.add(so.speed_changes);
      st.finish_frac.add(so.finish_frac);
      if (so.has_fracs) {
        st.busy_frac.add(so.busy_frac);
        st.overhead_frac.add(so.overhead_frac);
        st.idle_frac.add(so.idle_frac);
      }
      if (so.missed) ++st.deadline_misses;
      if (so.verify_failed) ++st.verify_failures;
    }
  }
  return point;
}

std::vector<SweepPoint> sweep_load(const Application& app,
                                   const ExperimentConfig& cfg,
                                   const std::vector<double>& loads) {
  const SimTime w = canonical_worst_makespan(
      app, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
      cfg.heuristic);
  std::vector<SweepPoint> points;
  points.reserve(loads.size());
  for (double load : loads) {
    PASERTA_REQUIRE(load > 0.0, "load must be positive, got " << load);
    const SimTime deadline{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / load))};
    points.push_back(run_point(app, cfg, deadline, load));
  }
  return points;
}

std::vector<SweepPoint> sweep_alpha(const Application& app,
                                    const ExperimentConfig& cfg, double load,
                                    const std::vector<double>& alphas) {
  std::vector<SweepPoint> points;
  points.reserve(alphas.size());
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    const double alpha = alphas[i];
    Application variant = app;  // fresh copy: ACETs are redrawn per alpha
    Rng acet_rng(cfg.seed ^ (0x517CC1B727220A95ULL + i));
    assign_alpha(variant.graph, alpha, &acet_rng);

    // The deadline derives from WCETs only, so it is alpha-independent;
    // recompute anyway for clarity (identical value).
    const SimTime w = canonical_worst_makespan(
        variant, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
        cfg.heuristic);
    const SimTime deadline{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / load))};
    points.push_back(run_point(variant, cfg, deadline, alpha));
  }
  return points;
}

std::vector<double> sweep_range(double from, double to, double step) {
  PASERTA_REQUIRE(step > 0.0 && from <= to, "invalid sweep range");
  // Integer step index: accumulating `x += step` in floating point drifts
  // across many steps and could emit the endpoint twice when the
  // accumulated value lands within the tolerance just above `to`. The
  // relative tolerance decides whether the endpoint itself sits on the
  // grid (e.g. (1.0 - 0.1) / 0.1 evaluates to 8.999...).
  const double raw = (to - from) / step;
  const auto steps =
      static_cast<std::int64_t>(raw + 1e-9 * std::max(1.0, raw));
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(steps) + 1);
  for (std::int64_t i = 0; i <= steps; ++i)
    xs.push_back(std::min(from + static_cast<double>(i) * step, to));
  return xs;
}

}  // namespace paserta
