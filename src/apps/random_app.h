// Random AND/OR application generator.
//
// Generates hierarchical programs (sections of random task DAGs, OR
// branches with random probabilities, probabilistic loops) for property
// tests and for scaling experiments beyond the paper's two workloads.
// Fully deterministic given the Rng state.
#pragma once

#include "common/rng.h"
#include "graph/program.h"

namespace paserta::apps {

struct RandomAppConfig {
  /// Maximum OR-branch/loop nesting depth.
  int max_depth = 3;
  /// Segments per program level: uniform in [1, max_segments].
  int max_segments = 4;
  /// Tasks per section: uniform in [1, max_section_tasks].
  int max_section_tasks = 6;
  /// Alternatives per branch: uniform in [2, max_branch_alts].
  int max_branch_alts = 3;
  /// Maximum loop iterations: uniform in [1, max_loop_iters].
  int max_loop_iters = 3;
  /// Probability that a non-first segment is an OR branch.
  double branch_prob = 0.35;
  /// Probability that a non-first segment is a loop.
  double loop_prob = 0.15;
  /// Probability that an alternative is empty (a skipped path).
  double empty_alt_prob = 0.15;
  /// Probability of an intra-section edge i->j (i < j).
  double intra_edge_prob = 0.35;
  /// Task WCET range.
  SimTime wcet_min = SimTime::from_ms(1.0);
  SimTime wcet_max = SimTime::from_ms(10.0);
  /// ACET/WCET ratio range (per task).
  double alpha_min = 0.3;
  double alpha_max = 0.95;
};

Program random_program(Rng& rng, const RandomAppConfig& config);

Application random_application(Rng& rng, const RandomAppConfig& config,
                               const std::string& name = "random");

}  // namespace paserta::apps
