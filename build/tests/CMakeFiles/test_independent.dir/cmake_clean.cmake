file(REMOVE_RECURSE
  "CMakeFiles/test_independent.dir/test_independent.cpp.o"
  "CMakeFiles/test_independent.dir/test_independent.cpp.o.d"
  "test_independent"
  "test_independent.pdb"
  "test_independent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_independent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
