// Tests for alternative list-scheduling heuristics (paper §3.2: the
// framework works under any priority rule as long as offline and online
// phases share it).
#include <gtest/gtest.h>

#include "apps/atr.h"
#include "apps/random_app.h"
#include "core/offline.h"
#include "sim/engine.h"
#include "sim/verify.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

std::function<SimTime(NodeId)> wcet_of(const AndOrGraph& g) {
  return [&g](NodeId id) {
    return g.node(id).is_dummy() ? SimTime::zero() : g.node(id).wcet;
  };
}

TEST(Heuristics, Names) {
  EXPECT_STREQ(to_string(ListHeuristic::LongestTaskFirst), "LTF");
  EXPECT_STREQ(to_string(ListHeuristic::ShortestTaskFirst), "STF");
  EXPECT_STREQ(to_string(ListHeuristic::InsertionOrder), "FIFO");
}

TEST(Heuristics, OrderingsDiffer) {
  AndOrGraph g;
  const NodeId a = g.add_task("a", ms(2), ms(1));
  const NodeId b = g.add_task("b", ms(9), ms(1));
  const NodeId c = g.add_task("c", ms(5), ms(1));
  const std::vector<NodeId> members{a, b, c};

  const auto ltf = ltf_schedule(g, members, 1, wcet_of(g),
                                ListHeuristic::LongestTaskFirst);
  EXPECT_EQ(ltf.dispatch_order, (std::vector<NodeId>{b, c, a}));

  const auto stf = ltf_schedule(g, members, 1, wcet_of(g),
                                ListHeuristic::ShortestTaskFirst);
  EXPECT_EQ(stf.dispatch_order, (std::vector<NodeId>{a, c, b}));

  const auto fifo = ltf_schedule(g, members, 1, wcet_of(g),
                                 ListHeuristic::InsertionOrder);
  EXPECT_EQ(fifo.dispatch_order, (std::vector<NodeId>{a, b, c}));
}

TEST(Heuristics, MakespanSameOnOneCpu) {
  // On a single processor the order cannot change total time.
  AndOrGraph g;
  std::vector<NodeId> members;
  for (int i = 0; i < 6; ++i)
    members.push_back(
        g.add_task("t" + std::to_string(i), ms(1 + i), ms(1)));
  for (auto h : {ListHeuristic::LongestTaskFirst,
                 ListHeuristic::ShortestTaskFirst,
                 ListHeuristic::InsertionOrder}) {
    EXPECT_EQ(ltf_schedule(g, members, 1, wcet_of(g), h).makespan, ms(21));
  }
}

TEST(Heuristics, LtfPacksNoWorseHere) {
  // A 2-CPU case where LTF beats STF: {4,3,3,2,2}.
  // LTF: 4|3, then 3 and 2 fill, last 2 lands at 6 -> makespan 8.
  // STF: 2|2, 3|3, then the 4 starts at 5 -> makespan 9.
  AndOrGraph g;
  std::vector<NodeId> members;
  for (double w : {4.0, 3.0, 3.0, 2.0, 2.0})
    members.push_back(
        g.add_task("t" + std::to_string(members.size()), ms(w), ms(1)));
  const auto ltf = ltf_schedule(g, members, 2, wcet_of(g),
                                ListHeuristic::LongestTaskFirst);
  const auto stf = ltf_schedule(g, members, 2, wcet_of(g),
                                ListHeuristic::ShortestTaskFirst);
  EXPECT_EQ(ltf.makespan, ms(8));
  EXPECT_EQ(stf.makespan, ms(9));
}

class HeuristicEndToEnd : public ::testing::TestWithParam<ListHeuristic> {};

TEST_P(HeuristicEndToEnd, Theorem1HoldsUnderAnyHeuristic) {
  const ListHeuristic h = GetParam();
  apps::RandomAppConfig cfg;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    Rng rng(seed);
    const Application app = apps::random_application(rng, cfg);
    const PowerModel pm(LevelTable::intel_xscale());
    Overheads ovh;
    OfflineOptions o;
    o.cpus = 2;
    o.overhead_budget = ovh.worst_case_budget(pm.table());
    o.heuristic = h;
    const SimTime w = canonical_worst_makespan(app, 2, o.overhead_budget, h);
    o.deadline = w;  // zero static slack: tightest case
    const OfflineResult off = analyze_offline(app, o);
    ASSERT_TRUE(off.feasible());

    Rng srng(seed * 31);
    for (int run = 0; run < 5; ++run) {
      const RunScenario sc = draw_scenario(app.graph, srng);
      for (Scheme s : {Scheme::GSS, Scheme::AS}) {
        const SimResult r = simulate(app, off, pm, ovh, s, sc);
        ASSERT_TRUE(r.deadline_met)
            << to_string(s) << " under " << to_string(h);
        const VerifyReport rep = verify_trace(app, off, sc, r);
        ASSERT_TRUE(rep.ok)
            << (rep.violations.empty() ? "?" : rep.violations[0]);
      }
    }
  }
}

TEST_P(HeuristicEndToEnd, AtrWorstCaseMeetsDeadline) {
  const ListHeuristic h = GetParam();
  const Application app = apps::build_atr();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 4;
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  o.heuristic = h;
  o.deadline = canonical_worst_makespan(app, 4, o.overhead_budget, h);
  const OfflineResult off = analyze_offline(app, o);
  ASSERT_TRUE(off.feasible());
  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  EXPECT_TRUE(r.deadline_met);
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, HeuristicEndToEnd,
                         ::testing::Values(ListHeuristic::LongestTaskFirst,
                                           ListHeuristic::ShortestTaskFirst,
                                           ListHeuristic::InsertionOrder),
                         [](const ::testing::TestParamInfo<ListHeuristic>& i) {
                           return to_string(i.param);
                         });

}  // namespace
}  // namespace paserta
