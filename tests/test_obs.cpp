// Tests for the observability subsystem (src/obs/): sharded metrics,
// span tracing with Chrome export, progress reporting, the pool telemetry
// hooks — and the determinism contract: enabling any of it must not change
// a single output bit of the experiment harness.
//
// The concurrency tests double as the TSan target (ctest -L pool_smoke
// under -DPASERTA_SANITIZE=thread): single-writer shard increments racing
// with live cross-shard reads must stay clean.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include <cmath>
#include <limits>
#include <map>

#include "apps/synthetic.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/offline.h"
#include "core/policy.h"
#include "harness/experiment.h"
#include "harness/figures.h"
#include "harness/json.h"
#include "harness/pool.h"
#include "harness/report.h"
#include "harness/throughput.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/scenario.h"

namespace paserta {
namespace {

// ------------------------------------------------------------- counters

TEST(Counter, ShardsAggregateInSlotOrder) {
  Counter c;
  c.add(0, 5);
  c.add(3, 7);
  c.add(kMaxShards - 1, 1);
  EXPECT_EQ(c.value(), 13u);
  EXPECT_EQ(c.shard_value(0), 5u);
  EXPECT_EQ(c.shard_value(3), 7u);
  EXPECT_EQ(c.shard_value(1), 0u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentShardWritersWithLiveReader) {
  // One writer per slot plus a live cross-shard reader: the single-writer
  // relaxed store(load + n) pattern must be exact per shard and TSan-clean
  // against value() snapshots taken mid-loop.
  Counter c;
  std::atomic<std::uint64_t> live_max{0};
  WorkerPool pool(3);
  const int chunks = 400;
  pool.parallel_chunks(chunks, 4, [&](int chunk, int slot) {
    c.add(slot);
    if (chunk % 16 == 0) {
      // Live read while other shards are being written.
      std::uint64_t seen = c.value();
      std::uint64_t prev = live_max.load();
      while (seen > prev && !live_max.compare_exchange_weak(prev, seen)) {
      }
    }
  });
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(chunks));
  EXPECT_LE(live_max.load(), static_cast<std::uint64_t>(chunks));
  // Every shard total survives exactly (no lost updates within a shard).
  std::uint64_t sum = 0;
  for (int s = 0; s < kMaxShards; ++s) sum += c.shard_value(s);
  EXPECT_EQ(sum, static_cast<std::uint64_t>(chunks));
}

TEST(Gauge, AddAndSetPerShard) {
  Gauge g;
  g.add(0, 1.5);
  g.add(1, 2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set(1, 0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ------------------------------------------------------------ histogram

TEST(Histogram, BucketEdgesAreLeSemantics) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram h(bounds);
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 bounds + overflow

  h.record(0, 0.5);    // <= 1        -> bucket 0
  h.record(0, 1.0);    // == bound    -> bucket 0 (le, not lt)
  h.record(0, 1.0001); // just above  -> bucket 1
  h.record(0, 10.0);   // == bound    -> bucket 1
  h.record(0, 99.9);   //             -> bucket 2
  h.record(0, 100.0);  // == last     -> bucket 2
  h.record(0, 1e6);    // overflow    -> bucket 3

  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 2u);
  EXPECT_EQ(h.bucket_value(2), 2u);
  EXPECT_EQ(h.bucket_value(3), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 1e6, 1e-9);
}

TEST(Histogram, PercentileInterpolatesWithinBuckets) {
  const double bounds[] = {10.0, 20.0, 30.0};
  Histogram h(bounds);
  for (int i = 0; i < 2; ++i) h.record(0, 5.0);   // bucket 0: (0, 10]
  for (int i = 0; i < 4; ++i) h.record(0, 15.0);  // bucket 1: (10, 20]
  for (int i = 0; i < 2; ++i) h.record(0, 25.0);  // bucket 2: (20, 30]

  // Hand-computed: rank = q * 8, linear interpolation inside the bucket.
  // p50 -> rank 4, bucket 1 holds ranks (2, 6]: 10 + 10 * (4-2)/4 = 15.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 15.0);
  // p25 -> rank 2, end of bucket 0: 0 + 10 * 2/2 = 10.
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 10.0);
  // p0 -> rank 0, start of the first bucket (lower edge 0).
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  // p100 -> rank 8, end of the last finite bucket.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 30.0);
}

TEST(Histogram, PercentileSkipsEmptyBucketsToUpperEdge) {
  const double bounds[] = {10.0, 20.0};
  Histogram h(bounds);
  for (int i = 0; i < 4; ++i) h.record(0, 12.0);  // all in bucket 1
  // p50 -> rank 2 inside bucket 1: 10 + 10 * 2/4 = 15.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 15.0);
  // p0 -> rank 0 matches the empty first bucket: its upper edge.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
}

TEST(Histogram, PercentileClampsOverflowToLastBound) {
  const double bounds[] = {10.0};
  Histogram h(bounds);
  for (int i = 0; i < 3; ++i) h.record(0, 1e6);  // all overflow
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(Histogram, PercentileEdgeCasesAndValidation) {
  const double bounds[] = {10.0};
  Histogram h(bounds);
  EXPECT_TRUE(std::isnan(h.percentile(0.5)));  // no samples
  h.record(0, 5.0);
  EXPECT_THROW(h.percentile(-0.1), Error);
  EXPECT_THROW(h.percentile(1.5), Error);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  const double bad[] = {1.0, 1.0};
  EXPECT_THROW(Histogram h(bad), Error);
  const double worse[] = {2.0, 1.0};
  EXPECT_THROW(Histogram h(worse), Error);
}

TEST(Histogram, ShardedRecordingAggregates) {
  const double bounds[] = {10.0};
  Histogram h(bounds);
  WorkerPool pool(3);
  pool.parallel_chunks(200, 4, [&](int chunk, int slot) {
    h.record(slot, chunk < 150 ? 1.0 : 100.0);
  });
  EXPECT_EQ(h.bucket_value(0), 150u);
  EXPECT_EQ(h.bucket_value(1), 50u);
  EXPECT_EQ(h.count(), 200u);
}

// ------------------------------------------------------------- registry

TEST(MetricsRegistry, RegisterOrGetReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(0, 3);
  EXPECT_EQ(reg.counter("x").value(), 3u);

  const double bounds[] = {1.0, 2.0};
  Histogram& h1 = reg.histogram("h", bounds);
  Histogram& h2 = reg.histogram("h", bounds);
  EXPECT_EQ(&h1, &h2);
  const double other[] = {5.0};
  EXPECT_THROW(reg.histogram("h", other), Error);

  reg.reset();  // zeroes values, keeps registrations (and handles) alive
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(&reg.counter("x"), &a);
}

TEST(MetricsRegistry, SnapshotIsSortedAndTrimmed) {
  MetricsRegistry reg;
  reg.counter("zeta").add(2, 9);
  reg.counter("alpha").add(0, 1);
  reg.gauge("g").set(0, 2.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  // Shards trimmed at the last non-zero cell.
  EXPECT_EQ(snap.counters[0].shards.size(), 1u);
  ASSERT_EQ(snap.counters[1].shards.size(), 3u);
  EXPECT_EQ(snap.counters[1].shards[2], 9u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 2.5);
}

TEST(MetricsRegistry, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.counter("engine.GSS.tasks").add(1, 42);
  const double bounds[] = {0.5, 1.5};
  Histogram& h = reg.histogram("lat", bounds);
  h.record(0, 0.25);
  h.record(0, 7.0);

  const JsonValue doc = json_parse(metrics_to_json(reg.snapshot()));
  ASSERT_TRUE(doc.is_object());
  const JsonValue& counters = doc.at("counters");
  ASSERT_TRUE(counters.is_array());
  ASSERT_EQ(counters.array.size(), 1u);
  EXPECT_EQ(counters.array[0].at("name").str, "engine.GSS.tasks");
  EXPECT_DOUBLE_EQ(counters.array[0].at("value").number, 42.0);

  const JsonValue& hists = doc.at("histograms");
  ASSERT_EQ(hists.array.size(), 1u);
  const JsonValue& buckets = hists.array[0].at("buckets");
  ASSERT_EQ(buckets.array.size(), 3u);  // 2 bounds + overflow
  EXPECT_DOUBLE_EQ(buckets.array[0].at("le").number, 0.5);
  EXPECT_DOUBLE_EQ(buckets.array[0].at("count").number, 1.0);
  EXPECT_EQ(buckets.array[2].at("le").str, "inf");
  EXPECT_DOUBLE_EQ(buckets.array[2].at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(hists.array[0].at("count").number, 2.0);
}

// --------------------------------------------------- prometheus exporter

/// Prometheus metric-name mangling: every char outside [a-zA-Z0-9_:]
/// becomes '_' (mirrors the exporter; dots in registry names map to
/// underscores).
std::string prom_name(std::string name) {
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return name;
}

/// Parses the text exposition into {sample-key -> value}. Keys keep their
/// label block verbatim, e.g. `lat_bucket{le="0.5"}`.
std::map<std::string, double> parse_prometheus(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << line;
    if (sp == std::string::npos) continue;
    out[line.substr(0, sp)] = std::stod(line.substr(sp + 1));
  }
  return out;
}

TEST(Prometheus, RoundTripsAgainstJsonSnapshot) {
  MetricsRegistry reg;
  reg.counter("engine.GSS.tasks").add(1, 42);
  reg.counter("pool.chunks_completed").add(0, 7);
  reg.gauge("sweep.points").set(0, 3.5);
  const double bounds[] = {0.5, 1.5};
  Histogram& h = reg.histogram("pool.chunk_seconds", bounds);
  h.record(0, 0.25);
  h.record(0, 1.0);
  h.record(0, 7.0);

  const MetricsSnapshot snap = reg.snapshot();
  const JsonValue doc = json_parse(metrics_to_json(snap));
  const std::string text = metrics_to_prometheus(snap);
  const std::map<std::string, double> prom = parse_prometheus(text);

  // TYPE declarations, with sanitized names.
  EXPECT_NE(text.find("# TYPE engine_GSS_tasks counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sweep_points gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pool_chunk_seconds histogram"),
            std::string::npos);

  // Every metric carries a HELP line that preserves the original dotted
  // registry name, which the sanitized name cannot be mapped back to.
  EXPECT_NE(
      text.find("# HELP engine_GSS_tasks paserta metric engine.GSS.tasks"),
      std::string::npos);
  EXPECT_NE(text.find("# HELP sweep_points paserta metric sweep.points"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "# HELP pool_chunk_seconds paserta metric pool.chunk_seconds"),
      std::string::npos);
  // HELP precedes TYPE for each family (the conventional ordering).
  EXPECT_LT(text.find("# HELP engine_GSS_tasks"),
            text.find("# TYPE engine_GSS_tasks"));

  // Every JSON counter and gauge value survives the text round trip.
  for (const JsonValue& c : doc.at("counters").array) {
    const auto it = prom.find(prom_name(c.at("name").str));
    ASSERT_NE(it, prom.end()) << c.at("name").str;
    EXPECT_DOUBLE_EQ(it->second, c.at("value").number);
  }
  for (const JsonValue& g : doc.at("gauges").array) {
    const auto it = prom.find(prom_name(g.at("name").str));
    ASSERT_NE(it, prom.end()) << g.at("name").str;
    EXPECT_DOUBLE_EQ(it->second, g.at("value").number);
  }

  // Histogram: prometheus buckets are cumulative over the JSON per-bucket
  // counts, the +Inf bucket equals _count, and _sum/_count match.
  for (const JsonValue& hj : doc.at("histograms").array) {
    const std::string base = prom_name(hj.at("name").str);
    double cumulative = 0.0;
    for (const JsonValue& b : hj.at("buckets").array) {
      cumulative += b.at("count").number;
      std::string le;
      if (b.at("le").type == JsonValue::Type::String) {
        le = "+Inf";  // JSON spells the overflow bucket "inf"
      } else {
        // Recover the exporter's exact le text from the sample keys rather
        // than re-formatting the parsed double.
        const std::string prefix = base + "_bucket{le=\"";
        for (const auto& kv : prom) {
          if (kv.first.rfind(prefix, 0) != 0) continue;
          const std::string label =
              kv.first.substr(prefix.size(),
                              kv.first.size() - prefix.size() - 2);
          if (label != "+Inf" && std::stod(label) == b.at("le").number)
            le = label;
        }
        ASSERT_FALSE(le.empty()) << "no bucket for le=" << b.at("le").number;
      }
      const auto it = prom.find(base + "_bucket{le=\"" + le + "\"}");
      ASSERT_NE(it, prom.end()) << le;
      EXPECT_DOUBLE_EQ(it->second, cumulative);
    }
    EXPECT_DOUBLE_EQ(prom.at(base + "_bucket{le=\"+Inf\"}"),
                     hj.at("count").number);
    EXPECT_DOUBLE_EQ(prom.at(base + "_sum"), hj.at("sum").number);
    EXPECT_DOUBLE_EQ(prom.at(base + "_count"), hj.at("count").number);
  }
}

TEST(Prometheus, NonFiniteValuesUseTextFormatSpelling) {
  // JSON renders non-finite numbers as null; the Prometheus text format
  // spells them NaN / +Inf / -Inf, which the exporter must emit for
  // gauges and histogram _sum (a "null" sample value breaks scrapers).
  MetricsRegistry reg;
  reg.gauge("odd.nan").set(0, std::nan(""));
  reg.gauge("odd.inf").set(0, std::numeric_limits<double>::infinity());
  const std::string text = metrics_to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("odd_nan NaN"), std::string::npos);
  EXPECT_NE(text.find("odd_inf +Inf"), std::string::npos);
  EXPECT_EQ(text.find("null"), std::string::npos);
}

// -------------------------------------------------------------- tracing

TEST(Tracer, SpansMergeSortedAcrossSlots) {
  Tracer tracer;
  tracer.record(1, "late", 200, 10);
  tracer.record(0, "outer", 100, 500, /*point=*/2);
  tracer.record(0, "inner", 150, 50, 2, 7);
  tracer.instant(1, "mark", 3);

  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  ASSERT_EQ(tracer.event_count(), 4u);
  EXPECT_STREQ(events[0].name, "outer");   // earliest ts first
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "late");
  EXPECT_EQ(events[0].point, 2);
  EXPECT_EQ(events[1].run, 7);
  // The instant records "now", which is far later than the fixed stamps.
  EXPECT_STREQ(events[3].name, "mark");
  EXPECT_LT(events[3].dur_ns, 0);
}

TEST(Tracer, NullTracerSpanIsNoOp) {
  // Must not crash or record anything; call sites stay unconditional.
  TraceSpan span(nullptr, 0, "nothing");
}

TEST(Tracer, RaiiSpanMeasuresNonNegativeDuration) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, 0, "scope", 1, 2);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "scope");
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_EQ(events[0].point, 1);
  EXPECT_EQ(events[0].run, 2);
}

TEST(ChromeTrace, ExportParsesAndCarriesEvents) {
  Tracer tracer;
  tracer.record(0, "sweep", 1000, 2'000'000, 0);
  tracer.record(1, "chunk", 1500, 500'000, 0, 16);
  tracer.instant(1, "note", 0);

  const JsonValue doc = json_parse(chrome_trace_to_json(tracer));
  ASSERT_TRUE(doc.is_object());
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  // 2 thread_name metadata (slots 0 and 1) + 3 events.
  ASSERT_EQ(events.array.size(), 5u);

  int meta = 0, complete = 0, instant = 0;
  for (const JsonValue& ev : events.array) {
    const std::string ph = ev.at("ph").str;
    if (ph == "M") {
      ++meta;
      EXPECT_EQ(ev.at("name").str, "thread_name");
    } else if (ph == "X") {
      ++complete;
      EXPECT_TRUE(ev.find("dur") != nullptr);
    } else if (ph == "i") {
      ++instant;
      EXPECT_EQ(ev.at("s").str, "t");
    }
    EXPECT_DOUBLE_EQ(ev.at("pid").number, 1.0);
  }
  EXPECT_EQ(meta, 2);
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instant, 1);

  // ts/dur are microseconds: the 2 ms span must export as dur 2000.
  for (const JsonValue& ev : events.array) {
    if (ev.at("ph").str == "X" && ev.at("name").str == "sweep") {
      EXPECT_DOUBLE_EQ(ev.at("dur").number, 2000.0);
      EXPECT_DOUBLE_EQ(ev.at("ts").number, 1.0);
      EXPECT_DOUBLE_EQ(ev.at("args").at("point").number, 0.0);
    }
    if (ev.at("ph").str == "X" && ev.at("name").str == "chunk")
      EXPECT_DOUBLE_EQ(ev.at("args").at("run").number, 16.0);
  }
}

// ------------------------------------------------------------- progress

TEST(Progress, TicksAndFinishesOnce) {
  std::vector<ProgressSnapshot> snaps;
  ProgressReporter rep([&](const ProgressSnapshot& s) { snaps.push_back(s); },
                       std::chrono::milliseconds(0));
  rep.add_total(8);
  for (int i = 0; i < 8; ++i) rep.add_done();
  EXPECT_EQ(rep.done(), 8);
  EXPECT_EQ(rep.total(), 8);
  ASSERT_FALSE(snaps.empty());
  EXPECT_FALSE(snaps.back().finished);

  rep.finish();
  rep.finish();  // idempotent
  ASSERT_FALSE(snaps.empty());
  EXPECT_TRUE(snaps.back().finished);
  EXPECT_EQ(snaps.back().done, 8);
  const auto finished =
      std::count_if(snaps.begin(), snaps.end(),
                    [](const ProgressSnapshot& s) { return s.finished; });
  EXPECT_EQ(finished, 1);
}

TEST(Progress, RateLimitSuppressesIntermediateEmits) {
  std::vector<ProgressSnapshot> snaps;
  ProgressReporter rep([&](const ProgressSnapshot& s) { snaps.push_back(s); },
                       std::chrono::hours(1));
  rep.add_total(1000);
  for (int i = 0; i < 1000; ++i) rep.add_done();
  // A burst of ticks renders at most once per interval: the first tick
  // claims the emission slot, everything after sits inside the (huge)
  // interval.
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_FALSE(snaps[0].finished);

  // finish() force-flushes exactly once, at 100%.
  rep.finish();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_TRUE(snaps.back().finished);
  EXPECT_EQ(snaps.back().done, 1000);
  EXPECT_EQ(snaps.back().total, 1000);
  rep.finish();  // idempotent: no second flush
  EXPECT_EQ(snaps.size(), 2u);
}

TEST(Progress, RejectsNullCallbackAndNegativeTotals) {
  EXPECT_THROW(ProgressReporter rep(nullptr), Error);
  ProgressReporter rep([](const ProgressSnapshot&) {});
  EXPECT_THROW(rep.add_total(-1), Error);
}

// ------------------------------------------------------- pool telemetry

TEST(PoolTelemetry, CountsChunksBusyAndProgress) {
  MetricsRegistry reg;
  const double bounds[] = {1e-6, 1e-3, 1.0};
  PoolTelemetry tel;
  tel.chunks = &reg.counter("pool.chunks_completed");
  tel.busy_ns = &reg.counter("pool.busy_ns");
  tel.idle_ns = &reg.counter("pool.idle_ns");
  tel.chunk_seconds = &reg.histogram("pool.chunk_seconds", bounds);
  int ticks = 0;
  ProgressReporter progress([&](const ProgressSnapshot&) { ++ticks; },
                            std::chrono::milliseconds(0));
  tel.progress = &progress;
  progress.add_total(64);

  WorkerPool pool(3);
  std::atomic<int> executed{0};
  pool.parallel_chunks(
      64, 4, [&](int, int) { executed.fetch_add(1); }, &tel);

  EXPECT_EQ(executed.load(), 64);
  EXPECT_EQ(tel.chunks->value(), 64u);
  EXPECT_EQ(tel.chunk_seconds->count(), 64u);
  EXPECT_GT(tel.busy_ns->value(), 0u);
  EXPECT_EQ(progress.done(), 64);
  EXPECT_GT(ticks, 0);
}

TEST(PoolTelemetry, SerialChunksReportsOnSlotZero) {
  MetricsRegistry reg;
  PoolTelemetry tel;
  tel.chunks = &reg.counter("chunks");
  tel.busy_ns = &reg.counter("busy");
  WorkerPool::serial_chunks(10, [&](int, int slot) { EXPECT_EQ(slot, 0); },
                            &tel);
  EXPECT_EQ(tel.chunks->value(), 10u);
  EXPECT_EQ(tel.chunks->shard_value(0), 10u);  // everything on the caller
}

TEST(PoolTelemetry, NullTelemetryUnchangedBehaviour) {
  WorkerPool pool(2);
  std::atomic<int> executed{0};
  pool.parallel_chunks(16, 3, [&](int, int) { executed.fetch_add(1); },
                       nullptr);
  EXPECT_EQ(executed.load(), 16);
}

// ----------------------------------------- harness: determinism contract

ExperimentConfig harness_config(int runs, int threads) {
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.runs = runs;
  cfg.threads = threads;
  cfg.seed = 20260806;
  return cfg;
}

/// Full-fidelity serialization of a sweep: the CSV the CLI emits plus the
/// JSON export (mean/ci/min/max/n per stat). Byte equality here is the
/// bit-identity the determinism contract promises.
std::string serialize_sweep(const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  sweep_table(points, "load").write_csv(os);
  JsonExportOptions jopt;
  jopt.experiment_id = "obs-identity";
  jopt.x_name = "load";
  write_sweep_json(os, points, jopt);
  return os.str();
}

TEST(ObsDeterminism, SweepBitIdenticalWithObservabilityOnOrOff) {
  const Application app = apps::build_synthetic();
  const std::vector<double> loads = {0.3, 0.6, 1.0};

  const std::string baseline =
      serialize_sweep(sweep_load(app, harness_config(30, 1), loads));

  for (int threads : {1, 4}) {
    // Everything on: metrics into a scoped registry, run-detail tracing,
    // progress with a counting callback.
    MetricsRegistry reg;
    Tracer tracer(Tracer::Detail::kRuns);
    ProgressReporter progress([](const ProgressSnapshot&) {},
                              std::chrono::milliseconds(0));
    ExperimentConfig cfg = harness_config(30, threads);
    cfg.collect_metrics = true;
    cfg.registry = &reg;
    cfg.tracer = &tracer;
    cfg.progress = &progress;

    const std::vector<SweepPoint> points = sweep_load(app, cfg, loads);
    EXPECT_EQ(serialize_sweep(points), baseline)
        << "observability changed sweep output at threads=" << threads;

    // The observability itself did fire.
    EXPECT_GT(reg.counter("pool.chunks_completed").value(), 0u);
    EXPECT_GT(tracer.event_count(), 0u);
    EXPECT_GT(progress.done(), 0);
    EXPECT_EQ(progress.done(), progress.total());
    ASSERT_EQ(points.size(), loads.size());
    for (const SweepPoint& pt : points) EXPECT_TRUE(pt.metrics.enabled());
  }

  // Plain parallel without observability must also match.
  EXPECT_EQ(
      serialize_sweep(sweep_load(app, harness_config(30, 4), loads)),
      baseline);
}

TEST(ObsDeterminism, RunPointIdenticalWithMetricsOn) {
  const Application app = apps::build_synthetic();
  const SimTime d = SimTime::from_ms(120);

  const SweepPoint plain = run_point(app, harness_config(25, 1), d, 0.0);
  ExperimentConfig cfg = harness_config(25, 3);
  MetricsRegistry reg;
  cfg.collect_metrics = true;
  cfg.registry = &reg;
  const SweepPoint observed = run_point(app, cfg, d, 0.0);

  EXPECT_EQ(serialize_sweep({observed}), serialize_sweep({plain}));
  EXPECT_FALSE(plain.metrics.enabled());
  EXPECT_TRUE(observed.metrics.enabled());
}

// --------------------------------------------- harness: metric semantics

TEST(ObsMetrics, PointMetricsMatchSchemeStats) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = harness_config(40, 2);
  MetricsRegistry reg;
  cfg.collect_metrics = true;
  cfg.registry = &reg;
  const SweepPoint pt = run_point(app, cfg, SimTime::from_ms(120), 0.0);

  ASSERT_EQ(pt.metrics.schemes.size(), cfg.schemes.size());
  const double runs = static_cast<double>(cfg.runs);
  for (std::size_t s = 0; s < cfg.schemes.size(); ++s) {
    const SimCounters& c = pt.metrics.schemes[s];
    // The counter total must equal the per-run RunningStat sum.
    const double stat_sum = pt.stats[s].speed_changes.mean() * runs;
    EXPECT_NEAR(static_cast<double>(c.speed_changes), stat_sum,
                1e-6 * std::max(1.0, stat_sum))
        << to_string(cfg.schemes[s]);
    // Dispatch volume depends only on the scenarios (shared across
    // schemes), so every scheme — and the NPM baseline — agrees.
    EXPECT_EQ(c.dispatches, pt.metrics.npm.dispatches)
        << to_string(cfg.schemes[s]);
    EXPECT_EQ(c.tasks, pt.metrics.npm.tasks);
    EXPECT_EQ(c.or_fires, pt.metrics.npm.or_fires);
    EXPECT_GT(c.tasks, 0u);
    // Dynamic schemes make exactly one floor-vs-greedy decision per task;
    // static schemes (and NPM) make none.
    const Scheme scheme = cfg.schemes[s];
    if (scheme == Scheme::NPM || scheme == Scheme::SPM) {
      EXPECT_EQ(c.spec_picks + c.greedy_picks, 0u);
    } else {
      EXPECT_EQ(c.spec_picks + c.greedy_picks, c.tasks);
    }
    if (scheme == Scheme::GSS) EXPECT_EQ(c.spec_picks, 0u);
  }
  // NPM never changes speed and reclaims no slack.
  EXPECT_EQ(pt.metrics.npm.speed_changes, 0u);
  EXPECT_EQ(pt.metrics.npm.reclaimed_slack_ps, 0u);

  // The registry carries the flushed engine totals and the pool telemetry.
  EXPECT_EQ(reg.counter("engine.NPM.dispatches").value(),
            pt.metrics.npm.dispatches);
  const int chunks = reg.counter("pool.chunks_completed").value() > 0
                         ? static_cast<int>(
                               reg.counter("pool.chunks_completed").value())
                         : 0;
  EXPECT_GT(chunks, 0);
}

TEST(ObsMetrics, ChunkAccountingCoversAllChunks) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = harness_config(33, 2);
  cfg.chunk_runs = 8;  // 33 runs -> 5 chunks (ceil)
  MetricsRegistry reg;
  cfg.collect_metrics = true;
  cfg.registry = &reg;
  ProgressReporter progress([](const ProgressSnapshot&) {},
                            std::chrono::hours(1));
  cfg.progress = &progress;
  (void)run_point(app, cfg, SimTime::from_ms(120), 0.0);

  EXPECT_EQ(reg.counter("pool.chunks_completed").value(), 5u);
  EXPECT_EQ(progress.total(), 5);
  EXPECT_EQ(progress.done(), 5);
}

TEST(ObsMetrics, ChunkDetailTracerOmitsPerRunSpans) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = harness_config(20, 1);
  Tracer tracer(Tracer::Detail::kChunks);
  cfg.tracer = &tracer;
  (void)run_point(app, cfg, SimTime::from_ms(120), 0.0);

  bool saw_chunk = false;
  for (const TraceEvent& ev : tracer.events()) {
    const std::string name = ev.name;
    saw_chunk = saw_chunk || name == "chunk";
    EXPECT_NE(name, "GSS");  // per-simulation spans need Detail::kRuns
    EXPECT_NE(name, "NPM");
  }
  EXPECT_TRUE(saw_chunk);

  // At kRuns detail the per-scheme spans appear.
  Tracer deep(Tracer::Detail::kRuns);
  ExperimentConfig cfg2 = harness_config(20, 1);
  cfg2.tracer = &deep;
  (void)run_point(app, cfg2, SimTime::from_ms(120), 0.0);
  bool saw_scheme = false;
  for (const TraceEvent& ev : deep.events())
    saw_scheme = saw_scheme || std::string(ev.name) == "GSS";
  EXPECT_TRUE(saw_scheme);
}

TEST(ObsMetrics, PoolBalanceJsonParses) {
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = harness_config(16, 2);
  const std::string doc =
      measure_pool_balance_json(app, cfg, {0.5, 1.0});
  const JsonValue v = json_parse(doc);
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("threads").number, 2.0);
  ASSERT_TRUE(v.at("chunks_per_slot").is_array());
  double total = 0.0;
  for (const JsonValue& c : v.at("chunks_per_slot").array) total += c.number;
  EXPECT_DOUBLE_EQ(total, v.at("chunk_seconds").at("count").number);
  EXPECT_GT(total, 0.0);
}

// ------------------------------------------------- energy attribution

TEST(EnergyAttribution, LedgerRebuildsRunEnergiesBitwise) {
  const Application app = apps::build_synthetic();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  const Overheads ovh;
  OfflineOptions opt;
  opt.cpus = 2;
  opt.deadline = SimTime::from_ms(120);
  opt.overhead_budget = ovh.worst_case_budget(pm.table());
  const OfflineResult off = analyze_offline(app, opt);

  SimWorkspace ws;
  SimCounters merged;
  double manual_total = 0.0;
  for (Scheme scheme : {Scheme::NPM, Scheme::SPM, Scheme::GSS, Scheme::SS1,
                        Scheme::SS2, Scheme::AS}) {
    auto policy = make_policy(scheme);
    Rng rng(100 + static_cast<std::uint64_t>(static_cast<int>(scheme)));
    for (int run = 0; run < 8; ++run) {
      const RunScenario sc = draw_scenario(app.graph, rng);
      policy->reset(off, pm);
      SimCounters c;
      SimOptions o;
      o.record_trace = false;
      o.counters = &c;
      o.audit = true;  // engine-side integer time-conservation assert
      const SimResult r = simulate(app, off, pm, ovh, *policy, sc, ws, o);

      // The fold over the exported integer ledger reproduces the engine's
      // energies bit-for-bit — same fold, same integers, same order.
      ASSERT_EQ(c.levels, pm.table().size()) << to_string(scheme);
      const EnergySplit split = attribution_energy(c, pm, ovh);
      EXPECT_EQ(split.busy, r.busy_energy) << to_string(scheme);
      EXPECT_EQ(split.overhead, r.overhead_energy) << to_string(scheme);
      EXPECT_EQ(split.idle, r.idle_energy) << to_string(scheme);
      EXPECT_EQ(split.total(), r.total_energy()) << to_string(scheme);

      merged.add(c);
      manual_total += r.total_energy();
    }
  }
  // The ledger is additive: folding the merged counters agrees with the
  // per-run total up to summation-order rounding.
  const EnergySplit agg = attribution_energy(merged, pm, ovh);
  EXPECT_NEAR(agg.total(), manual_total, 1e-9 * std::max(1.0, manual_total));

  // Static schemes never touch the DVS hardware: no transitions recorded.
  SimCounters npm_only;
  auto npm = make_policy(Scheme::NPM);
  Rng rng(100);
  const RunScenario sc = draw_scenario(app.graph, rng);
  npm->reset(off, pm);
  SimOptions o;
  o.record_trace = false;
  o.counters = &npm_only;
  (void)simulate(app, off, pm, ovh, *npm, sc, ws, o);
  for (std::uint64_t t : npm_only.transitions) EXPECT_EQ(t, 0u);
  for (std::uint64_t t : npm_only.compute_ps) EXPECT_EQ(t, 0u);
}

TEST(EnergyAttribution, MergeAdoptsAndRejectsLedgerShapes) {
  SimCounters a;
  a.levels = 2;
  a.busy_ps = {10, 20};
  a.compute_ps = {1, 2};
  a.transitions = {0, 3, 4, 0};
  a.idle_ps = 5;

  // Merging into an empty cell adopts the ledger wholesale.
  SimCounters cell;
  cell.add(a);
  EXPECT_EQ(cell.levels, 2u);
  EXPECT_EQ(cell.busy_ps, a.busy_ps);
  cell.add(a);  // elementwise integer accumulation
  EXPECT_EQ(cell.busy_ps[1], 40u);
  EXPECT_EQ(cell.transitions[1], 6u);
  EXPECT_EQ(cell.idle_ps, 10u);

  // Merging a ledger-free cell is a scalar-only no-op on the ledger.
  cell.add(SimCounters{});
  EXPECT_EQ(cell.busy_ps[0], 20u);

  // Ledgers recorded against different power tables cannot be merged.
  SimCounters b;
  b.levels = 3;
  b.busy_ps = {1, 2, 3};
  b.compute_ps = {0, 0, 0};
  b.transitions.assign(9, 0);
  EXPECT_THROW(cell.add(b), Error);
}

TEST(EnergyAttribution, FoldRejectsShapeMismatch) {
  const PowerModel pm(LevelTable::transmeta_tm5400());
  SimCounters empty;  // levels == 0: no ledger recorded
  EXPECT_THROW(attribution_energy(empty, pm, Overheads{}), Error);
}

// --------------------------------------------------- harness audit mode

TEST(ObsAudit, AuditedSweepBitIdenticalToPlain) {
  const Application app = apps::build_synthetic();
  const std::vector<double> loads = {0.4, 0.8};
  const std::string baseline =
      serialize_sweep(sweep_load(app, harness_config(20, 1), loads));

  for (int threads : {1, 4}) {
    // Audit + metrics: runs are re-accounted through run-local cells and
    // merged after the checks — the outputs must not move a bit.
    MetricsRegistry reg;
    ExperimentConfig cfg = harness_config(20, threads);
    cfg.audit = true;
    cfg.collect_metrics = true;
    cfg.registry = &reg;
    EXPECT_EQ(serialize_sweep(sweep_load(app, cfg, loads)), baseline)
        << "audit+metrics changed sweep output at threads=" << threads;

    // Audit alone (no metrics collection).
    ExperimentConfig bare = harness_config(20, threads);
    bare.audit = true;
    EXPECT_EQ(serialize_sweep(sweep_load(app, bare, loads)), baseline)
        << "audit changed sweep output at threads=" << threads;
  }
}

TEST(ObsAudit, Fig4SweepAuditsCleanAtOneAndFourThreads) {
  // The acceptance pin: a full fig4 sweep under audit at 1 and 4 threads.
  // Every run of every scheme (and the NPM baseline) passes all three
  // audit checks — ledger time conservation, exact counter-rebuilt
  // energies, power-trace integral — or evaluate_run throws and the test
  // fails. The attribution totals themselves must be thread-invariant.
  FigureDef fig = paper_figure("fig4a", /*runs=*/10);
  const Application app = figure_workload(fig);

  std::vector<SweepPoint> first;
  std::string first_bytes;
  for (int threads : {1, 4}) {
    MetricsRegistry reg;
    ExperimentConfig cfg = fig.config;
    cfg.threads = threads;
    cfg.audit = true;
    cfg.collect_metrics = true;
    cfg.registry = &reg;
    std::vector<SweepPoint> points = sweep_load(app, cfg, fig.xs);
    ASSERT_EQ(points.size(), fig.xs.size());

    for (const SweepPoint& pt : points) {
      ASSERT_TRUE(pt.metrics.enabled());
      ASSERT_EQ(pt.metrics.schemes.size(), cfg.schemes.size());
      for (const SimCounters& c : pt.metrics.schemes) {
        ASSERT_GT(c.levels, 0u);
        std::uint64_t busy = 0;
        for (std::uint64_t b : c.busy_ps) busy += b;
        EXPECT_GT(busy, 0u);
      }
      EXPECT_GT(pt.metrics.npm.levels, 0u);
    }

    // The flushed registry carries the per-level attribution counters.
    bool saw_busy = false, saw_idle = false;
    for (const auto& row : reg.snapshot().counters) {
      saw_busy = saw_busy || row.name.find(".busy_ps.L") != std::string::npos;
      saw_idle = saw_idle || row.name.find(".idle_ps") != std::string::npos;
    }
    EXPECT_TRUE(saw_busy);
    EXPECT_TRUE(saw_idle);

    const std::string bytes = serialize_sweep(points);
    if (first.empty()) {
      first = std::move(points);
      first_bytes = bytes;
      continue;
    }
    EXPECT_EQ(bytes, first_bytes);
    // Ledger totals are integer sums in fixed slot order: identical for
    // every thread count, field for field.
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (std::size_t s = 0; s < points[p].metrics.schemes.size(); ++s) {
        const SimCounters& c1 = first[p].metrics.schemes[s];
        const SimCounters& c4 = points[p].metrics.schemes[s];
        EXPECT_EQ(c1.levels, c4.levels);
        EXPECT_EQ(c1.busy_ps, c4.busy_ps);
        EXPECT_EQ(c1.compute_ps, c4.compute_ps);
        EXPECT_EQ(c1.transitions, c4.transitions);
        EXPECT_EQ(c1.idle_ps, c4.idle_ps);
      }
    }
  }
}

}  // namespace
}  // namespace paserta
