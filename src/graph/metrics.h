// Structural metrics of AND/OR applications.
//
// Characterizes a workload independent of any platform: critical path,
// parallelism, path counts and expected work — the quantities that predict
// how much static/dynamic slack the schemes will find. Used to describe
// random workloads in experiments and to sanity-check generators.
#pragma once

#include <cstddef>

#include "graph/program.h"

namespace paserta {

struct GraphMetrics {
  std::size_t nodes = 0;
  std::size_t tasks = 0;        // computation nodes
  std::size_t and_nodes = 0;
  std::size_t or_nodes = 0;
  std::size_t or_forks = 0;
  std::size_t edges = 0;

  /// Number of distinct execution paths (products of fork fan-outs along
  /// the hierarchy; loops already expanded).
  double path_count = 0.0;

  /// Longest WCET chain through the graph, treating OR forks as taking
  /// their longest alternative (time at f_max).
  SimTime critical_path{};

  /// Total worst-case work of the largest path (sum over the worst-case
  /// executed set) and expected work over path probabilities (ACETs).
  SimTime max_work{};
  SimTime expected_work{};

  /// max_work / critical_path: average width of the worst path — an upper
  /// bound on how many processors the application can keep busy.
  double parallelism = 0.0;
};

GraphMetrics compute_metrics(const Application& app);

}  // namespace paserta
