#include "serve/protocol.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "common/version.h"
#include "harness/json.h"

namespace paserta {
namespace {

/// Re-renders a parsed "id" member for the response echo. Only scalar ids
/// are accepted — an object/array id smells like a confused client.
std::string render_id(const JsonValue& v) {
  std::ostringstream os;
  JsonWriter w(os);
  switch (v.type) {
    case JsonValue::Type::String: w.value(v.str); break;
    case JsonValue::Type::Number: w.value(v.number); break;
    case JsonValue::Type::Bool: w.value(v.boolean); break;
    case JsonValue::Type::Null: w.null(); break;
    default:
      PASERTA_REQUIRE(false, "request id must be a scalar");
  }
  return os.str();
}

int int_field(const JsonValue& v, const char* name, int lo, int hi,
              int fallback) {
  const JsonValue* f = v.find(name);
  if (f == nullptr) return fallback;
  PASERTA_REQUIRE(f->type == JsonValue::Type::Number,
                  "request field '" << name << "' must be a number");
  const double d = f->number;
  PASERTA_REQUIRE(std::isfinite(d) && d == std::floor(d) && d >= lo &&
                      d <= hi,
                  "request field '" << name << "' must be an integer in ["
                                    << lo << ", " << hi << "]");
  return static_cast<int>(d);
}

Scheme scheme_of(const std::string& s) {
  if (s == "npm") return Scheme::NPM;
  if (s == "spm") return Scheme::SPM;
  if (s == "gss") return Scheme::GSS;
  if (s == "ss1") return Scheme::SS1;
  if (s == "ss2") return Scheme::SS2;
  if (s == "as") return Scheme::AS;
  PASERTA_REQUIRE(false, "unknown scheme '" << s
                         << "' (use npm, spm, gss, ss1, ss2 or as)");
  return Scheme::NPM;  // unreachable
}

}  // namespace

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

SimRequest parse_request(const std::string& line, const ServeLimits& limits) {
  PASERTA_REQUIRE(line.size() <= limits.max_request_bytes,
                  "request too large: " << line.size() << " bytes (limit "
                                        << limits.max_request_bytes << ")");
  const JsonValue doc = json_parse(line);
  PASERTA_REQUIRE(doc.is_object(), "request must be a JSON object");

  SimRequest req;
  if (const JsonValue* id = doc.find("id")) req.id_json = render_id(*id);

  if (const JsonValue* cmd = doc.find("cmd")) {
    PASERTA_REQUIRE(cmd->type == JsonValue::Type::String,
                    "request field 'cmd' must be a string");
    PASERTA_REQUIRE(cmd->str == "hello" || cmd->str == "simulate",
                    "unknown cmd '" << cmd->str
                                    << "' (use hello or simulate)");
    req.command = cmd->str;
  }
  if (req.command == "hello") return req;

  const JsonValue* graph = doc.find("graph");
  PASERTA_REQUIRE(graph != nullptr, "simulate request needs a 'graph'");
  if (graph->type == JsonValue::Type::String) {
    PASERTA_REQUIRE(!graph->str.empty() && graph->str[0] == '@',
                    "string 'graph' must name a builtin (@atr, @synthetic, "
                    "@mpeg); send inline text as {\"text\": ...}");
    req.graph = graph->str;
  } else if (graph->is_object()) {
    const JsonValue& text = graph->at("text");
    PASERTA_REQUIRE(text.type == JsonValue::Type::String,
                    "graph 'text' must be a string");
    PASERTA_REQUIRE(text.str.size() <= limits.max_graph_text_bytes,
                    "graph text too large: " << text.str.size()
                                             << " bytes (limit "
                                             << limits.max_graph_text_bytes
                                             << ")");
    req.graph = text.str;
    req.graph_is_text = true;
  } else {
    PASERTA_REQUIRE(false, "'graph' must be a builtin name or {\"text\": ...}");
  }

  if (const JsonValue* t = doc.find("table")) {
    PASERTA_REQUIRE(t->type == JsonValue::Type::String &&
                        (t->str == "transmeta" || t->str == "xscale"),
                    "request field 'table' must be \"transmeta\" or "
                    "\"xscale\"");
    req.table = t->str;
  }
  req.cpus = int_field(doc, "cpus", 1, limits.max_cpus, req.cpus);
  req.runs = int_field(doc, "runs", 1, limits.max_runs, req.runs);

  if (const JsonValue* h = doc.find("heuristic")) {
    PASERTA_REQUIRE(h->type == JsonValue::Type::String,
                    "request field 'heuristic' must be a string");
    if (h->str == "ltf") req.heuristic = ListHeuristic::LongestTaskFirst;
    else if (h->str == "stf") req.heuristic = ListHeuristic::ShortestTaskFirst;
    else if (h->str == "fifo") req.heuristic = ListHeuristic::InsertionOrder;
    else
      PASERTA_REQUIRE(false, "unknown heuristic '" << h->str
                             << "' (use ltf, stf or fifo)");
  }
  if (const JsonValue* s = doc.find("schemes")) {
    PASERTA_REQUIRE(s->is_array() && !s->array.empty(),
                    "request field 'schemes' must be a non-empty array");
    for (const JsonValue& e : s->array) {
      PASERTA_REQUIRE(e.type == JsonValue::Type::String,
                      "scheme names must be strings");
      req.schemes.push_back(scheme_of(e.str));
    }
  }
  if (const JsonValue* s = doc.find("seed")) {
    PASERTA_REQUIRE(s->type == JsonValue::Type::Number &&
                        std::isfinite(s->number) &&
                        s->number == std::floor(s->number) && s->number >= 0,
                    "request field 'seed' must be a non-negative integer");
    req.seed = static_cast<std::uint64_t>(s->number);
  }

  if (const JsonValue* st = doc.find("stream")) {
    PASERTA_REQUIRE(st->type == JsonValue::Type::Bool,
                    "request field 'stream' must be a boolean");
    req.stream = st->boolean;
  }

  const JsonValue* load = doc.find("load");
  const JsonValue* dms = doc.find("deadline_ms");
  PASERTA_REQUIRE(load == nullptr || dms == nullptr,
                  "give either 'load' or 'deadline_ms', not both");
  if (load != nullptr) {
    PASERTA_REQUIRE(load->type == JsonValue::Type::Number &&
                        std::isfinite(load->number) && load->number > 0.0 &&
                        load->number <= 1.0,
                    "request field 'load' must be in (0, 1]");
    req.load = load->number;
  }
  if (dms != nullptr) {
    PASERTA_REQUIRE(dms->type == JsonValue::Type::Number &&
                        std::isfinite(dms->number) && dms->number > 0.0,
                    "request field 'deadline_ms' must be a positive number");
    req.deadline_ms = dms->number;
  }
  return req;
}

std::string render_error(const std::string& id_json, const std::string& code,
                         const std::string& message) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (!id_json.empty()) w.key("id").raw(id_json);
  w.key("type").value("error").key("code").value(code)
      .key("message").value(message).end_object();
  return os.str();
}

std::string render_hello(const std::string& id_json) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (!id_json.empty()) w.key("id").raw(id_json);
  w.key("type").value("hello").key("server").value("paserta")
      .key("git_rev").value(build_git_rev()).key("build").value(build_type())
      .key("proto").value(1).end_object();
  return os.str();
}

std::string render_progress(const std::string& id_json, std::uint64_t done,
                            std::uint64_t total, const std::string& phase,
                            double elapsed_ms, std::uint64_t cycles,
                            std::uint64_t instructions) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (!id_json.empty()) w.key("id").raw(id_json);
  w.key("event").value("progress")
      .key("done").value(done)
      .key("total").value(total)
      .key("phase").value(phase)
      .key("elapsed_ms").value(elapsed_ms)
      .key("cycles").value(cycles)
      .key("instructions").value(instructions)
      .end_object();
  return os.str();
}

std::string render_result(const std::string& id_json,
                          std::uint64_t graph_hash, std::uint64_t coalesced,
                          double elapsed_ms,
                          const std::string& experiment_json) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (!id_json.empty()) w.key("id").raw(id_json);
  w.key("type").value("result")
      .key("graph_hash").value(hash_hex(graph_hash))
      .key("coalesced").value(coalesced)
      .key("elapsed_ms").value(elapsed_ms)
      .key("experiment").raw(experiment_json)
      .end_object();
  return os.str();
}

}  // namespace paserta
