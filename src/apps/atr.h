// Automated Target Recognition (ATR) workload (paper §1, §5).
//
// The paper evaluates an ATR application whose dependence graph it omits
// ("not shown due to space limitation"). This is a faithful reconstruction
// of the described behaviour: a frame is scanned for regions of interest
// (ROIs); the number of detected ROIs varies per frame (usually below the
// maximum, sometimes zero work can be skipped); each detected ROI is
// compared against all templates in parallel; results are merged into a
// report. The OR fork over the ROI count is the application's speculation
// point, and per-ROI pipelines provide the AND parallelism.
//
// Measured alpha for ATR in the paper is ~0.9 (little run-time slack),
// which is this builder's default.
#pragma once

#include <vector>

#include "graph/program.h"

namespace paserta::apps {

struct AtrConfig {
  /// Maximum number of ROIs per frame; one OR alternative per count 1..max.
  int max_rois = 4;
  /// P(k ROIs detected), k = 1..max_rois; defaults to {0.4, 0.3, 0.2, 0.1}
  /// when empty ("in most cases the number of detected ROIs is less than
  /// the maximum").
  std::vector<double> roi_count_prob;
  /// Templates each ROI is compared against (scales the matching WCET).
  int templates = 4;
  /// ACET/WCET ratio of every task (paper: ~0.9 measured).
  double alpha = 0.9;
  /// Frame-scan (detection) WCET.
  SimTime detect_wcet = SimTime::from_ms(4.0);
  /// Per-ROI extraction WCET.
  SimTime extract_wcet = SimTime::from_ms(2.0);
  /// Per-template comparison WCET (one ROI compares against all templates).
  SimTime compare_wcet_per_template = SimTime::from_ms(1.5);
  /// Per-ROI classification WCET.
  SimTime classify_wcet = SimTime::from_ms(2.0);
  /// Final report/merge WCET.
  SimTime report_wcet = SimTime::from_ms(3.0);
};

/// Builds the ATR application. Throws paserta::Error on invalid config.
Application build_atr(const AtrConfig& config = {});

}  // namespace paserta::apps
