// Cache-line-aligned allocator shared by the per-slot staging buffers
// (harness/experiment.cpp) and the batched engine's SoA slabs
// (sim/batch_engine.h): two slots' (or two lanes') arrays must never share
// a cache line, or concurrent writers would false-share on every store,
// and the batch slabs want 64-byte starts so per-lane rows can be aligned
// by construction.
#pragma once

#include <cstddef>
#include <new>

namespace paserta {

template <typename T>
struct CacheAlignedAlloc {
  using value_type = T;
  static constexpr std::size_t kAlign = 64;
  CacheAlignedAlloc() = default;
  template <typename U>
  CacheAlignedAlloc(const CacheAlignedAlloc<U>&) {}  // NOLINT
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlign});
  }
  template <typename U>
  bool operator==(const CacheAlignedAlloc<U>&) const {
    return true;
  }
};

/// Elements per lane-major row such that every row starts 64-byte aligned
/// when the slab itself is (CacheAlignedAlloc guarantees the start).
template <typename T>
constexpr std::size_t aligned_stride(std::size_t n) {
  const std::size_t per_line = 64 / sizeof(T);
  return (n + per_line - 1) / per_line * per_line;
}

}  // namespace paserta
