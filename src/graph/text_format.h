// Text format for AND/OR workloads.
//
// Lets workloads live as data files instead of C++ builders. The format is
// line-based; '#' starts a comment; times are milliseconds at f_max.
//
//   app synthetic
//
//   section               # a DAG of tasks
//     task A 8 5          # name wcet_ms acet_ms
//     task B 5 3
//     edge A B
//   end
//
//   task single 4 2       # sugar: one-task section
//
//   branch path           # OR fork/join with probabilistic alternatives
//     alt 0.35
//       task E 5 4
//     end
//     alt 0.65            # an alt with no body is a skipped path
//     end
//   end
//
//   loop scan 0.30 0.20 0.25 0.25   # P(1..K iterations); body follows
//     section
//       task D1 4 2
//       task D2 4 2
//     end
//   end
//
//   loop agg collapse 0.5 0.5        # collapse into one aggregate task
//     task body 2 1
//   end
//
// parse + serialize round-trip exactly (modulo comments/whitespace).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/program.h"

namespace paserta {

struct ParsedWorkload {
  std::string name;
  Program program;
};

/// Parses a workload; throws paserta::Error with a line number on syntax
/// or semantic errors.
ParsedWorkload parse_workload(std::istream& in);
ParsedWorkload parse_workload_string(const std::string& text);

/// Parses and flattens in one step.
Application load_application(std::istream& in);
Application load_application_string(const std::string& text);

/// Serializes a Program back to the text format.
void write_workload(std::ostream& os, const std::string& name,
                    const Program& program);
std::string workload_to_string(const std::string& name,
                               const Program& program);

}  // namespace paserta
