// Tests for the parallel Monte-Carlo harness: thread-count invariance
// (bit-identical results), stream-seed independence, and sweep_alpha's
// buffer-reuse optimization.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "apps/synthetic.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/offline.h"
#include "harness/experiment.h"
#include "sim/scenario.h"

namespace paserta {
namespace {

ExperimentConfig config(int runs, int threads) {
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.runs = runs;
  cfg.threads = threads;
  cfg.seed = 777;
  return cfg;
}

void expect_identical(const SweepPoint& a, const SweepPoint& b) {
  ASSERT_EQ(a.stats.size(), b.stats.size());
  EXPECT_DOUBLE_EQ(a.npm_energy.mean(), b.npm_energy.mean());
  EXPECT_DOUBLE_EQ(a.npm_energy.variance(), b.npm_energy.variance());
  for (std::size_t s = 0; s < a.stats.size(); ++s) {
    EXPECT_DOUBLE_EQ(a.stats[s].norm_energy.mean(),
                     b.stats[s].norm_energy.mean());
    EXPECT_DOUBLE_EQ(a.stats[s].norm_energy.variance(),
                     b.stats[s].norm_energy.variance());
    EXPECT_DOUBLE_EQ(a.stats[s].speed_changes.mean(),
                     b.stats[s].speed_changes.mean());
    EXPECT_DOUBLE_EQ(a.stats[s].busy_frac.mean(), b.stats[s].busy_frac.mean());
    EXPECT_EQ(a.stats[s].deadline_misses, b.stats[s].deadline_misses);
  }
}

TEST(ParallelHarness, ThreadCountInvariant) {
  const Application app = apps::build_synthetic();
  const SimTime d = SimTime::from_ms(120);
  const SweepPoint serial = run_point(app, config(40, 1), d, 0.0);
  for (int threads : {2, 3, 7}) {
    const SweepPoint parallel = run_point(app, config(40, threads), d, 0.0);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelHarness, MoreThreadsThanRuns) {
  const Application app = apps::build_synthetic();
  const SimTime d = SimTime::from_ms(120);
  const SweepPoint serial = run_point(app, config(3, 1), d, 0.0);
  const SweepPoint parallel = run_point(app, config(3, 16), d, 0.0);
  expect_identical(serial, parallel);
}

TEST(ParallelHarness, OverflowingChunkSpaceRejected) {
  // The flat chunk space is npoints * chunks_per_point; at chunk_runs=1
  // and runs=INT_MAX a two-point sweep overflows int. The harness must do
  // this arithmetic in 64 bits and reject the configuration up front —
  // before any per-run storage is allocated (the run-major outcome arrays
  // for INT_MAX runs would be hundreds of gigabytes).
  const Application app = apps::build_synthetic();
  ExperimentConfig cfg = config(std::numeric_limits<int>::max(), 2);
  cfg.chunk_runs = 1;
  EXPECT_THROW(sweep_load(app, cfg, {0.5, 1.0}), Error);
  // One point at the same runs/chunk still fits (chunks_per_point ==
  // INT_MAX exactly), so the rejection above is the product overflowing,
  // not a blanket cap on large run counts. Not executed here: actually
  // allocating INT_MAX runs of outcome storage is its own (intended)
  // failure mode, and the chunk-space validation fires before it.
}

TEST(ParallelHarness, ZeroThreadsRejected) {
  const Application app = apps::build_synthetic();
  auto cfg = config(5, 0);
  EXPECT_THROW(run_point(app, cfg, SimTime::from_ms(120), 0.0), Error);
}

TEST(StreamSeed, DistinctAndStable) {
  // Stability and pairwise distinctness across a realistic index range.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const std::uint64_t s = Rng::stream_seed(42, i);
    EXPECT_EQ(s, Rng::stream_seed(42, i));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 5000u);
  // Different experiment seeds give different streams.
  EXPECT_NE(Rng::stream_seed(1, 0), Rng::stream_seed(2, 0));
}

TEST(StreamSeed, StreamsAreDecorrelated) {
  // Adjacent streams should not produce correlated first draws.
  RunningStat diffs;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    Rng a(Rng::stream_seed(9, i));
    Rng b(Rng::stream_seed(9, i + 1));
    diffs.add(a.next_double() - b.next_double());
  }
  EXPECT_NEAR(diffs.mean(), 0.0, 0.03);
  // Variance of the difference of two independent U(0,1) is 1/6.
  EXPECT_NEAR(diffs.variance(), 1.0 / 6.0, 0.02);
}

/// The pre-optimization sweep_alpha, kept as the semantic reference: a
/// fresh Application copy per alpha and a recomputed (alpha-independent)
/// deadline. The production version reuses one variant buffer and hoists
/// the deadline; its output must stay bit-identical to this.
std::vector<SweepPoint> sweep_alpha_reference(const Application& app,
                                              const ExperimentConfig& cfg,
                                              double load,
                                              const std::vector<double>& alphas) {
  std::vector<SweepPoint> points;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    const double alpha = alphas[i];
    Application variant = app;
    Rng acet_rng(cfg.seed ^ (0x517CC1B727220A95ULL + i));
    assign_alpha(variant.graph, alpha, &acet_rng);
    const SimTime w = canonical_worst_makespan(
        variant, cfg.cpus, cfg.overheads.worst_case_budget(cfg.table),
        cfg.heuristic);
    const SimTime deadline{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / load))};
    points.push_back(run_point(variant, cfg, deadline, alpha));
  }
  return points;
}

TEST(ParallelHarness, SweepAlphaMatchesFreshCopyReference) {
  const Application app = apps::build_synthetic();
  const ExperimentConfig cfg = config(25, 2);
  const std::vector<double> alphas = {0.2, 0.5, 0.5, 0.9};
  const double load = 0.6;

  const std::vector<SweepPoint> ref = sweep_alpha_reference(app, cfg, load,
                                                            alphas);
  const std::vector<SweepPoint> opt = sweep_alpha(app, cfg, load, alphas);

  ASSERT_EQ(ref.size(), opt.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "alpha=" << alphas[i] << " i=" << i);
    EXPECT_DOUBLE_EQ(ref[i].x, opt[i].x);
    EXPECT_EQ(ref[i].deadline, opt[i].deadline);
    EXPECT_EQ(ref[i].worst_makespan, opt[i].worst_makespan);
    expect_identical(ref[i], opt[i]);
  }
}

TEST(ParallelHarness, RunsAreOrderIndependent) {
  // Evaluating run 7 in isolation must match run 7 within a batch: the
  // scenario depends only on (seed, run index).
  const Application app = apps::build_synthetic();
  Rng direct(Rng::stream_seed(777, 7));
  const RunScenario sc_direct = draw_scenario(app.graph, direct);

  // Re-derive the same run inside a different-size batch.
  Rng again(Rng::stream_seed(777, 7));
  const RunScenario sc_again = draw_scenario(app.graph, again);
  ASSERT_EQ(sc_direct.actual.size(), sc_again.actual.size());
  for (std::size_t i = 0; i < sc_direct.actual.size(); ++i) {
    EXPECT_EQ(sc_direct.actual[i], sc_again.actual[i]);
    EXPECT_EQ(sc_direct.or_choice[i], sc_again.or_choice[i]);
  }
}

}  // namespace
}  // namespace paserta
