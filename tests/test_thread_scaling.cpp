// Thread-scaling bit-identity suite: the contract the parallel-path
// restructure (per-slot staging buffers, per-slot sampler clones, batched
// chunk claiming — DESIGN.md §13) must preserve is that the rendered
// figure output is *byte-identical* to the unpooled single-thread
// reference at every thread count and chunk size, with audit and
// observability enabled. The full fig4a load sweep is rendered to CSV per
// configuration and compared as strings, so any reordering, dropped run,
// staging-merge mistake or float-accumulation change fails loudly. The
// suite carries the pool_smoke ctest label, so the pooled portion also
// runs under ThreadSanitizer in CI (cmake -DPASERTA_SANITIZE=thread;
// ctest -L pool_smoke).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/offline.h"
#include "harness/experiment.h"
#include "harness/figures.h"
#include "harness/report.h"
#include "obs/metrics.h"

namespace paserta {
namespace {

// Small enough to keep the 9-configuration sweep (and its TSan run) fast,
// large enough that every chunk-size regime below is distinct: chunk=1
// makes one chunk per run, chunk=kRuns one chunk per point, and the
// default auto size lands in between.
constexpr int kRuns = 40;

std::string render_csv(const FigureDef& fig,
                       const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  print_figure(os, fig.id, fig.caption, points, fig.x_name);
  return os.str();
}

// Unpooled reference: the pre-pool execution model (fresh strided
// std::thread set, fresh offline analysis, legacy per-run draw_scenario
// walk), serial, with observability and audit off. Everything the pooled
// path layers on top — persistent pool, chunk claiming, staging merge,
// offline cache, compiled samplers, the batched engine, audit, metrics —
// must be unobservable against this.
std::string unpooled_reference_csv(const FigureDef& fig,
                                   const Application& app) {
  ExperimentConfig ref_cfg = fig.config;
  ref_cfg.threads = 1;
  const SimTime w = canonical_worst_makespan(
      app, ref_cfg.cpus, ref_cfg.overheads.worst_case_budget(ref_cfg.table),
      ref_cfg.heuristic);
  std::vector<SweepPoint> ref_points;
  for (double load : fig.xs) {
    const SimTime deadline{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / load))};
    ref_points.push_back(run_point_unpooled(app, ref_cfg, deadline, load));
  }
  return render_csv(fig, ref_points);
}

TEST(ThreadScalingBitIdentity, Fig4aSweepMatchesUnpooledReference) {
  const FigureDef fig = paper_figure("fig4a", kRuns);
  const Application app = figure_workload(fig);
  const std::string ref_csv = unpooled_reference_csv(fig, app);
  ASSERT_FALSE(ref_csv.empty());

  for (int threads : {1, 2, 4}) {
    for (int chunk : {0, 1, kRuns}) {
      ExperimentConfig cfg = fig.config;
      cfg.threads = threads;
      cfg.chunk_runs = chunk;
      // Audit re-accounts every run three ways and metrics route through
      // the per-(point, slot, scheme) cells; both must stay write-only
      // for the simulation at every thread count.
      cfg.audit = true;
      cfg.collect_metrics = true;
      MetricsRegistry reg;  // scoped: keep the global registry clean
      cfg.registry = &reg;
      const std::string csv = render_csv(fig, sweep_load(app, cfg, fig.xs));
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " chunk_runs=" << chunk);
      EXPECT_EQ(csv, ref_csv);
    }
  }
}

// The batched engine (sim/batch_engine.h) under the same contract: the
// rendered fig4a sweep must stay byte-identical to the unpooled reference
// at every (thread count x batch size), with audit and metrics on. Batch
// sizes cover forced scalar (1), a small size that leaves sub-batch
// remainders wherever a claimed chunk's run count is not a multiple of 8,
// auto (0), and lanes = the whole point.
TEST(ThreadScalingBitIdentity, Fig4aSweepIdenticalAcrossBatchSizes) {
  const FigureDef fig = paper_figure("fig4a", kRuns);
  const Application app = figure_workload(fig);
  const std::string ref_csv = unpooled_reference_csv(fig, app);
  ASSERT_FALSE(ref_csv.empty());

  for (int threads : {1, 2, 4}) {
    for (int batch : {1, 8, 0, kRuns}) {
      ExperimentConfig cfg = fig.config;
      cfg.threads = threads;
      cfg.batch = batch;
      cfg.audit = true;
      cfg.collect_metrics = true;
      MetricsRegistry reg;
      cfg.registry = &reg;
      const std::string csv = render_csv(fig, sweep_load(app, cfg, fig.xs));
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " batch=" << batch);
      EXPECT_EQ(csv, ref_csv);
    }
  }
}

}  // namespace
}  // namespace paserta
