// ASCII Gantt rendering of simulation traces.
//
// Renders a per-processor timeline of one run — which task ran where, at
// which DVS level, where the voltage switches happened — plus a frequency
// ribbon per processor. Useful for examples, debugging and the paper's
// "who inherited whose slack" discussions.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/program.h"
#include "power/power_model.h"
#include "sim/engine.h"

namespace paserta {

struct GanttOptions {
  /// Total character width of the timeline.
  int width = 96;
  /// Show the frequency ribbon (one digit per column: 0 = f_min level,
  /// 9 = top level, scaled).
  bool frequency_ribbon = true;
  /// Mark the deadline column with '|'.
  bool show_deadline = true;
};

/// Renders the trace in `result` against the run's deadline.
void render_gantt(std::ostream& os, const Application& app,
                  const OfflineResult& off, const PowerModel& pm,
                  const SimResult& result, const GanttOptions& options = {});

std::string gantt_to_string(const Application& app, const OfflineResult& off,
                            const PowerModel& pm, const SimResult& result,
                            const GanttOptions& options = {});

}  // namespace paserta
