
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/atr.cpp" "src/CMakeFiles/paserta.dir/apps/atr.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/apps/atr.cpp.o.d"
  "/root/repo/src/apps/layered.cpp" "src/CMakeFiles/paserta.dir/apps/layered.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/apps/layered.cpp.o.d"
  "/root/repo/src/apps/mpeg.cpp" "src/CMakeFiles/paserta.dir/apps/mpeg.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/apps/mpeg.cpp.o.d"
  "/root/repo/src/apps/random_app.cpp" "src/CMakeFiles/paserta.dir/apps/random_app.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/apps/random_app.cpp.o.d"
  "/root/repo/src/apps/synthetic.cpp" "src/CMakeFiles/paserta.dir/apps/synthetic.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/apps/synthetic.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/paserta.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/common/error.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/paserta.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/significance.cpp" "src/CMakeFiles/paserta.dir/common/significance.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/common/significance.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/paserta.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/common/table.cpp.o.d"
  "/root/repo/src/common/time.cpp" "src/CMakeFiles/paserta.dir/common/time.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/common/time.cpp.o.d"
  "/root/repo/src/core/independent.cpp" "src/CMakeFiles/paserta.dir/core/independent.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/core/independent.cpp.o.d"
  "/root/repo/src/core/list_sched.cpp" "src/CMakeFiles/paserta.dir/core/list_sched.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/core/list_sched.cpp.o.d"
  "/root/repo/src/core/offline.cpp" "src/CMakeFiles/paserta.dir/core/offline.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/core/offline.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/CMakeFiles/paserta.dir/core/oracle.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/core/oracle.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/paserta.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/paserta.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/paserta.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/paserta.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/CMakeFiles/paserta.dir/graph/metrics.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/graph/metrics.cpp.o.d"
  "/root/repo/src/graph/program.cpp" "src/CMakeFiles/paserta.dir/graph/program.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/graph/program.cpp.o.d"
  "/root/repo/src/graph/text_format.cpp" "src/CMakeFiles/paserta.dir/graph/text_format.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/graph/text_format.cpp.o.d"
  "/root/repo/src/graph/validate.cpp" "src/CMakeFiles/paserta.dir/graph/validate.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/graph/validate.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/paserta.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/figures.cpp" "src/CMakeFiles/paserta.dir/harness/figures.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/harness/figures.cpp.o.d"
  "/root/repo/src/harness/json.cpp" "src/CMakeFiles/paserta.dir/harness/json.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/harness/json.cpp.o.d"
  "/root/repo/src/harness/regression.cpp" "src/CMakeFiles/paserta.dir/harness/regression.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/harness/regression.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/paserta.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/harness/report.cpp.o.d"
  "/root/repo/src/power/level_table.cpp" "src/CMakeFiles/paserta.dir/power/level_table.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/power/level_table.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/paserta.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/power/power_model.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/paserta.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/gantt.cpp" "src/CMakeFiles/paserta.dir/sim/gantt.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/sim/gantt.cpp.o.d"
  "/root/repo/src/sim/power_trace.cpp" "src/CMakeFiles/paserta.dir/sim/power_trace.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/sim/power_trace.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/CMakeFiles/paserta.dir/sim/scenario.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/sim/scenario.cpp.o.d"
  "/root/repo/src/sim/svg.cpp" "src/CMakeFiles/paserta.dir/sim/svg.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/sim/svg.cpp.o.d"
  "/root/repo/src/sim/trace_stats.cpp" "src/CMakeFiles/paserta.dir/sim/trace_stats.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/sim/trace_stats.cpp.o.d"
  "/root/repo/src/sim/verify.cpp" "src/CMakeFiles/paserta.dir/sim/verify.cpp.o" "gcc" "src/CMakeFiles/paserta.dir/sim/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
