# Empty dependencies file for test_list_sched.
# This may be replaced when dependencies are built.
