// Schedule viewer: load a workload from a text file, run it under two
// schemes and render their Gantt charts side by side.
//
//   $ ./schedule_viewer [workload_file] [load] [cpus]
//
// Defaults to the bundled video-analytics pipeline at load 0.5 on 2 CPUs.
// Shows the workload-as-data pathway (graph/text_format.h), the Gantt
// renderer and the trace analytics in one place.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/offline.h"
#include "core/oracle.h"
#include "graph/text_format.h"
#include "sim/gantt.h"
#include "sim/trace_stats.h"

using namespace paserta;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "examples/workloads/videopipe.workload";
  const double load = argc > 2 ? std::atof(argv[2]) : 0.5;
  const int cpus = argc > 3 ? std::max(1, std::atoi(argv[3])) : 2;

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open workload file '" << path
              << "' (run from the repository root, or pass a path)\n";
    return 1;
  }
  const Application app = load_application(in);
  std::cout << "Loaded '" << app.name << "': " << app.graph.task_count()
            << " tasks, " << app.or_fork_count() << " OR fork(s)\n";

  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;
  OfflineOptions opt;
  opt.cpus = cpus;
  opt.overhead_budget = ovh.worst_case_budget(pm.table());
  const SimTime w = canonical_worst_makespan(app, cpus, opt.overhead_budget);
  opt.deadline = SimTime{static_cast<std::int64_t>(
      static_cast<double>(w.ps) / load + 1)};
  const OfflineResult off = analyze_offline(app, opt);
  std::cout << "W = " << to_string(w) << ", deadline = "
            << to_string(off.deadline()) << " (load " << load << "), "
            << cpus << "x Intel XScale\n\n";

  Rng rng(2002);
  const RunScenario sc = draw_scenario(app.graph, rng);

  for (Scheme scheme : {Scheme::GSS, Scheme::SS1}) {
    const SimResult r = simulate(app, off, pm, ovh, scheme, sc);
    const TraceStats st = analyze_trace(app, off, pm, r);
    std::cout << "=== " << to_string(scheme) << " ===  energy "
              << r.total_energy() * 1e3 << " mJ, " << r.speed_changes
              << " switch(es), utilization "
              << static_cast<int>(st.utilization * 100) << "%, dominant level "
              << st.dominant_level().freq / kMHz << " MHz\n";
    render_gantt(std::cout, app, off, pm, r);
    std::cout << "\n";
  }

  const OracleResult oracle = clairvoyant_oracle(app, off, pm, ovh, sc);
  std::cout << "clairvoyant single-speed optimum for this frame: "
            << pm.table().level(oracle.level).freq / kMHz << " MHz, "
            << oracle.energy * 1e3 << " mJ\n";
  return 0;
}
