file(REMOVE_RECURSE
  "CMakeFiles/test_property_platforms.dir/test_property_platforms.cpp.o"
  "CMakeFiles/test_property_platforms.dir/test_property_platforms.cpp.o.d"
  "test_property_platforms"
  "test_property_platforms.pdb"
  "test_property_platforms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
