// Online multiprocessor scheduling engine (paper §3.2, Figure 2).
//
// Identical processors share a global ready queue kept in canonical
// execution order (EO). Each idle processor tries to dequeue the head;
// a computation node may be taken only when its EO equals the next
// expected order NEO (OR nodes may jump ahead — their EO skips untaken
// alternatives, and NEO is reset to EO+1 after they fire). Processors that
// find the head non-dispatchable sleep and are signalled when new work at
// the head becomes dispatchable.
//
// Dummy AND/OR nodes execute in zero time on the dispatching processor.
// For computation nodes the engine charges the speed-computation overhead
// (cycles at the current frequency), asks the SpeedPolicy for a level
// (greedy slack reclamation against the task's estimated end time
// EET = LST + inflated WCET, optionally raised to a speculative floor),
// charges a voltage-transition overhead when the level changes, and runs
// the task for actual_time * f_max / f.
//
// Energy is integrated over [0, deadline]: busy + overhead + transition
// energy plus idle/sleep energy at the model's idle power.
//
// The engine keeps no heap state of its own: every per-run buffer lives in
// a caller-owned SimWorkspace that is cleared — not reallocated — between
// runs, so Monte-Carlo loops (harness/experiment.cpp) pay zero per-run
// allocation. Trace recording is opt-in via SimOptions::record_trace; the
// convenience overloads without a workspace record traces (the verifier,
// Gantt/SVG tools and tests consume them).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/offline.h"
#include "core/policy.h"
#include "graph/program.h"
#include "obs/metrics.h"
#include "power/power_model.h"
#include "sim/scenario.h"

namespace paserta {

/// Trace record of one dispatched node.
struct TaskRecord {
  NodeId node;
  int cpu = -1;
  std::uint32_t eo = 0;
  SimTime dispatch_time{};  // when dequeued (Figure 2 step 4)
  SimTime exec_start{};     // after overheads
  SimTime finish{};
  std::size_t level = 0;        // level index the task ran at
  std::size_t level_before = 0; // processor's level at dispatch time
  bool switched = false;        // a voltage transition was charged
  int chosen_alt = -1;      // OR forks: selected alternative
};

/// Per-run simulation knobs.
struct SimOptions {
  /// Record one TaskRecord per dispatched node into SimResult::trace.
  /// Only the trace verifier, the Gantt/SVG renderers and the trace
  /// analytics need traces; aggregate-only consumers (the Monte-Carlo
  /// harness) turn this off to keep the hot loop allocation-free.
  bool record_trace = true;
  /// Debug completeness check: after the run, recompute the taken-path
  /// closure with a full graph traversal and require that exactly those
  /// nodes were dispatched. The engine always enforces the cheap inline
  /// equivalent (O(1) accounting per release: an empty ready queue and no
  /// partially-released node at the end), so this second walk is pure
  /// defense-in-depth; the convenience simulate() overloads and the
  /// trace-verifying harness path turn it on, Monte-Carlo hot loops leave
  /// it off.
  bool check_completeness = false;
  /// Optional telemetry sink: when set, the engine adds dispatch counts,
  /// DVS activity, reclaimed-slack time and the energy-attribution ledger
  /// (per-level busy/compute picoseconds, per-pair transition counts, idle
  /// picoseconds) for this run into the struct (plain accumulation, no
  /// synchronization — the cell must be owned by the calling thread). Null
  /// keeps the hot path increment-free.
  SimCounters* counters = nullptr;
  /// Self-audit: after the run, assert the integer time-conservation
  /// invariant of the attribution ledger — the per-level busy and
  /// speed-computation picoseconds plus (transition count x switch time)
  /// must equal the summed per-CPU busy time exactly. Cheap (O(levels^2)
  /// integer adds) but pure defense-in-depth, so off by default; the
  /// harness audit path (ExperimentConfig::audit) additionally rebuilds
  /// the energies from exported counters via attribution_energy().
  bool audit = false;
};

/// Reusable scratch space of the simulation engine: the NUP counters,
/// ready queue, completion heap, per-CPU state, trace buffer and the
/// scratch of the end-of-run completeness check. One workspace serves one
/// simulation at a time (one per worker thread); buffers grow to the
/// high-water mark of the runs they serve and are then reused without
/// touching the allocator. Treat the members as engine-internal: construct
/// the object and pass it to simulate().
struct SimWorkspace {
  struct Cpu {
    std::size_t level = 0;
    bool sleeping = false;
    SimTime busy{};  // total non-idle time (exec + overheads)
  };

  std::vector<std::uint32_t> nup;
  // Ready queue keyed on (EO, node id) packed into one u64
  // (engine_core::ready_key), kept sorted descending so the minimum sits
  // at the back: pop is O(1), insert shifts the (tiny) tail. EOs of
  // coexisting ready nodes are unique by construction, the id is a
  // deterministic safety net; the unique total order makes the pop
  // sequence identical to the binary heap this replaces. The same flat
  // layout and helpers back the batched engine's per-lane queues.
  std::vector<std::uint64_t> ready;
  // Outstanding completions, at most one per CPU, as parallel flat arrays:
  // the comparator keys (finish, seq — unique) are scanned by
  // engine_core::completion_min and the payload (cpu, node) rides in
  // ev_meta. Extraction order is deterministic regardless of layout.
  std::vector<std::int64_t> ev_finish;
  std::vector<std::uint64_t> ev_seq;
  std::vector<std::uint64_t> ev_meta;
  std::vector<Cpu> cpus;
  // Per-level speed-computation overhead cache
  // (cycles_to_time(speed_compute_cycles, level freq) — a pure function of
  // the table), rebuilt only when the workspace meets a different power
  // table or overhead config.
  std::vector<SimTime> dt_compute;
  const void* dt_key = nullptr;      // identity of the cached level table
  std::uint32_t dt_cycles = 0;       // cached speed_compute_cycles
  std::vector<TaskRecord> trace;
  // Energy-attribution ledger of the current run: task time and
  // speed-computation time per voltage level (picoseconds), transition
  // counts per ordered level pair (row-major [from * levels + to]). The
  // engine accumulates energy-bearing time here as integers and converts
  // to joules once at end of run — one canonical fold shared with
  // attribution_energy(), so exported SimCounters reproduce SimResult's
  // energies bit-for-bit.
  std::vector<std::uint64_t> busy_ps;
  std::vector<std::uint64_t> compute_ps;
  std::vector<std::uint64_t> transitions;
  // Touched-entry lists: a run writes only a few levels and transition
  // pairs, so the fold and the per-run reset walk these lists instead of
  // the level table / L x L matrix; both are sorted before folding to
  // keep the canonical ascending-index order. level_touched is the
  // per-level dedup flag behind touched_levels.
  std::vector<std::uint32_t> touched_levels;
  std::vector<char> level_touched;
  std::vector<std::uint32_t> touched_transitions;
  // Scratch of the taken-path closure (SimOptions::check_completeness).
  std::vector<std::uint32_t> reach_nup;
  std::vector<std::uint32_t> reach_stack;
  std::vector<char> reached;
};

/// Result of one simulated run of one scheme.
struct SimResult {
  Energy busy_energy = 0.0;        // task execution
  Energy overhead_energy = 0.0;    // speed computation + transitions
  Energy idle_energy = 0.0;        // idle/sleep until the deadline
  SimTime finish_time{};
  std::uint32_t speed_changes = 0;
  std::uint32_t dispatched = 0;
  bool deadline_met = false;
  std::vector<TaskRecord> trace;   // empty unless SimOptions::record_trace

  Energy total_energy() const {
    return busy_energy + overhead_energy + idle_energy;
  }
};

/// Simulates one run. `off` must come from analyze_offline on the same
/// application with the same CPU count; `off.feasible()` should hold for
/// the deadline guarantee to apply (the engine still runs otherwise and
/// reports deadline_met = false when it misses). The workspace overload is
/// the hot-loop entry point: it performs no heap allocation once the
/// workspace buffers have reached their steady-state sizes.
SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   SpeedPolicy& policy, const RunScenario& scenario,
                   SimWorkspace& workspace, const SimOptions& options = {});

/// Convenience: simulate with a one-shot internal workspace, recording a
/// full trace and running the debug completeness traversal (the
/// pre-workspace behaviour; used by tools and tests).
SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   SpeedPolicy& policy, const RunScenario& scenario);

/// Convenience: build the policy for `scheme`, reset it, and simulate.
SimResult simulate(const Application& app, const OfflineResult& off,
                   const PowerModel& pm, const Overheads& overheads,
                   Scheme scheme, const RunScenario& scenario);

/// The set of nodes that execute under the given fork choices (taken-path
/// closure from the sources). Exposed for the verifier and tests.
std::vector<bool> executed_set(const AndOrGraph& g, const RunScenario& sc);

/// Energy split rebuilt from an attribution ledger (see SimCounters).
struct EnergySplit {
  Energy busy = 0.0;
  Energy overhead = 0.0;
  Energy idle = 0.0;
  Energy total() const { return busy + overhead + idle; }
};

/// Folds an exported attribution ledger back into joules through the power
/// table. This is the engine's own end-of-run energy computation (the same
/// fold, on the same integers, in the same order), so for a single run's
/// counters the result equals SimResult::busy_energy / overhead_energy /
/// idle_energy bit-for-bit — the invariant audit mode checks. `c.levels`
/// must match `pm`'s level table and `ovh` must be the Overheads the run
/// used. Counters summed over many runs of one (power model, overheads)
/// configuration fold to the same-order energy totals.
EnergySplit attribution_energy(const SimCounters& c, const PowerModel& pm,
                               const Overheads& ovh);

}  // namespace paserta
