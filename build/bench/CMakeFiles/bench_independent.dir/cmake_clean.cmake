file(REMOVE_RECURSE
  "CMakeFiles/bench_independent.dir/bench_independent.cpp.o"
  "CMakeFiles/bench_independent.dir/bench_independent.cpp.o.d"
  "bench_independent"
  "bench_independent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_independent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
