// Flat AND/OR task graph (paper §2.1).
//
// The graph is a DAG over Computation / AND / OR nodes. It is usually built
// through the hierarchical `ProgramBuilder` (graph/program.h), which
// guarantees the paper's structural constraints by construction; hand-built
// graphs can be checked with `validate()`.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/node.h"

namespace paserta {

class AndOrGraph {
 public:
  /// Adds a computation node; `wcet >= acet > 0` is enforced by validate().
  NodeId add_task(std::string name, SimTime wcet, SimTime acet);

  /// Adds an AND synchronization node (dummy, zero time).
  NodeId add_and(std::string name);

  /// Adds an OR synchronization node (dummy, zero time). Successor
  /// probabilities are attached via `add_or_edge`.
  NodeId add_or(std::string name);

  /// Adds a dependence edge `from -> to`.
  void add_edge(NodeId from, NodeId to);

  /// Adds an edge out of an OR fork annotated with its branch probability.
  void add_or_edge(NodeId or_fork, NodeId to, double probability);

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  const Node& node(NodeId id) const { return nodes_.at(id.value); }
  Node& node(NodeId id) { return nodes_.at(id.value); }
  const Node& operator[](NodeId id) const { return nodes_.at(id.value); }

  /// Contiguous node storage, indexed by NodeId::value. Hot paths that
  /// have already validated their ids (the simulation engine) index this
  /// span directly instead of paying node()'s bounds check per access.
  std::span<const Node> nodes() const { return nodes_; }

  /// All node ids, in insertion order.
  std::vector<NodeId> all_nodes() const;

  /// Nodes with no predecessors.
  std::vector<NodeId> sources() const;
  /// Nodes with no successors.
  std::vector<NodeId> sinks() const;

  /// Topological order; throws paserta::Error if the graph has a cycle.
  std::vector<NodeId> topo_order() const;

  /// Number of computation (non-dummy) nodes.
  std::size_t task_count() const;

  /// Sum of computation-node WCETs / ACETs (total work at f_max).
  SimTime total_wcet() const;
  SimTime total_acet() const;

  /// Overwrite every computation node's ACET (used by alpha sweeps).
  void set_acet(NodeId id, SimTime acet);

  /// Full structural validation; throws paserta::Error describing the first
  /// violation found. Checks:
  ///  * acyclicity;
  ///  * computation nodes: 0 < acet <= wcet, no branch probabilities;
  ///  * dummy nodes: zero wcet/acet;
  ///  * OR forks: one probability per successor, each in (0,1], sum == 1;
  ///  * non-fork nodes carry no probabilities; an OR with one successor may
  ///    carry a single probability of 1;
  ///  * OR joins: predecessors pairwise mutually exclusive (reachable only
  ///    via distinct alternatives of some OR fork);
  ///  * every non-OR node with >1 predecessors is an AND join... (AND
  ///    semantics also apply to computation nodes, which is legal);
  ///  * OR forks have at most one predecessor is NOT required, but each OR
  ///    node must have at least one of preds/succs unless it is the sole
  ///    node of the graph.
  void validate() const;

  /// Find a node by name (first match); mostly for tests and examples.
  std::optional<NodeId> find(const std::string& name) const;

 private:
  NodeId add_node(Node n);

  std::vector<Node> nodes_;
};

}  // namespace paserta
