// Unit tests for the offline phase: canonical makespans, execution orders,
// latest start times (shifted schedules) and PMP speculation profiles.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/offline.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }
TaskSpec t(const char* n, double w, double a) {
  return TaskSpec{n, ms(w), ms(a)};
}

OfflineOptions opts(int cpus, SimTime deadline,
                    SimTime budget = SimTime::zero()) {
  OfflineOptions o;
  o.cpus = cpus;
  o.deadline = deadline;
  o.overhead_budget = budget;
  return o;
}

TEST(Offline, ChainOnOneCpu) {
  Program p;
  p.chain({t("a", 4, 2), t("b", 6, 3)});
  const Application app = build_application("chain", p);
  const OfflineResult off = analyze_offline(app, opts(1, ms(20)));

  EXPECT_EQ(off.worst_makespan(), ms(10));
  EXPECT_EQ(off.average_makespan(), ms(5));
  EXPECT_TRUE(off.feasible());

  const NodeId a = *app.graph.find("a");
  const NodeId b = *app.graph.find("b");
  EXPECT_EQ(off.eo(a), 0u);
  EXPECT_EQ(off.eo(b), 1u);
  // Shifted schedule ends at the deadline: b [14,20], a [10,14].
  EXPECT_EQ(off.lst(b), ms(14));
  EXPECT_EQ(off.lst(a), ms(10));
  EXPECT_EQ(off.eet(a), ms(14));
  EXPECT_EQ(off.eet(b), ms(20));
}

TEST(Offline, InfeasibleDeadlineDetected) {
  Program p;
  p.task("big", ms(50), ms(10));
  const Application app = build_application("big", p);
  const OfflineResult off = analyze_offline(app, opts(2, ms(20)));
  EXPECT_FALSE(off.feasible());
  EXPECT_EQ(off.worst_makespan(), ms(50));
}

TEST(Offline, BranchWorstUsesLongestAlternative) {
  Program x, y;
  x.task("x", ms(4), ms(2));
  y.task("y", ms(8), ms(6));
  Program p;
  p.task("pre", ms(2), ms(1));
  p.branch("o", {{0.5, std::move(x)}, {0.5, std::move(y)}});
  const Application app = build_application("br", p);
  const OfflineResult off = analyze_offline(app, opts(2, ms(20)));

  // W = 2 + max(4, 8); A = 1 + 0.5*2 + 0.5*6.
  EXPECT_EQ(off.worst_makespan(), ms(10));
  EXPECT_EQ(off.average_makespan(), ms(5));

  const NodeId pre = *app.graph.find("pre");
  const NodeId nx = *app.graph.find("x");
  const NodeId ny = *app.graph.find("y");
  const StructSegment& br = app.structure.segments[1];

  // Each alternative's shifted schedule finishes exactly at the deadline.
  EXPECT_EQ(off.lst(br.join), ms(20));
  EXPECT_EQ(off.lst(nx), ms(16));
  EXPECT_EQ(off.lst(ny), ms(12));
  // The fork must fire early enough for the longest alternative.
  EXPECT_EQ(off.lst(br.fork), ms(12));
  EXPECT_EQ(off.lst(pre), ms(10));
}

TEST(Offline, BranchExecutionOrdersShareSlots) {
  Program x, y;
  x.chain({t("x1", 1, 1), t("x2", 1, 1)});
  y.task("y", ms(8), ms(6));
  Program p;
  p.task("pre", ms(2), ms(1));
  p.branch("o", {{0.5, std::move(x)}, {0.5, std::move(y)}});
  p.task("post", ms(1), ms(1));
  const Application app = build_application("eo", p);
  const OfflineResult off = analyze_offline(app, opts(2, ms(30)));

  const StructSegment& br = app.structure.segments[1];
  EXPECT_EQ(off.eo(*app.graph.find("pre")), 0u);
  EXPECT_EQ(off.eo(br.fork), 1u);
  // Both alternatives start at EO 2; x-alt spans 2 slots, y-alt 1 (plus
  // the glue-free single task). Join EO = 2 + max(2,1) = 4.
  EXPECT_EQ(off.eo(*app.graph.find("x1")), 2u);
  EXPECT_EQ(off.eo(*app.graph.find("x2")), 3u);
  EXPECT_EQ(off.eo(*app.graph.find("y")), 2u);
  EXPECT_EQ(off.eo(br.join), 4u);
  EXPECT_EQ(off.eo(*app.graph.find("post")), 5u);
  EXPECT_EQ(off.max_eo(), 6u);
}

TEST(Offline, ForkProfilesCarryPerPathRemainingTimes) {
  Program x, y;
  x.task("x", ms(4), ms(2));
  y.task("y", ms(8), ms(6));
  Program p;
  p.branch("o", {{0.25, std::move(x)}, {0.75, std::move(y)}});
  p.task("post", ms(2), ms(1));
  const Application app = build_application("prof", p);
  const OfflineResult off = analyze_offline(app, opts(2, ms(30)));

  const StructSegment& br = app.structure.segments[0];
  ASSERT_TRUE(off.has_fork_profile(br.fork));
  const OrForkProfile& prof = off.fork_profile(br.fork);
  ASSERT_EQ(prof.rem_w_alt.size(), 2u);
  // Worst remaining: alternative + the 2ms epilogue.
  EXPECT_EQ(prof.rem_w_alt[0], ms(6));
  EXPECT_EQ(prof.rem_w_alt[1], ms(10));
  EXPECT_EQ(prof.rem_a_alt[0], ms(3));
  EXPECT_EQ(prof.rem_a_alt[1], ms(7));
  // After the join only the epilogue remains.
  EXPECT_EQ(off.rem_w_after(br.join), ms(2));
  EXPECT_EQ(off.rem_a_after(br.join), ms(1));
  // Whole-application A = 0.25*2 + 0.75*6 + 1 = 6; matches the fork's
  // expected remaining time at time zero.
  EXPECT_EQ(off.average_makespan(), ms(6));
  EXPECT_EQ(off.rem_a_after(br.fork) + SimTime::zero(), ms(6));
}

TEST(Offline, OverheadBudgetInflatesWcets) {
  Program p;
  p.chain({t("a", 4, 2), t("b", 6, 3)});
  const Application app = build_application("infl", p);
  const SimTime budget = SimTime::from_us(10);
  const OfflineResult off = analyze_offline(app, opts(1, ms(20), budget));
  EXPECT_EQ(off.worst_makespan(), ms(10) + budget * 2);
  const NodeId a = *app.graph.find("a");
  EXPECT_EQ(off.inflated_wcet(a), ms(4) + budget);
  EXPECT_EQ(off.eet(a), off.lst(a) + ms(4) + budget);
}

TEST(Offline, DummiesAreNotInflated) {
  Program x, y;
  x.task("x", ms(4), ms(2));
  y.task("y", ms(8), ms(6));
  Program p;
  p.branch("o", {{0.5, std::move(x)}, {0.5, std::move(y)}});
  const Application app = build_application("dummy", p);
  const OfflineResult off =
      analyze_offline(app, opts(1, ms(20), SimTime::from_us(10)));
  const StructSegment& br = app.structure.segments[0];
  EXPECT_EQ(off.inflated_wcet(br.fork), SimTime::zero());
  EXPECT_EQ(off.inflated_wcet(br.join), SimTime::zero());
}

TEST(Offline, ParallelSectionUsesProcessors) {
  Program p;
  p.parallel({t("a", 4, 4), t("b", 4, 4), t("c", 4, 4), t("d", 4, 4)});
  const Application app = build_application("par", p);
  EXPECT_EQ(analyze_offline(app, opts(1, ms(100))).worst_makespan(), ms(16));
  EXPECT_EQ(analyze_offline(app, opts(2, ms(100))).worst_makespan(), ms(8));
  EXPECT_EQ(analyze_offline(app, opts(4, ms(100))).worst_makespan(), ms(4));
}

TEST(Offline, LstNonNegativeWhenFeasible) {
  Program p;
  p.chain({t("a", 4, 2), t("b", 6, 3)});
  p.parallel({t("c", 3, 2), t("d", 5, 4)});
  const Application app = build_application("mix", p);
  const OfflineResult off = analyze_offline(app, opts(2, ms(15)));
  ASSERT_TRUE(off.feasible());
  for (NodeId id : app.graph.all_nodes())
    EXPECT_GE(off.lst(id), SimTime::zero());
}

TEST(Offline, CanonicalWorstMakespanMatchesFullAnalysis) {
  Program x, y;
  x.task("x", ms(4), ms(2));
  y.chain({t("y1", 3, 1), t("y2", 3, 1)});
  Program p;
  p.task("pre", ms(2), ms(1));
  p.branch("o", {{0.5, std::move(x)}, {0.5, std::move(y)}});
  const Application app = build_application("wm", p);
  const SimTime w = canonical_worst_makespan(app, 2, SimTime::zero());
  const OfflineResult off = analyze_offline(app, opts(2, ms(100)));
  EXPECT_EQ(w, off.worst_makespan());
  EXPECT_EQ(w, ms(8));
}

TEST(Offline, RejectsBadOptions) {
  Program p;
  p.task("a", ms(1), ms(1));
  const Application app = build_application("bad", p);
  EXPECT_THROW(analyze_offline(app, opts(0, ms(1))), Error);
  EXPECT_THROW(analyze_offline(app, opts(1, SimTime::zero())), Error);
}

TEST(Offline, NestedBranchLstRecursion) {
  // outer: 0.5 -> {inner branch}, 0.5 -> z(10). Inner: 0.5 -> a(2),
  // 0.5 -> b(6).
  Program a, b;
  a.task("a", ms(2), ms(1));
  b.task("b", ms(6), ms(3));
  Program inner;
  inner.branch("inner", {{0.5, std::move(a)}, {0.5, std::move(b)}});
  Program z;
  z.task("z", ms(10), ms(5));
  Program p;
  p.branch("outer", {{0.5, std::move(inner)}, {0.5, std::move(z)}});
  const Application app = build_application("nest", p);
  const OfflineResult off = analyze_offline(app, opts(1, ms(20)));

  // W = max(max(2,6), 10) = 10.
  EXPECT_EQ(off.worst_makespan(), ms(10));
  // Every alternative's shifted schedule ends at D = 20.
  EXPECT_EQ(off.lst(*app.graph.find("z")), ms(10));
  EXPECT_EQ(off.lst(*app.graph.find("b")), ms(14));
  EXPECT_EQ(off.lst(*app.graph.find("a")), ms(18));
}

}  // namespace
}  // namespace paserta
