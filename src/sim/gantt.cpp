#include "sim/gantt.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace paserta {
namespace {

/// Maps a time to a column in [0, width).
int column_of(SimTime t, SimTime horizon, int width) {
  if (horizon.ps <= 0) return 0;
  const auto c = static_cast<int>(
      static_cast<__int128>(t.ps) * width / horizon.ps);
  return std::clamp(c, 0, width - 1);
}

char label_char(const std::string& name) {
  for (char c : name)
    if (c != '_') return c;
  return '?';
}

}  // namespace

void render_gantt(std::ostream& os, const Application& app,
                  const OfflineResult& off, const PowerModel& pm,
                  const SimResult& result, const GanttOptions& opt) {
  PASERTA_REQUIRE(opt.width >= 16, "gantt width must be at least 16 columns");
  PASERTA_REQUIRE(!result.trace.empty() || result.dispatched == 0,
                  "cannot render a Gantt chart from a result without a "
                  "trace; simulate with record_trace enabled");
  const int cpus = off.cpus();
  const SimTime horizon = std::max(off.deadline(), result.finish_time);

  std::vector<std::string> lane(static_cast<std::size_t>(cpus),
                                std::string(static_cast<std::size_t>(opt.width), '.'));
  std::vector<std::string> freq(static_cast<std::size_t>(cpus),
                                std::string(static_cast<std::size_t>(opt.width), ' '));
  const auto levels = pm.table().size();

  for (const TaskRecord& rec : result.trace) {
    const Node& n = app.graph.node(rec.node);
    if (n.is_dummy()) {
      // Mark synchronization points on every lane they gate.
      const int c = column_of(rec.dispatch_time, horizon, opt.width);
      if (rec.cpu >= 0 && rec.cpu < cpus) {
        auto& l = lane[static_cast<std::size_t>(rec.cpu)];
        if (l[static_cast<std::size_t>(c)] == '.')
          l[static_cast<std::size_t>(c)] = n.kind == NodeKind::OrNode ? 'o' : '^';
      }
      continue;
    }
    if (rec.cpu < 0 || rec.cpu >= cpus) continue;
    auto& l = lane[static_cast<std::size_t>(rec.cpu)];
    auto& f = freq[static_cast<std::size_t>(rec.cpu)];
    const int c0 = column_of(rec.exec_start, horizon, opt.width);
    const int c1 = std::max(c0, column_of(rec.finish, horizon, opt.width) - 1);
    const char ch = label_char(n.name);
    for (int c = c0; c <= c1; ++c) l[static_cast<std::size_t>(c)] = ch;
    // Switch marker at the dispatch column.
    if (rec.switched) {
      const int cd = column_of(rec.dispatch_time, horizon, opt.width);
      l[static_cast<std::size_t>(cd)] = '!';
    }
    const char digit =
        levels <= 1 ? '9'
                    : static_cast<char>('0' + (9 * rec.level) / (levels - 1));
    for (int c = c0; c <= c1; ++c) f[static_cast<std::size_t>(c)] = digit;
  }

  const int deadline_col =
      column_of(off.deadline(), horizon + SimTime{1}, opt.width);

  os << "gantt over " << to_string(horizon) << " (deadline "
     << to_string(off.deadline()) << ", '!' = voltage switch, 'o'/'^' = "
     << "OR/AND node, freq ribbon 0=slowest level .. 9=fastest)\n";
  for (int c = 0; c < cpus; ++c) {
    auto& l = lane[static_cast<std::size_t>(c)];
    if (opt.show_deadline && l[static_cast<std::size_t>(deadline_col)] == '.')
      l[static_cast<std::size_t>(deadline_col)] = '|';
    os << "cpu" << c << " |" << l << "|\n";
    if (opt.frequency_ribbon)
      os << "  f  |" << freq[static_cast<std::size_t>(c)] << "|\n";
  }
  os << "       0" << std::string(static_cast<std::size_t>(opt.width - 2), ' ')
     << to_string(horizon) << "\n";
}

std::string gantt_to_string(const Application& app, const OfflineResult& off,
                            const PowerModel& pm, const SimResult& result,
                            const GanttOptions& options) {
  std::ostringstream oss;
  render_gantt(oss, app, off, pm, result, options);
  return oss.str();
}

}  // namespace paserta
