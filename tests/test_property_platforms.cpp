// Second property suite: the Theorem-1 and energy invariants across the
// *platform* dimensions — level table, transition overhead, speculative
// rounding and loop treatment — complementing test_property.cpp's sweep
// over application shapes.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/random_app.h"
#include "apps/synthetic.h"
#include "core/offline.h"
#include "harness/experiment.h"
#include "sim/engine.h"
#include "sim/verify.h"

namespace paserta {
namespace {

enum class TableKind { Transmeta, XScale, TwoLevels, Continuous };

LevelTable make_table(TableKind k) {
  switch (k) {
    case TableKind::Transmeta: return LevelTable::transmeta_tm5400();
    case TableKind::XScale: return LevelTable::intel_xscale();
    case TableKind::TwoLevels:
      return LevelTable::synthetic("two", 2, 300 * kMHz, 900 * kMHz, 1.0,
                                   1.8);
    case TableKind::Continuous:
      return LevelTable::ideal_continuous(100 * kMHz, 1000 * kMHz, 0.8, 1.8);
  }
  return LevelTable::intel_xscale();
}

const char* table_name(TableKind k) {
  switch (k) {
    case TableKind::Transmeta: return "Transmeta";
    case TableKind::XScale: return "XScale";
    case TableKind::TwoLevels: return "TwoLevels";
    case TableKind::Continuous: return "Continuous";
  }
  return "?";
}

using Param = std::tuple<TableKind, int /*overhead_us*/, bool /*round_down*/>;

class PlatformProperties : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [kind, ovh_us, round_down] = GetParam();
    pm_.emplace(make_table(kind));
    ovh_.speed_change_time = SimTime::from_us(static_cast<double>(ovh_us));
    popt_.spec_rounding = round_down ? PolicyOptions::SpecRounding::Down
                                     : PolicyOptions::SpecRounding::Up;
  }

  /// Analyze at the given load and return the offline result.
  OfflineResult analyze(const Application& app, int cpus, double load) {
    OfflineOptions o;
    o.cpus = cpus;
    o.overhead_budget = ovh_.worst_case_budget(pm_->table());
    const SimTime w = canonical_worst_makespan(app, cpus, o.overhead_budget);
    o.deadline = SimTime{static_cast<std::int64_t>(
        static_cast<double>(w.ps) / load + 1)};
    return analyze_offline(app, o);
  }

  std::optional<PowerModel> pm_;
  Overheads ovh_;
  PolicyOptions popt_;
};

TEST_P(PlatformProperties, NoMissesOnSyntheticApp) {
  const Application app = apps::build_synthetic();
  for (int cpus : {1, 2, 3}) {
    for (double load : {0.4, 0.95}) {
      const OfflineResult off = analyze(app, cpus, load);
      ASSERT_TRUE(off.feasible());
      Rng rng(99 + cpus);
      for (int run = 0; run < 5; ++run) {
        const RunScenario sc = draw_scenario(app.graph, rng);
        for (Scheme s : {Scheme::NPM, Scheme::SPM, Scheme::GSS, Scheme::SS1,
                         Scheme::SS2, Scheme::AS}) {
          auto policy = make_policy(s, popt_);
          policy->reset(off, *pm_);
          const SimResult r = simulate(app, off, *pm_, ovh_, *policy, sc);
          ASSERT_TRUE(r.deadline_met)
              << to_string(s) << " cpus " << cpus << " load " << load;
          const VerifyReport rep = verify_trace(app, off, sc, r);
          ASSERT_TRUE(rep.ok)
              << to_string(s) << ": "
              << (rep.violations.empty() ? "?" : rep.violations[0]);
        }
      }
    }
  }
}

TEST_P(PlatformProperties, WorstCaseAdversary) {
  const Application app = apps::build_synthetic();
  const OfflineResult off = analyze(app, 2, 1.0);
  ASSERT_TRUE(off.feasible());
  const RunScenario sc = worst_case_scenario(app.graph);
  for (Scheme s : {Scheme::GSS, Scheme::SS1, Scheme::SS2, Scheme::AS}) {
    auto policy = make_policy(s, popt_);
    policy->reset(off, *pm_);
    const SimResult r = simulate(app, off, *pm_, ovh_, *policy, sc);
    ASSERT_TRUE(r.deadline_met) << to_string(s);
  }
}

TEST_P(PlatformProperties, ManagedNeverAboveNpm) {
  const Application app = apps::build_synthetic();
  const OfflineResult off = analyze(app, 2, 0.5);
  Rng rng(5);
  for (int run = 0; run < 5; ++run) {
    const RunScenario sc = draw_scenario(app.graph, rng);
    const SimResult npm = simulate(app, off, *pm_, ovh_, Scheme::NPM, sc);
    for (Scheme s : {Scheme::SPM, Scheme::GSS, Scheme::SS1, Scheme::SS2,
                     Scheme::AS}) {
      auto policy = make_policy(s, popt_);
      policy->reset(off, *pm_);
      const SimResult r = simulate(app, off, *pm_, ovh_, *policy, sc);
      ASSERT_LE(r.total_energy(), npm.total_energy() * (1.0 + 1e-9))
          << to_string(s);
    }
  }
}

TEST_P(PlatformProperties, CollapsedLoopsAlsoSafe) {
  apps::SyntheticConfig cfg;
  cfg.loop_mode = LoopMode::Collapse;
  const Application app = apps::build_synthetic(cfg);
  const OfflineResult off = analyze(app, 2, 0.8);
  ASSERT_TRUE(off.feasible());
  Rng rng(17);
  for (int run = 0; run < 3; ++run) {
    const RunScenario sc = draw_scenario(app.graph, rng);
    for (Scheme s : {Scheme::GSS, Scheme::AS}) {
      auto policy = make_policy(s, popt_);
      policy->reset(off, *pm_);
      ASSERT_TRUE(simulate(app, off, *pm_, ovh_, *policy, sc).deadline_met)
          << to_string(s);
    }
  }
}

std::string platform_case_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [kind, ovh_us, round_down] = info.param;
  return std::string(table_name(kind)) + "_ovh" + std::to_string(ovh_us) +
         (round_down ? "_down" : "_up");
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, PlatformProperties,
    ::testing::Combine(::testing::Values(TableKind::Transmeta,
                                         TableKind::XScale,
                                         TableKind::TwoLevels,
                                         TableKind::Continuous),
                       ::testing::Values(0, 5, 150),
                       ::testing::Bool()),
    platform_case_name);

}  // namespace
}  // namespace paserta
