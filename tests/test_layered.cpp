// Tests for the layered (TGFF-style) task-graph generator.
#include <gtest/gtest.h>

#include "apps/layered.h"
#include "common/error.h"
#include "core/offline.h"
#include "graph/metrics.h"
#include "sim/engine.h"

namespace paserta {
namespace {

using apps::LayeredConfig;

TEST(Layered, SectionStructure) {
  LayeredConfig cfg;
  cfg.layers = 5;
  cfg.min_width = 3;
  cfg.max_width = 3;  // fixed width for determinism of counts
  Rng rng(1);
  const SectionSpec sec = apps::layered_section(rng, cfg);
  EXPECT_EQ(sec.tasks.size(), 15u);
  // Every non-entry task has at least one predecessor.
  std::vector<int> indeg(sec.tasks.size(), 0);
  for (const auto& [from, to] : sec.edges) {
    ++indeg[to];
    // Edges only go forward between adjacent layers: layer(to) =
    // layer(from) + 1 given fixed width 3.
    EXPECT_EQ(to / 3, from / 3 + 1);
  }
  for (std::size_t i = 3; i < sec.tasks.size(); ++i)
    EXPECT_GE(indeg[i], 1) << "task " << i << " disconnected";
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(indeg[i], 0);
}

TEST(Layered, BuildsValidApplication) {
  LayeredConfig cfg;
  Rng rng(7);
  const Application app = apps::layered_application(rng, cfg, 3, 0.3);
  EXPECT_NO_THROW(app.graph.validate());
  EXPECT_EQ(app.or_fork_count(), 2u);  // one branch per stage after the first
}

TEST(Layered, NoShortcutMeansNoForks) {
  LayeredConfig cfg;
  Rng rng(7);
  const Application app = apps::layered_application(rng, cfg, 3, 0.0);
  EXPECT_EQ(app.or_fork_count(), 0u);
}

TEST(Layered, WideGraphsExposeParallelism) {
  LayeredConfig cfg;
  cfg.layers = 3;
  cfg.min_width = 6;
  cfg.max_width = 6;
  cfg.fan_prob = 0.2;
  Rng rng(3);
  const Application app = apps::layered_application(rng, cfg, 1, 0.0);
  const GraphMetrics m = compute_metrics(app);
  EXPECT_GT(m.parallelism, 2.0);
  // More processors genuinely shorten the canonical schedule.
  const SimTime w1 = canonical_worst_makespan(app, 1, SimTime::zero());
  const SimTime w4 = canonical_worst_makespan(app, 4, SimTime::zero());
  EXPECT_LT(w4 * 2, w1);
}

TEST(Layered, DeterministicForSeed) {
  LayeredConfig cfg;
  Rng r1(11), r2(11);
  const Application a = apps::layered_application(r1, cfg, 2);
  const Application b = apps::layered_application(r2, cfg, 2);
  ASSERT_EQ(a.graph.size(), b.graph.size());
  for (NodeId id : a.graph.all_nodes()) {
    EXPECT_EQ(a.graph.node(id).wcet, b.graph.node(id).wcet);
    EXPECT_EQ(a.graph.node(id).succs, b.graph.node(id).succs);
  }
}

TEST(Layered, SchedulesCleanlyUnderAllSchemes) {
  LayeredConfig cfg;
  Rng rng(23);
  const Application app = apps::layered_application(rng, cfg, 4, 0.25);
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 4;
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  o.deadline = canonical_worst_makespan(app, 4, o.overhead_budget);
  const OfflineResult off = analyze_offline(app, o);
  ASSERT_TRUE(off.feasible());
  Rng srng(5);
  for (int run = 0; run < 5; ++run) {
    const RunScenario sc = draw_scenario(app.graph, srng);
    for (Scheme s : {Scheme::NPM, Scheme::SPM, Scheme::GSS, Scheme::SS1,
                     Scheme::SS2, Scheme::AS}) {
      EXPECT_TRUE(simulate(app, off, pm, ovh, s, sc).deadline_met)
          << to_string(s);
    }
  }
}

TEST(Layered, ConfigValidation) {
  Rng rng(1);
  LayeredConfig cfg;
  cfg.layers = 0;
  EXPECT_THROW(apps::layered_section(rng, cfg), Error);
  cfg = LayeredConfig{};
  cfg.min_width = 4;
  cfg.max_width = 2;
  EXPECT_THROW(apps::layered_section(rng, cfg), Error);
  cfg = LayeredConfig{};
  EXPECT_THROW(apps::layered_program(rng, cfg, 0), Error);
  EXPECT_THROW(apps::layered_program(rng, cfg, 2, 1.0), Error);
}

}  // namespace
}  // namespace paserta
