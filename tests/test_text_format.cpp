// Tests for the workload text format: parsing, error reporting, writing,
// and parse/serialize round-trips (including over random programs).
#include <gtest/gtest.h>

#include "apps/random_app.h"
#include "apps/synthetic.h"
#include "common/error.h"
#include "core/offline.h"
#include "graph/text_format.h"

namespace paserta {
namespace {

TEST(TextFormat, ParseMinimal) {
  const auto w = parse_workload_string("app demo\ntask T 4 2\n");
  EXPECT_EQ(w.name, "demo");
  const Application app = build_application(w.name, w.program);
  ASSERT_EQ(app.graph.size(), 1u);
  EXPECT_EQ(app.graph.node(NodeId{0}).wcet, SimTime::from_ms(4));
  EXPECT_EQ(app.graph.node(NodeId{0}).acet, SimTime::from_ms(2));
}

TEST(TextFormat, DefaultNameWhenAppLineMissing) {
  const auto w = parse_workload_string("task T 1 1\n");
  EXPECT_EQ(w.name, "workload");
}

TEST(TextFormat, SectionWithEdges) {
  const char* text = R"(app s
section
  task A 8 5
  task B 5 3
  task C 4 2
  edge A B
  edge A C
end
)";
  const Application app = load_application_string(text);
  const NodeId a = *app.graph.find("A");
  EXPECT_EQ(app.graph.node(a).succs.size(), 2u);
}

TEST(TextFormat, BranchWithEmptyAlt) {
  const char* text = R"(
task pre 2 1
branch opt
  alt 0.4
    task work 6 3
  end
  alt 0.6
  end
end
)";
  const Application app = load_application_string(text);
  EXPECT_EQ(app.or_fork_count(), 1u);
  // The empty alternative flattens to one skip dummy.
  std::size_t and_nodes = 0;
  for (NodeId id : app.graph.all_nodes())
    if (app.graph.node(id).kind == NodeKind::AndNode) ++and_nodes;
  EXPECT_EQ(and_nodes, 1u);
}

TEST(TextFormat, LoopUnrollAndCollapse) {
  const Application unrolled = load_application_string(
      "loop L 0.5 0.5\n  task body 2 1\nend\n");
  EXPECT_EQ(unrolled.graph.task_count(), 2u);

  const Application collapsed = load_application_string(
      "loop L collapse 0.5 0.5\n  task body 2 1\nend\n");
  ASSERT_EQ(collapsed.graph.size(), 1u);
  EXPECT_EQ(collapsed.graph.node(NodeId{0}).wcet, SimTime::from_ms(4));
}

TEST(TextFormat, CommentsAndBlankLines) {
  const char* text = R"(
# a full-line comment

app commented   # trailing comment
task T 1 0.5    # times are milliseconds
)";
  const auto w = parse_workload_string(text);
  EXPECT_EQ(w.name, "commented");
  const Application app = build_application(w.name, w.program);
  EXPECT_EQ(app.graph.node(NodeId{0}).acet, SimTime::from_us(500));
}

TEST(TextFormat, NestedStructures) {
  const char* text = R"(app nested
task pre 1 1
branch outer
  alt 0.5
    loop inner 0.5 0.5
      task it 2 1
    end
  end
  alt 0.5
    branch deep
      alt 0.3
        task d1 1 1
      end
      alt 0.7
        task d2 2 1
      end
    end
  end
end
)";
  const Application app = load_application_string(text);
  app.graph.validate();
  EXPECT_EQ(app.or_fork_count(), 3u);  // outer + inner loop exit + deep
}

// --------------------------------------------------------- error reporting

TEST(TextFormat, ErrorsCarryLineNumbers) {
  try {
    parse_workload_string("app x\ntask broken 1\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(TextFormat, RejectsMalformedInput) {
  EXPECT_THROW(parse_workload_string(""), Error);              // empty
  EXPECT_THROW(parse_workload_string("app x\n"), Error);       // no segments
  EXPECT_THROW(parse_workload_string("bogus T 1 1\n"), Error); // keyword
  EXPECT_THROW(parse_workload_string("task T 1 abc\n"), Error);
  EXPECT_THROW(parse_workload_string("section\n task A 1 1\n"), Error);
  EXPECT_THROW(parse_workload_string("end\n"), Error);
  EXPECT_THROW(
      parse_workload_string("section\n task A 1 1\n edge A B\nend\n"), Error);
  EXPECT_THROW(
      parse_workload_string("branch b\n  alt 0.5\n  end\nend\n"),
      Error);  // probabilities sum to 0.5
  EXPECT_THROW(parse_workload_string("loop L\n task t 1 1\nend\n"), Error);
}

TEST(TextFormat, DuplicateTaskInSectionRejected) {
  EXPECT_THROW(parse_workload_string(
                   "section\n task A 1 1\n task A 2 1\nend\n"),
               Error);
}

// --------------------------------------------------------------- round-trip

/// Flattened graphs of two programs must be structurally identical.
void expect_same_flatten(const Program& a, const Program& b) {
  const Application fa = build_application("a", a);
  const Application fb = build_application("b", b);
  ASSERT_EQ(fa.graph.size(), fb.graph.size());
  for (NodeId id : fa.graph.all_nodes()) {
    const Node& na = fa.graph.node(id);
    const Node& nb = fb.graph.node(id);
    EXPECT_EQ(na.kind, nb.kind);
    EXPECT_EQ(na.name, nb.name);
    EXPECT_EQ(na.wcet, nb.wcet);
    EXPECT_EQ(na.acet, nb.acet);
    EXPECT_EQ(na.succs, nb.succs);
    EXPECT_EQ(na.succ_prob, nb.succ_prob);
  }
}

TEST(TextFormat, RoundTripSynthetic) {
  const Program original = apps::synthetic_program();
  const std::string text = workload_to_string("synthetic", original);
  const auto parsed = parse_workload_string(text);
  EXPECT_EQ(parsed.name, "synthetic");
  expect_same_flatten(original, parsed.program);
}

TEST(TextFormat, RoundTripRandomPrograms) {
  apps::RandomAppConfig cfg;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const Program original = apps::random_program(rng, cfg);
    const std::string text = workload_to_string("r", original);
    const auto parsed = parse_workload_string(text);
    expect_same_flatten(original, parsed.program);
    // And the serialization is a fixed point.
    EXPECT_EQ(text, workload_to_string("r", parsed.program)) << "seed "
                                                             << seed;
  }
}

TEST(TextFormat, RoundTripPreservesSchedules) {
  // Stronger than structure: the offline analysis of the round-tripped
  // program is identical.
  const Program original = apps::synthetic_program();
  const auto parsed =
      parse_workload_string(workload_to_string("synthetic", original));
  const Application a = build_application("x", original);
  const Application b = build_application("x", parsed.program);
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = SimTime::from_ms(200);
  const OfflineResult ra = analyze_offline(a, o);
  const OfflineResult rb = analyze_offline(b, o);
  EXPECT_EQ(ra.worst_makespan(), rb.worst_makespan());
  EXPECT_EQ(ra.average_makespan(), rb.average_makespan());
  for (NodeId id : a.graph.all_nodes()) {
    EXPECT_EQ(ra.eo(id), rb.eo(id));
    EXPECT_EQ(ra.lst(id), rb.lst(id));
  }
}

}  // namespace
}  // namespace paserta
