// Unit tests for the speed-selection policies: SPM level choice, the
// speculation formulas of SS1/SS2 and adaptive re-speculation (AS).
#include <gtest/gtest.h>

#include "core/policy.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }

/// pre(10/ACET) -> branch(0.5: x(4/2), 0.5: y(8/6)) -> post(2/1); ACETs
/// chosen so A is easy to compute.
Application sample_app(double pre_acet_ms = 5) {
  Program x, y;
  x.task("x", ms(4), ms(2));
  y.task("y", ms(8), ms(6));
  Program p;
  p.task("pre", ms(10), ms(pre_acet_ms));
  p.branch("o", {{0.5, std::move(x)}, {0.5, std::move(y)}});
  p.task("post", ms(2), ms(1));
  return build_application("sample", p);
}

OfflineResult analyze(const Application& app, SimTime deadline, int cpus = 2) {
  OfflineOptions o;
  o.cpus = cpus;
  o.deadline = deadline;
  return analyze_offline(app, o);
}

TEST(RequiredFreq, ExactAndCeil) {
  // 10ms of work in 20ms at f_max 1 GHz -> 500 MHz.
  EXPECT_EQ(required_freq(kGHz, ms(10), ms(20)), 500 * kMHz);
  // Non-divisible: rounds up.
  EXPECT_EQ(required_freq(900 * kMHz, ms(10), ms(30)), 300 * kMHz);
  EXPECT_EQ(required_freq(kGHz, ms(10), ms(30)), 333'333'334u);
}

TEST(RequiredFreq, Clamps) {
  EXPECT_EQ(required_freq(kGHz, ms(10), ms(5)), kGHz);          // too tight
  EXPECT_EQ(required_freq(kGHz, ms(10), SimTime::zero()), kGHz);
  EXPECT_EQ(required_freq(kGHz, ms(10), ms(-3)), kGHz);
  EXPECT_EQ(required_freq(kGHz, SimTime::zero(), ms(5)), 0u);   // no work
}

TEST(Scheme, Names) {
  EXPECT_STREQ(to_string(Scheme::NPM), "NPM");
  EXPECT_STREQ(to_string(Scheme::GSS), "GSS");
  EXPECT_STREQ(to_string(Scheme::AS), "AS");
  EXPECT_STREQ(make_policy(Scheme::SS2)->name(), "SS2");
}

TEST(Npm, AlwaysTopLevel) {
  const Application app = sample_app();
  const OfflineResult off = analyze(app, ms(40));
  const PowerModel pm(LevelTable::intel_xscale());
  auto p = make_policy(Scheme::NPM);
  p->reset(off, pm);
  EXPECT_EQ(p->kind(), SpeedPolicy::Kind::Static);
  EXPECT_EQ(p->static_level(), pm.table().size() - 1);
}

TEST(Spm, StretchesWToDeadline) {
  const Application app = sample_app();
  // W = 10 + 8 + 2 = 20ms.
  const OfflineResult off = analyze(app, ms(40));
  ASSERT_EQ(off.worst_makespan(), ms(20));
  const PowerModel pm(LevelTable::intel_xscale());
  auto p = make_policy(Scheme::SPM);
  p->reset(off, pm);
  // f = 1GHz * 20/40 = 500 MHz -> rounds up to the 600 MHz level.
  EXPECT_EQ(pm.table().level(p->static_level()).freq, 600 * kMHz);
}

TEST(Spm, HighLoadDegeneratesToFmax) {
  const Application app = sample_app();
  const OfflineResult off = analyze(app, ms(22));  // load ~0.91
  const PowerModel pm(LevelTable::intel_xscale());
  auto p = make_policy(Scheme::SPM);
  p->reset(off, pm);
  // 1GHz * 20/22 = 909 MHz: no level between 800 and 1000 -> f_max,
  // the paper's Figure-6b observation (SPM == NPM).
  EXPECT_EQ(pm.table().level(p->static_level()).freq, 1000 * kMHz);
}

TEST(Spm, MinSpeedClampAtLowLoad) {
  const Application app = sample_app();
  const OfflineResult off = analyze(app, ms(400));  // load 0.05
  const PowerModel pm(LevelTable::intel_xscale());
  auto p = make_policy(Scheme::SPM);
  p->reset(off, pm);
  // Desired 50 MHz is below f_min -> clamp to the 150 MHz level.
  EXPECT_EQ(pm.table().level(p->static_level()).freq, 150 * kMHz);
}

TEST(Gss, IsPureGreedy) {
  auto p = make_policy(Scheme::GSS);
  const Application app = sample_app();
  const OfflineResult off = analyze(app, ms(40));
  const PowerModel pm(LevelTable::intel_xscale());
  p->reset(off, pm);
  EXPECT_EQ(p->kind(), SpeedPolicy::Kind::Dynamic);
  EXPECT_EQ(p->floor_freq(SimTime::zero()), 0u);
  EXPECT_EQ(p->floor_freq(ms(100)), 0u);
}

TEST(Ss1, FloorFromAverageMakespan) {
  const Application app = sample_app(5);
  // A = 5 + (0.5*2 + 0.5*6) + 1 = 10ms.
  const OfflineResult off = analyze(app, ms(40));
  ASSERT_EQ(off.average_makespan(), ms(10));
  const PowerModel pm(LevelTable::intel_xscale());
  auto p = make_policy(Scheme::SS1);
  p->reset(off, pm);
  // f_spec = 1GHz * 10/40 = 250 MHz -> rounds up to 400 MHz; constant.
  EXPECT_EQ(p->floor_freq(SimTime::zero()), 400 * kMHz);
  EXPECT_EQ(p->floor_freq(ms(39)), 400 * kMHz);
}

TEST(Ss2, TwoSpeedsAroundSpeculation) {
  const Application app = sample_app(5);
  const OfflineResult off = analyze(app, ms(40));
  const PowerModel pm(LevelTable::intel_xscale());
  auto p = make_policy(Scheme::SS2);
  p->reset(off, pm);
  // f_spec = 250 MHz between levels 150 and 400:
  // theta = D * (400-250)/(400-150) = 40ms * 0.6 = 24ms.
  EXPECT_EQ(p->floor_freq(SimTime::zero()), 150 * kMHz);
  EXPECT_EQ(p->floor_freq(ms(23.999)), 150 * kMHz);
  EXPECT_EQ(p->floor_freq(ms(24)), 400 * kMHz);
  EXPECT_EQ(p->floor_freq(ms(39)), 400 * kMHz);
}

TEST(Ss2, ThetaRoundsToNearestPicosecond) {
  const Application app = sample_app(5);
  const OfflineResult off = analyze(app, ms(40));
  const PowerModel pm(LevelTable::intel_xscale());
  StaticSpecPolicy p(true, PolicyOptions::SpecRounding::Up);
  p.reset(off, pm);
  ASSERT_EQ(p.f_low(), 150 * kMHz);
  ASSERT_EQ(p.f_high(), 400 * kMHz);
  // theta = D * (400-250)/(400-150) = 24ms exactly — but the fraction 0.6
  // has no finite binary representation, so 0.6 * 4e10 ps evaluates to
  // 23999999999.999996...: a truncating cast lands one picosecond short,
  // while rounding to nearest hits 24'000'000'000 on the dot.
  EXPECT_EQ(p.theta().ps, 24'000'000'000LL);
  EXPECT_EQ(p.theta(), ms(24));
}

TEST(Ss2, DegeneratesToSingleSpeedOnExactLevel) {
  const Application app = sample_app(5);
  // A = 10ms, D = 25ms -> f_spec = 400 MHz exactly (a level).
  const OfflineResult off = analyze(app, ms(25));
  const PowerModel pm(LevelTable::intel_xscale());
  auto p = make_policy(Scheme::SS2);
  p->reset(off, pm);
  EXPECT_EQ(p->floor_freq(SimTime::zero()), 400 * kMHz);
  EXPECT_EQ(p->floor_freq(ms(24)), 400 * kMHz);
}

TEST(Ss2, BelowMinSpeedUsesMinLevel) {
  const Application app = sample_app(5);
  const OfflineResult off = analyze(app, ms(400));
  const PowerModel pm(LevelTable::intel_xscale());
  auto p = make_policy(Scheme::SS2);
  p->reset(off, pm);
  EXPECT_EQ(p->floor_freq(SimTime::zero()), 150 * kMHz);
  EXPECT_EQ(p->floor_freq(ms(399)), 150 * kMHz);
}

TEST(As, StartsLikeSs1AndAdaptsAtForks) {
  const Application app = sample_app(5);
  const OfflineResult off = analyze(app, ms(40));
  const PowerModel pm(LevelTable::intel_xscale());
  auto p = make_policy(Scheme::AS);
  p->reset(off, pm);
  EXPECT_EQ(p->floor_freq(SimTime::zero()), 400 * kMHz);

  // Find the fork and fire it at t = 30ms with the short alternative:
  // remaining = 2 + 1 = 3ms (alt x ACET + post ACET) in 10ms
  //   -> 300 MHz -> 400 MHz level.
  const StructSegment& br = app.structure.segments[1];
  p->on_or_fired(br.fork, 0, ms(30), off, pm);
  EXPECT_EQ(p->floor_freq(ms(30)), 400 * kMHz);

  // Long alternative at t = 30ms: remaining = 6 + 1 = 7ms in 10ms
  //   -> 700 MHz -> 800 MHz level.
  p->on_or_fired(br.fork, 1, ms(30), off, pm);
  EXPECT_EQ(p->floor_freq(ms(30)), 800 * kMHz);

  // Join fired at t = 38ms: remaining = post ACET 1ms in 2ms -> 500 MHz
  //   -> 600 MHz level.
  p->on_or_fired(br.join, -1, ms(38), off, pm);
  EXPECT_EQ(p->floor_freq(ms(38)), 600 * kMHz);
}

TEST(As, ExhaustedHorizonFloorsAtFmax) {
  const Application app = sample_app(5);
  const OfflineResult off = analyze(app, ms(40));
  const PowerModel pm(LevelTable::intel_xscale());
  auto p = make_policy(Scheme::AS);
  p->reset(off, pm);
  const StructSegment& br = app.structure.segments[1];
  p->on_or_fired(br.fork, 1, ms(40), off, pm);  // zero time left
  EXPECT_EQ(p->floor_freq(ms(40)), 1000 * kMHz);
}

TEST(SpecRounding, DownPicksLowerLevel) {
  const Application app = sample_app(5);
  // f_spec = 1GHz * 10/40 = 250 MHz, strictly between 150 and 400.
  const OfflineResult off = analyze(app, ms(40));
  const PowerModel pm(LevelTable::intel_xscale());

  PolicyOptions down;
  down.spec_rounding = PolicyOptions::SpecRounding::Down;
  auto ss1 = make_policy(Scheme::SS1, down);
  ss1->reset(off, pm);
  EXPECT_EQ(ss1->floor_freq(SimTime::zero()), 150 * kMHz);

  auto as = make_policy(Scheme::AS, down);
  as->reset(off, pm);
  EXPECT_EQ(as->floor_freq(SimTime::zero()), 150 * kMHz);

  // Rounding up (the default) picks the higher bracket.
  auto ss1_up = make_policy(Scheme::SS1);
  ss1_up->reset(off, pm);
  EXPECT_EQ(ss1_up->floor_freq(SimTime::zero()), 400 * kMHz);
}

TEST(SpecRounding, ExactLevelUnaffected) {
  const Application app = sample_app(5);
  const OfflineResult off = analyze(app, ms(25));  // f_spec = 400 MHz exact
  const PowerModel pm(LevelTable::intel_xscale());
  for (auto r : {PolicyOptions::SpecRounding::Up,
                 PolicyOptions::SpecRounding::Down}) {
    PolicyOptions o;
    o.spec_rounding = r;
    auto p = make_policy(Scheme::SS1, o);
    p->reset(off, pm);
    EXPECT_EQ(p->floor_freq(SimTime::zero()), 400 * kMHz);
  }
}

TEST(SpecRounding, Ss2BracketingUnchanged) {
  // SS2 already uses both bracketing levels; rounding mode only affects
  // its degenerate single-speed case.
  const Application app = sample_app(5);
  const OfflineResult off = analyze(app, ms(40));
  const PowerModel pm(LevelTable::intel_xscale());
  PolicyOptions down;
  down.spec_rounding = PolicyOptions::SpecRounding::Down;
  auto p = make_policy(Scheme::SS2, down);
  p->reset(off, pm);
  EXPECT_EQ(p->floor_freq(SimTime::zero()), 150 * kMHz);   // before theta
  EXPECT_EQ(p->floor_freq(ms(39)), 400 * kMHz);            // after theta
}

TEST(QuantizeDown, Clamps) {
  const LevelTable t = LevelTable::intel_xscale();
  EXPECT_EQ(t.level(t.quantize_down(500 * kMHz)).freq, 400 * kMHz);
  EXPECT_EQ(t.level(t.quantize_down(400 * kMHz)).freq, 400 * kMHz);
  EXPECT_EQ(t.level(t.quantize_down(100 * kMHz)).freq, 150 * kMHz);  // clamp
  EXPECT_EQ(t.level(t.quantize_down(5000 * kMHz)).freq, 1000 * kMHz);
}

TEST(Policy, FloorsAreAlwaysTableFrequencies) {
  const Application app = sample_app(5);
  const OfflineResult off = analyze(app, ms(37));  // awkward ratio
  const PowerModel pm(LevelTable::transmeta_tm5400());
  for (Scheme s : {Scheme::SS1, Scheme::SS2, Scheme::AS}) {
    auto p = make_policy(s);
    p->reset(off, pm);
    const Freq f = p->floor_freq(SimTime::zero());
    bool found = false;
    for (const Level& l : pm.table().levels())
      if (l.freq == f) found = true;
    EXPECT_TRUE(found) << to_string(s) << " floor " << f
                       << " is not a table level";
  }
}

}  // namespace
}  // namespace paserta
