// Tests for the workload builders: ATR, the Figure-3 synthetic application
// and the random AND/OR generator.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/atr.h"
#include "apps/random_app.h"
#include "apps/synthetic.h"
#include "common/error.h"
#include "core/offline.h"
#include "sim/scenario.h"

namespace paserta {
namespace {

using apps::AtrConfig;
using apps::RandomAppConfig;
using apps::SyntheticConfig;

TEST(Atr, DefaultBuildValidates) {
  const Application app = apps::build_atr();
  EXPECT_EQ(app.name, "atr");
  EXPECT_NO_THROW(app.graph.validate());
  EXPECT_EQ(app.or_fork_count(), 1u);
  // detect + report + per-branch pipelines: sum k=1..4 of 3k tasks = 30,
  // plus 2 = 32 computation nodes.
  EXPECT_EQ(app.graph.task_count(), 32u);
}

TEST(Atr, BranchProbabilitiesMatchConfig) {
  AtrConfig cfg;
  cfg.max_rois = 3;
  cfg.roi_count_prob = {0.5, 0.3, 0.2};
  const Application app = apps::build_atr(cfg);
  for (NodeId id : app.graph.all_nodes()) {
    const Node& n = app.graph.node(id);
    if (n.is_or_fork()) {
      ASSERT_EQ(n.succ_prob.size(), 3u);
      EXPECT_DOUBLE_EQ(n.succ_prob[0], 0.5);
      EXPECT_DOUBLE_EQ(n.succ_prob[1], 0.3);
      EXPECT_DOUBLE_EQ(n.succ_prob[2], 0.2);
    }
  }
}

TEST(Atr, AlphaControlsAcets) {
  AtrConfig cfg;
  cfg.alpha = 0.5;
  const Application app = apps::build_atr(cfg);
  for (NodeId id : app.graph.all_nodes()) {
    const Node& n = app.graph.node(id);
    if (n.kind != NodeKind::Computation) continue;
    EXPECT_NEAR(static_cast<double>(n.acet.ps) /
                    static_cast<double>(n.wcet.ps),
                0.5, 1e-6)
        << n.name;
  }
}

TEST(Atr, TemplatesScaleMatchingWork) {
  AtrConfig small, big;
  small.templates = 1;
  big.templates = 8;
  const Application a = apps::build_atr(small);
  const Application b = apps::build_atr(big);
  EXPECT_GT(b.graph.total_wcet(), a.graph.total_wcet());
}

TEST(Atr, MoreRoisMoreParallelism) {
  // The 4-ROI branch finishes faster on more processors.
  const Application app = apps::build_atr();
  OfflineOptions o;
  o.deadline = SimTime::from_sec(10);
  o.cpus = 1;
  const SimTime w1 = analyze_offline(app, o).worst_makespan();
  o.cpus = 4;
  const SimTime w4 = analyze_offline(app, o).worst_makespan();
  EXPECT_LT(w4, w1);
}

TEST(Atr, RejectsBadConfig) {
  AtrConfig cfg;
  cfg.max_rois = 0;
  EXPECT_THROW(apps::build_atr(cfg), Error);
  cfg = AtrConfig{};
  cfg.alpha = 0.0;
  EXPECT_THROW(apps::build_atr(cfg), Error);
  cfg = AtrConfig{};
  cfg.roi_count_prob = {1.0};  // size mismatch with max_rois=4
  EXPECT_THROW(apps::build_atr(cfg), Error);
}

TEST(Synthetic, BuildValidatesAndUsesLegibleFragments) {
  const Application app = apps::build_synthetic();
  EXPECT_NO_THROW(app.graph.validate());
  // The two OR branches plus three loop-exit forks (4 iterations).
  EXPECT_EQ(app.or_fork_count(), 5u);
  for (const char* name :
       {"A", "B", "C", "E", "F", "G", "H", "I", "J", "K", "L"}) {
    EXPECT_TRUE(app.graph.find(name).has_value()) << name;
  }
  // Spot-check the legible WCET/ACET pairs.
  const Node& a = app.graph.node(*app.graph.find("A"));
  EXPECT_EQ(a.wcet, SimTime::from_ms(8));
  EXPECT_EQ(a.acet, SimTime::from_ms(5));
  const Node& h = app.graph.node(*app.graph.find("H"));
  EXPECT_EQ(h.wcet, SimTime::from_ms(10));
  EXPECT_EQ(h.acet, SimTime::from_ms(6));
}

TEST(Synthetic, CollapseModeShrinksGraph) {
  SyntheticConfig unroll, collapse;
  collapse.loop_mode = LoopMode::Collapse;
  const Application u = apps::build_synthetic(unroll);
  const Application c = apps::build_synthetic(collapse);
  EXPECT_LT(c.graph.size(), u.graph.size());
  EXPECT_EQ(c.or_fork_count(), 2u);  // only the two explicit branches
  // Collapsed loop task: 4 iterations x (4+4)ms WCET.
  EXPECT_TRUE(c.graph.find("scan").has_value());
  EXPECT_EQ(c.graph.node(*c.graph.find("scan")).wcet, SimTime::from_ms(32));
}

TEST(Synthetic, WorstCaseMakespanIsStable) {
  // Pin the canonical W on 2 CPUs so accidental workload changes are
  // caught: A + max-par(B,C) ... computed value asserted once here.
  const Application app = apps::build_synthetic();
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = SimTime::from_sec(1);
  const OfflineResult off = analyze_offline(app, o);
  // Prologue 8+5, loop 4x4, branch max(5+10, 10), tail max(8,5),
  // epilogue 10+4 = 13+16+15+8+14 = 66 ms.
  EXPECT_EQ(off.worst_makespan(), SimTime::from_ms(66));
}

TEST(RandomApp, DeterministicForSeed) {
  RandomAppConfig cfg;
  Rng r1(77), r2(77);
  const Application a = apps::random_application(r1, cfg, "a");
  const Application b = apps::random_application(r2, cfg, "b");
  ASSERT_EQ(a.graph.size(), b.graph.size());
  for (NodeId id : a.graph.all_nodes()) {
    EXPECT_EQ(a.graph.node(id).kind, b.graph.node(id).kind);
    EXPECT_EQ(a.graph.node(id).wcet, b.graph.node(id).wcet);
    EXPECT_EQ(a.graph.node(id).succs, b.graph.node(id).succs);
  }
}

TEST(RandomApp, AllSeedsValidate) {
  RandomAppConfig cfg;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const Application app = apps::random_application(rng, cfg);
    EXPECT_NO_THROW(app.graph.validate()) << "seed " << seed;
  }
}

TEST(RandomApp, RespectsWcetRange) {
  RandomAppConfig cfg;
  cfg.wcet_min = SimTime::from_ms(2);
  cfg.wcet_max = SimTime::from_ms(3);
  Rng rng(5);
  const Application app = apps::random_application(rng, cfg);
  for (NodeId id : app.graph.all_nodes()) {
    const Node& n = app.graph.node(id);
    if (n.kind != NodeKind::Computation) continue;
    EXPECT_GE(n.wcet, cfg.wcet_min);
    EXPECT_LE(n.wcet, cfg.wcet_max);
    EXPECT_LE(n.acet, n.wcet);
  }
}

TEST(RandomApp, ConfigValidation) {
  Rng rng(1);
  RandomAppConfig cfg;
  cfg.max_branch_alts = 1;
  EXPECT_THROW(apps::random_program(rng, cfg), Error);
  cfg = RandomAppConfig{};
  cfg.alpha_min = 0.0;
  EXPECT_THROW(apps::random_program(rng, cfg), Error);
  cfg = RandomAppConfig{};
  cfg.wcet_min = SimTime::from_ms(5);
  cfg.wcet_max = SimTime::from_ms(1);
  EXPECT_THROW(apps::random_program(rng, cfg), Error);
}

// --------------------------------------------------------------- scenario

TEST(Scenario, ActualTimesWithinBounds) {
  const Application app = apps::build_atr();
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const RunScenario sc = draw_scenario(app.graph, rng);
    for (NodeId id : app.graph.all_nodes()) {
      const Node& n = app.graph.node(id);
      if (n.kind == NodeKind::Computation) {
        EXPECT_GT(sc.actual_of(id), SimTime::zero());
        EXPECT_LE(sc.actual_of(id), n.wcet);
      } else {
        EXPECT_EQ(sc.actual_of(id), SimTime::zero());
      }
      if (n.is_or_fork()) {
        EXPECT_GE(sc.choice_of(id), 0);
        EXPECT_LT(static_cast<std::size_t>(sc.choice_of(id)),
                  n.succs.size());
      } else {
        EXPECT_EQ(sc.choice_of(id), -1);
      }
    }
  }
}

TEST(Scenario, MeanTracksAcet) {
  Program p;
  p.task("T", SimTime::from_ms(10), SimTime::from_ms(6));
  const Application app = build_application("m", p);
  Rng rng(3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum += draw_scenario(app.graph, rng).actual[0].ms();
  EXPECT_NEAR(sum / n, 6.0, 0.05);
}

TEST(Scenario, ForkChoiceFrequenciesMatchProbabilities) {
  Program xa, yb;
  xa.task("x", SimTime::from_ms(1), SimTime::from_ms(1));
  yb.task("y", SimTime::from_ms(1), SimTime::from_ms(1));
  Program p;
  p.branch("o", {{0.2, std::move(xa)}, {0.8, std::move(yb)}});
  const Application app = build_application("f", p);
  const NodeId fork = app.structure.segments[0].fork;
  Rng rng(9);
  int taken0 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (draw_scenario(app.graph, rng).choice_of(fork) == 0) ++taken0;
  EXPECT_NEAR(taken0 / double(n), 0.2, 0.01);
}

TEST(Scenario, AssignAlphaScalesMeans) {
  Application app = apps::build_atr();
  assign_alpha(app.graph, 0.4);  // no jitter
  for (NodeId id : app.graph.all_nodes()) {
    const Node& n = app.graph.node(id);
    if (n.kind != NodeKind::Computation) continue;
    EXPECT_NEAR(static_cast<double>(n.acet.ps) /
                    static_cast<double>(n.wcet.ps),
                0.4, 1e-6);
  }
}

TEST(Scenario, AssignAlphaWithJitterStaysBounded) {
  Application app = apps::build_atr();
  Rng rng(21);
  assign_alpha(app.graph, 0.5, &rng);
  for (NodeId id : app.graph.all_nodes()) {
    const Node& n = app.graph.node(id);
    if (n.kind != NodeKind::Computation) continue;
    EXPECT_GE(n.acet, SimTime{1});
    EXPECT_LE(n.acet, n.wcet);
  }
}

TEST(Scenario, WorstCaseUsesWcets) {
  const Application app = apps::build_synthetic();
  const RunScenario sc = worst_case_scenario(app.graph);
  for (NodeId id : app.graph.all_nodes()) {
    const Node& n = app.graph.node(id);
    if (n.kind == NodeKind::Computation)
      EXPECT_EQ(sc.actual_of(id), n.wcet);
  }
}

}  // namespace
}  // namespace paserta
