// Edge-case tests for the online engine and offline phase: infeasible
// deadlines, zero-work applications, simultaneous completions, wake
// chains, SS2 theta crossings mid-run, and trace field semantics.
#include <gtest/gtest.h>

#include <set>

#include "apps/mpeg.h"
#include "core/offline.h"
#include "sim/engine.h"
#include "sim/verify.h"

namespace paserta {
namespace {

SimTime ms(double v) { return SimTime::from_ms(v); }
TaskSpec t(const char* n, double w, double a) {
  return TaskSpec{n, ms(w), ms(a)};
}

Overheads no_overheads() {
  Overheads o;
  o.speed_compute_cycles = 0;
  o.speed_change_time = SimTime::zero();
  return o;
}

OfflineResult analyze(const Application& app, SimTime deadline, int cpus,
                      SimTime budget = SimTime::zero()) {
  OfflineOptions o;
  o.cpus = cpus;
  o.deadline = deadline;
  o.overhead_budget = budget;
  return analyze_offline(app, o);
}

TEST(EngineEdge, InfeasibleDeadlineRunsAndReportsMiss) {
  Program p;
  p.task("big", ms(50), ms(40));
  const Application app = build_application("inf", p);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(10), 1);
  ASSERT_FALSE(off.feasible());

  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, no_overheads(), Scheme::GSS, sc);
  EXPECT_FALSE(r.deadline_met);
  EXPECT_EQ(r.finish_time, ms(50));  // clamped to f_max
  // Idle energy clamps at zero rather than going negative.
  EXPECT_GE(r.idle_energy, 0.0);
  EXPECT_EQ(r.idle_energy, 0.0);
}

TEST(EngineEdge, ZeroTaskApplication) {
  // A branch whose alternatives are both empty: only dummies execute.
  Program p;
  p.branch("o", {{0.5, Program{}}, {0.5, Program{}}});
  const Application app = build_application("empty", p);
  EXPECT_EQ(app.graph.task_count(), 0u);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(10), 2);
  EXPECT_EQ(off.worst_makespan(), SimTime::zero());

  std::vector<int> choices(app.graph.size(), -1);
  for (NodeId id : app.graph.all_nodes())
    if (app.graph.node(id).is_or_fork()) choices[id.value] = 1;
  const RunScenario sc = worst_case_scenario(app.graph, &choices);
  const SimResult r = simulate(app, off, pm, no_overheads(), Scheme::GSS, sc);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_EQ(r.finish_time, SimTime::zero());
  EXPECT_EQ(r.busy_energy, 0.0);
  // Both processors idle for the whole window.
  EXPECT_NEAR(r.idle_energy, 2 * pm.idle_power() * 0.010, 1e-12);
}

TEST(EngineEdge, SimultaneousCompletionsDeterministic) {
  // Four equal tasks on two CPUs: two pairs complete simultaneously; the
  // dispatch order must be reproducible.
  Program p;
  p.parallel({t("a", 4, 4), t("b", 4, 4), t("c", 4, 4), t("d", 4, 4)});
  const Application app = build_application("sim", p);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(16), 2);
  const RunScenario sc = worst_case_scenario(app.graph);

  const SimResult r1 = simulate(app, off, pm, no_overheads(), Scheme::GSS, sc);
  const SimResult r2 = simulate(app, off, pm, no_overheads(), Scheme::GSS, sc);
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  for (std::size_t i = 0; i < r1.trace.size(); ++i) {
    EXPECT_EQ(r1.trace[i].node, r2.trace[i].node);
    EXPECT_EQ(r1.trace[i].cpu, r2.trace[i].cpu);
  }
}

TEST(EngineEdge, WakeChainStartsParallelTasksTogether) {
  // head -> {4 parallel tasks} on 4 CPUs: after `head`, the wake chain
  // must put all four tasks on distinct processors at the same instant.
  Program p;
  p.task("head", ms(2), ms(2));
  p.parallel({t("w0", 4, 4), t("w1", 4, 4), t("w2", 4, 4), t("w3", 4, 4)});
  const Application app = build_application("wake", p);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(12), 4);
  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, no_overheads(), Scheme::NPM, sc);

  std::set<int> cpus_used;
  for (const TaskRecord& rec : r.trace) {
    const Node& n = app.graph.node(rec.node);
    if (n.name.rfind("w", 0) == 0 && !n.is_dummy()) {
      EXPECT_EQ(rec.dispatch_time, ms(2)) << n.name;
      cpus_used.insert(rec.cpu);
    }
  }
  EXPECT_EQ(cpus_used.size(), 4u);
}

TEST(EngineEdge, Ss2FloorAndGreedyInterplay) {
  // Long chain under SS2 with fast actuals: early tasks sit on the f_low
  // floor; later tasks speed up (theta crossing and/or greedy takeover as
  // their latest start times close in). Both regimes must appear.
  Program p;
  std::vector<TaskSpec> chain;
  for (int i = 0; i < 10; ++i)
    chain.push_back(t(("c" + std::to_string(i)).c_str(), 4, 1));
  p.chain(chain);
  const Application app = build_application("theta", p);
  const PowerModel pm(LevelTable::intel_xscale());
  const Overheads ovh = no_overheads();
  // A = 10ms, W = 40ms; D = 64ms -> f_spec = 156 MHz in (150, 400).
  const OfflineResult off = analyze(app, ms(64), 1);
  ASSERT_EQ(off.average_makespan(), ms(10));

  RunScenario sc = worst_case_scenario(app.graph);
  for (auto& a : sc.actual)
    if (a > SimTime::zero()) a = ms(1);  // fast actuals: floor dominates
  const SimResult r = simulate(app, off, pm, ovh, Scheme::SS2, sc);
  ASSERT_TRUE(r.deadline_met);

  bool saw_low = false, saw_high_after_low = false;
  for (const TaskRecord& rec : r.trace) {
    const Freq f = pm.table().level(rec.level).freq;
    if (f == 150 * kMHz) saw_low = true;
    if (saw_low && f >= 400 * kMHz) saw_high_after_low = true;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high_after_low);
}

TEST(EngineEdge, TraceFieldSemantics) {
  const Application app = apps::build_mpeg();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  const OfflineResult off =
      analyze(app, ms(60), 2, ovh.worst_case_budget(pm.table()));
  Rng rng(3);
  const RunScenario sc = draw_scenario(app.graph, rng);
  const SimResult r = simulate(app, off, pm, ovh, Scheme::GSS, sc);

  for (const TaskRecord& rec : r.trace) {
    const Node& n = app.graph.node(rec.node);
    if (n.is_or_fork()) {
      EXPECT_GE(rec.chosen_alt, 0);
      EXPECT_EQ(rec.chosen_alt, sc.choice_of(rec.node));
    } else {
      EXPECT_EQ(rec.chosen_alt, -1);
    }
    EXPECT_LE(rec.dispatch_time, rec.exec_start);
    EXPECT_LE(rec.exec_start, rec.finish);
    if (!rec.switched) {
      EXPECT_EQ(rec.level, rec.level_before);
    } else {
      EXPECT_NE(rec.level, rec.level_before);
    }
  }
}

TEST(EngineEdge, DummyChainsResolveInstantly) {
  // branch(empty, empty) sandwiched between tasks: the dummy chain (fork,
  // skip, join) must resolve at one instant on one processor.
  Program p;
  p.task("pre", ms(2), ms(1));
  p.branch("o", {{0.5, Program{}}, {0.5, Program{}}});
  p.task("post", ms(2), ms(1));
  const Application app = build_application("dummy", p);
  const PowerModel pm(LevelTable::intel_xscale());
  const OfflineResult off = analyze(app, ms(12), 2);
  const RunScenario sc = worst_case_scenario(app.graph);
  const SimResult r = simulate(app, off, pm, no_overheads(), Scheme::NPM, sc);

  const TaskRecord* pre = nullptr;
  const TaskRecord* post = nullptr;
  for (const TaskRecord& rec : r.trace) {
    if (app.graph.node(rec.node).name == "pre") pre = &rec;
    if (app.graph.node(rec.node).name == "post") post = &rec;
  }
  ASSERT_NE(pre, nullptr);
  ASSERT_NE(post, nullptr);
  EXPECT_EQ(post->dispatch_time, pre->finish);  // no time lost in dummies
}

TEST(EngineEdge, AverageAtMostWorstEvenWithInflation) {
  const Application app = apps::build_mpeg();
  const PowerModel pm(LevelTable::intel_xscale());
  Overheads ovh;
  const OfflineResult off =
      analyze(app, ms(100), 2, ovh.worst_case_budget(pm.table()));
  EXPECT_LE(off.average_makespan(), off.worst_makespan());
  EXPECT_GT(off.average_makespan(), SimTime::zero());
}

TEST(EngineEdge, SingleLevelTableDegeneratesToNpmTiming) {
  // One DVS level: every scheme runs at that level; energies coincide for
  // dynamic schemes up to overhead accounting.
  const LevelTable one = LevelTable::synthetic("one", 1, 800 * kMHz,
                                               800 * kMHz, 1.5, 1.5);
  Program p;
  p.chain({t("a", 4, 2), t("b", 4, 2)});
  const Application app = build_application("one", p);
  const PowerModel pm(one);
  const Overheads ovh = no_overheads();
  OfflineOptions o;
  o.cpus = 1;
  o.deadline = ms(30);
  const OfflineResult off = analyze_offline(app, o);
  const RunScenario sc = worst_case_scenario(app.graph);

  const SimResult gss = simulate(app, off, pm, ovh, Scheme::GSS, sc);
  const SimResult npm = simulate(app, off, pm, ovh, Scheme::NPM, sc);
  EXPECT_TRUE(gss.deadline_met);
  EXPECT_EQ(gss.speed_changes, 0u);
  EXPECT_DOUBLE_EQ(gss.total_energy(), npm.total_energy());
}

}  // namespace
}  // namespace paserta
