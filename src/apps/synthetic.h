// The synthetic AND/OR application of the paper's Figure 3.
//
// The figure is only partially legible in the available copy of the paper;
// this is a reconstruction that uses every legible fragment (task WCET/ACET
// pairs A(8/5) B(5/3) C(4/2) E(5/4) F(8/6) G(5/3) H(10/6) I(10/8) K(5/3)
// L(10/8), AND nodes A1..A4, OR structures O1..O4, branch probabilities
// 35%/65% and 30%/70%, a loop of maximal 4 iterations with distribution
// 30/20/25/25 %) and preserves the structure class: an AND-parallel
// prologue, a probabilistic loop, two OR branches (one with internal
// parallelism), and a serial epilogue. Time unit: milliseconds.
#pragma once

#include "graph/program.h"

namespace paserta::apps {

struct SyntheticConfig {
  /// LoopMode::Unroll expands the loop into OR structures (default);
  /// LoopMode::Collapse turns it into a single aggregate task (§2.1 offers
  /// both treatments).
  LoopMode loop_mode = LoopMode::Unroll;
};

/// Builds the Figure-3 synthetic application.
Application build_synthetic(const SyntheticConfig& config = {});

/// The underlying Program (exposed so tests/examples can recombine it).
Program synthetic_program(const SyntheticConfig& config = {});

}  // namespace paserta::apps
