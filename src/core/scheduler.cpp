#include "core/scheduler.h"

#include <cmath>

#include "common/error.h"
#include "sim/scenario.h"

namespace paserta {

PowerAwareScheduler::PowerAwareScheduler(Application app, const Config& cfg)
    : app_(std::move(app)),
      pm_(cfg.table, cfg.c_ef, cfg.idle_fraction),
      ovh_(cfg.overheads),
      scheme_(cfg.scheme),
      sampler_(app_.graph),
      policy_(make_policy(cfg.scheme)),
      track_npm_(cfg.track_npm_baseline),
      record_trace_(cfg.record_trace),
      collect_metrics_(cfg.collect_metrics),
      audit_(cfg.audit) {
  PASERTA_REQUIRE(cfg.deadline.has_value() != cfg.load.has_value(),
                  "set exactly one of Config::deadline and Config::load");

  OfflineOptions opt;
  opt.cpus = cfg.cpus;
  opt.overhead_budget = ovh_.worst_case_budget(pm_.table());
  if (cfg.deadline) {
    opt.deadline = *cfg.deadline;
  } else {
    PASERTA_REQUIRE(*cfg.load > 0.0 && *cfg.load <= 1.0,
                    "load must be in (0,1], got " << *cfg.load);
    const SimTime w =
        canonical_worst_makespan(app_, cfg.cpus, opt.overhead_budget);
    opt.deadline = SimTime{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(w.ps) / *cfg.load))};
  }
  off_ = analyze_offline(app_, opt);
  PASERTA_REQUIRE(off_.feasible(),
                  "infeasible: canonical worst case "
                      << to_string(off_.worst_makespan())
                      << " exceeds the deadline "
                      << to_string(off_.deadline()));
  if (track_npm_) npm_ = make_policy(Scheme::NPM);
}

SimResult PowerAwareScheduler::run_frame(Rng& rng) {
  return run_frame(sampler_.draw(rng));
}

SimResult PowerAwareScheduler::run_frame(const RunScenario& scenario) {
  SimOptions sim_opt;
  sim_opt.record_trace = record_trace_;
  sim_opt.audit = audit_;
  if (collect_metrics_) sim_opt.counters = &summary_.counters;
  policy_->reset(off_, pm_);
  SimResult r = simulate(app_, off_, pm_, ovh_, *policy_, scenario, ws_,
                         sim_opt);

  ++summary_.frames;
  if (!r.deadline_met) ++summary_.deadline_misses;
  summary_.energy_joules.add(r.total_energy());
  summary_.speed_changes.add(static_cast<double>(r.speed_changes));
  summary_.finish_frac.add(static_cast<double>(r.finish_time.ps) /
                           static_cast<double>(off_.deadline().ps));
  if (track_npm_) {
    // The baseline run only feeds the summary, never a trace consumer.
    npm_->reset(off_, pm_);
    SimOptions base_opt;
    base_opt.record_trace = false;
    base_opt.audit = audit_;
    if (collect_metrics_) base_opt.counters = &summary_.npm_counters;
    const SimResult base =
        simulate(app_, off_, pm_, ovh_, *npm_, scenario, ws_, base_opt);
    const Energy base_total = base.total_energy();
    // A zero-energy baseline (degenerate workload) would make the
    // normalized energy NaN/Inf; count the frame instead of poisoning
    // the running statistics.
    if (base_total > 0.0)
      summary_.norm_energy.add(r.total_energy() / base_total);
    else
      ++summary_.degenerate_frames;
  }
  return r;
}

}  // namespace paserta
