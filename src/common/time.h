// Fixed-point simulation time for paserta.
//
// All schedule arithmetic (canonical schedules, latest start times, slack)
// is performed on integer picoseconds so that offline analysis and the
// online simulator agree bit-for-bit; floating point is used only for
// energy bookkeeping and statistics.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace paserta {

/// Processor frequency in Hz.
using Freq = std::uint64_t;

constexpr Freq kMHz = 1'000'000ULL;
constexpr Freq kGHz = 1'000'000'000ULL;

/// A point in (or span of) simulated time, in integer picoseconds.
///
/// int64 picoseconds cover ~106 days, far beyond any frame deadline in the
/// paper's workloads (milliseconds). A strong type keeps Freq/time/cycle
/// quantities from mixing accidentally.
struct SimTime {
  std::int64_t ps{0};

  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t picoseconds) : ps(picoseconds) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  static constexpr SimTime from_ns(double ns) {
    return SimTime{static_cast<std::int64_t>(ns * 1e3 + 0.5)};
  }
  static constexpr SimTime from_us(double us) {
    return SimTime{static_cast<std::int64_t>(us * 1e6 + 0.5)};
  }
  static constexpr SimTime from_ms(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1e9 + 0.5)};
  }
  static constexpr SimTime from_sec(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e12 + 0.5)};
  }

  constexpr double ns() const { return static_cast<double>(ps) / 1e3; }
  constexpr double us() const { return static_cast<double>(ps) / 1e6; }
  constexpr double ms() const { return static_cast<double>(ps) / 1e9; }
  constexpr double sec() const { return static_cast<double>(ps) / 1e12; }

  constexpr bool is_zero() const { return ps == 0; }
  constexpr bool is_negative() const { return ps < 0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime o) {
    ps += o.ps;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ps -= o.ps;
    return *this;
  }
};

constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ps + b.ps}; }
constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ps - b.ps}; }
constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ps * k}; }
constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime{a.ps * k}; }

/// ceil(t * num / den) with a 128-bit intermediate; exact for all inputs the
/// simulator produces. Used to stretch execution times across frequencies:
/// a task needing `t` at `f_max` needs `scale_time(t, f_max, f)` at `f`.
///
/// Fast path: when `t.ps * num + den - 1` fits in 64 bits — true for every
/// workload in the paper (sub-second times, sub-GHz frequencies) — the
/// ceil-divide is one hardware divide instead of a libgcc __udivti3 call.
/// Both paths compute the identical quotient.
constexpr SimTime scale_time(SimTime t, std::uint64_t num, std::uint64_t den) {
  if (t.ps >= 0 && num > 0) {
    const auto a = static_cast<std::uint64_t>(t.ps);
    const std::uint64_t limit = ~std::uint64_t{0} - (den - 1);
    if (a <= limit / num) {
      const std::uint64_t q = (a * num + (den - 1)) / den;
      return SimTime{static_cast<std::int64_t>(q)};
    }
  }
  const auto wide = static_cast<__int128>(t.ps) * static_cast<__int128>(num);
  const auto d = static_cast<__int128>(den);
  const __int128 q = (wide + d - 1) / d;
  return SimTime{static_cast<std::int64_t>(q)};
}

/// Time taken by `cycles` processor cycles at frequency `f` (rounded up).
/// Same 64-bit fast path as scale_time.
constexpr SimTime cycles_to_time(std::uint64_t cycles, Freq f) {
  constexpr std::uint64_t kPsPerSec = 1'000'000'000'000ULL;
  const std::uint64_t limit = ~std::uint64_t{0} - (f - 1);
  if (cycles <= limit / kPsPerSec) {
    const std::uint64_t q = (cycles * kPsPerSec + (f - 1)) / f;
    return SimTime{static_cast<std::int64_t>(q)};
  }
  const auto wide = static_cast<__int128>(cycles) * 1'000'000'000'000LL;
  const auto d = static_cast<__int128>(f);
  return SimTime{static_cast<std::int64_t>((wide + d - 1) / d)};
}

/// Number of cycles executed in time `t` at frequency `f` (rounded down).
constexpr std::uint64_t time_to_cycles(SimTime t, Freq f) {
  const auto wide = static_cast<__int128>(t.ps) * static_cast<__int128>(f);
  return static_cast<std::uint64_t>(wide / 1'000'000'000'000LL);
}

std::string to_string(SimTime t);

}  // namespace paserta
