// Statistical comparison of Monte-Carlo results.
//
// "Scheme A's mean normalized energy is 0.003 below B's" means nothing
// without an error model. This module implements Welch's unequal-variance
// t-test over RunningStat summaries (exact t statistic and
// Welch-Satterthwaite degrees of freedom, two-sided p-value via the
// regularized incomplete beta function) so benches and tests can report
// whether a difference is real at the chosen run count.
#pragma once

#include "common/stats.h"

namespace paserta {

struct TTestResult {
  double t = 0.0;            // Welch's t statistic
  double df = 0.0;           // Welch-Satterthwaite degrees of freedom
  double p_value = 1.0;      // two-sided
  double mean_diff = 0.0;    // mean(a) - mean(b)
  double ci95_halfwidth = 0.0;  // on the mean difference

  bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

/// Welch's two-sample t-test on summary statistics. Requires both samples
/// to have at least two observations; throws paserta::Error otherwise.
/// Degenerate zero-variance pairs return p = 1 when the means are equal
/// and p = 0 when they differ.
TTestResult welch_t_test(const RunningStat& a, const RunningStat& b);

/// One-sample t-test of H0: mean == mu0. The right tool for *paired*
/// designs (feed it the per-run differences): paserta's harness evaluates
/// all schemes on identical scenarios, so per-run energy differences are
/// the high-power comparison.
TTestResult one_sample_t_test(const RunningStat& sample, double mu0 = 0.0);

/// Regularized incomplete beta function I_x(a, b) (continued-fraction
/// evaluation); exposed for testing. Domain: a, b > 0, x in [0, 1].
double regularized_incomplete_beta(double a, double b, double x);

/// Student-t two-sided tail probability P(|T_df| >= |t|).
double student_t_two_sided_p(double t, double df);

}  // namespace paserta
