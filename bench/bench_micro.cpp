// Micro-benchmarks (google-benchmark): throughput of the offline analysis,
// the LTF list scheduler and the online simulator — the cost a runtime
// would actually pay per power-management point.
#include <benchmark/benchmark.h>

#include "apps/atr.h"
#include "apps/random_app.h"
#include "apps/synthetic.h"
#include "core/list_sched.h"
#include "core/offline.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/sampler.h"

namespace paserta {
namespace {

Application big_random_app(std::uint64_t seed) {
  apps::RandomAppConfig cfg;
  cfg.max_segments = 6;
  cfg.max_section_tasks = 10;
  Rng rng(seed);
  return apps::random_application(rng, cfg, "big");
}

void BM_LtfSchedule(benchmark::State& state) {
  AndOrGraph g;
  std::vector<NodeId> members;
  const auto n = static_cast<int>(state.range(0));
  Rng rng(1);
  for (int i = 0; i < n; ++i)
    members.push_back(g.add_task("t" + std::to_string(i),
                                 SimTime::from_ms(1 + rng.next_below(9)),
                                 SimTime::from_ms(1)));
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.next_double() < 0.1) g.add_edge(members[i], members[j]);
  const auto dur = [&g](NodeId id) { return g.node(id).wcet; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(ltf_schedule(g, members, 4, dur));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LtfSchedule)->Arg(16)->Arg(64)->Arg(256);

void BM_OfflineAnalysis(benchmark::State& state) {
  const Application app = apps::build_atr();
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = SimTime::from_ms(200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_offline(app, o));
  }
}
BENCHMARK(BM_OfflineAnalysis);

void BM_SimulateScheme(benchmark::State& state) {
  const Application app = apps::build_synthetic();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = SimTime::from_ms(120);
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  const OfflineResult off = analyze_offline(app, o);
  const Scheme scheme = static_cast<Scheme>(state.range(0));
  Rng rng(5);
  const RunScenario sc = draw_scenario(app.graph, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(app, off, pm, ovh, scheme, sc));
  }
}
BENCHMARK(BM_SimulateScheme)
    ->Arg(static_cast<int>(Scheme::NPM))
    ->Arg(static_cast<int>(Scheme::GSS))
    ->Arg(static_cast<int>(Scheme::AS));

// Same simulation through the reusable-workspace overload with trace
// recording off — the configuration the Monte-Carlo harness runs in. The
// delta against BM_SimulateScheme is the per-run allocation + trace cost.
void BM_SimulateWorkspace(benchmark::State& state) {
  const Application app = apps::build_synthetic();
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 2;
  o.deadline = SimTime::from_ms(120);
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  const OfflineResult off = analyze_offline(app, o);
  auto policy = make_policy(static_cast<Scheme>(state.range(0)));
  policy->reset(off, pm);
  Rng rng(5);
  const RunScenario sc = draw_scenario(app.graph, rng);
  SimWorkspace ws;
  SimOptions opt;
  opt.record_trace = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(app, off, pm, ovh, *policy, sc, ws, opt));
  }
}
BENCHMARK(BM_SimulateWorkspace)
    ->Arg(static_cast<int>(Scheme::NPM))
    ->Arg(static_cast<int>(Scheme::GSS))
    ->Arg(static_cast<int>(Scheme::AS));

void BM_DrawScenario(benchmark::State& state) {
  const Application app = big_random_app(3);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(draw_scenario(app.graph, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(app.graph.size()));
}
BENCHMARK(BM_DrawScenario);

void BM_SamplerDraw(benchmark::State& state) {
  const Application app = big_random_app(3);
  const ScenarioSampler sampler(app.graph);
  Rng rng(9);
  RunScenario sc;
  for (auto _ : state) {
    sampler.draw_into(rng, sc);
    benchmark::DoNotOptimize(sc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(app.graph.size()));
}
BENCHMARK(BM_SamplerDraw);

// The batched engine's dispatch loop (sim/batch_engine.h) on a wide random
// graph: one simulate_batch call of `lanes` pre-drawn scenarios per
// iteration, items = simulated runs. Lanes = 1 prices the batched loop's
// fixed overhead against BM_SimulateWorkspace; larger lane counts show how
// much of the per-run fixed cost (policy reset, validation, table
// derivation) the batch amortizes away.
void BM_BatchDispatch(benchmark::State& state) {
  const Application app = big_random_app(3);
  const PowerModel pm(LevelTable::transmeta_tm5400());
  Overheads ovh;
  OfflineOptions o;
  o.cpus = 2;
  o.overhead_budget = ovh.worst_case_budget(pm.table());
  o.deadline = SimTime{2 * canonical_worst_makespan(app, o.cpus,
                                                    o.overhead_budget,
                                                    o.heuristic).ps};
  const OfflineResult off = analyze_offline(app, o);
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const ScenarioSampler sampler(app.graph);
  ScenarioBatch batch;
  batch.ensure(lanes, app.graph.size());
  Rng rng(9);
  for (std::size_t l = 0; l < lanes; ++l) sampler.draw_into(rng, batch, l);
  BatchWorkspace ws;
  std::vector<SimResult> results(lanes);
  for (auto _ : state) {
    simulate_batch(app, off, pm, ovh, Scheme::GSS, PolicyOptions{}, batch,
                   lanes, ws, results.data());
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_BatchDispatch)->Arg(1)->Arg(8)->Arg(32);

void BM_GraphValidate(benchmark::State& state) {
  const Application app = big_random_app(4);
  for (auto _ : state) {
    app.graph.validate();
  }
}
BENCHMARK(BM_GraphValidate);

}  // namespace
}  // namespace paserta
