#include "graph/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"

namespace paserta {
namespace {

/// Longest WCET chain within one section (members only).
SimTime section_critical_path(const AndOrGraph& g,
                              const std::vector<NodeId>& members) {
  // Longest-path DP over the member-induced sub-DAG; members are acyclic
  // because the whole graph is.
  std::unordered_map<std::uint32_t, SimTime> longest;
  longest.reserve(members.size());

  // Process in an order where predecessors come first: repeatedly relax
  // (members are few; a simple Kahn pass keeps it linear).
  std::unordered_map<std::uint32_t, std::uint32_t> indeg;
  for (NodeId m : members) indeg[m.value] = 0;
  for (NodeId m : members)
    for (NodeId p : g.node(m).preds)
      if (indeg.contains(p.value)) ++indeg[m.value];

  std::vector<NodeId> queue;
  for (NodeId m : members)
    if (indeg[m.value] == 0) queue.push_back(m);

  SimTime best{};
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const NodeId u = queue[qi];
    const SimTime here = longest[u.value] + g.node(u).wcet;
    best = std::max(best, here);
    for (NodeId s : g.node(u).succs) {
      auto it = indeg.find(s.value);
      if (it == indeg.end()) continue;
      longest[s.value] = std::max(longest[s.value], here);
      if (--it->second == 0) queue.push_back(s);
    }
  }
  PASERTA_ASSERT(queue.size() == members.size(),
                 "section sub-DAG inconsistent in metrics");
  return best;
}

struct ProgramMetrics {
  double paths = 1.0;
  SimTime critical{};
  SimTime max_work{};
  double expected_work_ps = 0.0;
};

ProgramMetrics analyze(const AndOrGraph& g, const StructProgram& p) {
  ProgramMetrics out;
  for (const StructSegment& seg : p.segments) {
    if (seg.kind == StructSegment::Kind::Section) {
      out.critical += section_critical_path(g, seg.members);
      for (NodeId m : seg.members) {
        out.max_work += g.node(m).wcet;
        out.expected_work_ps += static_cast<double>(g.node(m).acet.ps);
      }
    } else {
      double paths = 0.0;
      SimTime crit{}, work{};
      double expected = 0.0;
      for (std::size_t a = 0; a < seg.alternatives.size(); ++a) {
        const ProgramMetrics sub = analyze(g, seg.alternatives[a]);
        paths += sub.paths;
        crit = std::max(crit, sub.critical);
        work = std::max(work, sub.max_work);
        expected += seg.alt_prob[a] * sub.expected_work_ps;
      }
      out.paths *= paths;
      out.critical += crit;
      out.max_work += work;
      out.expected_work_ps += expected;
    }
  }
  return out;
}

}  // namespace

GraphMetrics compute_metrics(const Application& app) {
  GraphMetrics m;
  m.nodes = app.graph.size();
  for (NodeId id : app.graph.all_nodes()) {
    const Node& n = app.graph.node(id);
    m.edges += n.succs.size();
    switch (n.kind) {
      case NodeKind::Computation: ++m.tasks; break;
      case NodeKind::AndNode: ++m.and_nodes; break;
      case NodeKind::OrNode:
        ++m.or_nodes;
        if (n.is_or_fork()) ++m.or_forks;
        break;
    }
  }

  const ProgramMetrics pm = analyze(app.graph, app.structure);
  m.path_count = pm.paths;
  m.critical_path = pm.critical;
  m.max_work = pm.max_work;
  m.expected_work =
      SimTime{static_cast<std::int64_t>(pm.expected_work_ps + 0.5)};
  m.parallelism =
      pm.critical.ps > 0
          ? static_cast<double>(pm.max_work.ps) /
                static_cast<double>(pm.critical.ps)
          : 0.0;
  return m;
}

}  // namespace paserta
