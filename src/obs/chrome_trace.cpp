#include "obs/chrome_trace.h"

#include <ostream>
#include <set>
#include <sstream>

#include "harness/json.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace paserta {
namespace {

/// Microseconds with nanosecond resolution kept as a decimal fraction —
/// the trace-event spec's "ts"/"dur" unit.
std::string us(std::int64_t ns) {
  std::ostringstream os;
  os << ns / 1000 << "." << (ns % 1000 < 100 ? "0" : "")
     << (ns % 1000 < 10 ? "0" : "") << ns % 1000;
  return os.str();
}

void write_args(JsonWriter& w, const TraceEvent& ev) {
  if (ev.point < 0 && ev.run < 0) return;
  w.key("args").begin_object();
  if (ev.point >= 0) w.key("point").value(ev.point);
  if (ev.run >= 0) w.key("run").value(ev.run);
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  write_chrome_trace(os, tracer, nullptr);
}

void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                        const Profiler* prof) {
  const std::vector<TraceEvent> events = tracer.events();
  std::set<int> slots;
  for (const TraceEvent& ev : events) slots.insert(ev.slot);

  // One event per physical line (compact writer + manual newlines) keeps
  // big traces diffable and greppable.
  JsonWriter w(os);
  w.begin_object().key("traceEvents").begin_array();
  // Thread-name metadata first: Perfetto labels each slot's track.
  for (int slot : slots) {
    os << "\n";
    w.begin_object()
        .key("ph").value("M").key("pid").value(1).key("tid").value(slot)
        .key("name").value("thread_name")
        .key("args").begin_object()
        .key("name")
        .value(slot == 0 ? "slot 0 (caller)" : "slot " + std::to_string(slot))
        .end_object().end_object();
  }
  for (const TraceEvent& ev : events) {
    os << "\n";
    w.begin_object()
        .key("name").value(ev.name).key("cat").value("paserta")
        .key("ph").value(ev.dur_ns < 0 ? "i" : "X")
        .key("pid").value(1).key("tid").value(ev.slot)
        .key("ts").raw(us(ev.ts_ns));
    if (ev.dur_ns >= 0)
      w.key("dur").raw(us(ev.dur_ns));
    else
      w.key("s").value("t");  // instant scope: thread
    write_args(w, ev);
    w.end_object();
  }
  // Profiler counter tracks: cumulative per-slot cycle / instruction /
  // busy-ns samples as "C" events, rebased onto the tracer's timeline.
  // Samples recorded before the tracer existed would land at negative
  // timestamps (profiler outliving several tracers); they are dropped.
  if (prof != nullptr) {
    const std::int64_t epoch = tracer.epoch_ns();
    for (const ProfSample& s : prof->samples()) {
      const std::int64_t ts = s.ts_ns - epoch;
      if (ts < 0) continue;
      os << "\n";
      w.begin_object()
          .key("name")
          .value("prof slot " + std::to_string(s.slot))
          .key("cat").value("paserta").key("ph").value("C")
          .key("pid").value(1).key("tid").value(s.slot)
          .key("ts").raw(us(ts))
          .key("args").begin_object()
          .key("cycles").value(s.cycles)
          .key("instructions").value(s.instructions)
          .key("busy_ns").value(s.ns)
          .end_object().end_object();
    }
  }
  os << "\n";
  w.end_array().key("displayTimeUnit").value("ms").end_object();
  os << "\n";
}

std::string chrome_trace_to_json(const Tracer& tracer) {
  std::ostringstream os;
  write_chrome_trace(os, tracer);
  return os.str();
}

}  // namespace paserta
