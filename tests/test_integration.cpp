// Integration tests: offline + online end-to-end on the paper's workloads,
// all schemes, both processor models, with trace verification and
// qualitative shape checks against the paper's findings.
#include <gtest/gtest.h>

#include "apps/atr.h"
#include "apps/synthetic.h"
#include "core/offline.h"
#include "harness/experiment.h"
#include "sim/engine.h"
#include "sim/verify.h"

namespace paserta {
namespace {

struct EnvCtx {
  Application app;
  PowerModel pm;
  Overheads ovh;
  OfflineResult off;
};

EnvCtx make_env(Application app, const LevelTable& table, int cpus,
                 double load) {
  Overheads ovh;  // paper defaults: 300 cycles, 5 us
  const SimTime w =
      canonical_worst_makespan(app, cpus, ovh.worst_case_budget(table));
  OfflineOptions o;
  o.cpus = cpus;
  o.deadline = SimTime{static_cast<std::int64_t>(
      static_cast<double>(w.ps) / load + 1)};
  o.overhead_budget = ovh.worst_case_budget(table);
  OfflineResult off = analyze_offline(app, o);
  return EnvCtx{std::move(app), PowerModel(table), ovh, std::move(off)};
}

const Scheme kAllSchemes[] = {Scheme::NPM, Scheme::SPM, Scheme::GSS,
                              Scheme::SS1, Scheme::SS2, Scheme::AS};

TEST(Integration, AtrAllSchemesAllModelsMeetDeadlines) {
  for (const LevelTable& table :
       {LevelTable::transmeta_tm5400(), LevelTable::intel_xscale()}) {
    for (int cpus : {2, 4}) {
      EnvCtx s = make_env(apps::build_atr(), table, cpus, 0.6);
      ASSERT_TRUE(s.off.feasible());
      Rng rng(404);
      for (int run = 0; run < 10; ++run) {
        const RunScenario sc = draw_scenario(s.app.graph, rng);
        for (Scheme scheme : kAllSchemes) {
          const SimResult r =
              simulate(s.app, s.off, s.pm, s.ovh, scheme, sc);
          EXPECT_TRUE(r.deadline_met)
              << to_string(scheme) << " missed on " << table.name();
          const VerifyReport rep = verify_trace(s.app, s.off, sc, r);
          EXPECT_TRUE(rep.ok)
              << to_string(scheme) << ": "
              << (rep.violations.empty() ? "" : rep.violations[0]);
        }
      }
    }
  }
}

TEST(Integration, SyntheticWorstCaseEveryPath) {
  // Worst-case actuals down every combination of the two main branches:
  // the deadline must hold on all of them.
  EnvCtx s = make_env(apps::build_synthetic(), LevelTable::intel_xscale(), 2,
                       0.9);
  ASSERT_TRUE(s.off.feasible());
  std::vector<NodeId> forks;
  for (NodeId id : s.app.graph.all_nodes())
    if (s.app.graph.node(id).is_or_fork()) forks.push_back(id);

  for (std::uint32_t mask = 0; mask < (1u << forks.size()); ++mask) {
    std::vector<int> choices(s.app.graph.size(), -1);
    for (std::size_t f = 0; f < forks.size(); ++f) {
      const std::size_t n_alts =
          s.app.graph.node(forks[f]).succs.size();
      choices[forks[f].value] =
          static_cast<int>(((mask >> f) & 1u) % n_alts);
    }
    const RunScenario sc = worst_case_scenario(s.app.graph, &choices);
    for (Scheme scheme : kAllSchemes) {
      const SimResult r = simulate(s.app, s.off, s.pm, s.ovh, scheme, sc);
      EXPECT_TRUE(r.deadline_met)
          << to_string(scheme) << " missed with mask " << mask;
    }
  }
}

TEST(Integration, EnergyOrderingHoldsOnAverage) {
  // On many random scenarios: every managed scheme <= NPM, and GSS saves
  // real energy at moderate load.
  EnvCtx s = make_env(apps::build_synthetic(), LevelTable::transmeta_tm5400(),
                       2, 0.5);
  Rng rng(7);
  RunningStat gss_norm, spm_norm;
  for (int run = 0; run < 50; ++run) {
    const RunScenario sc = draw_scenario(s.app.graph, rng);
    const SimResult npm = simulate(s.app, s.off, s.pm, s.ovh, Scheme::NPM, sc);
    for (Scheme scheme : {Scheme::SPM, Scheme::GSS, Scheme::SS1, Scheme::SS2,
                          Scheme::AS}) {
      const SimResult r = simulate(s.app, s.off, s.pm, s.ovh, scheme, sc);
      const double norm = r.total_energy() / npm.total_energy();
      EXPECT_LE(norm, 1.0 + 1e-9) << to_string(scheme);
      if (scheme == Scheme::GSS) gss_norm.add(norm);
      if (scheme == Scheme::SPM) spm_norm.add(norm);
    }
  }
  EXPECT_LT(gss_norm.mean(), 0.8);
  // Dynamic reclamation beats static management when there is dynamic
  // slack (alpha < 1 workload).
  EXPECT_LT(gss_norm.mean(), spm_norm.mean());
}

TEST(Integration, SpeculationReducesSpeedChanges) {
  // The whole point of the speculative schemes (§4): fewer voltage
  // transitions than greedy.
  EnvCtx s = make_env(apps::build_atr(), LevelTable::transmeta_tm5400(), 2,
                       0.5);
  Rng rng(99);
  RunningStat gss_sw, ss1_sw, as_sw;
  for (int run = 0; run < 50; ++run) {
    const RunScenario sc = draw_scenario(s.app.graph, rng);
    gss_sw.add(static_cast<double>(
        simulate(s.app, s.off, s.pm, s.ovh, Scheme::GSS, sc).speed_changes));
    ss1_sw.add(static_cast<double>(
        simulate(s.app, s.off, s.pm, s.ovh, Scheme::SS1, sc).speed_changes));
    as_sw.add(static_cast<double>(
        simulate(s.app, s.off, s.pm, s.ovh, Scheme::AS, sc).speed_changes));
  }
  EXPECT_LT(ss1_sw.mean(), gss_sw.mean());
  EXPECT_LE(as_sw.mean(), gss_sw.mean());
}

TEST(Integration, TightLoadForcesFullSpeed) {
  // At load ~1 every scheme degenerates to near-NPM energy (no slack).
  EnvCtx s = make_env(apps::build_synthetic(), LevelTable::intel_xscale(), 2,
                       0.999);
  const RunScenario sc = worst_case_scenario(s.app.graph);
  const SimResult npm = simulate(s.app, s.off, s.pm, s.ovh, Scheme::NPM, sc);
  const SimResult gss = simulate(s.app, s.off, s.pm, s.ovh, Scheme::GSS, sc);
  EXPECT_TRUE(gss.deadline_met);
  EXPECT_NEAR(gss.total_energy() / npm.total_energy(), 1.0, 0.15);
}

TEST(Integration, MinimumSpeedBoundsGreedy)
{
  // With a generous deadline, GSS on XScale cannot drop below 150 MHz;
  // the idle-energy effect keeps normalized energy well above zero.
  EnvCtx s = make_env(apps::build_synthetic(), LevelTable::intel_xscale(), 2,
                       0.1);
  Rng rng(3);
  const RunScenario sc = draw_scenario(s.app.graph, rng);
  const SimResult r = simulate(s.app, s.off, s.pm, s.ovh, Scheme::GSS, sc);
  EXPECT_TRUE(r.deadline_met);
  for (const TaskRecord& rec : r.trace) {
    if (s.app.graph.node(rec.node).is_dummy()) continue;
    EXPECT_GE(s.pm.table().level(rec.level).freq, 150 * kMHz);
  }
}

TEST(Integration, CollapsedLoopVariantAlsoWorks) {
  apps::SyntheticConfig cfg;
  cfg.loop_mode = LoopMode::Collapse;
  EnvCtx s = make_env(apps::build_synthetic(cfg),
                       LevelTable::transmeta_tm5400(), 2, 0.7);
  ASSERT_TRUE(s.off.feasible());
  Rng rng(12);
  for (int run = 0; run < 10; ++run) {
    const RunScenario sc = draw_scenario(s.app.graph, rng);
    for (Scheme scheme : kAllSchemes) {
      const SimResult r = simulate(s.app, s.off, s.pm, s.ovh, scheme, sc);
      EXPECT_TRUE(r.deadline_met) << to_string(scheme);
    }
  }
}

TEST(Integration, SixProcessorAtr) {
  EnvCtx s = make_env(apps::build_atr(), LevelTable::intel_xscale(), 6, 0.5);
  ASSERT_TRUE(s.off.feasible());
  Rng rng(2);
  for (int run = 0; run < 10; ++run) {
    const RunScenario sc = draw_scenario(s.app.graph, rng);
    const SimResult r = simulate(s.app, s.off, s.pm, s.ovh, Scheme::GSS, sc);
    EXPECT_TRUE(r.deadline_met);
    const VerifyReport rep = verify_trace(s.app, s.off, sc, r);
    EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
  }
}

}  // namespace
}  // namespace paserta
