// Tests for the JSON export of sweep results.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "apps/synthetic.h"
#include "common/error.h"
#include "harness/json.h"

namespace paserta {
namespace {

std::vector<SweepPoint> tiny_sweep() {
  ExperimentConfig cfg;
  cfg.cpus = 2;
  cfg.table = LevelTable::intel_xscale();
  cfg.runs = 3;
  cfg.seed = 7;
  cfg.schemes = {Scheme::GSS, Scheme::AS};
  return sweep_load(apps::build_synthetic(), cfg, {0.5, 0.8});
}

TEST(Json, DocumentStructure) {
  const auto points = tiny_sweep();
  JsonExportOptions opt;
  opt.experiment_id = "figT";
  opt.caption = "test \"sweep\"";
  opt.x_name = "load";
  const std::string j = sweep_to_json(points, opt);

  EXPECT_NE(j.find("\"experiment\":\"figT\""), std::string::npos);
  EXPECT_NE(j.find("\\\"sweep\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(j.find("\"x_name\":\"load\""), std::string::npos);
  EXPECT_NE(j.find("\"GSS\":{"), std::string::npos);
  EXPECT_NE(j.find("\"AS\":{"), std::string::npos);
  EXPECT_NE(j.find("\"norm_energy\""), std::string::npos);
  EXPECT_NE(j.find("\"deadline_misses\":0"), std::string::npos);
  // The per-point x key '"load":' appears exactly once per point (the
  // x_name declaration carries "load" as a value, not as a key).
  std::size_t count = 0, pos = 0;
  while ((pos = j.find("\"load\":", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Json, BalancedBracesAndBrackets) {
  const auto points = tiny_sweep();
  JsonExportOptions opt;
  opt.experiment_id = "x";
  const std::string j = sweep_to_json(points, opt);
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < j.size(); ++i) {
    const char c = j[i];
    if (c == '"' && (i == 0 || j[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(Json, EscapesControlCharacters) {
  JsonExportOptions opt;
  opt.experiment_id = "tab\there";
  opt.caption = "line\nbreak";
  const std::string j = sweep_to_json({}, opt);
  EXPECT_NE(j.find("tab\\there"), std::string::npos);
  EXPECT_NE(j.find("line\\nbreak"), std::string::npos);
  EXPECT_EQ(j.find('\n'), std::string::npos);
  EXPECT_EQ(j.find('\t'), std::string::npos);
}

TEST(Json, EmptySweepIsValid) {
  JsonExportOptions opt;
  opt.experiment_id = "empty";
  const std::string j = sweep_to_json({}, opt);
  EXPECT_NE(j.find("\"points\":[]"), std::string::npos);
}

// ------------------------------------------------------------- parser

TEST(JsonParse, ObjectsArraysAndScalars) {
  const JsonValue v = json_parse(
      "{\"a\": 1.5, \"b\": [true, false, null, \"s\"], \"c\": {\"d\": -2e3}}");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("a").number, 1.5);
  const JsonValue& b = v.at("b");
  ASSERT_TRUE(b.is_array());
  ASSERT_EQ(b.array.size(), 4u);
  EXPECT_TRUE(b.array[0].boolean);
  EXPECT_FALSE(b.array[1].boolean);
  EXPECT_TRUE(b.array[2].is_null());
  EXPECT_EQ(b.array[3].str, "s");
  EXPECT_DOUBLE_EQ(v.at("c").at("d").number, -2000.0);
}

TEST(JsonParse, PreservesObjectMemberOrder) {
  const JsonValue v = json_parse("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "m");
}

TEST(JsonParse, StringEscapes) {
  const JsonValue v = json_parse(
      "\"q\\\" b\\\\ s\\/ n\\n t\\t u\\u0041 e\\u00e9\"");
  EXPECT_EQ(v.str, "q\" b\\ s/ n\n t\t u\x41 e\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), Error);
  EXPECT_THROW(json_parse("{"), Error);
  EXPECT_THROW(json_parse("[1,]"), Error);
  EXPECT_THROW(json_parse("{\"a\" 1}"), Error);
  EXPECT_THROW(json_parse("nul"), Error);
  EXPECT_THROW(json_parse("1 2"), Error);  // trailing garbage
  EXPECT_THROW(json_parse("\"unterminated"), Error);
}

TEST(JsonParse, FindAndAtSemantics) {
  const JsonValue v = json_parse("{\"k\": 1}");
  EXPECT_NE(v.find("k"), nullptr);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), Error);
  const JsonValue arr = json_parse("[1]");
  EXPECT_EQ(arr.find("k"), nullptr);  // not an object
}

TEST(JsonParse, RoundTripsSweepExport) {
  const auto points = tiny_sweep();
  JsonExportOptions opt;
  opt.experiment_id = "figT";
  opt.caption = "round \"trip\"\n";
  opt.x_name = "load";
  const JsonValue v = json_parse(sweep_to_json(points, opt));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("experiment").str, "figT");
  EXPECT_EQ(v.at("caption").str, "round \"trip\"\n");
  const JsonValue& pts = v.at("points");
  ASSERT_TRUE(pts.is_array());
  ASSERT_EQ(pts.array.size(), 2u);
  EXPECT_DOUBLE_EQ(pts.array[0].at("load").number, 0.5);
  EXPECT_TRUE(pts.array[1].at("schemes").at("GSS").is_object());
}

// ------------------------------------------------------------- writer

TEST(JsonWriter, CompactObjectBytes) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .key("s").value("a\"b")
      .key("i").value(-42)
      .key("u").value(std::uint64_t{18446744073709551615ull})
      .key("d").value(0.5)
      .key("t").value(true)
      .key("n").null()
      .end_object();
  EXPECT_TRUE(w.balanced());
  EXPECT_EQ(os.str(),
            "{\"s\":\"a\\\"b\",\"i\":-42,\"u\":18446744073709551615,"
            "\"d\":0.5,\"t\":true,\"n\":null}");
}

TEST(JsonWriter, IndentedOutputRoundTrips) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object()
      .key("list").begin_array().value(1).value(2).value(3).end_array()
      .key("nested").begin_object().key("x").value("y").end_object()
      .key("empty").begin_array().end_array()
      .end_object();
  EXPECT_TRUE(w.balanced());
  const JsonValue v = json_parse(os.str());
  ASSERT_EQ(v.at("list").array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("list").array[2].number, 3.0);
  EXPECT_EQ(v.at("nested").at("x").str, "y");
  EXPECT_TRUE(v.at("empty").array.empty());
  // Indented form actually indents.
  EXPECT_NE(os.str().find("\n  \"list\""), std::string::npos);
}

TEST(JsonWriter, RawSplicesVerbatim) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().key("doc").raw("{\"kept\":  [1,2]}").end_object();
  EXPECT_EQ(os.str(), "{\"doc\":{\"kept\":  [1,2]}}");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, ControlCharactersRoundTripThroughParser) {
  std::ostringstream os;
  JsonWriter w(os);
  const std::string nasty = "tab\t nl\n quote\" back\\ bell\x07";
  w.begin_object().key("k").value(nasty).end_object();
  EXPECT_EQ(json_parse(os.str()).at("k").str, nasty);
}

// ------------------------------------------- adversarial parser input
//
// The serve daemon feeds attacker-controlled bytes into json_parse, so
// every malformed shape must produce a byte-offset Error — never a crash
// (the suite also runs under ASan/UBSan in CI).

std::string error_of(const std::string& input) {
  try {
    json_parse(input);
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

TEST(JsonParseAdversarial, TruncatedDocumentsThrowWithOffsets) {
  for (const char* doc :
       {"{\"a\":", "[1, 2", "{\"a\": {\"b\": [", "\"abc\\", "tr", "-",
        "1e", "{\"a\" :", "[{\"x\": 1},"}) {
    const std::string msg = error_of(doc);
    EXPECT_FALSE(msg.empty()) << doc;
    EXPECT_NE(msg.find("at byte"), std::string::npos) << msg;
  }
}

TEST(JsonParseAdversarial, HugeAndDegenerateNumbers) {
  // Overflowing magnitudes parse to +-inf rather than throwing (strtod
  // semantics) — the point is no UB and no crash.
  EXPECT_TRUE(std::isinf(json_parse("1e999999").number));
  EXPECT_TRUE(std::isinf(json_parse("-1e999999").number));
  EXPECT_DOUBLE_EQ(json_parse("1e-999999").number, 0.0);
  // A 400-digit integer literal must parse (to +inf) without crashing.
  EXPECT_TRUE(json_parse("1" + std::string(400, '0')).number > 1e300);
  // Malformed number shapes still throw.
  EXPECT_THROW(json_parse("01"), Error);
  EXPECT_THROW(json_parse("+1"), Error);
  EXPECT_THROW(json_parse("1."), Error);
  EXPECT_THROW(json_parse(".5"), Error);
  EXPECT_THROW(json_parse("0x10"), Error);
}

TEST(JsonParseAdversarial, DeepNestingStopsAtTheDepthLimit) {
  // kMaxDepth = 64: 64 nested arrays still parse (the scalar inside sits
  // exactly at the limit)...
  std::string ok(64, '[');
  ok += "1";
  ok += std::string(64, ']');
  EXPECT_NO_THROW(json_parse(ok));
  // ...one more must be rejected by the limit, not by stack exhaustion —
  // and a pathological 100k-deep input must come back as the same clean
  // error, no matter how deep.
  for (std::size_t depth : {std::size_t{65}, std::size_t{100000}}) {
    std::string too_deep(depth, '[');
    too_deep += "1";
    too_deep += std::string(depth, ']');
    const std::string msg = error_of(too_deep);
    EXPECT_NE(msg.find("nesting"), std::string::npos) << depth << ": " << msg;
  }
  // Same for objects.
  std::string objs;
  for (int i = 0; i < 200; ++i) objs += "{\"k\":";
  objs += "1";
  objs += std::string(200, '}');
  EXPECT_THROW(json_parse(objs), Error);
}

TEST(JsonParseAdversarial, InvalidEscapesAndUnicode) {
  EXPECT_THROW(json_parse("\"\\x41\""), Error);    // unknown escape
  EXPECT_THROW(json_parse("\"\\u12\""), Error);    // short \u
  EXPECT_THROW(json_parse("\"\\u12zq\""), Error);  // non-hex \u
  EXPECT_THROW(json_parse("\"\\\""), Error);       // escape at EOF
  // Raw control characters inside strings are invalid JSON.
  EXPECT_THROW(json_parse(std::string("\"a\nb\"")), Error);
  EXPECT_THROW(json_parse(std::string("\"a\x01")), Error);
  // Invalid UTF-8 *bytes* pass through opaquely (the parser is
  // byte-oriented; no crash, no reinterpretation).
  const JsonValue v = json_parse("\"\xff\xfe\"");
  EXPECT_EQ(v.str, "\xff\xfe");
}

TEST(JsonParseAdversarial, ErrorsCarryByteOffsets) {
  const std::string msg = error_of("{\"key\": nope}");
  ASSERT_FALSE(msg.empty());
  EXPECT_NE(msg.find("at byte 8"), std::string::npos) << msg;
}

TEST(Json, BreakdownFractionsPresentAndSane) {
  const auto points = tiny_sweep();
  for (const auto& p : points) {
    for (const auto& st : p.stats) {
      const double total = st.busy_frac.mean() + st.overhead_frac.mean() +
                           st.idle_frac.mean();
      EXPECT_NEAR(total, 1.0, 1e-9) << to_string(st.scheme);
      EXPECT_GE(st.idle_frac.mean(), 0.0);
    }
  }
}

}  // namespace
}  // namespace paserta
