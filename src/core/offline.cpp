#include "core/offline.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"
#include "core/list_sched.h"

namespace paserta {
namespace {

/// Cached per-segment analysis: canonical schedules and makespans.
struct SegAnalysis {
  // Sections:
  SectionSchedule wcet_sched;  // inflated WCET durations (defines EO & LST)
  SimTime w{};                 // worst-case makespan
  SimTime a{};                 // average-case makespan
  // Branches: per-alternative program times.
  std::vector<SimTime> alt_w;
  std::vector<SimTime> alt_a;
};

struct ProgramTimes {
  SimTime w{};
  SimTime a{};
};

class Analyzer {
 public:
  Analyzer(const Application& app, const OfflineOptions& opt)
      : app_(app), opt_(opt) {}

  ProgramTimes compute_times(const StructProgram& p) {
    ProgramTimes total;
    for (const StructSegment& seg : p.segments) {
      if (seg.kind == StructSegment::Kind::Section) {
        SegAnalysis sa;
        sa.wcet_sched = ltf_schedule(
            app_.graph, seg.members, opt_.cpus,
            [&](NodeId id) { return inflated_wcet(id); }, opt_.heuristic);
        const SectionSchedule acet_sched = ltf_schedule(
            app_.graph, seg.members, opt_.cpus,
            [&](NodeId id) { return inflated_acet(id); }, opt_.heuristic);
        sa.w = sa.wcet_sched.makespan;
        sa.a = acet_sched.makespan;
        total.w += sa.w;
        total.a += sa.a;
        cache_.emplace(&seg, std::move(sa));
      } else {
        SegAnalysis sa;
        SimTime w_max{};
        double a_exp = 0.0;
        for (std::size_t i = 0; i < seg.alternatives.size(); ++i) {
          const ProgramTimes t = compute_times(seg.alternatives[i]);
          sa.alt_w.push_back(t.w);
          sa.alt_a.push_back(t.a);
          w_max = std::max(w_max, t.w);
          a_exp += seg.alt_prob[i] * static_cast<double>(t.a.ps);
        }
        total.w += w_max;
        total.a += SimTime{static_cast<std::int64_t>(a_exp + 0.5)};
        cache_.emplace(&seg, std::move(sa));
      }
    }
    return total;
  }

  std::uint32_t assign_eo(const StructProgram& p, std::uint32_t counter,
                          OfflineResult& r) {
    for (const StructSegment& seg : p.segments) {
      if (seg.kind == StructSegment::Kind::Section) {
        for (NodeId id : cache_.at(&seg).wcet_sched.dispatch_order)
          r.eo_[id.value] = counter++;
      } else {
        r.eo_[seg.fork.value] = counter++;
        const std::uint32_t base = counter;
        std::uint32_t max_span = 0;
        for (const StructProgram& alt : seg.alternatives) {
          const std::uint32_t end = assign_eo(alt, base, r);
          max_span = std::max(max_span, end - base);
        }
        counter = base + max_span;
        r.eo_[seg.join.value] = counter++;
      }
    }
    return counter;
  }

  /// Shifts this program's canonical schedule so it finishes exactly at
  /// `end`; records LSTs. Returns the program's shifted start time.
  SimTime assign_lst(const StructProgram& p, SimTime end, OfflineResult& r) {
    for (auto it = p.segments.rbegin(); it != p.segments.rend(); ++it) {
      const StructSegment& seg = *it;
      const SegAnalysis& sa = cache_.at(&seg);
      if (seg.kind == StructSegment::Kind::Section) {
        const SimTime shift = end - sa.w;
        for (const auto& [node, item] : sa.wcet_sched.items)
          r.lst_[node] = item.start + shift;
        end = shift;
      } else {
        r.lst_[seg.join.value] = end;
        SimTime w_max{};
        for (std::size_t i = 0; i < seg.alternatives.size(); ++i) {
          assign_lst(seg.alternatives[i], end, r);
          w_max = std::max(w_max, sa.alt_w[i]);
        }
        const SimTime fork_time = end - w_max;
        r.lst_[seg.fork.value] = fork_time;
        end = fork_time;
      }
    }
    return end;
  }

  /// Backward walk computing remaining worst/average times after each OR
  /// node and the per-alternative fork profiles (the PMP data of §2.2).
  void assign_rem(const StructProgram& p, SimTime rem_w_after,
                  SimTime rem_a_after, OfflineResult& r) {
    for (auto it = p.segments.rbegin(); it != p.segments.rend(); ++it) {
      const StructSegment& seg = *it;
      const SegAnalysis& sa = cache_.at(&seg);
      if (seg.kind == StructSegment::Kind::Section) {
        rem_w_after += sa.w;
        rem_a_after += sa.a;
      } else {
        r.rem_w_[seg.join.value] = rem_w_after;
        r.rem_a_[seg.join.value] = rem_a_after;
        OrForkProfile prof;
        SimTime rem_w_fork{};
        double rem_a_fork = 0.0;
        for (std::size_t i = 0; i < seg.alternatives.size(); ++i) {
          prof.rem_w_alt.push_back(sa.alt_w[i] + rem_w_after);
          prof.rem_a_alt.push_back(sa.alt_a[i] + rem_a_after);
          rem_w_fork = std::max(rem_w_fork, prof.rem_w_alt.back());
          rem_a_fork += seg.alt_prob[i] *
                        static_cast<double>(prof.rem_a_alt.back().ps);
          assign_rem(seg.alternatives[i], rem_w_after, rem_a_after, r);
        }
        r.rem_w_[seg.fork.value] = rem_w_fork;
        r.rem_a_[seg.fork.value] =
            SimTime{static_cast<std::int64_t>(rem_a_fork + 0.5)};
        r.fork_profiles_.emplace(seg.fork.value, std::move(prof));
        rem_w_after = r.rem_w_[seg.fork.value];
        rem_a_after = r.rem_a_[seg.fork.value];
      }
    }
  }

  SimTime inflated_wcet(NodeId id) const {
    const Node& n = app_.graph.node(id);
    return n.is_dummy() ? SimTime::zero() : n.wcet + opt_.overhead_budget;
  }
  SimTime inflated_acet(NodeId id) const {
    const Node& n = app_.graph.node(id);
    return n.is_dummy() ? SimTime::zero() : n.acet + opt_.overhead_budget;
  }

 private:
  const Application& app_;
  const OfflineOptions& opt_;
  std::unordered_map<const StructSegment*, SegAnalysis> cache_;
};

}  // namespace

OfflineResult analyze_offline(const Application& app,
                              const OfflineOptions& options) {
  PASERTA_REQUIRE(options.cpus >= 1, "need at least one processor");
  PASERTA_REQUIRE(options.deadline > SimTime::zero(),
                  "deadline must be positive");
  PASERTA_REQUIRE(!options.overhead_budget.is_negative(),
                  "overhead budget must be non-negative");
  PASERTA_REQUIRE(!app.structure.segments.empty(),
                  "application '" << app.name << "' has no structure");

  OfflineResult r;
  r.cpus_ = options.cpus;
  r.deadline_ = options.deadline;
  r.overhead_budget_ = options.overhead_budget;

  const std::size_t n = app.graph.size();
  r.eo_.assign(n, NodeId::kInvalid);
  r.lst_.assign(n, SimTime::zero());
  r.eet_.assign(n, SimTime::zero());
  r.inflated_wcet_.assign(n, SimTime::zero());
  r.rem_a_.assign(n, SimTime::zero());
  r.rem_w_.assign(n, SimTime::zero());

  Analyzer an(app, options);

  // Round 1: canonical schedules, W/A, execution orders, PMP profiles.
  const ProgramTimes t = an.compute_times(app.structure);
  r.worst_makespan_ = t.w;
  r.average_makespan_ = t.a;
  r.max_eo_ = an.assign_eo(app.structure, 0, r);
  PASERTA_ASSERT(
      std::none_of(r.eo_.begin(), r.eo_.end(),
                   [](std::uint32_t e) { return e == NodeId::kInvalid; }),
      "offline phase left a node without an execution order");
  an.assign_rem(app.structure, SimTime::zero(), SimTime::zero(), r);

  // Round 2: shift everything to finish exactly at the deadline.
  an.assign_lst(app.structure, options.deadline, r);

  for (NodeId id : app.graph.all_nodes()) {
    r.inflated_wcet_[id.value] = an.inflated_wcet(id);
    r.eet_[id.value] = r.lst_[id.value] + r.inflated_wcet_[id.value];
  }
  return r;
}

SimTime canonical_worst_makespan(const Application& app, int cpus,
                                 SimTime overhead_budget,
                                 ListHeuristic heuristic) {
  OfflineOptions opt;
  opt.cpus = cpus;
  opt.deadline = SimTime::max();  // placeholder; only W is used
  opt.overhead_budget = overhead_budget;
  opt.heuristic = heuristic;
  // A full analysis would overflow LST arithmetic with SimTime::max();
  // run the forward pass only.
  PASERTA_REQUIRE(cpus >= 1, "need at least one processor");
  Analyzer an(app, opt);
  return an.compute_times(app.structure).w;
}

}  // namespace paserta
